// Command pcs-analytical regenerates the paper's analytical results:
// Fig. 2 (SRAM BER vs VDD), Fig. 3a–d (power/capacity, usable blocks,
// leakage breakdown, yield), the Sec. 4.2 area-overhead estimates, and
// the computed Table-2 voltage plans.
//
// Usage:
//
//	pcs-analytical [-fig2] [-fig3a] [-fig3b] [-fig3c] [-fig3d]
//	               [-area] [-vdd] [-gap] [-all] [-org l1a|l2a|l1b|l2b] [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/cacti"
	"repro/internal/expers"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-analytical: ")
	var (
		fig2  = flag.Bool("fig2", false, "print Fig. 2 (BER vs VDD)")
		fig3a = flag.Bool("fig3a", false, "print Fig. 3a (static power vs effective capacity)")
		fig3b = flag.Bool("fig3b", false, "print Fig. 3b (usable blocks vs VDD)")
		fig3c = flag.Bool("fig3c", false, "print Fig. 3c (leakage breakdown vs VDD)")
		fig3d = flag.Bool("fig3d", false, "print Fig. 3d (yield vs VDD)")
		area  = flag.Bool("area", false, "print area overheads (Sec. 4.2)")
		vdd   = flag.Bool("vdd", false, "print computed VDD plans (Table 2 voltages)")
		gap   = flag.Bool("gap", false, "print the FFT-Cache gap at 99% capacity")
		organ = flag.Bool("organize", false, "print the CACTI-style subarray organisation exploration")
		all   = flag.Bool("all", false, "print everything")
		orgN  = flag.String("org", "l1a", "cache organisation: l1a, l2a, l1b, l2b")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	org, err := pickOrg(*orgN)
	if err != nil {
		log.Fatal(err)
	}
	if !(*fig2 || *fig3a || *fig3b || *fig3c || *fig3d || *area || *vdd || *gap || *organ) {
		*all = true
	}
	out := os.Stdout
	render := func(t *report.Table) {
		if *csv {
			err = t.RenderCSV(out)
			fmt.Fprintln(out)
		} else {
			err = t.Render(out)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	if *all || *fig2 {
		_, t := expers.Fig2()
		render(t)
	}
	if *all || *fig3a {
		_, t, err := expers.Fig3a(org, 2)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *all || *gap || *fig3a {
		printGaps(out, org)
	}
	if *all || *fig3b {
		_, t, err := expers.Fig3b(org)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *all || *fig3c {
		_, t, err := expers.Fig3c(org)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *all || *fig3d {
		_, t, err := expers.Fig3d(org)
		if err != nil {
			log.Fatal(err)
		}
		render(t)
		_, mt, err := expers.MinVDDs(org)
		if err != nil {
			log.Fatal(err)
		}
		render(mt)
	}
	if *all || *area {
		_, t, err := expers.AreaOverheads()
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *all || *vdd {
		_, t, err := expers.VDDPlans()
		if err != nil {
			log.Fatal(err)
		}
		render(t)
	}
	if *all || *organ {
		printOrganization(org, render)
	}
}

// printOrganization shows the subarray-partition exploration for the
// selected cache (the optimisation CACTI ran for the paper).
func printOrganization(org cacti.Org, render func(*report.Table)) {
	all, err := cacti.Explore(org, cacti.DefaultWireParams(), 32)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(
		fmt.Sprintf("Subarray organisation exploration (%s), best EDP first", org.Name),
		"Ndwl", "Ndbl", "Subarray", "Access (ns)", "Read (pJ)", "Area (mm²)", "EDP")
	limit := len(all)
	if limit > 10 {
		limit = 10
	}
	for _, o := range all[:limit] {
		t.AddRow(o.NDWL, o.NDBL,
			fmt.Sprintf("%dx%d", o.SubRows, o.SubCols),
			fmt.Sprintf("%.3f", o.AccessNS),
			fmt.Sprintf("%.2f", o.ReadEnergyPJ),
			fmt.Sprintf("%.3f", o.AreaMM2),
			fmt.Sprintf("%.3f", o.EDP))
	}
	render(t)
}

func pickOrg(name string) (cacti.Org, error) {
	switch name {
	case "l1a":
		return expers.L1ConfigA(), nil
	case "l2a":
		return expers.L2ConfigA(), nil
	case "l1b":
		return expers.L1ConfigB(), nil
	case "l2b":
		return expers.L2ConfigB(), nil
	default:
		return cacti.Org{}, fmt.Errorf("unknown org %q (want l1a, l2a, l1b or l2b)", name)
	}
}

func printGaps(w io.Writer, org cacti.Org) {
	for _, n := range []int{1, 2} {
		gap, err := expers.Fig3aGapAt99(org, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "Proposed vs FFT-Cache at 99%% capacity (%d VDD levels): %.1f%% lower static power\n",
			n+1, gap*100)
	}
	fmt.Fprintln(w)
}
