// Command pcs-server exposes the campaign runner (internal/runner) as
// an HTTP job service, so sweep and Monte-Carlo campaigns over the
// repository's experiment kinds can be submitted, monitored and
// harvested remotely:
//
//	POST   /campaigns               submit a campaign
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          status, progress, ETA
//	GET    /campaigns/{id}/results  stream result records as JSON lines
//	DELETE /campaigns/{id}          cancel a campaign
//	GET    /metrics                 runner gauges (queued/running/done,
//	                                worker utilization, jobs/sec)
//
// The server drains gracefully on SIGTERM/SIGINT: the listener stops
// accepting requests, running campaigns are cancelled (simulations stop
// mid-flight via context), and their workers are waited for.
//
// Usage:
//
//	pcs-server [-addr :8080] [-workers N] [-runs dir]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/expers"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-server: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "default workers per campaign (0 = GOMAXPROCS)")
		runsRoot = flag.String("runs", "runs", "artifact root directory (empty = no artifacts)")
		grace    = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	srv := runner.NewServer(expers.NewCampaignRegistry(), runner.ServerOptions{
		DefaultWorkers: *workers,
		ArtifactRoot:   *runsRoot,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (kinds: %v)", *addr, srv.Kinds())

	select {
	case err := <-errCh:
		// Listener died before any signal; nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("signal received, draining (grace %s)", *grace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Cancel running campaigns and wait for their workers.
	srv.Close()
	log.Printf("drained, exiting")
}
