// Command pcs-server exposes the campaign runner (internal/runner) as
// an HTTP job service, so sweep and Monte-Carlo campaigns over the
// repository's experiment kinds can be submitted, monitored and
// harvested remotely:
//
//	POST   /campaigns               submit a campaign
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          status, progress, ETA
//	GET    /campaigns/{id}/results  stream result records as JSON lines
//	GET    /campaigns/{id}/events   stream job lifecycle events (NDJSON)
//	DELETE /campaigns/{id}          cancel a campaign
//	GET    /metrics                 Prometheus exposition (counters,
//	                                gauges, per-kind duration histograms)
//
// Every request is logged structurally (log/slog: request id, method,
// path, status, bytes, duration); -pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// The server drains gracefully on SIGTERM/SIGINT: the listener stops
// accepting requests, running campaigns are cancelled (simulations stop
// mid-flight via context), and their workers are waited for.
//
// Usage:
//
//	pcs-server [-addr :8080] [-workers N] [-runs dir] [-pprof] [-log-json]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/runner"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "default workers per campaign (0 = GOMAXPROCS)")
		runsRoot  = flag.String("runs", "runs", "artifact root directory (empty = no artifacts)")
		grace     = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		logJSON   = flag.Bool("log-json", false, "emit JSON log lines instead of key=value text")
	)
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	srv := runner.NewServer(expers.NewCampaignRegistry(), runner.ServerOptions{
		DefaultWorkers: *workers,
		ArtifactRoot:   *runsRoot,
		Logger:         logger,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *withPprof {
		// Opt-in only: profiling endpoints expose heap contents and must
		// not be reachable on a default deployment.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: obs.RequestLogger(logger, mux)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "kinds", srv.Kinds(), "pprof", *withPprof)

	select {
	case err := <-errCh:
		// Listener died before any signal; nothing to drain.
		logger.Error("listen", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("signal received, draining", "grace", *grace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
	}
	// Cancel running campaigns and wait for their workers.
	srv.Close()
	logger.Info("drained, exiting")
}
