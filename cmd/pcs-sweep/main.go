// Command pcs-sweep explores the design space around the paper's
// mechanism — the studies its Sec. 3.1 and Sec. 5 (future work) point
// at:
//
//   - -assoc: min-VDD versus associativity and block size (the paper's
//     claim that higher associativity and smaller blocks lower min-VDD);
//   - -levels: power at the SPCS point versus the number of allowed VDD
//     levels (fault-map growth vs voltage granularity);
//   - -dpcs: DPCS policy parameter sensitivity (interval and threshold
//     sweep on one workload), the "more sophisticated policies" study.
//
// Usage:
//
//	pcs-sweep [-assoc] [-levels] [-dpcs] [-bench name] [-instr N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/sram"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-sweep: ")
	var (
		assoc  = flag.Bool("assoc", false, "sweep associativity and block size vs min-VDD")
		levels = flag.Bool("levels", false, "sweep the number of VDD levels")
		dpcs   = flag.Bool("dpcs", false, "sweep DPCS policy parameters")
		ablate = flag.Bool("ablate", false, "run the DPCS policy ablation study")
		leak   = flag.Bool("leakage", false, "compare drowsy/decay/SPCS leakage techniques")
		cells  = flag.Bool("cells", false, "compare 6T/8T/10T bit cells with and without PCS")
		bench  = flag.String("bench", "bzip2.s", "benchmark for -dpcs")
		instr  = flag.Uint64("instr", 4_000_000, "instructions for -dpcs and -ablate runs")
	)
	flag.Parse()
	if !(*assoc || *levels || *dpcs || *ablate || *cells || *leak) {
		*assoc, *levels, *dpcs, *ablate, *cells, *leak = true, true, true, true, true, true
	}
	if *assoc {
		sweepAssoc()
	}
	if *levels {
		sweepLevels()
	}
	if *cells {
		sweepCells()
	}
	if *leak {
		runLeakage(*instr)
	}
	if *dpcs {
		sweepDPCS(*bench, *instr)
	}
	if *ablate {
		runAblation(*instr)
	}
}

// sweepAssoc reproduces the Sec. 3.1 claim: "Higher associativity and/or
// smaller block sizes naturally result in lower min-VDD".
func sweepAssoc() {
	ber := sram.NewWangCalhounBER()
	t := report.NewTable("Min-VDD (99% yield) vs associativity and block size, 64 KB cache",
		"Block (B)", "1-way", "2-way", "4-way", "8-way", "16-way")
	for _, blockB := range []int{16, 32, 64, 128} {
		row := []any{blockB}
		for _, ways := range []int{1, 2, 4, 8, 16} {
			sets := (64 << 10) / (blockB * ways)
			m, err := faultmodel.New(faultmodel.Geometry{
				Sets: sets, Ways: ways, BlockBits: blockB * 8}, ber)
			if err != nil {
				log.Fatal(err)
			}
			v, ok := m.MinVDDForYield(0.99, 0.30, 1.00)
			if !ok {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// sweepLevels shows the fault-map cost and SPCS-point power as the
// number of allowed VDD levels grows ("our fault map approach should
// scale well for more voltage levels").
func sweepLevels() {
	org := expers.L1ConfigA()
	t := report.NewTable("VDD level count vs fault-map size and SPCS static power (L1-A)",
		"Levels N", "FM bits/block", "Static power @ SPCS point (mW)")
	for _, n := range []int{1, 2, 3, 7, 15} {
		cs, err := expers.NewCacheSetup(org, n)
		if err != nil {
			log.Fatal(err)
		}
		v2, ok := cs.FM.MinVDDForCapacity(0.99, 0.99, 0.30, 1.00)
		if !ok {
			log.Fatal("no SPCS point")
		}
		p := cs.CMPCS.StaticPower(v2, cs.FM.ExpectedCapacity(v2))
		t.AddRow(n, cs.CMPCS.FMBitsPerBlock, fmt.Sprintf("%.3f", p.TotalW*1e3))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// sweepCells compares bit-cell designs (paper Sec. 2: hardened 8T/10T
// cells vs 6T + the proposed mechanism).
func sweepCells() {
	_, t, err := expers.CellComparison()
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runLeakage compares the Sec.-2 leakage-reduction baselines with SPCS.
func runLeakage(instr uint64) {
	_, t, err := expers.LeakageComparison(instr, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runAblation disables the DPCS damping refinements one at a time
// (DESIGN.md §6) on a cache-friendly and a capacity-cliff workload.
func runAblation(instr uint64) {
	opts := cpusim.RunOptions{WarmupInstr: instr / 4, SimInstr: instr, Seed: 1}
	_, t, err := expers.Ablation([]string{"hmmer.s", "sjeng.s"}, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// sweepDPCS measures policy sensitivity: energy saving and overhead as
// the sampling interval and escape budget vary.
func sweepDPCS(bench string, instr uint64) {
	w, ok := trace.ByName(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", bench)
	}
	opts := cpusim.RunOptions{WarmupInstr: instr / 4, SimInstr: instr, Seed: 1}
	base, err := cpusim.Run(cpusim.ConfigA(), core.Baseline, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(
		fmt.Sprintf("DPCS parameter sensitivity on %s (Config A, %d instr)", bench, instr),
		"L2 interval", "High thresh", "Energy saving %", "Exec overhead %", "L2 transitions")
	for _, interval := range []uint64{2_000, 10_000, 50_000} {
		for _, ht := range []float64{0.01, 0.03, 0.10} {
			cfg := cpusim.ConfigA()
			cfg.L2.Interval = interval
			cfg.HighThreshold = ht
			cfg.LowThreshold = ht / 2
			r, err := cpusim.Run(cfg, core.DPCS, w, opts)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(interval, ht,
				fmt.Sprintf("%.1f", (1-r.TotalCacheEnergyJ/base.TotalCacheEnergyJ)*100),
				fmt.Sprintf("%.2f", (float64(r.Cycles)/float64(base.Cycles)-1)*100),
				r.L2.Transitions)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
