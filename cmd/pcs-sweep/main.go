// Command pcs-sweep explores the design space around the paper's
// mechanism — the studies its Sec. 3.1 and Sec. 5 (future work) point
// at:
//
//   - -assoc: min-VDD versus associativity and block size (the paper's
//     claim that higher associativity and smaller blocks lower min-VDD);
//   - -levels: power at the SPCS point versus the number of allowed VDD
//     levels (fault-map growth vs voltage granularity);
//   - -dpcs: DPCS policy parameter sensitivity (interval and threshold
//     sweep on one workload), the "more sophisticated policies" study.
//
// The grid studies are expressed as campaigns for internal/runner, so
// they fan out across -workers cores and can archive their records under
// -runs; -json switches every table to machine-readable output.
//
// Usage:
//
//	pcs-sweep [-assoc] [-levels] [-dpcs] [-bench name] [-instr N]
//	          [-workers N] [-json] [-runs dir] [-timeline]
//
// -timeline (with -runs) additionally records each simulation job's
// typed DPCS policy telemetry as policy-<index>.jsonl next to the
// campaign's results.jsonl: the runner attaches a per-job sink to the
// job context and the cpusim kind picks it up.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
)

// harness bundles the flags shared by every sweep.
type harness struct {
	reg      *runner.Registry
	workers  int
	jsonOut  bool
	runsRoot string
	progress bool
	timeline bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-sweep: ")
	var (
		assoc    = flag.Bool("assoc", false, "sweep associativity and block size vs min-VDD")
		levels   = flag.Bool("levels", false, "sweep the number of VDD levels")
		dpcs     = flag.Bool("dpcs", false, "sweep DPCS policy parameters")
		ablate   = flag.Bool("ablate", false, "run the DPCS policy ablation study")
		leak     = flag.Bool("leakage", false, "compare drowsy/decay/SPCS leakage techniques")
		cells    = flag.Bool("cells", false, "compare 6T/8T/10T bit cells with and without PCS")
		bench    = flag.String("bench", "bzip2.s", "benchmark for -dpcs")
		instr    = flag.Uint64("instr", 4_000_000, "instructions for -dpcs and -ablate runs")
		workers  = flag.Int("workers", 0, "campaign worker count (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit tables as JSON instead of text")
		runsRoot = flag.String("runs", "", "archive campaign records under this directory (e.g. runs)")
		progress = flag.Bool("progress", false, "log campaign progress to stderr")
		timeline = flag.Bool("timeline", false, "with -runs: record per-job DPCS policy timelines (policy-<index>.jsonl)")
	)
	flag.Parse()
	if !(*assoc || *levels || *dpcs || *ablate || *cells || *leak) {
		*assoc, *levels, *dpcs, *ablate, *cells, *leak = true, true, true, true, true, true
	}
	if *timeline && *runsRoot == "" {
		log.Fatal("-timeline needs -runs (per-job timelines live next to the campaign records)")
	}
	h := &harness{
		reg:      expers.NewCampaignRegistry(),
		workers:  *workers,
		jsonOut:  *jsonOut,
		runsRoot: *runsRoot,
		progress: *progress,
		timeline: *timeline,
	}
	if *assoc {
		h.sweepAssoc()
	}
	if *levels {
		h.sweepLevels()
	}
	if *cells {
		h.sweepCells()
	}
	if *leak {
		h.runLeakage(*instr)
	}
	if *dpcs {
		h.sweepDPCS(*bench, *instr)
	}
	if *ablate {
		h.runAblation(*instr)
	}
}

// emit renders a table in the selected output format.
func (h *harness) emit(t *report.Table) {
	var err error
	if h.jsonOut {
		err = t.RenderJSON(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// spec builds a runner.Spec, marshalling the kind's parameter struct.
func spec(kind, name string, params any) runner.Spec {
	raw, err := json.Marshal(params)
	if err != nil {
		log.Fatalf("marshal %s params: %v", kind, err)
	}
	return runner.Spec{Kind: kind, Name: name, Params: raw}
}

// runCampaign fans the jobs out across the worker pool and returns the
// per-job results in job order, aborting on any failed job.
func (h *harness) runCampaign(name string, seed uint64, jobs []runner.Spec) []runner.JobResult {
	opts := runner.Options{Workers: h.workers}
	if h.runsRoot != "" {
		dir, err := runner.NewRunDir(filepath.Join(h.runsRoot, name))
		if err != nil {
			log.Fatal(err)
		}
		opts.ArtifactDir = dir
	}
	if h.progress {
		opts.OnProgress = func(p runner.Progress) {
			log.Printf("%s: %d/%d done (%.1f jobs/s, ETA %s)",
				name, p.Completed(), p.Total, p.JobsPerSec, p.ETA.Round(1e8))
		}
	}
	// Per-job policy timelines: attach a JSONL sink to each job's
	// context; the simulation kinds pick it up via
	// obs.PolicySinkFromContext. Sinks are closed after the campaign so
	// partial writes from a crashed run still flush what they can.
	var (
		sinkMu sync.Mutex
		sinks  []*obs.JSONLSink
	)
	if h.timeline && opts.ArtifactDir != "" {
		opts.JobContext = func(ctx context.Context, i int, _ runner.Spec) context.Context {
			path := filepath.Join(opts.ArtifactDir, fmt.Sprintf("policy-%03d.jsonl", i))
			sink, err := obs.CreateJSONL(path)
			if err != nil {
				log.Printf("%s: job %d timeline: %v", name, i, err)
				return ctx
			}
			sinkMu.Lock()
			sinks = append(sinks, sink)
			sinkMu.Unlock()
			return obs.ContextWithPolicySink(ctx, sink)
		}
	}
	res, err := runner.Run(context.Background(), h.reg, runner.Campaign{Name: name, Seed: seed, Jobs: jobs}, opts)
	for _, sink := range sinks {
		if cerr := sink.Close(); cerr != nil {
			log.Printf("%s: close timeline: %v", name, cerr)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Results {
		if r.Status != runner.StatusDone {
			log.Fatalf("campaign %s: job %d (%s) %s: %s", name, r.Index, r.Name, r.Status, r.Error)
		}
	}
	if res.ArtifactDir != "" {
		log.Printf("%s: records archived in %s", name, res.ArtifactDir)
	}
	return res.Results
}

// sweepAssoc reproduces the Sec. 3.1 claim: "Higher associativity and/or
// smaller block sizes naturally result in lower min-VDD". The 20-point
// geometry grid runs as one campaign of analytical "minvdd" jobs.
func (h *harness) sweepAssoc() {
	blocks := []int{16, 32, 64, 128}
	ways := []int{1, 2, 4, 8, 16}
	var jobs []runner.Spec
	for _, blockB := range blocks {
		for _, w := range ways {
			jobs = append(jobs, spec("minvdd", fmt.Sprintf("%dB/%dway", blockB, w), expers.MinVDDParams{
				SizeBytes: 64 << 10, Ways: w, BlockBytes: blockB,
				Yield: 0.99, VMin: 0.30, VMax: 1.00,
			}))
		}
	}
	results := h.runCampaign("assoc", 1, jobs)

	t := report.NewTable("Min-VDD (99% yield) vs associativity and block size, 64 KB cache",
		"Block (B)", "1-way", "2-way", "4-way", "8-way", "16-way")
	i := 0
	for _, blockB := range blocks {
		row := []any{blockB}
		for range ways {
			out := results[i].Output.(expers.MinVDDOutput)
			i++
			if !out.OK {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", out.MinVDD))
		}
		t.AddRow(row...)
	}
	h.emit(t)
}

// sweepLevels shows the fault-map cost and SPCS-point power as the
// number of allowed VDD levels grows ("our fault map approach should
// scale well for more voltage levels"), one "vddlevels" job per count.
func (h *harness) sweepLevels() {
	counts := []int{1, 2, 3, 7, 15}
	var jobs []runner.Spec
	for _, n := range counts {
		jobs = append(jobs, spec("vddlevels", fmt.Sprintf("levels=%d", n), expers.VDDLevelsParams{Levels: n}))
	}
	results := h.runCampaign("levels", 1, jobs)

	t := report.NewTable("VDD level count vs fault-map size and SPCS static power (L1-A)",
		"Levels N", "FM bits/block", "Static power @ SPCS point (mW)")
	for _, r := range results {
		out := r.Output.(expers.VDDLevelsOutput)
		t.AddRow(out.Levels, out.FMBitsPerBlock, fmt.Sprintf("%.3f", out.StaticPowerW*1e3))
	}
	h.emit(t)
}

// sweepCells compares bit-cell designs (paper Sec. 2: hardened 8T/10T
// cells vs 6T + the proposed mechanism).
func (h *harness) sweepCells() {
	_, t, err := expers.CellComparison()
	if err != nil {
		log.Fatal(err)
	}
	h.emit(t)
}

// runLeakage compares the Sec.-2 leakage-reduction baselines with SPCS.
func (h *harness) runLeakage(instr uint64) {
	_, t, err := expers.LeakageComparison(instr, 1)
	if err != nil {
		log.Fatal(err)
	}
	h.emit(t)
}

// runAblation disables the DPCS damping refinements one at a time
// (DESIGN.md §6) on a cache-friendly and a capacity-cliff workload.
func (h *harness) runAblation(instr uint64) {
	opts := cpusim.RunOptions{WarmupInstr: instr / 4, SimInstr: instr, Seed: 1}
	_, t, err := expers.Ablation([]string{"hmmer.s", "sjeng.s"}, opts)
	if err != nil {
		log.Fatal(err)
	}
	h.emit(t)
}

// sweepDPCS measures policy sensitivity: energy saving and overhead as
// the sampling interval and escape budget vary. The baseline run and the
// 9-cell parameter grid form one campaign; every cell pins seed 1 so all
// runs share fault maps and stay directly comparable.
func (h *harness) sweepDPCS(bench string, instr uint64) {
	intervals := []uint64{2_000, 10_000, 50_000}
	threshes := []float64{0.01, 0.03, 0.10}
	base := expers.CPUSimParams{
		Config: "A", Mode: "baseline", Bench: bench,
		WarmupInstr: instr / 4, SimInstr: instr, Seed: 1,
	}
	jobs := []runner.Spec{spec("cpusim", "baseline", base)}
	for _, interval := range intervals {
		for _, ht := range threshes {
			p := base
			p.Mode = "DPCS"
			p.L2Interval = interval
			p.HighThreshold = ht
			p.LowThreshold = ht / 2
			jobs = append(jobs, spec("cpusim", fmt.Sprintf("int=%d ht=%.2f", interval, ht), p))
		}
	}
	results := h.runCampaign("dpcs", 1, jobs)
	baseOut := results[0].Output.(expers.CPUSimOutput)

	t := report.NewTable(
		fmt.Sprintf("DPCS parameter sensitivity on %s (Config A, %d instr)", bench, instr),
		"L2 interval", "High thresh", "Energy saving %", "Exec overhead %", "L2 transitions")
	i := 1
	for _, interval := range intervals {
		for _, ht := range threshes {
			out := results[i].Output.(expers.CPUSimOutput)
			i++
			t.AddRow(interval, ht,
				fmt.Sprintf("%.1f", (1-out.TotalCacheEnergyJ/baseOut.TotalCacheEnergyJ)*100),
				fmt.Sprintf("%.2f", (float64(out.Cycles)/float64(baseOut.Cycles)-1)*100),
				out.L2Transitions)
		}
	}
	h.emit(t)
}
