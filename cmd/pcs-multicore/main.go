// Command pcs-multicore runs the multi-core extension (the paper's
// Sec. 5 future work): N cores with private power/capacity-scaled L1s
// over one shared, coherently-maintained, PCS-managed L2. The core-count
// × policy grid is expressed as a campaign for internal/runner, so the
// independent simulations fan out across -workers cores; it reports
// energy savings, execution overhead, L2 pressure and coherence traffic
// for baseline, SPCS and DPCS.
//
// Usage:
//
//	pcs-multicore [-cores 1,2,4] [-bench name] [-instr N] [-warmup N]
//	              [-shared frac] [-config A|B] [-seed S]
//	              [-workers N] [-json] [-runs dir]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/expers"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-multicore: ")
	var (
		coresFlag = flag.String("cores", "1,2,4", "comma-separated core counts to sweep")
		bench     = flag.String("bench", "gobmk.s", "workload run on every core")
		instr     = flag.Uint64("instr", 2_000_000, "measured instructions per core")
		warmup    = flag.Uint64("warmup", 400_000, "warm-up instructions per core")
		shared    = flag.Float64("shared", 0.10, "fraction of data accesses to the shared region")
		config    = flag.String("config", "A", "system configuration: A or B")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = flag.Int("workers", 0, "campaign worker count (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit the table as JSON instead of text")
		runsRoot  = flag.String("runs", "", "archive campaign records under this directory (e.g. runs)")
		progress  = flag.Bool("progress", false, "log campaign progress to stderr")
	)
	flag.Parse()

	w, ok := trace.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (known: %v)", *bench, trace.Names())
	}
	var counts []int
	for _, p := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			log.Fatalf("bad core count %q", p)
		}
		counts = append(counts, n)
	}

	// One campaign job per (core count, policy) grid cell. Every cell
	// pins the same seed so the three policies of one core count share
	// fault maps and workloads, exactly as the old serial loop did.
	modes := []string{"baseline", "SPCS", "DPCS"}
	var jobs []runner.Spec
	for _, n := range counts {
		for _, mode := range modes {
			p := expers.MulticoreParams{
				Config:                 *config,
				Mode:                   mode,
				Cores:                  n,
				Bench:                  *bench,
				WarmupInstr:            *warmup,
				InstrPerCore:           *instr,
				SharedBytes:            1 << 20,
				SharedFrac:             *shared,
				CoherencePenaltyCycles: 20,
				Seed:                   *seed,
			}
			raw, err := json.Marshal(p)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, runner.Spec{
				Kind: "multicore", Name: fmt.Sprintf("%dcore/%s", n, mode), Params: raw,
			})
		}
	}

	opts := runner.Options{Workers: *workers}
	if *runsRoot != "" {
		dir, err := runner.NewRunDir(filepath.Join(*runsRoot, "multicore"))
		if err != nil {
			log.Fatal(err)
		}
		opts.ArtifactDir = dir
	}
	if *progress {
		opts.OnProgress = func(p runner.Progress) {
			log.Printf("%d/%d done (%.2f jobs/s, ETA %s)",
				p.Completed(), p.Total, p.JobsPerSec, p.ETA.Round(1e8))
		}
	}
	camp := runner.Campaign{Name: "multicore", Seed: *seed, Jobs: jobs}
	res, err := runner.Run(context.Background(), expers.NewCampaignRegistry(), camp, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Results {
		if r.Status != runner.StatusDone {
			log.Fatalf("job %d (%s) %s: %s", r.Index, r.Name, r.Status, r.Error)
		}
	}
	if res.ArtifactDir != "" {
		log.Printf("records archived in %s", res.ArtifactDir)
	}

	cfgName := strings.ToUpper(*config)
	t := report.NewTable(
		fmt.Sprintf("Multi-core PCS: %s on Config %s, %d instr/core, %.0f%% shared data",
			w.Name, cfgName, *instr, *shared*100),
		"Cores", "Policy", "Cycles (max core)", "Exec ovh %", "L2 misses", "Coh. invals",
		"Cache E (mJ)", "E saving %")
	i := 0
	for _, n := range counts {
		var baseCycles uint64
		var baseE float64
		for _, mode := range modes {
			out := res.Results[i].Output.(expers.MulticoreOutput)
			i++
			if mode == "baseline" {
				baseCycles, baseE = out.GlobalCycles, out.TotalCacheEnergyJ
			}
			t.AddRow(n, out.Mode, out.GlobalCycles,
				fmt.Sprintf("%+.2f", (float64(out.GlobalCycles)/float64(baseCycles)-1)*100),
				out.L2Misses, out.CoherenceInvalidations,
				fmt.Sprintf("%.3f", out.TotalCacheEnergyJ*1e3),
				fmt.Sprintf("%.1f", (1-out.TotalCacheEnergyJ/baseE)*100))
		}
	}
	if *jsonOut {
		err = t.RenderJSON(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}
