// Command pcs-multicore runs the multi-core extension (the paper's
// Sec. 5 future work): N cores with private power/capacity-scaled L1s
// over one shared, coherently-maintained, PCS-managed L2. It sweeps the
// core count and reports energy savings, execution overhead, L2 pressure
// and coherence traffic for baseline, SPCS and DPCS.
//
// Usage:
//
//	pcs-multicore [-cores 1,2,4] [-bench name] [-instr N] [-warmup N]
//	              [-shared frac] [-config A|B] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/multicore"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-multicore: ")
	var (
		coresFlag = flag.String("cores", "1,2,4", "comma-separated core counts to sweep")
		bench     = flag.String("bench", "gobmk.s", "workload run on every core")
		instr     = flag.Uint64("instr", 2_000_000, "measured instructions per core")
		warmup    = flag.Uint64("warmup", 400_000, "warm-up instructions per core")
		shared    = flag.Float64("shared", 0.10, "fraction of data accesses to the shared region")
		config    = flag.String("config", "A", "system configuration: A or B")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	w, ok := trace.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (known: %v)", *bench, trace.Names())
	}
	var sysCfg cpusim.SystemConfig
	switch *config {
	case "A", "a":
		sysCfg = cpusim.ConfigA()
	case "B", "b":
		sysCfg = cpusim.ConfigB()
	default:
		log.Fatalf("unknown config %q", *config)
	}

	var counts []int
	for _, p := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			log.Fatalf("bad core count %q", p)
		}
		counts = append(counts, n)
	}

	t := report.NewTable(
		fmt.Sprintf("Multi-core PCS: %s on Config %s, %d instr/core, %.0f%% shared data",
			w.Name, sysCfg.Name, *instr, *shared*100),
		"Cores", "Policy", "Cycles (max core)", "Exec ovh %", "L2 misses", "Coh. invals",
		"Cache E (mJ)", "E saving %")
	for _, n := range counts {
		cfg := multicore.Config{
			System:                 sysCfg,
			Cores:                  n,
			SharedBytes:            1 << 20,
			SharedFrac:             *shared,
			CoherencePenaltyCycles: 20,
		}
		var baseCycles uint64
		var baseE float64
		for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
			r, err := multicore.Run(cfg, mode, w, *warmup, *instr, *seed)
			if err != nil {
				log.Fatal(err)
			}
			if mode == core.Baseline {
				baseCycles, baseE = r.GlobalCycles, r.TotalCacheEnergyJ
			}
			t.AddRow(n, mode.String(), r.GlobalCycles,
				fmt.Sprintf("%+.2f", (float64(r.GlobalCycles)/float64(baseCycles)-1)*100),
				r.L2.Misses, r.CoherenceInvalidations,
				fmt.Sprintf("%.3f", r.TotalCacheEnergyJ*1e3),
				fmt.Sprintf("%.1f", (1-r.TotalCacheEnergyJ/baseE)*100))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
