// Command pcs-bist demonstrates the silicon-characterisation flow the
// paper built on its 45 nm Red Cooper test chips: it instantiates a
// Monte-Carlo SRAM array (each cell gets its own minimum operating
// voltage), runs the March SS test at each allowed VDD level, populates
// the compressed multi-VDD fault map, and verifies the fault inclusion
// property that makes the log2(N+1)-bit FM encoding possible.
//
// Usage:
//
//	pcs-bist [-rows N] [-cols N] [-seed S] [-levels v1,v2,...] [-march ss|c]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bist"
	"repro/internal/faultmap"
	"repro/internal/report"
	"repro/internal/sram"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-bist: ")
	var (
		rows   = flag.Int("rows", 256, "array rows (one cache block per row)")
		cols   = flag.Int("cols", 512, "array columns (bits per block)")
		seed   = flag.Uint64("seed", 1, "Monte-Carlo seed")
		levels = flag.String("levels", "0.54,0.70,1.00", "comma-separated VDD levels, low to high")
		march  = flag.String("march", "ss", "march algorithm: ss (22N) or c (10N)")
	)
	flag.Parse()

	volts, err := parseLevels(*levels)
	if err != nil {
		log.Fatal(err)
	}
	lv, err := faultmap.NewLevels(volts...)
	if err != nil {
		log.Fatal(err)
	}
	var test bist.Test
	switch *march {
	case "ss":
		test = bist.MarchSS()
	case "c":
		test = bist.MarchC()
	default:
		log.Fatalf("unknown march %q", *march)
	}

	fmt.Printf("%s (%dN)\n\n", test, test.OpsPerCell())
	rng := stats.NewRNG(*seed)
	model := sram.NewWangCalhounBER()
	arr := sram.NewArray(rng, model, *rows, *cols, 0.30, 1.00)

	m, results, violations := bist.PopulateFaultMap(test, arr, lv)

	t := report.NewTable("March results per VDD level",
		"VDD (V)", "Ops", "Faulty cells", "Faulty rows", "Expected BER", "Observed BER")
	for _, r := range results {
		total := float64(*rows * *cols)
		t.AddRow(fmt.Sprintf("%.2f", r.VDD), r.Ops,
			len(r.FaultyCells), len(r.FaultyRows),
			fmt.Sprintf("%.3e", model.BER(r.VDD)),
			fmt.Sprintf("%.3e", float64(len(r.FaultyCells))/total))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ft := report.NewTable("Fault map (FM value histogram)",
		"FM value", "Meaning", "Blocks", "Fraction")
	counts := make([]int, lv.N()+1)
	for b := 0; b < m.NumBlocks(); b++ {
		counts[m.FM(b)]++
	}
	for fmv, c := range counts {
		meaning := "usable at every level"
		if fmv > 0 {
			meaning = fmt.Sprintf("faulty at levels <= %d (VDD <= %.2f V)", fmv, lv.Volts(fmv))
		}
		ft.AddRow(fmv, meaning, c, fmt.Sprintf("%.4f", float64(c)/float64(m.NumBlocks())))
	}
	if err := ft.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault map storage: %d bits per block (%d FM + 1 Faulty)\n",
		m.StorageBitsPerBlock(), lv.FMBits())
	if len(violations) == 0 {
		fmt.Println("fault inclusion property: VERIFIED (no block healthy below a faulty level)")
	} else {
		fmt.Printf("fault inclusion property: %d VIOLATIONS\n", len(violations))
		for _, v := range violations {
			fmt.Println(" ", v.Error())
		}
		os.Exit(1)
	}
}

func parseLevels(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad level %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
