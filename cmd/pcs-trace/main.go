// Command pcs-trace records the synthetic SPEC-like workloads to the
// compact binary trace format and replays recorded traces through the
// simulator. Recording makes runs exchangeable and exactly repeatable
// across library versions — the trace, not the generator, becomes the
// ground truth.
//
// Usage:
//
//	pcs-trace -record -bench mcf.s -n 1000000 -o mcf.trc
//	pcs-trace -replay mcf.trc [-config A|B] [-mode baseline|spcs|dpcs] [-warmup N]
//	pcs-trace -info mcf.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-trace: ")
	var (
		record = flag.Bool("record", false, "record a workload to a trace file")
		replay = flag.String("replay", "", "trace file to replay through the simulator")
		info   = flag.String("info", "", "trace file to summarise")
		bench  = flag.String("bench", "hmmer.s", "workload to record")
		n      = flag.Uint64("n", 1_000_000, "instructions to record")
		out    = flag.String("o", "out.trc", "output trace path")
		seed   = flag.Uint64("seed", 1, "generator seed for -record")
		config = flag.String("config", "A", "system configuration for -replay")
		mode   = flag.String("mode", "spcs", "policy for -replay: baseline, spcs or dpcs")
		warmup = flag.Uint64("warmup", 100_000, "warm-up instructions for -replay")
	)
	flag.Parse()

	switch {
	case *record:
		doRecord(*bench, *n, *out, *seed)
	case *replay != "":
		doReplay(*replay, *config, *mode, *warmup, *seed)
	case *info != "":
		doInfo(*info)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(bench string, n uint64, out string, seed uint64) {
	w, ok := trace.ByName(bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (known: %v)", bench, trace.Names())
	}
	g, err := trace.New(w, seed)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.Record(g, n, f); err != nil {
		log.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/instr)\n",
		n, bench, out, float64(st.Size())/float64(n))
}

func openReplay(path string) (*trace.ReplayGenerator, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var open []io.Closer
	open = append(open, f)
	gen := trace.NewReplay(path, r, func() (*trace.Reader, error) {
		f2, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		open = append(open, f2)
		return trace.NewReader(f2)
	})
	closeAll := func() {
		for _, c := range open {
			c.Close()
		}
	}
	return gen, closeAll, nil
}

func doReplay(path, config, modeName string, warmup, seed uint64) {
	gen, closeAll, err := openReplay(path)
	if err != nil {
		log.Fatal(err)
	}
	defer closeAll()

	// Count the trace first so the measured window fits the recording.
	total, err := countTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	if warmup >= total {
		log.Fatalf("warm-up %d exceeds trace length %d", warmup, total)
	}

	var cfg cpusim.SystemConfig
	switch config {
	case "A", "a":
		cfg = cpusim.ConfigA()
	case "B", "b":
		cfg = cpusim.ConfigB()
	default:
		log.Fatalf("unknown config %q", config)
	}
	var m core.Mode
	switch modeName {
	case "baseline":
		m = core.Baseline
	case "spcs":
		m = core.SPCS
	case "dpcs":
		m = core.DPCS
	default:
		log.Fatalf("unknown mode %q", modeName)
	}

	res, err := cpusim.RunGenerator(cfg, m, gen, cpusim.RunOptions{
		WarmupInstr: warmup, SimInstr: total - warmup, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

func doInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}
	var ins trace.Instr
	var total, mem, writes uint64
	minA, maxA := ^uint64(0), uint64(0)
	for {
		if err := r.Read(&ins); err != nil {
			if err == io.EOF {
				break
			}
			log.Fatal(err)
		}
		total++
		if ins.HasMem {
			mem++
			if ins.Write {
				writes++
			}
			if ins.Addr < minA {
				minA = ins.Addr
			}
			if ins.Addr > maxA {
				maxA = ins.Addr
			}
		}
	}
	fmt.Printf("%s: %d instructions, %.1f%% memory ops (%.1f%% writes), data range [%#x, %#x]\n",
		path, total, 100*float64(mem)/float64(total),
		100*float64(writes)/float64(maxU(mem, 1)), minA, maxA)
}

func countTrace(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return 0, err
	}
	var ins trace.Instr
	var total uint64
	for {
		if err := r.Read(&ins); err != nil {
			if err == io.EOF {
				return total, nil
			}
			return 0, err
		}
		total++
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
