// Command pcs-report runs the complete reproduction — every analytical
// figure, the Fig. 4 simulation matrix, and the extension studies — and
// writes a single self-contained Markdown report with all tables
// inlined. It is the one-command answer to "regenerate the paper".
//
// Usage:
//
//	pcs-report [-o report.md] [-instr N] [-quick] [-timeline file]
//
// -quick shrinks the simulation windows ~10x for a fast smoke run; the
// full default takes tens of minutes.
//
// -timeline skips the full reproduction and instead renders a policy
// timeline (a JSONL file written by pcs-sim -timeline or pcs-sweep
// -timeline) as VDD-vs-time tables: the transition trajectory and the
// per-level residency. The full report includes the same section from a
// short in-process DPCS run.
package main

import (
	"flag"
	"fmt"

	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-report: ")
	var (
		out      = flag.String("o", "report.md", "output Markdown path")
		instr    = flag.Uint64("instr", 24_000_000, "measured instructions per simulation run")
		quick    = flag.Bool("quick", false, "use ~10x smaller simulation windows")
		timeline = flag.String("timeline", "", "render this policy timeline JSONL as VDD-vs-time tables and exit")
		clockGHz = flag.Float64("clock", 2.0, "clock for -timeline cycle-to-time conversion (GHz; Config A = 2, B = 3)")
	)
	flag.Parse()
	if *quick {
		*instr = 2_000_000
	}
	if *timeline != "" {
		renderTimeline(*timeline, *clockGHz*1e9)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	fmt.Fprintf(f, "# Power/Capacity Scaling — reproduction report\n\n")
	fmt.Fprintf(f, "Generated %s; %d measured instructions per simulation run.\n\n",
		time.Now().Format(time.RFC3339), *instr)

	section := func(title string) { fmt.Fprintf(f, "## %s\n\n", title) }
	table := func(t *report.Table) {
		fmt.Fprintln(f, "```")
		if err := t.Render(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "```")
		fmt.Fprintln(f)
	}
	must := func(t *report.Table, err error) *report.Table {
		if err != nil {
			log.Fatal(err)
		}
		return t
	}

	section("Fig. 2 — SRAM bit error rate vs VDD")
	_, t2 := expers.Fig2()
	table(t2)

	section("Fig. 3a — static power vs effective capacity (L1-A)")
	_, t3a, err := expers.Fig3a(expers.L1ConfigA(), 2)
	table(must(t3a, err))
	for _, n := range []int{1, 2} {
		gap, err := expers.Fig3aGapAt99(expers.L1ConfigA(), n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(f, "Proposed vs FFT-Cache at 99%% capacity, %d VDD levels: **%.1f%% lower** (paper: %s)\n\n",
			n+1, gap*100, map[int]string{1: "17.8%", 2: "28.2%"}[n])
	}

	section("Fig. 3b — usable blocks vs VDD (L1-A)")
	_, t3b, err := expers.Fig3b(expers.L1ConfigA())
	table(must(t3b, err))

	section("Fig. 3c — leakage breakdown vs VDD (L1-A)")
	_, t3c, err := expers.Fig3c(expers.L1ConfigA())
	table(must(t3c, err))

	section("Fig. 3d — yield vs VDD, five schemes (L1-A)")
	_, t3d, err := expers.Fig3d(expers.L1ConfigA())
	table(must(t3d, err))
	_, tmv, err := expers.MinVDDs(expers.L1ConfigA())
	table(must(tmv, err))

	section("Area overheads (Sec. 4.2; paper: 2–5 %)")
	_, ta, err := expers.AreaOverheads()
	table(must(ta, err))

	section("Computed voltage plans (Table 2)")
	_, tv, err := expers.VDDPlans()
	table(must(tv, err))

	section("Bit-cell comparison (Sec. 2 related work)")
	_, tc, err := expers.CellComparison()
	table(must(tc, err))

	section("Leakage-technique comparison (Sec. 2 related work)")
	_, tl, err := expers.LeakageComparison(minU(*instr, 2_000_000), 1)
	table(must(tl, err))

	section("Fig. 4 — simulation (16 benchmarks x baseline/SPCS/DPCS)")
	opts := cpusim.RunOptions{WarmupInstr: maxU(*instr/12, 500_000), SimInstr: *instr, Seed: 1}
	for _, cfg := range []cpusim.SystemConfig{cpusim.ConfigA(), cpusim.ConfigB()} {
		fmt.Fprintf(os.Stderr, "simulating Config %s (%d instr x 48 runs)...\n", cfg.Name, *instr)
		data, err := expers.Fig4(cfg, opts, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
		table(expers.Fig4PowerTable(data, "L1"))
		table(expers.Fig4PowerTable(data, "L2"))
		table(expers.Fig4OverheadTable(data))
		table(expers.Fig4EnergyTable(data))
		table(expers.SummaryTable(expers.Summarise(data)))
		_, ts := expers.SystemWide(data, expers.DefaultSystemModel())
		table(ts)
	}

	section("DPCS policy ablation (DESIGN.md §6)")
	_, tab, err := expers.Ablation([]string{"hmmer.s", "sjeng.s"},
		cpusim.RunOptions{WarmupInstr: opts.WarmupInstr, SimInstr: minU(*instr, 8_000_000), Seed: 1})
	table(must(tab, err))

	section("DPCS VDD trajectory (bzip2.s, Config A)")
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		log.Fatal("benchmark bzip2.s missing from suite")
	}
	col := &obs.Collector{}
	trRun, err := cpusim.Run(cpusim.ConfigA(), core.DPCS, w, cpusim.RunOptions{
		WarmupInstr: opts.WarmupInstr, SimInstr: minU(*instr, 4_000_000), Seed: 1, Sink: col,
	})
	if err != nil {
		log.Fatal(err)
	}
	table(expers.VDDTrajectoryTable(col.Events, cpusim.ConfigA().ClockHz, 24))
	table(expers.VDDResidencyTable(col.Events, trRun.Cycles))

	fmt.Fprintf(f, "---\nTotal generation time: %s\n", time.Since(start).Round(time.Second))
	fmt.Println("wrote", *out)
}

// renderTimeline re-renders a saved policy timeline as VDD-vs-time
// tables on stdout.
func renderTimeline(path string, clockHz float64) {
	events, err := obs.ReadPolicyTimeline(path)
	if err != nil {
		log.Fatal(err)
	}
	// The run length is not recorded in the timeline; the last observed
	// event cycle is the best lower bound for the residency replay.
	var end uint64
	for _, ev := range events {
		if ev.Cycle > end {
			end = ev.Cycle
		}
	}
	for _, t := range []*report.Table{
		expers.VDDTrajectoryTable(events, clockHz, 40),
		expers.VDDResidencyTable(events, end),
	} {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
