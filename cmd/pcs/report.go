package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/report"
	"repro/internal/trace"
)

// reportCommand runs the complete reproduction — every analytical
// figure, the Fig. 4 simulation matrix, and the extension studies — and
// writes a single self-contained Markdown report with all tables
// inlined. It is the one-command answer to "regenerate the paper"; the
// old pcs-report binary as a subcommand.
//
// -quick shrinks the simulation windows ~10x for a fast smoke run; the
// full default takes tens of minutes. -timeline skips the full
// reproduction and instead renders a policy timeline (a JSONL file
// written by pcs sim -timeline or pcs sweep -timeline) as VDD-vs-time
// tables. -perfetto RUNDIR converts a traced run's spans.jsonl to a
// Chrome trace-event file loadable in Perfetto / chrome://tracing, and
// -top RUNDIR renders the run's per-cell resource attribution (see
// DESIGN.md §11); both read a runs/<ts>/ directory and exit.
func reportCommand() *cli.Command {
	var (
		out      string
		instr    uint64
		quick    bool
		timeline string
		clockGHz float64
		perfetto bool
		top      bool
		sortKey  string
		topN     int
	)
	return &cli.Command{
		Name:    "report",
		Summary: "run the full reproduction and write one Markdown report",
		Usage:   "[-o report.md] [-instr N] [-quick] [-timeline file [-clock GHz]] [-perfetto RUNDIR] [-top RUNDIR [-sort key] [-n N]]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&out, "o", "report.md", "output Markdown path (with -perfetto: trace output path, default RUNDIR/trace.json)")
			fs.Uint64Var(&instr, "instr", 24_000_000, "measured instructions per simulation run")
			fs.BoolVar(&quick, "quick", false, "use ~10x smaller simulation windows")
			fs.StringVar(&timeline, "timeline", "", "render this policy timeline JSONL as VDD-vs-time tables and exit")
			fs.Float64Var(&clockGHz, "clock", 2.0, "clock for -timeline cycle-to-time conversion (GHz; Config A = 2, B = 3)")
			fs.BoolVar(&perfetto, "perfetto", false, "convert RUNDIR/spans.jsonl to a Chrome trace-event file and exit")
			fs.BoolVar(&top, "top", false, "render RUNDIR's per-cell resource attribution tables and exit")
			fs.StringVar(&sortKey, "sort", "cpu", "with -top: sort key (cpu, wall, allocs, energy)")
			fs.IntVar(&topN, "n", 15, "with -top: rows in the top-cells table (0 = all)")
		},
		Run: func(fs *flag.FlagSet) error {
			if quick {
				instr = 2_000_000
			}
			if timeline != "" {
				return renderSavedTimeline(timeline, clockGHz*1e9)
			}
			if perfetto || top {
				if fs.NArg() != 1 {
					return fmt.Errorf("-perfetto/-top need exactly one run directory argument (got %d)", fs.NArg())
				}
				dir := fs.Arg(0)
				if perfetto {
					dst := filepath.Join(dir, "trace.json")
					if flagsSet(fs)["o"] {
						dst = out
					}
					return exportPerfetto(dir, dst)
				}
				return renderTopCells(dir, sortKey, topN)
			}
			return writeReport(out, instr)
		},
	}
}

// exportPerfetto converts a traced run directory's spans.jsonl into a
// Chrome trace-event JSON file for Perfetto / chrome://tracing.
func exportPerfetto(dir, dst string) error {
	spans, err := tracez.ReadFile(filepath.Join(dir, tracez.FileName))
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no spans recorded (was the campaign run with tracing on?)", dir)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := tracez.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d spans to %s (load in https://ui.perfetto.dev or chrome://tracing)\n", len(spans), dst)
	return nil
}

// renderTopCells renders a run directory's per-cell resource
// attribution: the top-N cells table plus per-kind totals, joined with
// per-cell energy from results.jsonl where available.
func renderTopCells(dir, sortKey string, n int) error {
	events, err := obs.ReadJobTimeline(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		return err
	}
	cells := report.CellsFromEvents(events)
	if len(cells) == 0 {
		return fmt.Errorf("%s: timeline has no terminal job events", dir)
	}
	if err := report.AttachEnergyFile(cells, filepath.Join(dir, "results.jsonl")); err != nil {
		return err
	}
	if err := report.SortCells(cells, sortKey); err != nil {
		return err
	}
	if err := report.TopCellsTable(cells, n).Render(os.Stdout); err != nil {
		return err
	}
	return report.KindSummaryTable(cells).Render(os.Stdout)
}

func writeReport(out string, instr uint64) (err error) {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	start := time.Now()
	fmt.Fprintf(f, "# Power/Capacity Scaling — reproduction report\n\n")
	fmt.Fprintf(f, "Generated %s; %d measured instructions per simulation run.\n\n",
		time.Now().Format(time.RFC3339), instr)

	section := func(title string) { fmt.Fprintf(f, "## %s\n\n", title) }
	table := func(t *report.Table) error {
		fmt.Fprintln(f, "```")
		if err := t.Render(f); err != nil {
			return err
		}
		fmt.Fprintln(f, "```")
		fmt.Fprintln(f)
		return nil
	}
	// must keeps the section sequence flat: it renders the table unless
	// its producer already failed.
	must := func(t *report.Table, perr error) error {
		if perr != nil {
			return perr
		}
		return table(t)
	}

	section("Fig. 2 — SRAM bit error rate vs VDD")
	_, t2 := expers.Fig2()
	if err := table(t2); err != nil {
		return err
	}

	section("Fig. 3a — static power vs effective capacity (L1-A)")
	_, t3a, err := expers.Fig3a(expers.L1ConfigA(), 2)
	if err := must(t3a, err); err != nil {
		return err
	}
	for _, n := range []int{1, 2} {
		gap, err := expers.Fig3aGapAt99(expers.L1ConfigA(), n)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "Proposed vs FFT-Cache at 99%% capacity, %d VDD levels: **%.1f%% lower** (paper: %s)\n\n",
			n+1, gap*100, map[int]string{1: "17.8%", 2: "28.2%"}[n])
	}

	section("Fig. 3b — usable blocks vs VDD (L1-A)")
	_, t3b, err := expers.Fig3b(expers.L1ConfigA())
	if err := must(t3b, err); err != nil {
		return err
	}

	section("Fig. 3c — leakage breakdown vs VDD (L1-A)")
	_, t3c, err := expers.Fig3c(expers.L1ConfigA())
	if err := must(t3c, err); err != nil {
		return err
	}

	section("Fig. 3d — yield vs VDD, five schemes (L1-A)")
	_, t3d, err := expers.Fig3d(expers.L1ConfigA())
	if err := must(t3d, err); err != nil {
		return err
	}
	_, tmv, err := expers.MinVDDs(expers.L1ConfigA())
	if err := must(tmv, err); err != nil {
		return err
	}

	section("Area overheads (Sec. 4.2; paper: 2–5 %)")
	_, ta, err := expers.AreaOverheads()
	if err := must(ta, err); err != nil {
		return err
	}

	section("Computed voltage plans (Table 2)")
	_, tv, err := expers.VDDPlans()
	if err := must(tv, err); err != nil {
		return err
	}

	section("Bit-cell comparison (Sec. 2 related work)")
	_, tc, err := expers.CellComparison()
	if err := must(tc, err); err != nil {
		return err
	}

	section("Leakage-technique comparison (Sec. 2 related work)")
	_, tl, err := expers.LeakageComparison(minU(instr, 2_000_000), 1)
	if err := must(tl, err); err != nil {
		return err
	}

	section("Fig. 4 — simulation (16 benchmarks x baseline/SPCS/DPCS)")
	opts := cpusim.RunOptions{WarmupInstr: maxU(instr/12, 500_000), SimInstr: instr, Seed: 1}
	for _, cfg := range []cpusim.SystemConfig{cpusim.ConfigA(), cpusim.ConfigB()} {
		fmt.Fprintf(os.Stderr, "simulating Config %s (%d instr x 48 runs)...\n", cfg.Name, instr)
		data, err := expers.Fig4(cfg, opts, os.Stderr)
		if err != nil {
			return err
		}
		for _, t := range []*report.Table{
			expers.Fig4PowerTable(data, "L1"),
			expers.Fig4PowerTable(data, "L2"),
			expers.Fig4OverheadTable(data),
			expers.Fig4EnergyTable(data),
			expers.SummaryTable(expers.Summarise(data)),
		} {
			if err := table(t); err != nil {
				return err
			}
		}
		_, ts := expers.SystemWide(data, expers.DefaultSystemModel())
		if err := table(ts); err != nil {
			return err
		}
	}

	section("DPCS policy ablation (DESIGN.md §6)")
	_, tab, err := expers.Ablation([]string{"hmmer.s", "sjeng.s"},
		cpusim.RunOptions{WarmupInstr: opts.WarmupInstr, SimInstr: minU(instr, 8_000_000), Seed: 1})
	if err := must(tab, err); err != nil {
		return err
	}

	section("DPCS VDD trajectory (bzip2.s, Config A)")
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		return fmt.Errorf("benchmark bzip2.s missing from suite")
	}
	col := &obs.Collector{}
	trRun, err := cpusim.Run(cpusim.ConfigA(), core.DPCS, w, cpusim.RunOptions{
		WarmupInstr: opts.WarmupInstr, SimInstr: minU(instr, 4_000_000), Seed: 1, Sink: col,
	})
	if err != nil {
		return err
	}
	if err := table(expers.VDDTrajectoryTable(col.Events, cpusim.ConfigA().ClockHz, 24)); err != nil {
		return err
	}
	if err := table(expers.VDDResidencyTable(col.Events, trRun.Cycles)); err != nil {
		return err
	}

	fmt.Fprintf(f, "---\nTotal generation time: %s\n", time.Since(start).Round(time.Second))
	fmt.Println("wrote", out)
	return nil
}

// renderSavedTimeline re-renders a saved policy timeline as VDD-vs-time
// tables on stdout.
func renderSavedTimeline(path string, clockHz float64) error {
	events, err := obs.ReadPolicyTimeline(path)
	if err != nil {
		return err
	}
	// The run length is not recorded in the timeline; the last observed
	// event cycle is the best lower bound for the residency replay.
	var end uint64
	for _, ev := range events {
		if ev.Cycle > end {
			end = ev.Cycle
		}
	}
	for _, t := range []*report.Table{
		expers.VDDTrajectoryTable(events, clockHz, 40),
		expers.VDDResidencyTable(events, end),
	} {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
