package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/version"
)

// serveCommand exposes the campaign runner (internal/runner) as an HTTP
// job service, so sweep and Monte-Carlo campaigns over the repository's
// experiment kinds can be submitted, monitored and harvested remotely —
// the old pcs-server binary as a subcommand:
//
//	POST   /campaigns               submit a campaign (job list or spec document)
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          status, progress, ETA
//	GET    /campaigns/{id}/results  stream result records as JSON lines
//	GET    /campaigns/{id}/events   stream job lifecycle events (NDJSON)
//	GET    /campaigns/{id}/spans    stream trace spans (NDJSON; -trace)
//	DELETE /campaigns/{id}          cancel a campaign
//	GET    /metrics                 Prometheus exposition
//	GET    /healthz                 liveness probe
//	GET    /readyz                  readiness probe (503 once draining)
//
// POST /campaigns accepts either the low-level job-list body or the
// same declarative spec document (JSON or TOML) that pcs sim/sweep/
// multicore take via -spec; specs expand through internal/config.
//
// The server drains gracefully on SIGTERM/SIGINT: /readyz flips to 503
// and new submissions are refused, the listener stops accepting
// requests, running campaigns are cancelled (simulations stop
// mid-flight via context), and their workers are waited for.
func serveCommand() *cli.Command {
	var (
		addr      string
		workers   int
		runsRoot  string
		grace     time.Duration
		withPprof bool
		logJSON   bool
		cacheDir  string
		traceOn   bool
	)
	return &cli.Command{
		Name:    "serve",
		Summary: "run the HTTP campaign job service",
		Usage:   "[-addr :8080] [-workers N] [-runs dir] [-grace 10s] [-pprof] [-log-json]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&addr, "addr", ":8080", "listen address")
			fs.IntVar(&workers, "workers", 0, "default workers per campaign (0 = GOMAXPROCS)")
			fs.StringVar(&runsRoot, "runs", "runs", "artifact root directory (empty = no artifacts)")
			fs.DurationVar(&grace, "grace", 10*time.Second, "shutdown grace period for in-flight requests")
			fs.BoolVar(&withPprof, "pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
			fs.BoolVar(&logJSON, "log-json", false, "emit JSON log lines instead of key=value text")
			fs.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory shared by all campaigns (adds resultstore_* metrics)")
			fs.BoolVar(&traceOn, "trace", true, "record campaign spans (runs/<id>/spans.jsonl and GET /campaigns/{id}/spans)")
		},
		Run: func(fs *flag.FlagSet) error {
			var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
			if logJSON {
				handler = slog.NewJSONHandler(os.Stderr, nil)
			}
			logger := slog.New(handler)

			cache, err := openCache(cacheDir)
			if err != nil {
				return err
			}
			srv := runner.NewServer(expers.NewCampaignRegistry(), runner.ServerOptions{
				DefaultWorkers: workers,
				ArtifactRoot:   runsRoot,
				Logger:         logger,
				SpecExpander:   config.ExpandBytes,
				Cache:          cache,
				CodeVersion:    version.String(),
				TraceSpans:     traceOn,
			})

			mux := http.NewServeMux()
			mux.Handle("/", srv.Handler())
			if withPprof {
				// Opt-in only: profiling endpoints expose heap contents and
				// must not be reachable on a default deployment.
				mux.HandleFunc("/debug/pprof/", pprof.Index)
				mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
				mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
				mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
				mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			}
			httpSrv := &http.Server{Addr: addr, Handler: obs.RequestLogger(logger, mux)}

			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			defer stop()

			errCh := make(chan error, 1)
			go func() { errCh <- httpSrv.ListenAndServe() }()
			logger.Info("listening", "addr", addr, "kinds", srv.Kinds(), "pprof", withPprof)

			select {
			case err := <-errCh:
				// Listener died before any signal; nothing to drain.
				return err
			case <-ctx.Done():
			}
			logger.Info("signal received, draining", "grace", grace)

			// Flip readiness first so load balancers stop routing here
			// while in-flight requests finish.
			srv.BeginDrain()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
			defer cancel()
			if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				logger.Error("shutdown", "err", err)
			}
			// Cancel running campaigns and wait for their workers.
			srv.Close()
			logger.Info("drained, exiting")
			return nil
		},
	}
}
