// Command pcs is the single entry point to the Power/Capacity Scaling
// reproduction. Every experiment the repository defines is a
// subcommand:
//
//	pcs sim         Fig. 4 architectural simulation grid
//	pcs sweep       design-space studies around the mechanism
//	pcs multicore   multi-core extension (shared PCS-managed L2)
//	pcs analytical  Fig. 2/3, area, and voltage-plan tables
//	pcs bist        BIST / fault-map characterisation demo
//	pcs trace       record, replay and inspect workload traces
//	pcs figures     render the paper figures as SVG
//	pcs report      full reproduction as one Markdown report
//	pcs serve       HTTP campaign job service
//	pcs top         per-cell resource attribution (run dir or live server)
//	pcs verify      check a run directory's hash-chained ledger
//	pcs cache       inspect or prune the content-addressed result store
//	pcs version     print the build version
//
// The simulation-grid commands (sim, sweep, multicore) also accept
// -spec file.json|file.toml, a declarative experiment document (see
// internal/config); the same document can be POSTed to a pcs serve
// instance at /campaigns. Any flag can be defaulted from the
// environment as PCS_<FLAG> (e.g. PCS_WORKERS=8); explicit flags win.
//
// The campaign commands also accept -cache DIR (env PCS_CACHE): a
// content-addressed result store that memoizes experiment cells, so a
// re-run of an already-computed campaign is served from cache while
// still producing byte-identical result files (see internal/resultstore
// and DESIGN.md).
package main

import (
	"os"

	"repro/internal/cli"
	"repro/internal/version"
)

func main() {
	app := &cli.App{
		Name:      "pcs",
		Summary:   "Power/Capacity Scaling reproduction toolkit",
		EnvPrefix: "PCS",
		Version:   version.String(),
	}
	app.Register(
		simCommand(),
		sweepCommand(),
		multicoreCommand(),
		analyticalCommand(),
		bistCommand(),
		traceCommand(),
		figuresCommand(),
		reportCommand(),
		serveCommand(),
		topCommand(),
		verifyCommand(),
		cacheCommand(),
	)
	os.Exit(app.Run(os.Args[1:]))
}
