package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/report"
)

// topCommand renders per-cell resource attribution — where a
// campaign's wall time, CPU time, allocations and simulated energy
// went. It reads either an archived run directory (timeline.jsonl +
// results.jsonl) or a live pcs serve campaign over HTTP, following the
// event stream and refreshing the table until the campaign finishes.
func topCommand() *cli.Command {
	var (
		addr     string
		sortKey  string
		topN     int
		interval time.Duration
		once     bool
	)
	return &cli.Command{
		Name:    "top",
		Summary: "show per-cell resource attribution for a run directory or live campaign",
		Usage:   "[-sort key] [-n N] RUNDIR | -addr host:port [-interval 2s] [-once] [campaign-id]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&addr, "addr", "", "pcs serve address; follow a live campaign instead of reading a run directory")
			fs.StringVar(&sortKey, "sort", "cpu", "sort key: cpu, wall, allocs, energy")
			fs.IntVar(&topN, "n", 15, "rows in the top-cells table (0 = all)")
			fs.DurationVar(&interval, "interval", 2*time.Second, "with -addr: table refresh period")
			fs.BoolVar(&once, "once", false, "with -addr: render the current snapshot once and exit")
		},
		Run: func(fs *flag.FlagSet) error {
			if addr == "" {
				if fs.NArg() != 1 {
					return fmt.Errorf("need exactly one run directory (or -addr for live mode)")
				}
				return renderTopCells(fs.Arg(0), sortKey, topN)
			}
			if fs.NArg() > 1 {
				return fmt.Errorf("at most one campaign id with -addr (got %d args)", fs.NArg())
			}
			return liveTop(addr, fs.Arg(0), sortKey, topN, interval, once)
		},
	}
}

// liveTop follows a campaign's event stream on a pcs serve instance and
// periodically re-renders the attribution tables. With an empty id it
// picks the most recently submitted campaign.
func liveTop(addr, id, sortKey string, topN int, interval time.Duration, once bool) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if id == "" {
		var err error
		if id, err = latestCampaign(base); err != nil {
			return err
		}
	}

	resp, err := http.Get(base + "/campaigns/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET /campaigns/%s/events: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}

	// One goroutine decodes the NDJSON stream; the render loop below
	// consumes it on its own clock.
	evCh := make(chan obs.JobEvent, 64)
	errCh := make(chan error, 1)
	go func() {
		defer close(evCh)
		dec := json.NewDecoder(resp.Body)
		for {
			var ev obs.JobEvent
			if err := dec.Decode(&ev); err != nil {
				if err != io.EOF {
					errCh <- fmt.Errorf("event stream: %w", err)
				}
				return
			}
			evCh <- ev
		}
	}()

	render := func(events []obs.JobEvent, clear bool) error {
		cells := report.CellsFromEvents(events)
		if err := attachLiveEnergy(base, id, cells); err != nil {
			fmt.Fprintf(os.Stderr, "pcs top: energy join: %v\n", err)
		}
		if err := report.SortCells(cells, sortKey); err != nil {
			return err
		}
		if clear {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Printf("campaign %s on %s — %d terminal cells, %s\n\n",
			id, addr, len(cells), time.Now().Format(time.TimeOnly))
		if err := report.TopCellsTable(cells, topN).Render(os.Stdout); err != nil {
			return err
		}
		return report.KindSummaryTable(cells).Render(os.Stdout)
	}

	var events []obs.JobEvent
	if once {
		// Snapshot: the stream's first batch carries everything buffered
		// so far; a short quiet gap means we have caught up.
		quiet := time.NewTimer(300 * time.Millisecond)
		defer quiet.Stop()
	snapshot:
		for {
			select {
			case ev, ok := <-evCh:
				if !ok {
					break snapshot
				}
				events = append(events, ev)
				quiet.Reset(300 * time.Millisecond)
			case <-quiet.C:
				break snapshot
			}
		}
		return render(events, false)
	}

	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case ev, ok := <-evCh:
			if !ok {
				select {
				case err := <-errCh:
					return err
				default:
				}
				return render(events, false)
			}
			events = append(events, ev)
		case <-tick.C:
			if err := render(events, true); err != nil {
				return err
			}
		}
	}
}

// latestCampaign asks the server for its campaign list and returns the
// most recently submitted id.
func latestCampaign(base string) (string, error) {
	resp, err := http.Get(base + "/campaigns")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /campaigns: %s", resp.Status)
	}
	var doc struct {
		Campaigns []struct {
			ID string `json:"id"`
		} `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "", fmt.Errorf("GET /campaigns: %w", err)
	}
	if len(doc.Campaigns) == 0 {
		return "", fmt.Errorf("server has no campaigns")
	}
	return doc.Campaigns[len(doc.Campaigns)-1].ID, nil
}

// attachLiveEnergy joins per-cell energy from the campaign's completed
// result records; the /results stream uses the same record shape as
// results.jsonl.
func attachLiveEnergy(base, id string, cells []report.CellUsage) error {
	resp, err := http.Get(base + "/campaigns/" + id + "/results")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /campaigns/%s/results: %s", id, resp.Status)
	}
	return report.AttachEnergy(cells, resp.Body)
}
