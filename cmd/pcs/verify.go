package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/expers"
	"repro/internal/ledger"
	"repro/internal/runner"
	"repro/internal/version"
)

// verifyCommand checks a run directory after the fact: the hash chain
// in ledger.jsonl must link, every per-job digest must match its
// results.jsonl line, and the sidecar manifest/summary must agree with
// the chain. With -recompute N it additionally re-executes a sampled
// subset of the recorded cells with their recorded seeds and demands
// bit-identical output.
func verifyCommand() *cli.Command {
	var recompute int
	return &cli.Command{
		Name:    "verify",
		Summary: "verify a run directory's hash-chained ledger against its results",
		Usage:   "[-recompute N] RUNDIR",
		SetFlags: func(fs *flag.FlagSet) {
			fs.IntVar(&recompute, "recompute", 0, "re-execute N sampled cells and compare output bytes")
		},
		Run: func(fs *flag.FlagSet) error {
			if fs.NArg() != 1 {
				return fmt.Errorf("need exactly one run directory (got %d args)", fs.NArg())
			}
			dir := fs.Arg(0)
			rep, err := ledger.VerifyDir(dir)
			if err != nil {
				return err
			}
			fmt.Printf("%s: ledger OK\n", dir)
			fmt.Printf("  campaign %q: %d jobs (%d done, %d failed, %d cancelled, %d cached), seed %d\n",
				rep.Manifest.Campaign, rep.Manifest.Jobs,
				rep.Summary.Done, rep.Summary.Failed, rep.Summary.Cancelled, rep.Cached,
				rep.Manifest.Seed)
			fmt.Printf("  code version %s\n", orUnknown(rep.Manifest.CodeVersion))
			fmt.Printf("  specs digest %s\n", rep.Manifest.SpecsDigest)
			fmt.Printf("  results digest %s\n", rep.Summary.ResultsDigest)
			for _, sc := range rep.Sidecars {
				fmt.Printf("  sidecar %s: %d bytes, digest %s\n", sc.Name, sc.Bytes, sc.Digest)
			}
			if recompute > 0 {
				if err := recomputeSample(dir, rep, recompute); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "(unrecorded)"
	}
	return s
}

// recomputeSample re-executes up to n of the run's done jobs through
// the campaign registry, pinned to their recorded seeds, and compares
// the marshalled output byte for byte against the "output" field of the
// corresponding results.jsonl line. Sampling is deterministic: evenly
// spaced over the done jobs in index order.
func recomputeSample(dir string, rep *ledger.Report, n int) error {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	var m struct {
		Specs []runner.Spec `json:"specs"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("manifest.json: %w", err)
	}
	if len(m.Specs) != len(rep.Results) {
		return fmt.Errorf("manifest.json lists %d specs, ledger has %d results", len(m.Specs), len(rep.Results))
	}

	data, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		return err
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) != len(rep.Results) {
		return fmt.Errorf("results.jsonl has %d lines, ledger has %d results", len(lines), len(rep.Results))
	}

	var done []int
	for _, r := range rep.Results {
		if r.Status == string(runner.StatusDone) {
			done = append(done, r.Index)
		}
	}
	if len(done) == 0 {
		return fmt.Errorf("run has no done jobs to recompute")
	}
	if n > len(done) {
		n = len(done)
	}
	if v := version.String(); rep.Manifest.CodeVersion != "" && rep.Manifest.CodeVersion != v {
		fmt.Fprintf(os.Stderr, "pcs verify: warning: run was produced by code version %s, this binary is %s — recomputation may legitimately differ\n",
			rep.Manifest.CodeVersion, v)
	}

	reg := expers.NewCampaignRegistry()
	for k := 0; k < n; k++ {
		idx := done[k*len(done)/n]
		spec := m.Specs[idx]
		rec := rep.Results[idx]
		fn, ok := reg.Lookup(spec.Kind)
		if !ok {
			return fmt.Errorf("job %d: kind %q not in the campaign registry", idx, spec.Kind)
		}
		out, err := fn(context.Background(), rec.Seed, spec.Params)
		if err != nil {
			return fmt.Errorf("job %d (%s): recomputation failed: %w", idx, spec.Kind, err)
		}
		got, err := json.Marshal(out)
		if err != nil {
			return fmt.Errorf("job %d: marshal recomputed output: %w", idx, err)
		}
		var line struct {
			Output json.RawMessage `json:"output"`
		}
		if err := json.Unmarshal(lines[idx], &line); err != nil {
			return fmt.Errorf("results.jsonl line %d: %w", idx, err)
		}
		if !bytes.Equal(got, []byte(line.Output)) {
			return fmt.Errorf("job %d (%s, seed %d): recomputed output differs from recorded output", idx, spec.Kind, rec.Seed)
		}
		fmt.Printf("  recomputed job %d (%s, seed %d): bit-identical\n", idx, spec.Kind, rec.Seed)
	}
	fmt.Printf("%s: %d/%d done cells recomputed bit-identically\n", dir, n, len(done))
	return nil
}
