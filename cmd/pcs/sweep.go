package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/version"
)

// sweepCommand explores the design space around the paper's mechanism —
// the old pcs-sweep binary as a subcommand. Studies always run in the
// canonical order (assoc, levels, cells, leakage, dpcs, ablate, mechs)
// whichever way they are selected, so output stays comparable across
// invocations.
func sweepCommand() *cli.Command {
	var (
		spec     string
		study    = make(map[string]*bool, len(expers.StudyNames()))
		bench    string
		instr    uint64
		seed     uint64
		workers  int
		jsonOut  bool
		runsRoot string
		progress bool
		timeline bool
		traceOn  bool
		cacheDir string
		mechsCSV string
		prof     profiler
	)
	summaries := map[string]string{
		"assoc":   "sweep associativity and block size vs min-VDD",
		"levels":  "sweep the number of VDD levels",
		"cells":   "compare 6T/8T/10T bit cells with and without PCS",
		"leakage": "compare drowsy/decay/SPCS leakage techniques",
		"dpcs":    "sweep DPCS policy parameters",
		"ablate":  "run the DPCS policy ablation study",
		"mechs":   "compare registered fault-tolerance mechanisms at 99% yield",
	}
	return &cli.Command{
		Name:    "sweep",
		Summary: "run the design-space studies (min-VDD geometry, VDD levels, cells, leakage, DPCS policy, ablation, mechanisms)",
		Usage:   "[-spec file] [-assoc] [-levels] [-cells] [-leakage] [-dpcs] [-ablate] [-mechs] [flags]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&spec, "spec", "", "experiment spec file (.json or .toml) with a \"sweep\" section")
			for _, name := range expers.StudyNames() {
				study[name] = fs.Bool(name, false, summaries[name])
			}
			fs.StringVar(&mechsCSV, "mechanisms", "",
				"comma-separated mechanism selection for -mechs (default: every registered mechanism)")
			fs.StringVar(&bench, "bench", "bzip2.s", "benchmark for -dpcs")
			fs.Uint64Var(&instr, "instr", 4_000_000, "instructions for -dpcs, -leakage and -ablate runs")
			fs.Uint64Var(&seed, "seed", 1, "seed pinned into the simulation-backed studies")
			fs.IntVar(&workers, "workers", 0, "campaign worker count (0 = GOMAXPROCS)")
			fs.BoolVar(&jsonOut, "json", false, "emit tables as JSON instead of text")
			fs.StringVar(&runsRoot, "runs", "", "archive campaign records under this directory (e.g. runs)")
			fs.BoolVar(&progress, "progress", false, "log campaign progress to stderr")
			fs.BoolVar(&timeline, "timeline", false, "with -runs: record per-job DPCS policy timelines (policy-<index>.jsonl)")
			fs.BoolVar(&traceOn, "trace", false, "with -runs: record campaign trace spans (spans.jsonl, for pcs report -perfetto/-top)")
			fs.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory (memoizes study cells across runs)")
			prof.register(fs)
		},
		Run: func(fs *flag.FlagSet) error {
			stopProf, err := prof.start()
			if err != nil {
				return err
			}
			defer stopProf()
			// Study selection: explicit flags beat the spec's list beats
			// "all of them".
			var selected []string
			for _, name := range expers.StudyNames() {
				if *study[name] {
					selected = append(selected, name)
				}
			}
			if spec != "" {
				doc, err := config.Load(spec)
				if err != nil {
					return err
				}
				if doc.Sweep == nil {
					return fmt.Errorf("%s: pcs sweep needs a \"sweep\" spec section", spec)
				}
				set := flagsSet(fs)
				if len(selected) == 0 {
					selected = doc.Sweep.Studies
				}
				if !set["bench"] {
					bench = doc.Sweep.Bench
				}
				if !set["instr"] {
					instr = doc.Sweep.SimInstr
				}
				if !set["seed"] {
					seed = doc.Seed
				}
				if !set["workers"] && doc.Workers > 0 {
					workers = doc.Workers
				}
				if !set["mechanisms"] && len(doc.Sweep.Mechanisms) > 0 {
					mechsCSV = strings.Join(doc.Sweep.Mechanisms, ",")
				}
			}
			mechNames, err := parseMechanisms(mechsCSV)
			if err != nil {
				return err
			}
			if len(selected) == 0 {
				selected = expers.StudyNames()
			}
			if timeline && runsRoot == "" {
				return fmt.Errorf("-timeline needs -runs (per-job timelines live next to the campaign records)")
			}
			if traceOn && runsRoot == "" {
				return fmt.Errorf("-trace needs -runs (spans.jsonl lives next to the campaign records)")
			}
			cache, err := openCache(cacheDir)
			if err != nil {
				return err
			}
			h := &sweepHarness{
				reg:      expers.NewCampaignRegistry(),
				workers:  workers,
				jsonOut:  jsonOut,
				runsRoot: runsRoot,
				progress: progress,
				timeline: timeline,
				trace:    traceOn,
				cache:    cache,
			}
			// Canonical order regardless of selection order.
			for _, name := range expers.StudyNames() {
				if !contains(selected, name) {
					continue
				}
				var st expers.Study
				if name == "mechs" && mechNames != nil {
					st, err = expers.MechStudy(mechNames)
				} else {
					st, err = expers.StudyByName(name, bench, instr, seed)
				}
				if err != nil {
					return err
				}
				results, err := h.runCampaign(st.Name, seed, st.Jobs)
				if err != nil {
					return err
				}
				t, err := st.Table(results)
				if err != nil {
					return err
				}
				if err := h.emit(t); err != nil {
					return err
				}
			}
			fmt.Fprintf(os.Stderr, "pcs sweep: %d cells: %d cached, %d computed, %d failed\n",
				h.cells, h.cached, h.computed, h.failed)
			return nil
		},
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// sweepHarness bundles the options shared by every study's campaign,
// and accumulates the cell accounting for the end-of-run summary.
type sweepHarness struct {
	reg      *runner.Registry
	workers  int
	jsonOut  bool
	runsRoot string
	progress bool
	timeline bool
	trace    bool
	cache    runner.ResultCache

	cells, cached, computed, failed int
}

// emit renders a table in the selected output format.
func (h *sweepHarness) emit(t *report.Table) error {
	if h.jsonOut {
		return t.RenderJSON(os.Stdout)
	}
	return t.Render(os.Stdout)
}

// runCampaign fans the jobs out across the worker pool and returns the
// per-job results in job order, failing on any failed job.
func (h *sweepHarness) runCampaign(name string, seed uint64, jobs []runner.Spec) ([]runner.JobResult, error) {
	opts := runner.Options{Workers: h.workers, Cache: h.cache, CodeVersion: version.String()}
	if h.runsRoot != "" {
		dir, err := runner.NewRunDir(filepath.Join(h.runsRoot, name))
		if err != nil {
			return nil, err
		}
		opts.ArtifactDir = dir
		opts.TraceSpans = h.trace
	}
	if h.progress {
		opts.OnProgress = func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "pcs sweep: %s: %d/%d done (%.1f jobs/s, ETA %s)\n",
				name, p.Completed(), p.Total, p.JobsPerSec, p.ETA.Round(1e8))
		}
	}
	// Per-job policy timelines: attach a JSONL sink to each job's
	// context; the simulation kinds pick it up via
	// obs.PolicySinkFromContext. Sinks are closed after the campaign so
	// partial writes from a crashed run still flush what they can.
	var (
		sinkMu sync.Mutex
		sinks  []*obs.JSONLSink
	)
	if h.timeline && opts.ArtifactDir != "" {
		opts.JobContext = func(ctx context.Context, i int, _ runner.Spec) context.Context {
			path := filepath.Join(opts.ArtifactDir, fmt.Sprintf("policy-%03d.jsonl", i))
			sink, err := obs.CreateJSONL(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcs sweep: %s: job %d timeline: %v\n", name, i, err)
				return ctx
			}
			sinkMu.Lock()
			sinks = append(sinks, sink)
			sinkMu.Unlock()
			return obs.ContextWithPolicySink(ctx, sink)
		}
	}
	res, err := runner.Run(context.Background(), h.reg, runner.Campaign{Name: name, Seed: seed, Jobs: jobs}, opts)
	for _, sink := range sinks {
		if cerr := sink.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "pcs sweep: %s: close timeline: %v\n", name, cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	h.cells += len(res.Results)
	h.cached += res.Cached
	h.computed += res.Done - res.Cached
	h.failed += res.Failed
	for _, r := range res.Results {
		if r.Status != runner.StatusDone {
			return nil, fmt.Errorf("campaign %s: job %d (%s) %s: %s", name, r.Index, r.Name, r.Status, r.Error)
		}
	}
	if res.ArtifactDir != "" {
		fmt.Fprintf(os.Stderr, "pcs sweep: %s: records archived in %s\n", name, res.ArtifactDir)
	}
	return res.Results, nil
}
