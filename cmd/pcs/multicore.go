package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/expers"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/version"
)

// multicoreCommand runs the multi-core extension (the paper's Sec. 5
// future work): N cores with private power/capacity-scaled L1s over one
// shared, coherently-maintained, PCS-managed L2 — the old pcs-multicore
// binary as a subcommand. The core-count × policy grid goes through the
// same spec expansion the server uses, so a -spec file and the flag
// form produce identical campaigns.
func multicoreCommand() *cli.Command {
	var (
		spec      string
		coresFlag string
		bench     string
		instr     uint64
		warmup    uint64
		shared    float64
		cfgSel    string
		seed      uint64
		workers   int
		jsonOut   bool
		runsRoot  string
		progress  bool
		traceOn   bool
		cacheDir  string
	)
	return &cli.Command{
		Name:    "multicore",
		Summary: "run the multi-core extension (shared PCS-managed L2, core-count x policy grid)",
		Usage:   "[-spec file] [-cores 1,2,4] [-bench name] [-instr N] [flags]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&spec, "spec", "", "experiment spec file (.json or .toml) with a \"multicore\" section")
			fs.StringVar(&coresFlag, "cores", "1,2,4", "comma-separated core counts to sweep")
			fs.StringVar(&bench, "bench", "gobmk.s", "workload run on every core")
			fs.Uint64Var(&instr, "instr", 2_000_000, "measured instructions per core")
			fs.Uint64Var(&warmup, "warmup", 400_000, "warm-up instructions per core")
			fs.Float64Var(&shared, "shared", 0.10, "fraction of data accesses to the shared region")
			fs.StringVar(&cfgSel, "config", "A", "system configuration: A or B")
			fs.Uint64Var(&seed, "seed", 1, "seed")
			fs.IntVar(&workers, "workers", 0, "campaign worker count (0 = GOMAXPROCS)")
			fs.BoolVar(&jsonOut, "json", false, "emit the table as JSON instead of text")
			fs.StringVar(&runsRoot, "runs", "", "archive campaign records under this directory (e.g. runs)")
			fs.BoolVar(&progress, "progress", false, "log campaign progress to stderr")
			fs.BoolVar(&traceOn, "trace", false, "with -runs: record campaign trace spans (spans.jsonl, for pcs report -perfetto/-top)")
			fs.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory (memoizes grid cells across runs)")
		},
		Run: func(fs *flag.FlagSet) error {
			set := flagsSet(fs)
			var ms *config.MulticoreSpec
			if spec != "" {
				doc, err := config.Load(spec)
				if err != nil {
					return err
				}
				if doc.Multicore == nil {
					return fmt.Errorf("%s: pcs multicore needs a \"multicore\" spec section", spec)
				}
				ms = doc.Multicore
				if !set["seed"] {
					seed = doc.Seed
				}
				if !set["workers"] && doc.Workers > 0 {
					workers = doc.Workers
				}
			} else {
				// The old binary's hard-wired shared-region size and
				// coherence penalty are the spec defaults.
				ms = &config.MulticoreSpec{}
			}
			if spec == "" || set["config"] {
				ms.Config = cfgSel
			}
			if spec == "" || set["bench"] {
				ms.Bench = bench
			}
			if spec == "" || set["instr"] {
				ms.InstrPerCore = instr
			}
			if spec == "" || set["warmup"] {
				ms.WarmupInstr = warmup
			}
			if spec == "" || set["shared"] {
				ms.SharedFrac = shared
			}
			if spec == "" || set["cores"] {
				var counts []int
				for _, p := range strings.Split(coresFlag, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(p))
					if err != nil || n < 1 {
						return fmt.Errorf("bad core count %q", p)
					}
					counts = append(counts, n)
				}
				ms.Cores = counts
			}

			doc := &config.Document{Version: config.Version, Seed: seed, Multicore: ms}
			doc.ApplyDefaults()
			if err := doc.Validate(); err != nil {
				return err
			}
			camp, err := doc.ExpandCampaign()
			if err != nil {
				return err
			}

			cache, err := openCache(cacheDir)
			if err != nil {
				return err
			}
			if traceOn && runsRoot == "" {
				return fmt.Errorf("-trace needs -runs (spans.jsonl lives next to the campaign records)")
			}
			opts := runner.Options{Workers: workers, Cache: cache, CodeVersion: version.String()}
			if runsRoot != "" {
				dir, err := runner.NewRunDir(filepath.Join(runsRoot, "multicore"))
				if err != nil {
					return err
				}
				opts.ArtifactDir = dir
				opts.TraceSpans = traceOn
			}
			if progress {
				opts.OnProgress = func(p runner.Progress) {
					fmt.Fprintf(os.Stderr, "pcs multicore: %d/%d done (%.2f jobs/s, ETA %s)\n",
						p.Completed(), p.Total, p.JobsPerSec, p.ETA.Round(1e8))
				}
			}
			res, err := runner.Run(context.Background(), expers.NewCampaignRegistry(), camp, opts)
			if err != nil {
				return err
			}
			for _, r := range res.Results {
				if r.Status != runner.StatusDone {
					return fmt.Errorf("job %d (%s) %s: %s", r.Index, r.Name, r.Status, r.Error)
				}
			}
			if res.ArtifactDir != "" {
				fmt.Fprintf(os.Stderr, "pcs multicore: records archived in %s\n", res.ArtifactDir)
			}
			fmt.Fprintf(os.Stderr, "pcs multicore: %d cells: %d cached, %d computed, %d failed\n",
				len(res.Results), res.Cached, res.Done-res.Cached, res.Failed)

			w, _ := trace.ByName(ms.Bench)
			cfgName := strings.ToUpper(ms.Config)
			t := report.NewTable(
				fmt.Sprintf("Multi-core PCS: %s on Config %s, %d instr/core, %.0f%% shared data",
					w.Name, cfgName, ms.InstrPerCore, ms.SharedFrac*100),
				"Cores", "Policy", "Cycles (max core)", "Exec ovh %", "L2 misses", "Coh. invals",
				"Cache E (mJ)", "E saving %")
			i := 0
			for _, n := range ms.Cores {
				var baseCycles uint64
				var baseE float64
				for _, mode := range []string{"baseline", "SPCS", "DPCS"} {
					out := res.Results[i].Output.(expers.MulticoreOutput)
					i++
					if mode == "baseline" {
						baseCycles, baseE = out.GlobalCycles, out.TotalCacheEnergyJ
					}
					t.AddRow(n, out.Mode, out.GlobalCycles,
						fmt.Sprintf("%+.2f", (float64(out.GlobalCycles)/float64(baseCycles)-1)*100),
						out.L2Misses, out.CoherenceInvalidations,
						fmt.Sprintf("%.3f", out.TotalCacheEnergyJ*1e3),
						fmt.Sprintf("%.1f", (1-out.TotalCacheEnergyJ/baseE)*100))
				}
			}
			if jsonOut {
				return t.RenderJSON(os.Stdout)
			}
			return t.Render(os.Stdout)
		},
	}
}
