package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/version"
)

// simCommand is the Fig. 4 architectural simulation: the 16 SPEC-like
// workloads under baseline, SPCS and DPCS for system Configs A and B —
// the old pcs-sim binary as a subcommand.
func simCommand() *cli.Command {
	var (
		spec     string
		cfgSel   string
		instr    uint64
		warmup   uint64
		seed     uint64
		bench    string
		configs  bool
		csv      bool
		quiet    bool
		timeline string
		workers  int
		runsRoot string
		traceOn  bool
		cacheDir string
		prof     profiler
	)
	return &cli.Command{
		Name:    "sim",
		Summary: "run the Fig. 4 simulation grid (16 workloads x baseline/SPCS/DPCS)",
		Usage:   "[-spec file] [-config A|B|both] [-instr N] [-bench name] [flags]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&spec, "spec", "", "experiment spec file (.json or .toml) with a \"sim\" section")
			fs.StringVar(&cfgSel, "config", "both", "system configuration: A, B or both")
			fs.Uint64Var(&instr, "instr", 24_000_000, "measured instructions per run")
			fs.Uint64Var(&warmup, "warmup", 2_000_000, "warm-up instructions (fast-forward)")
			fs.Uint64Var(&seed, "seed", 1, "seed for fault maps and workloads")
			fs.StringVar(&bench, "bench", "", "run a single named benchmark (e.g. mcf.s)")
			fs.BoolVar(&configs, "configs", false, "print Tables 1-2 style configuration and exit")
			fs.BoolVar(&csv, "csv", false, "emit CSV instead of aligned tables")
			fs.BoolVar(&quiet, "q", false, "suppress per-run progress lines")
			fs.StringVar(&timeline, "timeline", "", "with -bench: write the DPCS policy timeline to this JSONL file")
			fs.IntVar(&workers, "workers", runtime.GOMAXPROCS(0), "parallel simulations for the full grid (results are identical at any worker count)")
			fs.StringVar(&runsRoot, "runs", "", "archive grid campaign records under this directory (e.g. runs)")
			fs.BoolVar(&traceOn, "trace", false, "with -runs: record campaign trace spans (spans.jsonl, for pcs report -perfetto/-top)")
			fs.StringVar(&cacheDir, "cache", "", "content-addressed result cache directory (memoizes grid cells across runs)")
			prof.register(fs)
		},
		Run: func(fs *flag.FlagSet) error {
			if configs {
				return printConfigs(os.Stdout)
			}
			stopProf, err := prof.start()
			if err != nil {
				return err
			}
			defer stopProf()
			if spec != "" {
				doc, err := config.Load(spec)
				if err != nil {
					return err
				}
				if doc.Sim == nil {
					return fmt.Errorf("%s: pcs sim needs a \"sim\" spec section", spec)
				}
				// Explicit flags override the spec; everything else comes
				// from the (defaulted) document.
				set := flagsSet(fs)
				if !set["config"] {
					cfgSel = doc.Sim.Config
				}
				if !set["bench"] {
					bench = doc.Sim.Bench
				}
				if !set["instr"] {
					instr = doc.Sim.SimInstr
				}
				if !set["warmup"] {
					warmup = doc.Sim.WarmupInstr
				}
				if !set["seed"] {
					seed = doc.Seed
				}
				if !set["workers"] && doc.Workers > 0 {
					workers = doc.Workers
				}
			}

			var cfgs []cpusim.SystemConfig
			switch cfgSel {
			case "A", "a":
				cfgs = []cpusim.SystemConfig{cpusim.ConfigA()}
			case "B", "b":
				cfgs = []cpusim.SystemConfig{cpusim.ConfigB()}
			case "both":
				cfgs = []cpusim.SystemConfig{cpusim.ConfigA(), cpusim.ConfigB()}
			default:
				return fmt.Errorf("unknown config %q", cfgSel)
			}
			opts := cpusim.RunOptions{WarmupInstr: warmup, SimInstr: instr, Seed: seed}

			var progress io.Writer
			if !quiet {
				progress = os.Stderr
			}
			if timeline != "" && bench == "" {
				return fmt.Errorf("-timeline needs -bench (it records one DPCS run)")
			}
			if traceOn && runsRoot == "" {
				return fmt.Errorf("-trace needs -runs (spans.jsonl lives next to the campaign records)")
			}
			if runsRoot != "" && bench != "" {
				return fmt.Errorf("-runs records the full grid; it cannot combine with -bench")
			}
			cache, err := openCache(cacheDir)
			if err != nil {
				return err
			}

			var total expers.GridStats
			for _, cfg := range cfgs {
				if bench != "" {
					if err := runSingle(cfg, bench, opts, timeline); err != nil {
						return err
					}
					continue
				}
				if progress != nil {
					fmt.Fprintf(progress, "config %s: %d benchmarks x 3 modes, %d instr each, %d workers\n",
						cfg.Name, len(trace.Suite()), opts.SimInstr, workers)
				}
				gopts := expers.GridOptions{
					Workers:     workers,
					Progress:    progress,
					Cache:       cache,
					CodeVersion: version.String(),
				}
				if runsRoot != "" {
					dir, err := runner.NewRunDir(filepath.Join(runsRoot, "fig4-"+cfg.Name))
					if err != nil {
						return err
					}
					gopts.ArtifactDir = dir
					gopts.TraceSpans = traceOn
					fmt.Fprintf(os.Stderr, "pcs sim: config %s: recording campaign in %s\n", cfg.Name, dir)
				}
				data, stats, err := expers.Fig4Grid(context.Background(), cfg, opts, gopts)
				total.Cells += stats.Cells
				total.Cached += stats.Cached
				total.Computed += stats.Computed
				total.Failed += stats.Failed
				if err != nil {
					return err
				}
				for _, t := range []*report.Table{
					expers.Fig4PowerTable(data, "L1"),
					expers.Fig4PowerTable(data, "L2"),
					expers.Fig4OverheadTable(data),
					expers.Fig4EnergyTable(data),
					expers.SummaryTable(expers.Summarise(data)),
				} {
					if err := renderTable(t, csv); err != nil {
						return err
					}
				}
			}
			if bench == "" {
				// Summary goes to stderr: stdout carries only the tables,
				// which golden files compare byte for byte.
				fmt.Fprintf(os.Stderr, "pcs sim: %d cells: %d cached, %d computed, %d failed\n",
					total.Cells, total.Cached, total.Computed, total.Failed)
			}
			return nil
		},
	}
}

// flagsSet returns the names of flags explicitly present on the command
// line (or set from the environment), for spec-vs-flag precedence.
func flagsSet(fs *flag.FlagSet) map[string]bool {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// renderTable writes one table as text or CSV, matching the historical
// binaries' output byte for byte.
func renderTable(t *report.Table, csv bool) error {
	if csv {
		if err := t.RenderCSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	return t.Render(os.Stdout)
}

func runSingle(cfg cpusim.SystemConfig, name string, opts cpusim.RunOptions, timeline string) error {
	w, ok := trace.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (known: %v)", name, trace.Names())
	}
	for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
		var col *obs.Collector
		if timeline != "" && mode == core.DPCS {
			col = &obs.Collector{}
			opts.Sink = col
		} else {
			opts.Sink = nil
		}
		r, err := cpusim.Run(cfg, mode, w, opts)
		if err != nil {
			return err
		}
		fmt.Println(r)
		for _, cr := range []cpusim.CacheResult{r.L1I, r.L1D, r.L2} {
			fmt.Printf("  %-6s acc=%-9d miss=%-8d mr=%.4f wb=%-7d trans=%d E(mJ): static=%.4f dyn=%.4f\n",
				cr.Name, cr.Stats.Accesses, cr.Stats.Misses, cr.Stats.MissRate(),
				cr.Stats.Writebacks, cr.Transitions,
				cr.Energy.StaticJ*1e3, cr.Energy.DynamicJ*1e3)
		}
		if col != nil {
			if err := writeTimeline(timeline, col.Events); err != nil {
				return err
			}
			if err := renderTrajectory(col.Events, cfg.ClockHz, r.Cycles); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTimeline saves the collected policy events as JSON lines.
func writeTimeline(path string, events []obs.PolicyEvent) error {
	sink, err := obs.CreateJSONL(path)
	if err != nil {
		return err
	}
	for _, ev := range events {
		sink.Record(ev)
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pcs sim: wrote %d policy events to %s\n", len(events), path)
	return nil
}

func renderTrajectory(events []obs.PolicyEvent, clockHz float64, endCycle uint64) error {
	for _, t := range []*report.Table{
		expers.VDDTrajectoryTable(events, clockHz, 32),
		expers.VDDResidencyTable(events, endCycle),
	} {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func printConfigs(w io.Writer) error {
	t := report.NewTable("System configurations (Table 2)", "Parameter", "Config A", "Config B")
	a, b := cpusim.ConfigA(), cpusim.ConfigB()
	row := func(name string, va, vb any) { t.AddRow(name, fmt.Sprint(va), fmt.Sprint(vb)) }
	row("Clock (GHz)", a.ClockHz/1e9, b.ClockHz/1e9)
	row("L1 size/assoc/hit", fmt.Sprintf("%dKB/%d/%dcyc", a.L1D.Org.SizeBytes>>10, a.L1D.Org.Assoc, a.L1D.HitCycles),
		fmt.Sprintf("%dKB/%d/%dcyc", b.L1D.Org.SizeBytes>>10, b.L1D.Org.Assoc, b.L1D.HitCycles))
	row("L2 size/assoc/hit", fmt.Sprintf("%dMB/%d/%dcyc", a.L2.Org.SizeBytes>>20, a.L2.Org.Assoc, a.L2.HitCycles),
		fmt.Sprintf("%dMB/%d/%dcyc", b.L2.Org.SizeBytes>>20, b.L2.Org.Assoc, b.L2.HitCycles))
	row("Block size (B)", a.L1D.Org.BlockBytes, b.L1D.Org.BlockBytes)
	row("Memory latency (cyc)", a.MemCycles, b.MemCycles)
	row("L1 interval (accesses)", a.L1D.Interval, b.L1D.Interval)
	row("L2 interval (accesses)", a.L2.Interval, b.L2.Interval)
	row("SuperInterval", a.SuperInterval, b.SuperInterval)
	row("Thresholds low/high", fmt.Sprintf("%v/%v", a.LowThreshold, a.HighThreshold),
		fmt.Sprintf("%v/%v", b.LowThreshold, b.HighThreshold))
	row("Voltage penalty (cyc)", a.L2.VoltagePenaltyCycles, b.L2.VoltagePenaltyCycles)
	return t.Render(w)
}
