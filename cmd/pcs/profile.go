package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profiler wires the standard -cpuprofile/-memprofile pprof flags into
// a subcommand. Start begins CPU profiling (when requested) and returns
// a stop function that finishes both profiles; call it exactly once,
// typically deferred around the command body. Profile-write failures at
// stop time are reported to stderr rather than failing the command:
// the simulation results are the product, the profiles are diagnostics.
type profiler struct {
	cpu string
	mem string
}

func (p *profiler) register(fs *flag.FlagSet) {
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a pprof allocation profile to this file at exit")
}

func (p *profiler) start() (stop func(), err error) {
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "pcs: cpuprofile: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "pcs: wrote CPU profile to %s\n", p.cpu)
			}
		}
		if p.mem == "" {
			return
		}
		f, err := os.Create(p.mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcs: memprofile: %v\n", err)
			return
		}
		runtime.GC() // materialise final allocation statistics
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "pcs: memprofile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pcs: memprofile: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "pcs: wrote allocation profile to %s\n", p.mem)
	}, nil
}
