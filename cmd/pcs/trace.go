package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/trace"
)

// traceCommand records the synthetic SPEC-like workloads to the compact
// binary trace format and replays recorded traces through the simulator
// — the old pcs-trace binary as a subcommand. Recording makes runs
// exchangeable and exactly repeatable across library versions: the
// trace, not the generator, becomes the ground truth.
func traceCommand() *cli.Command {
	var (
		record  bool
		replay  string
		info    string
		bench   string
		n       uint64
		out     string
		seed    uint64
		cfgName string
		mode    string
		warmup  uint64
	)
	return &cli.Command{
		Name:    "trace",
		Summary: "record, replay and inspect workload traces",
		Usage:   "-record -bench mcf.s -n 1000000 -o mcf.trc | -replay mcf.trc [-mode dpcs] | -info mcf.trc",
		SetFlags: func(fs *flag.FlagSet) {
			fs.BoolVar(&record, "record", false, "record a workload to a trace file")
			fs.StringVar(&replay, "replay", "", "trace file to replay through the simulator")
			fs.StringVar(&info, "info", "", "trace file to summarise")
			fs.StringVar(&bench, "bench", "hmmer.s", "workload to record")
			fs.Uint64Var(&n, "n", 1_000_000, "instructions to record")
			fs.StringVar(&out, "o", "out.trc", "output trace path")
			fs.Uint64Var(&seed, "seed", 1, "generator seed for -record")
			fs.StringVar(&cfgName, "config", "A", "system configuration for -replay")
			fs.StringVar(&mode, "mode", "spcs", "policy for -replay: baseline, spcs or dpcs")
			fs.Uint64Var(&warmup, "warmup", 100_000, "warm-up instructions for -replay")
		},
		Run: func(fs *flag.FlagSet) error {
			switch {
			case record:
				return doRecord(bench, n, out, seed)
			case replay != "":
				return doReplay(replay, cfgName, mode, warmup, seed)
			case info != "":
				return doInfo(info)
			default:
				return fmt.Errorf("pick a mode: -record, -replay file or -info file")
			}
		},
	}
}

func doRecord(bench string, n uint64, out string, seed uint64) error {
	w, ok := trace.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (known: %v)", bench, trace.Names())
	}
	g, err := trace.New(w, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(g, n, f); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/instr)\n",
		n, bench, out, float64(st.Size())/float64(n))
	return nil
}

func openReplay(path string) (*trace.ReplayGenerator, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var open []io.Closer
	open = append(open, f)
	gen := trace.NewReplay(path, r, func() (*trace.Reader, error) {
		f2, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		open = append(open, f2)
		return trace.NewReader(f2)
	})
	closeAll := func() {
		for _, c := range open {
			c.Close()
		}
	}
	return gen, closeAll, nil
}

func doReplay(path, config, modeName string, warmup, seed uint64) error {
	gen, closeAll, err := openReplay(path)
	if err != nil {
		return err
	}
	defer closeAll()

	// Count the trace first so the measured window fits the recording.
	total, err := countTrace(path)
	if err != nil {
		return err
	}
	if warmup >= total {
		return fmt.Errorf("warm-up %d exceeds trace length %d", warmup, total)
	}

	var cfg cpusim.SystemConfig
	switch config {
	case "A", "a":
		cfg = cpusim.ConfigA()
	case "B", "b":
		cfg = cpusim.ConfigB()
	default:
		return fmt.Errorf("unknown config %q", config)
	}
	var m core.Mode
	switch modeName {
	case "baseline":
		m = core.Baseline
	case "spcs":
		m = core.SPCS
	case "dpcs":
		m = core.DPCS
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	res, err := cpusim.RunGenerator(cfg, m, gen, cpusim.RunOptions{
		WarmupInstr: warmup, SimInstr: total - warmup, Seed: seed,
	})
	if err != nil {
		return err
	}
	if err := gen.Err(); err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var ins trace.Instr
	var total, mem, writes uint64
	minA, maxA := ^uint64(0), uint64(0)
	for {
		if err := r.Read(&ins); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		total++
		if ins.HasMem {
			mem++
			if ins.Write {
				writes++
			}
			if ins.Addr < minA {
				minA = ins.Addr
			}
			if ins.Addr > maxA {
				maxA = ins.Addr
			}
		}
	}
	fmt.Printf("%s: %d instructions, %.1f%% memory ops (%.1f%% writes), data range [%#x, %#x]\n",
		path, total, 100*float64(mem)/float64(total),
		100*float64(writes)/float64(maxU(mem, 1)), minA, maxA)
	return nil
}

func countTrace(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return 0, err
	}
	var ins trace.Instr
	var total uint64
	for {
		if err := r.Read(&ins); err != nil {
			if err == io.EOF {
				return total, nil
			}
			return 0, err
		}
		total++
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
