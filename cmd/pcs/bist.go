package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bist"
	"repro/internal/cli"
	"repro/internal/faultmap"
	"repro/internal/report"
	"repro/internal/sram"
	"repro/internal/stats"
)

// bistCommand demonstrates the silicon-characterisation flow the paper
// built on its 45 nm Red Cooper test chips: a Monte-Carlo SRAM array is
// marched at each allowed VDD level to populate the compressed
// multi-VDD fault map, then the fault inclusion property behind the
// log2(N+1)-bit FM encoding is verified — the old pcs-bist binary as a
// subcommand.
func bistCommand() *cli.Command {
	var (
		rows   int
		cols   int
		seed   uint64
		levels string
		march  string
	)
	return &cli.Command{
		Name:    "bist",
		Summary: "run the BIST / fault-map characterisation demo",
		Usage:   "[-rows N] [-cols N] [-seed S] [-levels v1,v2,...] [-march ss|c]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.IntVar(&rows, "rows", 256, "array rows (one cache block per row)")
			fs.IntVar(&cols, "cols", 512, "array columns (bits per block)")
			fs.Uint64Var(&seed, "seed", 1, "Monte-Carlo seed")
			fs.StringVar(&levels, "levels", "0.54,0.70,1.00", "comma-separated VDD levels, low to high")
			fs.StringVar(&march, "march", "ss", "march algorithm: ss (22N) or c (10N)")
		},
		Run: func(fs *flag.FlagSet) error {
			volts, err := parseLevels(levels)
			if err != nil {
				return err
			}
			lv, err := faultmap.NewLevels(volts...)
			if err != nil {
				return err
			}
			var test bist.Test
			switch march {
			case "ss":
				test = bist.MarchSS()
			case "c":
				test = bist.MarchC()
			default:
				return fmt.Errorf("unknown march %q", march)
			}

			fmt.Printf("%s (%dN)\n\n", test, test.OpsPerCell())
			rng := stats.NewRNG(seed)
			model := sram.NewWangCalhounBER()
			arr := sram.NewArray(rng, model, rows, cols, 0.30, 1.00)

			m, results, violations := bist.PopulateFaultMap(test, arr, lv)

			t := report.NewTable("March results per VDD level",
				"VDD (V)", "Ops", "Faulty cells", "Faulty rows", "Expected BER", "Observed BER")
			for _, r := range results {
				total := float64(rows * cols)
				t.AddRow(fmt.Sprintf("%.2f", r.VDD), r.Ops,
					len(r.FaultyCells), len(r.FaultyRows),
					fmt.Sprintf("%.3e", model.BER(r.VDD)),
					fmt.Sprintf("%.3e", float64(len(r.FaultyCells))/total))
			}
			if err := t.Render(os.Stdout); err != nil {
				return err
			}

			ft := report.NewTable("Fault map (FM value histogram)",
				"FM value", "Meaning", "Blocks", "Fraction")
			counts := make([]int, lv.N()+1)
			for b := 0; b < m.NumBlocks(); b++ {
				counts[m.FM(b)]++
			}
			for fmv, c := range counts {
				meaning := "usable at every level"
				if fmv > 0 {
					meaning = fmt.Sprintf("faulty at levels <= %d (VDD <= %.2f V)", fmv, lv.Volts(fmv))
				}
				ft.AddRow(fmv, meaning, c, fmt.Sprintf("%.4f", float64(c)/float64(m.NumBlocks())))
			}
			if err := ft.Render(os.Stdout); err != nil {
				return err
			}

			fmt.Printf("fault map storage: %d bits per block (%d FM + 1 Faulty)\n",
				m.StorageBitsPerBlock(), lv.FMBits())
			if len(violations) == 0 {
				fmt.Println("fault inclusion property: VERIFIED (no block healthy below a faulty level)")
				return nil
			}
			fmt.Printf("fault inclusion property: %d VIOLATIONS\n", len(violations))
			for _, v := range violations {
				fmt.Println(" ", v.Error())
			}
			return fmt.Errorf("fault inclusion property violated")
		},
	}
}

func parseLevels(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad level %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
