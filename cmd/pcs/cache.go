package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/resultstore"
	"repro/internal/runner"
)

// openCache opens the content-addressed result store at dir; "" means
// caching is disabled and the returned interface is nil (a typed-nil
// *Store would defeat the runner's nil check).
func openCache(dir string) (runner.ResultCache, error) {
	if dir == "" {
		return nil, nil
	}
	store, err := resultstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return store, nil
}

// cacheCommand inspects and prunes the content-addressed result store:
//
//	pcs cache stats [-cache DIR]
//	pcs cache gc [-cache DIR] [-max-bytes N] [-max-age DUR]
//
// The action comes first so its flags can follow it; the cache
// directory also defaults from PCS_CACHE.
func cacheCommand() *cli.Command {
	return &cli.Command{
		Name:    "cache",
		Summary: "inspect or prune the content-addressed result store",
		Usage:   "stats|gc [-cache DIR] [-max-bytes N] [-max-age DUR]",
		Run: func(fs *flag.FlagSet) error {
			if fs.NArg() == 0 {
				return fmt.Errorf("need an action: stats or gc")
			}
			action := fs.Arg(0)
			sub := flag.NewFlagSet("pcs cache "+action, flag.ContinueOnError)
			sub.SetOutput(os.Stderr)
			defaultDir := os.Getenv("PCS_CACHE")
			if defaultDir == "" {
				defaultDir = resultstore.DefaultDirName
			}
			var (
				dir      = sub.String("cache", defaultDir, "result cache directory (env PCS_CACHE)")
				maxBytes = sub.Int64("max-bytes", 0, "gc: evict oldest entries until total size <= N bytes (0 = no size bound)")
				maxAge   = sub.Duration("max-age", 0, "gc: evict entries older than this (0 = no age bound)")
			)
			if err := sub.Parse(fs.Args()[1:]); err != nil {
				if err == flag.ErrHelp {
					return nil
				}
				return err
			}
			store, err := resultstore.Open(*dir)
			if err != nil {
				return err
			}
			switch action {
			case "stats":
				st, err := store.Stats()
				if err != nil {
					return err
				}
				fmt.Printf("cache %s: %d entries, %d bytes\n", *dir, st.Entries, st.Bytes)
				return nil
			case "gc":
				if *maxBytes == 0 && *maxAge == 0 {
					return fmt.Errorf("gc needs -max-bytes and/or -max-age")
				}
				res, err := store.GC(resultstore.GCOptions{MaxBytes: *maxBytes, MaxAge: *maxAge})
				if err != nil {
					return err
				}
				fmt.Printf("cache %s: scanned %d, removed %d entries (%d bytes), %d bytes remain\n",
					*dir, res.Scanned, res.Removed, res.RemovedBytes, res.RemainingBytes)
				return nil
			default:
				return fmt.Errorf("unknown action %q (want stats or gc)", action)
			}
		},
	}
}
