package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/plot"
)

// figuresCommand renders the paper's figures as SVG files: Fig. 2 (BER
// curve), Fig. 3a-d, and — when a simulation run is requested — the
// Fig. 4 bar panels. The old pcs-figures binary as a subcommand.
func figuresCommand() *cli.Command {
	var (
		outDir   string
		sim      bool
		instr    uint64
		mechsCSV string
	)
	return &cli.Command{
		Name:    "figures",
		Summary: "render the paper figures as SVG files",
		Usage:   "[-o dir] [-mechanisms a,b,...] [-sim] [-instr N]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.StringVar(&outDir, "o", "figures", "output directory for SVG files")
			fs.StringVar(&mechsCSV, "mechanisms", "",
				"comma-separated mechanism selection for the Fig. 3 panels (default: the paper's set)")
			fs.BoolVar(&sim, "sim", false, "also run the (slow) Fig. 4 simulation panels")
			fs.Uint64Var(&instr, "instr", 4_000_000, "instructions per simulation run with -sim")
		},
		Run: func(fs *flag.FlagSet) error {
			mechNames, err := parseMechanisms(mechsCSV)
			if err != nil {
				return err
			}
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}

			write := func(name string, render func(f *os.File) error) error {
				path := filepath.Join(outDir, name)
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := render(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Println("wrote", path)
				return nil
			}

			// Fig. 2: BER vs VDD (log y).
			pts, _ := expers.Fig2()
			if err := write("fig2_ber.svg", func(f *os.File) error {
				c := plot.Chart{Title: "Fig. 2 — SRAM bit error rate vs VDD",
					XLabel: "VDD (V)", YLabel: "BER", LogY: true}
				var xs, ys []float64
				for _, p := range pts {
					xs = append(xs, p.VDD)
					ys = append(ys, p.BER)
				}
				c.Add("read-SNM worst case", xs, ys)
				return c.Render(f)
			}); err != nil {
				return err
			}

			// Fig. 3a: static power vs effective capacity, one series per
			// selected mechanism (scaling curves plus step curves).
			sel3a, _, err := expers.Fig3aMechs(expers.L1ConfigA(), 2, mechNames)
			if err != nil {
				return err
			}
			if err := write("fig3a_power_capacity.svg", func(f *os.File) error {
				c := plot.Chart{Title: "Fig. 3a — static power vs effective capacity (L1-A)",
					XLabel: "proportion of usable blocks", YLabel: "static power (W)"}
				for _, cv := range sel3a.Curves {
					c.Add(cv.Label, cv.Capacity, cv.PowerW)
				}
				for _, st := range sel3a.Steps {
					c.Add(st.Label, st.Caps, st.Watts)
				}
				return c.Render(f)
			}); err != nil {
				return err
			}

			// Fig. 3b: usable blocks vs VDD.
			curves3b, _, err := expers.Fig3bMechs(expers.L1ConfigA(), mechNames)
			if err != nil {
				return err
			}
			if err := write("fig3b_capacity.svg", func(f *os.File) error {
				c := plot.Chart{Title: "Fig. 3b — proportion of usable blocks vs VDD (L1-A)",
					XLabel: "data array cell VDD (V)", YLabel: "usable fraction"}
				for _, cv := range curves3b {
					c.Add(cv.Label, cv.VDDs, cv.Capacity)
				}
				return c.Render(f)
			}); err != nil {
				return err
			}

			// Fig. 3c: leakage breakdown vs VDD.
			rows3c, _, err := expers.Fig3c(expers.L1ConfigA())
			if err != nil {
				return err
			}
			if err := write("fig3c_leakage.svg", func(f *os.File) error {
				c := plot.Chart{Title: "Fig. 3c — leakage vs VDD (L1-A)",
					XLabel: "data array cell VDD (V)", YLabel: "leakage (W)"}
				var xs, y1, y2, y3, y4 []float64
				for _, r := range rows3c {
					xs = append(xs, r.VDD)
					y1 = append(y1, r.DataNoPeriphW)
					y2 = append(y2, r.DataWithPeriphW)
					y3 = append(y3, r.TagW)
					y4 = append(y4, r.TotalW)
				}
				c.Add("data, no periphery", xs, y1)
				c.Add("data array", xs, y2)
				c.Add("tag array", xs, y3)
				c.Add("total", xs, y4)
				return c.Render(f)
			}); err != nil {
				return err
			}

			// Fig. 3d: yield vs VDD.
			curves3d, _, err := expers.Fig3dMechs(expers.L1ConfigA(), mechNames)
			if err != nil {
				return err
			}
			if err := write("fig3d_yield.svg", func(f *os.File) error {
				c := plot.Chart{Title: "Fig. 3d — yield vs VDD (L1-A)",
					XLabel: "data array cell VDD (V)", YLabel: "yield"}
				for _, cv := range curves3d {
					c.Add(cv.Label, cv.VDDs, cv.Yield)
				}
				return c.Render(f)
			}); err != nil {
				return err
			}

			if !sim {
				return nil
			}
			// Fig. 4 panels from a (scaled) simulation run.
			opts := cpusim.RunOptions{WarmupInstr: instr / 4, SimInstr: instr, Seed: 1}
			for _, cfg := range []cpusim.SystemConfig{cpusim.ConfigA(), cpusim.ConfigB()} {
				data, err := expers.Fig4(cfg, opts, os.Stderr)
				if err != nil {
					return err
				}
				var labels []string
				var eS, eD, ovS, ovD []float64
				for _, r := range data.Rows {
					labels = append(labels, r.Workload)
					eS = append(eS, r.SPCS.TotalCacheEnergyJ/r.Baseline.TotalCacheEnergyJ)
					eD = append(eD, r.DPCS.TotalCacheEnergyJ/r.Baseline.TotalCacheEnergyJ)
					ovS = append(ovS, r.ExecOverhead(core.SPCS)*100)
					ovD = append(ovD, r.ExecOverhead(core.DPCS)*100)
				}
				name := cfg.Name
				if err := write(fmt.Sprintf("fig4_energy_%s.svg", name), func(f *os.File) error {
					b := plot.Bars{Title: fmt.Sprintf("Fig. 4 — normalised cache energy, Config %s", name),
						YLabel: "energy vs baseline", Labels: labels,
						Groups: []plot.Series{{Name: "SPCS", Y: eS}, {Name: "DPCS", Y: eD}}}
					return b.Render(f)
				}); err != nil {
					return err
				}
				if err := write(fmt.Sprintf("fig4_overhead_%s.svg", name), func(f *os.File) error {
					b := plot.Bars{Title: fmt.Sprintf("Fig. 4 — execution overhead %%, Config %s", name),
						YLabel: "overhead (%)", Labels: labels,
						Groups: []plot.Series{{Name: "SPCS", Y: clampNonNeg(ovS)}, {Name: "DPCS", Y: clampNonNeg(ovD)}}}
					return b.Render(f)
				}); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// clampNonNeg zeroes tiny negative overheads so the bar chart accepts
// them (a run can be marginally faster than baseline through noise).
func clampNonNeg(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = x
		}
	}
	return out
}
