package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cacti"
	"repro/internal/cli"
	"repro/internal/expers"
	"repro/internal/report"
)

// analyticalCommand regenerates the paper's analytical results: Fig. 2
// (SRAM BER vs VDD), Fig. 3a-d, the Sec. 4.2 area-overhead estimates
// and the computed Table-2 voltage plans — the old pcs-analytical
// binary as a subcommand.
func analyticalCommand() *cli.Command {
	var (
		fig2      bool
		fig3a     bool
		fig3b     bool
		fig3c     bool
		fig3d     bool
		area      bool
		vdd       bool
		gap       bool
		organ     bool
		all       bool
		orgN      string
		csv       bool
		mechsCSV  string
		listMechs bool
	)
	return &cli.Command{
		Name:    "analytical",
		Summary: "print the analytical results (Fig. 2/3, area overheads, voltage plans)",
		Usage:   "[-fig2] [-fig3a] [-fig3b] [-fig3c] [-fig3d] [-area] [-vdd] [-gap] [-organize] [-org l1a|l2a|l1b|l2b] [-mechanisms a,b,...] [-list-mechanisms] [-csv]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.BoolVar(&fig2, "fig2", false, "print Fig. 2 (BER vs VDD)")
			fs.BoolVar(&fig3a, "fig3a", false, "print Fig. 3a (static power vs effective capacity)")
			fs.BoolVar(&fig3b, "fig3b", false, "print Fig. 3b (usable blocks vs VDD)")
			fs.BoolVar(&fig3c, "fig3c", false, "print Fig. 3c (leakage breakdown vs VDD)")
			fs.BoolVar(&fig3d, "fig3d", false, "print Fig. 3d (yield vs VDD)")
			fs.BoolVar(&area, "area", false, "print area overheads (Sec. 4.2)")
			fs.BoolVar(&vdd, "vdd", false, "print computed VDD plans (Table 2 voltages)")
			fs.BoolVar(&gap, "gap", false, "print the FFT-Cache gap at 99% capacity")
			fs.BoolVar(&organ, "organize", false, "print the CACTI-style subarray organisation exploration")
			fs.BoolVar(&all, "all", false, "print everything")
			fs.StringVar(&orgN, "org", "l1a", "cache organisation: l1a, l2a, l1b, l2b")
			fs.StringVar(&mechsCSV, "mechanisms", "",
				"comma-separated mechanism selection for the Fig. 3 comparisons (default: the paper's set; see -list-mechanisms)")
			fs.BoolVar(&listMechs, "list-mechanisms", false, "print the mechanism registry and exit")
			fs.BoolVar(&csv, "csv", false, "emit CSV instead of aligned tables")
		},
		Run: func(fs *flag.FlagSet) error {
			render := func(t *report.Table) error { return renderTable(t, csv) }
			if listMechs {
				return render(expers.MechanismList())
			}
			org, err := pickOrg(orgN)
			if err != nil {
				return err
			}
			mechNames, err := parseMechanisms(mechsCSV)
			if err != nil {
				return err
			}
			if !(fig2 || fig3a || fig3b || fig3c || fig3d || area || vdd || gap || organ) {
				all = true
			}
			out := os.Stdout

			if all || fig2 {
				_, t := expers.Fig2()
				if err := render(t); err != nil {
					return err
				}
			}
			if all || fig3a {
				var t *report.Table
				if mechNames == nil {
					_, t, err = expers.Fig3a(org, 2)
				} else {
					_, t, err = expers.Fig3aMechs(org, 2, mechNames)
				}
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
			if (all || gap || fig3a) && hasMech(mechNames, "proposed") && hasMech(mechNames, "fftcache") {
				if err := printGaps(out, org); err != nil {
					return err
				}
			}
			if all || fig3b {
				var t *report.Table
				if mechNames == nil {
					_, t, err = expers.Fig3b(org)
				} else {
					_, t, err = expers.Fig3bMechs(org, mechNames)
				}
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
			if all || fig3c {
				_, t, err := expers.Fig3c(org)
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
			if all || fig3d {
				var t, mt *report.Table
				if mechNames == nil {
					_, t, err = expers.Fig3d(org)
				} else {
					_, t, err = expers.Fig3dMechs(org, mechNames)
				}
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
				if mechNames == nil {
					_, mt, err = expers.MinVDDs(org)
				} else {
					_, mt, err = expers.MinVDDMechs(org, mechNames)
				}
				if err != nil {
					return err
				}
				if err := render(mt); err != nil {
					return err
				}
				// Scheme-specific extra tables (TS-Cache replay penalty,
				// L2C2 salvage study, ...). The paper's default set has
				// none, so the golden output is unchanged.
				extra, err := expers.MechanismTables(org, mechNames)
				if err != nil {
					return err
				}
				for _, et := range extra {
					if err := render(et); err != nil {
						return err
					}
				}
			}
			if all || area {
				_, t, err := expers.AreaOverheads()
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
				if mechNames != nil {
					_, mt, err := expers.MechanismAreas(org, mechNames)
					if err != nil {
						return err
					}
					if err := render(mt); err != nil {
						return err
					}
				}
			}
			if all || vdd {
				_, t, err := expers.VDDPlans()
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
			if all || organ {
				if err := printOrganization(org, render); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// printOrganization shows the subarray-partition exploration for the
// selected cache (the optimisation CACTI ran for the paper).
func printOrganization(org cacti.Org, render func(*report.Table) error) error {
	all, err := cacti.Explore(org, cacti.DefaultWireParams(), 32)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Subarray organisation exploration (%s), best EDP first", org.Name),
		"Ndwl", "Ndbl", "Subarray", "Access (ns)", "Read (pJ)", "Area (mm²)", "EDP")
	limit := len(all)
	if limit > 10 {
		limit = 10
	}
	for _, o := range all[:limit] {
		t.AddRow(o.NDWL, o.NDBL,
			fmt.Sprintf("%dx%d", o.SubRows, o.SubCols),
			fmt.Sprintf("%.3f", o.AccessNS),
			fmt.Sprintf("%.2f", o.ReadEnergyPJ),
			fmt.Sprintf("%.3f", o.AreaMM2),
			fmt.Sprintf("%.3f", o.EDP))
	}
	return render(t)
}

func pickOrg(name string) (cacti.Org, error) {
	return expers.OrgByName(name)
}

// parseMechanisms parses a -mechanisms selection. An empty flag returns
// nil: the commands then take the legacy fixed-shape code paths, which
// render the registry's default set. A non-empty selection is resolved
// eagerly so typos fail before any table prints.
func parseMechanisms(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var names []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if _, err := expers.ResolveMechanisms(names); err != nil {
		return nil, err
	}
	return names, nil
}

// hasMech reports whether a -mechanisms selection contains name; a nil
// selection means the default set, which contains every default entry.
func hasMech(names []string, name string) bool {
	if names == nil {
		return true
	}
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

func printGaps(w io.Writer, org cacti.Org) error {
	for _, n := range []int{1, 2} {
		gap, err := expers.Fig3aGapAt99(org, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Proposed vs FFT-Cache at 99%% capacity (%d VDD levels): %.1f%% lower static power\n",
			n+1, gap*100)
	}
	fmt.Fprintln(w)
	return nil
}
