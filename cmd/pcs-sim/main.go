// Command pcs-sim runs the architectural simulation that regenerates the
// paper's Fig. 4: the 16 SPEC-like workloads under baseline, SPCS and
// DPCS for system Configs A and B, reporting per-benchmark cache power
// (4a–d), execution-time overheads (4e–f) and normalised total cache
// energy (4g–h), plus the headline averages.
//
// Usage:
//
//	pcs-sim [-config A|B|both] [-instr N] [-warmup N] [-seed S]
//	        [-bench name] [-timeline file] [-configs] [-csv] [-q]
//	        [-workers N]
//
// -timeline (single-benchmark mode) records the DPCS run's typed policy
// telemetry — every interval decision and voltage transition — as JSON
// lines, and prints the VDD trajectory and residency tables; feed the
// file to pcs-report -timeline to re-render it later.
//
// The default instruction counts are large enough for the one-time DPCS
// transition costs to amortise as they would at the paper's
// 2-billion-instruction scale; use smaller -instr for quick looks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcs-sim: ")
	var (
		config   = flag.String("config", "both", "system configuration: A, B or both")
		instr    = flag.Uint64("instr", 24_000_000, "measured instructions per run")
		warmup   = flag.Uint64("warmup", 2_000_000, "warm-up instructions (fast-forward)")
		seed     = flag.Uint64("seed", 1, "seed for fault maps and workloads")
		bench    = flag.String("bench", "", "run a single named benchmark (e.g. mcf.s)")
		configs  = flag.Bool("configs", false, "print Tables 1-2 style configuration and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		quiet    = flag.Bool("q", false, "suppress per-run progress lines")
		timeline = flag.String("timeline", "", "with -bench: write the DPCS policy timeline to this JSONL file")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulations for the full grid (results are identical at any worker count)")
	)
	flag.Parse()

	if *configs {
		printConfigs(os.Stdout)
		return
	}

	var cfgs []cpusim.SystemConfig
	switch *config {
	case "A", "a":
		cfgs = []cpusim.SystemConfig{cpusim.ConfigA()}
	case "B", "b":
		cfgs = []cpusim.SystemConfig{cpusim.ConfigB()}
	case "both":
		cfgs = []cpusim.SystemConfig{cpusim.ConfigA(), cpusim.ConfigB()}
	default:
		log.Fatalf("unknown config %q", *config)
	}
	opts := cpusim.RunOptions{WarmupInstr: *warmup, SimInstr: *instr, Seed: *seed}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	render := func(t *report.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
			fmt.Println()
		} else {
			err = t.Render(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	if *timeline != "" && *bench == "" {
		log.Fatal("-timeline needs -bench (it records one DPCS run)")
	}

	for _, cfg := range cfgs {
		if *bench != "" {
			runSingle(cfg, *bench, opts, *timeline)
			continue
		}
		if progress != nil {
			fmt.Fprintf(progress, "config %s: %d benchmarks x 3 modes, %d instr each, %d workers\n",
				cfg.Name, len(trace.Suite()), opts.SimInstr, *workers)
		}
		data, err := expers.Fig4Parallel(context.Background(), cfg, opts, *workers, progress)
		if err != nil {
			log.Fatal(err)
		}
		render(expers.Fig4PowerTable(data, "L1"))
		render(expers.Fig4PowerTable(data, "L2"))
		render(expers.Fig4OverheadTable(data))
		render(expers.Fig4EnergyTable(data))
		render(expers.SummaryTable(expers.Summarise(data)))
	}
}

func runSingle(cfg cpusim.SystemConfig, name string, opts cpusim.RunOptions, timeline string) {
	w, ok := trace.ByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (known: %v)", name, trace.Names())
	}
	for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
		var col *obs.Collector
		if timeline != "" && mode == core.DPCS {
			col = &obs.Collector{}
			opts.Sink = col
		} else {
			opts.Sink = nil
		}
		r, err := cpusim.Run(cfg, mode, w, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(r)
		for _, cr := range []cpusim.CacheResult{r.L1I, r.L1D, r.L2} {
			fmt.Printf("  %-6s acc=%-9d miss=%-8d mr=%.4f wb=%-7d trans=%d E(mJ): static=%.4f dyn=%.4f\n",
				cr.Name, cr.Stats.Accesses, cr.Stats.Misses, cr.Stats.MissRate(),
				cr.Stats.Writebacks, cr.Transitions,
				cr.Energy.StaticJ*1e3, cr.Energy.DynamicJ*1e3)
		}
		if col != nil {
			writeTimeline(timeline, col.Events)
			renderTrajectory(col.Events, cfg.ClockHz, r.Cycles)
		}
	}
}

// writeTimeline saves the collected policy events as JSON lines.
func writeTimeline(path string, events []obs.PolicyEvent) {
	sink, err := obs.CreateJSONL(path)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range events {
		sink.Record(ev)
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d policy events to %s", len(events), path)
}

func renderTrajectory(events []obs.PolicyEvent, clockHz float64, endCycle uint64) {
	for _, t := range []*report.Table{
		expers.VDDTrajectoryTable(events, clockHz, 32),
		expers.VDDResidencyTable(events, endCycle),
	} {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func printConfigs(w io.Writer) {
	t := report.NewTable("System configurations (Table 2)", "Parameter", "Config A", "Config B")
	a, b := cpusim.ConfigA(), cpusim.ConfigB()
	row := func(name string, va, vb any) { t.AddRow(name, fmt.Sprint(va), fmt.Sprint(vb)) }
	row("Clock (GHz)", a.ClockHz/1e9, b.ClockHz/1e9)
	row("L1 size/assoc/hit", fmt.Sprintf("%dKB/%d/%dcyc", a.L1D.Org.SizeBytes>>10, a.L1D.Org.Assoc, a.L1D.HitCycles),
		fmt.Sprintf("%dKB/%d/%dcyc", b.L1D.Org.SizeBytes>>10, b.L1D.Org.Assoc, b.L1D.HitCycles))
	row("L2 size/assoc/hit", fmt.Sprintf("%dMB/%d/%dcyc", a.L2.Org.SizeBytes>>20, a.L2.Org.Assoc, a.L2.HitCycles),
		fmt.Sprintf("%dMB/%d/%dcyc", b.L2.Org.SizeBytes>>20, b.L2.Org.Assoc, b.L2.HitCycles))
	row("Block size (B)", a.L1D.Org.BlockBytes, b.L1D.Org.BlockBytes)
	row("Memory latency (cyc)", a.MemCycles, b.MemCycles)
	row("L1 interval (accesses)", a.L1D.Interval, b.L1D.Interval)
	row("L2 interval (accesses)", a.L2.Interval, b.L2.Interval)
	row("SuperInterval", a.SuperInterval, b.SuperInterval)
	row("Thresholds low/high", fmt.Sprintf("%v/%v", a.LowThreshold, a.HighThreshold),
		fmt.Sprintf("%v/%v", b.LowThreshold, b.HighThreshold))
	row("Voltage penalty (cyc)", a.L2.VoltagePenaltyCycles, b.L2.VoltagePenaltyCycles)
	if err := t.Render(w); err != nil {
		log.Fatal(err)
	}
}
