#!/usr/bin/env sh
# Golden-reproduction gate: the checked-in golden outputs must
# reproduce byte-identically, and a warm re-run against the
# content-addressed result cache must be served entirely from cache
# while still emitting byte-identical tables. Progress and summary
# lines go to stderr by design, so stdout comparison is exact.
set -eu
cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "goldens: analytical"
go run ./cmd/pcs analytical -fig2 -fig3a -fig3b -fig3c -fig3d -area -vdd > "$tmp/analytical.txt"
cmp analytical_output.txt "$tmp/analytical.txt"

echo "goldens: fig4 (cold, cached)"
go run ./cmd/pcs sim -q -spec examples/fig4.json -cache "$tmp/cache" > "$tmp/fig4.txt"
cmp fig4_output.txt "$tmp/fig4.txt"

echo "goldens: sweep (cold, cached)"
go run ./cmd/pcs sweep -spec examples/sweep.json -cache "$tmp/cache" > "$tmp/sweep1.txt" 2> "$tmp/sweep1.err"
cmp sweep_output.txt "$tmp/sweep1.txt"

echo "goldens: sweep (warm re-run must hit 100%)"
go run ./cmd/pcs sweep -spec examples/sweep.json -cache "$tmp/cache" > "$tmp/sweep2.txt" 2> "$tmp/sweep2.err"
cmp "$tmp/sweep1.txt" "$tmp/sweep2.txt"
if ! grep -q ' 0 computed' "$tmp/sweep2.err"; then
	echo "warm sweep re-ran cells instead of hitting the cache:" >&2
	tail -1 "$tmp/sweep2.err" >&2
	exit 1
fi

echo "goldens: OK"
