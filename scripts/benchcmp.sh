#!/usr/bin/env sh
# benchcmp.sh OLD.json NEW.json — compare two `go test -json` benchmark
# snapshots (BENCH_<date>.json, see `make bench`). Parses the ns/op
# figure of every benchmark present in NEW and prints the change versus
# OLD; negative deltas are faster. When a snapshot holds several counts
# of the same benchmark (bench.sh BENCHCOUNT>1), the best (minimum)
# ns/op is compared — best-of is the noise-robust statistic on a shared
# machine. Snapshots carry a bench_meta header line recording the
# -benchtime/-count they were taken with; a mismatch between OLD and
# NEW is flagged, because a single cold 1x iteration and a warm
# steady-state run are not comparable quantities. Stdlib tooling only
# (sh + awk).
set -eu
if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi

meta() {
	# Extract "benchtime=… count=…" from the bench_meta header, if any.
	head -1 "$1" | awk '
		/bench_meta/ {
			bt = ""; c = ""
			if (match($0, /"benchtime":"[^"]*"/)) {
				bt = substr($0, RSTART + 13, RLENGTH - 14)
			}
			if (match($0, /"count":[0-9]+/)) {
				c = substr($0, RSTART + 8, RLENGTH - 8)
			}
			printf "benchtime=%s count=%s", bt, c
		}'
}

mo=$(meta "$1")
mn=$(meta "$2")
if [ -n "$mo" ] || [ -n "$mn" ]; then
	if [ "$mo" != "$mn" ]; then
		echo "warning: snapshot settings differ (old: ${mo:-unrecorded}; new: ${mn:-unrecorded}) — deltas compare unlike runs" >&2
	fi
fi

awk -v OLD="$1" -v NEW="$2" '
function parse(file, arr,   line, name, ns) {
	while ((getline line < file) > 0) {
		if (line !~ /ns\/op/ || line !~ /Benchmark/) continue
		gsub(/\\t/, " ", line)
		if (!match(line, /Benchmark[A-Za-z0-9_\/.-]+/)) continue
		name = substr(line, RSTART, RLENGTH)
		if (!match(line, /[0-9][0-9.]* ns\/op/)) continue
		ns = substr(line, RSTART, RLENGTH)
		sub(/ ns\/op/, "", ns)
		ns = ns + 0
		# Best-of across repeated counts of the same benchmark.
		if (!(name in arr) || ns < arr[name]) arr[name] = ns
	}
	close(file)
}
BEGIN {
	parse(OLD, o)
	parse(NEW, n)
	printf "%-36s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
	for (name in n) {
		if (name in o && o[name] > 0)
			printf "%-36s %15.0f %15.0f %+8.1f%%\n", name, o[name], n[name], (n[name] / o[name] - 1) * 100 | "sort"
		else
			printf "%-36s %15s %15.0f %9s\n", name, "-", n[name], "new" | "sort"
	}
	close("sort")
}'
