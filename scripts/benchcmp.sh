#!/usr/bin/env sh
# benchcmp.sh OLD.json NEW.json — compare two `go test -json` benchmark
# snapshots (BENCH_<date>.json, see `make bench`). Parses the ns/op
# figure of every benchmark present in NEW and prints the change versus
# OLD; negative deltas are faster. Stdlib tooling only (sh + awk).
set -eu
if [ $# -ne 2 ]; then
	echo "usage: $0 OLD.json NEW.json" >&2
	exit 2
fi
awk -v OLD="$1" -v NEW="$2" '
function parse(file, arr,   line, name, ns) {
	while ((getline line < file) > 0) {
		if (line !~ /ns\/op/ || line !~ /Benchmark/) continue
		gsub(/\\t/, " ", line)
		if (!match(line, /Benchmark[A-Za-z0-9_\/.-]+/)) continue
		name = substr(line, RSTART, RLENGTH)
		if (!match(line, /[0-9][0-9.]* ns\/op/)) continue
		ns = substr(line, RSTART, RLENGTH)
		sub(/ ns\/op/, "", ns)
		arr[name] = ns + 0
	}
	close(file)
}
BEGIN {
	parse(OLD, o)
	parse(NEW, n)
	printf "%-36s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
	for (name in n) {
		if (name in o && o[name] > 0)
			printf "%-36s %15.0f %15.0f %+8.1f%%\n", name, o[name], n[name], (n[name] / o[name] - 1) * 100 | "sort"
		else
			printf "%-36s %15s %15.0f %9s\n", name, "-", n[name], "new" | "sort"
	}
	close("sort")
}'
