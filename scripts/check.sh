#!/usr/bin/env sh
# CI gate: formatting, vet, then the full test suite under the race
# detector so the campaign runner's worker pool (internal/runner,
# internal/expers campaign tests) is exercised with -race.
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go test -race ./...

# Hot-path allocation regression gates: a cache demand access and a
# steady-state DPCS policy tick must stay at 0 allocs/op, the batched
# simulator inner loop must simulate a whole block without heap
# allocation, and the metric observation paths must be allocation-free
# once the series handle is resolved.
go test -count=1 -run 'TestAccessZeroAllocs' ./internal/cache
go test -count=1 -run 'TestPolicyTickZeroAllocs' ./internal/core
go test -count=1 -run 'TestBlockLoopZeroAllocs' ./internal/cpusim
go test -count=1 -run 'TestHotPathMetricsAllocFree' ./internal/obs

# Tracing gates: the span API must cost nothing when tracing is off
# (nil-tracer fast path), and a traced campaign must leave results.jsonl
# byte-identical to an untraced one (DESIGN.md §11).
go test -count=1 -run 'TestTracingOffZeroAllocs' ./internal/obs/tracez
go test -count=1 -run 'TestTracingDoesNotChangeResults' ./internal/runner

# Arena/memo gates (DESIGN.md §13): analytical cells must stay at
# <= 10 allocs/op once the memo layer is warm, warm (arena-reused)
# campaign output must be byte-identical to cold at every worker count,
# and the memo table must serve concurrent readers race-free.
go test -count=1 -run 'TestAnalyticalSteadyStateAllocs' ./internal/expers
go test -count=1 -run 'TestArenaDifferential' ./internal/expers
go test -count=1 -race -run 'TestTableConcurrentReads' ./internal/memo

# Mechanism-registry gates (DESIGN.md §14): every registered mechanism
# must surface in the Fig. 3 comparison surfaces its capability flags
# promise, the "mechs" study must cover the registry, and the adapters
# must reproduce the pre-registry model call paths float-for-float.
go test -count=1 -run 'TestRegistryCompleteness|TestMechStudyCoversRegistry|TestDefaultSelectionMatchesLegacy' ./internal/expers
go test -count=1 -run 'TestAdapterDifferential' ./internal/mechanism
go test -count=1 -run 'TestKeyGoldenFixtures|TestKeyMechVersionBump' ./internal/resultstore

# Campaign-cell throughput smoke: one cold and one warm pass of the
# mixed grid so the end-to-end cells/sec benchmark stays runnable; the
# archived numbers come from `make bench`.
go test -run '^$' -bench 'BenchmarkCampaignCellThroughput' -benchtime 1x . > /dev/null

# Short-mode benchmark smoke run: one iteration of every benchmark so a
# crashing or pathologically slow benchmark fails the gate; timings are
# not archived here (that is `make bench`).
go test -short -run '^$' -bench . -benchtime 1x -benchmem . ./internal/core ./internal/obs > /dev/null

# Throughput regression gate: fail if the simulator inner loop has
# regressed more than 10% versus the newest committed BENCH_*.json
# steady-state snapshot (best-of on both sides; see benchgate.sh).
sh scripts/benchgate.sh
