#!/usr/bin/env sh
# CI gate: formatting, vet, then the full test suite under the race
# detector so the campaign runner's worker pool (internal/runner,
# internal/expers campaign tests) is exercised with -race.
set -eu
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
go vet ./...
go build ./...
go test -race ./...
