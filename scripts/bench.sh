#!/usr/bin/env sh
# bench.sh — archive a benchmark snapshot and compare it to the most
# recent previous one. Runs every benchmark (the figure pipelines in the
# root bench_test.go, the policy-tick hot path, the metrics registry)
# with allocation stats, writes the test2json stream to a new
# BENCH_<date>.json (never clobbering an existing snapshot: a second
# run the same day becomes BENCH_<date>.2.json, then .3, …), and prints
# the ns/op deltas versus the previous snapshot via benchcmp.sh.
# BENCHTIME=1x (default) is a smoke-speed run; raise it for
# steady-state numbers.
set -eu
cd "$(dirname "$0")/.."
BENCHTIME=${BENCHTIME:-1x}

prev=$(ls -t BENCH_*.json 2>/dev/null | head -1 || true)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench . -benchtime "$BENCHTIME" -benchmem -json \
	. ./internal/core ./internal/obs > "$tmp"

out="BENCH_$(date +%Y%m%d).json"
i=2
while [ -e "$out" ]; do
	out="BENCH_$(date +%Y%m%d).${i}.json"
	i=$((i + 1))
done
cp "$tmp" "$out"
echo "wrote $out"

if [ -n "$prev" ]; then
	echo "comparison vs $prev (negative delta = faster):"
	sh scripts/benchcmp.sh "$prev" "$out"
fi
