#!/usr/bin/env sh
# bench.sh — archive a benchmark snapshot and compare it to the most
# recent previous one. Runs every benchmark (the figure pipelines in the
# root bench_test.go, the policy-tick hot path, the metrics registry)
# with allocation stats, writes the test2json stream to a new
# BENCH_<date>.json (never clobbering an existing snapshot: a second
# run the same day becomes BENCH_<date>.2.json, then .3, …), and prints
# the ns/op deltas versus the previous snapshot via benchcmp.sh.
#
# BENCHTIME (default 1x) and BENCHCOUNT (default 1) are passed to
# `go test -benchtime/-count` and recorded in a bench_meta line at the
# top of the snapshot, so benchcmp.sh can flag a comparison of a 1x
# smoke run against a steady-state one: ns/op from a single cold
# iteration and from a multi-second warm run are different quantities.
# BENCHTIME=2s BENCHCOUNT=3 gives steady-state numbers with a best-of
# across the counts.
set -eu
cd "$(dirname "$0")/.."
BENCHTIME=${BENCHTIME:-1x}
BENCHCOUNT=${BENCHCOUNT:-1}

prev=$(ls -t BENCH_*.json 2>/dev/null | head -1 || true)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
printf '{"bench_meta":{"benchtime":"%s","count":%s}}\n' \
	"$BENCHTIME" "$BENCHCOUNT" > "$tmp"
go test -run '^$' -bench . -benchtime "$BENCHTIME" -count "$BENCHCOUNT" -benchmem -json \
	. ./internal/core ./internal/obs >> "$tmp"

out="BENCH_$(date +%Y%m%d).json"
i=2
while [ -e "$out" ]; do
	out="BENCH_$(date +%Y%m%d).${i}.json"
	i=$((i + 1))
done
cp "$tmp" "$out"
echo "wrote $out"

if [ -n "$prev" ]; then
	echo "comparison vs $prev (negative delta = faster):"
	sh scripts/benchcmp.sh "$prev" "$out"
fi
