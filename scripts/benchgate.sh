#!/usr/bin/env sh
# benchgate.sh — simulator-throughput regression gate. Re-runs the
# root BenchmarkSimulatorThroughput at steady state (best of GATECOUNT
# runs of GATETIME each) and compares against the best ns/op recorded
# for it in the newest committed BENCH_*.json snapshot; exits non-zero
# if the fresh run is more than GATEPCT percent slower. Best-of on both
# sides keeps the gate usable on shared, noisy machines; the snapshot
# being compared against should itself be a steady-state run (see
# bench.sh BENCHTIME/BENCHCOUNT), not a 1x smoke capture.
set -eu
cd "$(dirname "$0")/.."
GATETIME=${GATETIME:-2s}
GATECOUNT=${GATECOUNT:-3}
GATEPCT=${GATEPCT:-10}

snap=$(ls -t BENCH_*.json 2>/dev/null | head -1 || true)
if [ -z "$snap" ]; then
	echo "benchgate: no BENCH_*.json snapshot to gate against; skipping"
	exit 0
fi

best_ns() {
	awk '
		/BenchmarkSimulatorThroughput/ && /ns\/op/ {
			if (!match($0, /[0-9][0-9.]* ns\/op/)) next
			ns = substr($0, RSTART, RLENGTH)
			sub(/ ns\/op/, "", ns)
			ns = ns + 0
			if (best == 0 || ns < best) best = ns
		}
		END { if (best > 0) printf "%.0f", best }'
}

base=$(best_ns < "$snap")
if [ -z "$base" ]; then
	echo "benchgate: $snap has no SimulatorThroughput entry; skipping"
	exit 0
fi

echo "benchgate: running BenchmarkSimulatorThroughput ($GATECOUNT x $GATETIME)..."
out=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' \
	-benchtime "$GATETIME" -count "$GATECOUNT" .)
new=$(printf '%s\n' "$out" | best_ns)
if [ -z "$new" ]; then
	echo "benchgate: benchmark produced no ns/op figure" >&2
	exit 1
fi

awk -v base="$base" -v new="$new" -v pct="$GATEPCT" -v snap="$snap" 'BEGIN {
	delta = (new / base - 1) * 100
	printf "benchgate: snapshot %s best %.0f ns/op, fresh best %.0f ns/op (%+.1f%%)\n", snap, base, new, delta
	if (delta > pct) {
		printf "benchgate: FAIL — more than %d%% slower than the committed snapshot\n", pct
		exit 1
	}
	print "benchgate: OK"
}'
