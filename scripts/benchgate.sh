#!/usr/bin/env sh
# benchgate.sh — simulator-throughput regression gate. Re-runs the
# root BenchmarkSimulatorThroughput at steady state (best of GATECOUNT
# runs of GATETIME each) and compares against the best figures recorded
# for it in the newest committed BENCH_*.json snapshot; exits non-zero
# if the fresh run is more than GATEPCT percent slower in ns/op, or
# more than MEMPCT percent heavier in B/op or allocs/op (snapshots
# predating -benchmem carry no memory figures, in which case the memory
# gate is skipped). Best-of on both sides keeps the gate usable on
# shared, noisy machines; the snapshot being compared against should
# itself be a steady-state run (see bench.sh BENCHTIME/BENCHCOUNT), not
# a 1x smoke capture.
set -eu
cd "$(dirname "$0")/.."
GATETIME=${GATETIME:-2s}
GATECOUNT=${GATECOUNT:-3}
GATEPCT=${GATEPCT:-10}
MEMPCT=${MEMPCT:-20}

snap=$(ls -t BENCH_*.json 2>/dev/null | head -1 || true)
if [ -z "$snap" ]; then
	echo "benchgate: no BENCH_*.json snapshot to gate against; skipping"
	exit 0
fi

# best <unit>: lowest "<number> <unit>" figure on the benchmark's lines.
best() {
	awk -v unit="$1" '
		/BenchmarkSimulatorThroughput/ {
			if (!match($0, "[0-9][0-9.]* " unit)) next
			v = substr($0, RSTART, RLENGTH)
			sub(" " unit, "", v)
			v = v + 0
			if (best == 0 || v < best) best = v
		}
		END { if (best > 0) printf "%.0f", best }'
}

base_ns=$(best 'ns/op' < "$snap")
if [ -z "$base_ns" ]; then
	echo "benchgate: $snap has no SimulatorThroughput entry; skipping"
	exit 0
fi
base_bytes=$(best 'B/op' < "$snap")
base_allocs=$(best 'allocs/op' < "$snap")

echo "benchgate: running BenchmarkSimulatorThroughput ($GATECOUNT x $GATETIME)..."
out=$(go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' \
	-benchtime "$GATETIME" -count "$GATECOUNT" -benchmem .)
new_ns=$(printf '%s\n' "$out" | best 'ns/op')
new_bytes=$(printf '%s\n' "$out" | best 'B/op')
new_allocs=$(printf '%s\n' "$out" | best 'allocs/op')
if [ -z "$new_ns" ]; then
	echo "benchgate: benchmark produced no ns/op figure" >&2
	exit 1
fi

# gate <label> <base> <new> <pct>: fail if new exceeds base by > pct %.
gate() {
	awk -v label="$1" -v base="$2" -v new="$3" -v pct="$4" -v snap="$snap" 'BEGIN {
		delta = (new / base - 1) * 100
		printf "benchgate: snapshot %s best %.0f %s, fresh best %.0f (%+.1f%%)\n", snap, base, label, new, delta
		if (delta > pct) {
			printf "benchgate: FAIL — %s more than %d%% worse than the committed snapshot\n", label, pct
			exit 1
		}
	}'
}

gate 'ns/op' "$base_ns" "$new_ns" "$GATEPCT"
if [ -n "$base_bytes" ] && [ -n "$new_bytes" ]; then
	gate 'B/op' "$base_bytes" "$new_bytes" "$MEMPCT"
else
	echo "benchgate: no B/op figures in $snap; memory gate skipped"
fi
if [ -n "$base_allocs" ] && [ -n "$new_allocs" ]; then
	gate 'allocs/op' "$base_allocs" "$new_allocs" "$MEMPCT"
fi
echo "benchgate: OK"
