// Phased: watch the DPCS policy adapt to a workload whose working set
// alternates between cache-hungry and cache-light phases — the paper's
// motivating scenario for the dynamic policy ("if only 40% of the cache
// is used in a window of execution, the cache is over-provisioned").
// The example runs the full simulated system (split L1 + L2) and prints
// where each cache spent its time on the voltage ladder.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	const mb = 1 << 20
	phased := trace.Workload{
		Name: "phased-demo", CodeBytes: 64 << 10, JumpProb: 0.03, ZipfS: 1.1,
		Phases: []trace.Phase{
			// Cache-light: a 256 KB working set rattles around a 2 MB L2.
			{Instructions: 6_000_000, WorkingSetBytes: 256 << 10,
				Mix: trace.PatternMix{Zipf: 0.7, Seq: 0.15}, WriteFrac: 0.3, MemFrac: 0.4},
			// Cache-hungry: a 3 MB working set overflows the L2.
			{Instructions: 6_000_000, WorkingSetBytes: 3 * mb,
				Mix: trace.PatternMix{Zipf: 0.5, Chase: 0.25}, WriteFrac: 0.3, MemFrac: 0.4},
		},
	}
	opts := cpusim.RunOptions{WarmupInstr: 1_000_000, SimInstr: 12_000_000, Seed: 1}
	cfg := cpusim.ConfigA()

	results := map[core.Mode]cpusim.Result{}
	for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
		r, err := cpusim.Run(cfg, mode, phased, opts)
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = r
	}

	base := results[core.Baseline]
	t := report.NewTable("Phased workload under the three policies (Config A)",
		"Policy", "Cycles", "Exec overhead %", "Cache energy (mJ)", "Energy saving %")
	for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
		r := results[mode]
		t.AddRow(mode.String(), r.Cycles,
			fmt.Sprintf("%+.2f", (float64(r.Cycles)/float64(base.Cycles)-1)*100),
			fmt.Sprintf("%.3f", r.TotalCacheEnergyJ*1e3),
			fmt.Sprintf("%.1f", (1-r.TotalCacheEnergyJ/base.TotalCacheEnergyJ)*100))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	dpcs := results[core.DPCS]
	lt := report.NewTable("DPCS time per voltage level (fraction of cycles)",
		"Cache", "Levels (V)", "@VDD1", "@VDD2", "@VDD3", "Transitions")
	for _, cr := range []cpusim.CacheResult{dpcs.L1I, dpcs.L1D, dpcs.L2} {
		total := uint64(0)
		for _, c := range cr.TimeAtLevelCycles {
			total += c
		}
		frac := func(i int) string {
			if i >= len(cr.TimeAtLevelCycles) || total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", float64(cr.TimeAtLevelCycles[i])/float64(total))
		}
		lt.AddRow(cr.Name, fmt.Sprintf("%.2f/%.2f/%.2f",
			cr.LevelVolts[0], cr.LevelVolts[1], cr.LevelVolts[2]),
			frac(0), frac(1), frac(2), cr.Transitions)
	}
	if err := lt.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The dynamic policy rides the low-voltage levels through the small-working-set")
	fmt.Println("phase and backs off when the large phase needs the capacity — SPCS cannot.")
}
