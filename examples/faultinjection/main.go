// Faultinjection: the silicon-style flow end to end. Build an SRAM array
// with injected and Monte-Carlo faults, run March SS at three voltages,
// populate the compressed fault map, attach it to a live cache through a
// PCS controller, and show the transition procedure writing back dirty
// data, invalidating doomed blocks and power-gating them — then bring
// the voltage back up and watch the blocks recover.
package main

import (
	"fmt"
	"log"

	"repro/internal/bist"
	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/sram"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// A small cache: 8 KB, 4-way, 64 B blocks = 128 blocks (one per
	// SRAM row, as in the paper's subarray layout).
	const (
		sizeBytes  = 8 << 10
		assoc      = 4
		blockBytes = 64
	)
	blocks := sizeBytes / blockBytes
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)

	// Physical array: Monte-Carlo Vmin per cell, plus three injected
	// faults so the demo is deterministic and visible.
	arr := sram.NewArray(stats.NewRNG(2024), sram.NewWangCalhounBER(),
		blocks, blockBytes*8, 0.30, 1.00)
	arr.InjectFault(5, 17, 0.60, sram.StuckAt0)   // block 5 dies below 0.60 V
	arr.InjectFault(9, 100, 0.75, sram.WriteFail) // block 9 dies below 0.75 V
	arr.InjectFault(9, 101, 0.60, sram.ReadFlip)  // second fault in block 9

	fmt.Println("running March SS at each VDD level (BIST)...")
	m, results, violations := bist.PopulateFaultMap(bist.MarchSS(), arr, levels)
	for _, r := range results {
		fmt.Printf("  %.2f V: %3d faulty cells in %2d rows\n",
			r.VDD, len(r.FaultyCells), len(r.FaultyRows))
	}
	if len(violations) > 0 {
		log.Fatalf("fault inclusion violated: %v", violations)
	}
	fmt.Printf("fault inclusion verified; FM(block 5)=%d FM(block 9)=%d\n\n",
		m.FM(5), m.FM(9))

	// Attach the map to a live cache via a PCS controller.
	org := cacti.Org{Name: "demo", SizeBytes: sizeBytes, Assoc: assoc,
		BlockBytes: blockBytes, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	c := cache.MustNew(cache.Config{Name: "demo", SizeBytes: sizeBytes,
		Assoc: assoc, BlockBytes: blockBytes})
	ctrl, err := core.NewController(core.DPCS, c, m, levels,
		cm.WithPCS(levels.FMBits()), 2e9, 20)
	if err != nil {
		log.Fatal(err)
	}

	// Dirty the whole cache.
	for b := 0; b < blocks; b++ {
		c.Access(uint64(b*blockBytes), true)
	}
	fmt.Printf("cache filled: %d valid blocks, all dirty\n", c.ValidCount())

	// Walk down the voltage ladder.
	now := uint64(0)
	for lvl := levels.N() - 1; lvl >= 1; lvl-- {
		now += 10_000
		var wb int
		res := ctrl.Transition(lvl, now, func(addr uint64) { wb++ })
		fmt.Printf("transition -> %.2f V: %d written back, %d invalidated, %d newly faulty, penalty %d cycles\n",
			levels.Volts(lvl), res.Writebacks, res.Invalidations, res.NewFaulty, res.PenaltyCycles)
		if err := c.CheckInvariants(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("at %.2f V: %d blocks power-gated, effective capacity %.1f %%\n",
		ctrl.VDD(), c.FaultyCount(),
		100*(1-float64(c.FaultyCount())/float64(blocks)))

	// And back up: every block recovers.
	now += 10_000
	res := ctrl.Transition(levels.N(), now, nil)
	fmt.Printf("transition -> %.2f V: %d blocks recovered, %d still faulty\n",
		ctrl.VDD(), res.Recovered, c.FaultyCount())

	e := ctrl.Energy(now + 10_000)
	fmt.Printf("\nenergy ledger: static %.3g J, dynamic %.3g J, transitions %.3g J\n",
		e.StaticJ, e.DynamicJ, e.TransitionJ)
}
