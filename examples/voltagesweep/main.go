// Voltagesweep: walk the Config-A L1 cache down the 10 mV voltage grid
// and print, at each step, the expected effective capacity, the cache
// yield, the static-power decomposition and the access-delay penalty —
// the raw material behind the paper's Fig. 3 plots, in one table.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/expers"
	"repro/internal/faultmodel"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	cs, err := expers.NewCacheSetup(expers.L1ConfigA(), 3)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Power/capacity scaling sweep — 64 KB 4-way L1, 45 nm",
		"VDD (V)", "Capacity", "Yield", "Cells mW", "Fixed mW", "Total mW", "Delay +%")
	for _, v := range faultmodel.Grid(0.45, 1.00) {
		capacity := cs.FM.ExpectedCapacity(v)
		p := cs.CMPCS.StaticPower(v, capacity)
		t.AddRow(
			fmt.Sprintf("%.2f", v),
			fmt.Sprintf("%.4f", capacity),
			fmt.Sprintf("%.4f", cs.FM.Yield(v)),
			fmt.Sprintf("%.3f", p.DataCellsW*1e3),
			fmt.Sprintf("%.3f", (p.DataPeripheryW+p.TagW+p.FaultMapW)*1e3),
			fmt.Sprintf("%.3f", p.TotalW*1e3),
			fmt.Sprintf("%.1f", cs.CMPCS.DelayDegradation(v)*100),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Mark the two design points the policies use.
	v1, v2, _, err := cs.FM.VDDLevels(cs.Tech.VDDNom, cs.Tech.VDDMin,
		faultmodel.VDD1CapacityFloor(cs.Org.Assoc))
	if err != nil {
		log.Fatal(err)
	}
	nominal := cs.CMPCS.StaticPower(1.0, 1).TotalW
	atV2 := cs.CMPCS.StaticPower(v2, cs.FM.ExpectedCapacity(v2)).TotalW
	atV1 := cs.CMPCS.StaticPower(v1, cs.FM.ExpectedCapacity(v1)).TotalW
	fmt.Printf("SPCS point  VDD2 = %.2f V: %.1f %% static power saved vs 1.0 V\n", v2, (1-atV2/nominal)*100)
	fmt.Printf("DPCS floor  VDD1 = %.2f V: %.1f %% static power saved vs 1.0 V\n", v1, (1-atV1/nominal)*100)
}
