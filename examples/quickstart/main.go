// Quickstart: build a power/capacity-scaling L1 cache, derive its
// voltage plan from the fault model, populate its fault map, run a small
// workload under the baseline and under SPCS, and print the energy
// saving — the library's core loop in ~80 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/faultmodel"
	"repro/internal/sram"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// 1. Describe the cache: the paper's Config-A L1 (64 KB, 4-way, 64 B).
	org := cacti.Org{Name: "L1", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	tech := device.Tech45SOI()
	power, err := cacti.New(org, tech, cacti.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Derive the three-voltage plan from the SRAM fault model.
	fm, err := faultmodel.New(faultmodel.Geometry{
		Sets: org.Sets(), Ways: org.Assoc, BlockBits: org.BlockBits(),
	}, sram.NewWangCalhounBER())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.SelectLevels(fm, tech.VDDNom, tech.VDDMin,
		faultmodel.VDD1CapacityFloor(org.Assoc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voltage plan: VDD1=%.2f V  VDD2(SPCS)=%.2f V  VDD3=%.2f V\n",
		plan.Levels.Volts(1), plan.Levels.Volts(plan.SPCSLevel), plan.Levels.Volts(plan.Levels.N()))

	// 3. Populate the fault map (a BIST pass in hardware; Monte Carlo here).
	fmap := core.PopulateMapMonteCarlo(stats.NewRNG(1), plan, org.Blocks())
	fmt.Printf("fault map: %d/%d blocks faulty at the SPCS voltage, %d at VDD1\n",
		fmap.FaultyCount(plan.SPCSLevel), org.Blocks(), fmap.FaultyCount(1))

	// 4. Wire up a baseline controller and an SPCS controller.
	run := func(mode core.Mode) (cycles uint64, energyJ float64) {
		c := cache.MustNew(cache.Config{
			Name: "L1", SizeBytes: org.SizeBytes, Assoc: org.Assoc, BlockBytes: org.BlockBytes})
		var ctrl *core.Controller
		var err error
		if mode == core.Baseline {
			ctrl, err = core.NewController(mode, c, nil,
				faultmap.MustLevels(tech.VDDNom), power, 2e9, 0)
		} else {
			ctrl, err = core.NewController(mode, c, fmap, plan.Levels,
				power.WithPCS(plan.Levels.FMBits()), 2e9, 20)
		}
		if err != nil {
			log.Fatal(err)
		}
		if mode == core.SPCS {
			core.ApplySPCS(ctrl, plan.SPCSLevel, nil)
		}

		// 5. Drive it with a synthetic workload (hits and misses both
		// cost energy; misses cost 100 extra cycles here).
		gen := trace.MustNew(trace.Workload{
			Name: "demo", CodeBytes: 8 << 10, JumpProb: 0.02, ZipfS: 1.1,
			Phases: []trace.Phase{{
				Instructions: 1 << 40, WorkingSetBytes: 96 << 10,
				Mix: trace.PatternMix{Zipf: 0.7, Seq: 0.2}, WriteFrac: 0.3, MemFrac: 1.0,
			}},
		}, 7)
		var ins trace.Instr
		for i := 0; i < 2_000_000; i++ {
			gen.Next(&ins)
			if !ins.HasMem {
				continue
			}
			res := c.Access(ins.Addr, ins.Write)
			ctrl.OnAccess(ins.Write)
			cycles += 2
			if !res.Hit {
				cycles += 100
				if res.Fill {
					ctrl.OnFill()
				}
			}
		}
		e := ctrl.Energy(cycles)
		return cycles, e.TotalJ
	}

	baseCycles, baseE := run(core.Baseline)
	spcsCycles, spcsE := run(core.SPCS)
	fmt.Printf("baseline: %d cycles, %.3f mJ\n", baseCycles, baseE*1e3)
	fmt.Printf("SPCS:     %d cycles, %.3f mJ\n", spcsCycles, spcsE*1e3)
	fmt.Printf("energy saving: %.1f %%   execution overhead: %+.2f %%\n",
		(1-spcsE/baseE)*100, (float64(spcsCycles)/float64(baseCycles)-1)*100)
}
