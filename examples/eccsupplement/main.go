// Eccsupplement: the paper's closing remark made concrete — "these ECC
// schemes could be combined with our approach to handle both
// voltage-induced faults as well as transient soft errors". The example
// contrasts two designs at low voltage:
//
//   - ECC-as-voltage-tolerance: SECDED spends its correction budget on
//     hard faults, so a soft error landing in an already-faulty subblock
//     becomes uncorrectable;
//   - PCS + ECC: power/capacity scaling disables the hard-faulty blocks
//     entirely, so every stored block is hard-fault-free and the full
//     SECDED budget remains for soft errors.
package main

import (
	"fmt"
	"log"

	"repro/internal/ecc"
	"repro/internal/faultmodel"
	"repro/internal/sram"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	const (
		blocks     = 4096
		blockBytes = 64
		vdd        = 0.60 // a low operating point
		softFlips  = 1    // transient upsets per block over the epoch
	)
	ber := sram.NewWangCalhounBER()
	rng := stats.NewRNG(42)

	fmt.Printf("operating point: %.2f V, per-bit hard-fault probability %.2e\n\n",
		vdd, ber.BER(vdd))

	// Design 1: SECDED absorbs the hard faults. Sample each subblock's
	// hard-fault count; a soft error on top of one hard fault is fatal.
	pBit := ber.BER(vdd)
	fatal1, corrected1 := 0, 0
	for b := 0; b < blocks; b++ {
		pb, _ := ecc.NewProtectedBlock(make([]byte, blockBytes))
		// Hard faults: each codeword bit faulty with probability pBit;
		// model as pre-existing flips that never go away.
		hard := make([]int, pb.Subblocks())
		for s := range hard {
			hard[s] = rng.Binomial(ecc.CodeBits, pBit)
		}
		// A soft error strikes a random subblock.
		for i := 0; i < softFlips; i++ {
			s := rng.Intn(pb.Subblocks())
			total := hard[s] + 1
			switch {
			case total == 1:
				corrected1++
			default:
				fatal1++ // hard+soft exceeds SECDED's single-error budget
			}
		}
	}

	// Design 2: PCS first. Blocks with any hard fault at this voltage
	// are power-gated (capacity loss), so soft errors always land on
	// hard-fault-free blocks and are always correctable.
	geom := faultmodel.Geometry{Sets: blocks / 4, Ways: 4, BlockBits: blockBytes * 8}
	fm, err := faultmodel.New(geom, ber)
	if err != nil {
		log.Fatal(err)
	}
	gated := int(fm.PBlockFail(vdd) * blocks)
	live := blocks - gated
	fatal2, corrected2 := 0, live*softFlips // every strike correctable

	fmt.Println("Design 1 — SECDED as voltage tolerance (all blocks kept):")
	fmt.Printf("  soft errors corrected: %d, uncorrectable: %d (%.2f%% of strikes fatal)\n",
		corrected1, fatal1, 100*float64(fatal1)/float64(corrected1+fatal1))
	fmt.Println("Design 2 — PCS gates hard-faulty blocks, SECDED handles soft errors:")
	fmt.Printf("  %d/%d blocks power-gated (%.1f%% capacity loss)\n",
		gated, blocks, 100*float64(gated)/blocks)
	fmt.Printf("  soft errors corrected: %d, uncorrectable: %d\n", corrected2, fatal2)

	// Demonstrate the functional codec doing the work end to end.
	fmt.Println("\nfunctional check: 64-byte block, one strike per epoch, 3 epochs")
	data := make([]byte, blockBytes)
	for i := range data {
		data[i] = byte(i)
	}
	pb, _ := ecc.NewProtectedBlock(data)
	for epoch := 1; epoch <= 3; epoch++ {
		pb.InjectSoftErrors(rng, 1)
		res := pb.Read()
		fmt.Printf("  epoch %d: corrected %d, uncorrectable %d, data intact: %v\n",
			epoch, res.Corrected, res.Uncorrectable, string(res.Data[0]) != "")
	}
}
