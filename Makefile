# Development entry points. `make check` is the full gate: vet plus the
# race-enabled test suite (the campaign runner's worker pool is
# exercised under the race detector by internal/expers and
# internal/runner tests).

GO ?= go

.PHONY: all build vet test race check bench figures clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tier-1 suite, as the driver runs it
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

check: vet race

# Benchmark snapshot: runs every benchmark (the figure pipelines in the
# root bench_test.go, the policy-tick hot path, the metrics registry)
# once each with allocation stats, archives the test2json stream as a
# new BENCH_<date>.json (never clobbering an existing snapshot), and
# prints the ns/op comparison against the most recent previous
# snapshot. Raise BENCHTIME for steady-state numbers.
BENCHTIME ?= 1x
bench:
	BENCHTIME=$(BENCHTIME) sh scripts/bench.sh

figures:
	$(GO) run ./cmd/pcs-figures

clean:
	$(GO) clean ./...
