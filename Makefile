# Development entry points. `make check` is the full gate: vet plus the
# race-enabled test suite (the campaign runner's worker pool is
# exercised under the race detector by internal/expers and
# internal/runner tests).

GO ?= go

# Build identity, stamped into the binary (see internal/version): it is
# what `pcs version` prints, what run ledgers record, and the
# code-version component of result-store cache keys — so caches built by
# different builds never alias. A plain `go build` (no stamp) falls back
# to the embedded VCS revision.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null)
LDFLAGS = -X repro/internal/version.Version=$(VERSION)

.PHONY: all build vet test race check bench fig4 sweep goldens figures clean

all: check

# The whole toolkit is one binary; `./pcs help` lists the subcommands.
build:
	$(GO) build -ldflags "$(LDFLAGS)" -o pcs ./cmd/pcs

vet:
	$(GO) vet ./...

# tier-1 suite, as the driver runs it
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

check: vet race

# Benchmark snapshot: runs every benchmark (the figure pipelines in the
# root bench_test.go, the policy-tick hot path, the metrics registry)
# with allocation stats, archives the test2json stream as a new
# BENCH_<date>.json (never clobbering an existing snapshot), and
# prints the ns/op comparison against the most recent previous
# snapshot. The snapshot records BENCHTIME/BENCHCOUNT so comparisons
# of unlike runs are flagged; BENCHTIME=2s BENCHCOUNT=3 gives
# steady-state best-of numbers.
BENCHTIME ?= 1x
BENCHCOUNT ?= 1
bench:
	BENCHTIME=$(BENCHTIME) BENCHCOUNT=$(BENCHCOUNT) sh scripts/bench.sh

# Golden runs, driven by the checked-in spec documents (DESIGN.md §9).
# fig4 reproduces fig4_output.txt; sweep reproduces sweep_output.txt.
fig4:
	$(GO) run ./cmd/pcs sim -q -spec examples/fig4.json

sweep:
	$(GO) run ./cmd/pcs sweep -spec examples/sweep.json

# Golden-reproduction gate: regenerates fig4/sweep into a temp dir and
# compares byte for byte, then proves a warm cached re-run serves every
# cell from the result store with identical output. CI runs this.
goldens:
	sh scripts/goldens.sh

figures:
	$(GO) run ./cmd/pcs figures

# Removes the built binary plus the droppings of ad-hoc benchmark and
# profiling runs (`go test -c`/-cpuprofile artifacts, pipe traces).
clean:
	$(GO) clean ./...
	rm -f pcs repro.test *.prof trace.json
