# Development entry points. `make check` is the full gate: vet plus the
# race-enabled test suite (the campaign runner's worker pool is
# exercised under the race detector by internal/expers and
# internal/runner tests).

GO ?= go

.PHONY: all build vet test race check figures clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tier-1 suite, as the driver runs it
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

check: vet race

figures:
	$(GO) run ./cmd/pcs-figures

clean:
	$(GO) clean ./...
