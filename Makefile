# Development entry points. `make check` is the full gate: vet plus the
# race-enabled test suite (the campaign runner's worker pool is
# exercised under the race detector by internal/expers and
# internal/runner tests).

GO ?= go

.PHONY: all build vet test race check bench figures clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tier-1 suite, as the driver runs it
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

check: vet race

# Benchmark snapshot: runs every benchmark (the figure pipelines in the
# root bench_test.go, the policy-tick hot path, the metrics registry)
# once each with allocation stats and archives the test2json stream as
# BENCH_<date>.json for before/after comparison. Drop BENCHTIME for
# steady-state numbers.
BENCHTIME ?= 1x
bench:
	$(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -benchmem -json . ./internal/core ./internal/obs > BENCH_$(shell date +%Y%m%d).json
	@echo "wrote BENCH_$(shell date +%Y%m%d).json"

figures:
	$(GO) run ./cmd/pcs-figures

clean:
	$(GO) clean ./...
