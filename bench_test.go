// Package repro_test holds the benchmark harness: one testing.B benchmark
// per paper table and figure, each invoking the same experiment code the
// cmd tools use (internal/expers). Benchmarks report the figure's
// headline quantity as custom metrics, so `go test -bench=. -benchmem`
// both times the experiment pipeline and regenerates the key numbers.
//
// Simulation-backed benchmarks (Fig. 4) run scaled-down instruction
// windows to keep bench time reasonable; the full-scale official run is
// `cmd/pcs-sim` (see EXPERIMENTS.md for its recorded output).
package repro_test

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/expers"
	"repro/internal/multicore"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
)

// BenchmarkFig2BER regenerates the SRAM bit-error-rate curve (Fig. 2).
func BenchmarkFig2BER(b *testing.B) {
	var pts []expers.Fig2Point
	for i := 0; i < b.N; i++ {
		pts, _ = expers.Fig2()
	}
	b.ReportMetric(pts[len(pts)-1].BER*1e12, "BER@1.0V(e-12)")
	b.ReportMetric(pts[0].BER*1e3, "BER@0.3V(e-3)")
}

// BenchmarkFig3aPowerCapacity regenerates the static power vs effective
// capacity comparison (Fig. 3a) and reports the FFT-Cache gap at the
// 99 % capacity point (paper: 28.2 % with 3 VDD levels).
func BenchmarkFig3aPowerCapacity(b *testing.B) {
	var gap3 float64
	for i := 0; i < b.N; i++ {
		var err error
		gap3, err = expers.Fig3aGapAt99(expers.L1ConfigA(), 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gap3*100, "gap3lvl-%")
}

// BenchmarkFig3bCapacity regenerates the usable-blocks curves (Fig. 3b).
func BenchmarkFig3bCapacity(b *testing.B) {
	var rows []expers.Fig3bRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.Fig3b(expers.L1ConfigA())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Capacity retained at 0.54 V (grid index for 0.54 from 0.30).
	b.ReportMetric(rows[24].Proposed*100, "proposedCap@0.54V-%")
	b.ReportMetric(rows[24].FFTCache*100, "fftCap@0.54V-%")
}

// BenchmarkFig3cLeakage regenerates the leakage breakdown (Fig. 3c).
func BenchmarkFig3cLeakage(b *testing.B) {
	var rows []expers.Fig3cRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.Fig3c(expers.L1ConfigA())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].TotalW*1e3, "totalLeak@1.0V-mW")
}

// BenchmarkFig3dYield regenerates the five-scheme yield comparison
// (Fig. 3d) and reports each scheme's min-VDD at 99 % yield.
func BenchmarkFig3dYield(b *testing.B) {
	var rows []expers.MinVDDRow
	for i := 0; i < b.N; i++ {
		var err error
		_, _, err = expers.Fig3d(expers.L1ConfigA())
		if err != nil {
			b.Fatal(err)
		}
		rows, _, err = expers.MinVDDs(expers.L1ConfigA())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.OK {
			b.ReportMetric(r.MinVDD, "minVDD-"+r.Scheme)
		}
	}
}

// BenchmarkAreaOverhead regenerates the Sec. 4.2 area-overhead table
// (paper: 2-5 % total in the worst case).
func BenchmarkAreaOverhead(b *testing.B) {
	var rows []expers.AreaRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.AreaOverheads()
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.OverheadFraction > worst {
			worst = r.OverheadFraction
		}
	}
	b.ReportMetric(worst*100, "worstOverhead-%")
}

// BenchmarkMinVDDvsAssoc regenerates the Sec. 3.1 design-space claim:
// higher associativity lowers the yield-constrained min-VDD.
func BenchmarkMinVDDvsAssoc(b *testing.B) {
	var plans []expers.VDDPlanRow
	for i := 0; i < b.N; i++ {
		var err error
		plans, _, err = expers.VDDPlans()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plans[0].VDD1, "VDD1-L1A")
	b.ReportMetric(plans[3].VDD1, "VDD1-L2B")
}

// fig4Bench runs a scaled-down Fig. 4 for one configuration over a
// representative benchmark subset — through the worker pool, as the full
// pcs-sim grid now runs — and reports the headline savings.
func fig4Bench(b *testing.B, cfg cpusim.SystemConfig) {
	b.Helper()
	names := []string{"hmmer.s", "bzip2.s", "mcf.s", "libquantum.s"}
	var workloads []trace.Workload
	for _, name := range names {
		w, ok := trace.ByName(name)
		if !ok {
			b.Fatalf("workload %s missing", name)
		}
		workloads = append(workloads, w)
	}
	opts := cpusim.RunOptions{WarmupInstr: 200_000, SimInstr: 1_000_000, Seed: 1}
	var sum expers.Summary
	for i := 0; i < b.N; i++ {
		data, err := expers.Fig4ParallelWorkloads(context.Background(), cfg, workloads, opts, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		sum = expers.Summarise(data)
	}
	b.ReportMetric(sum.MeanSavingSPCS*100, "meanSPCSsaving-%")
	b.ReportMetric(sum.MeanSavingDPCS*100, "meanDPCSsaving-%")
	b.ReportMetric(sum.MaxOverheadDPCS*100, "maxDPCSoverhead-%")
}

// BenchmarkFig4ConfigA regenerates the Fig. 4 simulation panels for
// Config A (scaled; full run via cmd/pcs-sim).
func BenchmarkFig4ConfigA(b *testing.B) { fig4Bench(b, cpusim.ConfigA()) }

// BenchmarkFig4ConfigB regenerates the Fig. 4 simulation panels for
// Config B (scaled; full run via cmd/pcs-sim).
func BenchmarkFig4ConfigB(b *testing.B) { fig4Bench(b, cpusim.ConfigB()) }

// BenchmarkDPCSParamSweep exercises the Sec. 5 policy design space: one
// workload under three escape budgets (the pcs-sweep tool's -dpcs study).
func BenchmarkDPCSParamSweep(b *testing.B) {
	w, ok := trace.ByName("bzip2.s")
	if !ok {
		b.Fatal("bzip2.s missing")
	}
	opts := cpusim.RunOptions{WarmupInstr: 100_000, SimInstr: 500_000, Seed: 1}
	for i := 0; i < b.N; i++ {
		for _, ht := range []float64{0.01, 0.03, 0.10} {
			cfg := cpusim.ConfigA()
			cfg.HighThreshold = ht
			cfg.LowThreshold = ht / 2
			if _, err := cpusim.Run(cfg, core.DPCS, w, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second of the cpusim substrate (baseline mode, one hot workload).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := trace.ByName("hmmer.s")
	opts := cpusim.RunOptions{WarmupInstr: 0, SimInstr: 300_000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpusim.Run(cpusim.ConfigA(), core.Baseline, w, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opts.SimInstr)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCellComparison regenerates the bit-cell study (paper Sec. 2:
// hardened 8T/10T cells vs 6T + the proposed mechanism).
func BenchmarkCellComparison(b *testing.B) {
	var rows []expers.CellRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.CellComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MinVDDWithPCS, "minVDD-6T+PCS")
	b.ReportMetric(rows[2].MinVDDNoFT, "minVDD-10T-bare")
}

// BenchmarkLeakageTechniques regenerates the drowsy/decay/SPCS leakage
// comparison (paper Sec. 2 related work, quantified).
func BenchmarkLeakageTechniques(b *testing.B) {
	var rows []expers.LeakageRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.LeakageComparison(400_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].LeakEnergyRel, "drowsyLeak-rel")
	b.ReportMetric(rows[3].LeakEnergyRel, "spcsLeak-rel")
}

// BenchmarkPolicyAblation regenerates the DPCS damping ablation
// (DESIGN.md §6).
func BenchmarkPolicyAblation(b *testing.B) {
	opts := cpusim.RunOptions{WarmupInstr: 100_000, SimInstr: 400_000, Seed: 1}
	var rows []expers.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = expers.Ablation([]string{"hmmer.s"}, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].OverhdPct, "fullPolicyOverhead-%")
	b.ReportMetric(rows[len(rows)-1].OverhdPct, "bareListing1Overhead-%")
}

// BenchmarkMulticore regenerates the multi-core coherence extension
// (paper Sec. 5 future work).
func BenchmarkMulticore(b *testing.B) {
	cfg := multicore.DefaultConfig()
	cfg.Cores = 2
	w, _ := trace.ByName("gobmk.s")
	var r multicore.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = multicore.Run(cfg, core.SPCS, w, 50_000, 200_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.CoherenceInvalidations), "cohInvals")
}

// campaignCellGrid builds the mixed campaign the throughput benchmark
// drives: a realistic blend of analytical cells (min-VDD across
// geometries, the VDD-level sweep, the bit-cell study — with the
// duplicate coverage a real sweep has) plus a block of tiny fig4-cell
// simulations sharing one pinned seed, as Fig. 4 grids do.
func campaignCellGrid(b *testing.B) runner.Campaign {
	b.Helper()
	var jobs []runner.Spec
	add := func(kind string, params any) {
		raw, err := json.Marshal(params)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, runner.Spec{Kind: kind, Params: raw})
	}
	for _, size := range []int{32 << 10, 64 << 10, 128 << 10, 256 << 10} {
		for _, ways := range []int{2, 4, 8} {
			add("minvdd", expers.MinVDDParams{SizeBytes: size, Ways: ways, BlockBytes: 64})
		}
	}
	for _, ways := range []int{2, 4, 8, 16} {
		add("minvdd", expers.MinVDDParams{SizeBytes: 64 << 10, Ways: ways, BlockBytes: 64, Yield: 0.995})
	}
	for lv := 1; lv <= 8; lv++ {
		add("vddlevels", expers.VDDLevelsParams{Levels: lv})
	}
	for i := 0; i < 4; i++ {
		add("cells", expers.CellsParams{})
	}
	for _, bench := range []string{"hmmer.s", "bzip2.s", "mcf.s", "libquantum.s"} {
		for _, mode := range []string{"SPCS", "DPCS"} {
			add("fig4-cell", expers.Fig4CellParams{
				Config: cpusim.ConfigA(), Mode: mode, Bench: bench,
				SimInstr: 2_000, Seed: 1,
			})
		}
	}
	return runner.Campaign{Name: "bench-cell-grid", Seed: 1, Jobs: jobs}
}

// BenchmarkCampaignCellThroughput measures end-to-end campaign cells per
// second on the mixed grid. The cold mode reproduces the pre-arena cost
// structure: per-worker arenas disabled and every memo layer (expers
// figures, cpusim statics, Zipf tables) dropped at each job start, so
// each cell rebuilds its analytical models, cache structures, fault
// maps and workload tables from scratch, exactly as every cell used to.
// (In-flight jobs may briefly share a just-reset table; that only makes
// the cold baseline faster, never slower.) The warm mode is the steady
// state a long sweep runs in: shared memos plus per-worker arenas. The
// warm/cold ratio is the headline number for the zero-alloc cell work.
func BenchmarkCampaignCellThroughput(b *testing.B) {
	reg := expers.NewCampaignRegistry()
	c := campaignCellGrid(b)
	drive := func(b *testing.B, opts runner.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := runner.Run(context.Background(), reg, c, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > 0 {
				b.Fatalf("%d campaign cells failed", res.Failed)
			}
		}
		b.ReportMetric(float64(len(c.Jobs))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	}
	b.Run("cold", func(b *testing.B) {
		drive(b, runner.Options{
			Workers:       4,
			NoWorkerState: true,
			OnJobStart: func(int) {
				expers.ResetMemos()
				cpusim.ResetStatics()
				stats.ResetZipfTables()
			},
		})
	})
	b.Run("warm", func(b *testing.B) {
		// Prime the memo tables once so the timed region measures the
		// steady state.
		expers.ResetMemos()
		if _, err := runner.Run(context.Background(), reg, c, runner.Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		drive(b, runner.Options{Workers: 4})
	})
}
