package trace

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// TestNextBlockMatchesNext proves the bulk API yields exactly the
// instruction sequence the scalar API would, for every workload in the
// suite, across randomized odd block sizes that land phase boundaries
// mid-block.
func TestNextBlockMatchesNext(t *testing.T) {
	rng := stats.NewRNG(99)
	for _, w := range Suite() {
		blk := AsBlock(MustNew(w, 7))
		ref := MustNew(w, 7)
		buf := make([]Instr, 0, 512)
		var want Instr
		total := 0
		for total < 20000 {
			n := 1 + rng.Intn(511)
			buf = buf[:n]
			if got := blk.NextBlock(buf); got != n {
				t.Fatalf("%s: NextBlock(%d) returned %d", w.Name, n, got)
			}
			for i := 0; i < n; i++ {
				ref.Next(&want)
				if buf[i] != want {
					t.Fatalf("%s: instr %d: block %+v != scalar %+v",
						w.Name, total+i, buf[i], want)
				}
			}
			total += n
		}
	}
}

// TestAsBlockAdapter checks the scalar adapter path: a Generator that
// lacks a native NextBlock gets one with identical semantics, and a
// BlockGenerator passes through unwrapped.
func TestAsBlockAdapter(t *testing.T) {
	w := Suite()[0]
	native := MustNew(w, 3)
	if _, ok := native.(BlockGenerator); !ok {
		t.Fatal("synthetic should implement BlockGenerator natively")
	}
	if AsBlock(native) != native {
		t.Fatal("AsBlock should pass a BlockGenerator through unwrapped")
	}

	adapted := AsBlock(scalarOnly{MustNew(w, 3)})
	ref := MustNew(w, 3)
	buf := make([]Instr, 100)
	var want Instr
	for round := 0; round < 30; round++ {
		adapted.NextBlock(buf)
		for i := range buf {
			ref.Next(&want)
			if buf[i] != want {
				t.Fatalf("round %d instr %d: adapter %+v != scalar %+v",
					round, i, buf[i], want)
			}
		}
	}
	if adapted.Name() != w.Name {
		t.Fatalf("adapter name %q != %q", adapted.Name(), w.Name)
	}
}

// scalarOnly hides a generator's native NextBlock so AsBlock must wrap.
type scalarOnly struct{ g Generator }

func (s scalarOnly) Name() string  { return s.g.Name() }
func (s scalarOnly) Next(i *Instr) { s.g.Next(i) }

// TestReplayNextBlockBitExact replays a recorded trace through the bulk
// API and checks every instruction against a fresh scalar generator,
// including the repeat-last tail past EOF.
func TestReplayNextBlockBitExact(t *testing.T) {
	const n = 3000
	data := recordBytes(t, n)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplay("x", r, nil)
	ref := MustNew(simpleWorkload(), 21)
	buf := make([]Instr, 250)
	var want Instr
	for off := 0; off < n; off += len(buf) {
		rep.NextBlock(buf)
		for i := range buf {
			ref.Next(&want)
			if buf[i] != want {
				t.Fatalf("instr %d: replay block %+v != generator %+v",
					off+i, buf[i], want)
			}
		}
	}
	if rep.Err() != nil {
		t.Fatalf("unexpected error: %v", rep.Err())
	}
	// Past EOF without reopen, every slot holds the final instruction.
	last := want
	rep.NextBlock(buf)
	for i := range buf {
		if buf[i] != last {
			t.Fatalf("post-EOF slot %d: %+v != last %+v", i, buf[i], last)
		}
	}
	if rep.Err() != nil {
		t.Fatalf("EOF treated as error: %v", rep.Err())
	}
}

// TestReplayNextBlockLoopsWithReopen drives the bulk API across a
// reopen boundary mid-block and checks the stream wraps seamlessly.
func TestReplayNextBlockLoopsWithReopen(t *testing.T) {
	const n = 100
	data := recordBytes(t, n)
	r, _ := NewReader(bytes.NewReader(data))
	reopens := 0
	rep := NewReplay("loop", r, func() (*Reader, error) {
		reopens++
		return NewReader(bytes.NewReader(data))
	})
	buf := make([]Instr, 64)
	var got []Instr
	for len(got) < 2*n {
		rep.NextBlock(buf)
		got = append(got, buf...)
	}
	if reopens < 1 {
		t.Fatal("never reopened")
	}
	if rep.Err() != nil {
		t.Fatalf("replay error: %v", rep.Err())
	}
	for i := n; i < 2*n; i++ {
		if got[i] != got[i-n] {
			t.Fatalf("wrapped instr %d: %+v != first pass %+v", i, got[i], got[i-n])
		}
	}
}
