package trace

import (
	"bytes"
	"testing"
)

func recordBytes(t *testing.T, n uint64) []byte {
	t.Helper()
	g := MustNew(simpleWorkload(), 21)
	var buf bytes.Buffer
	if err := Record(g, n, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayMatchesGenerator(t *testing.T) {
	const n = 3000
	data := recordBytes(t, n)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplay("x", r, nil)
	if rep.Name() != "x" {
		t.Error("name")
	}
	fresh := MustNew(simpleWorkload(), 21)
	var got, want Instr
	for i := 0; i < n; i++ {
		rep.Next(&got)
		fresh.Next(&want)
		if got != want {
			t.Fatalf("instr %d: %+v != %+v", i, got, want)
		}
	}
	if rep.Err() != nil {
		t.Fatalf("unexpected error: %v", rep.Err())
	}
}

func TestReplayLoopsWithReopen(t *testing.T) {
	const n = 100
	data := recordBytes(t, n)
	r, _ := NewReader(bytes.NewReader(data))
	reopens := 0
	rep := NewReplay("loop", r, func() (*Reader, error) {
		reopens++
		return NewReader(bytes.NewReader(data))
	})
	var first Instr
	rep.Next(&first)
	var ins Instr
	for i := 1; i < 2*n; i++ {
		rep.Next(&ins)
	}
	if reopens != 1 {
		t.Fatalf("reopened %d times", reopens)
	}
	// The instruction right after the wrap equals the first one.
	var again Instr
	r2, _ := NewReader(bytes.NewReader(data))
	r2.Read(&again)
	if rep.Err() != nil {
		t.Fatalf("replay error: %v", rep.Err())
	}
	_ = again
}

func TestReplayWithoutReopenRepeatsLast(t *testing.T) {
	const n = 10
	data := recordBytes(t, n)
	r, _ := NewReader(bytes.NewReader(data))
	rep := NewReplay("stall", r, nil)
	var ins, last Instr
	for i := 0; i < n; i++ {
		rep.Next(&ins)
		last = ins
	}
	rep.Next(&ins)
	if ins != last {
		t.Fatalf("post-EOF instruction %+v != last %+v", ins, last)
	}
	// Plain EOF is not an error.
	if rep.Err() != nil {
		t.Fatalf("EOF treated as error: %v", rep.Err())
	}
}

func TestReplayPropagatesCorruption(t *testing.T) {
	data := recordBytes(t, 50)
	truncated := data[:len(data)-1]
	r, _ := NewReader(bytes.NewReader(truncated))
	rep := NewReplay("bad", r, nil)
	var ins Instr
	for i := 0; i < 60; i++ {
		rep.Next(&ins)
	}
	if rep.Err() == nil {
		t.Fatal("truncation not reported")
	}
}
