package trace

import "runtime"

// Pipe feeds fixed-size instruction blocks from a BlockGenerator to a
// simulation loop. On multi-core hosts a producer goroutine fills
// blocks ahead of the consumer, ping-pong double-buffered through a
// pair of channels, so the wall-clock cost of trace generation hides
// behind simulation. On a single-CPU host (GOMAXPROCS=1) the goroutine
// could never overlap the consumer, so the pipe degrades to a
// synchronous one-arena refill with zero scheduling overhead. Both
// shapes consume blocks strictly in production order, so the delivered
// instruction stream is bit-identical to calling the generator inline
// either way.
//
// Cur and Pos are the consumer's cursor into the current block; the
// consumer advances Pos itself and calls Refill when Pos reaches
// len(Cur). Keeping the cursor on the Pipe lets one consumption
// position span several consuming loops (e.g. a warm-up window ending
// mid-block and the measurement window picking up the remainder).
//
// In the threaded shape the generator is owned by the producer
// goroutine while the pipe is open (channel hand-off orders all its
// state), and Close must be called before the generator is touched
// again. The pipe itself is not safe for concurrent consumers.
type Pipe struct {
	filled chan []Instr
	free   chan []Instr
	stop   chan struct{}
	done   chan struct{}

	// Cur is the block being consumed; Pos the next index within it.
	Cur []Instr
	Pos int

	// bg is set in synchronous (single-CPU) mode; Refill then refills
	// the single arena inline instead of waiting on the producer.
	bg  BlockGenerator
	buf []Instr

	// arena, when non-nil, receives the block arenas back on Close so
	// the next pipe on the same worker reuses them.
	arena *PipeArena
}

// PipeArena is a pool of block arenas for consecutive pipes on one
// worker: StartPipeArena draws its blocks from the pool and Close
// returns them, so a campaign worker running many short simulations
// allocates its trace blocks once. A PipeArena is confined to one
// goroutine between pipe lifetimes (the pipe's own producer hand-off
// covers the threaded window); the zero value is ready to use.
type PipeArena struct {
	bufs [][]Instr
}

// take hands out a pooled block, allocating when the pool is empty.
func (a *PipeArena) take() []Instr {
	if n := len(a.bufs); n > 0 {
		b := a.bufs[n-1]
		a.bufs = a.bufs[:n-1]
		return b
	}
	return make([]Instr, BlockSize)
}

// put returns a block to the pool.
func (a *PipeArena) put(b []Instr) {
	if b != nil {
		a.bufs = append(a.bufs, b)
	}
}

// StartPipe allocates the block arenas and, when the runtime has more
// than one CPU to schedule on, starts the producer goroutine.
func StartPipe(bg BlockGenerator) *Pipe {
	return StartPipeArena(bg, nil)
}

// StartPipeArena is StartPipe drawing the block arenas from a pool
// (nil behaves exactly like StartPipe). The delivered instruction
// stream is identical either way; only where the blocks' memory comes
// from changes.
func StartPipeArena(bg BlockGenerator, arena *PipeArena) *Pipe {
	if runtime.GOMAXPROCS(0) == 1 {
		p := &Pipe{bg: bg, arena: arena}
		if arena != nil {
			p.buf = arena.take()
		} else {
			p.buf = make([]Instr, BlockSize)
		}
		return p
	}
	p := &Pipe{
		// Capacities match the arena count, so the producer's sends to
		// filled never block and stop is only contended on free.
		filled: make(chan []Instr, 2),
		free:   make(chan []Instr, 2),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		arena:  arena,
	}
	if arena != nil {
		p.free <- arena.take()
		p.free <- arena.take()
	} else {
		p.free <- make([]Instr, BlockSize)
		p.free <- make([]Instr, BlockSize)
	}
	go func() {
		defer close(p.done)
		for {
			var buf []Instr
			select {
			case buf = <-p.free:
			case <-p.stop:
				return
			}
			bg.NextBlock(buf)
			p.filled <- buf
		}
	}()
	return p
}

// Refill recycles the consumed block and hands over the next one: an
// inline refill in synchronous mode, a channel exchange with the
// producer otherwise.
func (p *Pipe) Refill() {
	if p.bg != nil {
		p.bg.NextBlock(p.buf)
		p.Cur = p.buf
		p.Pos = 0
		return
	}
	if p.Cur != nil {
		p.free <- p.Cur
	}
	p.Cur = <-p.filled
	p.Pos = 0
}

// Close stops the producer and waits for it to exit, re-establishing
// exclusive ownership of the generator for the caller; a synchronous
// pipe has no producer. Arena-backed pipes then return their blocks to
// the pool: once the producer has exited, every block is either Cur or
// parked in one of the channels (the producer never holds one across
// its select), so a non-blocking drain recovers all of them.
func (p *Pipe) Close() {
	if p.bg != nil {
		if p.arena != nil {
			p.arena.put(p.buf)
			p.buf = nil
			p.Cur = nil
		}
		return
	}
	close(p.stop)
	<-p.done
	if p.arena == nil {
		return
	}
	p.arena.put(p.Cur)
	p.Cur = nil
	for {
		select {
		case b := <-p.filled:
			p.arena.put(b)
		case b := <-p.free:
			p.arena.put(b)
		default:
			return
		}
	}
}
