package trace

import "runtime"

// Pipe feeds fixed-size instruction blocks from a BlockGenerator to a
// simulation loop. On multi-core hosts a producer goroutine fills
// blocks ahead of the consumer, ping-pong double-buffered through a
// pair of channels, so the wall-clock cost of trace generation hides
// behind simulation. On a single-CPU host (GOMAXPROCS=1) the goroutine
// could never overlap the consumer, so the pipe degrades to a
// synchronous one-arena refill with zero scheduling overhead. Both
// shapes consume blocks strictly in production order, so the delivered
// instruction stream is bit-identical to calling the generator inline
// either way.
//
// Cur and Pos are the consumer's cursor into the current block; the
// consumer advances Pos itself and calls Refill when Pos reaches
// len(Cur). Keeping the cursor on the Pipe lets one consumption
// position span several consuming loops (e.g. a warm-up window ending
// mid-block and the measurement window picking up the remainder).
//
// In the threaded shape the generator is owned by the producer
// goroutine while the pipe is open (channel hand-off orders all its
// state), and Close must be called before the generator is touched
// again. The pipe itself is not safe for concurrent consumers.
type Pipe struct {
	filled chan []Instr
	free   chan []Instr
	stop   chan struct{}
	done   chan struct{}

	// Cur is the block being consumed; Pos the next index within it.
	Cur []Instr
	Pos int

	// bg is set in synchronous (single-CPU) mode; Refill then refills
	// the single arena inline instead of waiting on the producer.
	bg  BlockGenerator
	buf []Instr
}

// StartPipe allocates the block arenas and, when the runtime has more
// than one CPU to schedule on, starts the producer goroutine.
func StartPipe(bg BlockGenerator) *Pipe {
	if runtime.GOMAXPROCS(0) == 1 {
		return &Pipe{bg: bg, buf: make([]Instr, BlockSize)}
	}
	p := &Pipe{
		// Capacities match the arena count, so the producer's sends to
		// filled never block and stop is only contended on free.
		filled: make(chan []Instr, 2),
		free:   make(chan []Instr, 2),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.free <- make([]Instr, BlockSize)
	p.free <- make([]Instr, BlockSize)
	go func() {
		defer close(p.done)
		for {
			var buf []Instr
			select {
			case buf = <-p.free:
			case <-p.stop:
				return
			}
			bg.NextBlock(buf)
			p.filled <- buf
		}
	}()
	return p
}

// Refill recycles the consumed block and hands over the next one: an
// inline refill in synchronous mode, a channel exchange with the
// producer otherwise.
func (p *Pipe) Refill() {
	if p.bg != nil {
		p.bg.NextBlock(p.buf)
		p.Cur = p.buf
		p.Pos = 0
		return
	}
	if p.Cur != nil {
		p.free <- p.Cur
	}
	p.Cur = <-p.filled
	p.Pos = 0
}

// Close stops the producer and waits for it to exit, re-establishing
// exclusive ownership of the generator for the caller. A synchronous
// pipe has no producer and nothing to do.
func (p *Pipe) Close() {
	if p.bg != nil {
		return
	}
	close(p.stop)
	<-p.done
}
