package trace

import (
	"fmt"
	"io"
)

// ReplayGenerator adapts a serialised trace (Reader) to the Generator
// interface so a recorded run can drive the simulator exactly like a
// synthetic workload. When the trace is exhausted the generator either
// loops (re-reads from a fresh reader supplied by reopen) or, if reopen
// is nil, keeps returning the final instruction — callers normally size
// their runs to the recorded length.
type ReplayGenerator struct {
	name   string
	r      *Reader
	reopen func() (*Reader, error)
	last   Instr
	err    error
}

// NewReplay wraps an open trace reader. reopen, if non-nil, is invoked
// to restart the stream when it ends (e.g. re-opening the file).
func NewReplay(name string, r *Reader, reopen func() (*Reader, error)) *ReplayGenerator {
	return &ReplayGenerator{name: name, r: r, reopen: reopen}
}

// Name implements Generator.
func (g *ReplayGenerator) Name() string { return g.name }

// Err returns the first non-EOF error encountered while reading.
func (g *ReplayGenerator) Err() error { return g.err }

// Next implements Generator.
func (g *ReplayGenerator) Next(ins *Instr) {
	if g.err != nil {
		*ins = g.last
		return
	}
	err := g.r.Read(ins)
	if err == nil {
		g.last = *ins
		return
	}
	if err == io.EOF && g.reopen != nil {
		r2, rerr := g.reopen()
		if rerr != nil {
			g.err = fmt.Errorf("trace: replay restart: %w", rerr)
			*ins = g.last
			return
		}
		g.r = r2
		if err := g.r.Read(ins); err == nil {
			g.last = *ins
			return
		}
		g.err = fmt.Errorf("trace: empty trace on restart")
		*ins = g.last
		return
	}
	if err != io.EOF {
		g.err = err
	}
	*ins = g.last
}
