package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, returning io.EOF / ErrUnexpectedEOF / a parse error instead.
func FuzzReader(f *testing.F) {
	g := MustNew(simpleWorkload(), 3)
	var seedBuf bytes.Buffer
	if err := Record(g, 50, &seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte("PCSTRC01"))
	f.Add([]byte{})
	// Truncated and bit-flipped recordings exercise mid-varint and
	// mid-record EOF paths; a long memory-heavy recording exercises the
	// bulk replay path below with multi-block payloads.
	raw := seedBuf.Bytes()
	f.Add(raw[:len(raw)/2])
	if len(raw) > 16 {
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/3] ^= 0x80
		f.Add(flipped)
	}
	g2 := MustNew(simpleWorkload(), 17)
	var bigBuf bytes.Buffer
	if err := Record(g2, 700, &bigBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(bigBuf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Scalar pass: must never panic.
		var scalar []Instr
		var ins Instr
		for i := 0; i < 10000; i++ {
			if err := r.Read(&ins); err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					// Parse errors are fine; panics are not (implicit).
					_ = err
				}
				break
			}
			scalar = append(scalar, ins)
		}
		// Bulk pass over the same bytes: the replayed prefix must match
		// the scalar read instruction-for-instruction, whatever the
		// input's validity.
		r2, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		rep := NewReplay("fuzz", r2, nil)
		buf := make([]Instr, 33)
		for off := 0; off < len(scalar); off += len(buf) {
			rep.NextBlock(buf)
			for i := range buf {
				if off+i >= len(scalar) {
					break
				}
				if buf[i] != scalar[off+i] {
					t.Fatalf("instr %d: bulk %+v != scalar %+v", off+i, buf[i], scalar[off+i])
				}
			}
		}
	})
}
