package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, returning io.EOF / ErrUnexpectedEOF / a parse error instead.
func FuzzReader(f *testing.F) {
	g := MustNew(simpleWorkload(), 3)
	var seedBuf bytes.Buffer
	if err := Record(g, 50, &seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte("PCSTRC01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var ins Instr
		for i := 0; i < 10000; i++ {
			if err := r.Read(&ins); err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					// Parse errors are fine; panics are not (implicit).
					_ = err
				}
				return
			}
		}
	})
}
