package trace

// BlockGenerator is a Generator that can also fill instructions in bulk.
// The simulator's inner loop consumes fixed-size blocks so the per-call
// interface dispatch, cancellation checks, and telemetry polls amortize
// over BlockSize instructions instead of one.
//
// NextBlock fills all of dst and returns len(dst). Generators are
// infinite streams (synthetic workloads cycle through phases forever;
// replay either reopens or repeats the final instruction), so a full
// block is always available. The instructions produced are exactly the
// ones len(dst) successive Next calls would have produced — the
// differential tests in block_test.go pin this for every generator.
type BlockGenerator interface {
	Generator
	NextBlock(dst []Instr) int
}

// BlockSize is the simulator's standard instruction block length. Large
// enough to amortize per-block overhead (interface calls, ctx polls)
// into noise, small enough that a mid-block cancellation still stops
// promptly and a block of Instrs (32 B each) stays L1-resident.
const BlockSize = 1024

// AsBlock returns g as a BlockGenerator, wrapping it in a scalar
// adapter when it lacks a native NextBlock.
func AsBlock(g Generator) BlockGenerator {
	if bg, ok := g.(BlockGenerator); ok {
		return bg
	}
	return scalarBlock{g}
}

// scalarBlock adapts a legacy scalar Generator to the block API.
type scalarBlock struct {
	Generator
}

func (s scalarBlock) NextBlock(dst []Instr) int {
	for i := range dst {
		s.Generator.Next(&dst[i])
	}
	return len(dst)
}

// NextBlock implements BlockGenerator natively: the loop devirtualizes
// the Next call (direct method dispatch, inlinable body) so the RNG and
// phase machinery run without per-instruction interface overhead.
func (g *synthetic) NextBlock(dst []Instr) int {
	for i := range dst {
		g.Next(&dst[i])
	}
	return len(dst)
}

// NextBlock implements BlockGenerator for replayed traces with the same
// reopen/repeat-last semantics as Next.
func (g *ReplayGenerator) NextBlock(dst []Instr) int {
	for i := range dst {
		g.Next(&dst[i])
	}
	return len(dst)
}
