// Package trace provides the memory-reference workloads that drive the
// architectural simulation. The paper ran 16 SPEC CPU2006 benchmarks
// under gem5; SPEC inputs and an out-of-order Alpha model are not
// available here, so we substitute 16 synthetic SPEC-like generators
// whose parameters (working-set size, code footprint, access mix,
// phase behaviour) are chosen to span the same space the paper's policy
// exploits: small vs. large working sets, streaming vs. pointer-chasing
// access patterns, and within-run phase changes (see DESIGN.md §2).
//
// Generators are deterministic given a seed, and a recorded trace can be
// serialised/replayed bit-exactly (Writer/Reader).
package trace

import (
	"fmt"

	"repro/internal/stats"
)

// Instr is one executed instruction as seen by the memory hierarchy: an
// instruction fetch address plus an optional data access.
type Instr struct {
	// PC is the instruction fetch address.
	PC uint64
	// HasMem indicates the instruction performs a data access.
	HasMem bool
	// Addr is the data address (valid when HasMem).
	Addr uint64
	// Write indicates the data access is a store.
	Write bool
}

// Generator produces an instruction stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next fills in the next instruction.
	Next(i *Instr)
}

// PatternMix describes how a phase's data accesses are distributed.
// The four fractions must sum to at most 1; the remainder is uniform
// random over the working set (pointer-chase-like, locality-free).
type PatternMix struct {
	// Seq is the fraction of streaming accesses (unit-stride walk
	// through the working set — spatial locality, compulsory misses).
	Seq float64
	// Stride is the fraction of constant-stride accesses (row walks of
	// 2D data, e.g. video or matrix codes).
	Stride float64
	// Zipf is the fraction of Zipf-popular block accesses (temporal
	// locality / hot structures).
	Zipf float64
	// Chase is the fraction of dependent pointer-chase accesses
	// (random walk over a linked structure spanning the working set).
	Chase float64
}

func (m PatternMix) validate() error {
	sum := m.Seq + m.Stride + m.Zipf + m.Chase
	if m.Seq < 0 || m.Stride < 0 || m.Zipf < 0 || m.Chase < 0 || sum > 1+1e-9 {
		return fmt.Errorf("trace: invalid pattern mix %+v", m)
	}
	return nil
}

// Phase is one execution phase of a workload.
type Phase struct {
	// Instructions is the phase length; the generator cycles through
	// phases forever, so totals are controlled by the simulator.
	Instructions uint64
	// WorkingSetBytes is the data footprint touched in this phase.
	WorkingSetBytes uint64
	// Mix shapes the accesses.
	Mix PatternMix
	// WriteFrac is the store fraction of data accesses.
	WriteFrac float64
	// MemFrac is the fraction of instructions that access data memory.
	MemFrac float64
}

// Workload describes a synthetic benchmark.
type Workload struct {
	// Name is the SPEC-like label.
	Name string
	// CodeBytes is the instruction footprint (drives L1I behaviour).
	CodeBytes uint64
	// JumpProb is the probability an instruction redirects fetch to a
	// random function entry within the code footprint.
	JumpProb float64
	// ZipfS is the skew of the Zipf block popularity (higher = hotter).
	ZipfS float64
	// Phases is the repeating phase schedule (at least one).
	Phases []Phase
}

// Validate checks the workload definition.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("trace: workload missing name")
	}
	if w.CodeBytes == 0 {
		return fmt.Errorf("trace: %s: zero code footprint", w.Name)
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("trace: %s: no phases", w.Name)
	}
	for i, p := range w.Phases {
		if p.Instructions == 0 || p.WorkingSetBytes == 0 {
			return fmt.Errorf("trace: %s phase %d: zero length or footprint", w.Name, i)
		}
		if err := p.Mix.validate(); err != nil {
			return fmt.Errorf("trace: %s phase %d: %v", w.Name, i, err)
		}
		if p.WriteFrac < 0 || p.WriteFrac > 1 || p.MemFrac < 0 || p.MemFrac > 1 {
			return fmt.Errorf("trace: %s phase %d: fractions out of range", w.Name, i)
		}
	}
	return nil
}

// synthetic is the Generator implementation for a Workload.
type synthetic struct {
	w   Workload
	rng *stats.RNG

	// Address-space layout: code at codeBase, data at dataBase; the two
	// never overlap.
	codeBase, dataBase uint64

	pc         uint64
	phaseIdx   int
	phaseLeft  uint64
	seqPtr     uint64
	stridePtr  uint64
	strideStep uint64
	chasePtr   uint64
	zipf       *stats.Zipf

	// Per-instruction fast-path state, hoisted out of Next: the phase
	// struct copy and the repeated mix-threshold additions dominated the
	// generator's profile. codeBlocks/pcLimit are fixed per workload;
	// the rest is refreshed by enterPhase. The cumulative thresholds are
	// summed left-to-right exactly as the inline comparisons were, so
	// every comparison sees bit-identical floats and the RNG draw
	// sequence is unchanged.
	codeBlocks int
	pcLimit    uint64
	memFrac    float64
	writeFrac  float64
	cumSeq     float64
	cumStride  float64
	cumZipf    float64
	cumChase   float64
	ws         uint64
	wsBlocks   int
}

const blockBytes = 64 // generators think in cache-block-sized units

// New builds a deterministic generator for the workload.
func New(w Workload, seed uint64) (Generator, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Fold the name into the seed so every workload gets its own stream.
	h := seed
	for _, c := range []byte(w.Name) {
		h = h*1099511628211 + uint64(c)
	}
	g := &synthetic{
		w:        w,
		rng:      stats.NewRNG(h),
		codeBase: 0x0040_0000,
		dataBase: 0x1000_0000,
	}
	g.pc = g.codeBase
	g.codeBlocks = int(w.CodeBytes / blockBytes)
	g.pcLimit = g.codeBase + w.CodeBytes
	g.enterPhase(0)
	return g, nil
}

// MustNew is New that panics on error.
func MustNew(w Workload, seed uint64) Generator {
	g, err := New(w, seed)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *synthetic) Name() string { return g.w.Name }

func (g *synthetic) enterPhase(i int) {
	g.phaseIdx = i
	p := g.w.Phases[i]
	g.phaseLeft = p.Instructions
	nblocks := int(p.WorkingSetBytes / blockBytes)
	if nblocks < 1 {
		nblocks = 1
	}
	g.zipf = stats.NewZipf(g.rng.Split(), nblocks, g.w.ZipfS)
	g.seqPtr = 0
	g.stridePtr = 0
	// A stride that is co-prime-ish with the set count: 5 blocks.
	g.strideStep = 5 * blockBytes
	g.chasePtr = uint64(g.rng.Intn(nblocks)) * blockBytes

	// Refresh the hoisted fast-path state. The thresholds accumulate in
	// the same left-to-right order the old inline sums used.
	g.memFrac = p.MemFrac
	g.writeFrac = p.WriteFrac
	g.cumSeq = p.Mix.Seq
	g.cumStride = g.cumSeq + p.Mix.Stride
	g.cumZipf = g.cumStride + p.Mix.Zipf
	g.cumChase = g.cumZipf + p.Mix.Chase
	g.ws = p.WorkingSetBytes
	g.wsBlocks = int(p.WorkingSetBytes / blockBytes)
}

// Next implements Generator. The body reads only the hoisted per-phase
// state (no Phase struct copy) and keeps the rng.Bool calls as-is —
// Bool has draw-free fast paths for p ≤ 0 and p ≥ 1, so inlining it as
// a Float64 comparison would shift the RNG stream.
func (g *synthetic) Next(ins *Instr) {
	if g.phaseLeft == 0 {
		g.enterPhase((g.phaseIdx + 1) % len(g.w.Phases))
	}
	g.phaseLeft--

	// Instruction fetch: sequential with occasional jumps to a random
	// 64-byte-aligned target inside the code footprint.
	if g.rng.Bool(g.w.JumpProb) {
		g.pc = g.codeBase + uint64(g.rng.Intn(g.codeBlocks))*blockBytes
	} else {
		g.pc += 4
		if g.pc >= g.pcLimit {
			g.pc = g.codeBase
		}
	}
	ins.PC = g.pc
	ins.HasMem = false
	ins.Addr = 0
	ins.Write = false

	if !g.rng.Bool(g.memFrac) {
		return
	}
	var off uint64
	u := g.rng.Float64()
	switch {
	case u < g.cumSeq:
		g.seqPtr += 8 // 8-byte stride: eight touches per 64 B block
		if g.seqPtr >= g.ws {
			g.seqPtr = 0
		}
		off = g.seqPtr
	case u < g.cumStride:
		g.stridePtr += g.strideStep
		if g.stridePtr >= g.ws {
			g.stridePtr %= blockBytes // restart with a small offset drift
		}
		off = g.stridePtr
	case u < g.cumZipf:
		off = uint64(g.zipf.Draw()) * blockBytes
	case u < g.cumChase:
		// Dependent random walk: next node anywhere in the working set.
		g.chasePtr = uint64(g.rng.Intn(g.wsBlocks)) * blockBytes
		off = g.chasePtr
	default:
		off = uint64(g.rng.Intn(g.wsBlocks))*blockBytes +
			uint64(g.rng.Intn(blockBytes/8))*8
	}
	ins.HasMem = true
	ins.Addr = g.dataBase + off
	ins.Write = g.rng.Bool(g.writeFrac)
}
