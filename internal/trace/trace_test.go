package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func simpleWorkload() Workload {
	return Workload{
		Name: "test", CodeBytes: 4096, JumpProb: 0.05, ZipfS: 1.0,
		Phases: []Phase{
			{Instructions: 1000, WorkingSetBytes: 64 * 1024,
				Mix: PatternMix{Seq: 0.3, Zipf: 0.4}, WriteFrac: 0.3, MemFrac: 0.5},
			{Instructions: 500, WorkingSetBytes: 8 * 1024,
				Mix: PatternMix{Zipf: 0.8}, WriteFrac: 0.2, MemFrac: 0.4},
		},
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := simpleWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
	mod := func(f func(*Workload)) Workload {
		w := simpleWorkload()
		f(&w)
		return w
	}
	bads := []Workload{
		mod(func(w *Workload) { w.Name = "" }),
		mod(func(w *Workload) { w.CodeBytes = 0 }),
		mod(func(w *Workload) { w.Phases = nil }),
		mod(func(w *Workload) { w.Phases[0].Instructions = 0 }),
		mod(func(w *Workload) { w.Phases[0].WorkingSetBytes = 0 }),
		mod(func(w *Workload) { w.Phases[0].Mix = PatternMix{Seq: 0.9, Zipf: 0.9} }),
		mod(func(w *Workload) { w.Phases[0].Mix = PatternMix{Seq: -0.1} }),
		mod(func(w *Workload) { w.Phases[0].WriteFrac = 1.5 }),
		mod(func(w *Workload) { w.Phases[0].MemFrac = -0.1 }),
	}
	for i, w := range bads {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d validated", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := MustNew(simpleWorkload(), 42)
	b := MustNew(simpleWorkload(), 42)
	var ia, ib Instr
	for i := 0; i < 10000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := MustNew(simpleWorkload(), 1)
	b := MustNew(simpleWorkload(), 2)
	var ia, ib Instr
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia == ib {
			same++
		}
	}
	if same > 900 {
		t.Errorf("different seeds nearly identical: %d/1000", same)
	}
}

func TestAddressRanges(t *testing.T) {
	w := simpleWorkload()
	g := MustNew(w, 7)
	var ins Instr
	for i := 0; i < 20000; i++ {
		g.Next(&ins)
		if ins.PC < 0x0040_0000 || ins.PC >= 0x0040_0000+w.CodeBytes {
			t.Fatalf("PC %#x outside code footprint", ins.PC)
		}
		if ins.HasMem {
			if ins.Addr < 0x1000_0000 {
				t.Fatalf("data address %#x below data base", ins.Addr)
			}
			off := ins.Addr - 0x1000_0000
			if off >= 64*1024 {
				t.Fatalf("data offset %#x outside largest working set", off)
			}
		} else if ins.Addr != 0 || ins.Write {
			t.Fatal("non-mem instruction carries data fields")
		}
	}
}

func TestMemFracRespected(t *testing.T) {
	w := simpleWorkload()
	w.Phases = w.Phases[:1]
	w.Phases[0].Instructions = 1 << 30 // stay in one phase
	g := MustNew(w, 9)
	var ins Instr
	mem := 0
	const n = 50000
	for i := 0; i < n; i++ {
		g.Next(&ins)
		if ins.HasMem {
			mem++
		}
	}
	got := float64(mem) / n
	if got < 0.45 || got > 0.55 {
		t.Errorf("mem fraction %v, want ~0.5", got)
	}
}

func TestWriteFracRespected(t *testing.T) {
	w := simpleWorkload()
	w.Phases = w.Phases[:1]
	w.Phases[0].Instructions = 1 << 30
	g := MustNew(w, 10)
	var ins Instr
	mem, writes := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&ins)
		if ins.HasMem {
			mem++
			if ins.Write {
				writes++
			}
		}
	}
	got := float64(writes) / float64(mem)
	if got < 0.25 || got > 0.35 {
		t.Errorf("write fraction %v, want ~0.3", got)
	}
}

func TestPhaseCycling(t *testing.T) {
	w := simpleWorkload() // phases of 1000 and 500 instructions
	g := MustNew(w, 11)
	var ins Instr
	// After phase 1 (1000 instr), addresses must be confined to the
	// 8 KB working set of phase 2.
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
	}
	for i := 0; i < 500; i++ {
		g.Next(&ins)
		if ins.HasMem && ins.Addr-0x1000_0000 >= 8*1024 {
			t.Fatalf("phase-2 access %#x outside 8 KB working set", ins.Addr)
		}
	}
	// Then back to phase 1: eventually an access beyond 8 KB appears.
	seenBig := false
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if ins.HasMem && ins.Addr-0x1000_0000 >= 8*1024 {
			seenBig = true
		}
	}
	if !seenBig {
		t.Error("phase cycle did not return to the large working set")
	}
}

func TestSuiteValid(t *testing.T) {
	ws := Suite()
	if len(ws) != 16 {
		t.Fatalf("suite has %d workloads, want 16 (as the paper)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate name %s", w.Name)
		}
		seen[w.Name] = true
		if _, err := New(w, 1); err != nil {
			t.Errorf("workload %s: generator: %v", w.Name, err)
		}
	}
}

func TestSuiteSpansWorkingSetRange(t *testing.T) {
	// DPCS exploits working-set variation: the suite must include both
	// cache-resident and memory-bound footprints.
	small, large := false, false
	for _, w := range Suite() {
		for _, p := range w.Phases {
			if p.WorkingSetBytes <= 256*1024 {
				small = true
			}
			if p.WorkingSetBytes >= 8*1024*1024 {
				large = true
			}
		}
	}
	if !small || !large {
		t.Error("suite lacks working-set diversity")
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("mcf.s"); !ok {
		t.Error("mcf.s not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("bogus name found")
	}
	if len(Names()) != 16 {
		t.Error("Names length")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := MustNew(simpleWorkload(), 13)
	var buf bytes.Buffer
	const n = 5000
	if err := Record(g, n, &buf); err != nil {
		t.Fatal(err)
	}
	// Replay must match a fresh generator with the same seed.
	g2 := MustNew(simpleWorkload(), 13)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got, want Instr
	for i := 0; i < n; i++ {
		if err := r.Read(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		g2.Next(&want)
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if err := r.Read(&got); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	g := MustNew(simpleWorkload(), 14)
	var buf bytes.Buffer
	if err := Record(g, 100, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	var ins Instr
	var readErr error
	for i := 0; i < 100; i++ {
		if readErr = r.Read(&ins); readErr != nil {
			break
		}
	}
	if readErr == nil {
		t.Fatal("truncated trace read fully")
	}
	if !errors.Is(readErr, io.ErrUnexpectedEOF) && !errors.Is(readErr, io.EOF) {
		t.Fatalf("unexpected error: %v", readErr)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write(Instr{PC: uint64(i * 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("count %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Errorf("zigzag round trip %d -> %d", d, got)
		}
	}
}
