package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: a small header followed by one varint-encoded
// record per instruction. PCs and data addresses are delta-encoded
// (zig-zag) against the previous instruction, which compresses the
// mostly-sequential fetch stream well.

const traceMagic = "PCSTRC01"

// Writer serialises an instruction stream.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	wrote    bool
	count    uint64
}

// NewWriter starts a trace on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one instruction record.
func (t *Writer) Write(ins Instr) error {
	var buf [binary.MaxVarintLen64*2 + 1]byte
	flags := byte(0)
	if ins.HasMem {
		flags |= 1
	}
	if ins.Write {
		flags |= 2
	}
	buf[0] = flags
	n := 1
	n += binary.PutUvarint(buf[n:], zigzag(int64(ins.PC)-int64(t.prevPC)))
	if ins.HasMem {
		n += binary.PutUvarint(buf[n:], zigzag(int64(ins.Addr)-int64(t.prevAddr)))
		t.prevAddr = ins.Addr
	}
	t.prevPC = ins.PC
	t.wrote = true
	t.count++
	_, err := t.w.Write(buf[:n])
	return err
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader replays a serialised trace.
type Reader struct {
	r        *bufio.Reader
	prevPC   uint64
	prevAddr uint64
}

// NewReader validates the header and prepares to read records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	return &Reader{r: br}, nil
}

// Read fills the next instruction; it returns io.EOF at end of trace.
func (t *Reader) Read(ins *Instr) error {
	flags, err := t.r.ReadByte()
	if err != nil {
		return err // io.EOF passes through
	}
	dpc, err := binary.ReadUvarint(t.r)
	if err != nil {
		return badEOF(err)
	}
	t.prevPC = uint64(int64(t.prevPC) + unzigzag(dpc))
	ins.PC = t.prevPC
	ins.HasMem = flags&1 != 0
	ins.Write = flags&2 != 0
	ins.Addr = 0
	if ins.HasMem {
		da, err := binary.ReadUvarint(t.r)
		if err != nil {
			return badEOF(err)
		}
		t.prevAddr = uint64(int64(t.prevAddr) + unzigzag(da))
		ins.Addr = t.prevAddr
	}
	return nil
}

// badEOF converts a mid-record EOF into ErrUnexpectedEOF.
func badEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Record materialises n instructions from g into w.
func Record(g Generator, n uint64, w io.Writer) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	var ins Instr
	for i := uint64(0); i < n; i++ {
		g.Next(&ins)
		if err := tw.Write(ins); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
	}
	return tw.Flush()
}
