package trace

// Suite returns the 16 synthetic SPEC CPU2006-like workloads used in the
// Fig. 4 reproduction. Names mirror the SPEC programs whose memory
// behaviour each generator imitates (suffix ".s" marks them synthetic).
// Parameters follow the well-known qualitative characterisations:
// mcf/omnetpp/xalancbmk are pointer-heavy with multi-MB footprints and
// high L2 pressure; libquantum/lbm/bwaves/milc stream; namd/hmmer/
// h264ref-class codes have small hot working sets; gcc and bzip2 show
// strong phase behaviour — which is exactly the variation DPCS exploits.
func Suite() []Workload {
	const (
		kb = 1024
		mb = 1024 * 1024
	)
	phase := func(instr uint64, ws uint64, mix PatternMix, wr, mem float64) Phase {
		return Phase{Instructions: instr, WorkingSetBytes: ws, Mix: mix, WriteFrac: wr, MemFrac: mem}
	}
	return []Workload{
		{
			Name: "perlbench.s", CodeBytes: 384 * kb, JumpProb: 0.06, ZipfS: 1.20,
			Phases: []Phase{
				phase(32_000_000, 768*kb, PatternMix{Zipf: 0.72, Seq: 0.15, Chase: 0.05}, 0.30, 0.42),
			},
		},
		{
			Name: "bzip2.s", CodeBytes: 64 * kb, JumpProb: 0.03, ZipfS: 1.05,
			Phases: []Phase{
				// Compress phase: big streaming window with hot tables.
				phase(20_000_000, 3*mb, PatternMix{Seq: 0.45, Zipf: 0.45}, 0.35, 0.40),
				// Huffman phase: small hot tables.
				phase(12_000_000, 192*kb, PatternMix{Zipf: 0.85, Seq: 0.10}, 0.20, 0.42),
			},
		},
		{
			Name: "gcc.s", CodeBytes: 1024 * kb, JumpProb: 0.07, ZipfS: 1.15,
			Phases: []Phase{
				phase(9_600_000, 2*mb, PatternMix{Zipf: 0.60, Chase: 0.10, Seq: 0.20}, 0.28, 0.42),
				phase(8_000_000, 512*kb, PatternMix{Zipf: 0.75, Seq: 0.15}, 0.25, 0.42),
				phase(6_400_000, 4*mb, PatternMix{Zipf: 0.45, Chase: 0.25, Seq: 0.15}, 0.30, 0.42),
			},
		},
		{
			Name: "mcf.s", CodeBytes: 24 * kb, JumpProb: 0.04, ZipfS: 0.80,
			Phases: []Phase{
				phase(32_000_000, 20*mb, PatternMix{Chase: 0.45, Zipf: 0.40}, 0.12, 0.36),
			},
		},
		{
			Name: "gobmk.s", CodeBytes: 512 * kb, JumpProb: 0.07, ZipfS: 1.25,
			Phases: []Phase{
				phase(24_000_000, 384*kb, PatternMix{Zipf: 0.70, Chase: 0.08, Seq: 0.12}, 0.22, 0.38),
			},
		},
		{
			Name: "hmmer.s", CodeBytes: 48 * kb, JumpProb: 0.02, ZipfS: 1.35,
			Phases: []Phase{
				phase(32_000_000, 128*kb, PatternMix{Zipf: 0.62, Stride: 0.25, Seq: 0.10}, 0.35, 0.48),
			},
		},
		{
			Name: "sjeng.s", CodeBytes: 160 * kb, JumpProb: 0.06, ZipfS: 1.15,
			Phases: []Phase{
				phase(28_000_000, 1536*kb, PatternMix{Zipf: 0.68, Chase: 0.10}, 0.25, 0.34),
			},
		},
		{
			Name: "libquantum.s", CodeBytes: 24 * kb, JumpProb: 0.02, ZipfS: 0.50,
			Phases: []Phase{
				phase(32_000_000, 16*mb, PatternMix{Seq: 0.90, Zipf: 0.06}, 0.30, 0.42),
			},
		},
		{
			Name: "h264ref.s", CodeBytes: 320 * kb, JumpProb: 0.04, ZipfS: 1.20,
			Phases: []Phase{
				phase(16_000_000, 1*mb, PatternMix{Stride: 0.30, Seq: 0.25, Zipf: 0.40}, 0.30, 0.46),
				phase(9_600_000, 256*kb, PatternMix{Zipf: 0.70, Stride: 0.18}, 0.25, 0.46),
			},
		},
		{
			Name: "omnetpp.s", CodeBytes: 640 * kb, JumpProb: 0.07, ZipfS: 0.95,
			Phases: []Phase{
				phase(28_000_000, 10*mb, PatternMix{Chase: 0.35, Zipf: 0.45}, 0.30, 0.38),
			},
		},
		{
			Name: "astar.s", CodeBytes: 48 * kb, JumpProb: 0.04, ZipfS: 1.00,
			Phases: []Phase{
				phase(14_400_000, 5*mb, PatternMix{Chase: 0.30, Zipf: 0.50}, 0.22, 0.40),
				phase(9_600_000, 1*mb, PatternMix{Zipf: 0.70, Chase: 0.10}, 0.22, 0.40),
			},
		},
		{
			Name: "xalancbmk.s", CodeBytes: 1024 * kb, JumpProb: 0.08, ZipfS: 1.05,
			Phases: []Phase{
				phase(24_000_000, 4*mb, PatternMix{Chase: 0.20, Zipf: 0.55, Seq: 0.10}, 0.26, 0.40),
			},
		},
		{
			Name: "bwaves.s", CodeBytes: 32 * kb, JumpProb: 0.01, ZipfS: 0.50,
			Phases: []Phase{
				phase(32_000_000, 18*mb, PatternMix{Seq: 0.75, Stride: 0.18}, 0.25, 0.50),
			},
		},
		{
			Name: "milc.s", CodeBytes: 96 * kb, JumpProb: 0.02, ZipfS: 0.70,
			Phases: []Phase{
				phase(17_600_000, 6*mb, PatternMix{Seq: 0.55, Stride: 0.25, Zipf: 0.12}, 0.30, 0.46),
				phase(8_000_000, 1536*kb, PatternMix{Zipf: 0.60, Seq: 0.25}, 0.28, 0.46),
			},
		},
		{
			Name: "namd.s", CodeBytes: 96 * kb, JumpProb: 0.02, ZipfS: 1.35,
			Phases: []Phase{
				phase(32_000_000, 192*kb, PatternMix{Zipf: 0.60, Stride: 0.28, Seq: 0.08}, 0.30, 0.46),
			},
		},
		{
			Name: "lbm.s", CodeBytes: 16 * kb, JumpProb: 0.01, ZipfS: 0.40,
			Phases: []Phase{
				phase(32_000_000, 24*mb, PatternMix{Seq: 0.82, Stride: 0.12}, 0.45, 0.50),
			},
		},
	}
}

// ByName returns the suite workload with the given name, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Names returns the suite's workload names in order.
func Names() []string {
	ws := Suite()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
