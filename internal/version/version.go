// Package version is the single source of the binary's build identity.
// It serves two masters: `pcs version` output, and the code-version
// component of every result-store cache key and run-ledger manifest —
// so a rebuild with different code correctly invalidates memoized
// cells, and every run directory records exactly which build produced
// it.
package version

import "runtime/debug"

// Version is the release stamp, injected at build time by the Makefile:
//
//	go build -ldflags "-X repro/internal/version.Version=$(VERSION)"
//
// Left empty (a plain `go build`), String falls back to VCS metadata.
var Version = ""

// String resolves the build identity: the stamped Version if present,
// else the embedded VCS revision (with a -dirty suffix for modified
// trees), else the module version, else "unknown".
func String() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, suffix string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					suffix = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + suffix
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "unknown"
}
