package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/resultstore"
)

// SpecsDigest is the hex SHA-256 of the canonical JSON form of a
// job-spec array. Canonicalization means the digest is recomputable
// from manifest.json's indented "specs" field as well as from the
// in-memory spec slice the runner marshalled.
func SpecsDigest(specs json.RawMessage) (string, error) {
	canon, err := resultstore.CanonicalJSON(specs)
	if err != nil {
		return "", fmt.Errorf("ledger: specs digest: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// Report is the outcome of a successful VerifyDir: the verified chain
// contents, ready for display or for sampling cells to re-execute.
type Report struct {
	Dir      string
	Manifest Manifest
	Results  []Result
	// Sidecars lists the wall-clock artifacts (timeline.jsonl,
	// spans.jsonl) the chain covers; their file digests were verified.
	Sidecars []Sidecar
	Summary  Summary
	// Cached counts results the chain records as cache hits.
	Cached int
}

// VerifyDir re-walks the hash chain of dir's ledger.jsonl and checks
// it against the other artifacts:
//
//   - the chain itself links (Read) and has the manifest/results/summary
//     shape with contiguous job indices;
//   - every per-job digest matches the corresponding results.jsonl line,
//     and the closing entry's whole-file digest matches the file;
//   - the opening entry agrees with manifest.json (campaign, seed, job
//     and worker counts, specs digest);
//   - the closing entry's counts agree with summary.json.
//
// Any discrepancy — a flipped byte in results.jsonl, an edited or
// truncated ledger, a swapped manifest — returns a descriptive error.
func VerifyDir(dir string) (*Report, error) {
	lf, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	entries, err := Read(lf)
	lf.Close()
	if err != nil {
		return nil, err
	}

	if entries[0].Type != TypeManifest {
		return nil, fmt.Errorf("ledger: first entry is %q, want %q", entries[0].Type, TypeManifest)
	}
	last := entries[len(entries)-1]
	if last.Type != TypeSummary {
		return nil, fmt.Errorf("ledger: last entry is %q, want %q (run not closed?)", last.Type, TypeSummary)
	}
	rep := &Report{Dir: dir}
	if err := json.Unmarshal(entries[0].Body, &rep.Manifest); err != nil {
		return nil, fmt.Errorf("ledger: manifest body: %w", err)
	}
	if err := json.Unmarshal(last.Body, &rep.Summary); err != nil {
		return nil, fmt.Errorf("ledger: summary body: %w", err)
	}
	// Middle entries: all results first, then any sidecars. Runs from
	// before sidecar chaining simply have none.
	for _, e := range entries[1 : len(entries)-1] {
		switch e.Type {
		case TypeResult:
			if len(rep.Sidecars) > 0 {
				return nil, fmt.Errorf("ledger: entry %d: result after sidecar entries", e.Seq)
			}
			var r Result
			if err := json.Unmarshal(e.Body, &r); err != nil {
				return nil, fmt.Errorf("ledger: entry %d body: %w", e.Seq, err)
			}
			if r.Index != len(rep.Results) {
				return nil, fmt.Errorf("ledger: entry %d: job index %d out of order", e.Seq, r.Index)
			}
			if r.Cached {
				rep.Cached++
			}
			rep.Results = append(rep.Results, r)
		case TypeSidecar:
			var sc Sidecar
			if err := json.Unmarshal(e.Body, &sc); err != nil {
				return nil, fmt.Errorf("ledger: entry %d body: %w", e.Seq, err)
			}
			if sc.Name == "" || sc.Name != filepath.Base(sc.Name) {
				return nil, fmt.Errorf("ledger: entry %d: bad sidecar name %q", e.Seq, sc.Name)
			}
			rep.Sidecars = append(rep.Sidecars, sc)
		default:
			return nil, fmt.Errorf("ledger: entry %d is %q, want %q or %q", e.Seq, e.Type, TypeResult, TypeSidecar)
		}
	}
	// Every chained sidecar file must still match its recorded digest.
	for _, sc := range rep.Sidecars {
		data, err := os.ReadFile(filepath.Join(dir, sc.Name))
		if err != nil {
			return nil, fmt.Errorf("ledger: sidecar %s: %w", sc.Name, err)
		}
		if int64(len(data)) != sc.Bytes {
			return nil, fmt.Errorf("ledger: sidecar %s is %d bytes, chain records %d", sc.Name, len(data), sc.Bytes)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != sc.Digest {
			return nil, fmt.Errorf("ledger: sidecar %s digest mismatch: file %.12s… vs chain %.12s… (artifact modified after the run)", sc.Name, got, sc.Digest)
		}
	}
	if rep.Manifest.Jobs != len(rep.Results) {
		return nil, fmt.Errorf("ledger: manifest declares %d jobs but chain has %d result entries", rep.Manifest.Jobs, len(rep.Results))
	}

	// results.jsonl: per-line and whole-file digests.
	data, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != rep.Summary.ResultsDigest {
		return nil, fmt.Errorf("ledger: results.jsonl digest mismatch: file %.12s… vs chain %.12s… (results modified after the run)", got, rep.Summary.ResultsDigest)
	}
	lines := splitLines(data)
	if len(lines) != len(rep.Results) {
		return nil, fmt.Errorf("ledger: results.jsonl has %d lines but chain has %d result entries", len(lines), len(rep.Results))
	}
	for i, r := range rep.Results {
		if got := LineDigest(lines[i]); got != r.Digest {
			return nil, fmt.Errorf("ledger: result %d digest mismatch: line %.12s… vs chain %.12s…", i, got, r.Digest)
		}
	}

	// manifest.json: the chain's opening entry must describe this run.
	var mf struct {
		Campaign string          `json:"campaign"`
		Seed     uint64          `json:"seed"`
		Jobs     int             `json:"jobs"`
		Workers  int             `json:"workers"`
		Specs    json.RawMessage `json:"specs"`
	}
	mdata, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if err := json.Unmarshal(mdata, &mf); err != nil {
		return nil, fmt.Errorf("ledger: manifest.json: %w", err)
	}
	if mf.Campaign != rep.Manifest.Campaign || mf.Seed != rep.Manifest.Seed ||
		mf.Jobs != rep.Manifest.Jobs || mf.Workers != rep.Manifest.Workers {
		return nil, fmt.Errorf("ledger: manifest.json (%q seed=%d jobs=%d workers=%d) disagrees with chain (%q seed=%d jobs=%d workers=%d)",
			mf.Campaign, mf.Seed, mf.Jobs, mf.Workers,
			rep.Manifest.Campaign, rep.Manifest.Seed, rep.Manifest.Jobs, rep.Manifest.Workers)
	}
	specsDigest, err := SpecsDigest(mf.Specs)
	if err != nil {
		return nil, err
	}
	if specsDigest != rep.Manifest.SpecsDigest {
		return nil, fmt.Errorf("ledger: manifest.json specs digest %.12s… disagrees with chain %.12s… (specs modified after the run)", specsDigest, rep.Manifest.SpecsDigest)
	}

	// summary.json: terminal counts must agree with the closing entry.
	var sf struct {
		Done      int `json:"done"`
		Failed    int `json:"failed"`
		Cancelled int `json:"cancelled"`
	}
	sdata, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	if err := json.Unmarshal(sdata, &sf); err != nil {
		return nil, fmt.Errorf("ledger: summary.json: %w", err)
	}
	if sf.Done != rep.Summary.Done || sf.Failed != rep.Summary.Failed || sf.Cancelled != rep.Summary.Cancelled {
		return nil, fmt.Errorf("ledger: summary.json counts (%d/%d/%d) disagree with chain (%d/%d/%d)",
			sf.Done, sf.Failed, sf.Cancelled, rep.Summary.Done, rep.Summary.Failed, rep.Summary.Cancelled)
	}
	return rep, nil
}

// splitLines splits a JSONL file into lines, dropping the final empty
// slice after the trailing newline.
func splitLines(data []byte) [][]byte {
	var out [][]byte
	for len(data) > 0 {
		i := 0
		for i < len(data) && data[i] != '\n' {
			i++
		}
		line := data[:i]
		if i < len(data) {
			i++
		}
		data = data[i:]
		if len(line) > 0 {
			out = append(out, line)
		}
	}
	return out
}
