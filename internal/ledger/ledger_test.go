package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestChainRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append(TypeManifest, Manifest{Campaign: "c", Seed: 1, Jobs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TypeResult, Result{Index: 0, Kind: "k", Status: "done", Digest: "d0"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TypeResult, Result{Index: 1, Kind: "k", Status: "done", Digest: "d1", Cached: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TypeSummary, Summary{Done: 2}); err != nil {
		t.Fatal(err)
	}

	entries, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries: got %d want 4", len(entries))
	}
	if entries[0].Prev != "" {
		t.Errorf("first entry prev: got %q want empty", entries[0].Prev)
	}
	for i, e := range entries {
		if e.Seq != i {
			t.Errorf("entry %d: seq %d", i, e.Seq)
		}
	}
}

func TestChainTamperDetection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Append(TypeResult, Result{Index: i, Status: "done", Digest: fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	// Editing any middle line breaks the next line's prev link.
	edited := strings.Replace(lines[1], `"done"`, `"failed"`, 1)
	tampered := strings.Join([]string{lines[0], edited, lines[2]}, "\n") + "\n"
	if _, err := Read(strings.NewReader(tampered)); err == nil {
		t.Error("edited entry: want chain error")
	}

	// Deleting a line breaks both seq and prev.
	spliced := strings.Join([]string{lines[0], lines[2]}, "\n") + "\n"
	if _, err := Read(strings.NewReader(spliced)); err == nil {
		t.Error("spliced chain: want error")
	}

	// Truncation (dropping the tail) still parses: append-only chains
	// cannot self-certify completeness, which is why VerifyDir requires
	// the final entry to be the summary.
	if _, err := Read(strings.NewReader(lines[0] + "\n")); err != nil {
		t.Errorf("prefix read: %v", err)
	}

	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty ledger: want error")
	}
}

func TestSpecsDigestCanonical(t *testing.T) {
	a, err := SpecsDigest([]byte(`[{"kind":"k","params":{"a":1,"b":2}}]`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpecsDigest([]byte("[ {\"params\": {\"b\":2, \"a\":1},\n   \"kind\": \"k\"} ]"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("reformatted specs produced a different digest")
	}
}

// writeRunDir fabricates a minimal verifiable run directory: two done
// jobs, matching manifest.json/results.jsonl/summary.json/ledger.jsonl.
func writeRunDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()

	specs := json.RawMessage(`[{"kind":"k","name":"j0","params":{"x":1}},{"kind":"k","name":"j1","params":{"x":2}}]`)
	results := [][]byte{
		[]byte(`{"index":0,"kind":"k","name":"j0","seed":11,"status":"done","output":{"v":1}}`),
		[]byte(`{"index":1,"kind":"k","name":"j1","seed":22,"status":"done","output":{"v":2}}`),
	}
	var rbuf bytes.Buffer
	for _, l := range results {
		rbuf.Write(l)
		rbuf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "results.jsonl"), rbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	mf := fmt.Sprintf(`{
  "campaign": "c",
  "seed": 7,
  "jobs": 2,
  "workers": 1,
  "created": "2026-01-01T00:00:00Z",
  "specs": %s
}`, specs)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(mf), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.json"), []byte(`{"done":2,"failed":0,"cancelled":0}`), 0o644); err != nil {
		t.Fatal(err)
	}

	sd, err := SpecsDigest(specs)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(rbuf.Bytes())
	lf, err := os.Create(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(lf)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Append(TypeManifest, Manifest{Campaign: "c", Seed: 7, Jobs: 2, Workers: 1, CodeVersion: "test", SpecsDigest: sd}))
	must(w.Append(TypeResult, Result{Index: 0, Kind: "k", Name: "j0", Seed: 11, Status: "done", Digest: LineDigest(results[0])}))
	must(w.Append(TypeResult, Result{Index: 1, Kind: "k", Name: "j1", Seed: 22, Status: "done", Cached: true, Digest: LineDigest(results[1])}))
	must(w.Append(TypeSummary, Summary{Done: 2, ResultsDigest: hex.EncodeToString(sum[:])}))
	must(lf.Close())
	return dir
}

func TestVerifyDir(t *testing.T) {
	dir := writeRunDir(t)
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("VerifyDir on intact run: %v", err)
	}
	if rep.Manifest.Campaign != "c" || len(rep.Results) != 2 || rep.Summary.Done != 2 {
		t.Errorf("report: %+v", rep)
	}
	if rep.Cached != 1 {
		t.Errorf("cached count: got %d want 1", rep.Cached)
	}
}

func TestVerifyDirDetectsCorruptResults(t *testing.T) {
	dir := writeRunDir(t)
	p := filepath.Join(dir, "results.jsonl")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the first output value: "v":1 -> "v":9.
	i := bytes.Index(data, []byte(`{"v":1}`))
	if i < 0 {
		t.Fatal("marker not found")
	}
	data[i+5] = '9'
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err == nil {
		t.Error("corrupted results.jsonl byte: want verification failure")
	}
}

func TestVerifyDirDetectsEditedLedger(t *testing.T) {
	dir := writeRunDir(t)
	p := filepath.Join(dir, FileName)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(data, []byte(`"seed":11`), []byte(`"seed":12`), 1)
	if bytes.Equal(edited, data) {
		t.Fatal("marker not found")
	}
	if err := os.WriteFile(p, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err == nil {
		t.Error("edited ledger entry: want verification failure")
	}
}

func TestVerifyDirDetectsManifestSwap(t *testing.T) {
	dir := writeRunDir(t)
	p := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(data, []byte(`"x":1`), []byte(`"x":3`), 1)
	if bytes.Equal(edited, data) {
		t.Fatal("marker not found")
	}
	if err := os.WriteFile(p, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err == nil {
		t.Error("edited manifest specs: want verification failure")
	}
}

func TestVerifyDirDetectsTruncatedLedger(t *testing.T) {
	dir := writeRunDir(t)
	p := filepath.Join(dir, FileName)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	truncated := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	if err := os.WriteFile(p, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err == nil {
		t.Error("truncated ledger (summary dropped): want verification failure")
	}
}
