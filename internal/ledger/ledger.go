// Package ledger implements the hash-chained run ledger: a
// ledger.jsonl file alongside each campaign's artifacts in which every
// entry carries the SHA-256 of the previous entry's line. The chain
// opens with the campaign manifest (spec digest, seed, code version),
// carries one digest per results.jsonl line, and closes with the
// campaign summary and a whole-file results digest — so any published
// figure derived from a run directory is verifiable back to the exact
// spec, seed and binary that produced it, and any post-hoc edit to
// results.jsonl (or to the ledger itself) breaks the chain.
//
// The format is deliberately line-oriented and self-contained: each
// line is one JSON Entry, prev-linked, append-only. `pcs verify`
// re-walks the chain (see VerifyDir) and can re-execute sampled cells
// to confirm bit-identical reproduction.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// FileName is the ledger's name inside a run directory.
const FileName = "ledger.jsonl"

// Entry types, in chain order: one manifest, n results, zero or more
// sidecars, one summary.
const (
	TypeManifest = "manifest"
	TypeResult   = "result"
	TypeSidecar  = "sidecar"
	TypeSummary  = "summary"
)

// Entry is one ledger line. Prev is the hex SHA-256 of the previous
// line's bytes (without the trailing newline); the first entry's Prev
// is empty. Seq is the zero-based line number, making truncation as
// detectable as modification.
type Entry struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Prev string          `json:"prev"`
	Body json.RawMessage `json:"body"`
}

// Manifest is the opening entry's body: the identity of the campaign
// execution the chain closes over.
type Manifest struct {
	Campaign string `json:"campaign"`
	Seed     uint64 `json:"seed"`
	Jobs     int    `json:"jobs"`
	Workers  int    `json:"workers"`
	// CodeVersion is the build identity of the producing binary (see
	// internal/version); also the code-version component of result-store
	// cache keys.
	CodeVersion string `json:"code_version,omitempty"`
	// SpecsDigest is SpecsDigest() over the campaign's job-spec array,
	// recomputable from manifest.json's "specs" field.
	SpecsDigest string `json:"specs_digest"`
}

// Result is one per-job entry body. Digest is LineDigest over the
// job's results.jsonl line.
type Result struct {
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Seed   uint64 `json:"seed"`
	Status string `json:"status"`
	// Cached marks a result served from the content-addressed store
	// rather than computed. It lives here (and in the timeline), not in
	// results.jsonl, so result files stay byte-identical across cached
	// and uncached executions.
	Cached bool   `json:"cached,omitempty"`
	Digest string `json:"digest"`
}

// Sidecar is one wall-clock artifact entry body: a run-directory file
// (timeline.jsonl, spans.jsonl) hash-chained into the ledger so `pcs
// verify` covers every artifact, not just the deterministic results.
// Sidecar entries sit between the results and the summary.
type Sidecar struct {
	// Name is the file's name inside the run directory.
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Digest string `json:"digest"` // hex SHA-256 of the whole file
}

// Summary is the closing entry's body. ResultsDigest is the SHA-256 of
// the entire results.jsonl file.
type Summary struct {
	Done          int    `json:"done"`
	Failed        int    `json:"failed"`
	Cancelled     int    `json:"cancelled"`
	ResultsDigest string `json:"results_digest"`
}

// LineDigest is the hex SHA-256 of one line's bytes, excluding any
// trailing newline.
func LineDigest(line []byte) string {
	line = bytes.TrimRight(line, "\r\n")
	sum := sha256.Sum256(line)
	return hex.EncodeToString(sum[:])
}

// Writer appends chain-linked entries to an output stream. Not safe
// for concurrent use; the artifact store serialises writes.
type Writer struct {
	w    io.Writer
	seq  int
	prev string
}

// NewWriter starts a fresh chain on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append marshals body into the next entry and writes it as one line.
func (lw *Writer) Append(typ string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("ledger: marshal %s body: %w", typ, err)
	}
	line, err := json.Marshal(Entry{Seq: lw.seq, Type: typ, Prev: lw.prev, Body: raw})
	if err != nil {
		return fmt.Errorf("ledger: marshal %s entry: %w", typ, err)
	}
	if _, err := lw.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("ledger: write entry %d: %w", lw.seq, err)
	}
	lw.prev = LineDigest(line)
	lw.seq++
	return nil
}

// Read parses a ledger stream, verifying the hash chain and sequence
// numbers as it goes. It returns the entries only if every line's Prev
// matches the digest of the line before it.
func Read(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		entries []Entry
		prev    string
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", len(entries), err)
		}
		if e.Seq != len(entries) {
			return nil, fmt.Errorf("ledger: line %d: seq %d out of order (truncated or spliced chain)", len(entries), e.Seq)
		}
		if e.Prev != prev {
			return nil, fmt.Errorf("ledger: entry %d: chain broken: prev %.12s… does not match previous entry digest %.12s…", e.Seq, e.Prev, prev)
		}
		prev = LineDigest(line)
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: read: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("ledger: empty ledger")
	}
	return entries, nil
}
