package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTech45Validates(t *testing.T) {
	if err := Tech45SOI().Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mod := func(f func(*Tech)) Tech {
		tt := Tech45SOI()
		f(&tt)
		return tt
	}
	bads := []Tech{
		mod(func(t *Tech) { t.VDDNom = 0 }),
		mod(func(t *Tech) { t.VDDMin = 0 }),
		mod(func(t *Tech) { t.VDDMin = 1.5 }),
		mod(func(t *Tech) { t.RVT.Vth = 0 }),
		mod(func(t *Tech) { t.RVT.Vth = 2 }),
		mod(func(t *Tech) { t.LVT.IoffNom = 0 }),
		mod(func(t *Tech) { t.LVT.IoffNom = 1 }), // above Ion
		mod(func(t *Tech) { t.RVT.DIBLDecadesPerVolt = 0 }),
		mod(func(t *Tech) { t.RVT.Alpha = 0.5 }),
		mod(func(t *Tech) { t.RVT.Alpha = 2.5 }),
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: bad tech validated", i)
		}
	}
}

func TestLeakageMonotoneInVDD(t *testing.T) {
	tech := Tech45SOI()
	if err := quick.Check(func(a, b uint8) bool {
		v1 := 0.3 + float64(a%70)/100
		v2 := 0.3 + float64(b%70)/100
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return tech.LeakageCurrent(RVT, v1) <= tech.LeakageCurrent(RVT, v2)+1e-30
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageNominalValue(t *testing.T) {
	tech := Tech45SOI()
	if got := tech.LeakageCurrent(RVT, tech.VDDNom); got != tech.RVT.IoffNom {
		t.Errorf("nominal RVT leakage %v, want %v", got, tech.RVT.IoffNom)
	}
}

func TestLeakageExponentialSlope(t *testing.T) {
	tech := Tech45SOI()
	// 1.5 decades/V means a 0.1 V drop cuts current by 10^0.15.
	r := tech.LeakageCurrent(RVT, 0.9) / tech.LeakageCurrent(RVT, 1.0)
	want := math.Pow(10, -0.15)
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("0.1V leakage ratio %v, want %v", r, want)
	}
}

func TestLeakageFloor(t *testing.T) {
	tech := Tech45SOI()
	lo := tech.LeakageCurrent(RVT, -10)
	if lo <= 0 {
		t.Fatalf("leakage floor not applied: %v", lo)
	}
	if lo > tech.RVT.IoffNom*1e-6*1.0000001 {
		t.Errorf("leakage at extreme low VDD %v above floor", lo)
	}
}

func TestLVTLeakierThanRVT(t *testing.T) {
	tech := Tech45SOI()
	for v := 0.4; v <= 1.0; v += 0.1 {
		if tech.LeakageCurrent(LVT, v) <= tech.LeakageCurrent(RVT, v) {
			t.Errorf("LVT not leakier at %v V", v)
		}
	}
}

func TestLeakagePower(t *testing.T) {
	tech := Tech45SOI()
	if got := tech.LeakagePower(RVT, 0); got != 0 {
		t.Errorf("zero VDD power %v", got)
	}
	want := 1.0 * tech.RVT.IoffNom
	if got := tech.LeakagePower(RVT, 1.0); math.Abs(got-want) > 1e-18 {
		t.Errorf("nominal power %v, want %v", got, want)
	}
}

func TestDelayFactorNominalIsOne(t *testing.T) {
	tech := Tech45SOI()
	if got := tech.DelayFactor(RVT, tech.VDDNom); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal delay factor %v", got)
	}
}

func TestDelayFactorMonotoneDecreasingInVDD(t *testing.T) {
	tech := Tech45SOI()
	prev := math.Inf(1)
	for v := 0.45; v <= 1.2; v += 0.01 {
		f := tech.DelayFactor(RVT, v)
		if f > prev {
			t.Fatalf("delay factor not decreasing at %v V: %v > %v", v, f, prev)
		}
		prev = f
	}
}

func TestDelayFactorInfiniteBelowVth(t *testing.T) {
	tech := Tech45SOI()
	if !math.IsInf(tech.DelayFactor(RVT, tech.RVT.Vth), 1) {
		t.Error("delay at Vth should be +Inf")
	}
	if !math.IsInf(tech.DelayFactor(RVT, 0.1), 1) {
		t.Error("delay below Vth should be +Inf")
	}
}

func TestDynamicEnergyFactor(t *testing.T) {
	tech := Tech45SOI()
	if got := tech.DynamicEnergyFactor(1.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal dyn factor %v", got)
	}
	if got := tech.DynamicEnergyFactor(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("half-VDD dyn factor %v, want 0.25", got)
	}
}

func TestClassAccessor(t *testing.T) {
	tech := Tech45SOI()
	if tech.Class(RVT).Name != "RVT" || tech.Class(LVT).Name != "LVT" {
		t.Error("Class accessor mismatch")
	}
	if RVT.String() != "RVT" || LVT.String() != "LVT" {
		t.Error("String mismatch")
	}
	if ThresholdClass(9).String() == "" {
		t.Error("unknown class String empty")
	}
}
