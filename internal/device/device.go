// Package device models 45 nm-class MOSFET behaviour at the level of
// detail the cache power/delay models need: subthreshold (plus gate)
// leakage current as a function of supply voltage, drive current, and
// gate-delay scaling following the alpha-power law.
//
// The paper obtained NFET/PFET on/off currents from SPICE models of an
// industrial 45 nm SOI process (the Red Cooper test-chip process) and fed
// them into CACTI 6.5. We substitute a compact analytical model with
// parameters chosen to land in 45 nm-class magnitudes; only the
// *dependence on VDD* (exponential leakage, ~V^2 dynamic energy,
// alpha-power delay) enters the reproduced results.
package device

import (
	"fmt"
	"math"
)

// ThresholdClass selects the transistor threshold flavour. The paper uses
// regular-Vt (RVT) FETs for the SRAM bit cells and low-Vt (LVT) FETs for
// peripheral logic (faster but leakier).
type ThresholdClass int

const (
	// RVT is the regular threshold voltage class used for SRAM cells.
	RVT ThresholdClass = iota
	// LVT is the low threshold voltage class used for periphery.
	LVT
)

// String implements fmt.Stringer.
func (t ThresholdClass) String() string {
	switch t {
	case RVT:
		return "RVT"
	case LVT:
		return "LVT"
	default:
		return fmt.Sprintf("ThresholdClass(%d)", int(t))
	}
}

// Params collects the technology parameters of one device class.
type Params struct {
	// Name identifies the class for reports.
	Name string
	// Vth is the threshold voltage in volts.
	Vth float64
	// IoffNom is the off-state (leakage) current at VDDNom, in amperes,
	// for a minimum-width device.
	IoffNom float64
	// IonNom is the on-state drive current at VDDNom, in amperes, for a
	// minimum-width device.
	IonNom float64
	// DIBLDecadesPerVolt is the leakage sensitivity to VDD: each volt of
	// supply reduction cuts leakage current by this many decades
	// (drain-induced barrier lowering plus gate-leakage reduction).
	DIBLDecadesPerVolt float64
	// Alpha is the velocity-saturation exponent of the alpha-power delay
	// law (between 1 and 2; ~1.3 at 45 nm).
	Alpha float64
}

// Tech describes a process technology: its nominal supply and the device
// classes available in it.
type Tech struct {
	// Name identifies the technology node.
	Name string
	// VDDNom is the nominal supply voltage in volts (1.0 V for the
	// paper's 45 nm SOI process).
	VDDNom float64
	// VDDMin is the lowest supply the models are calibrated for.
	VDDMin float64
	// RVT and LVT are the two device classes.
	RVT, LVT Params
}

// Tech45SOI returns the 45 nm SOI technology model used throughout the
// reproduction. Magnitudes are 45 nm-class; see DESIGN.md §5.
func Tech45SOI() Tech {
	return Tech{
		Name:   "45nm-SOI",
		VDDNom: 1.0,
		VDDMin: 0.30,
		RVT: Params{
			Name:               "RVT",
			Vth:                0.38,
			IoffNom:            20e-9, // 20 nA off current per min-width device
			IonNom:             600e-6,
			DIBLDecadesPerVolt: 1.5,
			Alpha:              1.3,
		},
		LVT: Params{
			Name:               "LVT",
			Vth:                0.28,
			IoffNom:            200e-9, // ~10x leakier than RVT
			IonNom:             900e-6,
			DIBLDecadesPerVolt: 1.4,
			Alpha:              1.3,
		},
	}
}

// Class returns the parameters for the given threshold class.
func (t Tech) Class(c ThresholdClass) Params {
	if c == LVT {
		return t.LVT
	}
	return t.RVT
}

// LeakageCurrent returns the off-state current (amperes) of a min-width
// device of class c at supply voltage vdd. The dependence is exponential
// in VDD through the DIBL coefficient:
//
//	Ioff(V) = IoffNom * 10^(DIBL * (V - VDDNom))
//
// The result is clamped below at 1/10^6 of nominal to avoid underflow in
// long products; a power-gated device is modelled as exactly zero by the
// callers, not here.
func (t Tech) LeakageCurrent(c ThresholdClass, vdd float64) float64 {
	p := t.Class(c)
	i := p.IoffNom * math.Pow(10, p.DIBLDecadesPerVolt*(vdd-t.VDDNom))
	floor := p.IoffNom * 1e-6
	if i < floor {
		i = floor
	}
	return i
}

// LeakagePower returns the static power (watts) of a min-width device of
// class c at supply vdd: P = V * Ioff(V).
func (t Tech) LeakagePower(c ThresholdClass, vdd float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return vdd * t.LeakageCurrent(c, vdd)
}

// DelayFactor returns the gate-delay multiplier of class c at supply vdd
// relative to nominal, following the alpha-power law:
//
//	d(V)/d(Vnom) = [V / (V-Vth)^alpha] / [Vnom / (Vnom-Vth)^alpha]
//
// It returns +Inf for vdd <= Vth (the device cannot switch).
func (t Tech) DelayFactor(c ThresholdClass, vdd float64) float64 {
	p := t.Class(c)
	if vdd <= p.Vth {
		return math.Inf(1)
	}
	num := vdd / math.Pow(vdd-p.Vth, p.Alpha)
	den := t.VDDNom / math.Pow(t.VDDNom-p.Vth, p.Alpha)
	return num / den
}

// DynamicEnergyFactor returns the dynamic (switching) energy multiplier at
// supply vdd relative to nominal: E ~ C*V^2, so the factor is (V/Vnom)^2.
func (t Tech) DynamicEnergyFactor(vdd float64) float64 {
	r := vdd / t.VDDNom
	return r * r
}

// Validate checks the technology parameters for physical sanity.
func (t Tech) Validate() error {
	if t.VDDNom <= 0 {
		return fmt.Errorf("device: %s: nominal VDD %v must be positive", t.Name, t.VDDNom)
	}
	if t.VDDMin <= 0 || t.VDDMin >= t.VDDNom {
		return fmt.Errorf("device: %s: VDDMin %v must be in (0, VDDNom)", t.Name, t.VDDMin)
	}
	for _, p := range []Params{t.RVT, t.LVT} {
		if p.Vth <= 0 || p.Vth >= t.VDDNom {
			return fmt.Errorf("device: %s/%s: Vth %v out of range", t.Name, p.Name, p.Vth)
		}
		if p.IoffNom <= 0 || p.IonNom <= 0 {
			return fmt.Errorf("device: %s/%s: currents must be positive", t.Name, p.Name)
		}
		if p.IoffNom >= p.IonNom {
			return fmt.Errorf("device: %s/%s: Ioff %v must be below Ion %v",
				t.Name, p.Name, p.IoffNom, p.IonNom)
		}
		if p.DIBLDecadesPerVolt <= 0 {
			return fmt.Errorf("device: %s/%s: DIBL coefficient must be positive", t.Name, p.Name)
		}
		if p.Alpha < 1 || p.Alpha > 2 {
			return fmt.Errorf("device: %s/%s: alpha %v must be in [1,2]", t.Name, p.Name, p.Alpha)
		}
	}
	return nil
}
