// Package fftcache is the analytical model of FFT-Cache (BanaiyanMofrad
// et al., CASES 2011), the sophisticated FTVS baseline the paper compares
// against in Fig. 3. FFT-Cache remaps the faulty subblocks of faulty
// blocks onto "target" (sacrificial) blocks in the same or an adjacent
// set, so it keeps far more blocks usable at each voltage than the
// proposed mechanism (winning Fig. 3b) and reaches a lower min-VDD at
// fixed yield (winning part of Fig. 3d) — but it pays for it with a
// large per-voltage fault map and remapping logic: 13 % area and 16 %
// power overheads reported for a single low voltage, with one additional
// full fault map needed for every further voltage level because it lacks
// the compressed FM encoding enabled by the fault inclusion property.
//
// The DAC paper compares against FFT-Cache analytically, using
// FFT-Cache's original fault-tolerance model and published overheads; we
// do the same, with the overhead parameters exposed and documented.
package fftcache

import (
	"math"

	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmodel"
	"repro/internal/sram"
)

// Params are the FFT-Cache overhead and capability constants.
type Params struct {
	// AreaOverhead is the reported area overhead of the mechanism at a
	// single low voltage (fault map + remapping logic): 13 %.
	AreaOverhead float64
	// PowerOverhead is the reported power overhead multiplier applied to
	// the array power (remapping muxes, comparators): 16 %.
	PowerOverhead float64
	// MapPowerPerVDD is the static power of one full fault map plus its
	// configuration store, as a fraction of the *nominal* data-array
	// cell power. The map must stay at nominal VDD to be reliable.
	// FFT-Cache's map holds one entry per subblock; at 2 B subblocks
	// that is 1 bit per 16 data bits plus remap pointers ≈ 10 %.
	MapPowerPerVDD float64
	// LogicPowerNomFrac is the static power of the remapping logic
	// (muxes, comparators, configuration registers), also at nominal
	// VDD, as a fraction of the nominal data-array cell power.
	LogicPowerNomFrac float64
	// SubblockBits is the remapping granularity (16 = 2 B, per Table 1).
	SubblockBits int
	// MaxSacrificeFraction caps how many blocks can serve as remap
	// targets before sets stop being "functional" (FFT-Cache's global
	// fault map saturates); drives the min-VDD limit.
	MaxSacrificeFraction float64
}

// DefaultParams returns the published-overhead calibration.
func DefaultParams() Params {
	return Params{
		AreaOverhead:         0.13,
		PowerOverhead:        0.16,
		MapPowerPerVDD:       0.112,
		LogicPowerNomFrac:    0.05,
		SubblockBits:         16,
		MaxSacrificeFraction: 0.25,
	}
}

// Model evaluates FFT-Cache on a given cache geometry and BER model.
type Model struct {
	Geom   faultmodel.Geometry
	BER    sram.BERModel
	Params Params
	// ExtraVDDLevels is the number of low-voltage levels beyond the
	// first; each costs one more full fault map (the paper: "FFT-Cache
	// needs two entire fault maps for each of the lower VDDs" in the
	// three-level comparison).
	ExtraVDDLevels int
}

// New builds an FFT-Cache model with nLowVDDs low-voltage levels
// (nLowVDDs = 2 reproduces the paper's three-level comparison; 1 gives
// the two-level variant where the gap shrinks).
func New(geom faultmodel.Geometry, ber sram.BERModel, p Params, nLowVDDs int) *Model {
	if nLowVDDs < 1 {
		nLowVDDs = 1
	}
	return &Model{Geom: geom, BER: ber, Params: p, ExtraVDDLevels: nLowVDDs - 1}
}

// pSubblockFail returns the probability one subblock has >= 1 faulty bit.
func (m *Model) pSubblockFail(vdd float64) float64 {
	return faultmodel.PFailBits(m.BER.BER(vdd), m.Params.SubblockBits)
}

// pBlockFaulty returns the probability a block has at least one faulty
// subblock (and therefore needs remapping).
func (m *Model) pBlockFaulty(vdd float64) float64 {
	nsb := m.Geom.BlockBits / m.Params.SubblockBits
	q := m.pSubblockFail(vdd)
	return -math.Expm1(float64(nsb) * math.Log1p(-q))
}

// SacrificedFraction returns the expected fraction of blocks lost as
// remap targets at the given voltage. In FFT-Cache each faulty block
// borrows from a target block; targets are shared where fault patterns
// do not collide, so on average fewer than one target per faulty block
// is consumed when faults are sparse, degrading toward one-per-faulty as
// density rises.
func (m *Model) SacrificedFraction(vdd float64) float64 {
	q := m.pBlockFaulty(vdd)
	// Sharing efficiency: with sparse faults two faulty blocks rarely
	// collide in the same subblock position, so one target serves ~2
	// faulty blocks; sharing decays linearly as density grows.
	share := 2 - q // in [1,2]
	s := q / share
	if s > m.Params.MaxSacrificeFraction {
		s = m.Params.MaxSacrificeFraction
	}
	return s
}

// EffectiveCapacity returns the expected usable-block fraction at the
// given voltage: everything except the sacrificed targets (faulty blocks
// themselves remain usable thanks to remapping) — until the mechanism
// saturates, past which capacity collapses.
func (m *Model) EffectiveCapacity(vdd float64) float64 {
	q := m.pBlockFaulty(vdd)
	s := q / (2 - q)
	if s > m.Params.MaxSacrificeFraction {
		// Saturated: unrepaired faulty blocks are lost outright too.
		excess := s - m.Params.MaxSacrificeFraction
		return math.Max(0, 1-m.Params.MaxSacrificeFraction-2*excess)
	}
	return 1 - s
}

// Yield returns the probability the whole cache is functional at vdd.
// FFT-Cache keeps a faulty block usable by remapping its faulty
// subblocks onto a target block in the same or an adjacent set, so a
// set only becomes dysfunctional when every way is faulty *and* the
// adjacent-set target pool is exhausted too; we model that as one extra
// effective way (pattern collisions are second-order at the sparse
// fault densities of interest):
//
//	P(set fail) ~= q^(ways+1),  yield = (1 - q^(ways+1))^sets
//
// This places FFT-Cache's min-VDD below the proposed mechanism's
// (which fails at q^ways), as in the paper's Fig. 3d.
func (m *Model) Yield(vdd float64) float64 {
	q := m.pBlockFaulty(vdd)
	if q <= 0 {
		return 1
	}
	if q >= 1 {
		return 0
	}
	pfail := math.Pow(q, float64(m.Geom.Ways+1))
	if pfail >= 1 {
		return 0
	}
	return math.Exp(float64(m.Geom.Sets) * math.Log1p(-pfail))
}

// StaticPower returns FFT-Cache's total static power at the given data
// VDD using the same cacti component model as the proposed scheme:
// the (non-sacrificed... in FFT-Cache *all* blocks stay powered, since
// targets hold remapped data) data array at vdd with the 16 % mechanism
// overhead, the always-nominal fault maps (one per low VDD level beyond
// none), and the shared tag/periphery floor.
func (m *Model) StaticPower(cm *cacti.Model, vdd float64) float64 {
	t := cm.Tech
	dataCells := float64(m.Geom.Blocks() * m.Geom.BlockBits)
	cellW := dataCells * cm.Params.CellLeakEquiv * t.LeakagePower(device.RVT, vdd)
	// Mechanism power overhead applies to the array it manages.
	cellW *= 1 + m.Params.PowerOverhead
	// Fault maps at nominal VDD: one for the first low voltage plus one
	// per extra level.
	nMaps := 1 + m.ExtraVDDLevels
	nomCellW := dataCells * cm.Params.CellLeakEquiv * t.LeakagePower(device.RVT, t.VDDNom)
	mapW := (float64(nMaps)*m.Params.MapPowerPerVDD + m.Params.LogicPowerNomFrac) * nomCellW
	// Same periphery + tag floor as the proposed scheme's model.
	base := cm.StaticPower(t.VDDNom, 1)
	floor := base.DataPeripheryW + base.TagW
	return cellW + mapW + floor
}

// MinVDDForYield returns the lowest grid voltage meeting the yield
// target, or ok=false.
func (m *Model) MinVDDForYield(target, lo, hi float64) (float64, bool) {
	for _, v := range faultmodel.Grid(lo, hi) {
		if m.Yield(v) >= target {
			return v, true
		}
	}
	return 0, false
}

// PowerCapacityCurve returns (capacity, power) pairs across the voltage
// grid for Fig. 3a, lowest voltage first.
func (m *Model) PowerCapacityCurve(cm *cacti.Model, lo, hi float64) (caps, watts []float64) {
	for _, v := range faultmodel.Grid(lo, hi) {
		caps = append(caps, m.EffectiveCapacity(v))
		watts = append(watts, m.StaticPower(cm, v))
	}
	return caps, watts
}
