package fftcache

import (
	"testing"

	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmodel"
	"repro/internal/sram"
)

func setup(t *testing.T, nLowVDDs int) (*Model, *cacti.Model) {
	t.Helper()
	geom := faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
	ber := sram.NewWangCalhounBER()
	org := cacti.Org{Name: "L1-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return New(geom, ber, DefaultParams(), nLowVDDs), cm
}

func TestEffectiveCapacityMonotone(t *testing.T) {
	m, _ := setup(t, 2)
	prev := 0.0
	for _, v := range faultmodel.Grid(0.30, 1.00) {
		c := m.EffectiveCapacity(v)
		if c < prev-1e-12 {
			t.Fatalf("capacity decreased with voltage at %v", v)
		}
		if c < 0 || c > 1 {
			t.Fatalf("capacity %v out of range", c)
		}
		prev = c
	}
}

func TestFFTKeepsMoreBlocksThanProposed(t *testing.T) {
	// Fig. 3b: FFT-Cache's usable-block curve dominates the proposed
	// mechanism's at every voltage.
	m, _ := setup(t, 2)
	fm, err := faultmodel.New(m.Geom, m.BER)
	if err != nil {
		t.Fatal(err)
	}
	// Below ~0.42 V FFT-Cache's remap structures saturate and its
	// capacity collapses; the paper's Fig. 3b covers the operating range
	// above that cliff.
	for _, v := range faultmodel.Grid(0.42, 1.00) {
		if m.EffectiveCapacity(v) < fm.ExpectedCapacity(v)-1e-9 {
			t.Errorf("FFT capacity %v below proposed %v at %v V",
				m.EffectiveCapacity(v), fm.ExpectedCapacity(v), v)
		}
	}
}

func TestFFTMinVDDBelowProposed(t *testing.T) {
	// Fig. 3d: FFT-Cache reaches a lower min-VDD at fixed yield.
	m, _ := setup(t, 2)
	fm, _ := faultmodel.New(m.Geom, m.BER)
	vFFT, ok1 := m.MinVDDForYield(0.99, 0.30, 1.00)
	vProp, ok2 := fm.MinVDDForYield(0.99, 0.30, 1.00)
	if !ok1 || !ok2 {
		t.Fatal("min VDD not found")
	}
	if vFFT >= vProp {
		t.Errorf("FFT min VDD %v not below proposed %v", vFFT, vProp)
	}
}

func TestYieldMonotone(t *testing.T) {
	m, _ := setup(t, 2)
	prev := 0.0
	for _, v := range faultmodel.Grid(0.30, 1.00) {
		y := m.Yield(v)
		if y < prev-1e-9 {
			t.Fatalf("yield decreased at %v V", v)
		}
		if y < 0 || y > 1 {
			t.Fatalf("yield %v out of range", y)
		}
		prev = y
	}
}

func TestStaticPowerIncludesOverheads(t *testing.T) {
	m2, cm := setup(t, 2)
	m1, _ := setup(t, 1)
	// More VDD levels = more fault maps = more power at every voltage.
	for _, v := range []float64{0.5, 0.7, 1.0} {
		if m2.StaticPower(cm, v) <= m1.StaticPower(cm, v) {
			t.Errorf("3-level FFT not costlier than 2-level at %v V", v)
		}
	}
}

func TestProposedBeatsFFTAtAllCapacities(t *testing.T) {
	// The paper's headline Fig. 3a claim: lower total static power at
	// every effective capacity. Verify pointwise: for each FFT operating
	// point, the proposed mechanism achieves the same capacity at some
	// voltage with less power.
	fft, cm := setup(t, 2)
	fm, _ := faultmodel.New(fft.Geom, fft.BER)
	cmPCS := cm.WithPCS(2)
	propPower := func(targetCap float64) (float64, bool) {
		best := -1.0
		for _, v := range faultmodel.Grid(0.30, 1.00) {
			c := fm.ExpectedCapacity(v)
			if c >= targetCap {
				p := cmPCS.StaticPower(v, c).TotalW
				if best < 0 || p < best {
					best = p
				}
			}
		}
		return best, best >= 0
	}
	for _, v := range faultmodel.Grid(0.45, 1.00) {
		capF := fft.EffectiveCapacity(v)
		pF := fft.StaticPower(cm, v)
		pP, ok := propPower(capF)
		if !ok {
			continue
		}
		if pP >= pF {
			t.Errorf("at FFT capacity %.4f (V=%.2f): proposed %v W >= FFT %v W",
				capF, v, pP, pF)
		}
	}
}

func TestSacrificedFractionBounded(t *testing.T) {
	m, _ := setup(t, 2)
	for _, v := range faultmodel.Grid(0.30, 1.00) {
		s := m.SacrificedFraction(v)
		if s < 0 || s > m.Params.MaxSacrificeFraction+1e-12 {
			t.Fatalf("sacrifice fraction %v out of bounds at %v V", s, v)
		}
	}
}

func TestNewClampsLowVDDs(t *testing.T) {
	m := New(faultmodel.Geometry{Sets: 4, Ways: 4, BlockBits: 512},
		sram.NewWangCalhounBER(), DefaultParams(), 0)
	if m.ExtraVDDLevels != 0 {
		t.Errorf("extra levels %d", m.ExtraVDDLevels)
	}
}

func TestPowerCapacityCurveShape(t *testing.T) {
	m, cm := setup(t, 2)
	caps, watts := m.PowerCapacityCurve(cm, 0.30, 1.00)
	if len(caps) != len(watts) || len(caps) != 71 {
		t.Fatalf("curve lengths %d/%d", len(caps), len(watts))
	}
	for i, w := range watts {
		if w <= 0 {
			t.Fatalf("non-positive power at %d", i)
		}
	}
}
