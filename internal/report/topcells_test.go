package report

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func topcellsEvents() []obs.JobEvent {
	res := func(wall, cpu float64, bytes uint64, hit bool, trans int) *obs.JobResources {
		return &obs.JobResources{
			WallMS: wall, CPUMS: cpu, Allocs: bytes / 64, AllocBytes: bytes,
			CacheHit: hit, CacheMiss: !hit, Transitions: trans, Writebacks: uint64(trans) * 3,
		}
	}
	return []obs.JobEvent{
		{Type: obs.EventCampaignStarted, Index: -1, Campaign: "c"},
		{Type: obs.EventJobStarted, Index: 0, Kind: "cpusim"},
		{Type: obs.EventJobDone, Index: 1, Kind: "cpusim", Name: "fast", Resources: res(5, 4, 1<<20, true, 2)},
		{Type: obs.EventJobDone, Index: 0, Kind: "cpusim", Name: "slow", Resources: res(50, 45, 8<<20, false, 7)},
		{Type: obs.EventJobFailed, Index: 2, Kind: "analytical", Error: "boom", Resources: res(1, 1, 1<<10, false, 0)},
		{Type: obs.EventCampaignFinished, Index: -1, State: "done"},
	}
}

func TestCellsFromEventsAndSort(t *testing.T) {
	cells := CellsFromEvents(topcellsEvents())
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	// Index order from assembly.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	if cells[2].Status != "failed" {
		t.Errorf("cell 2 status %q", cells[2].Status)
	}
	if err := SortCells(cells, "cpu"); err != nil {
		t.Fatal(err)
	}
	if cells[0].Name != "slow" || cells[1].Name != "fast" {
		t.Fatalf("cpu sort order: %q, %q", cells[0].Name, cells[1].Name)
	}
	if err := SortCells(cells, "allocs"); err != nil {
		t.Fatal(err)
	}
	if cells[0].Name != "slow" {
		t.Fatalf("allocs sort put %q first", cells[0].Name)
	}
	if err := SortCells(cells, "nope"); err == nil {
		t.Fatal("unknown sort key accepted")
	}
}

func TestAttachEnergyAndTables(t *testing.T) {
	cells := CellsFromEvents(topcellsEvents())
	results := strings.Join([]string{
		`{"index":0,"status":"done","output":{"total_cache_energy_j":0.004}}`,
		`{"index":1,"status":"done","output":{"total_cache_energy_j":0.001}}`,
		`{"index":2,"status":"failed"}`,
	}, "\n")
	if err := AttachEnergy(cells, strings.NewReader(results)); err != nil {
		t.Fatal(err)
	}
	if cells[0].EnergyJ != 0.004 || cells[1].EnergyJ != 0.001 || cells[2].EnergyJ != 0 {
		t.Fatalf("energies %v %v %v", cells[0].EnergyJ, cells[1].EnergyJ, cells[2].EnergyJ)
	}
	if err := SortCells(cells, "energy"); err != nil {
		t.Fatal(err)
	}
	if cells[0].Name != "slow" {
		t.Fatalf("energy sort put %q first", cells[0].Name)
	}

	var out strings.Builder
	if err := TopCellsTable(cells, 2).Render(&out); err != nil {
		t.Fatal(err)
	}
	table := out.String()
	for _, want := range []string{"slow", "fast", "hit", "miss"} {
		if !strings.Contains(table, want) {
			t.Errorf("top table missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "analytical") {
		t.Errorf("top-2 table includes third cell:\n%s", table)
	}

	out.Reset()
	if err := KindSummaryTable(cells).Render(&out); err != nil {
		t.Fatal(err)
	}
	summary := out.String()
	if !strings.Contains(summary, "cpusim") || !strings.Contains(summary, "analytical") {
		t.Errorf("kind summary missing kinds:\n%s", summary)
	}
	// cpusim has the larger CPU total, so it leads.
	if strings.Index(summary, "cpusim") > strings.Index(summary, "analytical") {
		t.Errorf("kind summary not CPU-ordered:\n%s", summary)
	}
}

// TestCellsWithoutResources covers timelines from runs that predate
// attribution: DurationMS still populates wall time.
func TestCellsWithoutResources(t *testing.T) {
	cells := CellsFromEvents([]obs.JobEvent{
		{Type: obs.EventJobDone, Index: 0, Kind: "old", DurationMS: 12.5},
	})
	if len(cells) != 1 || cells[0].WallMS != 12.5 || cells[0].CPUMS != 0 {
		t.Fatalf("cells %+v", cells)
	}
}
