package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// CellUsage is one job's resource attribution, assembled from the
// campaign timeline (and optionally results.jsonl for energy): the
// row type behind `pcs report -top` and `pcs top`.
type CellUsage struct {
	Index  int
	Kind   string
	Name   string
	Status string // done / failed / cancelled
	WallMS float64
	CPUMS  float64
	Allocs uint64
	// AllocBytes is the job's heap allocation volume.
	AllocBytes uint64
	// CacheHit/CacheMiss attribute the resultstore probe.
	CacheHit  bool
	CacheMiss bool
	// Transitions/Writebacks are the simulator-side counts.
	Transitions int
	Writebacks  uint64
	// EnergyJ is the cell's simulated total cache energy, parsed from
	// results.jsonl when the output reports total_cache_energy_j.
	EnergyJ float64
}

// eventStatus maps terminal timeline event types to a status word.
var eventStatus = map[obs.JobEventType]string{
	obs.EventJobDone:      "done",
	obs.EventJobFailed:    "failed",
	obs.EventJobCancelled: "cancelled",
}

// CellsFromEvents assembles per-cell usage from a campaign timeline,
// one row per terminal job event, in job-index order. Events without a
// resources block (older runs) still contribute wall time from
// DurationMS.
func CellsFromEvents(events []obs.JobEvent) []CellUsage {
	var cells []CellUsage
	for _, ev := range events {
		status, ok := eventStatus[ev.Type]
		if !ok {
			continue
		}
		c := CellUsage{
			Index:  ev.Index,
			Kind:   ev.Kind,
			Name:   ev.Name,
			Status: status,
			WallMS: ev.DurationMS,
		}
		if r := ev.Resources; r != nil {
			c.WallMS = r.WallMS
			c.CPUMS = r.CPUMS
			c.Allocs = r.Allocs
			c.AllocBytes = r.AllocBytes
			c.CacheHit = r.CacheHit
			c.CacheMiss = r.CacheMiss
			c.Transitions = r.Transitions
			c.Writebacks = r.Writebacks
		}
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })
	return cells
}

// AttachEnergy joins each cell with its result record's
// output.total_cache_energy_j, read generically from a results.jsonl
// stream so it works for every simulator kind that reports the field.
// Records without it (analytical kinds) leave EnergyJ zero.
func AttachEnergy(cells []CellUsage, r io.Reader) error {
	byIndex := make(map[int]*CellUsage, len(cells))
	for i := range cells {
		byIndex[cells[i].Index] = &cells[i]
	}
	dec := json.NewDecoder(r)
	for n := 0; ; n++ {
		var rec struct {
			Index  int `json:"index"`
			Output struct {
				TotalCacheEnergyJ float64 `json:"total_cache_energy_j"`
			} `json:"output"`
		}
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("report: results record %d: %w", n, err)
		}
		if c, ok := byIndex[rec.Index]; ok {
			c.EnergyJ = rec.Output.TotalCacheEnergyJ
		}
	}
}

// AttachEnergyFile is AttachEnergy over a results.jsonl path; a missing
// file is not an error (the campaign may predate artifacts or still be
// running).
func AttachEnergyFile(cells []CellUsage, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	return AttachEnergy(cells, f)
}

// SortCells orders cells by the named key, descending: "cpu" (measured
// CPU time, wall time breaking ties — off Linux CPU time is zero and
// the order degrades to wall), "wall", "allocs", or "energy".
func SortCells(cells []CellUsage, key string) error {
	var less func(a, b CellUsage) bool
	switch key {
	case "cpu":
		less = func(a, b CellUsage) bool {
			if a.CPUMS != b.CPUMS {
				return a.CPUMS > b.CPUMS
			}
			return a.WallMS > b.WallMS
		}
	case "wall":
		less = func(a, b CellUsage) bool { return a.WallMS > b.WallMS }
	case "allocs":
		less = func(a, b CellUsage) bool { return a.AllocBytes > b.AllocBytes }
	case "energy":
		less = func(a, b CellUsage) bool { return a.EnergyJ > b.EnergyJ }
	default:
		return fmt.Errorf("report: unknown sort key %q (cpu, wall, allocs, energy)", key)
	}
	sort.SliceStable(cells, func(i, j int) bool { return less(cells[i], cells[j]) })
	return nil
}

// cellLabel names a cell for display: the spec name when set, else
// kind#index.
func cellLabel(c CellUsage) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("%s#%d", c.Kind, c.Index)
}

// cacheMark renders the cell's resultstore provenance.
func cacheMark(c CellUsage) string {
	switch {
	case c.CacheHit:
		return "hit"
	case c.CacheMiss:
		return "miss"
	default:
		return "-"
	}
}

// TopCellsTable renders the first n cells (all if n <= 0) of an
// already-sorted usage list.
func TopCellsTable(cells []CellUsage, n int) *Table {
	if n > 0 && n < len(cells) {
		cells = cells[:n]
	}
	t := NewTable("Top cells by resource usage",
		"cell", "kind", "status", "wall ms", "cpu ms", "alloc MB", "cache", "transitions", "writebacks", "energy mJ")
	for _, c := range cells {
		t.AddRow(cellLabel(c), c.Kind, c.Status, c.WallMS, c.CPUMS,
			float64(c.AllocBytes)/(1<<20), cacheMark(c), c.Transitions, c.Writebacks, c.EnergyJ*1e3)
	}
	return t
}

// KindSummaryTable aggregates usage per kind: where the campaign's
// compute went, at one row per job kind.
func KindSummaryTable(cells []CellUsage) *Table {
	type agg struct {
		kind         string
		jobs         int
		wall, cpu    float64
		allocBytes   uint64
		hits, misses int
		energyJ      float64
	}
	byKind := make(map[string]*agg)
	var order []string
	for _, c := range cells {
		a := byKind[c.Kind]
		if a == nil {
			a = &agg{kind: c.Kind}
			byKind[c.Kind] = a
			order = append(order, c.Kind)
		}
		a.jobs++
		a.wall += c.WallMS
		a.cpu += c.CPUMS
		a.allocBytes += c.AllocBytes
		if c.CacheHit {
			a.hits++
		}
		if c.CacheMiss {
			a.misses++
		}
		a.energyJ += c.EnergyJ
	}
	sort.Slice(order, func(i, j int) bool {
		return byKind[order[i]].cpu > byKind[order[j]].cpu
	})
	t := NewTable("Per-kind totals",
		"kind", "jobs", "wall ms", "cpu ms", "alloc MB", "hits", "misses", "energy mJ")
	for _, k := range order {
		a := byKind[k]
		t.AddRow(a.kind, a.jobs, a.wall, a.cpu, float64(a.allocBytes)/(1<<20),
			a.hits, a.misses, a.energyJ*1e3)
	}
	return t
}
