package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "A", "LongHeader")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-cell", 42)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== Title ==", "A", "LongHeader", "longer-cell", "1.5", "42", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "H1", "H2")
	tb.AddRow("a", "b")
	tb.AddRow("ccc", "d")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Second column must start at the same offset in every row.
	idx := strings.Index(lines[0], "H2")
	for _, ln := range lines[2:] {
		cell := strings.TrimLeft(ln[idx:], " ")
		if !strings.HasPrefix(cell, "b") && !strings.HasPrefix(cell, "d") {
			t.Errorf("misaligned row: %q", ln)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1234567, "1.235e+06"},
		{0.0001234, "1.234e-04"},
		{123.456, "123.5"},
		{1.2345, "1.234"},
	}
	for _, c := range cases {
		if got := formatFloat(c.v); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `with,comma`)
	tb.AddRow(`with"quote`, "x")
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if strings.Contains(out, "ignored") {
		t.Error("CSV contains the title")
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("CSV line count %d", lines)
	}
}

func TestMixedCellTypes(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRow(float32(2.5))
	tb.AddRow(7)
	tb.AddRow(true)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"2.5", "7", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
