// Package report renders experiment output as aligned ASCII tables,
// CSV, or JSON, so every cmd harness and example prints figures the
// same way.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat picks a compact human-readable float format.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderJSON writes the table as a machine-readable JSON document:
//
//	{"title": ..., "columns": [...], "rows": [[...], ...]}
//
// Rows keep column order; all cells are the already-formatted strings
// the text renderer would print, so the JSON and text outputs agree.
func (t *Table) RenderJSON(w io.Writer) error {
	doc := struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: t.Headers, Rows: t.Rows}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RenderCSV writes the table as CSV (quoting cells containing commas).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
