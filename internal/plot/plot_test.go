package plot

import (
	"strings"
	"testing"
)

func TestChartRenders(t *testing.T) {
	c := Chart{Title: "t<est>", XLabel: "x", YLabel: "y"}
	c.Add("a", []float64{0, 1, 2}, []float64{1, 4, 9})
	c.Add("b", []float64{0, 1, 2}, []float64{2, 3, 4})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "t&lt;est&gt;", ">a<", ">b<"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("series count wrong")
	}
}

func TestChartLogY(t *testing.T) {
	c := Chart{Title: "log", LogY: true}
	c.Add("s", []float64{0.3, 0.6, 1.0}, []float64{1e-2, 1e-5, 1e-9})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1e-") {
		t.Error("log tick labels missing")
	}
}

func TestChartSkipsNonPositiveOnLogAxis(t *testing.T) {
	c := Chart{LogY: true}
	c.Add("s", []float64{0, 1, 2}, []float64{0, 1e-3, 1e-2})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestChartErrors(t *testing.T) {
	var b strings.Builder
	empty := Chart{}
	if err := empty.Render(&b); err == nil {
		t.Error("empty chart rendered")
	}
	bad := Chart{}
	bad.Series = append(bad.Series, Series{Name: "m", X: []float64{1, 2}, Y: []float64{1}})
	if err := bad.Render(&b); err == nil {
		t.Error("mismatched series rendered")
	}
	allZeroLog := Chart{LogY: true}
	allZeroLog.Add("z", []float64{1}, []float64{0})
	if err := allZeroLog.Render(&b); err == nil {
		t.Error("unplottable log chart rendered")
	}
}

func TestChartDegenerateRangesHandled(t *testing.T) {
	c := Chart{}
	c.Add("flat", []float64{1, 1, 1}, []float64{5, 5, 5})
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestBarsRender(t *testing.T) {
	bc := Bars{Title: "bars", YLabel: "v",
		Labels: []string{"one", "two"},
		Groups: []Series{{Name: "g1", Y: []float64{1, 2}}, {Name: "g2", Y: []float64{3, 0.5}}}}
	var b strings.Builder
	if err := bc.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 4 bars + 2 legend swatches + background rect + frame.
	if strings.Count(out, "<rect") < 8 {
		t.Errorf("bar count: %d rects", strings.Count(out, "<rect"))
	}
}

func TestBarsErrors(t *testing.T) {
	var b strings.Builder
	if err := (&Bars{}).Render(&b); err == nil {
		t.Error("empty bar chart rendered")
	}
	mismatch := Bars{Labels: []string{"a"}, Groups: []Series{{Name: "g", Y: []float64{1, 2}}}}
	if err := mismatch.Render(&b); err == nil {
		t.Error("mismatched bar chart rendered")
	}
	negative := Bars{Labels: []string{"a"}, Groups: []Series{{Name: "g", Y: []float64{-1}}}}
	if err := negative.Render(&b); err == nil {
		t.Error("negative bar chart rendered")
	}
}

func TestFmtTick(t *testing.T) {
	if fmtTick(1234) != "1234" || fmtTick(12.34) != "12.3" || fmtTick(0.123) != "0.12" {
		t.Errorf("tick formats: %q %q %q", fmtTick(1234.0), fmtTick(12.34), fmtTick(0.123))
	}
}
