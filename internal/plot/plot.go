// Package plot renders simple line/scatter charts as standalone SVG
// documents using only the standard library, so the reproduction can
// emit graphical versions of the paper's figures (cmd/pcs-figures).
// It supports linear and log10 y-axes, multiple named series, axis
// ticks, a legend, and nothing else — exactly enough for Figs. 2–4.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY selects a log10 y-axis (BER, yield tails).
	LogY   bool
	Series []Series

	// W and H are the canvas size in pixels (defaults 640x420).
	W, H int
}

// palette holds distinguishable series colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// bounds returns the data extents, applying the log transform when set.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	n := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue // unplottable on a log axis
				}
				y = math.Log10(y)
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: no plottable points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

// Render writes the chart as a complete SVG document.
func (c *Chart) Render(w io.Writer) error {
	if c.W == 0 {
		c.W = 640
	}
	if c.H == 0 {
		c.H = 420
	}
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return err
	}
	plotW := float64(c.W - marginL - marginR)
	plotH := float64(c.H - marginT - marginB)
	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return float64(marginT) + (1-(y-ymin)/(ymax-ymin))*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", c.W, c.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginL, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%s</text>`+"\n",
		float64(marginL)+plotW/2, c.H-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(c.YLabel))

	// Ticks: 6 x ticks, 6 y ticks (decade ticks for log axes).
	for i := 0; i <= 5; i++ {
		x := xmin + (xmax-xmin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			px(x), float64(marginT)+plotH, px(x), float64(marginT)+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(x), float64(marginT)+plotH+18, fmtTick(x))
	}
	for i := 0; i <= 5; i++ {
		yv := ymin + (ymax-ymin)*float64(i)/5
		ypix := float64(marginT) + (1-float64(i)/5)*plotH
		label := fmtTick(yv)
		if c.LogY {
			label = fmt.Sprintf("1e%.0f", yv)
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
			float64(marginL)-5, ypix, marginL, ypix)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-8, ypix+4, label)
		// Light gridline.
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, ypix, float64(marginL)+plotW, ypix)
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,3"`
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
			strings.Join(pts, " "), color, dash)
		// Legend entry.
		ly := marginT + 14 + si*16
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			float64(marginL)+plotW-150, ly, float64(marginL)+plotW-128, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%.0f" y="%d">%s</text>`+"\n",
			float64(marginL)+plotW-122, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// fmtTick formats an axis tick compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escape makes a string safe for SVG text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Bars renders a simple grouped bar chart (used for Fig. 4 panels).
type Bars struct {
	Title  string
	YLabel string
	// Labels are the category names along x.
	Labels []string
	// Groups are named value sets, one value per label.
	Groups []Series // X ignored; Y holds one value per label
	W, H   int
}

// Render writes the bar chart as SVG.
func (c *Bars) Render(w io.Writer) error {
	if c.W == 0 {
		c.W = 760
	}
	if c.H == 0 {
		c.H = 420
	}
	if len(c.Labels) == 0 || len(c.Groups) == 0 {
		return fmt.Errorf("plot: empty bar chart")
	}
	ymax := math.Inf(-1)
	for _, g := range c.Groups {
		if len(g.Y) != len(c.Labels) {
			return fmt.Errorf("plot: group %q has %d values for %d labels",
				g.Name, len(g.Y), len(c.Labels))
		}
		for _, v := range g.Y {
			if v < 0 {
				return fmt.Errorf("plot: bar charts need non-negative values")
			}
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	plotW := float64(c.W - marginL - marginR)
	plotH := float64(c.H - marginT - marginB)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", c.W, c.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginL, escape(c.Title))
	fmt.Fprintf(&b, `<text x="16" y="%.0f" text-anchor="middle" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(c.YLabel))

	slot := plotW / float64(len(c.Labels))
	barW := slot * 0.8 / float64(len(c.Groups))
	for li, label := range c.Labels {
		x0 := float64(marginL) + slot*float64(li) + slot*0.1
		for gi, g := range c.Groups {
			h := g.Y[li] / ymax * plotH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x0+barW*float64(gi), float64(marginT)+plotH-h, barW*0.95, h,
				palette[gi%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" text-anchor="end" transform="rotate(-45 %.1f %.0f)">%s</text>`+"\n",
			x0+slot*0.4, float64(marginT)+plotH+14, x0+slot*0.4, float64(marginT)+plotH+14, escape(label))
	}
	// y ticks.
	for i := 0; i <= 5; i++ {
		v := ymax * float64(i) / 5
		ypix := float64(marginT) + (1-float64(i)/5)*plotH
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(marginL)-8, ypix+4, fmtTick(v))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, ypix, float64(marginL)+plotW, ypix)
	}
	// Legend.
	for gi, g := range c.Groups {
		ly := marginT + 14 + gi*16
		fmt.Fprintf(&b, `<rect x="%.0f" y="%d" width="12" height="10" fill="%s"/>`+"\n",
			float64(marginL)+plotW-130, ly-8, palette[gi%len(palette)])
		fmt.Fprintf(&b, `<text x="%.0f" y="%d">%s</text>`+"\n",
			float64(marginL)+plotW-114, ly+1, escape(g.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
