package obs

import (
	"io"
	"testing"
)

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer() // registry construction is not the measured hot path
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterVecIncHoisted measures the intended labelled-counter
// hot path: resolve the series handle with With once, then Inc on it.
func BenchmarkCounterVecIncHoisted(b *testing.B) {
	reg := NewRegistry()
	c := reg.CounterVec("bench_kind_total", "bench", "kind").With("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.HistogramVec("bench_seconds", "bench", "kind", DefDurationBuckets()).With("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 100)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	reg.Counter("a_total", "a").Inc()
	reg.Gauge("b_now", "b").Set(3.5)
	h := reg.HistogramVec("c_seconds", "c", "kind", DefDurationBuckets())
	for _, k := range []string{"x", "y", "z"} {
		h.With(k).Observe(0.02)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
