package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile checks the interpolated bucket-quantile
// estimate on a known distribution.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("q_test_seconds", "t", "kind", []float64{1, 2, 4, 8})
	h := v.With("a")

	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram p50 = %v, want NaN", got)
	}

	// 10 observations uniformly in (0,1]: every quantile interpolates
	// inside the first bucket [0,1].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got, want := h.Quantile(0.5), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1.0), 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p100 = %v, want %v", got, want)
	}

	// Add 10 observations in (2,4]: 20 total, half <= 1, half in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	// p75: rank 15, 10 below, 5 of 10 into the (2,4] bucket → 3.0.
	if got, want := h.Quantile(0.75), 3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("p75 = %v, want %v", got, want)
	}

	// Overflow: a value beyond the last bound pins high quantiles to
	// the largest finite bound.
	h.Observe(100)
	if got, want := h.Quantile(0.999), 8.0; got != want {
		t.Errorf("p99.9 with overflow = %v, want %v", got, want)
	}
}

// TestHistogramVecQuantiles checks the per-series map shape.
func TestHistogramVecQuantiles(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("qv_test_seconds", "t", "kind", []float64{1, 10})
	v.With("fast").Observe(0.5)
	v.With("slow").Observe(5)
	q := v.Quantiles(0.5)
	if len(q) != 2 {
		t.Fatalf("got %d series, want 2", len(q))
	}
	if q["fast"] >= q["slow"] {
		t.Errorf("p50 fast=%v slow=%v", q["fast"], q["slow"])
	}
}

// TestGaugeVecFunc checks scrape-time labelled gauges render sorted,
// valid exposition lines.
func TestGaugeVecFunc(t *testing.T) {
	r := NewRegistry()
	vals := map[string]float64{"b": 2, "a": 1.5}
	r.GaugeVecFunc("gvf_test", "derived gauge", "kind", func() map[string]float64 {
		return vals
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia := strings.Index(out, `gvf_test{kind="a"} 1.5`)
	ib := strings.Index(out, `gvf_test{kind="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("exposition missing or unsorted series:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	// NaN values (empty histograms behind a quantile view) must render
	// as valid exposition too.
	vals["a"] = math.NaN()
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `gvf_test{kind="a"} NaN`) {
		t.Fatalf("NaN gauge not rendered:\n%s", buf.String())
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("NaN exposition invalid: %v", err)
	}
}

// TestReadJobEventsRoundTrip checks the timeline reader, including the
// resource-attribution block.
func TestReadJobEventsRoundTrip(t *testing.T) {
	in := `{"type":"campaign_started","campaign":"c","index":-1,"elapsed_ms":0}
{"type":"job_done","index":0,"kind":"k","elapsed_ms":5,"duration_ms":4.5,"resources":{"wall_ms":4.5,"cpu_ms":4.1,"allocs":12,"alloc_bytes":4096,"cache_miss":true,"transitions":3,"writebacks":7}}
{"type":"campaign_finished","campaign":"c","index":-1,"elapsed_ms":6,"state":"done"}
`
	events, err := ReadJobEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	res := events[1].Resources
	if res == nil || res.CPUMS != 4.1 || res.Allocs != 12 || !res.CacheMiss || res.Writebacks != 7 {
		t.Fatalf("resources %+v", res)
	}
	if events[0].Resources != nil {
		t.Fatal("campaign_started should carry no resources")
	}
}
