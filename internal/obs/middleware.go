package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// reqSeq numbers requests within the process; combined with the process
// start time it yields ids unique enough to grep across restarts.
var reqSeq atomic.Uint64

var processEpoch = time.Now().UnixNano()

// RequestIDHeader is the response header carrying the request id.
const RequestIDHeader = "X-Request-Id"

// statusRecorder captures the response status and size while preserving
// the streaming interfaces the NDJSON endpoints rely on.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush passes streaming flushes through to the underlying writer, so
// wrapped NDJSON handlers keep their incremental delivery.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// RequestLogger wraps next with structured access logging: every
// request gets an id (also returned in X-Request-Id) and one slog line
// with method, path, status, bytes and duration. A nil logger returns
// next unchanged.
func RequestLogger(log *slog.Logger, next http.Handler) http.Handler {
	if log == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%x-%06d", uint64(processEpoch)&0xFFFFFF, reqSeq.Add(1))
		w.Header().Set(RequestIDHeader, id)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
	})
}
