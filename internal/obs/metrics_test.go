package obs

import (
	"strings"
	"testing"
)

func TestRegistryRendersCounterAndGaugeTypes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs ever.")
	g := r.Gauge("queue_depth", "Jobs waiting.")
	c.Add(41)
	c.Inc()
	g.Set(2.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 42",
		"# TYPE queue_depth gauge",
		"queue_depth 2.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("live_value", "Computed at scrape.", func() float64 { return v })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live_value 7\n") {
		t.Fatalf("gauge func not rendered:\n%s", b.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x_total", "second")
}

func TestHistogramVecRendering(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("job_duration_seconds", "Job wall time.", "kind",
		[]float64{0.1, 1, 10})
	h := hv.With("cpusim")
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	hv.With("minvdd").Observe(0.01)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE job_duration_seconds histogram",
		`job_duration_seconds_bucket{kind="cpusim",le="0.1"} 1`,
		`job_duration_seconds_bucket{kind="cpusim",le="1"} 3`,
		`job_duration_seconds_bucket{kind="cpusim",le="10"} 4`,
		`job_duration_seconds_bucket{kind="cpusim",le="+Inf"} 5`,
		`job_duration_seconds_sum{kind="cpusim"} 56.05`,
		`job_duration_seconds_count{kind="cpusim"} 5`,
		`job_duration_seconds_bucket{kind="minvdd",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Fatalf("count/sum accessors: %d / %g", h.Count(), h.Sum())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("job_errors_total", "Errors by kind.", "kind")
	cv.With("cpusim").Inc()
	cv.With("cpusim").Inc()
	cv.With("multicore").Inc()
	if cv.With("cpusim").Value() != 2 {
		t.Fatalf("cpusim counter = %d", cv.With("cpusim").Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `job_errors_total{kind="cpusim"} 2`) ||
		!strings.Contains(out, `job_errors_total{kind="multicore"} 1`) {
		t.Fatalf("labelled counters not rendered:\n%s", out)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestValidateExpositionRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"sample without family": "loose_metric 1\n",
		"duplicate TYPE":        "# HELP a x\n# TYPE a gauge\n# HELP a x\n# TYPE a gauge\na 1\n",
		"non-monotonic histogram": strings.Join([]string{
			"# HELP h x",
			"# TYPE h histogram",
			`h_bucket{le="1"} 5`,
			`h_bucket{le="2"} 3`,
			`h_bucket{le="+Inf"} 5`,
			"h_sum 1",
			"h_count 5",
			"",
		}, "\n"),
		"missing +Inf bucket": strings.Join([]string{
			"# HELP h x",
			"# TYPE h histogram",
			`h_bucket{le="1"} 5`,
			"h_sum 1",
			"h_count 5",
			"",
		}, "\n"),
		"count mismatch": strings.Join([]string{
			"# HELP h x",
			"# TYPE h histogram",
			`h_bucket{le="+Inf"} 4`,
			"h_sum 1",
			"h_count 5",
			"",
		}, "\n"),
		"bad value": "# HELP a x\n# TYPE a gauge\na banana\n",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestValidateExpositionAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.Gauge("b", "b").Set(0.25)
	r.HistogramVec("c_seconds", "c", "kind", nil).With("x").Observe(0.2)
	r.GaugeFunc("d", "d", func() float64 { return -1 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("registry output failed validation: %v\n%s", err, b.String())
	}
}

// TestHotPathMetricsAllocFree pins the observation hot path's allocation
// contract: once a series handle has been resolved (With for labelled
// families), Inc/Add/Set/Observe allocate nothing. The 776 B/op once
// reported for Counter.Inc was a benchmark-setup artifact (registry
// construction inside the timed region), not a property of Inc.
func TestHotPathMetricsAllocFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "t")
	cv := reg.CounterVec("alloc_kind_total", "t", "kind").With("x")
	g := reg.Gauge("alloc_now", "t")
	h := reg.HistogramVec("alloc_seconds", "t", "kind", DefDurationBuckets()).With("x")
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"CounterVec.Inc":    func() { cv.Inc() },
		"Gauge.Set":         func() { g.Set(1.5) },
		"Histogram.Observe": func() { h.Observe(0.02) },
	} {
		if avg := testing.AllocsPerRun(1000, fn); avg != 0 {
			t.Errorf("%s allocates %v allocs/op, want 0", name, avg)
		}
	}
}
