package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JobEventType classifies one campaign lifecycle event.
type JobEventType string

const (
	// EventCampaignStarted opens a campaign's timeline.
	EventCampaignStarted JobEventType = "campaign_started"
	// EventJobStarted marks a job picked up by a worker.
	EventJobStarted JobEventType = "job_started"
	// EventJobDone marks a job that returned without error.
	EventJobDone JobEventType = "job_done"
	// EventJobFailed marks a job that returned an error or panicked.
	EventJobFailed JobEventType = "job_failed"
	// EventJobCancelled marks a job abandoned by cancellation.
	EventJobCancelled JobEventType = "job_cancelled"
	// EventCampaignFinished closes a campaign's timeline.
	EventCampaignFinished JobEventType = "campaign_finished"
)

// JobEvent is one line of a campaign timeline (runs/<ts>/timeline.jsonl
// and the pcs-server GET /campaigns/{id}/events stream). Unlike job
// result records, timeline events deliberately carry wall-clock timing —
// they exist to show where campaign time went.
type JobEvent struct {
	Type JobEventType `json:"type"`
	// Campaign names the campaign (campaign_* events).
	Campaign string `json:"campaign,omitempty"`
	// Index is the job's position in the campaign; -1 on campaign_*
	// events.
	Index int `json:"index"`
	// Kind and Name identify the job's spec.
	Kind string `json:"kind,omitempty"`
	Name string `json:"name,omitempty"`
	// Error carries the failure or cancellation message.
	Error string `json:"error,omitempty"`
	// ElapsedMS is the offset from campaign start.
	ElapsedMS float64 `json:"elapsed_ms"`
	// DurationMS is the job's own wall-clock duration (terminal job
	// events only).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Cached marks a job served from the content-addressed result store
	// rather than computed (job_done events only). It lives in the
	// timeline, not in result records, so results.jsonl stays
	// byte-identical across cached and uncached executions.
	Cached bool `json:"cached,omitempty"`
	// State is the campaign's terminal state (campaign_finished only).
	State string `json:"state,omitempty"`
	// Resources is the job's resource-attribution block (terminal job
	// events only). Like Cached and DurationMS it lives in the
	// timeline, never in result records, so results.jsonl stays
	// byte-identical across worker counts and machines.
	Resources *JobResources `json:"resources,omitempty"`
}

// JobResources attributes measured cost to one job: where the
// campaign's wall time, CPU time and allocations actually went. CPU
// time is the worker thread's rusage delta (Linux; zero elsewhere),
// allocations are runtime/metrics heap deltas sampled on the worker
// goroutine — exact for the serial portions of a job, approximate for
// anything the job itself parallelises.
type JobResources struct {
	// WallMS is the job's wall-clock duration.
	WallMS float64 `json:"wall_ms"`
	// CPUMS is the worker OS thread's user+system CPU time over the
	// job (RUSAGE_THREAD delta under runtime.LockOSThread).
	CPUMS float64 `json:"cpu_ms"`
	// Allocs and AllocBytes are heap allocation deltas over the job.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// CacheHit/CacheMiss attribute the resultstore probe: exactly one
	// is true when the job consulted the store, both false otherwise.
	CacheHit  bool `json:"cache_hit,omitempty"`
	CacheMiss bool `json:"cache_miss,omitempty"`
	// Transitions and Writebacks summarise the simulator's DPCS
	// activity when the job's output reports it (see ResourceCounter).
	Transitions int    `json:"transitions,omitempty"`
	Writebacks  uint64 `json:"writebacks,omitempty"`
}

// ResourceCounter is implemented by job outputs that can report their
// simulator-side resource counts (DPCS transitions, writebacks) for
// the timeline's attribution block. cpusim.Result implements it.
type ResourceCounter interface {
	ResourceCounts() (transitions int, writebacks uint64)
}

// ReadJobEvents decodes a timeline.jsonl stream.
func ReadJobEvents(r io.Reader) ([]JobEvent, error) {
	dec := json.NewDecoder(r)
	var events []JobEvent
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: timeline event %d: %w", len(events), err)
		}
		events = append(events, ev)
	}
}

// ReadJobTimeline reads a timeline.jsonl file.
func ReadJobTimeline(path string) ([]JobEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	return ReadJobEvents(f)
}
