package obs

// JobEventType classifies one campaign lifecycle event.
type JobEventType string

const (
	// EventCampaignStarted opens a campaign's timeline.
	EventCampaignStarted JobEventType = "campaign_started"
	// EventJobStarted marks a job picked up by a worker.
	EventJobStarted JobEventType = "job_started"
	// EventJobDone marks a job that returned without error.
	EventJobDone JobEventType = "job_done"
	// EventJobFailed marks a job that returned an error or panicked.
	EventJobFailed JobEventType = "job_failed"
	// EventJobCancelled marks a job abandoned by cancellation.
	EventJobCancelled JobEventType = "job_cancelled"
	// EventCampaignFinished closes a campaign's timeline.
	EventCampaignFinished JobEventType = "campaign_finished"
)

// JobEvent is one line of a campaign timeline (runs/<ts>/timeline.jsonl
// and the pcs-server GET /campaigns/{id}/events stream). Unlike job
// result records, timeline events deliberately carry wall-clock timing —
// they exist to show where campaign time went.
type JobEvent struct {
	Type JobEventType `json:"type"`
	// Campaign names the campaign (campaign_* events).
	Campaign string `json:"campaign,omitempty"`
	// Index is the job's position in the campaign; -1 on campaign_*
	// events.
	Index int `json:"index"`
	// Kind and Name identify the job's spec.
	Kind string `json:"kind,omitempty"`
	Name string `json:"name,omitempty"`
	// Error carries the failure or cancellation message.
	Error string `json:"error,omitempty"`
	// ElapsedMS is the offset from campaign start.
	ElapsedMS float64 `json:"elapsed_ms"`
	// DurationMS is the job's own wall-clock duration (terminal job
	// events only).
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Cached marks a job served from the content-addressed result store
	// rather than computed (job_done events only). It lives in the
	// timeline, not in result records, so results.jsonl stays
	// byte-identical across cached and uncached executions.
	Cached bool `json:"cached,omitempty"`
	// State is the campaign's terminal state (campaign_finished only).
	State string `json:"state,omitempty"`
}
