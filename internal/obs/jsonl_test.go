package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestJSONLSinkRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	in := []PolicyEvent{
		{Cycle: 100, CacheName: "L1D", Decision: DecisionCalibrate, NAAT: 2.5},
		{Cycle: 200, CacheName: "L1D", Decision: DecisionDown, Interval: 2,
			MissRate: 0.01, CAAT: 2.1, NAAT: 2.5, FromLevel: 3, ToLevel: 2},
		{Cycle: 200, CacheName: "L1D", Decision: DecisionTransition,
			FromLevel: 3, ToLevel: 2, FromVDD: 1.0, ToVDD: 0.7,
			Writebacks: 4, Invalidations: 9, PenaltyCycles: 138},
	}
	for _, ev := range in {
		s.Record(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Events() != len(in) {
		t.Fatalf("Events() = %d, want %d", s.Events(), len(in))
	}

	out, err := ReadPolicyEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d roundtrip mismatch:\n got %+v\nwant %+v", i, out[i], in[i])
		}
	}
}

func TestDecisionJSONIsSymbolic(t *testing.T) {
	b, err := json.Marshal(PolicyEvent{Cycle: 1, CacheName: "L2", Decision: DecisionUp})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"decision":"up"`)) {
		t.Fatalf("decision not symbolic: %s", b)
	}
	var ev PolicyEvent
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Decision != DecisionUp {
		t.Fatalf("unmarshal decision = %v", ev.Decision)
	}
	if err := json.Unmarshal([]byte(`{"decision":"bogus"}`), &ev); err == nil {
		t.Fatal("unknown decision name should fail to unmarshal")
	}
}

func TestCreateJSONLFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.jsonl")
	s, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Record(PolicyEvent{Cycle: 5, CacheName: "L1I", Decision: DecisionHold})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadPolicyTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Decision != DecisionHold || evs[0].CacheName != "L1I" {
		t.Fatalf("bad file roundtrip: %+v", evs)
	}
}

func TestPolicySinkContext(t *testing.T) {
	if got := PolicySinkFromContext(context.Background()); got != nil {
		t.Fatalf("empty context should yield nil sink, got %T", got)
	}
	c := &Collector{}
	ctx := ContextWithPolicySink(context.Background(), c)
	sink := PolicySinkFromContext(ctx)
	if sink == nil {
		t.Fatal("sink not recovered from context")
	}
	sink.Record(PolicyEvent{Cycle: 9, Decision: DecisionReset})
	if len(c.Events) != 1 || c.Events[0].Cycle != 9 {
		t.Fatalf("collector missed event: %+v", c.Events)
	}
}
