package tracez

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestWriteChromeTrace checks the exporter emits one complete event
// per interval span (µs units, worker-derived tid), one instant event
// per instant span, and thread-name metadata for seen workers.
func TestWriteChromeTrace(t *testing.T) {
	var c Collector
	tr := New(&c, Options{})
	ctx, root := tr.Start(context.Background(), "campaign")
	_, job := tr.Start(ctx, "job")
	job.SetInt("job", 5)
	job.SetInt("worker", 2)
	ev := job.Child("dpcs.transition")
	ev.SetInt("worker", 2)
	ev.EndInstant()
	job.End()
	root.End()

	spans := c.Snapshot()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// 3 spans + 1 thread_name metadata row for worker 2.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
	}
	jobEv := doc.TraceEvents[byName["job"]]
	if jobEv.Phase != "X" || jobEv.PID != 1 || jobEv.TID != 2 || jobEv.Cat != "pcs" {
		t.Errorf("job event %+v", jobEv)
	}
	sp := spans[1] // insertion order: transition instant recorded first... find by name instead
	for _, s := range spans {
		if s.Name == "job" {
			sp = s
		}
	}
	if want := float64(sp.StartUnixNS) / 1e3; jobEv.TS != want {
		t.Errorf("job ts %v, want %v", jobEv.TS, want)
	}
	if want := float64(sp.DurNS) / 1e3; jobEv.Dur != want {
		t.Errorf("job dur %v, want %v", jobEv.Dur, want)
	}
	if jobEv.Args["span"] != sp.ID {
		t.Errorf("job args missing span id: %v", jobEv.Args)
	}
	inst := doc.TraceEvents[byName["dpcs.transition"]]
	if inst.Phase != "i" || inst.Scope != "t" || inst.TID != 2 {
		t.Errorf("instant event %+v", inst)
	}
	meta := doc.TraceEvents[byName["thread_name"]]
	if meta.Phase != "M" || meta.Args["name"] != "worker 2" {
		t.Errorf("metadata event %+v", meta)
	}
	// The campaign event has no worker/job attr and lands on track 0.
	camp := doc.TraceEvents[byName["campaign"]]
	if camp.TID != 0 {
		t.Errorf("campaign tid %d, want 0", camp.TID)
	}
}

// TestChromeTIDFromDecodedJSON checks tid resolution on float64 attrs
// (the type JSON decoding produces when re-reading spans.jsonl).
func TestChromeTIDFromDecodedJSON(t *testing.T) {
	sp := &Span{Attrs: map[string]any{"job": float64(7)}}
	tid, isWorker := chromeTID(sp)
	if tid != 7 || isWorker {
		t.Fatalf("tid=%d isWorker=%v, want 7/false", tid, isWorker)
	}
	sp = &Span{Attrs: map[string]any{"worker": float64(3), "job": float64(9)}}
	if tid, isWorker = chromeTID(sp); tid != 3 || !isWorker {
		t.Fatalf("tid=%d isWorker=%v, want 3/true", tid, isWorker)
	}
}
