// Package tracez is a lightweight, zero-dependency span tracer for
// campaign executions: causally nested spans (campaign → job →
// simulator phase → resultstore/ledger operation) with wall-clock
// timing and typed attributes, serialised as JSON lines and exportable
// to the Chrome trace-event format (see chrome.go) for Perfetto.
//
// The design constraint is the repository's hot-path budget: with
// tracing disabled every instrumentation site must cost two context
// lookups at most and zero heap allocations. That is achieved by
// making every method nil-receiver safe — FromContext returns a nil
// *Tracer when no tracer is installed, Start on a nil tracer returns a
// nil *Span, and all Span methods no-op on nil — and by using typed
// attribute setters (SetStr/SetInt/...) instead of variadic ...any
// parameters, which would box arguments at the call site even when the
// span is nil. The disabled path is asserted alloc-free by
// TestTracingOffZeroAllocs and gated in scripts/check.sh.
//
// Spans are phase-granular, never per-instruction: the simulator's
// instruction loop is untouched; only phase boundaries (warmup,
// measurement, energy rollup) and sampled DPCS transition instants are
// recorded.
package tracez

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FileName is the span sidecar's name inside a run directory.
const FileName = "spans.jsonl"

// KindInstant marks a zero-duration point event (a sampled DPCS
// transition, for example) rather than an interval.
const KindInstant = "instant"

// Span is one traced interval (or instant). The JSON field names are
// the spans.jsonl wire format.
type Span struct {
	// Trace identifies the campaign execution; all spans of one Run
	// share it. It is the cross-node correlation key a distributed
	// fabric would propagate.
	Trace string `json:"trace"`
	// ID is unique within the trace; Parent is the enclosing span's ID
	// ("" for the root campaign span).
	ID     string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Kind is "" for an interval span, KindInstant for a point event.
	Kind string `json:"kind,omitempty"`
	// StartUnixNS and DurNS carry wall-clock placement and duration.
	// Spans deliberately never feed result records: like
	// timeline.jsonl, spans.jsonl varies run to run and is excluded
	// from determinism comparisons.
	StartUnixNS int64          `json:"start_unix_ns"`
	DurNS       int64          `json:"dur_ns"`
	Attrs       map[string]any `json:"attrs,omitempty"`

	tracer *Tracer
	start  time.Time // monotonic anchor for DurNS
}

// Options configure a Tracer.
type Options struct {
	// TransitionEveryN samples DPCS transition instant events: record
	// every Nth transition per job. <= 1 records all of them. Phase
	// spans are never sampled — there are only a handful per job.
	TransitionEveryN int
}

// Tracer creates spans and delivers finished ones to its Sink. Safe
// for concurrent use; a nil *Tracer is a valid no-op tracer.
type Tracer struct {
	sink  Sink
	trace string
	seq   atomic.Uint64
	opts  Options
}

// traceSeq disambiguates tracers created within the same nanosecond.
var traceSeq atomic.Uint64

// New returns a tracer delivering finished spans to sink.
func New(sink Sink, opts Options) *Tracer {
	if opts.TransitionEveryN < 1 {
		opts.TransitionEveryN = 1
	}
	return &Tracer{
		sink:  sink,
		trace: fmt.Sprintf("%x-%x", time.Now().UnixNano(), traceSeq.Add(1)),
		opts:  opts,
	}
}

// TraceID returns the trace identifier shared by this tracer's spans.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.trace
}

// TransitionEveryN returns the configured transition sampling stride
// (>= 1). Nil-safe; a nil tracer reports 1.
func (t *Tracer) TransitionEveryN() int {
	if t == nil {
		return 1
	}
	return t.opts.TransitionEveryN
}

func (t *Tracer) newSpan(parent, name string) *Span {
	return &Span{
		Trace:       t.trace,
		ID:          fmt.Sprintf("%x", t.seq.Add(1)),
		Parent:      parent,
		Name:        name,
		StartUnixNS: time.Now().UnixNano(),
		tracer:      t,
		start:       time.Now(),
	}
}

// Start begins a span as a child of ctx's current span (if any) and
// returns a context carrying the new span as current. On a nil tracer
// it returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := ""
	if ps := SpanFromContext(ctx); ps != nil {
		parent = ps.ID
	}
	sp := t.newSpan(parent, name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartRoot begins a parentless span without touching any context —
// for bookkeeping work (results write, ledger append) that happens
// outside the job tree. Nil-safe.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan("", name)
}

// Child begins a span nested under sp without involving a context.
// Nil-safe: a nil parent yields a nil child.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tracer.newSpan(sp.ID, name)
}

// SetStr attaches a string attribute. All setters are nil-safe and
// must be called before End.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// SetInt attaches an integer attribute.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// SetUint attaches an unsigned integer attribute.
func (sp *Span) SetUint(key string, v uint64) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// SetFloat attaches a float attribute.
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

// SetBool attaches a boolean attribute.
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.set(key, v)
}

func (sp *Span) set(key string, v any) {
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]any, 4)
	}
	sp.Attrs[key] = v
}

// End stamps the span's duration and delivers it to the tracer's sink.
// Nil-safe; calling End twice delivers the span twice, so don't.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.DurNS = int64(time.Since(sp.start))
	sp.tracer.record(sp)
}

// EndInstant marks the span as a point event (zero duration, Kind
// "instant") and delivers it. Use for sampled occurrences like DPCS
// transitions where the duration is meaningless at span granularity.
func (sp *Span) EndInstant() {
	if sp == nil {
		return
	}
	sp.Kind = KindInstant
	sp.DurNS = 0
	sp.tracer.record(sp)
}

func (t *Tracer) record(sp *Span) {
	if t.sink != nil {
		t.sink.Record(sp)
	}
}

// Context propagation. Two independent keys: the tracer (installed
// once per campaign) and the current span (rebound by Start as the
// tree deepens). Zero-size key types box to the runtime's shared zero
// object, so context lookups on the disabled path do not allocate.
type (
	tracerKey struct{}
	spanKey   struct{}
)

// ContextWith returns a context carrying the tracer.
func ContextWith(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the context's tracer, or nil — and a nil tracer
// is safe to use directly, so callers never need to branch.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use; spans arrive from every campaign worker.
type Sink interface {
	Record(sp *Span)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(sp *Span)

// Record calls f.
func (f SinkFunc) Record(sp *Span) { f(sp) }

// Tee fans finished spans out to several sinks in order.
func Tee(sinks ...Sink) Sink {
	return SinkFunc(func(sp *Span) {
		for _, s := range sinks {
			s.Record(sp)
		}
	})
}

// Collector is an in-memory sink for tests and the server's live span
// buffer.
type Collector struct {
	mu    sync.Mutex
	spans []Span
}

// Record appends a copy of the span.
func (c *Collector) Record(sp *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, *sp)
	c.mu.Unlock()
}

// Snapshot returns a copy of the collected spans.
func (c *Collector) Snapshot() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// JSONL is a mutex-serialised JSON-lines span sink backed by a file.
// Record after Close silently drops (late spans — e.g. a ledger-append
// span recorded after the sidecar is hash-chained — still reach other
// Tee'd sinks).
type JSONL struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	enc    *json.Encoder
	err    error
	closed bool
	n      int
}

// CreateJSONL creates (truncating) path and returns a sink writing one
// span per line.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tracez: %w", err)
	}
	s := &JSONL{f: f, w: bufio.NewWriter(f)}
	s.enc = json.NewEncoder(s.w)
	return s, nil
}

// Record writes one span line. Write errors latch and surface from
// Err/Close.
func (s *JSONL) Record(sp *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		return
	}
	if err := s.enc.Encode(sp); err != nil {
		s.err = fmt.Errorf("tracez: encode span: %w", err)
		return
	}
	s.n++
}

// Len returns how many spans have been written.
func (s *JSONL) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first latched write error.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Sync flushes buffered lines and fsyncs the file, so a killed process
// never leaves a torn line on disk. Safe to call concurrently with
// Record and after Close (then a no-op).
func (s *JSONL) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *JSONL) syncLocked() error {
	if s.closed {
		return s.err
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("tracez: flush spans: %w", err)
	}
	if err := s.f.Sync(); err != nil && s.err == nil {
		s.err = fmt.Errorf("tracez: fsync spans: %w", err)
	}
	return s.err
}

// Close flushes and closes the file. Further Records drop.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("tracez: flush spans: %w", err)
	}
	if err := s.f.Close(); err != nil && s.err == nil {
		s.err = fmt.Errorf("tracez: close spans: %w", err)
	}
	s.closed = true
	return s.err
}

// ReadSpans decodes a spans.jsonl stream.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var spans []Span
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("tracez: span %d: %w", len(spans), err)
		}
		spans = append(spans, sp)
	}
}

// ReadFile reads a spans.jsonl file.
func ReadFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracez: %w", err)
	}
	defer f.Close()
	return ReadSpans(f)
}
