package tracez

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: converts spans.jsonl into the JSON object
// format consumed by Perfetto (ui.perfetto.dev) and chrome://tracing.
// Interval spans become complete events (ph "X"), instants become
// thread-scoped instant events (ph "i"). Tracks (tid) are assigned
// from the span's "worker" attribute when present — so the Perfetto
// view shows the actual worker-pool schedule — falling back to the
// "job" attribute, then to track 0 for campaign-level bookkeeping.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID picks the event's track from span attributes. JSON-decoded
// attrs carry numbers as float64; live spans carry int64/uint64.
func chromeTID(sp *Span) (int, bool) {
	for _, key := range []string{"worker", "job"} {
		v, ok := sp.Attrs[key]
		if !ok {
			continue
		}
		switch n := v.(type) {
		case float64:
			return int(n), key == "worker"
		case int64:
			return int(n), key == "worker"
		case uint64:
			return int(n), key == "worker"
		case int:
			return n, key == "worker"
		}
	}
	return 0, false
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+4)}
	workers := make(map[int]bool)
	for i := range spans {
		sp := &spans[i]
		tid, isWorker := chromeTID(sp)
		if isWorker {
			workers[tid] = true
		}
		ev := chromeEvent{
			Name:  sp.Name,
			Cat:   "pcs",
			Phase: "X",
			TS:    float64(sp.StartUnixNS) / 1e3,
			Dur:   float64(sp.DurNS) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  sp.Attrs,
		}
		if sp.Kind == KindInstant {
			ev.Phase = "i"
			ev.Scope = "t"
			ev.Dur = 0
		} else {
			// Keep the span/parent IDs findable in the Perfetto args pane,
			// without mutating the caller's attribute maps.
			args := make(map[string]any, len(sp.Attrs)+2)
			for k, v := range sp.Attrs {
				args[k] = v
			}
			args["span"] = sp.ID
			if sp.Parent != "" {
				args["parent"] = sp.Parent
			}
			ev.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	// Thread-name metadata gives the worker tracks readable labels.
	tids := make([]int, 0, len(workers))
	for tid := range workers {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", Cat: "__metadata", PID: 1, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", tid)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
