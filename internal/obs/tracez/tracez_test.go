package tracez

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
)

// TestSpanTreeAndAttrs checks context propagation builds the parent
// chain and attributes survive to the sink.
func TestSpanTreeAndAttrs(t *testing.T) {
	var c Collector
	tr := New(&c, Options{})
	ctx := ContextWith(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the installed tracer")
	}

	ctx, root := tr.Start(ctx, "campaign")
	root.SetStr("campaign", "fig4")
	ctx2, job := tr.Start(ctx, "job")
	job.SetInt("job", 3)
	job.SetUint("seed", 42)
	job.SetBool("cached", true)
	job.SetFloat("f", 1.5)
	if SpanFromContext(ctx2) != job {
		t.Fatal("Start did not rebind the current span")
	}
	probe := job.Child("cache.probe")
	probe.End()
	job.End()
	root.End()

	spans := c.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Trace != tr.TraceID() {
			t.Errorf("span %s trace %q, want %q", sp.Name, sp.Trace, tr.TraceID())
		}
	}
	if byName["campaign"].Parent != "" {
		t.Errorf("campaign span has parent %q", byName["campaign"].Parent)
	}
	if byName["job"].Parent != byName["campaign"].ID {
		t.Errorf("job parent %q, want campaign ID %q", byName["job"].Parent, byName["campaign"].ID)
	}
	if byName["cache.probe"].Parent != byName["job"].ID {
		t.Errorf("probe parent %q, want job ID %q", byName["cache.probe"].Parent, byName["job"].ID)
	}
	a := byName["job"].Attrs
	if a["job"] != int64(3) || a["seed"] != uint64(42) || a["cached"] != true || a["f"] != 1.5 {
		t.Errorf("job attrs %v", a)
	}
	if byName["campaign"].DurNS < 0 || byName["campaign"].StartUnixNS == 0 {
		t.Errorf("campaign timing %+v", byName["campaign"])
	}
}

// TestNilTracerIsNoOp checks every call is safe with no tracer
// installed: the disabled path must never branch at call sites.
func TestNilTracerIsNoOp(t *testing.T) {
	ctx := context.Background()
	tr := FromContext(ctx)
	if tr != nil {
		t.Fatal("FromContext on empty context should be nil")
	}
	ctx2, sp := tr.Start(ctx, "x")
	if ctx2 != ctx || sp != nil {
		t.Fatal("nil tracer Start must return ctx unchanged and nil span")
	}
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.End()
	sp.EndInstant()
	if child := sp.Child("y"); child != nil {
		t.Fatal("nil span Child must be nil")
	}
	if tr.StartRoot("r") != nil {
		t.Fatal("nil tracer StartRoot must be nil")
	}
	if got := tr.TransitionEveryN(); got != 1 {
		t.Fatalf("nil tracer TransitionEveryN = %d, want 1", got)
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("SpanFromContext on empty context should be nil")
	}
}

// TestTracingOffZeroAllocs is the hot-path gate: the full
// instrumentation sequence with tracing disabled must not allocate.
// scripts/check.sh runs this as a regression gate.
func TestTracingOffZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := FromContext(ctx)
		ctx2, sp := tr.Start(ctx, "job")
		sp.SetStr("kind", "fig4-cell")
		sp.SetInt("job", 7)
		sp.SetUint("seed", 99)
		child := sp.Child("cache.probe")
		child.End()
		ev := SpanFromContext(ctx2).Child("dpcs.transition")
		ev.EndInstant()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per run, want 0", allocs)
	}
}

// TestJSONLRoundTrip checks spans survive the sidecar format, that
// Sync leaves whole lines on disk mid-stream, and that Record after
// Close drops without error.
func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	sink, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(sink, Options{})
	_, sp := tr.Start(context.Background(), "a")
	sp.SetStr("k", "v")
	sp.End()
	if err := sink.Sync(); err != nil {
		t.Fatal(err)
	}
	// After Sync the file must already hold the first complete line.
	if spans, err := ReadFile(path); err != nil || len(spans) != 1 {
		t.Fatalf("after Sync: spans=%d err=%v", len(spans), err)
	}
	ev := sp.Child("b")
	ev.EndInstant()
	if sink.Len() != 2 {
		t.Fatalf("sink recorded %d spans, want 2", sink.Len())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	tr.StartRoot("late").End() // must drop silently
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "a" || spans[0].Attrs["k"] != "v" {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "b" || spans[1].Kind != KindInstant || spans[1].Parent != spans[0].ID {
		t.Errorf("span 1 = %+v", spans[1])
	}
}

// TestJSONLConcurrentRecord hammers one sink from many goroutines and
// checks every line decodes whole (run under -race in check).
func TestJSONLConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	sink, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(sink, Options{})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartRoot("s")
				sp.SetInt("worker", int64(w))
				sp.End()
				if i%10 == 0 {
					sink.Sync()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != workers*per {
		t.Fatalf("got %d spans, want %d", len(spans), workers*per)
	}
}

// TestTeeFansOut checks multi-sink delivery.
func TestTeeFansOut(t *testing.T) {
	var a, b Collector
	n := 0
	tr := New(Tee(&a, &b, SinkFunc(func(*Span) { n++ })), Options{TransitionEveryN: 8})
	tr.StartRoot("x").End()
	if len(a.Snapshot()) != 1 || len(b.Snapshot()) != 1 || n != 1 {
		t.Fatalf("tee delivery a=%d b=%d fn=%d", len(a.Snapshot()), len(b.Snapshot()), n)
	}
	if tr.TransitionEveryN() != 8 {
		t.Fatalf("TransitionEveryN = %d, want 8", tr.TransitionEveryN())
	}
}

// TestTraceIDsDistinct checks two tracers created back-to-back get
// distinct trace IDs even within one nanosecond tick.
func TestTraceIDsDistinct(t *testing.T) {
	a, b := New(nil, Options{}), New(nil, Options{})
	if a.TraceID() == b.TraceID() || a.TraceID() == "" {
		t.Fatalf("trace IDs %q vs %q", a.TraceID(), b.TraceID())
	}
	// A tracer with a nil sink must still be usable.
	_, sp := a.Start(context.Background(), "x")
	sp.End()
}
