package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSONLSink streams policy events as JSON lines. It buffers writes and
// records the first encode error; callers check Err or Close. It is not
// safe for concurrent use — attach one sink per simulator instance.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	enc *json.Encoder
	err error
	n   int
}

// NewJSONLSink writes events to w; the caller owns w's lifetime.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// CreateJSONL creates (truncating) path and returns a sink that owns the
// file; Close flushes and closes it.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create timeline: %w", err)
	}
	s := NewJSONLSink(f)
	s.c = f
	return s, nil
}

// Record implements PolicySink.
func (s *JSONLSink) Record(ev PolicyEvent) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(&ev); err != nil {
		s.err = fmt.Errorf("obs: encode timeline event: %w", err)
		return
	}
	s.n++
}

// Events returns how many events have been written.
func (s *JSONLSink) Events() int { return s.n }

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Close flushes the buffer (and closes the file for CreateJSONL sinks),
// returning the first error seen.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("obs: flush timeline: %w", err)
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: close timeline: %w", err)
		}
		s.c = nil
	}
	return s.err
}

// ReadPolicyEvents decodes a JSONL policy timeline.
func ReadPolicyEvents(r io.Reader) ([]PolicyEvent, error) {
	var out []PolicyEvent
	dec := json.NewDecoder(r)
	for {
		var ev PolicyEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: timeline line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// ReadPolicyTimeline reads a timeline.jsonl file.
func ReadPolicyTimeline(path string) ([]PolicyEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open timeline: %w", err)
	}
	defer f.Close()
	return ReadPolicyEvents(bufio.NewReader(f))
}
