package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestLoggerCapturesStatusAndID(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/brew", nil))

	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Fatal("missing request id header")
	}
	out := logBuf.String()
	for _, want := range []string{"status=418", "path=/brew", "method=GET", "bytes=15"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}

func TestRequestLoggerNilLoggerPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := RequestLogger(nil, inner); got == nil {
		t.Fatal("nil logger should return handler unchanged, got nil")
	}
}

func TestStatusRecorderPreservesFlusher(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	flushed := false
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("x\n"))
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !flushed {
		t.Fatal("handler did not flush")
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach underlying writer")
	}
}

func TestRequestIDsAreUnique(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		id := rec.Header().Get(RequestIDHeader)
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}
