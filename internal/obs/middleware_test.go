package obs

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRequestLoggerCapturesStatusAndID(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/brew", nil))

	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Fatal("missing request id header")
	}
	out := logBuf.String()
	for _, want := range []string{"status=418", "path=/brew", "method=GET", "bytes=15"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}

func TestRequestLoggerNilLoggerPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := RequestLogger(nil, inner); got == nil {
		t.Fatal("nil logger should return handler unchanged, got nil")
	}
}

func TestStatusRecorderPreservesFlusher(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	flushed := false
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("wrapped writer lost http.Flusher")
		}
		w.Write([]byte("x\n"))
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if !flushed {
		t.Fatal("handler did not flush")
	}
	if !rec.Flushed {
		t.Fatal("flush did not reach underlying writer")
	}
}

func TestRequestIDsAreUnique(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		id := rec.Header().Get(RequestIDHeader)
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}

// TestRequestLoggerConcurrent hammers a streaming handler through the
// middleware from many goroutines: every response must carry a distinct
// request id and every log line must be whole. Run under -race this
// also proves the recorder and id counter are data-race free.
func TestRequestLoggerConcurrent(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	}), nil))
	h := RequestLogger(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Streaming-style handler: several writes with flushes between.
		f, _ := w.(http.Flusher)
		for i := 0; i < 4; i++ {
			w.Write([]byte("{\"line\":true}\n"))
			if f != nil {
				f.Flush()
			}
		}
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	const workers, per = 8, 20
	ids := make(chan string, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(ts.URL + "/stream")
				if err != nil {
					t.Error(err)
					return
				}
				ids <- resp.Header.Get(RequestIDHeader)
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if got := strings.Count(string(body), "\n"); got != 4 {
					t.Errorf("body has %d lines, want 4", got)
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if id == "" {
			t.Fatal("response missing request id")
		}
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("saw %d ids, want %d", len(seen), workers*per)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if !strings.Contains(line, "status=200") || !strings.Contains(line, "bytes=56") {
			t.Fatalf("log line %d malformed: %s", i, line)
		}
	}
}

// writerFunc adapts a function to io.Writer for log capture.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
