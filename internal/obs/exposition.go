package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// expoFamily tracks one announced metric family during validation.
type expoFamily struct {
	typ     string
	hasHelp bool
	// histogram reconciliation state, keyed by the label set minus le.
	buckets map[string][]bucketSample
	counts  map[string]float64
}

type bucketSample struct {
	bound float64
	count float64
}

// ValidateExposition checks that r is well-formed Prometheus text
// exposition: every sample belongs to a family announced by a HELP/TYPE
// pair, no family is announced twice, sample values parse as floats,
// and histogram bucket series are cumulative (non-decreasing in le)
// with a +Inf bucket that equals the family's _count. It is used by the
// /metrics test suite and is deliberately strict — a scrape that fails
// here would also confuse a real Prometheus server.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fams := map[string]*expoFamily{}
	cur := "" // family whose block we are inside
	line := 0

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "# HELP "):
			rest := strings.TrimPrefix(text, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return fmt.Errorf("line %d: malformed HELP: %s", line, text)
			}
			if f := fams[name]; f != nil && f.hasHelp {
				return fmt.Errorf("line %d: duplicate HELP for %s", line, name)
			}
			fams[name] = &expoFamily{hasHelp: true,
				buckets: map[string][]bucketSample{}, counts: map[string]float64{}}
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE: %s", line, text)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %s", line, typ, name)
			}
			f := fams[name]
			if f == nil || !f.hasHelp {
				return fmt.Errorf("line %d: TYPE %s without preceding HELP", line, name)
			}
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
			}
			f.typ = typ
			cur = name
		case strings.HasPrefix(text, "#"):
			// free-form comment; ignore
		default:
			name, labels, value, err := parseSample(text)
			if err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
			base := sampleFamilyName(name, fams)
			if base == "" {
				return fmt.Errorf("line %d: sample %s has no HELP/TYPE", line, name)
			}
			if base != cur {
				return fmt.Errorf("line %d: sample %s outside its family block (current %q)", line, name, cur)
			}
			f := fams[base]
			if f.typ == "histogram" {
				key := labelsWithoutLE(labels)
				switch name {
				case base + "_bucket":
					le, ok := labelValue(labels, "le")
					if !ok {
						return fmt.Errorf("line %d: histogram bucket without le label: %s", line, text)
					}
					bound, err := parseFloatValue(le)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", line, le, err)
					}
					f.buckets[key] = append(f.buckets[key], bucketSample{bound, value})
				case base + "_count":
					f.counts[key] = value
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, f := range fams {
		if f.typ == "" {
			return fmt.Errorf("family %s has HELP but no TYPE", name)
		}
		if f.typ != "histogram" {
			continue
		}
		for key, bs := range f.buckets {
			sort.Slice(bs, func(i, j int) bool { return bs[i].bound < bs[j].bound })
			prev := -1.0
			for _, b := range bs {
				if b.count < prev {
					return fmt.Errorf("histogram %s{%s}: bucket counts decrease at le=%g", name, key, b.bound)
				}
				prev = b.count
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.bound, 1) {
				return fmt.Errorf("histogram %s{%s}: missing +Inf bucket", name, key)
			}
			if c, ok := f.counts[key]; ok && c != last.count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %g != _count %g", name, key, last.count, c)
			}
		}
	}
	return nil
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+-?\d+)?$`)

// parseSample splits a sample line into name, raw label string (without
// braces), and value.
func parseSample(text string) (name, labels string, value float64, err error) {
	m := sampleRe.FindStringSubmatch(text)
	if m == nil {
		return "", "", 0, fmt.Errorf("malformed sample: %s", text)
	}
	v, err := parseFloatValue(m[3])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value in %q: %v", text, err)
	}
	return m[1], strings.Trim(m[2], "{}"), v, nil
}

// sampleFamilyName maps a sample name to its announced family,
// accounting for the _bucket/_sum/_count suffixes of histograms and
// summaries.
func sampleFamilyName(name string, fams map[string]*expoFamily) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
			return base
		}
	}
	return ""
}

// labelsWithoutLE strips the le pair from a raw label string.
func labelsWithoutLE(labels string) string {
	if labels == "" {
		return ""
	}
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(strings.TrimSpace(p), "le=") {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}

// labelValue extracts one label's (unquoted) value.
func labelValue(labels, key string) (string, bool) {
	for _, p := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
		if ok && k == key {
			if uq, err := strconv.Unquote(v); err == nil {
				return uq, true
			}
			return v, true
		}
	}
	return "", false
}

// parseFloatValue parses a sample value, accepting +Inf/-Inf/NaN.
func parseFloatValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
