// Package obs is the observability layer: typed DPCS policy telemetry
// (the structured replacement for the old printf Trace hook), a small
// metrics registry with Prometheus text rendering, JSONL timeline
// artifacts, and HTTP request logging middleware.
//
// The package is a leaf: it imports only the standard library, so every
// subsystem (core, cpusim, runner, the cmd harnesses) can depend on it
// without cycles. Telemetry is pull-free and allocation-conscious — a
// simulator with no sink attached, or with NopSink, pays zero
// allocations per policy tick (asserted by tests via
// testing.AllocsPerRun).
package obs

import (
	"context"
	"fmt"
)

// Decision classifies what the DPCS machinery did at one telemetry
// point. Decisions map onto the paper's Listing 1 (the interval state
// machine) and Listing 2 (the transition procedure); see DESIGN.md.
type Decision uint8

const (
	// DecisionNone is an interval sample that took no action.
	DecisionNone Decision = iota
	// DecisionCalibrate is the first interval of a super-interval, where
	// the policy refreshes its NAAT estimate at the SPCS voltage.
	DecisionCalibrate
	// DecisionHold is an interval where a descent was suppressed by the
	// post-descent grace window or the hold-until-reset latch.
	DecisionHold
	// DecisionUp is a performance escape: the measured slowdown crossed
	// the high threshold and the voltage stepped up one level.
	DecisionUp
	// DecisionDown is a descent: CAAT was within the low threshold of
	// NAAT plus the amortised transition penalty.
	DecisionDown
	// DecisionReset is the super-interval recalibration return to the
	// SPCS voltage.
	DecisionReset
	// DecisionSkipReset is a recalibration the policy skipped because the
	// super-interval ran clean and the workload looked stationary.
	DecisionSkipReset
	// DecisionTransition is a raw controller voltage transition (the
	// Listing 2 procedure itself). Every Controller.Transition call emits
	// exactly one such event, so counting them reconciles with
	// Controller.Transitions().
	DecisionTransition
)

var decisionNames = [...]string{
	DecisionNone:       "none",
	DecisionCalibrate:  "calibrate",
	DecisionHold:       "hold",
	DecisionUp:         "up",
	DecisionDown:       "down",
	DecisionReset:      "reset",
	DecisionSkipReset:  "skip_reset",
	DecisionTransition: "transition",
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if int(d) < len(decisionNames) {
		return decisionNames[d]
	}
	return fmt.Sprintf("Decision(%d)", uint8(d))
}

// MarshalJSON renders the decision as its string name.
func (d Decision) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON parses a decision name.
func (d *Decision) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, name := range decisionNames {
		if name == s {
			*d = Decision(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown decision %q", s)
}

// PolicyEvent is one structured DPCS telemetry record. Interval
// decisions carry the Listing 1 sampling state (Interval, MissRate,
// CAAT, NAAT); transition events carry the Listing 2 outcome
// (FromLevel/ToLevel, VDDs, Writebacks, Invalidations, PenaltyCycles).
// A decision that caused a transition carries both.
type PolicyEvent struct {
	// Cycle is the simulation cycle at which the event fired.
	Cycle uint64 `json:"cycle"`
	// CacheName identifies the cache ("L1I-A", "L2-B", ...).
	CacheName string `json:"cache"`
	// Decision classifies the event.
	Decision Decision `json:"decision"`
	// Interval is the policy's sampling window in accesses (decision
	// events only).
	Interval uint64 `json:"interval,omitempty"`
	// MissRate is the window's observed miss rate.
	MissRate float64 `json:"miss_rate,omitempty"`
	// CAAT is the estimated current average access time for the window.
	CAAT float64 `json:"caat,omitempty"`
	// NAAT is the nominal average access time calibrated at the SPCS
	// voltage.
	NAAT float64 `json:"naat,omitempty"`
	// FromLevel and ToLevel are 1-based VDD levels (transition-bearing
	// events only).
	FromLevel int `json:"from_level,omitempty"`
	ToLevel   int `json:"to_level,omitempty"`
	// FromVDD and ToVDD are the corresponding data-array voltages.
	FromVDD float64 `json:"from_vdd,omitempty"`
	ToVDD   float64 `json:"to_vdd,omitempty"`
	// Writebacks and Invalidations count blocks the transition wrote
	// back and invalidated.
	Writebacks    int `json:"writebacks,omitempty"`
	Invalidations int `json:"invalidations,omitempty"`
	// PenaltyCycles is the transition's stall cost.
	PenaltyCycles uint64 `json:"penalty_cycles,omitempty"`
}

// PolicySink receives policy telemetry. Events are delivered by value so
// implementations may retain them without aliasing concerns, and a
// non-recording implementation costs no allocations.
//
// A sink attached to one simulator instance is called from that
// instance's goroutine only; sinks shared across concurrent simulations
// must be safe for concurrent use.
type PolicySink interface {
	Record(ev PolicyEvent)
}

// NopSink discards every event without allocating.
type NopSink struct{}

// Record implements PolicySink.
func (NopSink) Record(PolicyEvent) {}

// Collector accumulates events in memory, for tests and in-process
// rendering (e.g. the pcs-report VDD trajectory section).
type Collector struct {
	Events []PolicyEvent
}

// Record implements PolicySink.
func (c *Collector) Record(ev PolicyEvent) { c.Events = append(c.Events, ev) }

// sinkKey keys the context-attached policy sink.
type sinkKey struct{}

// ContextWithPolicySink attaches a sink to ctx, so campaign kind
// functions (internal/expers) can pick up per-job telemetry the runner
// wires in without threading observability through their parameter
// documents.
func ContextWithPolicySink(ctx context.Context, sink PolicySink) context.Context {
	return context.WithValue(ctx, sinkKey{}, sink)
}

// PolicySinkFromContext returns the attached sink, or nil.
func PolicySinkFromContext(ctx context.Context) PolicySink {
	sink, _ := ctx.Value(sinkKey{}).(PolicySink)
	return sink
}
