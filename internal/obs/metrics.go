package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration happens at wiring time (and
// panics on duplicate or invalid names, like http.ServeMux); observation
// methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	order  []*family
}

// family is one named metric with zero or one label dimension.
type family struct {
	name  string
	help  string
	typ   string // "counter", "gauge", "histogram"
	label string // label dimension name; "" for a single unlabelled series

	mu      sync.Mutex
	series  map[string]any            // label value -> *Counter / *Gauge / *Histogram
	fn      func() float64            // gauge callback, when set
	vecFn   func() map[string]float64 // labelled gauge callback, when set
	buckets []float64                 // histogram upper bounds (ascending, no +Inf)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on duplicates — metric wiring is
// startup code and a silent rename would corrupt dashboards.
func (r *Registry) register(name, help, typ, label string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	f := &family{name: name, help: help, typ: typ, label: label,
		series: make(map[string]any), buckets: buckets}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter is a monotonically increasing integer series.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float series.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket distribution with a sum and count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // len(buckets)+1; last is the +Inf overflow
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.buckets, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the target bucket — the same
// estimate PromQL's histogram_quantile produces from the exposition.
// It returns NaN for an empty histogram, and the last finite bucket
// bound when the target rank falls in the +Inf overflow bucket (there
// is no upper bound to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, bound := range h.buckets {
		inBucket := h.counts[i]
		if float64(cum+inBucket) >= rank && inBucket > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.buckets[i-1]
			}
			frac := (rank - float64(cum)) / float64(inBucket)
			return lower + (bound-lower)*frac
		}
		cum += inBucket
	}
	// Overflow bucket: report the largest finite bound.
	if len(h.buckets) == 0 {
		return math.NaN()
	}
	return h.buckets[len(h.buckets)-1]
}

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", "", nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", "", nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", "", nil)
	f.fn = fn
}

// GaugeVecFunc registers a labelled gauge family whose series are
// computed at scrape time: fn returns label value → gauge value. Used
// for derived views over other families — e.g. the p50/p95/p99
// summary gauges computed from job_duration_seconds histogram buckets.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	if label == "" {
		panic("obs: GaugeVecFunc needs a label name")
	}
	f := r.register(name, help, "gauge", label, nil)
	f.vecFn = fn
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic("obs: CounterVec needs a label name")
	}
	return &CounterVec{f: r.register(name, help, "counter", label, nil)}
}

// With returns (creating on first use) the counter for one label value.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.series[value] = c
	return c
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family. Buckets are upper
// bounds and must be strictly ascending; nil uses DefDurationBuckets.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if label == "" {
		panic("obs: HistogramVec needs a label name")
	}
	if buckets == nil {
		buckets = DefDurationBuckets()
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	return &HistogramVec{f: r.register(name, help, "histogram", label, buckets)}
}

// With returns (creating on first use) the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.series[value]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{buckets: v.f.buckets, counts: make([]uint64, len(v.f.buckets)+1)}
	v.f.series[value] = h
	return h
}

// Quantiles returns each series' q-quantile, keyed by label value —
// the shape GaugeVecFunc consumes.
func (v *HistogramVec) Quantiles(q float64) map[string]float64 {
	v.f.mu.Lock()
	hs := make(map[string]*Histogram, len(v.f.series))
	for k, s := range v.f.series {
		hs[k] = s.(*Histogram)
	}
	v.f.mu.Unlock()
	out := make(map[string]float64, len(hs))
	for k, h := range hs {
		out[k] = h.Quantile(q)
	}
	return out
}

// DefDurationBuckets returns the default seconds-scale latency buckets,
// spanning millisecond jobs through minute-long simulation campaigns.
func DefDurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300}
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition (version 0.0.4): a HELP/TYPE pair per
// family, series sorted by label value, histograms with cumulative
// buckets, a +Inf bucket, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return err
	}
	if f.vecFn != nil {
		vals := f.vecFn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "%s %s\n",
				seriesName(f.name, f.label, k), formatValue(vals[k])); err != nil {
				return err
			}
		}
		return nil
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.mu.Lock()
		s := f.series[k]
		f.mu.Unlock()
		if err := f.writeSeries(w, k, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, labelValue string, s any) error {
	switch v := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, f.label, labelValue), v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, f.label, labelValue), formatValue(v.Value()))
		return err
	case *Histogram:
		v.mu.Lock()
		counts := append([]uint64(nil), v.counts...)
		sum, count := v.sum, v.count
		v.mu.Unlock()
		cum := uint64(0)
		for i, bound := range v.buckets {
			cum += counts[i]
			le := formatValue(bound)
			if _, err := fmt.Fprintf(w, "%s %d\n",
				bucketName(f.name, f.label, labelValue, le), cum); err != nil {
				return err
			}
		}
		cum += counts[len(v.buckets)]
		if _, err := fmt.Fprintf(w, "%s %d\n",
			bucketName(f.name, f.label, labelValue, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n",
			seriesName(f.name+"_sum", f.label, labelValue), formatValue(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n",
			seriesName(f.name+"_count", f.label, labelValue), count)
		return err
	default:
		return fmt.Errorf("obs: unknown series type %T", s)
	}
}

// seriesName renders name plus an optional single label pair.
func seriesName(name, label, value string) string {
	if label == "" {
		return name
	}
	return name + "{" + label + "=" + strconv.Quote(value) + "}"
}

// bucketName renders a histogram bucket series with its le label.
func bucketName(name, label, value, le string) string {
	if label == "" {
		return name + `_bucket{le=` + strconv.Quote(le) + `}`
	}
	return name + "_bucket{" + label + "=" + strconv.Quote(value) + ",le=" + strconv.Quote(le) + "}"
}

// formatValue renders a float compactly ("5" not "5e+00").
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Prometheus accepts Go's 'g'; normalise NaN/Inf spelling.
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.ToLower(s)
}
