package cache

import (
	"math/bits"
	"testing"

	"repro/internal/stats"
)

// refCache is the pre-packing reference implementation — one struct per
// frame, per-way scans — retained verbatim (modulo renames) so the
// differential test below can assert the packed-bitmask cache is
// observationally identical on arbitrary access/fault/invalidate
// sequences.
type refLine struct {
	tag    uint64
	lru    uint64
	valid  bool
	dirty  bool
	faulty bool
}

type refCache struct {
	sets       int
	ways       int
	blockBytes int
	setShift   uint
	setMask    uint64
	lines      []refLine
	lruClock   uint64
	stats      Stats
}

func newRefCache(cfg Config) *refCache {
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockBytes)
	return &refCache{
		sets:       sets,
		ways:       cfg.Assoc,
		blockBytes: cfg.BlockBytes,
		setShift:   uint(bits.Len(uint(cfg.BlockBytes)) - 1),
		setMask:    uint64(sets - 1),
		lines:      make([]refLine, sets*cfg.Assoc),
	}
}

func (c *refCache) indexOf(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & c.setMask), blk >> bits.Len64(c.setMask)
}

func (c *refCache) frame(set, way int) *refLine { return &c.lines[set*c.ways+way] }

func (c *refCache) addrOf(set int, tag uint64) uint64 {
	return (tag<<bits.Len64(c.setMask) | uint64(set)) << c.setShift
}

func (c *refCache) Access(addr uint64, write bool) AccessResult {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	set, tag := c.indexOf(addr)
	c.lruClock++
	for w := 0; w < c.ways; w++ {
		ln := c.frame(set, w)
		if ln.valid && !ln.faulty && ln.tag == tag {
			c.stats.Hits++
			ln.lru = c.lruClock
			if write {
				ln.dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++
	victim := -1
	var oldest uint64
	for w := 0; w < c.ways; w++ {
		ln := c.frame(set, w)
		if ln.faulty {
			continue
		}
		if !ln.valid {
			victim = w
			break
		}
		if victim == -1 || ln.lru < oldest {
			victim = w
			oldest = ln.lru
		}
	}
	if victim == -1 {
		c.stats.Bypasses++
		return AccessResult{Bypass: true}
	}
	res := AccessResult{Fill: true}
	ln := c.frame(set, victim)
	if ln.valid && ln.dirty {
		res.Writeback = true
		res.WritebackAddr = c.addrOf(set, ln.tag)
		c.stats.Writebacks++
	}
	ln.tag = tag
	ln.valid = true
	ln.dirty = write
	ln.lru = c.lruClock
	c.stats.Fills++
	return res
}

func (c *refCache) InvalidateFrame(set, way int) (needWriteback bool, addr uint64) {
	ln := c.frame(set, way)
	needWriteback = ln.valid && ln.dirty
	addr = c.addrOf(set, ln.tag)
	if ln.valid {
		c.stats.Invals++
	}
	ln.valid = false
	ln.dirty = false
	return needWriteback, addr
}

func (c *refCache) SetFaulty(set, way int, faulty bool) {
	ln := c.frame(set, way)
	ln.faulty = faulty
	if faulty {
		ln.valid = false
		ln.dirty = false
	}
}

func (c *refCache) Meta(set, way int) BlockMeta {
	ln := c.frame(set, way)
	return BlockMeta{Valid: ln.valid, Dirty: ln.dirty, Faulty: ln.faulty, Addr: c.addrOf(set, ln.tag)}
}

// TestDifferentialAgainstReference drives the packed cache and the
// reference implementation with one random interleaving of demand
// accesses, fault-bit flips (with the reference transition ordering:
// writeback-check, invalidate, set faulty) and explicit invalidations,
// asserting every access result, writeback address, metadata snapshot
// and the final statistics agree exactly.
func TestDifferentialAgainstReference(t *testing.T) {
	configs := []Config{
		{Name: "d4", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64},
		{Name: "d8", SizeBytes: 64 << 10, Assoc: 8, BlockBytes: 64},
		{Name: "dm", SizeBytes: 8 << 10, Assoc: 1, BlockBytes: 32},
		{Name: "fa", SizeBytes: 2 << 10, Assoc: 32, BlockBytes: 64},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			got := MustNew(cfg)
			want := newRefCache(cfg)
			rng := stats.NewRNG(stats.Derive(0xd1ff, uint64(cfg.Assoc)))
			sets, ways := got.Sets(), got.Ways()
			// Small address space so sets collide and evictions are common.
			span := uint64(sets*ways*cfg.BlockBytes) * 3
			for i := 0; i < 200_000; i++ {
				switch op := rng.Intn(100); {
				case op < 90: // demand access
					addr := uint64(rng.Intn(int(span/8))) * 8
					write := rng.Bool(0.3)
					g, w := got.Access(addr, write), want.Access(addr, write)
					if g != w {
						t.Fatalf("op %d: Access(%#x,%v) = %+v, reference %+v", i, addr, write, g, w)
					}
				case op < 96: // flip one frame's faulty bit, transition-style
					s, w := rng.Intn(sets), rng.Intn(ways)
					faulty := rng.Bool(0.5)
					if faulty {
						gn, ga := got.InvalidateFrame(s, w)
						wn, wa := want.InvalidateFrame(s, w)
						if gn != wn || (gn && ga != wa) {
							t.Fatalf("op %d: InvalidateFrame(%d,%d) = (%v,%#x), reference (%v,%#x)", i, s, w, gn, ga, wn, wa)
						}
					}
					got.SetFaulty(s, w, faulty)
					want.SetFaulty(s, w, faulty)
				default: // explicit invalidation
					s, w := rng.Intn(sets), rng.Intn(ways)
					gn, ga := got.InvalidateFrame(s, w)
					wn, wa := want.InvalidateFrame(s, w)
					if gn != wn || (gn && ga != wa) {
						t.Fatalf("op %d: InvalidateFrame(%d,%d) = (%v,%#x), reference (%v,%#x)", i, s, w, gn, ga, wn, wa)
					}
				}
				if i%10_000 == 0 {
					if err := got.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			if gs, ws := got.Stats(), want.stats; gs != ws {
				t.Fatalf("final stats diverge:\npacked    %+v\nreference %+v", gs, ws)
			}
			for s := 0; s < sets; s++ {
				for w := 0; w < ways; w++ {
					gm, wm := got.Meta(s, w), want.Meta(s, w)
					// Addr is only meaningful when valid: the packed cache
					// and the reference both keep stale tags, but a frame
					// never filled holds tag 0 in each.
					if gm != wm {
						t.Fatalf("meta (%d,%d): packed %+v, reference %+v", s, w, gm, wm)
					}
				}
			}
		})
	}
}

// TestDifferentialLocalityBiased drives both implementations with a
// stream biased toward repeat accesses to the same block — the pattern
// the last-hit memo fast path serves — interleaved with occasional
// faults and invalidations that must drop the memo. The plain random
// test above rarely repeats a block back-to-back, so this closes the
// fast-path coverage gap.
func TestDifferentialLocalityBiased(t *testing.T) {
	cfg := Config{Name: "loc", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64}
	got := MustNew(cfg)
	want := newRefCache(cfg)
	rng := stats.NewRNG(stats.Derive(0x10c, 1))
	sets, ways := got.Sets(), got.Ways()
	span := uint64(sets*ways*cfg.BlockBytes) * 3
	var cur uint64
	for i := 0; i < 300_000; i++ {
		switch op := rng.Intn(100); {
		case op < 70: // touch the current block again (different word)
			addr := cur + uint64(rng.Intn(cfg.BlockBytes/8))*8
			write := rng.Bool(0.3)
			g, w := got.Access(addr, write), want.Access(addr, write)
			if g != w {
				t.Fatalf("op %d: repeat Access(%#x,%v) = %+v, reference %+v", i, addr, write, g, w)
			}
		case op < 94: // move to a new block
			cur = uint64(rng.Intn(int(span/uint64(cfg.BlockBytes)))) * uint64(cfg.BlockBytes)
			write := rng.Bool(0.3)
			g, w := got.Access(cur, write), want.Access(cur, write)
			if g != w {
				t.Fatalf("op %d: Access(%#x,%v) = %+v, reference %+v", i, cur, write, g, w)
			}
		case op < 97: // fault flip, transition-style
			s, w := rng.Intn(sets), rng.Intn(ways)
			faulty := rng.Bool(0.5)
			if faulty {
				gn, ga := got.InvalidateFrame(s, w)
				wn, wa := want.InvalidateFrame(s, w)
				if gn != wn || (gn && ga != wa) {
					t.Fatalf("op %d: InvalidateFrame(%d,%d) diverged", i, s, w)
				}
			}
			got.SetFaulty(s, w, faulty)
			want.SetFaulty(s, w, faulty)
		default: // explicit invalidation
			s, w := rng.Intn(sets), rng.Intn(ways)
			gn, ga := got.InvalidateFrame(s, w)
			wn, wa := want.InvalidateFrame(s, w)
			if gn != wn || (gn && ga != wa) {
				t.Fatalf("op %d: InvalidateFrame(%d,%d) diverged", i, s, w)
			}
		}
		if i%5_000 == 0 {
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if gs, ws := got.Stats(), want.stats; gs != ws {
		t.Fatalf("final stats diverge:\npacked    %+v\nreference %+v", gs, ws)
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			if gm, wm := got.Meta(s, w), want.Meta(s, w); gm != wm {
				t.Fatalf("meta (%d,%d): packed %+v, reference %+v", s, w, gm, wm)
			}
		}
	}
}

// TestAccessZeroAllocs pins the hot-path allocation contract: a demand
// access (hit or miss with eviction) performs no heap allocation.
func TestAccessZeroAllocs(t *testing.T) {
	c := MustNew(Config{Name: "alloc", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64})
	rng := stats.NewRNG(7)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 16))
	}
	i := 0
	avg := testing.AllocsPerRun(10_000, func() {
		c.Access(addrs[i%len(addrs)], i%3 == 0)
		i++
	})
	if avg != 0 {
		t.Fatalf("Access allocates %v allocs/op, want 0", avg)
	}
}
