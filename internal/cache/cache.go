// Package cache implements a functional set-associative write-back,
// write-allocate cache with true LRU replacement and the per-block
// metadata the power/capacity-scaling mechanism needs: Valid, Dirty and
// Faulty bits. Faulty blocks never hit and are never chosen for fill
// (the paper's correctness requirements); if every way of a set is
// faulty the access bypasses the cache (the design-time voltage
// selection makes this astronomically rare, but the model stays safe).
//
// The cache is purely functional/structural: latencies and energies are
// accounted by the callers (internal/cpusim and internal/core), which
// also drive voltage transitions by manipulating the Faulty bits through
// the metadata accessors.
//
// Internally the per-frame metadata is packed for the access hot path:
// the Valid/Dirty/Faulty bits of one set live in per-set uint64 way
// bitmasks (hence Assoc ≤ 64), and tags and LRU stamps are flat slices
// indexed once per access. Hit probing walks only the usable ways via
// bits.TrailingZeros64 over valid&^faulty, in ascending way order —
// identical outcomes to a per-way scan, observed by the differential
// test against the retained reference implementation.
package cache

import (
	"fmt"
	"math/bits"
)

// Stats accumulates access statistics.
type Stats struct {
	Accesses   uint64 // total demand accesses
	Hits       uint64
	Misses     uint64
	Reads      uint64
	Writes     uint64
	Writebacks uint64 // dirty evictions pushed to the next level
	Fills      uint64 // blocks allocated
	Bypasses   uint64 // accesses that found no usable frame
	Invals     uint64 // blocks invalidated (transitions etc.)
}

// MissRate returns misses per access, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns the difference s - t, field-wise; used for interval stats.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - t.Accesses,
		Hits:       s.Hits - t.Hits,
		Misses:     s.Misses - t.Misses,
		Reads:      s.Reads - t.Reads,
		Writes:     s.Writes - t.Writes,
		Writebacks: s.Writebacks - t.Writebacks,
		Fills:      s.Fills - t.Fills,
		Bypasses:   s.Bypasses - t.Bypasses,
		Invals:     s.Invals - t.Invals,
	}
}

// Cache is one level of set-associative cache.
type Cache struct {
	name       string
	sets       int
	ways       int
	blockBytes int
	setShift   uint // log2(blockBytes)
	setBits    uint // log2(sets)
	setMask    uint64
	waysMask   uint64 // low `ways` bits set

	// Per-frame state, flat sets*ways row-major by set.
	tags []uint64
	lru  []uint64 // larger = more recently used

	// Per-set way bitmasks: bit w of valid[s] is frame (s,w)'s Valid bit.
	valid  []uint64
	dirty  []uint64
	faulty []uint64

	lruClock uint64
	stats    Stats

	// Last-hit memo: the block number and frame location of the most
	// recently touched (hit or filled) frame. A repeat access to the
	// same block skips the set probe entirely and applies the hit
	// effects directly — sequential streams touch a 64 B block eight
	// times in a row, so this is the common case. The memo frame is by
	// construction valid and non-faulty; InvalidateFrame and SetFaulty
	// (the only external mutators of frame state) drop the memo.
	lastBlk uint64
	lastIdx int
	lastSet int
	lastBit uint64
	lastOK  bool
}

// Config describes a cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
}

// New builds a cache. Sizes must be powers of two and associativity at
// most 64 (one uint64 way bitmask per set).
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cache: %s: non-positive geometry", cfg.Name)
	}
	if cfg.Assoc > 64 {
		return nil, fmt.Errorf("cache: %s: associativity %d exceeds 64", cfg.Name, cfg.Assoc)
	}
	if cfg.SizeBytes%(cfg.Assoc*cfg.BlockBytes) != 0 {
		return nil, fmt.Errorf("cache: %s: size %d not divisible by assoc*block", cfg.Name, cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockBytes)
	for _, v := range []int{cfg.BlockBytes, sets} {
		if v&(v-1) != 0 {
			return nil, fmt.Errorf("cache: %s: %d is not a power of two", cfg.Name, v)
		}
	}
	return &Cache{
		name:       cfg.Name,
		sets:       sets,
		ways:       cfg.Assoc,
		blockBytes: cfg.BlockBytes,
		setShift:   uint(bits.Len(uint(cfg.BlockBytes)) - 1),
		setBits:    uint(bits.Len(uint(sets)) - 1),
		setMask:    uint64(sets - 1),
		waysMask:   ^uint64(0) >> (64 - uint(cfg.Assoc)),
		tags:       make([]uint64, sets*cfg.Assoc),
		lru:        make([]uint64, sets*cfg.Assoc),
		valid:      make([]uint64, sets),
		dirty:      make([]uint64, sets),
		faulty:     make([]uint64, sets),
	}, nil
}

// MustNew is New that panics on error, for tests and fixed configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// BlockBytes returns the block size.
func (c *Cache) BlockBytes() int { return c.blockBytes }

// NumBlocks returns sets*ways.
func (c *Cache) NumBlocks() int { return c.sets * c.ways }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Accesses returns the demand-access count alone, without copying the
// whole Stats struct. The DPCS quiescence check polls it once per
// access, so it must stay inlinable.
func (c *Cache) Accesses() uint64 { return c.stats.Accesses }

// ResetStats zeroes the statistics (contents are untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset returns the cache to the state New constructs, reusing the
// packed metadata slices so arena-style callers (internal/cpusim's
// simulation arena) can recycle one allocation across consecutive
// campaign cells. Only the per-set Valid/Dirty/Faulty bitmasks, the
// statistics, the LRU clock and the last-hit memo are cleared; the tag
// and LRU-stamp slices keep their stale contents, which is
// observationally identical to fresh zeroed slices: a frame's tag is
// only ever read while its Valid bit is set (hit probe, writeback of a
// valid victim), and LRU stamps are only compared when every available
// way is valid — both states are reachable only after the frame was
// (re)written post-Reset. Victim selection prefers the lowest-numbered
// invalid way, so the first fills after Reset land exactly where they
// would in a new cache.
func (c *Cache) Reset() {
	clear(c.valid)
	clear(c.dirty)
	clear(c.faulty)
	c.lruClock = 0
	c.stats = Stats{}
	c.lastBlk = 0
	c.lastIdx = 0
	c.lastSet = 0
	c.lastBit = 0
	c.lastOK = false
}

// indexOf splits an address into set index and tag.
func (c *Cache) indexOf(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & c.setMask), blk >> c.setBits
}

// BlockIndex returns the flat block index of (set, way), the key used by
// the fault map.
func (c *Cache) BlockIndex(set, way int) int { return set*c.ways + way }

// checkFrame bounds-checks (set, way) for the metadata accessors; the
// access hot path indexes the packed slices directly instead.
func (c *Cache) checkFrame(set, way int) {
	if set < 0 || set >= c.sets || way < 0 || way >= c.ways {
		panic(fmt.Sprintf("cache: %s: frame (%d,%d) out of %dx%d", c.name, set, way, c.sets, c.ways))
	}
}

// AccessResult describes the outcome of one access.
type AccessResult struct {
	// Hit is true when the block was present (and non-faulty).
	Hit bool
	// Bypass is true when the access missed and no usable frame existed
	// (all ways faulty); the block was not allocated.
	Bypass bool
	// Writeback is true when a dirty victim was evicted; WritebackAddr
	// is its block-aligned address, to be written to the next level.
	Writeback     bool
	WritebackAddr uint64
	// Fill is true when the block was allocated (every non-bypass miss).
	Fill bool
}

// Access performs one demand access (write=true for stores). On a miss
// the block is allocated (write-allocate) into the LRU non-faulty way,
// evicting and possibly writing back the victim.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	// Repeat access to the memoized block: identical observable effects
	// to the probe-loop hit in accessSlow, with the set/tag lookup
	// skipped. The slow path is outlined so this wrapper stays within
	// the inlining budget — sequential streams touch a block many times
	// in a row, and the call overhead would otherwise dominate the hit.
	if c.FastHit(addr, write) {
		return AccessResult{Hit: true}
	}
	return c.AccessFull(addr, write)
}

// FastHit applies the memoized-hit path when addr repeats the most
// recently touched block, returning whether it handled the access. Its
// effects are identical to the probe-loop hit in accessSlow. It is
// exported (and kept within the inlining budget) so simulator inner
// loops can take the hit path without the AccessResult return-value
// traffic of Access; calling Access directly remains equivalent.
func (c *Cache) FastHit(addr uint64, write bool) bool {
	if !c.lastOK || addr>>c.setShift != c.lastBlk {
		return false
	}
	c.stats.Accesses++
	c.stats.Hits++
	if write {
		c.stats.Writes++
		c.dirty[c.lastSet] |= c.lastBit
	} else {
		c.stats.Reads++
	}
	c.lruClock++
	c.lru[c.lastIdx] = c.lruClock
	return true
}

// AccessFull is the full probe/miss path of Access. Callers that have
// already tried FastHit (simulator inner loops) call it directly to
// skip the wrapper; Access(addr, w) ≡ FastHit(addr, w) ? hit :
// AccessFull(addr, w), and AccessFull alone is also a complete,
// correct access — the fast path is purely an optimization.
func (c *Cache) AccessFull(addr uint64, write bool) AccessResult {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	set, tag := c.indexOf(addr)
	c.lruClock++
	base := set * c.ways

	// Hit check: only valid non-faulty ways can hit, which is exactly
	// the valid&^faulty bitmask (Faulty implies not Valid by invariant;
	// the mask keeps the exclusion explicit).
	for m := c.valid[set] &^ c.faulty[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			c.stats.Hits++
			c.lru[base+w] = c.lruClock
			if write {
				c.dirty[set] |= 1 << uint(w)
			}
			c.lastBlk = addr >> c.setShift
			c.lastIdx = base + w
			c.lastSet = set
			c.lastBit = 1 << uint(w)
			c.lastOK = true
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++

	// Victim selection: LRU among non-faulty ways, preferring the
	// lowest-numbered invalid one.
	avail := c.waysMask &^ c.faulty[set]
	if avail == 0 {
		c.stats.Bypasses++
		return AccessResult{Bypass: true}
	}
	var victim int
	if inv := avail &^ c.valid[set]; inv != 0 {
		victim = bits.TrailingZeros64(inv)
	} else {
		victim = -1
		var oldest uint64
		for m := avail; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if victim == -1 || c.lru[base+w] < oldest {
				victim = w
				oldest = c.lru[base+w]
			}
		}
	}

	res := AccessResult{Fill: true}
	vbit := uint64(1) << uint(victim)
	if c.valid[set]&c.dirty[set]&vbit != 0 {
		res.Writeback = true
		res.WritebackAddr = c.addrOf(set, c.tags[base+victim])
		c.stats.Writebacks++
	}
	c.tags[base+victim] = tag
	c.valid[set] |= vbit
	if write {
		c.dirty[set] |= vbit
	} else {
		c.dirty[set] &^= vbit
	}
	c.lru[base+victim] = c.lruClock
	c.stats.Fills++
	c.lastBlk = addr >> c.setShift
	c.lastIdx = base + victim
	c.lastSet = set
	c.lastBit = vbit
	c.lastOK = true
	return res
}

// addrOf reconstructs the block-aligned address of (set, tag).
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag<<c.setBits | uint64(set)) << c.setShift
}

// findWay locates the valid, non-faulty way holding tag in set, or -1.
func (c *Cache) findWay(set int, tag uint64) int {
	base := set * c.ways
	for m := c.valid[set] &^ c.faulty[set]; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			return w
		}
	}
	return -1
}

// FindFrame locates the valid, non-faulty frame holding addr, if any,
// without touching LRU state or statistics. Coherence controllers use it
// to invalidate remote copies.
func (c *Cache) FindFrame(addr uint64) (set, way int, ok bool) {
	s, tag := c.indexOf(addr)
	if w := c.findWay(s, tag); w >= 0 {
		return s, w, true
	}
	return 0, 0, false
}

// Probe reports whether addr is present (valid, non-faulty) without
// touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.indexOf(addr)
	return c.findWay(set, tag) >= 0
}

// BlockMeta is a read-only snapshot of one frame's metadata.
type BlockMeta struct {
	Valid  bool
	Dirty  bool
	Faulty bool
	Addr   uint64 // block-aligned address, meaningful when Valid
}

// Meta returns the metadata snapshot of frame (set, way).
func (c *Cache) Meta(set, way int) BlockMeta {
	c.checkFrame(set, way)
	bit := uint64(1) << uint(way)
	return BlockMeta{
		Valid:  c.valid[set]&bit != 0,
		Dirty:  c.dirty[set]&bit != 0,
		Faulty: c.faulty[set]&bit != 0,
		Addr:   c.addrOf(set, c.tags[set*c.ways+way]),
	}
}

// InvalidateFrame clears Valid and Dirty of frame (set, way), returning
// whether a writeback is needed (it was valid and dirty). The caller is
// responsible for pushing the writeback to the next level first.
func (c *Cache) InvalidateFrame(set, way int) (needWriteback bool, addr uint64) {
	c.checkFrame(set, way)
	bit := uint64(1) << uint(way)
	needWriteback = c.valid[set]&c.dirty[set]&bit != 0
	addr = c.addrOf(set, c.tags[set*c.ways+way])
	if c.valid[set]&bit != 0 {
		c.stats.Invals++
	}
	c.valid[set] &^= bit
	c.dirty[set] &^= bit
	c.lastOK = false
	return needWriteback, addr
}

// SetFaulty sets or clears the Faulty bit of frame (set, way). Setting
// Faulty on a valid frame clears Valid (the paper: "any block that has
// Faulty set has Valid cleared"); the caller must have handled any
// needed writeback via InvalidateFrame first.
func (c *Cache) SetFaulty(set, way int, faulty bool) {
	c.checkFrame(set, way)
	bit := uint64(1) << uint(way)
	if faulty {
		c.faulty[set] |= bit
		c.valid[set] &^= bit
		c.dirty[set] &^= bit
	} else {
		c.faulty[set] &^= bit
	}
	c.lastOK = false
}

// FaultyCount returns the number of frames currently marked faulty.
func (c *Cache) FaultyCount() int {
	n := 0
	for _, m := range c.faulty {
		n += bits.OnesCount64(m)
	}
	return n
}

// ValidCount returns the number of valid frames.
func (c *Cache) ValidCount() int {
	n := 0
	for _, m := range c.valid {
		n += bits.OnesCount64(m)
	}
	return n
}

// FaultyMask returns the faulty-way bitmask of one set (bit w set ⇔
// frame (set,w) faulty). Voltage-transition code uses it to find
// changed blocks without probing every frame.
func (c *Cache) FaultyMask(set int) uint64 {
	if set < 0 || set >= c.sets {
		panic(fmt.Sprintf("cache: %s: set %d out of %d", c.name, set, c.sets))
	}
	return c.faulty[set]
}

// FlushAll writes back and invalidates every valid frame, invoking sink
// for each dirty block. Used at end-of-simulation accounting.
func (c *Cache) FlushAll(sink func(addr uint64)) {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if need, addr := c.InvalidateFrame(s, w); need && sink != nil {
				sink(addr)
			}
		}
	}
}

// CheckInvariants validates internal consistency: faulty frames must be
// invalid, and no set may hold two valid frames with the same tag.
// It returns the first violation found, or nil.
func (c *Cache) CheckInvariants() error {
	if c.lastOK {
		set := int(c.lastBlk & c.setMask)
		way := c.lastIdx - set*c.ways
		if set != c.lastSet || way < 0 || way >= c.ways || c.lastBit != 1<<uint(way) {
			return fmt.Errorf("cache: %s: memo location inconsistent: blk %#x idx %d set %d bit %#x",
				c.name, c.lastBlk, c.lastIdx, c.lastSet, c.lastBit)
		}
		if c.valid[set]&c.lastBit == 0 || c.faulty[set]&c.lastBit != 0 {
			return fmt.Errorf("cache: %s: memo points at invalid or faulty frame (%d,%d)", c.name, set, way)
		}
		if c.tags[c.lastIdx] != c.lastBlk>>c.setBits {
			return fmt.Errorf("cache: %s: memo tag mismatch at (%d,%d)", c.name, set, way)
		}
	}
	for s := 0; s < c.sets; s++ {
		if bad := c.faulty[s] & c.valid[s]; bad != 0 {
			w := bits.TrailingZeros64(bad)
			return fmt.Errorf("cache: %s: set %d way %d is faulty yet valid", c.name, s, w)
		}
		// Duplicate-tag scan over the packed tag slice: for each valid
		// way, compare against the valid ways after it. Associativity is
		// ≤ 64, so the quadratic scan is cheap and allocation-free.
		base := s * c.ways
		for m := c.valid[s]; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			for m2 := m & (m - 1); m2 != 0; m2 &= m2 - 1 {
				w2 := bits.TrailingZeros64(m2)
				if c.tags[base+w] == c.tags[base+w2] {
					return fmt.Errorf("cache: %s: set %d ways %d and %d share tag %#x",
						c.name, s, w, w2, c.tags[base+w])
				}
			}
		}
	}
	return nil
}
