// Package cache implements a functional set-associative write-back,
// write-allocate cache with true LRU replacement and the per-block
// metadata the power/capacity-scaling mechanism needs: Valid, Dirty and
// Faulty bits. Faulty blocks never hit and are never chosen for fill
// (the paper's correctness requirements); if every way of a set is
// faulty the access bypasses the cache (the design-time voltage
// selection makes this astronomically rare, but the model stays safe).
//
// The cache is purely functional/structural: latencies and energies are
// accounted by the callers (internal/cpusim and internal/core), which
// also drive voltage transitions by manipulating the Faulty bits through
// the metadata accessors.
package cache

import (
	"fmt"
	"math/bits"
)

// line is the metadata of one cache block frame.
type line struct {
	tag    uint64
	lru    uint64 // larger = more recently used
	valid  bool
	dirty  bool
	faulty bool
}

// Stats accumulates access statistics.
type Stats struct {
	Accesses   uint64 // total demand accesses
	Hits       uint64
	Misses     uint64
	Reads      uint64
	Writes     uint64
	Writebacks uint64 // dirty evictions pushed to the next level
	Fills      uint64 // blocks allocated
	Bypasses   uint64 // accesses that found no usable frame
	Invals     uint64 // blocks invalidated (transitions etc.)
}

// MissRate returns misses per access, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns the difference s - t, field-wise; used for interval stats.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Accesses:   s.Accesses - t.Accesses,
		Hits:       s.Hits - t.Hits,
		Misses:     s.Misses - t.Misses,
		Reads:      s.Reads - t.Reads,
		Writes:     s.Writes - t.Writes,
		Writebacks: s.Writebacks - t.Writebacks,
		Fills:      s.Fills - t.Fills,
		Bypasses:   s.Bypasses - t.Bypasses,
		Invals:     s.Invals - t.Invals,
	}
}

// Cache is one level of set-associative cache.
type Cache struct {
	name       string
	sets       int
	ways       int
	blockBytes int
	setShift   uint // log2(blockBytes)
	setMask    uint64
	lines      []line // sets*ways, row-major by set
	lruClock   uint64
	stats      Stats
}

// Config describes a cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
}

// New builds a cache. Sizes must be powers of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("cache: %s: non-positive geometry", cfg.Name)
	}
	if cfg.SizeBytes%(cfg.Assoc*cfg.BlockBytes) != 0 {
		return nil, fmt.Errorf("cache: %s: size %d not divisible by assoc*block", cfg.Name, cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockBytes)
	for _, v := range []int{cfg.BlockBytes, sets} {
		if v&(v-1) != 0 {
			return nil, fmt.Errorf("cache: %s: %d is not a power of two", cfg.Name, v)
		}
	}
	return &Cache{
		name:       cfg.Name,
		sets:       sets,
		ways:       cfg.Assoc,
		blockBytes: cfg.BlockBytes,
		setShift:   uint(bits.Len(uint(cfg.BlockBytes)) - 1),
		setMask:    uint64(sets - 1),
		lines:      make([]line, sets*cfg.Assoc),
	}, nil
}

// MustNew is New that panics on error, for tests and fixed configs.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// BlockBytes returns the block size.
func (c *Cache) BlockBytes() int { return c.blockBytes }

// NumBlocks returns sets*ways.
func (c *Cache) NumBlocks() int { return c.sets * c.ways }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (contents are untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// indexOf splits an address into set index and tag.
func (c *Cache) indexOf(addr uint64) (set int, tag uint64) {
	blk := addr >> c.setShift
	return int(blk & c.setMask), blk >> bits.Len64(c.setMask)
}

// BlockIndex returns the flat block index of (set, way), the key used by
// the fault map.
func (c *Cache) BlockIndex(set, way int) int { return set*c.ways + way }

// frame returns the line at (set, way).
func (c *Cache) frame(set, way int) *line {
	if set < 0 || set >= c.sets || way < 0 || way >= c.ways {
		panic(fmt.Sprintf("cache: %s: frame (%d,%d) out of %dx%d", c.name, set, way, c.sets, c.ways))
	}
	return &c.lines[set*c.ways+way]
}

// AccessResult describes the outcome of one access.
type AccessResult struct {
	// Hit is true when the block was present (and non-faulty).
	Hit bool
	// Bypass is true when the access missed and no usable frame existed
	// (all ways faulty); the block was not allocated.
	Bypass bool
	// Writeback is true when a dirty victim was evicted; WritebackAddr
	// is its block-aligned address, to be written to the next level.
	Writeback     bool
	WritebackAddr uint64
	// Fill is true when the block was allocated (every non-bypass miss).
	Fill bool
}

// Access performs one demand access (write=true for stores). On a miss
// the block is allocated (write-allocate) into the LRU non-faulty way,
// evicting and possibly writing back the victim.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	set, tag := c.indexOf(addr)
	c.lruClock++

	// Hit check: faulty blocks can never hit (they are never valid; the
	// check is kept explicit as a safety invariant).
	for w := 0; w < c.ways; w++ {
		ln := c.frame(set, w)
		if ln.valid && !ln.faulty && ln.tag == tag {
			c.stats.Hits++
			ln.lru = c.lruClock
			if write {
				ln.dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++

	// Victim selection: LRU among non-faulty ways, preferring invalid.
	victim := -1
	var oldest uint64
	for w := 0; w < c.ways; w++ {
		ln := c.frame(set, w)
		if ln.faulty {
			continue
		}
		if !ln.valid {
			victim = w
			break
		}
		if victim == -1 || ln.lru < oldest {
			victim = w
			oldest = ln.lru
		}
	}
	if victim == -1 {
		c.stats.Bypasses++
		return AccessResult{Bypass: true}
	}

	res := AccessResult{Fill: true}
	ln := c.frame(set, victim)
	if ln.valid && ln.dirty {
		res.Writeback = true
		res.WritebackAddr = c.addrOf(set, ln.tag)
		c.stats.Writebacks++
	}
	ln.tag = tag
	ln.valid = true
	ln.dirty = write
	ln.lru = c.lruClock
	c.stats.Fills++
	return res
}

// addrOf reconstructs the block-aligned address of (set, tag).
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag<<bits.Len64(c.setMask) | uint64(set)) << c.setShift
}

// FindFrame locates the valid, non-faulty frame holding addr, if any,
// without touching LRU state or statistics. Coherence controllers use it
// to invalidate remote copies.
func (c *Cache) FindFrame(addr uint64) (set, way int, ok bool) {
	s, tag := c.indexOf(addr)
	for w := 0; w < c.ways; w++ {
		ln := c.frame(s, w)
		if ln.valid && !ln.faulty && ln.tag == tag {
			return s, w, true
		}
	}
	return 0, 0, false
}

// Probe reports whether addr is present (valid, non-faulty) without
// touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.indexOf(addr)
	for w := 0; w < c.ways; w++ {
		ln := c.frame(set, w)
		if ln.valid && !ln.faulty && ln.tag == tag {
			return true
		}
	}
	return false
}

// BlockMeta is a read-only snapshot of one frame's metadata.
type BlockMeta struct {
	Valid  bool
	Dirty  bool
	Faulty bool
	Addr   uint64 // block-aligned address, meaningful when Valid
}

// Meta returns the metadata snapshot of frame (set, way).
func (c *Cache) Meta(set, way int) BlockMeta {
	ln := c.frame(set, way)
	return BlockMeta{
		Valid:  ln.valid,
		Dirty:  ln.dirty,
		Faulty: ln.faulty,
		Addr:   c.addrOf(set, ln.tag),
	}
}

// InvalidateFrame clears Valid and Dirty of frame (set, way), returning
// whether a writeback is needed (it was valid and dirty). The caller is
// responsible for pushing the writeback to the next level first.
func (c *Cache) InvalidateFrame(set, way int) (needWriteback bool, addr uint64) {
	ln := c.frame(set, way)
	needWriteback = ln.valid && ln.dirty
	addr = c.addrOf(set, ln.tag)
	if ln.valid {
		c.stats.Invals++
	}
	ln.valid = false
	ln.dirty = false
	return needWriteback, addr
}

// SetFaulty sets or clears the Faulty bit of frame (set, way). Setting
// Faulty on a valid frame clears Valid (the paper: "any block that has
// Faulty set has Valid cleared"); the caller must have handled any
// needed writeback via InvalidateFrame first.
func (c *Cache) SetFaulty(set, way int, faulty bool) {
	ln := c.frame(set, way)
	ln.faulty = faulty
	if faulty {
		ln.valid = false
		ln.dirty = false
	}
}

// FaultyCount returns the number of frames currently marked faulty.
func (c *Cache) FaultyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].faulty {
			n++
		}
	}
	return n
}

// ValidCount returns the number of valid frames.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// FlushAll writes back and invalidates every valid frame, invoking sink
// for each dirty block. Used at end-of-simulation accounting.
func (c *Cache) FlushAll(sink func(addr uint64)) {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			if need, addr := c.InvalidateFrame(s, w); need && sink != nil {
				sink(addr)
			}
		}
	}
}

// CheckInvariants validates internal consistency: faulty frames must be
// invalid, and no set may hold two valid frames with the same tag.
// It returns the first violation found, or nil.
func (c *Cache) CheckInvariants() error {
	for s := 0; s < c.sets; s++ {
		seen := make(map[uint64]int, c.ways)
		for w := 0; w < c.ways; w++ {
			ln := c.frame(s, w)
			if ln.faulty && ln.valid {
				return fmt.Errorf("cache: %s: set %d way %d is faulty yet valid", c.name, s, w)
			}
			if ln.valid {
				if prev, dup := seen[ln.tag]; dup {
					return fmt.Errorf("cache: %s: set %d ways %d and %d share tag %#x",
						c.name, s, prev, w, ln.tag)
				}
				seen[ln.tag] = w
			}
		}
	}
	return nil
}
