package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: 4096, Assoc: 4, BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	c := smallCache(t)
	if c.Sets() != 16 || c.Ways() != 4 || c.BlockBytes() != 64 || c.NumBlocks() != 64 {
		t.Fatalf("geometry: %d sets %d ways", c.Sets(), c.Ways())
	}
	if c.Name() != "t" {
		t.Error("name")
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []Config{
		{Name: "a", SizeBytes: 0, Assoc: 4, BlockBytes: 64},
		{Name: "b", SizeBytes: 4096, Assoc: 0, BlockBytes: 64},
		{Name: "c", SizeBytes: 4096, Assoc: 4, BlockBytes: 48},
		{Name: "d", SizeBytes: 4097, Assoc: 4, BlockBytes: 64},
		{Name: "e", SizeBytes: 4096 * 3, Assoc: 4, BlockBytes: 64}, // 48 sets
	}
	for _, cfg := range bads {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %s accepted", cfg.Name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(t)
	r := c.Access(0x1000, false)
	if r.Hit || !r.Fill || r.Bypass {
		t.Fatalf("first access: %+v", r)
	}
	r = c.Access(0x1000, false)
	if !r.Hit {
		t.Fatalf("second access missed")
	}
	r = c.Access(0x1004, false) // same block, different word
	if !r.Hit {
		t.Fatalf("same-block access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache(t) // 16 sets: addresses 64*16 apart share a set
	setStride := uint64(64 * 16)
	// Fill set 0 with 4 blocks.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	// Touch block 0 to make block 1 the LRU.
	c.Access(0, false)
	// A 5th block must evict block 1.
	c.Access(4*setStride, false)
	if !c.Probe(0) {
		t.Error("MRU block evicted")
	}
	if c.Probe(1 * setStride) {
		t.Error("LRU block survived")
	}
	for _, i := range []uint64{2, 3, 4} {
		if !c.Probe(i * setStride) {
			t.Errorf("block %d missing", i)
		}
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := smallCache(t)
	setStride := uint64(64 * 16)
	c.Access(0, true) // dirty
	for i := uint64(1); i <= 3; i++ {
		c.Access(i*setStride, false)
	}
	r := c.Access(4*setStride, false) // evicts block 0
	if !r.Writeback {
		t.Fatalf("no writeback: %+v", r)
	}
	if r.WritebackAddr != 0 {
		t.Fatalf("writeback addr %#x", r.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writeback count %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := smallCache(t)
	setStride := uint64(64 * 16)
	for i := uint64(0); i <= 4; i++ {
		if r := c.Access(i*setStride, false); r.Writeback {
			t.Fatalf("clean eviction wrote back")
		}
	}
}

func TestWriteMakesDirty(t *testing.T) {
	c := smallCache(t)
	c.Access(0x40, false) // clean fill
	c.Access(0x40, true)  // write hit: dirty
	need, addr := c.InvalidateFrame(1, 0)
	if !need || addr != 0x40 {
		t.Fatalf("invalidate: need=%v addr=%#x", need, addr)
	}
}

func TestFaultyFrameNeverHitsOrFills(t *testing.T) {
	c := smallCache(t)
	// Mark all but way 3 of set 0 faulty.
	for w := 0; w < 3; w++ {
		c.SetFaulty(0, w, true)
	}
	setStride := uint64(64 * 16)
	c.Access(0, false)
	c.Access(setStride, false) // evicts the only healthy way
	if c.Probe(0) {
		t.Error("evicted block still present")
	}
	if !c.Probe(setStride) {
		t.Error("new block not in the healthy way")
	}
	meta := c.Meta(0, 3)
	if !meta.Valid {
		t.Error("healthy way not used")
	}
	for w := 0; w < 3; w++ {
		if c.Meta(0, w).Valid {
			t.Errorf("faulty way %d became valid", w)
		}
	}
}

func TestAllWaysFaultyBypasses(t *testing.T) {
	c := smallCache(t)
	for w := 0; w < 4; w++ {
		c.SetFaulty(0, w, true)
	}
	r := c.Access(0, false)
	if !r.Bypass || r.Fill || r.Hit {
		t.Fatalf("access to dead set: %+v", r)
	}
	s := c.Stats()
	if s.Bypasses != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSetFaultyInvalidates(t *testing.T) {
	c := smallCache(t)
	c.Access(0, true)
	// Find the frame holding address 0.
	var way = -1
	for w := 0; w < 4; w++ {
		if m := c.Meta(0, w); m.Valid && m.Addr == 0 {
			way = w
		}
	}
	if way < 0 {
		t.Fatal("fill not found")
	}
	c.SetFaulty(0, way, true)
	m := c.Meta(0, way)
	if m.Valid || m.Dirty || !m.Faulty {
		t.Fatalf("faulty frame metadata: %+v", m)
	}
	if c.Probe(0) {
		t.Error("faulty frame still hits")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClearFaultyRestoresFrame(t *testing.T) {
	c := smallCache(t)
	c.SetFaulty(0, 0, true)
	c.SetFaulty(0, 0, false)
	if c.FaultyCount() != 0 {
		t.Error("faulty count after clear")
	}
	// The frame is usable again.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64*16, false)
	}
	if c.ValidCount() != 4 {
		t.Errorf("valid count %d", c.ValidCount())
	}
}

func TestAddressReconstruction(t *testing.T) {
	c := smallCache(t)
	if err := quick.Check(func(raw uint32) bool {
		addr := uint64(raw) &^ 63 // block aligned
		c.Access(addr, false)
		set, _ := int(addr>>6)&15, addr
		for w := 0; w < 4; w++ {
			m := c.Meta(set, w)
			if m.Valid && m.Addr == addr {
				return true
			}
		}
		return false
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAll(t *testing.T) {
	c := smallCache(t)
	c.Access(0x000, true)
	c.Access(0x400, true)
	c.Access(0x800, false)
	var flushed []uint64
	c.FlushAll(func(a uint64) { flushed = append(flushed, a) })
	if len(flushed) != 2 {
		t.Fatalf("flushed %d dirty blocks, want 2", len(flushed))
	}
	if c.ValidCount() != 0 {
		t.Error("valid frames after flush")
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, Writebacks: 2}
	b := Stats{Accesses: 4, Hits: 2, Misses: 2, Writebacks: 1}
	d := a.Sub(b)
	if d.Accesses != 6 || d.Hits != 4 || d.Misses != 2 || d.Writebacks != 1 {
		t.Fatalf("diff: %+v", d)
	}
	if d.MissRate() != 2.0/6.0 {
		t.Errorf("miss rate %v", d.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate")
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	c := smallCache(t)
	rng := stats.NewRNG(77)
	for i := 0; i < 50000; i++ {
		switch rng.Intn(10) {
		case 0:
			c.SetFaulty(rng.Intn(16), rng.Intn(4), rng.Bool(0.5))
		case 1:
			c.InvalidateFrame(rng.Intn(16), rng.Intn(4))
		default:
			c.Access(uint64(rng.Intn(1<<16))&^63, rng.Bool(0.3))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Fatalf("hits+misses != accesses: %+v", s)
	}
}

func TestHitRatioReflectsWorkingSet(t *testing.T) {
	// A working set that fits must converge to ~100% hits; one that
	// doesn't fit (uniform random) must miss often.
	c := smallCache(t) // 4 KB
	rng := stats.NewRNG(5)
	for i := 0; i < 20000; i++ {
		c.Access(uint64(rng.Intn(4096))&^63, false) // fits exactly
	}
	if mr := c.Stats().MissRate(); mr > 0.05 {
		t.Errorf("fitting working set miss rate %v", mr)
	}
	c2 := smallCache(t)
	rng2 := stats.NewRNG(6)
	for i := 0; i < 20000; i++ {
		c2.Access(uint64(rng2.Intn(1<<20))&^63, false) // 1 MB set
	}
	if mr := c2.Stats().MissRate(); mr < 0.5 {
		t.Errorf("overflowing working set miss rate %v", mr)
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false)
	s := c.Stats()
	c.Probe(0)
	c.Probe(0x9999999)
	if c.Stats() != s {
		t.Error("Probe changed statistics")
	}
}

func TestFramePanics(t *testing.T) {
	c := smallCache(t)
	for _, f := range []func(){
		func() { c.Meta(16, 0) },
		func() { c.Meta(0, 4) },
		func() { c.Meta(-1, 0) },
		func() { c.SetFaulty(0, -1, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{Name: "bad"})
}

func TestDirectMappedCache(t *testing.T) {
	c := MustNew(Config{Name: "dm", SizeBytes: 1024, Assoc: 1, BlockBytes: 64})
	if c.Sets() != 16 || c.Ways() != 1 {
		t.Fatalf("dm geometry %d/%d", c.Sets(), c.Ways())
	}
	c.Access(0, false)
	c.Access(1024, false) // conflicts with 0
	if c.Probe(0) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestFullyAssociativeCache(t *testing.T) {
	c := MustNew(Config{Name: "fa", SizeBytes: 1024, Assoc: 16, BlockBytes: 64})
	if c.Sets() != 1 {
		t.Fatalf("fa sets %d", c.Sets())
	}
	for i := uint64(0); i < 16; i++ {
		c.Access(i*64, false)
	}
	for i := uint64(0); i < 16; i++ {
		if !c.Probe(i * 64) {
			t.Errorf("block %d evicted from fully associative", i)
		}
	}
}

func TestResetStatsAndBlockIndex(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if !c.Probe(0) {
		t.Error("ResetStats disturbed contents")
	}
	if c.BlockIndex(3, 2) != 3*4+2 {
		t.Errorf("BlockIndex = %d", c.BlockIndex(3, 2))
	}
}

func TestFindFrame(t *testing.T) {
	c := smallCache(t)
	c.Access(0x5440, true)
	set, way, ok := c.FindFrame(0x5440)
	if !ok {
		t.Fatal("frame not found")
	}
	if m := c.Meta(set, way); !m.Valid || m.Addr != 0x5440 {
		t.Fatalf("found wrong frame: %+v", m)
	}
	if _, _, ok := c.FindFrame(0xDEAD0000); ok {
		t.Error("absent block found")
	}
	// Faulty frames are not findable.
	c.SetFaulty(set, way, true)
	if _, _, ok := c.FindFrame(0x5440); ok {
		t.Error("faulty frame found")
	}
}
