// Package faultmodel contains the analytical fault mathematics of the
// paper: given a per-bit error rate BER(VDD), it derives block failure
// probabilities, expected effective cache capacity, the set-yield
// constraint (every set must keep at least one non-faulty block, because
// the proposed mechanism has no set-wise data redundancy), overall cache
// yield, and the two design-time voltage solvers:
//
//   - VDD2, the SPCS voltage: the lowest allowed voltage at which the
//     expected proportion of non-faulty blocks is at least 99 % (and the
//     set constraint holds), and
//   - VDD1, the DPCS floor: the lowest allowed voltage at which the
//     expected cache yield (probability that every set has at least one
//     non-faulty block) is at least the target (99 % in the paper).
//
// All voltages are evaluated on a 10 mV grid, like the paper's CACTI and
// fault-model sweeps.
package faultmodel

import (
	"fmt"
	"math"

	"repro/internal/sram"
)

// VStep is the voltage evaluation granularity (10 mV, as in the paper).
const VStep = 0.01

// Geometry describes the fault-relevant shape of a cache: how many sets
// and ways it has and how many data bits each block holds. Tag bits are
// excluded: the tag array stays at nominal VDD and is assumed never
// faulty, per the paper's mechanism.
type Geometry struct {
	Sets      int // number of sets
	Ways      int // associativity
	BlockBits int // data bits per block (block size * 8)
}

// Blocks returns the total number of data blocks.
func (g Geometry) Blocks() int { return g.Sets * g.Ways }

// Validate checks the geometry for sanity.
func (g Geometry) Validate() error {
	if g.Sets <= 0 || g.Ways <= 0 || g.BlockBits <= 0 {
		return fmt.Errorf("faultmodel: invalid geometry %+v", g)
	}
	return nil
}

// Model couples a geometry with a BER model.
type Model struct {
	Geom Geometry
	BER  sram.BERModel
}

// New constructs a Model, validating the geometry.
func New(geom Geometry, ber sram.BERModel) (*Model, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if ber == nil {
		return nil, fmt.Errorf("faultmodel: nil BER model")
	}
	return &Model{Geom: geom, BER: ber}, nil
}

// PBlockFail returns the probability that a single block is faulty at the
// given voltage: 1 - (1-ber)^bits, computed in log space for accuracy at
// tiny BERs.
func (m *Model) PBlockFail(vdd float64) float64 {
	return PFailBits(m.BER.BER(vdd), m.Geom.BlockBits)
}

// PFailBits returns 1-(1-ber)^bits computed stably.
func PFailBits(ber float64, bits int) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	// log1p for numerical stability: (1-ber)^bits = exp(bits*log1p(-ber)).
	return -math.Expm1(float64(bits) * math.Log1p(-ber))
}

// ExpectedCapacity returns the expected proportion of non-faulty blocks
// at the given voltage: 1 - PBlockFail(v).
func (m *Model) ExpectedCapacity(vdd float64) float64 {
	return 1 - m.PBlockFail(vdd)
}

// PSetFail returns the probability that one set has *all* ways faulty at
// the given voltage (the event the mechanism cannot tolerate).
func (m *Model) PSetFail(vdd float64) float64 {
	p := m.PBlockFail(vdd)
	return math.Pow(p, float64(m.Geom.Ways))
}

// Yield returns the probability that every set keeps at least one
// non-faulty block at the given voltage:
//
//	yield = (1 - pBlock^ways)^sets
//
// computed in log space for stability with many sets.
func (m *Model) Yield(vdd float64) float64 {
	ps := m.PSetFail(vdd)
	if ps <= 0 {
		return 1
	}
	if ps >= 1 {
		return 0
	}
	return math.Exp(float64(m.Geom.Sets) * math.Log1p(-ps))
}

// grid returns the 10 mV voltage grid over [lo, hi], inclusive of both
// endpoints, from low to high.
func grid(lo, hi float64) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	var vs []float64
	// Snap to the grid to keep voltages printable (0.54, not 0.5400000001).
	steps := int(math.Round((hi - lo) / VStep))
	for i := 0; i <= steps; i++ {
		vs = append(vs, math.Round((lo+float64(i)*VStep)*100)/100)
	}
	return vs
}

// MinVDDForCapacity returns the lowest grid voltage in [lo, hi] at which
// the expected block-survival proportion is at least capTarget AND the
// yield constraint yieldTarget is met (the SPCS VDD2 rule: "likely to
// have at least 99 % effective block capacity", also subject to the
// all-sets constraint). ok is false if no grid voltage qualifies.
func (m *Model) MinVDDForCapacity(capTarget, yieldTarget, lo, hi float64) (vdd float64, ok bool) {
	for _, v := range grid(lo, hi) {
		if m.ExpectedCapacity(v) >= capTarget && m.Yield(v) >= yieldTarget {
			return v, true
		}
	}
	return 0, false
}

// MinVDDForYield returns the lowest grid voltage in [lo, hi] at which the
// cache yield is at least yieldTarget (the DPCS VDD1 rule). ok is false
// if no grid voltage qualifies.
func (m *Model) MinVDDForYield(yieldTarget, lo, hi float64) (vdd float64, ok bool) {
	for _, v := range grid(lo, hi) {
		if m.Yield(v) >= yieldTarget {
			return v, true
		}
	}
	return 0, false
}

// VDD1 capacity floor: the minimum expected block-survival proportion at
// the DPCS floor voltage VDD1. The paper notes that "reducing voltage
// further than VDD1 is not likely to be useful, as the yield quickly
// drops off and the power savings have diminishing returns". The budget
// of tolerable block loss scales with associativity: losing a block from
// a 16-way set removes 6 % of its frames, from a 4-way set 25 %, so
// highly associative caches degrade far more gracefully — this is also
// why the paper's larger, more associative Config B reaches lower VDD1
// voltages (Table 2), saves more energy under DPCS, and pays its larger
// worst-case performance overhead (4.4 % vs 2.6 %).
const (
	// VDD1LossPerWay is the tolerated expected block-loss fraction per
	// way of associativity at VDD1.
	VDD1LossPerWay = 0.007
	// VDD1MaxLoss caps the tolerated block loss regardless of ways.
	VDD1MaxLoss = 0.10
)

// VDD1CapacityFloor returns the minimum expected capacity at VDD1 for a
// cache with the given associativity.
func VDD1CapacityFloor(ways int) float64 {
	loss := VDD1LossPerWay * float64(ways)
	if loss > VDD1MaxLoss {
		loss = VDD1MaxLoss
	}
	return 1 - loss
}

// VDDLevels computes the paper's three-level voltage set for a cache:
// VDD3 = nominal, VDD2 = SPCS voltage (99 % capacity + yield), VDD1 =
// yield-constrained minimum (99 % yield, subject to the capacity floor
// capFloor — see VDD1CapacityFloorL1/LLC). It returns an error if the
// constraints cannot be met on the grid.
func (m *Model) VDDLevels(nominal, lo, capFloor float64) (vdd1, vdd2, vdd3 float64, err error) {
	vdd3 = nominal
	vdd2, ok := m.MinVDDForCapacity(0.99, 0.99, lo, nominal)
	if !ok {
		return 0, 0, 0, fmt.Errorf("faultmodel: no voltage in [%.2f,%.2f] meets the 99%% capacity target", lo, nominal)
	}
	vdd1, ok = m.MinVDDForCapacity(capFloor, 0.99, lo, nominal)
	if !ok {
		return 0, 0, 0, fmt.Errorf("faultmodel: no voltage in [%.2f,%.2f] meets the 99%% yield target", lo, nominal)
	}
	if vdd1 > vdd2 {
		// The capacity constraint is strictly stronger than the yield
		// constraint for all practical geometries; guard anyway.
		vdd1 = vdd2
	}
	return vdd1, vdd2, vdd3, nil
}

// CapacityCurve returns (voltage, expected capacity) samples over the
// grid [lo, hi], low to high. Used by Fig. 3b.
func (m *Model) CapacityCurve(lo, hi float64) (vs, caps []float64) {
	for _, v := range grid(lo, hi) {
		vs = append(vs, v)
		caps = append(caps, m.ExpectedCapacity(v))
	}
	return vs, caps
}

// YieldCurve returns (voltage, yield) samples over the grid [lo, hi].
// Used by Fig. 3d.
func (m *Model) YieldCurve(lo, hi float64) (vs, ys []float64) {
	for _, v := range grid(lo, hi) {
		vs = append(vs, v)
		ys = append(ys, m.Yield(v))
	}
	return vs, ys
}

// Grid exposes the shared 10 mV voltage grid to other packages so every
// curve in the reproduction is sampled at identical points.
func Grid(lo, hi float64) []float64 { return grid(lo, hi) }
