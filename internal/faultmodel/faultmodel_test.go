package faultmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sram"
)

func l1AGeom() Geometry { return Geometry{Sets: 256, Ways: 4, BlockBits: 512} }

func mustModel(t *testing.T, g Geometry) *Model {
	t.Helper()
	m, err := New(g, sram.NewWangCalhounBER())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGeometryValidate(t *testing.T) {
	if err := l1AGeom().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Geometry{
		{Sets: 0, Ways: 4, BlockBits: 512},
		{Sets: 256, Ways: 0, BlockBits: 512},
		{Sets: 256, Ways: 4, BlockBits: 0},
	}
	for i, g := range bads {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d validated", i)
		}
	}
	if l1AGeom().Blocks() != 1024 {
		t.Errorf("Blocks = %d", l1AGeom().Blocks())
	}
}

func TestNewRejectsNilBER(t *testing.T) {
	if _, err := New(l1AGeom(), nil); err == nil {
		t.Error("nil BER accepted")
	}
}

func TestPFailBits(t *testing.T) {
	if got := PFailBits(0, 512); got != 0 {
		t.Errorf("PFailBits(0) = %v", got)
	}
	if got := PFailBits(1, 512); got != 1 {
		t.Errorf("PFailBits(1) = %v", got)
	}
	// Small-BER approximation: p ~ n*ber.
	ber := 1e-9
	got := PFailBits(ber, 512)
	want := 512 * ber
	if math.Abs(got-want)/want > 1e-4 {
		t.Errorf("PFailBits small = %v, want ~%v", got, want)
	}
	// Exact check against direct power for moderate BER.
	ber = 0.01
	exact := 1 - math.Pow(1-ber, 512)
	if got := PFailBits(ber, 512); math.Abs(got-exact) > 1e-12 {
		t.Errorf("PFailBits(0.01,512) = %v, want %v", got, exact)
	}
}

func TestBlockFailMonotoneInVoltage(t *testing.T) {
	m := mustModel(t, l1AGeom())
	prev := 1.0
	for _, v := range Grid(0.30, 1.00) {
		p := m.PBlockFail(v)
		if p > prev+1e-15 {
			t.Fatalf("block fail rose with voltage at %v", v)
		}
		prev = p
	}
}

func TestCapacityComplementsBlockFail(t *testing.T) {
	m := mustModel(t, l1AGeom())
	if err := quick.Check(func(raw uint8) bool {
		v := 0.3 + float64(raw%71)/100
		return math.Abs(m.ExpectedCapacity(v)+m.PBlockFail(v)-1) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYieldFormula(t *testing.T) {
	m := mustModel(t, l1AGeom())
	v := 0.50
	p := m.PBlockFail(v)
	want := math.Pow(1-math.Pow(p, 4), 256)
	if got := m.Yield(v); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("yield %v, want %v", got, want)
	}
}

func TestYieldBounds(t *testing.T) {
	m := mustModel(t, l1AGeom())
	for _, v := range Grid(0.30, 1.00) {
		y := m.Yield(v)
		if y < 0 || y > 1 {
			t.Fatalf("yield %v out of [0,1] at %v V", y, v)
		}
	}
	if y := m.Yield(1.0); y < 0.999 {
		t.Errorf("nominal yield %v", y)
	}
}

func TestYieldImprovesWithAssociativity(t *testing.T) {
	// Same total blocks, higher associativity: yield must not decrease.
	low := mustModel(t, Geometry{Sets: 512, Ways: 2, BlockBits: 512})
	high := mustModel(t, Geometry{Sets: 128, Ways: 8, BlockBits: 512})
	for _, v := range []float64{0.40, 0.50, 0.60} {
		if high.Yield(v) < low.Yield(v) {
			t.Errorf("8-way yield %v < 2-way yield %v at %v V",
				high.Yield(v), low.Yield(v), v)
		}
	}
}

func TestMinVDDLowerForHigherAssoc(t *testing.T) {
	// The paper's Sec 3.1 claim: higher associativity naturally results
	// in lower min-VDD (at the same cache size).
	low := mustModel(t, Geometry{Sets: 512, Ways: 2, BlockBits: 512})
	high := mustModel(t, Geometry{Sets: 64, Ways: 16, BlockBits: 512})
	vLow, ok1 := low.MinVDDForYield(0.99, 0.30, 1.00)
	vHigh, ok2 := high.MinVDDForYield(0.99, 0.30, 1.00)
	if !ok1 || !ok2 {
		t.Fatal("min VDD not found")
	}
	if vHigh >= vLow {
		t.Errorf("16-way min VDD %v not below 2-way %v", vHigh, vLow)
	}
}

func TestMinVDDLowerForSmallerBlocks(t *testing.T) {
	big := mustModel(t, Geometry{Sets: 256, Ways: 4, BlockBits: 1024})
	small := mustModel(t, Geometry{Sets: 512, Ways: 4, BlockBits: 512})
	vBig, _ := big.MinVDDForYield(0.99, 0.30, 1.00)
	vSmall, _ := small.MinVDDForYield(0.99, 0.30, 1.00)
	if vSmall > vBig {
		t.Errorf("smaller blocks min VDD %v above larger %v", vSmall, vBig)
	}
}

func TestVDDLevelsOrdering(t *testing.T) {
	m := mustModel(t, l1AGeom())
	v1, v2, v3, err := m.VDDLevels(1.0, 0.30, VDD1CapacityFloor(4))
	if err != nil {
		t.Fatal(err)
	}
	if !(v1 <= v2 && v2 < v3) {
		t.Fatalf("levels not ordered: %v %v %v", v1, v2, v3)
	}
	if v3 != 1.0 {
		t.Errorf("VDD3 = %v", v3)
	}
	// VDD2 must honour the 99% capacity rule.
	if m.ExpectedCapacity(v2) < 0.99 {
		t.Errorf("capacity at VDD2 %v = %v", v2, m.ExpectedCapacity(v2))
	}
	if v2 > 0.30 && m.ExpectedCapacity(v2-VStep) >= 0.99 && m.Yield(v2-VStep) >= 0.99 {
		t.Errorf("VDD2 %v not minimal", v2)
	}
	// VDD1 must honour the yield and capacity-floor rules.
	if m.Yield(v1) < 0.99 {
		t.Errorf("yield at VDD1 %v = %v", v1, m.Yield(v1))
	}
	if m.ExpectedCapacity(v1) < VDD1CapacityFloor(4) {
		t.Errorf("capacity at VDD1 %v = %v", v1, m.ExpectedCapacity(v1))
	}
}

func TestVDDLevelsMatchPaperTable2Shape(t *testing.T) {
	// Config A: L1 64KB 4-way, L2 2MB 8-way. The paper's Table 2 has the
	// SPCS voltage near 0.7 V for both, with the L2 VDD1 above 0.5 V.
	l1 := mustModel(t, Geometry{Sets: 256, Ways: 4, BlockBits: 512})
	l2 := mustModel(t, Geometry{Sets: 4096, Ways: 8, BlockBits: 512})
	_, v2l1, _, err := l1.VDDLevels(1.0, 0.30, VDD1CapacityFloor(4))
	if err != nil {
		t.Fatal(err)
	}
	if v2l1 < 0.65 || v2l1 > 0.75 {
		t.Errorf("L1 SPCS voltage %v outside Table 2's ~0.7", v2l1)
	}
	v1l2, v2l2, _, err := l2.VDDLevels(1.0, 0.30, VDD1CapacityFloor(8))
	if err != nil {
		t.Fatal(err)
	}
	if v2l2 < 0.65 || v2l2 > 0.75 {
		t.Errorf("L2 SPCS voltage %v outside ~0.7", v2l2)
	}
	if v1l2 < 0.50 || v1l2 >= v2l2 {
		t.Errorf("L2 VDD1 %v implausible", v1l2)
	}
}

func TestVDD1CapacityFloor(t *testing.T) {
	if f := VDD1CapacityFloor(4); math.Abs(f-(1-4*VDD1LossPerWay)) > 1e-12 {
		t.Errorf("floor(4) = %v", f)
	}
	if f := VDD1CapacityFloor(100); f != 1-VDD1MaxLoss {
		t.Errorf("floor cap not applied: %v", f)
	}
	if VDD1CapacityFloor(16) >= VDD1CapacityFloor(4) {
		t.Error("floor should loosen with associativity")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0.30, 1.00)
	if len(g) != 71 {
		t.Fatalf("grid has %d points", len(g))
	}
	if g[0] != 0.30 || g[len(g)-1] != 1.00 {
		t.Fatalf("grid endpoints %v..%v", g[0], g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if math.Abs(g[i]-g[i-1]-VStep) > 1e-9 {
			t.Fatalf("grid step at %d: %v", i, g[i]-g[i-1])
		}
	}
	// Reversed bounds still work.
	if len(Grid(1.00, 0.30)) != 71 {
		t.Error("reversed grid wrong")
	}
}

func TestCurves(t *testing.T) {
	m := mustModel(t, l1AGeom())
	vs, caps := m.CapacityCurve(0.30, 1.00)
	if len(vs) != len(caps) || len(vs) != 71 {
		t.Fatalf("capacity curve lengths %d/%d", len(vs), len(caps))
	}
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1]-1e-12 {
			t.Fatalf("capacity not monotone at %v", vs[i])
		}
	}
	_, ys := m.YieldCurve(0.30, 1.00)
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]-1e-12 {
			t.Fatalf("yield not monotone at index %d", i)
		}
	}
}

func TestMinVDDForCapacityRespectsBothConstraints(t *testing.T) {
	m := mustModel(t, l1AGeom())
	v, ok := m.MinVDDForCapacity(0.99, 0.99, 0.30, 1.00)
	if !ok {
		t.Fatal("not found")
	}
	if m.ExpectedCapacity(v) < 0.99 || m.Yield(v) < 0.99 {
		t.Errorf("constraints violated at %v", v)
	}
}

func TestVDDLevelsErrorsWhenImpossible(t *testing.T) {
	m := mustModel(t, l1AGeom())
	// A range that tops out far below any feasible voltage.
	if _, _, _, err := m.VDDLevels(0.35, 0.30, 0.99); err == nil {
		t.Error("infeasible range accepted")
	}
}
