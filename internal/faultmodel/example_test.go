package faultmodel_test

import (
	"fmt"

	"repro/internal/faultmodel"
	"repro/internal/sram"
)

// Example derives the paper's design-time voltage plan for the Config-A
// L1 cache from the SRAM fault model.
func Example() {
	geom := faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
	m, err := faultmodel.New(geom, sram.NewWangCalhounBER())
	if err != nil {
		panic(err)
	}
	v1, v2, v3, err := m.VDDLevels(1.00, 0.30, faultmodel.VDD1CapacityFloor(geom.Ways))
	if err != nil {
		panic(err)
	}
	fmt.Printf("VDD1=%.2f VDD2=%.2f VDD3=%.2f\n", v1, v2, v3)
	fmt.Printf("expected capacity at VDD2: %.4f\n", m.ExpectedCapacity(v2))
	// Output:
	// VDD1=0.62 VDD2=0.71 VDD3=1.00
	// expected capacity at VDD2: 0.9925
}
