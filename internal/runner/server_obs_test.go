package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsExposition scrapes /metrics and validates the exposition
// format strictly: HELP/TYPE pairs, no duplicates, correct counter
// types, and well-formed cumulative histograms.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)

	// Idle scrape must already be valid (all families render at zero).
	idle := scrapeMetrics(t, ts)
	if err := obs.ValidateExposition(strings.NewReader(idle)); err != nil {
		t.Fatalf("idle exposition invalid: %v\n%s", err, idle)
	}

	var jobs []string
	for i := 0; i < 4; i++ {
		jobs = append(jobs, fmt.Sprintf(`{"kind":"square","params":{"x":%d}}`, i))
	}
	id := submit(t, ts, fmt.Sprintf(`{"name":"m","seed":1,"jobs":[%s]}`, strings.Join(jobs, ",")))
	waitForState(t, ts, id, "done")

	out := scrapeMetrics(t, ts)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	// The satellite fix: submission and terminal-job totals are counters,
	// not gauges.
	for _, want := range []string{
		"# TYPE pcs_campaigns_total counter",
		"# TYPE pcs_jobs_done counter",
		"# TYPE pcs_jobs_failed counter",
		"# TYPE pcs_campaigns_running gauge",
		"# TYPE pcs_job_duration_seconds histogram",
		"# TYPE pcs_job_errors_total counter",
		"pcs_campaigns_total 1",
		"pcs_jobs_done 4",
		`pcs_job_duration_seconds_count{kind="square"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsCountFailures checks the per-kind error counter and that
// failed jobs still land in the duration histogram.
func TestMetricsCountFailures(t *testing.T) {
	srv := NewServer(testRegistry(t), ServerOptions{DefaultWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	id := submit(t, ts, `{"name":"f","seed":1,"jobs":[{"kind":"fail"},{"kind":"fail"},{"kind":"drawsum","params":{"draws":10}}]}`)
	waitForState(t, ts, id, "done")

	out := scrapeMetrics(t, ts)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"pcs_jobs_failed 2",
		`pcs_job_errors_total{kind="fail"} 2`,
		`pcs_job_duration_seconds_count{kind="fail"} 2`,
		`pcs_job_duration_seconds_count{kind="drawsum"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestServerEventsStream reads the NDJSON lifecycle stream of a
// campaign: it must open with campaign_started, contain a started and a
// terminal event per job, and close with campaign_finished.
func TestServerEventsStream(t *testing.T) {
	_, ts := newTestServer(t)
	id := submit(t, ts, `{"name":"ev","seed":3,"jobs":[{"kind":"square","params":{"x":1}},{"kind":"square","params":{"x":2}}]}`)

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var events []obs.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev obs.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d: %v", len(events)+1, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events", len(events))
	}
	if events[0].Type != obs.EventCampaignStarted {
		t.Fatalf("first event %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != obs.EventCampaignFinished || last.State != "done" {
		t.Fatalf("last event %+v", last)
	}
	started, done := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case obs.EventJobStarted:
			started++
		case obs.EventJobDone:
			done++
			if ev.DurationMS < 0 {
				t.Errorf("negative job duration: %+v", ev)
			}
		}
	}
	if started != 2 || done != 2 {
		t.Fatalf("started=%d done=%d, want 2/2", started, done)
	}
	// 404 for unknown campaigns.
	resp2, err := http.Get(ts.URL + "/campaigns/c999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign events status %d", resp2.StatusCode)
	}
}

// TestServerLogging checks the structured log captures submission and
// completion with the campaign id.
func TestServerLogging(t *testing.T) {
	var buf bytes.Buffer
	srv := NewServer(serverRegistry(t), ServerOptions{
		DefaultWorkers: 2,
		Logger:         slog.New(slog.NewTextHandler(&syncWriter{w: &buf}, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := submit(t, ts, `{"name":"logged","seed":1,"jobs":[{"kind":"square","params":{"x":2}}]}`)
	waitForState(t, ts, id, "done")
	srv.Close()
	out := buf.String()
	for _, want := range []string{"campaign submitted", "campaign finished", "id=" + id, "state=done"} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

// syncWriter serialises concurrent slog writes from campaign goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
