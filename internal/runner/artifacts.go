package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Artifact layout (in the spirit of a paper run_all.sh workflow): each
// campaign execution owns one directory, normally runs/<timestamp>/,
// holding
//
//	manifest.json   what ran: campaign name, seed, job specs, workers
//	results.jsonl   one JobResult per line, in job-index order
//	summary.json    terminal counts and elapsed time
//
// results.jsonl is written from the deterministic per-job records only,
// so two executions of the same campaign+seed produce byte-identical
// files regardless of worker count.

// NewRunDir creates and returns a fresh timestamped run directory under
// root (e.g. "runs"). Collisions get a numeric suffix.
func NewRunDir(root string) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405Z")
	for i := 0; ; i++ {
		name := stamp
		if i > 0 {
			name = fmt.Sprintf("%s-%d", stamp, i)
		}
		dir := filepath.Join(root, name)
		err := os.MkdirAll(root, 0o755)
		if err != nil {
			return "", fmt.Errorf("runner: create run root: %w", err)
		}
		err = os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("runner: create run dir: %w", err)
		}
	}
}

// manifest is the at-start record of what a campaign execution will do.
type manifest struct {
	Campaign string    `json:"campaign"`
	Seed     uint64    `json:"seed"`
	Jobs     int       `json:"jobs"`
	Workers  int       `json:"workers"`
	Created  time.Time `json:"created"`
	Specs    []Spec    `json:"specs"`
}

type artifactStore struct {
	dir string
}

// newArtifactStore creates dir if needed and writes the manifest.
func newArtifactStore(dir string, c Campaign, workers int) (*artifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: artifact dir: %w", err)
	}
	m := manifest{
		Campaign: c.Name,
		Seed:     c.Seed,
		Jobs:     len(c.Jobs),
		Workers:  workers,
		Created:  time.Now().UTC(),
		Specs:    c.Jobs,
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), m); err != nil {
		return nil, err
	}
	return &artifactStore{dir: dir}, nil
}

// finish writes results.jsonl (index order) and summary.json.
func (a *artifactStore) finish(results []JobResult, res *CampaignResult) error {
	f, err := os.Create(filepath.Join(a.dir, "results.jsonl"))
	if err != nil {
		return fmt.Errorf("runner: results.jsonl: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			f.Close()
			return fmt.Errorf("runner: encode result %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("runner: flush results.jsonl: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runner: close results.jsonl: %w", err)
	}
	summary := struct {
		Done      int           `json:"done"`
		Failed    int           `json:"failed"`
		Cancelled int           `json:"cancelled"`
		Elapsed   time.Duration `json:"elapsed_ns"`
	}{res.Done, res.Failed, res.Cancelled, res.Elapsed}
	return writeJSON(filepath.Join(a.dir, "summary.json"), summary)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: %s: %w", filepath.Base(path), err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("runner: encode %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
