package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Artifact layout (in the spirit of a paper run_all.sh workflow): each
// campaign execution owns one directory, normally runs/<timestamp>/,
// holding
//
//	manifest.json   what ran: campaign name, seed, job specs, workers
//	results.jsonl   one JobResult per line, in job-index order
//	summary.json    terminal counts and elapsed time
//	timeline.jsonl  one obs.JobEvent per line, in wall-clock order
//
// results.jsonl is written from the deterministic per-job records only,
// so two executions of the same campaign+seed produce byte-identical
// files regardless of worker count. timeline.jsonl is the deliberate
// exception: it records when each job started and finished, so it varies
// run to run and is never an input to result comparison.

// NewRunDir creates and returns a fresh timestamped run directory under
// root (e.g. "runs"). Collisions get a numeric suffix.
func NewRunDir(root string) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405Z")
	for i := 0; ; i++ {
		name := stamp
		if i > 0 {
			name = fmt.Sprintf("%s-%d", stamp, i)
		}
		dir := filepath.Join(root, name)
		err := os.MkdirAll(root, 0o755)
		if err != nil {
			return "", fmt.Errorf("runner: create run root: %w", err)
		}
		err = os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("runner: create run dir: %w", err)
		}
	}
}

// manifest is the at-start record of what a campaign execution will do.
type manifest struct {
	Campaign string    `json:"campaign"`
	Seed     uint64    `json:"seed"`
	Jobs     int       `json:"jobs"`
	Workers  int       `json:"workers"`
	Created  time.Time `json:"created"`
	Specs    []Spec    `json:"specs"`
}

type artifactStore struct {
	dir      string
	campaign string

	// Timeline state. Workers emit events concurrently; the mutex keeps
	// lines whole and the start time anchors the elapsed offsets.
	tmu   sync.Mutex
	tf    *os.File
	tw    *bufio.Writer
	tenc  *json.Encoder
	terr  error
	start time.Time
}

// newArtifactStore creates dir if needed, writes the manifest and opens
// the timeline.
func newArtifactStore(dir string, c Campaign, workers int) (*artifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: artifact dir: %w", err)
	}
	m := manifest{
		Campaign: c.Name,
		Seed:     c.Seed,
		Jobs:     len(c.Jobs),
		Workers:  workers,
		Created:  time.Now().UTC(),
		Specs:    c.Jobs,
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), m); err != nil {
		return nil, err
	}
	tf, err := os.Create(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("runner: timeline.jsonl: %w", err)
	}
	a := &artifactStore{dir: dir, campaign: c.Name, tf: tf, start: time.Now()}
	a.tw = bufio.NewWriter(tf)
	a.tenc = json.NewEncoder(a.tw)
	a.event(obs.JobEvent{Type: obs.EventCampaignStarted, Campaign: c.Name, Index: -1})
	return a, nil
}

// event appends one timeline line, stamping the elapsed offset. Write
// errors latch and surface from finish.
func (a *artifactStore) event(ev obs.JobEvent) {
	a.tmu.Lock()
	defer a.tmu.Unlock()
	if a.terr != nil {
		return
	}
	ev.ElapsedMS = float64(time.Since(a.start).Microseconds()) / 1e3
	if err := a.tenc.Encode(&ev); err != nil {
		a.terr = fmt.Errorf("runner: encode timeline event: %w", err)
	}
}

// jobStarted records a worker picking up job i.
func (a *artifactStore) jobStarted(i int, spec Spec) {
	a.event(obs.JobEvent{Type: obs.EventJobStarted, Index: i, Kind: spec.Kind, Name: spec.Name})
}

// jobFinished records a job reaching a terminal state.
func (a *artifactStore) jobFinished(r JobResult) {
	typ := obs.EventJobDone
	switch r.Status {
	case StatusFailed:
		typ = obs.EventJobFailed
	case StatusCancelled:
		typ = obs.EventJobCancelled
	}
	a.event(obs.JobEvent{
		Type:       typ,
		Index:      r.Index,
		Kind:       r.Kind,
		Name:       r.Name,
		Error:      r.Error,
		DurationMS: float64(r.Duration.Microseconds()) / 1e3,
	})
}

// closeTimeline writes the closing event and flushes the file.
func (a *artifactStore) closeTimeline(res *CampaignResult) error {
	state := "done"
	if res.Failed > 0 {
		state = "failed"
	}
	if res.Cancelled > 0 {
		state = "cancelled"
	}
	a.event(obs.JobEvent{Type: obs.EventCampaignFinished, Campaign: a.campaign, Index: -1, State: state})
	a.tmu.Lock()
	defer a.tmu.Unlock()
	if err := a.tw.Flush(); err != nil && a.terr == nil {
		a.terr = fmt.Errorf("runner: flush timeline.jsonl: %w", err)
	}
	if err := a.tf.Close(); err != nil && a.terr == nil {
		a.terr = fmt.Errorf("runner: close timeline.jsonl: %w", err)
	}
	return a.terr
}

// finish closes the timeline and writes results.jsonl (index order) and
// summary.json.
func (a *artifactStore) finish(results []JobResult, res *CampaignResult) error {
	if err := a.closeTimeline(res); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(a.dir, "results.jsonl"))
	if err != nil {
		return fmt.Errorf("runner: results.jsonl: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			f.Close()
			return fmt.Errorf("runner: encode result %d: %w", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("runner: flush results.jsonl: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runner: close results.jsonl: %w", err)
	}
	summary := struct {
		Done      int           `json:"done"`
		Failed    int           `json:"failed"`
		Cancelled int           `json:"cancelled"`
		Elapsed   time.Duration `json:"elapsed_ns"`
	}{res.Done, res.Failed, res.Cancelled, res.Elapsed}
	return writeJSON(filepath.Join(a.dir, "summary.json"), summary)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: %s: %w", filepath.Base(path), err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("runner: encode %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
