package runner

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
)

// Artifact layout (in the spirit of a paper run_all.sh workflow): each
// campaign execution owns one directory, normally runs/<timestamp>/,
// holding
//
//	manifest.json   what ran: campaign name, seed, job specs, workers
//	results.jsonl   one JobResult per line, in job-index order
//	summary.json    terminal counts and elapsed time
//	timeline.jsonl  one obs.JobEvent per line, in wall-clock order
//	spans.jsonl     one tracez.Span per line (Options.TraceSpans only)
//	ledger.jsonl    hash-chained digests (see internal/ledger)
//
// results.jsonl is written from the deterministic per-job records only,
// so two executions of the same campaign+seed produce byte-identical
// files regardless of worker count. timeline.jsonl and spans.jsonl are
// the deliberate exceptions: they record when each job started and
// finished (and what ran inside it), so they vary run to run and are
// never an input to result comparison. ledger.jsonl chains a digest of
// every results.jsonl line back to the spec digest, seed and code
// version — and closes over the wall-clock sidecars with whole-file
// digests — so `pcs verify` can prove the directory's integrity after
// the fact.

// NewRunDir creates and returns a fresh timestamped run directory under
// root (e.g. "runs"). Collisions get a numeric suffix.
func NewRunDir(root string) (string, error) {
	stamp := time.Now().UTC().Format("20060102T150405Z")
	for i := 0; ; i++ {
		name := stamp
		if i > 0 {
			name = fmt.Sprintf("%s-%d", stamp, i)
		}
		dir := filepath.Join(root, name)
		err := os.MkdirAll(root, 0o755)
		if err != nil {
			return "", fmt.Errorf("runner: create run root: %w", err)
		}
		err = os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("runner: create run dir: %w", err)
		}
	}
}

// manifest is the at-start record of what a campaign execution will do.
type manifest struct {
	Campaign string    `json:"campaign"`
	Seed     uint64    `json:"seed"`
	Jobs     int       `json:"jobs"`
	Workers  int       `json:"workers"`
	Created  time.Time `json:"created"`
	// Sidecars lists the wall-clock artifacts this run will produce;
	// each is hash-chained into ledger.jsonl at finish.
	Sidecars []string `json:"sidecars,omitempty"`
	Specs    []Spec   `json:"specs"`
}

type artifactStore struct {
	dir      string
	campaign string
	// c, workers, codeVersion feed the ledger's manifest entry.
	c           Campaign
	workers     int
	codeVersion string

	// Timeline state. Workers emit events concurrently; the mutex keeps
	// lines whole and the start time anchors the elapsed offsets.
	tmu   sync.Mutex
	tf    *os.File
	tw    *bufio.Writer
	tenc  *json.Encoder
	terr  error
	start time.Time

	// spans is the spans.jsonl sink, nil unless tracing is enabled.
	spans *tracez.JSONL
	// sidecars names the wall-clock artifacts (in write order) listed
	// in the manifest and hash-chained into the ledger at finish.
	sidecars []string
}

// newArtifactStore creates dir if needed, writes the manifest and opens
// the timeline (and, with tracing, the span sidecar).
func newArtifactStore(dir string, c Campaign, workers int, codeVersion string, traceSpans bool) (*artifactStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: artifact dir: %w", err)
	}
	sidecars := []string{"timeline.jsonl"}
	if traceSpans {
		sidecars = append(sidecars, tracez.FileName)
	}
	m := manifest{
		Campaign: c.Name,
		Seed:     c.Seed,
		Jobs:     len(c.Jobs),
		Workers:  workers,
		Created:  time.Now().UTC(),
		Sidecars: sidecars,
		Specs:    c.Jobs,
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), m); err != nil {
		return nil, err
	}
	tf, err := os.Create(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("runner: timeline.jsonl: %w", err)
	}
	a := &artifactStore{
		dir: dir, campaign: c.Name,
		c: c, workers: workers, codeVersion: codeVersion,
		tf: tf, start: time.Now(),
		sidecars: sidecars,
	}
	a.tw = bufio.NewWriter(tf)
	a.tenc = json.NewEncoder(a.tw)
	if traceSpans {
		a.spans, err = tracez.CreateJSONL(filepath.Join(dir, tracez.FileName))
		if err != nil {
			tf.Close()
			return nil, fmt.Errorf("runner: %s: %w", tracez.FileName, err)
		}
	}
	a.event(obs.JobEvent{Type: obs.EventCampaignStarted, Campaign: c.Name, Index: -1})
	return a, nil
}

// SyncArtifacts flushes and fsyncs the buffered wall-clock sidecars so
// a process killed right after (server drain, cancellation) leaves
// whole lines on disk. Implements ArtifactSyncer.
func (a *artifactStore) SyncArtifacts() error {
	a.tmu.Lock()
	err := a.terr
	if a.tf != nil {
		if ferr := a.tw.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("runner: flush timeline.jsonl: %w", ferr)
		}
		if serr := a.tf.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("runner: fsync timeline.jsonl: %w", serr)
		}
	}
	a.tmu.Unlock()
	if a.spans != nil {
		if serr := a.spans.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// event appends one timeline line, stamping the elapsed offset. Write
// errors latch and surface from finish.
func (a *artifactStore) event(ev obs.JobEvent) {
	a.tmu.Lock()
	defer a.tmu.Unlock()
	if a.terr != nil || a.tf == nil {
		return
	}
	ev.ElapsedMS = float64(time.Since(a.start).Microseconds()) / 1e3
	if err := a.tenc.Encode(&ev); err != nil {
		a.terr = fmt.Errorf("runner: encode timeline event: %w", err)
	}
}

// jobStarted records a worker picking up job i.
func (a *artifactStore) jobStarted(i int, spec Spec) {
	a.event(obs.JobEvent{Type: obs.EventJobStarted, Index: i, Kind: spec.Kind, Name: spec.Name})
}

// jobFinished records a job reaching a terminal state.
func (a *artifactStore) jobFinished(r JobResult) {
	typ := obs.EventJobDone
	switch r.Status {
	case StatusFailed:
		typ = obs.EventJobFailed
	case StatusCancelled:
		typ = obs.EventJobCancelled
	}
	a.event(obs.JobEvent{
		Type:       typ,
		Index:      r.Index,
		Kind:       r.Kind,
		Name:       r.Name,
		Error:      r.Error,
		DurationMS: float64(r.Duration.Microseconds()) / 1e3,
		Cached:     r.Cached,
		Resources:  r.Resources,
	})
}

// closeTimeline writes the closing event and flushes the file.
func (a *artifactStore) closeTimeline(res *CampaignResult) error {
	state := "done"
	if res.Failed > 0 {
		state = "failed"
	}
	if res.Cancelled > 0 {
		state = "cancelled"
	}
	a.event(obs.JobEvent{Type: obs.EventCampaignFinished, Campaign: a.campaign, Index: -1, State: state})
	a.tmu.Lock()
	defer a.tmu.Unlock()
	if err := a.tw.Flush(); err != nil && a.terr == nil {
		a.terr = fmt.Errorf("runner: flush timeline.jsonl: %w", err)
	}
	if err := a.tf.Close(); err != nil && a.terr == nil {
		a.terr = fmt.Errorf("runner: close timeline.jsonl: %w", err)
	}
	// Late SyncArtifacts calls (a drain racing campaign completion)
	// must not flush into a closed file.
	a.tf = nil
	return a.terr
}

// finish closes the timeline and span sidecars, writes results.jsonl
// (index order), summary.json and the hash-chained ledger.jsonl. It
// runs on every campaign exit — including cancellation — so a
// cancelled run still leaves a closed, verifiable chain. The tracer
// (nil when tracing is off) times the bookkeeping itself; note the
// ledger.append span can no longer land in spans.jsonl — the sidecar
// is already hashed by then — so it reaches only live sinks (the
// server's span stream).
func (a *artifactStore) finish(results []JobResult, res *CampaignResult, tracer *tracez.Tracer) error {
	if err := a.closeTimeline(res); err != nil {
		return err
	}
	wspan := tracer.StartRoot("results.write")
	f, err := os.Create(filepath.Join(a.dir, "results.jsonl"))
	if err != nil {
		return fmt.Errorf("runner: results.jsonl: %w", err)
	}
	// json.Marshal + '\n' produces the same bytes json.Encoder.Encode
	// would, and hands us each line for digesting.
	w := bufio.NewWriter(f)
	fileHash := sha256.New()
	lineDigests := make([]string, len(results))
	for i := range results {
		line, err := json.Marshal(&results[i])
		if err != nil {
			f.Close()
			return fmt.Errorf("runner: encode result %d: %w", i, err)
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("runner: write result %d: %w", i, err)
		}
		fileHash.Write(line)
		lineDigests[i] = ledger.LineDigest(line)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("runner: flush results.jsonl: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runner: close results.jsonl: %w", err)
	}
	wspan.SetInt("jobs", int64(len(results)))
	wspan.End()
	summary := struct {
		Done      int           `json:"done"`
		Failed    int           `json:"failed"`
		Cancelled int           `json:"cancelled"`
		Elapsed   time.Duration `json:"elapsed_ns"`
	}{res.Done, res.Failed, res.Cancelled, res.Elapsed}
	if err := writeJSON(filepath.Join(a.dir, "summary.json"), summary); err != nil {
		return err
	}
	// Seal the span sidecar, then digest every sidecar for the ledger.
	if a.spans != nil {
		if err := a.spans.Close(); err != nil {
			return err
		}
	}
	sidecars := make([]ledger.Sidecar, 0, len(a.sidecars))
	for _, name := range a.sidecars {
		sc, err := fileSidecar(a.dir, name)
		if err != nil {
			return err
		}
		sidecars = append(sidecars, sc)
	}
	lspan := tracer.StartRoot("ledger.append")
	err = a.writeLedger(results, res, lineDigests, hex.EncodeToString(fileHash.Sum(nil)), sidecars)
	lspan.SetInt("entries", int64(len(results)+len(sidecars)+2))
	lspan.End()
	return err
}

// fileSidecar digests one run-directory file for its ledger entry.
func fileSidecar(dir, name string) (ledger.Sidecar, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return ledger.Sidecar{}, fmt.Errorf("runner: sidecar %s: %w", name, err)
	}
	sum := sha256.Sum256(data)
	return ledger.Sidecar{
		Name:   name,
		Bytes:  int64(len(data)),
		Digest: hex.EncodeToString(sum[:]),
	}, nil
}

// writeLedger emits the hash chain closing over the campaign's spec
// digest, seed, code version, every result digest and the wall-clock
// sidecar digests.
func (a *artifactStore) writeLedger(results []JobResult, res *CampaignResult, lineDigests []string, resultsDigest string, sidecars []ledger.Sidecar) error {
	specsRaw, err := json.Marshal(a.c.Jobs)
	if err != nil {
		return fmt.Errorf("runner: marshal specs for ledger: %w", err)
	}
	specsDigest, err := ledger.SpecsDigest(specsRaw)
	if err != nil {
		return fmt.Errorf("runner: %w", err)
	}
	f, err := os.Create(filepath.Join(a.dir, ledger.FileName))
	if err != nil {
		return fmt.Errorf("runner: %s: %w", ledger.FileName, err)
	}
	w := bufio.NewWriter(f)
	lw := ledger.NewWriter(w)
	err = lw.Append(ledger.TypeManifest, ledger.Manifest{
		Campaign:    a.c.Name,
		Seed:        a.c.Seed,
		Jobs:        len(a.c.Jobs),
		Workers:     a.workers,
		CodeVersion: a.codeVersion,
		SpecsDigest: specsDigest,
	})
	for i := range results {
		if err != nil {
			break
		}
		r := &results[i]
		err = lw.Append(ledger.TypeResult, ledger.Result{
			Index:  r.Index,
			Kind:   r.Kind,
			Name:   r.Name,
			Seed:   r.Seed,
			Status: string(r.Status),
			Cached: r.Cached,
			Digest: lineDigests[i],
		})
	}
	for _, sc := range sidecars {
		if err != nil {
			break
		}
		err = lw.Append(ledger.TypeSidecar, sc)
	}
	if err == nil {
		err = lw.Append(ledger.TypeSummary, ledger.Summary{
			Done:          res.Done,
			Failed:        res.Failed,
			Cancelled:     res.Cancelled,
			ResultsDigest: resultsDigest,
		})
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("runner: close %s: %w", ledger.FileName, cerr)
	}
	return err
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runner: %s: %w", filepath.Base(path), err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("runner: encode %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
