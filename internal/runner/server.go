package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Server turns the campaign runner into an HTTP job service — the
// pcs-server wire surface:
//
//	POST   /campaigns               submit a campaign, returns its id
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          status, progress and ETA
//	GET    /campaigns/{id}/results  JSONL stream of completed records
//	DELETE /campaigns/{id}          cancel a running campaign
//	GET    /metrics                 Prometheus-style runner gauges
//
// Campaigns execute asynchronously on the server's worker pools; status
// and partial results are available while a campaign runs. All state is
// in memory plus the optional runs/ artifact directory.
type Server struct {
	reg *Registry

	// defaultWorkers sizes pools for submissions that do not specify
	// workers; <= 0 resolves to GOMAXPROCS at submission time.
	defaultWorkers int
	// artifactRoot, when non-empty, gives every campaign a run
	// directory under <artifactRoot>/<id>/.
	artifactRoot string

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // submission order, for listing
	nextID    int
	started   time.Time
}

// ServerOptions configure NewServer.
type ServerOptions struct {
	// DefaultWorkers is used when a submission omits "workers".
	DefaultWorkers int
	// ArtifactRoot, when non-empty, archives every campaign under
	// <ArtifactRoot>/<campaign id>/.
	ArtifactRoot string
}

// campaignState tracks one submitted campaign.
type campaignState struct {
	id       string
	campaign Campaign
	workers  int
	cancel   context.CancelFunc

	mu       sync.Mutex
	state    string // "running", "done", "failed", "cancelled"
	progress Progress
	results  []*JobResult // indexed by job, nil until complete
	started  time.Time
	finished time.Time
}

// NewServer returns a server executing campaigns against reg.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		reg:            reg,
		defaultWorkers: opts.DefaultWorkers,
		artifactRoot:   opts.ArtifactRoot,
		baseCtx:        ctx,
		stop:           cancel,
		campaigns:      make(map[string]*campaignState),
		started:        time.Now(),
	}
}

// Close cancels every running campaign and waits for their workers to
// drain; it is the graceful-shutdown half pcs-server calls after the
// HTTP listener stops accepting requests.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// submitRequest is the POST /campaigns body.
type submitRequest struct {
	Name    string `json:"name"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers,omitempty"`
	Jobs    []Spec `json:"jobs"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "campaign has no jobs")
		return
	}
	for i, spec := range req.Jobs {
		if _, ok := s.reg.Lookup(spec.Kind); !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown kind %q (registered: %v)",
				i, spec.Kind, s.reg.Kinds())
			return
		}
	}
	if s.baseCtx.Err() != nil {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}

	// Resolve the pool size now, mirroring Run, so status and metrics
	// report the actual worker count rather than the raw option.
	workers := req.Workers
	if workers <= 0 {
		workers = s.defaultWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Jobs) {
		workers = len(req.Jobs)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	cs := &campaignState{
		campaign: Campaign{Name: req.Name, Seed: req.Seed, Jobs: req.Jobs},
		workers:  workers,
		cancel:   cancel,
		state:    "running",
		progress: Progress{Total: len(req.Jobs)},
		results:  make([]*JobResult, len(req.Jobs)),
		started:  time.Now(),
	}

	s.mu.Lock()
	s.nextID++
	cs.id = fmt.Sprintf("c%06d", s.nextID)
	s.campaigns[cs.id] = cs
	s.order = append(s.order, cs.id)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.execute(ctx, cs)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":          cs.id,
		"jobs":        len(req.Jobs),
		"status_url":  "/campaigns/" + cs.id,
		"results_url": "/campaigns/" + cs.id + "/results",
	})
}

// execute runs one campaign to completion on its own goroutine.
func (s *Server) execute(ctx context.Context, cs *campaignState) {
	defer s.wg.Done()
	defer cs.cancel()
	opts := Options{
		Workers: cs.workers,
		OnProgress: func(p Progress) {
			cs.mu.Lock()
			cs.progress = p
			cs.mu.Unlock()
		},
		OnResult: func(r JobResult) {
			cs.mu.Lock()
			cs.results[r.Index] = &r
			cs.mu.Unlock()
		},
	}
	if s.artifactRoot != "" {
		opts.ArtifactDir = filepath.Join(s.artifactRoot, cs.id)
	}
	res, err := Run(ctx, s.reg, cs.campaign, opts)

	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.finished = time.Now()
	if res != nil {
		// Cancellation marks never-dispatched jobs after Run returns;
		// copy the authoritative final records.
		for i := range res.Results {
			r := res.Results[i]
			cs.results[i] = &r
		}
	}
	switch {
	case ctx.Err() != nil:
		cs.state = "cancelled"
	case err != nil:
		cs.state = "failed"
	default:
		cs.state = "done"
	}
}

func (s *Server) lookup(id string) *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// statusView is the GET /campaigns/{id} document.
type statusView struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	State    string    `json:"state"`
	Seed     uint64    `json:"seed"`
	Workers  int       `json:"workers"`
	Progress Progress  `json:"progress"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// CompletedResults counts records available on the results stream.
	CompletedResults int    `json:"completed_results"`
	ResultsURL       string `json:"results_url"`
}

func (cs *campaignState) view() statusView {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for _, r := range cs.results {
		if r != nil {
			n++
		}
	}
	return statusView{
		ID:               cs.id,
		Name:             cs.campaign.Name,
		State:            cs.state,
		Seed:             cs.campaign.Seed,
		Workers:          cs.workers,
		Progress:         cs.progress,
		Started:          cs.started,
		Finished:         cs.finished,
		CompletedResults: n,
		ResultsURL:       "/campaigns/" + cs.id + "/results",
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSONResponse(w, cs.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]statusView, 0, len(ids))
	for _, id := range ids {
		if cs := s.lookup(id); cs != nil {
			views = append(views, cs.view())
		}
	}
	writeJSONResponse(w, map[string]any{"campaigns": views})
}

// handleResults streams the completed records as JSON lines in
// job-index order; for a running campaign this is the partial result
// set so far.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	cs.mu.Lock()
	records := make([]*JobResult, 0, len(cs.results))
	for _, rec := range cs.results {
		if rec != nil {
			records = append(records, rec)
		}
	}
	cs.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	cs.cancel()
	writeJSONResponse(w, map[string]string{"id": cs.id, "state": "cancelling"})
}

// Metrics is a snapshot of the server's aggregate gauges.
type Metrics struct {
	CampaignsTotal   int
	CampaignsRunning int
	JobsQueued       int
	JobsRunning      int
	JobsDone         int
	JobsFailed       int
	Workers          int
	// Utilization is running jobs over configured workers of running
	// campaigns, in [0, 1].
	Utilization float64
	// JobsPerSec aggregates the completion rate of running campaigns;
	// when idle it falls back to the lifetime average.
	JobsPerSec float64
}

// Snapshot computes the current metrics.
func (s *Server) Snapshot() Metrics {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()

	var m Metrics
	var lifetimeDone int
	var runningRate float64
	for _, id := range ids {
		cs := s.lookup(id)
		if cs == nil {
			continue
		}
		cs.mu.Lock()
		m.CampaignsTotal++
		done := cs.progress.Done
		failed := cs.progress.Failed
		running := cs.progress.Running
		completed := cs.progress.Completed()
		total := cs.progress.Total
		lifetimeDone += completed
		if cs.state == "running" {
			m.CampaignsRunning++
			m.JobsRunning += running
			m.JobsQueued += total - completed - running
			m.Workers += cs.workers
			runningRate += cs.progress.JobsPerSec
		}
		m.JobsDone += done
		m.JobsFailed += failed
		cs.mu.Unlock()
	}
	if m.Workers > 0 {
		m.Utilization = float64(m.JobsRunning) / float64(m.Workers)
	}
	m.JobsPerSec = runningRate
	if m.CampaignsRunning == 0 {
		if secs := time.Since(s.started).Seconds(); secs > 0 {
			m.JobsPerSec = float64(lifetimeDone) / secs
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fields := []struct {
		name string
		help string
		val  float64
	}{
		{"pcs_campaigns_total", "Campaigns submitted since server start.", float64(m.CampaignsTotal)},
		{"pcs_campaigns_running", "Campaigns currently executing.", float64(m.CampaignsRunning)},
		{"pcs_jobs_queued", "Jobs waiting for a worker.", float64(m.JobsQueued)},
		{"pcs_jobs_running", "Jobs currently executing.", float64(m.JobsRunning)},
		{"pcs_jobs_done", "Jobs completed successfully.", float64(m.JobsDone)},
		{"pcs_jobs_failed", "Jobs that returned an error or panicked.", float64(m.JobsFailed)},
		{"pcs_workers", "Configured workers across running campaigns.", float64(m.Workers)},
		{"pcs_worker_utilization", "Running jobs per configured worker.", m.Utilization},
		{"pcs_jobs_per_second", "Aggregate job completion rate.", m.JobsPerSec},
	}
	for _, f := range fields {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", f.name, f.help, f.name, f.name, f.val)
	}
}

// Kinds returns the sorted kind names the server accepts, for startup
// logging.
func (s *Server) Kinds() []string {
	k := s.reg.Kinds()
	sort.Strings(k)
	return k
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
