package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
)

// Server turns the campaign runner into an HTTP job service — the
// pcs-server wire surface:
//
//	POST   /campaigns               submit a campaign, returns its id
//	GET    /campaigns               list campaigns
//	GET    /campaigns/{id}          status, progress and ETA
//	GET    /campaigns/{id}/results  JSONL stream of completed records
//	GET    /campaigns/{id}/events   NDJSON stream of job lifecycle events
//	DELETE /campaigns/{id}          cancel a running campaign
//	GET    /metrics                 Prometheus text exposition
//	GET    /healthz                 liveness probe
//	GET    /readyz                  drain-aware readiness probe
//
// POST /campaigns accepts two body shapes: the raw submitRequest job
// list, and — when ServerOptions.SpecExpander is installed — the same
// declarative experiment-spec document the pcs CLI consumes (JSON or
// TOML, distinguished by the top-level "version" key).
//
// Campaigns execute asynchronously on the server's worker pools; status
// and partial results are available while a campaign runs. All state is
// in memory plus the optional runs/ artifact directory.
type Server struct {
	reg *Registry

	// defaultWorkers sizes pools for submissions that do not specify
	// workers; <= 0 resolves to GOMAXPROCS at submission time.
	defaultWorkers int
	// artifactRoot, when non-empty, gives every campaign a run
	// directory under <artifactRoot>/<id>/.
	artifactRoot string
	// specExpander lowers a declarative experiment spec (the document
	// the pcs CLI consumes) to a campaign; see ServerOptions.
	specExpander func(raw []byte) (Campaign, int, error)
	// cache, when non-nil, memoizes cell results across campaigns — the
	// shared-service payoff: two users submitting overlapping sweeps
	// compute each cell once.
	cache       ResultCache
	codeVersion string
	// traceSpans enables per-campaign span tracing: spans.jsonl in the
	// run directory plus the live GET /campaigns/{id}/spans stream.
	traceSpans bool

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	// draining flips once BeginDrain is called; /readyz reports 503 so
	// load balancers stop routing new submissions while in-flight
	// requests finish.
	draining atomic.Bool

	log     *slog.Logger
	metrics *serverMetrics

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // submission order, for listing
	nextID    int
	started   time.Time
}

// ServerOptions configure NewServer.
type ServerOptions struct {
	// DefaultWorkers is used when a submission omits "workers".
	DefaultWorkers int
	// ArtifactRoot, when non-empty, archives every campaign under
	// <ArtifactRoot>/<campaign id>/.
	ArtifactRoot string
	// Logger, when non-nil, receives structured operational logs
	// (submissions, completions, response-write failures). Nil discards.
	Logger *slog.Logger
	// SpecExpander, when non-nil, lets POST /campaigns accept the
	// declarative experiment-spec documents the pcs CLI consumes (the
	// internal/config layer): a body that carries a top-level "version"
	// key — or is not a JSON object at all (a TOML spec) — is expanded
	// to its campaign through this hook. The returned worker count is
	// the document's requested pool size (0 = server default). The hook
	// is injected rather than imported because internal/config depends
	// on this package.
	SpecExpander func(raw []byte) (Campaign, int, error)
	// Cache, when non-nil, is passed to every campaign execution as
	// Options.Cache and surfaces resultstore_* families at /metrics.
	Cache ResultCache
	// CodeVersion is the build identity recorded in run ledgers and
	// mixed into cache keys; see Options.CodeVersion.
	CodeVersion string
	// TraceSpans enables span tracing for every campaign (see
	// Options.TraceSpans): run directories gain spans.jsonl and
	// GET /campaigns/{id}/spans streams the live span tree.
	TraceSpans bool
}

// serverMetrics wires the server's obs.Registry families. Counters are
// incremented as events happen (so they are true monotonic counters);
// gauges are set from Snapshot at scrape time.
type serverMetrics struct {
	reg *obs.Registry

	campaignsTotal *obs.Counter
	jobsDone       *obs.Counter
	jobsFailed     *obs.Counter
	jobDuration    *obs.HistogramVec
	jobErrors      *obs.CounterVec

	campaignsRunning *obs.Gauge
	jobsQueued       *obs.Gauge
	jobsRunning      *obs.Gauge
	workers          *obs.Gauge
	utilization      *obs.Gauge
	jobsPerSec       *obs.Gauge

	// Result-store families; nil unless a cache is configured, so the
	// exposition only carries them when they mean something.
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg:            r,
		campaignsTotal: r.Counter("pcs_campaigns_total", "Campaigns submitted since server start."),
		campaignsRunning: r.Gauge("pcs_campaigns_running",
			"Campaigns currently executing."),
		jobsQueued:  r.Gauge("pcs_jobs_queued", "Jobs waiting for a worker."),
		jobsRunning: r.Gauge("pcs_jobs_running", "Jobs currently executing."),
		jobsDone:    r.Counter("pcs_jobs_done", "Jobs completed successfully."),
		jobsFailed:  r.Counter("pcs_jobs_failed", "Jobs that returned an error or panicked."),
		workers:     r.Gauge("pcs_workers", "Configured workers across running campaigns."),
		utilization: r.Gauge("pcs_worker_utilization", "Running jobs per configured worker."),
		jobsPerSec:  r.Gauge("pcs_jobs_per_second", "Aggregate job completion rate."),
		jobDuration: r.HistogramVec("pcs_job_duration_seconds",
			"Job wall-clock duration by campaign kind.", "kind", nil),
		jobErrors: r.CounterVec("pcs_job_errors_total",
			"Failed jobs by campaign kind.", "kind"),
	}
	// Quantile summary lines derived from the histogram buckets at
	// scrape time, so dashboards get p50/p95/p99 without PromQL.
	for _, q := range []struct {
		name string
		q    float64
	}{
		{"pcs_job_duration_seconds_p50", 0.50},
		{"pcs_job_duration_seconds_p95", 0.95},
		{"pcs_job_duration_seconds_p99", 0.99},
	} {
		quant := q.q
		r.GaugeVecFunc(q.name,
			fmt.Sprintf("Job duration quantile (q=%g) by kind, interpolated from pcs_job_duration_seconds buckets at scrape time.", quant),
			"kind", func() map[string]float64 { return m.jobDuration.Quantiles(quant) })
	}
	return m
}

// enableCache registers the result-store families. The bytes gauge is
// scrape-time: caches exposing ScrapeSizeBytes (resultstore.Store
// does) re-walk the backend on scrape — so external writers to a
// shared store show up — with plain SizeBytes (write-maintained) as
// the fallback; others report 0.
func (m *serverMetrics) enableCache(cache ResultCache) {
	m.cacheHits = m.reg.Counter("resultstore_hits_total",
		"Campaign cells served from the content-addressed result store.")
	m.cacheMisses = m.reg.Counter("resultstore_misses_total",
		"Campaign cells computed because the result store had no entry.")
	m.reg.GaugeFunc("resultstore_bytes",
		"Bytes stored in the result store, refreshed on scrape.", func() float64 {
			if fresh, ok := cache.(interface{ ScrapeSizeBytes() int64 }); ok {
				return float64(fresh.ScrapeSizeBytes())
			}
			if sized, ok := cache.(interface{ SizeBytes() int64 }); ok {
				return float64(sized.SizeBytes())
			}
			return 0
		})
}

// campaignState tracks one submitted campaign.
type campaignState struct {
	id       string
	campaign Campaign
	workers  int
	cancel   context.CancelFunc

	mu       sync.Mutex
	state    string // "running", "done", "failed", "cancelled"
	progress Progress
	results  []*JobResult // indexed by job, nil until complete
	started  time.Time
	finished time.Time
	// events is the append-only job lifecycle log streamed by
	// GET /campaigns/{id}/events. The campaign_finished event is appended
	// in the same critical section that sets the terminal state, so a
	// reader observing a terminal state under mu sees the complete log.
	events []obs.JobEvent
	// spans is the append-only span log streamed by
	// GET /campaigns/{id}/spans (TraceSpans servers only). Every span
	// is recorded before Run returns, hence before the terminal state
	// is set, so a reader observing a terminal state sees them all.
	spans []tracez.Span
	// syncer flushes the campaign's artifact sidecars; non-nil only
	// while the campaign runs with an artifact directory.
	syncer ArtifactSyncer
}

// addEvent appends one lifecycle event, stamping its campaign-relative
// offset.
func (cs *campaignState) addEvent(ev obs.JobEvent) {
	cs.mu.Lock()
	cs.appendEventLocked(ev)
	cs.mu.Unlock()
}

func (cs *campaignState) appendEventLocked(ev obs.JobEvent) {
	ev.ElapsedMS = float64(time.Since(cs.started).Microseconds()) / 1e3
	cs.events = append(cs.events, ev)
}

// NewServer returns a server executing campaigns against reg.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	metrics := newServerMetrics()
	if opts.Cache != nil {
		metrics.enableCache(opts.Cache)
	}
	return &Server{
		reg:            reg,
		defaultWorkers: opts.DefaultWorkers,
		artifactRoot:   opts.ArtifactRoot,
		specExpander:   opts.SpecExpander,
		cache:          opts.Cache,
		codeVersion:    opts.CodeVersion,
		traceSpans:     opts.TraceSpans,
		baseCtx:        ctx,
		stop:           cancel,
		log:            log,
		metrics:        metrics,
		campaigns:      make(map[string]*campaignState),
		started:        time.Now(),
	}
}

// BeginDrain flips the readiness probe to 503 without cancelling
// anything: the serve loop calls it when a shutdown signal arrives, so
// orchestrators stop routing traffic while in-flight requests and the
// HTTP listener's graceful shutdown complete. It also flushes and
// fsyncs every running campaign's artifact sidecars (timeline.jsonl,
// spans.jsonl), so a kill after the grace period never truncates them
// mid-line. Close still does the actual teardown.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.mu.Lock()
	syncers := make([]ArtifactSyncer, 0, len(s.campaigns))
	for _, cs := range s.campaigns {
		cs.mu.Lock()
		if cs.syncer != nil {
			syncers = append(syncers, cs.syncer)
		}
		cs.mu.Unlock()
	}
	s.mu.Unlock()
	for _, sy := range syncers {
		if err := sy.SyncArtifacts(); err != nil {
			s.log.Warn("drain sync artifacts", "err", err)
		}
	}
}

// Draining reports whether BeginDrain has been called (or the server
// context is already gone).
func (s *Server) Draining() bool {
	return s.draining.Load() || s.baseCtx.Err() != nil
}

// Close cancels every running campaign and waits for their workers to
// drain; it is the graceful-shutdown half pcs-server calls after the
// HTTP listener stops accepting requests.
func (s *Server) Close() {
	s.draining.Store(true)
	s.stop()
	s.wg.Wait()
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/spans", s.handleSpans)
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSONResponse(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// handleReadyz is the drain-aware readiness probe: 200 while accepting
// new campaigns, 503 once draining so load balancers stop routing here
// before the listener actually closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	s.writeJSONResponse(w, map[string]string{"status": "ready"})
}

// submitRequest is the POST /campaigns body.
type submitRequest struct {
	Name    string `json:"name"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers,omitempty"`
	Jobs    []Spec `json:"jobs"`
}

// isSpecDocument reports whether a POST /campaigns body is a
// declarative experiment spec rather than a legacy submitRequest: any
// non-JSON-object body (a TOML spec), or a JSON object carrying the
// spec schema's top-level "version" key.
func isSpecDocument(body []byte) bool {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return true
	}
	var probe struct {
		Version int `json:"version"`
	}
	return json.Unmarshal(body, &probe) == nil && probe.Version != 0
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read campaign body: %v", err)
		return
	}
	var camp Campaign
	var workers int
	if s.specExpander != nil && isSpecDocument(body) {
		camp, workers, err = s.specExpander(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad spec: %v", err)
			return
		}
	} else {
		var req submitRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad campaign body: %v", err)
			return
		}
		camp = Campaign{Name: req.Name, Seed: req.Seed, Jobs: req.Jobs}
		workers = req.Workers
	}
	if len(camp.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "campaign has no jobs")
		return
	}
	for i, spec := range camp.Jobs {
		if _, ok := s.reg.Lookup(spec.Kind); !ok {
			httpError(w, http.StatusBadRequest, "job %d: unknown kind %q (registered: %v)",
				i, spec.Kind, s.reg.Kinds())
			return
		}
	}
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}

	// Resolve the pool size now, mirroring Run, so status and metrics
	// report the actual worker count rather than the raw option.
	if workers <= 0 {
		workers = s.defaultWorkers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(camp.Jobs) {
		workers = len(camp.Jobs)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	cs := &campaignState{
		campaign: camp,
		workers:  workers,
		cancel:   cancel,
		state:    "running",
		progress: Progress{Total: len(camp.Jobs)},
		results:  make([]*JobResult, len(camp.Jobs)),
		started:  time.Now(),
	}

	s.mu.Lock()
	s.nextID++
	cs.id = fmt.Sprintf("c%06d", s.nextID)
	s.campaigns[cs.id] = cs
	s.order = append(s.order, cs.id)
	s.mu.Unlock()

	s.metrics.campaignsTotal.Inc()
	s.log.Info("campaign submitted",
		"id", cs.id, "name", camp.Name, "jobs", len(camp.Jobs), "workers", workers)

	s.wg.Add(1)
	go s.execute(ctx, cs)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":          cs.id,
		"jobs":        len(camp.Jobs),
		"status_url":  "/campaigns/" + cs.id,
		"results_url": "/campaigns/" + cs.id + "/results",
	})
}

// execute runs one campaign to completion on its own goroutine.
func (s *Server) execute(ctx context.Context, cs *campaignState) {
	defer s.wg.Done()
	defer cs.cancel()
	cs.addEvent(obs.JobEvent{Type: obs.EventCampaignStarted, Campaign: cs.campaign.Name, Index: -1})
	// Resolve the per-kind metric series once up front: With takes the
	// family lock, so calling it per job result would contend with the
	// scrape path on large campaigns.
	durationByKind := make(map[string]*obs.Histogram)
	errorsByKind := make(map[string]*obs.Counter)
	for _, spec := range cs.campaign.Jobs {
		if _, ok := durationByKind[spec.Kind]; !ok {
			durationByKind[spec.Kind] = s.metrics.jobDuration.With(spec.Kind)
			errorsByKind[spec.Kind] = s.metrics.jobErrors.With(spec.Kind)
		}
	}
	opts := Options{
		Workers: cs.workers,
		OnProgress: func(p Progress) {
			cs.mu.Lock()
			cs.progress = p
			cs.mu.Unlock()
		},
		OnJobStart: func(i int) {
			spec := cs.campaign.Jobs[i]
			cs.addEvent(obs.JobEvent{Type: obs.EventJobStarted, Index: i,
				Kind: spec.Kind, Name: spec.Name})
		},
		OnResult: func(r JobResult) {
			cs.mu.Lock()
			cs.results[r.Index] = &r
			cs.mu.Unlock()
			typ := obs.EventJobDone
			switch r.Status {
			case StatusDone:
				s.metrics.jobsDone.Inc()
				if s.metrics.cacheHits != nil {
					if r.Cached {
						s.metrics.cacheHits.Inc()
					} else {
						s.metrics.cacheMisses.Inc()
					}
				}
				durationByKind[r.Kind].Observe(r.Duration.Seconds())
			case StatusFailed:
				typ = obs.EventJobFailed
				s.metrics.jobsFailed.Inc()
				errorsByKind[r.Kind].Inc()
				durationByKind[r.Kind].Observe(r.Duration.Seconds())
			case StatusCancelled:
				typ = obs.EventJobCancelled
			}
			cs.addEvent(obs.JobEvent{Type: typ, Index: r.Index, Kind: r.Kind,
				Name: r.Name, Error: r.Error,
				DurationMS: float64(r.Duration.Microseconds()) / 1e3,
				Cached:     r.Cached,
				Resources:  r.Resources})
		},
		Cache:       s.cache,
		CodeVersion: s.codeVersion,
	}
	if s.artifactRoot != "" {
		opts.ArtifactDir = filepath.Join(s.artifactRoot, cs.id)
		opts.OnArtifacts = func(a ArtifactSyncer) {
			cs.mu.Lock()
			cs.syncer = a
			cs.mu.Unlock()
		}
	}
	if s.traceSpans {
		opts.TraceSpans = true
		opts.SpanSink = tracez.SinkFunc(func(sp *tracez.Span) {
			cs.mu.Lock()
			cs.spans = append(cs.spans, *sp)
			cs.mu.Unlock()
		})
	}
	res, err := Run(ctx, s.reg, cs.campaign, opts)

	cs.mu.Lock()
	// The artifact store is closed once Run returns; drop the syncer so
	// a late drain doesn't flush into closed files.
	cs.syncer = nil
	cs.finished = time.Now()
	if res != nil {
		// Cancellation marks never-dispatched jobs after Run returns;
		// copy the authoritative final records.
		for i := range res.Results {
			r := res.Results[i]
			cs.results[i] = &r
		}
	}
	switch {
	case ctx.Err() != nil:
		cs.state = "cancelled"
	case err != nil:
		cs.state = "failed"
	default:
		cs.state = "done"
	}
	cs.appendEventLocked(obs.JobEvent{Type: obs.EventCampaignFinished,
		Campaign: cs.campaign.Name, Index: -1, State: cs.state})
	state := cs.state
	elapsed := cs.finished.Sub(cs.started)
	cs.mu.Unlock()

	s.log.Info("campaign finished", "id", cs.id, "state", state,
		"elapsed_ms", float64(elapsed.Microseconds())/1e3)
	if err != nil && ctx.Err() == nil {
		s.log.Error("campaign error", "id", cs.id, "err", err)
	}
}

func (s *Server) lookup(id string) *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// statusView is the GET /campaigns/{id} document.
type statusView struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	State    string    `json:"state"`
	Seed     uint64    `json:"seed"`
	Workers  int       `json:"workers"`
	Progress Progress  `json:"progress"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// CompletedResults counts records available on the results stream.
	CompletedResults int    `json:"completed_results"`
	ResultsURL       string `json:"results_url"`
}

func (cs *campaignState) view() statusView {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for _, r := range cs.results {
		if r != nil {
			n++
		}
	}
	return statusView{
		ID:               cs.id,
		Name:             cs.campaign.Name,
		State:            cs.state,
		Seed:             cs.campaign.Seed,
		Workers:          cs.workers,
		Progress:         cs.progress,
		Started:          cs.started,
		Finished:         cs.finished,
		CompletedResults: n,
		ResultsURL:       "/campaigns/" + cs.id + "/results",
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	s.writeJSONResponse(w, cs.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]statusView, 0, len(ids))
	for _, id := range ids {
		if cs := s.lookup(id); cs != nil {
			views = append(views, cs.view())
		}
	}
	s.writeJSONResponse(w, map[string]any{"campaigns": views})
}

// handleResults streams the completed records as JSON lines in
// job-index order; for a running campaign this is the partial result
// set so far.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	cs.mu.Lock()
	records := make([]*JobResult, 0, len(cs.results))
	for _, rec := range cs.results {
		if rec != nil {
			records = append(records, rec)
		}
	}
	cs.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleEvents streams the campaign's job lifecycle events as NDJSON,
// following the live campaign (15 ms polling) until it reaches a
// terminal state or the client disconnects. The campaign_finished event
// is always the last line for a completed campaign.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		cs.mu.Lock()
		batch := append([]obs.JobEvent(nil), cs.events[sent:]...)
		terminal := cs.state != "running"
		cs.mu.Unlock()
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				s.log.Warn("encode event stream", "campaign", cs.id, "err", err)
				return
			}
			sent++
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// The finished event is appended under the same lock that set
			// the terminal state, so the batch above was complete.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(15 * time.Millisecond):
		}
	}
}

// handleSpans streams the campaign's spans as NDJSON (tracez.Span wire
// format), following the live campaign like handleEvents until it
// reaches a terminal state or the client disconnects. Every span is
// recorded before the terminal state is set, so the final batch is
// complete. On a server without TraceSpans the stream is empty and
// closes as soon as the campaign finishes.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		cs.mu.Lock()
		batch := append([]tracez.Span(nil), cs.spans[sent:]...)
		terminal := cs.state != "running"
		cs.mu.Unlock()
		for i := range batch {
			if err := enc.Encode(&batch[i]); err != nil {
				s.log.Warn("encode span stream", "campaign", cs.id, "err", err)
				return
			}
			sent++
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(15 * time.Millisecond):
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	cs := s.lookup(r.PathValue("id"))
	if cs == nil {
		httpError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	cs.cancel()
	s.log.Info("campaign cancel requested", "id", cs.id)
	s.writeJSONResponse(w, map[string]string{"id": cs.id, "state": "cancelling"})
}

// Metrics is a snapshot of the server's aggregate gauges.
type Metrics struct {
	CampaignsTotal   int
	CampaignsRunning int
	JobsQueued       int
	JobsRunning      int
	JobsDone         int
	JobsFailed       int
	Workers          int
	// Utilization is running jobs over configured workers of running
	// campaigns, in [0, 1].
	Utilization float64
	// JobsPerSec aggregates the completion rate of running campaigns;
	// when idle it falls back to the lifetime average.
	JobsPerSec float64
}

// Snapshot computes the current metrics.
func (s *Server) Snapshot() Metrics {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()

	var m Metrics
	var lifetimeDone int
	var runningRate float64
	for _, id := range ids {
		cs := s.lookup(id)
		if cs == nil {
			continue
		}
		cs.mu.Lock()
		m.CampaignsTotal++
		done := cs.progress.Done
		failed := cs.progress.Failed
		running := cs.progress.Running
		completed := cs.progress.Completed()
		total := cs.progress.Total
		lifetimeDone += completed
		if cs.state == "running" {
			m.CampaignsRunning++
			m.JobsRunning += running
			m.JobsQueued += total - completed - running
			m.Workers += cs.workers
			runningRate += cs.progress.JobsPerSec
		}
		m.JobsDone += done
		m.JobsFailed += failed
		cs.mu.Unlock()
	}
	if m.Workers > 0 {
		m.Utilization = float64(m.JobsRunning) / float64(m.Workers)
	}
	m.JobsPerSec = runningRate
	if m.CampaignsRunning == 0 {
		if secs := time.Since(s.started).Seconds(); secs > 0 {
			m.JobsPerSec = float64(lifetimeDone) / secs
		}
	}
	return m
}

// handleMetrics renders the obs registry: the monotonic counters are
// maintained event-driven; the point-in-time gauges are refreshed from
// Snapshot at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Snapshot()
	s.metrics.campaignsRunning.Set(float64(m.CampaignsRunning))
	s.metrics.jobsQueued.Set(float64(m.JobsQueued))
	s.metrics.jobsRunning.Set(float64(m.JobsRunning))
	s.metrics.workers.Set(float64(m.Workers))
	s.metrics.utilization.Set(m.Utilization)
	s.metrics.jobsPerSec.Set(m.JobsPerSec)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		s.log.Warn("write metrics", "err", err)
	}
}

// Kinds returns the sorted kind names the server accepts, for startup
// logging.
func (s *Server) Kinds() []string {
	k := s.reg.Kinds()
	sort.Strings(k)
	return k
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSONResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Warn("encode response", "err", err)
	}
}
