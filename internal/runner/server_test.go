package runner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// serverRegistry provides a fast deterministic kind ("square") and a
// blocking kind ("block") for exercising the HTTP surface.
func serverRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.MustRegister("square", func(_ context.Context, _ uint64, params json.RawMessage) (any, error) {
		var p struct {
			X int `json:"x"`
		}
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return map[string]int{"x": p.X, "square": p.X * p.X}, nil
	})
	reg.MustRegister("block", func(ctx context.Context, _ uint64, _ json.RawMessage) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	return reg
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(serverRegistry(t), ServerOptions{DefaultWorkers: 4})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// submit posts a campaign and returns its id.
func submit(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, buf.String())
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("submit returned no id")
	}
	return out.ID
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for campaign %s", resp.StatusCode, id)
	}
	var v statusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitForState(t *testing.T, ts *httptest.Server, id, want string) statusView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v := getStatus(t, ts, id)
		if v.State == want {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %q", id, want)
	return statusView{}
}

// TestServerSubmitPollResults drives the whole flow: submit a campaign,
// poll its status to completion, stream the JSONL results, and scrape
// the metrics endpoint.
func TestServerSubmitPollResults(t *testing.T) {
	_, ts := newTestServer(t)
	var jobs []string
	for i := 0; i < 5; i++ {
		jobs = append(jobs, fmt.Sprintf(`{"kind":"square","name":"sq-%d","params":{"x":%d}}`, i, i))
	}
	id := submit(t, ts, fmt.Sprintf(`{"name":"squares","seed":7,"jobs":[%s]}`, strings.Join(jobs, ",")))

	v := waitForState(t, ts, id, "done")
	if v.Progress.Done != 5 || v.Progress.Failed != 0 {
		t.Fatalf("progress %+v", v.Progress)
	}
	if v.CompletedResults != 5 {
		t.Fatalf("completed results %d, want 5", v.CompletedResults)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var rec struct {
			Index  int    `json:"index"`
			Status string `json:"status"`
			Output struct {
				X      int `json:"x"`
				Square int `json:"square"`
			} `json:"output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.Index != n || rec.Status != "done" || rec.Output.Square != n*n {
			t.Fatalf("line %d: %+v", n, rec)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("streamed %d records, want 5", n)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	metrics := buf.String()
	for _, want := range []string{"pcs_jobs_done 5", "pcs_jobs_failed 0", "pcs_campaigns_total 1", "pcs_worker_utilization", "pcs_jobs_per_second"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServerValidation covers submit rejections and unknown ids.
func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"name":"x","jobs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty jobs: status %d", code)
	}
	if code := post(`{"name":"x","jobs":[{"kind":"nope"}]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
}

// TestServerCancel submits a blocking campaign and cancels it over HTTP.
func TestServerCancel(t *testing.T) {
	_, ts := newTestServer(t)
	id := submit(t, ts, `{"name":"stuck","jobs":[{"kind":"block"},{"kind":"block"}]}`)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	v := waitForState(t, ts, id, "cancelled")
	if v.State != "cancelled" {
		t.Fatalf("state %q", v.State)
	}
}

// TestServerCloseDrains checks Close unblocks running campaigns — the
// SIGTERM drain path.
func TestServerCloseDrains(t *testing.T) {
	srv := NewServer(serverRegistry(t), ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := submit(t, ts, `{"name":"stuck","jobs":[{"kind":"block"}]}`)

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain the running campaign")
	}
	// The campaign must have been marked cancelled before Close returned.
	if v := getStatus(t, ts, id); v.State != "cancelled" {
		t.Fatalf("state after Close = %q, want cancelled", v.State)
	}
	// New submissions are refused during/after shutdown.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"name":"late","jobs":[{"kind":"square","params":{"x":1}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit status %d, want 503", resp.StatusCode)
	}
}

// TestServerList checks the campaign listing endpoint.
func TestServerList(t *testing.T) {
	_, ts := newTestServer(t)
	submit(t, ts, `{"name":"a","jobs":[{"kind":"square","params":{"x":2}}]}`)
	submit(t, ts, `{"name":"b","jobs":[{"kind":"square","params":{"x":3}}]}`)
	resp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Campaigns []statusView `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Campaigns) != 2 || out.Campaigns[0].Name != "a" || out.Campaigns[1].Name != "b" {
		t.Fatalf("listing %+v", out.Campaigns)
	}
}
