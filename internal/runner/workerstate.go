package runner

import "context"

// workerStateKey carries a job's per-worker reusable state (see
// KindInfo.NewWorkerState) through the context.
type workerStateKey struct{}

// ContextWithWorkerState returns ctx carrying the per-worker state st.
// The runner attaches it before invoking a kind function whose
// KindInfo declared a NewWorkerState factory; tests may attach one
// directly to exercise a kind's warm path without a campaign.
func ContextWithWorkerState(ctx context.Context, st any) context.Context {
	return context.WithValue(ctx, workerStateKey{}, st)
}

// WorkerStateFromContext returns the per-worker state attached by
// ContextWithWorkerState, or nil when the job runs cold (no factory
// registered, Options.NoWorkerState, or a direct call outside the
// runner). Kind functions must treat nil as "allocate fresh" and
// produce byte-identical output either way.
func WorkerStateFromContext(ctx context.Context) any {
	return ctx.Value(workerStateKey{})
}
