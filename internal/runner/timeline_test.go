package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func readTimeline(t *testing.T, dir string) []obs.JobEvent {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []obs.JobEvent
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev obs.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("timeline line %d: %v", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTimelineArtifact checks timeline.jsonl brackets the campaign with
// start/finish events and records a started + terminal event per job.
func TestTimelineArtifact(t *testing.T) {
	reg := testRegistry(t)
	dir := filepath.Join(t.TempDir(), "run")
	c := drawSumCampaign(6)
	c.Jobs[2] = Spec{Kind: "fail", Name: "bad"}
	if _, err := Run(context.Background(), reg, c, Options{Workers: 3, ArtifactDir: dir}); err != nil {
		t.Fatal(err)
	}
	evs := readTimeline(t, dir)
	if len(evs) < 2 {
		t.Fatalf("timeline has %d events", len(evs))
	}
	if evs[0].Type != obs.EventCampaignStarted || evs[0].Campaign != "det" || evs[0].Index != -1 {
		t.Fatalf("first event %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Type != obs.EventCampaignFinished || last.State != "failed" {
		t.Fatalf("last event %+v", last)
	}
	started := map[int]bool{}
	terminal := map[int]obs.JobEventType{}
	prevElapsed := -1.0
	for _, ev := range evs {
		if ev.ElapsedMS < prevElapsed {
			t.Fatalf("elapsed offsets not monotone: %g after %g", ev.ElapsedMS, prevElapsed)
		}
		prevElapsed = ev.ElapsedMS
		switch ev.Type {
		case obs.EventJobStarted:
			started[ev.Index] = true
		case obs.EventJobDone, obs.EventJobFailed, obs.EventJobCancelled:
			terminal[ev.Index] = ev.Type
		}
	}
	for i := 0; i < 6; i++ {
		if !started[i] {
			t.Errorf("job %d has no started event", i)
		}
		want := obs.EventJobDone
		if i == 2 {
			want = obs.EventJobFailed
		}
		if terminal[i] != want {
			t.Errorf("job %d terminal event %q, want %q", i, terminal[i], want)
		}
	}
}

// TestJobHooks checks OnJobStart fires per job and JobContext decorates
// the context the kind function receives.
func TestJobHooks(t *testing.T) {
	reg := testRegistry(t)
	type ctxKey struct{}
	reg.MustRegister("ctxcheck", func(ctx context.Context, _ uint64, _ json.RawMessage) (any, error) {
		return ctx.Value(ctxKey{}), nil
	})
	c := Campaign{Name: "hooks", Seed: 7}
	for i := 0; i < 4; i++ {
		c.Jobs = append(c.Jobs, Spec{Kind: "ctxcheck"})
	}
	var mu sync.Mutex
	startedIdx := map[int]bool{}
	res, err := Run(context.Background(), reg, c, Options{
		Workers: 2,
		OnJobStart: func(i int) {
			mu.Lock()
			startedIdx[i] = true
			mu.Unlock()
		},
		JobContext: func(ctx context.Context, i int, _ Spec) context.Context {
			return context.WithValue(ctx, ctxKey{}, i*10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(startedIdx) != 4 {
		t.Fatalf("OnJobStart saw %d jobs, want 4", len(startedIdx))
	}
	for i, r := range res.Results {
		if got, ok := r.Output.(int); !ok || got != i*10 {
			t.Fatalf("job %d output %#v, want %d", i, r.Output, i*10)
		}
	}
}

// TestJobDurationRecorded checks Duration is populated in memory but
// never serialised (the determinism contract).
func TestJobDurationRecorded(t *testing.T) {
	reg := testRegistry(t)
	reg.MustRegister("sleep", func(ctx context.Context, _ uint64, _ json.RawMessage) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return "ok", nil
	})
	c := Campaign{Name: "dur", Seed: 1, Jobs: []Spec{{Kind: "sleep"}}}
	res, err := Run(context.Background(), reg, c, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Duration < 5*time.Millisecond {
		t.Fatalf("duration %s not recorded", res.Results[0].Duration)
	}
	b, err := json.Marshal(res.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for k := range m {
		if k == "duration" || k == "Duration" || k == "duration_ns" {
			t.Fatalf("duration leaked into serialised record: %s", b)
		}
	}
}
