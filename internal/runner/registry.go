package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Func executes one experiment. It receives the job's derived seed and
// the spec's raw parameter document, and returns a JSON-serialisable
// output. Implementations are called concurrently from multiple worker
// goroutines and must confine all mutable state (RNGs, simulator
// instances) to the call — see the package comment's concurrency
// contract.
type Func func(ctx context.Context, seed uint64, params json.RawMessage) (any, error)

// Registry maps experiment kinds to their implementations. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	kinds map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]Func)}
}

// Register adds a kind. Registering an empty name, a nil function, or a
// duplicate kind is an error.
func (r *Registry) Register(kind string, fn Func) error {
	if kind == "" {
		return fmt.Errorf("runner: empty kind name")
	}
	if fn == nil {
		return fmt.Errorf("runner: nil function for kind %q", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kinds[kind]; dup {
		return fmt.Errorf("runner: kind %q already registered", kind)
	}
	r.kinds[kind] = fn
	return nil
}

// MustRegister is Register, panicking on error; for wiring at startup.
func (r *Registry) MustRegister(kind string, fn Func) {
	if err := r.Register(kind, fn); err != nil {
		panic(err)
	}
}

// Lookup returns the function for kind.
func (r *Registry) Lookup(kind string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.kinds[kind]
	return fn, ok
}

// Kinds returns the registered kind names, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
