package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Func executes one experiment. It receives the job's derived seed and
// the spec's raw parameter document, and returns a JSON-serialisable
// output. Implementations are called concurrently from multiple worker
// goroutines and must confine all mutable state (RNGs, simulator
// instances) to the call — see the package comment's concurrency
// contract.
type Func func(ctx context.Context, seed uint64, params json.RawMessage) (any, error)

// KindInfo is optional per-kind metadata that makes a kind eligible
// for the content-addressed result cache (see Options.Cache).
type KindInfo struct {
	// DecodeOutput decodes a stored output document back into the
	// concrete type the kind function returns, so downstream type
	// assertions work identically on cached and computed results. Kinds
	// without a decoder are never cached.
	DecodeOutput func(data []byte) (any, error)
	// Seeded reports whether the kind's computation consumes its seed.
	// Unseeded (analytical) kinds hash with seed 0, so the same cell is
	// shared across campaigns regardless of master seed.
	Seeded bool
	// NewWorkerState, when non-nil, constructs the kind's reusable
	// per-worker state (e.g. a simulation arena). Each worker goroutine
	// builds the state lazily on its first job of the kind and passes
	// it to every later job of that kind via WorkerStateFromContext, so
	// the state is goroutine-confined by construction. Kind functions
	// must produce byte-identical output with or without it (campaign
	// outputs may not depend on worker count or job order), which
	// Options.NoWorkerState exists to verify.
	NewWorkerState func() any
}

// Registry maps experiment kinds to their implementations. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	kinds map[string]Func
	infos map[string]KindInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]Func), infos: make(map[string]KindInfo)}
}

// Register adds a kind with no cache metadata (the kind runs fine but
// its results are never memoized). Registering an empty name, a nil
// function, or a duplicate kind is an error.
func (r *Registry) Register(kind string, fn Func) error {
	return r.RegisterKind(kind, fn, KindInfo{})
}

// RegisterKind adds a kind together with its cache metadata.
func (r *Registry) RegisterKind(kind string, fn Func, info KindInfo) error {
	if kind == "" {
		return fmt.Errorf("runner: empty kind name")
	}
	if fn == nil {
		return fmt.Errorf("runner: nil function for kind %q", kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kinds[kind]; dup {
		return fmt.Errorf("runner: kind %q already registered", kind)
	}
	r.kinds[kind] = fn
	r.infos[kind] = info
	return nil
}

// MustRegister is Register, panicking on error; for wiring at startup.
func (r *Registry) MustRegister(kind string, fn Func) {
	if err := r.Register(kind, fn); err != nil {
		panic(err)
	}
}

// MustRegisterKind is RegisterKind, panicking on error.
func (r *Registry) MustRegisterKind(kind string, fn Func, info KindInfo) {
	if err := r.RegisterKind(kind, fn, info); err != nil {
		panic(err)
	}
}

// Lookup returns the function for kind.
func (r *Registry) Lookup(kind string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.kinds[kind]
	return fn, ok
}

// Info returns kind's cache metadata (the zero KindInfo for kinds
// registered without any).
func (r *Registry) Info(kind string) KindInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.infos[kind]
}

// Kinds returns the registered kind names, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
