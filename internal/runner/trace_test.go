package runner

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/resultstore"
)

// TestTracingDoesNotChangeResults extends the determinism contract to
// tracing: a traced 8-worker run must produce byte-identical
// results.jsonl to an untraced 1-worker run. Spans and resource
// attribution live only in the sidecars, never in the result records.
func TestTracingDoesNotChangeResults(t *testing.T) {
	reg := testRegistry(t)
	read := func(workers int, trace bool) []byte {
		dir := filepath.Join(t.TempDir(), "run")
		_, err := Run(context.Background(), reg, drawSumCampaign(30), Options{
			Workers: workers, ArtifactDir: dir, TraceSpans: trace,
		})
		if err != nil {
			t.Fatalf("workers=%d trace=%v: %v", workers, trace, err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := read(1, false)
	traced := read(8, true)
	if string(plain) != string(traced) {
		t.Fatalf("traced results.jsonl differs from untraced run:\nuntraced:\n%s\ntraced:\n%s", plain, traced)
	}
}

// TestSpansReconcileWithTimeline runs a traced campaign and checks the
// three artifact views agree: spans.jsonl holds one campaign root and
// exactly one job span per job (job attrs matching indices), the
// timeline's terminal events carry resource attribution, and the ledger
// hash-chains both sidecars so tampering with spans.jsonl after the run
// is detected.
func TestSpansReconcileWithTimeline(t *testing.T) {
	reg := testRegistry(t)
	dir := filepath.Join(t.TempDir(), "run")
	const jobs = 12
	res, err := Run(context.Background(), reg, drawSumCampaign(jobs), Options{
		Workers: 4, ArtifactDir: dir, TraceSpans: true, CodeVersion: "v-trace",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != jobs {
		t.Fatalf("done=%d want %d", res.Done, jobs)
	}

	spans, err := tracez.ReadFile(filepath.Join(dir, tracez.FileName))
	if err != nil {
		t.Fatal(err)
	}
	var campaignSpan *tracez.Span
	jobSpans := make(map[int64]tracez.Span)
	for i, sp := range spans {
		if sp.Trace == "" || sp.ID == "" {
			t.Fatalf("span %d missing identity: %+v", i, sp)
		}
		switch sp.Name {
		case "campaign":
			if campaignSpan != nil {
				t.Fatal("more than one campaign span")
			}
			c := sp
			campaignSpan = &c
		case "job":
			idx, ok := sp.Attrs["job"].(float64)
			if !ok {
				t.Fatalf("job span without job attr: %+v", sp)
			}
			if _, dup := jobSpans[int64(idx)]; dup {
				t.Fatalf("duplicate job span for index %d", int64(idx))
			}
			jobSpans[int64(idx)] = sp
		}
	}
	if campaignSpan == nil {
		t.Fatal("no campaign span recorded")
	}
	if len(jobSpans) != jobs {
		t.Fatalf("got %d job spans, want %d", len(jobSpans), jobs)
	}
	for idx, sp := range jobSpans {
		if sp.Parent != campaignSpan.ID {
			t.Errorf("job %d span parent %q, want campaign %q", idx, sp.Parent, campaignSpan.ID)
		}
		if sp.Trace != campaignSpan.Trace {
			t.Errorf("job %d span trace %q, want %q", idx, sp.Trace, campaignSpan.Trace)
		}
		if status, _ := sp.Attrs["status"].(string); status != string(StatusDone) {
			t.Errorf("job %d span status %q", idx, status)
		}
		if sp.DurNS < 0 {
			t.Errorf("job %d span has negative duration %d", idx, sp.DurNS)
		}
	}
	if got, _ := campaignSpan.Attrs["done"].(float64); int(got) != jobs {
		t.Errorf("campaign span done=%v want %d", campaignSpan.Attrs["done"], jobs)
	}

	// Terminal timeline events must carry the attribution block and
	// reconcile 1:1 with the job spans.
	events, err := obs.ReadJobTimeline(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	terminal := 0
	for _, ev := range events {
		if ev.Type != obs.EventJobDone && ev.Type != obs.EventJobFailed && ev.Type != obs.EventJobCancelled {
			continue
		}
		terminal++
		if ev.Resources == nil {
			t.Fatalf("terminal event for job %d has no resources block", ev.Index)
		}
		if ev.Resources.WallMS <= 0 {
			t.Errorf("job %d wall_ms = %v, want > 0", ev.Index, ev.Resources.WallMS)
		}
		if _, ok := jobSpans[int64(ev.Index)]; !ok {
			t.Errorf("terminal event for job %d has no matching span", ev.Index)
		}
	}
	if terminal != jobs {
		t.Fatalf("%d terminal events, want %d", terminal, jobs)
	}

	// The manifest names both sidecars and the ledger chains them.
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Sidecars []string `json:"sidecars"`
	}
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	wantSidecars := []string{"timeline.jsonl", tracez.FileName}
	if len(m.Sidecars) != 2 || m.Sidecars[0] != wantSidecars[0] || m.Sidecars[1] != wantSidecars[1] {
		t.Fatalf("manifest sidecars %v, want %v", m.Sidecars, wantSidecars)
	}
	rep, err := ledger.VerifyDir(dir)
	if err != nil {
		t.Fatalf("traced run's ledger does not verify: %v", err)
	}
	if len(rep.Sidecars) != 2 {
		t.Fatalf("ledger has %d sidecar entries, want 2: %+v", len(rep.Sidecars), rep.Sidecars)
	}
	for i, sc := range rep.Sidecars {
		if sc.Name != wantSidecars[i] {
			t.Errorf("sidecar %d is %q, want %q", i, sc.Name, wantSidecars[i])
		}
		if sc.Bytes <= 0 || len(sc.Digest) != 64 {
			t.Errorf("sidecar %q has bytes=%d digest=%q", sc.Name, sc.Bytes, sc.Digest)
		}
	}

	// Tampering with a span sidecar after the run breaks verification.
	f, err := os.OpenFile(filepath.Join(dir, tracez.FileName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"name\":\"forged\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := ledger.VerifyDir(dir); err == nil {
		t.Fatal("VerifyDir accepted a tampered spans.jsonl")
	} else if !strings.Contains(err.Error(), tracez.FileName) {
		t.Fatalf("tamper error does not name the sidecar: %v", err)
	}
}

// TestJobResourcesPopulated checks the in-memory results carry the
// attribution block even without an artifact directory, and that cache
// provenance flows into it: a second run against a warm store reports
// CacheHit with a recorded cache.probe hit span.
func TestJobResourcesPopulated(t *testing.T) {
	var execs atomic.Int64
	reg := cacheTestRegistry(t, &execs)
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	var col tracez.Collector
	run := func() *CampaignResult {
		res, err := Run(context.Background(), reg, countedCampaign("counted", 6), Options{
			Workers: 3, Cache: store, CodeVersion: "v-res",
			TraceSpans: true, SpanSink: &col,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res1 := run()
	for _, r := range res1.Results {
		if r.Resources == nil {
			t.Fatalf("job %d has no resources", r.Index)
		}
		if r.Resources.WallMS < 0 || r.Resources.CPUMS < 0 {
			t.Fatalf("job %d negative times: %+v", r.Index, r.Resources)
		}
		if r.Resources.CacheHit || !r.Resources.CacheMiss {
			t.Fatalf("cold run job %d: hit=%v miss=%v", r.Index, r.Resources.CacheHit, r.Resources.CacheMiss)
		}
	}

	res2 := run()
	if res2.Cached != 6 {
		t.Fatalf("warm run cached %d of 6", res2.Cached)
	}
	for _, r := range res2.Results {
		if !r.Resources.CacheHit || r.Resources.CacheMiss {
			t.Fatalf("warm run job %d: hit=%v miss=%v", r.Index, r.Resources.CacheHit, r.Resources.CacheMiss)
		}
	}
	var hits, misses int
	for _, sp := range col.Snapshot() {
		if sp.Name != "cache.probe" {
			continue
		}
		if hit, _ := sp.Attrs["hit"].(bool); hit {
			hits++
		} else {
			misses++
		}
	}
	if hits != 6 || misses != 6 {
		t.Fatalf("cache.probe spans: %d hits, %d misses; want 6/6", hits, misses)
	}
}

// TestCancelledTracedRunFlushesSpans extends the cancelled-run
// guarantee to the span sidecar: after cancellation, spans.jsonl holds
// only whole JSON lines and the ledger (including both sidecars) still
// verifies.
func TestCancelledTracedRunFlushesSpans(t *testing.T) {
	reg := testRegistry(t)
	dir := filepath.Join(t.TempDir(), "run")
	c := Campaign{Name: "cancel-traced", Seed: 5}
	for i := 0; i < 8; i++ {
		c.Jobs = append(c.Jobs, Spec{Kind: "block"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	res, err := Run(ctx, reg, c, Options{Workers: 2, ArtifactDir: dir, TraceSpans: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Cancelled == 0 {
		t.Fatal("no jobs cancelled")
	}

	rep, err := ledger.VerifyDir(dir)
	if err != nil {
		t.Fatalf("cancelled traced run's ledger does not verify: %v", err)
	}
	if len(rep.Sidecars) != 2 {
		t.Fatalf("ledger has %d sidecars, want 2", len(rep.Sidecars))
	}
	spans, err := tracez.ReadFile(filepath.Join(dir, tracez.FileName))
	if err != nil {
		t.Fatalf("cancelled run's spans.jsonl is torn: %v", err)
	}
	var sawCampaign bool
	for _, sp := range spans {
		if sp.Name == "campaign" {
			sawCampaign = true
			if got, _ := sp.Attrs["cancelled"].(float64); int(got) != res.Cancelled {
				t.Errorf("campaign span cancelled=%v, run reported %d", sp.Attrs["cancelled"], res.Cancelled)
			}
		}
	}
	if !sawCampaign {
		t.Error("cancelled run recorded no campaign span")
	}
}
