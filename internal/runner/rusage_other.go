//go:build !linux

package runner

import "time"

// threadCPUTime is unavailable off Linux (no portable per-thread
// rusage); jobs report zero CPU time and the top-cells view falls back
// to wall time.
func threadCPUTime() (time.Duration, bool) {
	return 0, false
}
