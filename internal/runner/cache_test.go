package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/ledger"
	"repro/internal/resultstore"
)

type countOutput struct {
	Sum  uint64 `json:"sum"`
	Seed uint64 `json:"seed"`
}

// cacheTestRegistry registers a cacheable seeded kind that counts its
// executions, plus an uncacheable twin (no decoder).
func cacheTestRegistry(t *testing.T, executions *atomic.Int64) *Registry {
	t.Helper()
	fn := func(_ context.Context, seed uint64, params json.RawMessage) (any, error) {
		executions.Add(1)
		var p struct {
			Draws int `json:"draws"`
		}
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return countOutput{Sum: uint64(p.Draws) * seed, Seed: seed}, nil
	}
	reg := NewRegistry()
	reg.MustRegisterKind("counted", fn, KindInfo{
		Seeded: true,
		DecodeOutput: func(data []byte) (any, error) {
			var out countOutput
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, err
			}
			return out, nil
		},
	})
	reg.MustRegister("counted-nodecoder", fn)
	return reg
}

func countedCampaign(kind string, n int) Campaign {
	c := Campaign{Name: "cachetest", Seed: 7}
	for i := 0; i < n; i++ {
		c.Jobs = append(c.Jobs, Spec{Kind: kind, Params: json.RawMessage(`{"draws": 3}`)})
	}
	return c
}

func TestCacheSecondRunAllHits(t *testing.T) {
	var execs atomic.Int64
	reg := cacheTestRegistry(t, &execs)
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}

	run := func(dir string) *CampaignResult {
		res, err := Run(context.Background(), reg, countedCampaign("counted", 8), Options{
			Workers: 4, ArtifactDir: dir, Cache: store, CodeVersion: "v-test",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	dir1 := filepath.Join(t.TempDir(), "run1")
	res1 := run(dir1)
	if res1.Done != 8 || res1.Cached != 0 {
		t.Fatalf("first run: done=%d cached=%d, want 8/0", res1.Done, res1.Cached)
	}
	if execs.Load() != 8 {
		t.Fatalf("first run executions: %d, want 8", execs.Load())
	}

	dir2 := filepath.Join(t.TempDir(), "run2")
	res2 := run(dir2)
	if res2.Done != 8 || res2.Cached != 8 {
		t.Fatalf("second run: done=%d cached=%d, want 8/8", res2.Done, res2.Cached)
	}
	if execs.Load() != 8 {
		t.Errorf("second run re-executed: %d executions total", execs.Load())
	}

	// Cached results must reconstruct the concrete output type.
	if _, ok := res2.Results[0].Output.(countOutput); !ok {
		t.Errorf("cached output type: %T, want countOutput", res2.Results[0].Output)
	}

	// results.jsonl is byte-identical across the cold and warm runs.
	b1, err := os.ReadFile(filepath.Join(dir1, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(dir2, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("results.jsonl differs between cold and warm runs")
	}

	// Both run directories carry a verifiable ledger; the warm run's
	// chain records the cache provenance.
	rep1, err := ledger.VerifyDir(dir1)
	if err != nil {
		t.Fatalf("verify cold run: %v", err)
	}
	if rep1.Cached != 0 || rep1.Manifest.CodeVersion != "v-test" {
		t.Errorf("cold run report: cached=%d version=%q", rep1.Cached, rep1.Manifest.CodeVersion)
	}
	rep2, err := ledger.VerifyDir(dir2)
	if err != nil {
		t.Fatalf("verify warm run: %v", err)
	}
	if rep2.Cached != 8 {
		t.Errorf("warm run report: cached=%d, want 8", rep2.Cached)
	}
}

func TestCacheMissesOnVersionOrSeedChange(t *testing.T) {
	var execs atomic.Int64
	reg := cacheTestRegistry(t, &execs)
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(c Campaign, version string) *CampaignResult {
		res, err := Run(context.Background(), reg, c, Options{
			Workers: 1, Cache: store, CodeVersion: version,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	c := countedCampaign("counted", 4)
	run(c, "v1")
	if got := execs.Load(); got != 4 {
		t.Fatalf("cold run executions: %d", got)
	}

	// Same campaign, different code version: every cell recomputes.
	res := run(c, "v2")
	if res.Cached != 0 || execs.Load() != 8 {
		t.Errorf("version change: cached=%d execs=%d, want 0/8", res.Cached, execs.Load())
	}

	// Same version, different master seed: derived per-job seeds change,
	// so every cell recomputes.
	c2 := c
	c2.Seed = 8
	res = run(c2, "v1")
	if res.Cached != 0 || execs.Load() != 12 {
		t.Errorf("seed change: cached=%d execs=%d, want 0/12", res.Cached, execs.Load())
	}

	// And the original (campaign, version) still hits in full.
	res = run(c, "v1")
	if res.Cached != 4 || execs.Load() != 12 {
		t.Errorf("replay: cached=%d execs=%d, want 4/12", res.Cached, execs.Load())
	}
}

func TestCacheSkipsKindsWithoutDecoder(t *testing.T) {
	var execs atomic.Int64
	reg := cacheTestRegistry(t, &execs)
	store, err := resultstore.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	c := countedCampaign("counted-nodecoder", 3)
	for i := 0; i < 2; i++ {
		res, err := Run(context.Background(), reg, c, Options{Workers: 1, Cache: store, CodeVersion: "v"})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached != 0 {
			t.Errorf("run %d: cached=%d, want 0", i, res.Cached)
		}
	}
	if execs.Load() != 6 {
		t.Errorf("executions: %d, want 6 (kind must never be cached)", execs.Load())
	}
	st, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 0 {
		t.Errorf("store entries: %d, want 0", st.Entries)
	}
}

func TestEffectiveSeed(t *testing.T) {
	seeded := KindInfo{Seeded: true}
	cases := []struct {
		name    string
		info    KindInfo
		params  string
		derived uint64
		want    uint64
	}{
		{"unseeded kind", KindInfo{}, `{"seed":9}`, 5, 0},
		{"pinned seed", seeded, `{"seed":9}`, 5, 9},
		{"derived seed", seeded, `{"x":1}`, 5, 5},
		{"zero pin falls back", seeded, `{"seed":0}`, 5, 5},
		{"no params", seeded, ``, 5, 5},
	}
	for _, c := range cases {
		if got := effectiveSeed(c.info, json.RawMessage(c.params), c.derived); got != c.want {
			t.Errorf("%s: got %d want %d", c.name, got, c.want)
		}
	}
}
