// External tests for the server's spec-document and probe endpoints:
// they need internal/config (which imports this package), so they live
// in runner_test to keep the dependency one-way.
package runner_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/expers"
	"repro/internal/runner"
)

func newSpecServer(t *testing.T) (*runner.Server, *httptest.Server) {
	t.Helper()
	srv := runner.NewServer(expers.NewCampaignRegistry(), runner.ServerOptions{
		DefaultWorkers: 2,
		SpecExpander:   config.ExpandBytes,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	_, ts := newSpecServer(t)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz status = %v", out["status"])
	}
	if _, ok := out["uptime_seconds"].(float64); !ok {
		t.Fatalf("healthz uptime_seconds missing: %v", out)
	}
}

func TestReadyzDrains(t *testing.T) {
	srv, ts := newSpecServer(t)
	if out := getJSON(t, ts.URL+"/readyz", http.StatusOK); out["status"] != "ready" {
		t.Fatalf("readyz status = %v", out["status"])
	}

	srv.BeginDrain()
	if out := getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable); out["status"] != "draining" {
		t.Fatalf("draining readyz status = %v", out["status"])
	}
	// Liveness is unaffected by draining: the process is still up.
	if out := getJSON(t, ts.URL+"/healthz", http.StatusOK); out["status"] != "ok" {
		t.Fatalf("healthz while draining = %v", out["status"])
	}

	// New submissions are refused while draining.
	spec := `{"version": 1, "campaign": {"jobs": [{"kind": "cells"}]}}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

// waitDone polls the status endpoint until the campaign leaves the
// running state.
func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		out := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
		if out["state"] != "running" {
			return out
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign did not finish")
	return nil
}

// TestSubmitSpecDocument posts the same declarative document the CLI
// takes via -spec and checks it expands and runs through the registry.
func TestSubmitSpecDocument(t *testing.T) {
	_, ts := newSpecServer(t)
	spec := `{
	  "version": 1,
	  "seed": 7,
	  "campaign": {
	    "jobs": [
	      {"kind": "cells"},
	      {"kind": "vddlevels", "params": {"levels": 2}}
	    ]
	  }
	}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit spec: status %d", resp.StatusCode)
	}
	var sub struct {
		ID   string `json:"id"`
		Jobs int    `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Jobs != 2 {
		t.Fatalf("jobs = %d, want 2", sub.Jobs)
	}
	status := waitDone(t, ts, sub.ID)
	if status["state"] != "done" {
		t.Fatalf("state = %v: %v", status["state"], status)
	}
	if status["name"] != "campaign" {
		t.Fatalf("campaign name = %v, want the section default", status["name"])
	}
}

// TestSubmitSpecTOML checks the TOML form of the same document is
// sniffed and expanded.
func TestSubmitSpecTOML(t *testing.T) {
	_, ts := newSpecServer(t)
	spec := `
version = 1

[[campaign.jobs]]
kind = "cells"
`
	resp, err := http.Post(ts.URL+"/campaigns", "application/toml", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit TOML spec: status %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if status := waitDone(t, ts, sub.ID); status["state"] != "done" {
		t.Fatalf("state = %v", status["state"])
	}
}

// TestSubmitSpecRejected checks malformed and invalid specs come back
// as 400s, not queued campaigns.
func TestSubmitSpecRejected(t *testing.T) {
	_, ts := newSpecServer(t)
	for _, body := range []string{
		`{"version": 2, "campaign": {"jobs": [{"kind": "cells"}]}}`,
		`{"version": 1, "campaign": {"jobs": [{"kind": "nope"}]}}`,
		`{"version": 1, "campaign": {"jobs": [{"kind": "cells", "params": {"bogus": 1}}]}}`,
		`version = 1`,
		`not toml at [[ all`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestLegacySubmitStillWorks pins that the old low-level job-list body
// (no "version" key) keeps routing through the strict legacy decoder.
func TestLegacySubmitStillWorks(t *testing.T) {
	_, ts := newSpecServer(t)
	body := `{"name": "legacy", "seed": 3, "jobs": [{"kind": "cells", "name": "c", "params": {}}]}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy submit: status %d", resp.StatusCode)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	status := waitDone(t, ts, sub.ID)
	if status["state"] != "done" || status["name"] != "legacy" {
		t.Fatalf("legacy campaign status = %v", status)
	}
}
