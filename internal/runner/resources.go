package runner

import (
	"runtime"
	rm "runtime/metrics"
	"time"

	"repro/internal/obs"
)

// resourceProbe measures one job's resource consumption for the
// timeline's attribution block (obs.JobResources): thread CPU time via
// rusage deltas and heap allocation deltas via runtime/metrics. The
// probe pins the worker goroutine to its OS thread for the duration of
// the job so RUSAGE_THREAD attributes the kind function's CPU time to
// this job — exact for single-goroutine kinds (every simulator kind in
// this repository), an undercount for kinds that fan out internally.
//
// Allocation deltas are per-process heap counters sampled on the
// worker goroutine, so with several workers they include a slice of
// the neighbours' allocations; they are attribution hints, not exact
// accounting, and are documented as such (DESIGN.md §11).
type resourceProbe struct {
	cpuStart time.Duration
	cpuOK    bool
	allocs0  uint64
	bytes0   uint64
	samples  [2]rm.Sample
	// cacheMiss is set by runJob when a resultstore probe came back
	// empty (a hit is read off JobResult.Cached instead).
	cacheMiss bool
}

// startResourceProbe locks the OS thread and samples the baselines.
func startResourceProbe() *resourceProbe {
	runtime.LockOSThread()
	p := &resourceProbe{}
	p.samples[0].Name = "/gc/heap/allocs:objects"
	p.samples[1].Name = "/gc/heap/allocs:bytes"
	rm.Read(p.samples[:])
	if p.samples[0].Value.Kind() == rm.KindUint64 {
		p.allocs0 = p.samples[0].Value.Uint64()
	}
	if p.samples[1].Value.Kind() == rm.KindUint64 {
		p.bytes0 = p.samples[1].Value.Uint64()
	}
	p.cpuStart, p.cpuOK = threadCPUTime()
	return p
}

// stop samples the end state, unpins the thread, and returns the
// attribution block. wall is the job's already-measured duration.
func (p *resourceProbe) stop(wall time.Duration) *obs.JobResources {
	res := &obs.JobResources{
		WallMS:    float64(wall.Microseconds()) / 1e3,
		CacheMiss: p.cacheMiss,
	}
	if cpu, ok := threadCPUTime(); ok && p.cpuOK {
		res.CPUMS = float64((cpu - p.cpuStart).Microseconds()) / 1e3
	}
	rm.Read(p.samples[:])
	if p.samples[0].Value.Kind() == rm.KindUint64 {
		res.Allocs = p.samples[0].Value.Uint64() - p.allocs0
	}
	if p.samples[1].Value.Kind() == rm.KindUint64 {
		res.AllocBytes = p.samples[1].Value.Uint64() - p.bytes0
	}
	runtime.UnlockOSThread()
	return res
}
