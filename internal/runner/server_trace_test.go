package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
)

// readSpanStream consumes one /spans NDJSON stream to completion.
func readSpanStream(t *testing.T, ts *httptest.Server, id string) []tracez.Span {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("spans content type %q", ct)
	}
	var spans []tracez.Span
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var sp tracez.Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("span line %d: %v", len(spans)+1, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestServerSpansStreamConcurrent runs a traced campaign with several
// concurrent /spans and /events readers (exercised under -race by the
// test suite). Every reader must see a complete, well-formed stream:
// one campaign span plus a job span per job, and an event stream that
// terminates with campaign_finished.
func TestServerSpansStreamConcurrent(t *testing.T) {
	srv := NewServer(serverRegistry(t), ServerOptions{DefaultWorkers: 4, TraceSpans: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	const jobs = 6
	var specs []string
	for i := 0; i < jobs; i++ {
		specs = append(specs, fmt.Sprintf(`{"kind":"square","params":{"x":%d}}`, i))
	}
	id := submit(t, ts, fmt.Sprintf(`{"name":"traced","seed":9,"jobs":[%s]}`, strings.Join(specs, ",")))

	const readers = 3
	spanStreams := make([][]tracez.Span, readers)
	eventStreams := make([][]obs.JobEvent, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(2)
		go func(r int) {
			defer wg.Done()
			spanStreams[r] = readSpanStream(t, ts, id)
		}(r)
		go func(r int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/campaigns/" + id + "/events")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var ev obs.JobEvent
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Errorf("event line: %v", err)
					return
				}
				eventStreams[r] = append(eventStreams[r], ev)
			}
		}(r)
	}
	wg.Wait()

	for r, spans := range spanStreams {
		var campaigns, jobSpans int
		for _, sp := range spans {
			switch sp.Name {
			case "campaign":
				campaigns++
			case "job":
				jobSpans++
			}
		}
		if campaigns != 1 || jobSpans != jobs {
			t.Errorf("reader %d: %d campaign spans, %d job spans (want 1, %d)", r, campaigns, jobSpans, jobs)
		}
	}
	for r, events := range eventStreams {
		if len(events) == 0 {
			t.Fatalf("reader %d saw no events", r)
		}
		last := events[len(events)-1]
		if last.Type != obs.EventCampaignFinished {
			t.Errorf("reader %d last event %+v", r, last)
		}
		var withResources int
		for _, ev := range events {
			if ev.Type == obs.EventJobDone && ev.Resources != nil {
				withResources++
			}
		}
		if withResources != jobs {
			t.Errorf("reader %d: %d terminal events carry resources, want %d", r, withResources, jobs)
		}
	}

	// The scrape now carries quantile summary gauges next to the raw
	// histogram, and the whole exposition still validates.
	out := scrapeMetrics(t, ts)
	if err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE pcs_job_duration_seconds_p50 gauge",
		`pcs_job_duration_seconds_p50{kind="square"}`,
		`pcs_job_duration_seconds_p95{kind="square"}`,
		`pcs_job_duration_seconds_p99{kind="square"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestServerSpansDisabled checks the stream contract on a server
// without tracing: the endpoint exists, delivers nothing, and closes
// when the campaign finishes; unknown campaigns 404.
func TestServerSpansDisabled(t *testing.T) {
	_, ts := newTestServer(t)
	id := submit(t, ts, `{"name":"plain","jobs":[{"kind":"square","params":{"x":2}}]}`)
	waitForState(t, ts, id, "done")
	if spans := readSpanStream(t, ts, id); len(spans) != 0 {
		t.Fatalf("untraced server streamed %d spans", len(spans))
	}
	resp, err := http.Get(ts.URL + "/campaigns/c999999/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign spans status %d", resp.StatusCode)
	}
}

// TestBeginDrainFlushesArtifacts submits a campaign that blocks
// mid-run, calls BeginDrain, and checks the run directory's timeline
// and span sidecars were fsynced with only whole JSON lines — the
// shutdown contract: whatever has happened so far is on disk before
// the process exits.
func TestBeginDrainFlushesArtifacts(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(serverRegistry(t), ServerOptions{
		DefaultWorkers: 2, ArtifactRoot: root, TraceSpans: true,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Two fast jobs complete, two block: the campaign is mid-flight.
	id := submit(t, ts, `{"name":"drainme","seed":1,"jobs":[
		{"kind":"square","params":{"x":1}},{"kind":"square","params":{"x":2}},
		{"kind":"block"},{"kind":"block"}]}`)
	waitForJobsDone(t, ts, id, 2)

	srv.BeginDrain()

	dir := filepath.Join(root, id)
	events, err := obs.ReadJobTimeline(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		t.Fatalf("timeline after drain: %v", err)
	}
	var done int
	for _, ev := range events {
		if ev.Type == obs.EventJobDone {
			done++
		}
	}
	if done < 2 {
		t.Fatalf("drained timeline shows %d done jobs, want >= 2", done)
	}
	spans, err := tracez.ReadFile(filepath.Join(dir, tracez.FileName))
	if err != nil {
		t.Fatalf("spans after drain: %v", err)
	}
	var jobSpans int
	for _, sp := range spans {
		if sp.Name == "job" {
			jobSpans++
		}
	}
	if jobSpans < 2 {
		t.Fatalf("drained spans show %d job spans, want >= 2", jobSpans)
	}
}

// waitForJobsDone polls the status endpoint until at least n jobs have
// completed.
func waitForJobsDone(t *testing.T, ts *httptest.Server, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v := getStatus(t, ts, id); v.Progress.Done >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never completed %d jobs", id, n)
}
