// Package runner is the experiment orchestration subsystem: it executes
// a campaign — a slice of self-describing experiment specs — across a
// pool of workers, with deterministic per-job seeding, panic isolation,
// cancellation, progress reporting, and an optional JSON-lines artifact
// store under runs/<timestamp>/.
//
// Determinism: each job's seed is derived from the campaign seed and the
// job's index with stats.Derive, so an 8-worker run produces result
// records byte-identical to a 1-worker run of the same campaign. Result
// records never include wall-clock data for the same reason; timing
// lives in Progress and in the campaign manifest.
//
// # Concurrency contract
//
// Kind functions (see Registry) run concurrently on multiple goroutines.
// They must not share mutable state across calls: every stochastic
// component must draw from an RNG constructed inside the call from the
// given seed, and every simulator instance must be built inside the
// call. All simulator substrates in this repository (cpusim, multicore,
// faultmodel, trace) follow that shape — construction takes a seed and
// the resulting object is confined to one goroutine.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracez"
	"repro/internal/resultstore"
	"repro/internal/stats"
)

// ResultCache is the runner's view of a content-addressed result
// store: opaque keys to serialized output documents.
// *resultstore.Store implements it; the interface keeps the runner
// independent of the store's backends. Both methods must be safe for
// concurrent use.
type ResultCache interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, data []byte) error
}

// Spec is one self-describing experiment: a registered kind plus its
// JSON-encoded parameters. Specs are the unit of work submitted to the
// pool and the unit serialised over the pcs-server wire protocol.
type Spec struct {
	// Kind names a function in the Registry.
	Kind string `json:"kind"`
	// Name optionally labels the job in records and progress output.
	Name string `json:"name,omitempty"`
	// Params is the kind-specific parameter document.
	Params json.RawMessage `json:"params,omitempty"`
}

// Campaign is an ordered batch of experiment specs sharing one seed.
type Campaign struct {
	Name string `json:"name"`
	// Seed is the campaign master seed; job i runs with
	// stats.Derive(Seed, i) unless its kind overrides seeding.
	Seed uint64 `json:"seed"`
	Jobs []Spec `json:"jobs"`
}

// Status is a job's terminal state.
type Status string

const (
	// StatusDone marks a job whose kind function returned without error.
	StatusDone Status = "done"
	// StatusFailed marks a job whose kind function returned an error or
	// panicked; the campaign continues.
	StatusFailed Status = "failed"
	// StatusCancelled marks a job abandoned because the campaign
	// context was cancelled.
	StatusCancelled Status = "cancelled"
)

// JobResult is the deterministic record of one job. It is what the
// artifact store writes as one JSON line and what the server streams.
type JobResult struct {
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Seed   uint64 `json:"seed"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	Output any    `json:"output,omitempty"`
	// Duration is the job's wall-clock run time. It is excluded from
	// JSON so results.jsonl stays byte-identical across worker counts;
	// wall-clock timing belongs to the timeline artifact.
	Duration time.Duration `json:"-"`
	// Cached marks a result served from Options.Cache instead of
	// computed. Excluded from JSON for the same determinism reason as
	// Duration: a cached re-run must reproduce results.jsonl
	// byte-identically. Cache provenance is recorded in timeline.jsonl
	// and ledger.jsonl.
	Cached bool `json:"-"`
	// Resources is the job's measured resource-attribution block (CPU
	// time, allocations, cache probe outcome). Excluded from JSON like
	// Duration: it is wall-clock data and belongs to the timeline.
	Resources *obs.JobResources `json:"-"`
}

// Progress is a snapshot of a running campaign.
type Progress struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Running   int `json:"running"`
	// Elapsed is the wall-clock time since the campaign started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// JobsPerSec is the completion rate so far (done+failed per second).
	JobsPerSec float64 `json:"jobs_per_sec"`
	// ETA estimates the remaining wall-clock time from the current rate;
	// zero until at least one job has finished.
	ETA time.Duration `json:"eta_ns"`
}

// Completed returns how many jobs have reached a terminal state.
func (p Progress) Completed() int { return p.Done + p.Failed + p.Cancelled }

// Options configure one campaign execution.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// ArtifactDir, when non-empty, is the directory (typically
	// runs/<timestamp>, see NewRunDir) that receives manifest.json and
	// results.jsonl.
	ArtifactDir string
	// OnProgress, when non-nil, is called (serialised) after every job
	// reaches a terminal state.
	OnProgress func(Progress)
	// OnResult, when non-nil, is called (serialised) with each job's
	// result as it completes, in completion order.
	OnResult func(JobResult)
	// OnJobStart, when non-nil, is called (serialised) as a worker picks
	// up each job, before its kind function runs.
	OnJobStart func(index int)
	// JobContext, when non-nil, decorates each job's context before the
	// kind function sees it — e.g. attaching a per-job telemetry sink
	// with obs.ContextWithPolicySink.
	JobContext func(ctx context.Context, index int, spec Spec) context.Context
	// Cache, when non-nil, memoizes job outputs content-addressed by
	// (kind, canonical params, effective seed, CodeVersion): runJob
	// consults it before executing and stores successful outputs after.
	// Only kinds registered with a DecodeOutput (see KindInfo) ever hit
	// the cache. Cache failures degrade to recomputation, never to
	// campaign failure.
	Cache ResultCache
	// CodeVersion is the build identity mixed into every cache key (a
	// rebuild with different code must miss) and recorded in the run
	// ledger. Empty is allowed but conflates builds; the pcs CLI always
	// passes version.String().
	CodeVersion string
	// TraceSpans enables span tracing: with an ArtifactDir the run
	// gains a spans.jsonl sidecar (hash-chained into the ledger), and
	// the campaign/job/phase span tree is delivered to SpanSink if one
	// is installed. Off by default: the disabled path costs zero
	// allocations (see internal/obs/tracez) and results.jsonl is
	// byte-identical either way.
	TraceSpans bool
	// SpanSink, when non-nil (and TraceSpans is set), additionally
	// receives every finished span live — the server uses it to feed
	// GET /campaigns/{id}/spans while the campaign runs.
	SpanSink tracez.Sink
	// OnArtifacts, when non-nil, is called once with the run's artifact
	// store before any job starts, so callers can flush-and-fsync the
	// wall-clock sidecars on demand (server drain).
	OnArtifacts func(ArtifactSyncer)
	// NoWorkerState disables per-worker reusable state (KindInfo's
	// NewWorkerState): every job then runs cold, allocating from
	// scratch. Outputs must be byte-identical either way; differential
	// tests and cold benchmarks set this to compare against the warm
	// arena path.
	NoWorkerState bool
}

// ArtifactSyncer flushes buffered artifact sidecars (timeline.jsonl,
// spans.jsonl) to durable storage. Safe for concurrent use with the
// writers.
type ArtifactSyncer interface {
	SyncArtifacts() error
}

// CampaignResult is the outcome of a campaign execution.
type CampaignResult struct {
	Name    string `json:"name"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	// Results holds one entry per job, in job-index order.
	Results []JobResult `json:"results"`
	Done    int         `json:"done"`
	Failed  int         `json:"failed"`
	// Cancelled counts jobs abandoned due to context cancellation.
	Cancelled int `json:"cancelled"`
	// Cached counts done jobs that were served from Options.Cache.
	Cached      int           `json:"cached,omitempty"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ArtifactDir string        `json:"artifact_dir,omitempty"`
}

// JobSeed returns job i's derived seed under campaign seed.
func JobSeed(campaignSeed uint64, index int) uint64 {
	return stats.Derive(campaignSeed, uint64(index))
}

// Run executes every job of the campaign on a worker pool and returns
// the per-job results in job-index order. The returned error is non-nil
// only for setup problems (unknown kind, artifact I/O) or context
// cancellation; individual job failures are reported in the results.
func Run(ctx context.Context, reg *Registry, c Campaign, opts Options) (*CampaignResult, error) {
	if len(c.Jobs) == 0 {
		return nil, fmt.Errorf("runner: campaign %q has no jobs", c.Name)
	}
	// Validate every kind up front so a typo fails fast rather than
	// halfway through an expensive campaign.
	for i, s := range c.Jobs {
		if _, ok := reg.Lookup(s.Kind); !ok {
			return nil, fmt.Errorf("runner: job %d: unknown kind %q (registered: %v)", i, s.Kind, reg.Kinds())
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Jobs) {
		workers = len(c.Jobs)
	}

	var store *artifactStore
	if opts.ArtifactDir != "" {
		var err error
		store, err = newArtifactStore(opts.ArtifactDir, c, workers, opts.CodeVersion, opts.TraceSpans)
		if err != nil {
			return nil, err
		}
		if opts.OnArtifacts != nil {
			opts.OnArtifacts(store)
		}
		// Killed or cancelled runs must never leave torn sidecar lines:
		// flush and fsync the moment the context dies, without waiting
		// for workers to notice.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				_ = store.SyncArtifacts()
			case <-watchDone:
			}
		}()
	}

	// Span tracing: the tracer tees into the run directory's
	// spans.jsonl (if any) and the caller's live sink (if any). A nil
	// tracer costs nothing at the instrumentation sites.
	var tracer *tracez.Tracer
	if opts.TraceSpans {
		var sinks []tracez.Sink
		if store != nil && store.spans != nil {
			sinks = append(sinks, store.spans)
		}
		if opts.SpanSink != nil {
			sinks = append(sinks, opts.SpanSink)
		}
		switch len(sinks) {
		case 0:
			// Tracing on but nowhere to deliver: leave the tracer nil.
		case 1:
			tracer = tracez.New(sinks[0], tracez.Options{})
		default:
			tracer = tracez.New(tracez.Tee(sinks...), tracez.Options{})
		}
	}

	start := time.Now()
	results := make([]JobResult, len(c.Jobs))
	indices := make(chan int)
	var (
		mu   sync.Mutex
		prog = Progress{Total: len(c.Jobs)}
		wg   sync.WaitGroup
	)
	finish := func(r JobResult) {
		mu.Lock()
		defer mu.Unlock()
		prog.Running--
		switch r.Status {
		case StatusFailed:
			prog.Failed++
		case StatusCancelled:
			prog.Cancelled++
		default:
			prog.Done++
		}
		prog.Elapsed = time.Since(start)
		if n := prog.Completed(); n > 0 && prog.Elapsed > 0 {
			prog.JobsPerSec = float64(n) / prog.Elapsed.Seconds()
			remaining := prog.Total - n
			prog.ETA = time.Duration(float64(remaining) / prog.JobsPerSec * float64(time.Second))
		}
		if opts.OnResult != nil {
			opts.OnResult(r)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(prog)
		}
		if store != nil {
			store.jobFinished(r)
		}
	}

	// The campaign span roots the trace; job spans parent under it via
	// the context the workers share.
	ctxJobs := ctx
	var campSpan *tracez.Span
	if tracer != nil {
		ctxJobs = tracez.ContextWith(ctx, tracer)
		ctxJobs, campSpan = tracer.Start(ctxJobs, "campaign")
		campSpan.SetStr("campaign", c.Name)
		campSpan.SetUint("seed", c.Seed)
		campSpan.SetInt("jobs", int64(len(c.Jobs)))
		campSpan.SetInt("workers", int64(workers))
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// states holds this worker's reusable per-kind state (see
			// KindInfo.NewWorkerState), built lazily and confined to
			// this goroutine for the campaign's lifetime.
			var states map[string]any
			for i := range indices {
				mu.Lock()
				prog.Running++
				if opts.OnJobStart != nil {
					opts.OnJobStart(i)
				}
				mu.Unlock()
				if store != nil {
					store.jobStarted(i, c.Jobs[i])
				}
				if states == nil {
					states = make(map[string]any)
				}
				results[i] = runJob(ctxJobs, reg, c, i, worker, states, opts)
				finish(results[i])
			}
		}(w)
	}
feed:
	for i := range c.Jobs {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Mark the never-dispatched tail cancelled.
			for j := i; j < len(c.Jobs); j++ {
				results[j] = cancelledResult(c, j)
			}
			break feed
		}
	}
	close(indices)
	wg.Wait()

	res := &CampaignResult{
		Name:    c.Name,
		Seed:    c.Seed,
		Workers: workers,
		Results: results,
		Elapsed: time.Since(start),
	}
	for _, r := range results {
		switch r.Status {
		case StatusDone:
			res.Done++
			if r.Cached {
				res.Cached++
			}
		case StatusFailed:
			res.Failed++
		case StatusCancelled:
			res.Cancelled++
		}
	}
	if campSpan != nil {
		campSpan.SetInt("done", int64(res.Done))
		campSpan.SetInt("failed", int64(res.Failed))
		campSpan.SetInt("cancelled", int64(res.Cancelled))
		campSpan.End()
	}
	if store != nil {
		res.ArtifactDir = store.dir
		if err := store.finish(results, res, tracer); err != nil {
			return res, err
		}
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runJob executes one job with panic isolation: a panicking kind
// function marks its own job failed instead of killing the campaign.
// It also owns the job's observability: a job span (child of the
// campaign span when tracing is on, nothing otherwise) with cache
// probe / store write children, and the resource-attribution probe
// whose block rides the job's terminal timeline event.
func runJob(ctx context.Context, reg *Registry, c Campaign, i, worker int, states map[string]any, opts Options) (res JobResult) {
	spec := c.Jobs[i]
	res = JobResult{Index: i, Kind: spec.Kind, Name: spec.Name, Seed: JobSeed(c.Seed, i)}
	tr := tracez.FromContext(ctx)
	ctx, span := tr.Start(ctx, "job")
	span.SetInt("job", int64(i))
	span.SetStr("kind", spec.Kind)
	if spec.Name != "" {
		span.SetStr("name", spec.Name)
	}
	span.SetUint("seed", res.Seed)
	span.SetInt("worker", int64(worker))
	probe := startResourceProbe()
	jobStart := time.Now()
	defer func() {
		res.Duration = time.Since(jobStart)
		if p := recover(); p != nil {
			res.Status = StatusFailed
			res.Output = nil
			res.Error = fmt.Sprintf("panic: %v\n%s", p, debug.Stack())
		}
		r := probe.stop(res.Duration)
		r.CacheHit = res.Cached
		if rc, ok := res.Output.(obs.ResourceCounter); ok {
			r.Transitions, r.Writebacks = rc.ResourceCounts()
		}
		res.Resources = r
		span.SetStr("status", string(res.Status))
		if res.Cached {
			span.SetBool("cached", true)
		}
		span.End()
	}()
	if ctx.Err() != nil {
		return cancelledResult(c, i)
	}
	if opts.JobContext != nil {
		ctx = opts.JobContext(ctx, i, spec)
	}
	fn, _ := reg.Lookup(spec.Kind)
	info := reg.Info(spec.Kind)

	// Per-worker reusable state: built on the worker's first job of
	// this kind, then handed to every later one. Disabled (cold path)
	// under Options.NoWorkerState.
	if !opts.NoWorkerState && info.NewWorkerState != nil {
		st, ok := states[spec.Kind]
		if !ok {
			st = info.NewWorkerState()
			states[spec.Kind] = st
		}
		ctx = ContextWithWorkerState(ctx, st)
	}

	// Content-addressed memoization: only kinds that can reconstruct
	// their concrete output type from stored bytes participate.
	var cacheKey string
	if opts.Cache != nil && info.DecodeOutput != nil {
		key, err := resultstore.Key(spec.Kind, spec.Params, effectiveSeed(info, spec.Params, res.Seed), opts.CodeVersion)
		if err == nil {
			cacheKey = key
			psp := span.Child("cache.probe")
			data, ok, _ := opts.Cache.Get(key)
			if ok {
				if out, derr := info.DecodeOutput(data); derr == nil {
					psp.SetBool("hit", true)
					psp.SetInt("bytes", int64(len(data)))
					psp.End()
					res.Status = StatusDone
					res.Output = out
					res.Cached = true
					return res
				}
				// An undecodable entry (e.g. written by an incompatible
				// build despite the version key) falls through to compute.
			}
			psp.SetBool("hit", false)
			psp.End()
			probe.cacheMiss = true
		}
	}

	out, err := fn(ctx, res.Seed, spec.Params)
	if err != nil {
		if ctx.Err() != nil {
			res.Status = StatusCancelled
			res.Error = context.Cause(ctx).Error()
			return res
		}
		res.Status = StatusFailed
		res.Error = err.Error()
		return res
	}
	res.Status = StatusDone
	res.Output = out
	if cacheKey != "" {
		// Best effort: a Put failure leaves the result intact and the
		// cell recomputable next time.
		if data, err := json.Marshal(out); err == nil {
			wsp := span.Child("store.write")
			wsp.SetInt("bytes", int64(len(data)))
			_ = opts.Cache.Put(cacheKey, data)
			wsp.End()
		}
	}
	return res
}

// effectiveSeed resolves the seed component of a cell's cache key,
// mirroring the kinds' own seeding convention: unseeded analytical
// kinds hash as 0 (their output cannot depend on the seed), kinds
// whose params pin a non-zero top-level "seed" hash that pin, and
// everything else hashes the runner-derived per-job seed.
func effectiveSeed(info KindInfo, params json.RawMessage, derived uint64) uint64 {
	if !info.Seeded {
		return 0
	}
	var p struct {
		Seed uint64 `json:"seed"`
	}
	if len(params) > 0 {
		// Loose parse: params that fail here fail properly in the kind
		// function.
		_ = json.Unmarshal(params, &p)
	}
	if p.Seed != 0 {
		return p.Seed
	}
	return derived
}

func cancelledResult(c Campaign, i int) JobResult {
	return JobResult{
		Index:  i,
		Kind:   c.Jobs[i].Kind,
		Name:   c.Jobs[i].Name,
		Seed:   JobSeed(c.Seed, i),
		Status: StatusCancelled,
		Error:  context.Canceled.Error(),
	}
}
