package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ledger"
)

// TestNewRunDirSuffixing checks colliding timestamps get numeric
// suffixes instead of reusing (or clobbering) an existing run
// directory. Three directories created back-to-back within one second
// must all be distinct children of root.
func TestNewRunDirSuffixing(t *testing.T) {
	root := t.TempDir()
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		dir, err := NewRunDir(root)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dir] {
			t.Fatalf("NewRunDir reused %s", dir)
		}
		seen[dir] = true
		if filepath.Dir(dir) != root {
			t.Fatalf("run dir %s not under root %s", dir, root)
		}
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			t.Fatalf("run dir %s: stat %v", dir, err)
		}
	}
	// With sub-second creation at least one collision occurred, so at
	// least one name must carry the -N suffix.
	var suffixed bool
	for dir := range seen {
		if strings.Contains(filepath.Base(dir), "-") {
			suffixed = true
		}
	}
	if !suffixed {
		t.Skip("directories landed in distinct seconds; no collision to exercise")
	}
}

// TestManifestRoundTrip checks manifest.json records the campaign
// verbatim: the specs array decodes back to the jobs that ran, and the
// ledger's manifest entry agrees with the sidecar.
func TestManifestRoundTrip(t *testing.T) {
	reg := testRegistry(t)
	dir := filepath.Join(t.TempDir(), "run")
	c := drawSumCampaign(4)
	if _, err := Run(context.Background(), reg, c, Options{Workers: 2, ArtifactDir: dir, CodeVersion: "v-rt"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Campaign string    `json:"campaign"`
		Seed     uint64    `json:"seed"`
		Jobs     int       `json:"jobs"`
		Workers  int       `json:"workers"`
		Created  time.Time `json:"created"`
		Specs    []Spec    `json:"specs"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m.Campaign != c.Name || m.Seed != c.Seed || m.Jobs != len(c.Jobs) || m.Workers != 2 {
		t.Fatalf("manifest header %+v", m)
	}
	if m.Created.IsZero() {
		t.Error("manifest created time is zero")
	}
	// The manifest is written indented, which reformats the embedded raw
	// params; the round-trip guarantee is semantic, so compare compacted.
	compact := func(raw json.RawMessage) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if len(m.Specs) != len(c.Jobs) {
		t.Fatalf("manifest has %d specs, want %d", len(m.Specs), len(c.Jobs))
	}
	for i := range c.Jobs {
		got, want := m.Specs[i], c.Jobs[i]
		if got.Kind != want.Kind || got.Name != want.Name || compact(got.Params) != compact(want.Params) {
			t.Fatalf("spec %d does not round-trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
	// The hash chain closes over the same identity.
	rep, err := ledger.VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Manifest.CodeVersion != "v-rt" || rep.Manifest.Seed != c.Seed {
		t.Fatalf("ledger manifest %+v", rep.Manifest)
	}
}

// TestCancelledRunClosesArtifacts checks a cancelled campaign still
// leaves a parseable timeline and a closed, verifiable ledger chain:
// the summary entry must be present (truncation would otherwise be
// indistinguishable from a crash) and record the cancelled counts.
func TestCancelledRunClosesArtifacts(t *testing.T) {
	reg := testRegistry(t)
	dir := filepath.Join(t.TempDir(), "run")
	c := Campaign{Name: "cancel", Seed: 3}
	for i := 0; i < 6; i++ {
		c.Jobs = append(c.Jobs, Spec{Kind: "block"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	res, err := Run(ctx, reg, c, Options{Workers: 2, ArtifactDir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Cancelled == 0 {
		t.Fatal("no jobs cancelled")
	}

	rep, err := ledger.VerifyDir(dir)
	if err != nil {
		t.Fatalf("cancelled run's ledger does not verify: %v", err)
	}
	if rep.Summary.Cancelled != res.Cancelled || rep.Summary.Done != res.Done {
		t.Fatalf("ledger summary %+v, campaign counts done=%d cancelled=%d",
			rep.Summary, res.Done, res.Cancelled)
	}

	// Every timeline line must be a whole JSON document (no torn write
	// from the cancelled workers).
	b, err := os.ReadFile(filepath.Join(dir, "timeline.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("timeline line %d: %v", i, err)
		}
	}
}
