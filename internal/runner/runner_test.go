package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// drawSumKind is a stochastic kind: it sums n draws from an RNG built
// from the job seed, so its output depends on correct per-job seeding.
func drawSumKind(_ context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p struct {
		Draws int `json:"draws"`
	}
	if err := json.Unmarshal(params, &p); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	var sum uint64
	for i := 0; i < p.Draws; i++ {
		sum += rng.Uint64() >> 32
	}
	return map[string]uint64{"sum": sum}, nil
}

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.MustRegister("drawsum", drawSumKind)
	reg.MustRegister("boom", func(_ context.Context, _ uint64, _ json.RawMessage) (any, error) {
		panic("kind exploded")
	})
	reg.MustRegister("fail", func(_ context.Context, _ uint64, _ json.RawMessage) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	reg.MustRegister("block", func(ctx context.Context, _ uint64, _ json.RawMessage) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	return reg
}

func drawSumCampaign(n int) Campaign {
	c := Campaign{Name: "det", Seed: 42}
	for i := 0; i < n; i++ {
		c.Jobs = append(c.Jobs, Spec{
			Kind:   "drawsum",
			Name:   fmt.Sprintf("job-%d", i),
			Params: json.RawMessage(`{"draws": 1000}`),
		})
	}
	return c
}

// TestParallelSerialIdentical is the determinism contract: a fixed-seed
// campaign run with 8 workers must produce byte-identical result
// records to a 1-worker run.
func TestParallelSerialIdentical(t *testing.T) {
	reg := testRegistry(t)
	read := func(workers int) []byte {
		dir := filepath.Join(t.TempDir(), "run")
		_, err := Run(context.Background(), reg, drawSumCampaign(50), Options{
			Workers: workers, ArtifactDir: dir,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := read(1)
	parallel := read(8)
	if string(serial) != string(parallel) {
		t.Fatalf("8-worker results.jsonl differs from 1-worker run:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if lines := strings.Count(string(serial), "\n"); lines != 50 {
		t.Fatalf("results.jsonl has %d lines, want 50", lines)
	}
}

// TestJobSeedsIndependent checks derived seeds differ per index and per
// campaign seed.
func TestJobSeedsIndependent(t *testing.T) {
	seen := make(map[uint64]bool)
	for campaign := uint64(0); campaign < 10; campaign++ {
		for i := 0; i < 100; i++ {
			s := JobSeed(campaign, i)
			if seen[s] {
				t.Fatalf("duplicate derived seed %d (campaign %d, job %d)", s, campaign, i)
			}
			seen[s] = true
		}
	}
	if JobSeed(7, 3) != JobSeed(7, 3) {
		t.Fatal("JobSeed is not a pure function")
	}
}

// TestPanicIsolation checks a panicking job is marked failed while the
// rest of the campaign completes.
func TestPanicIsolation(t *testing.T) {
	reg := testRegistry(t)
	c := drawSumCampaign(6)
	c.Jobs[3] = Spec{Kind: "boom", Name: "the-bad-one"}
	res, err := Run(context.Background(), reg, c, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 5 || res.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want 5/1", res.Done, res.Failed)
	}
	bad := res.Results[3]
	if bad.Status != StatusFailed {
		t.Fatalf("job 3 status %q, want failed", bad.Status)
	}
	if !strings.Contains(bad.Error, "kind exploded") {
		t.Fatalf("job 3 error %q does not mention the panic", bad.Error)
	}
	for i, r := range res.Results {
		if i != 3 && r.Status != StatusDone {
			t.Fatalf("job %d status %q, want done", i, r.Status)
		}
	}
}

// TestErrorDoesNotAbortCampaign checks ordinary job errors behave like
// panics: recorded, not fatal.
func TestErrorDoesNotAbortCampaign(t *testing.T) {
	reg := testRegistry(t)
	c := drawSumCampaign(4)
	c.Jobs[0] = Spec{Kind: "fail"}
	res, err := Run(context.Background(), reg, c, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Done != 3 {
		t.Fatalf("done=%d failed=%d, want 3/1", res.Done, res.Failed)
	}
	if res.Results[0].Error != "deliberate failure" {
		t.Fatalf("error = %q", res.Results[0].Error)
	}
}

// TestCancellation checks a cancelled campaign stops promptly: blocked
// jobs unblock with cancelled status and the undispatched tail is marked
// cancelled without running.
func TestCancellation(t *testing.T) {
	reg := testRegistry(t)
	c := Campaign{Name: "cancel", Seed: 1}
	for i := 0; i < 10; i++ {
		c.Jobs = append(c.Jobs, Spec{Kind: "block"})
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	res, err := Run(ctx, reg, c, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if res.Cancelled == 0 {
		t.Fatal("no jobs marked cancelled")
	}
	for i, r := range res.Results {
		if r.Status != StatusCancelled {
			t.Fatalf("job %d status %q, want cancelled", i, r.Status)
		}
	}
}

// TestProgressReporting checks OnProgress sees monotone completion and a
// final snapshot covering every job.
func TestProgressReporting(t *testing.T) {
	reg := testRegistry(t)
	var mu sync.Mutex
	var last Progress
	calls := 0
	res, err := Run(context.Background(), reg, drawSumCampaign(20), Options{
		Workers: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			if p.Completed() < last.Completed() {
				t.Errorf("completion went backwards: %d -> %d", last.Completed(), p.Completed())
			}
			last = p
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Fatalf("OnProgress called %d times, want 20", calls)
	}
	if last.Done != 20 || last.Total != 20 || last.Running != 0 {
		t.Fatalf("final progress %+v", last)
	}
	if res.Elapsed <= 0 {
		t.Fatal("campaign elapsed not recorded")
	}
}

// TestUnknownKindFailsFast checks validation happens before any job runs.
func TestUnknownKindFailsFast(t *testing.T) {
	reg := testRegistry(t)
	c := drawSumCampaign(3)
	c.Jobs[2].Kind = "typo"
	if _, err := Run(context.Background(), reg, c, Options{}); err == nil ||
		!strings.Contains(err.Error(), "typo") {
		t.Fatalf("err = %v, want unknown-kind error naming the kind", err)
	}
	if _, err := Run(context.Background(), reg, Campaign{Name: "empty"}, Options{}); err == nil {
		t.Fatal("empty campaign did not error")
	}
}

// TestArtifactLayout checks the run directory holds manifest, records
// and summary with consistent contents.
func TestArtifactLayout(t *testing.T) {
	reg := testRegistry(t)
	root := t.TempDir()
	dir, err := NewRunDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), reg, drawSumCampaign(5), Options{Workers: 2, ArtifactDir: dir}); err != nil {
		t.Fatal(err)
	}
	var man struct {
		Campaign string `json:"campaign"`
		Jobs     int    `json:"jobs"`
		Seed     uint64 `json:"seed"`
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	if man.Campaign != "det" || man.Jobs != 5 || man.Seed != 42 {
		t.Fatalf("manifest %+v", man)
	}
	b, err = os.ReadFile(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d result lines, want 5", len(lines))
	}
	for i, line := range lines {
		var rec JobResult
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Index != i {
			t.Fatalf("line %d has index %d: records not in job order", i, rec.Index)
		}
		if rec.Seed != JobSeed(42, i) {
			t.Fatalf("line %d seed %d != derived %d", i, rec.Seed, JobSeed(42, i))
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "summary.json")); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", drawSumKind); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Fatal("nil func accepted")
	}
	if err := reg.Register("x", drawSumKind); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("x", drawSumKind); err == nil {
		t.Fatal("duplicate kind accepted")
	}
	if kinds := reg.Kinds(); len(kinds) != 1 || kinds[0] != "x" {
		t.Fatalf("kinds = %v", kinds)
	}
}
