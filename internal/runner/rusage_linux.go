//go:build linux

package runner

import (
	"syscall"
	"time"
)

// rusageThread is RUSAGE_THREAD, which package syscall does not
// export; it asks for the calling thread's counters only — correct
// here because the resource probe holds runtime.LockOSThread for the
// job's duration.
const rusageThread = 1

// threadCPUTime returns the calling OS thread's user+system CPU time.
func threadCPUTime() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return 0, false
	}
	user := time.Duration(ru.Utime.Sec)*time.Second + time.Duration(ru.Utime.Usec)*time.Microsecond
	sys := time.Duration(ru.Stime.Sec)*time.Second + time.Duration(ru.Stime.Usec)*time.Microsecond
	return user + sys, true
}
