package cli

import (
	"flag"
	"fmt"
	"strings"
	"testing"
)

func testApp(out *strings.Builder) (*App, *int, *string) {
	var gotN int
	var gotS string
	a := &App{Name: "pcs", Summary: "test app", EnvPrefix: "PCSTEST", Output: out}
	a.Register(&Command{
		Name:    "go",
		Summary: "run the thing",
		Usage:   "[-n N] [-s str]",
		SetFlags: func(fs *flag.FlagSet) {
			fs.IntVar(&gotN, "n", 1, "a number")
			fs.StringVar(&gotS, "s", "", "a string")
		},
		Run: func(fs *flag.FlagSet) error { return nil },
	})
	a.Register(&Command{
		Name:    "fail",
		Summary: "always errors",
		Run:     func(fs *flag.FlagSet) error { return fmt.Errorf("boom") },
	})
	return a, &gotN, &gotS
}

func TestDispatchAndExitCodes(t *testing.T) {
	var out strings.Builder
	a, n, _ := testApp(&out)
	if code := a.Run([]string{"go", "-n", "7"}); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if *n != 7 {
		t.Fatalf("n = %d", *n)
	}
	if code := a.Run([]string{"fail"}); code != 1 {
		t.Fatalf("fail exit %d", code)
	}
	if !strings.Contains(out.String(), "pcs fail: boom") {
		t.Fatalf("error not reported: %q", out.String())
	}
	if code := a.Run([]string{"nope"}); code != 2 {
		t.Fatalf("unknown exit %d", code)
	}
	if code := a.Run(nil); code != 2 {
		t.Fatalf("no-args exit %d", code)
	}
	if code := a.Run([]string{"go", "-bogus"}); code != 2 {
		t.Fatalf("bad-flag exit %d", code)
	}
}

func TestHelp(t *testing.T) {
	var out strings.Builder
	a, _, _ := testApp(&out)
	if code := a.Run([]string{"help"}); code != 0 {
		t.Fatalf("help exit %d", code)
	}
	for _, want := range []string{"run the thing", "always errors", "PCSTEST_<FLAG>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("help missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := a.Run([]string{"help", "go"}); code != 0 {
		t.Fatalf("help go exit %d", code)
	}
	for _, want := range []string{"pcs go [-n N] [-s str]", "a number"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("command help missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if code := a.Run([]string{"go", "-h"}); code != 0 {
		t.Fatalf("-h exit %d: %s", code, out.String())
	}
}

// TestEnvDefaults checks the PCS_* convention: environment sets the
// default, an explicit flag still wins, and a malformed value fails.
func TestEnvDefaults(t *testing.T) {
	var out strings.Builder
	a, n, s := testApp(&out)
	t.Setenv("PCSTEST_N", "42")
	t.Setenv("PCSTEST_S", "from-env")
	if code := a.Run([]string{"go"}); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if *n != 42 || *s != "from-env" {
		t.Fatalf("env not applied: n=%d s=%q", *n, *s)
	}
	if code := a.Run([]string{"go", "-n", "3"}); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if *n != 3 {
		t.Fatalf("explicit flag lost to env: n=%d", *n)
	}
	t.Setenv("PCSTEST_N", "not-a-number")
	if code := a.Run([]string{"go"}); code != 2 {
		t.Fatalf("bad env exit %d", code)
	}
	if !strings.Contains(out.String(), "PCSTEST_N") {
		t.Fatalf("bad env var not named: %q", out.String())
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := &App{Name: "x"}
	a.Register(&Command{Name: "a"}, &Command{Name: "a"})
}
