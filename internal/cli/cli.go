// Package cli is the subcommand framework behind the pcs binary: a
// small dispatcher over flag.FlagSet that adds the conventions every
// subcommand shares — usage/help text, PCS_* environment-variable
// defaults, and uniform error exit — without pulling in a third-party
// CLI dependency.
//
// # Environment overrides
//
// Before parsing, each registered flag looks up the variable
// <prefix>_<NAME> (flag name upper-cased, dashes to underscores; the
// pcs binary uses prefix "PCS"). A set variable becomes the flag's
// default, and an explicit command-line flag still wins because Parse
// runs after. So PCS_WORKERS=8 pcs sweep behaves like pcs sweep
// -workers 8, and pcs sweep -workers 2 overrides the environment.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Command is one subcommand: its flag registration and its body.
type Command struct {
	// Name is the subcommand name ("sim").
	Name string
	// Summary is the one-line description shown in the command list.
	Summary string
	// Usage is the argument synopsis shown after the command name in
	// help output (e.g. "[-spec file] [-config A|B|both]").
	Usage string
	// SetFlags registers the command's flags; nil means no flags.
	SetFlags func(fs *flag.FlagSet)
	// Run executes the command after flag parsing. fs.Args() holds the
	// positional arguments.
	Run func(fs *flag.FlagSet) error
}

// App is a set of subcommands under one binary name.
type App struct {
	// Name is the binary name ("pcs").
	Name string
	// Summary is the one-line description shown at the top of help.
	Summary string
	// EnvPrefix enables <EnvPrefix>_<FLAG> environment defaults when
	// non-empty.
	EnvPrefix string
	// Version, when non-empty, enables the built-in "version"
	// subcommand (and "-version"/"--version"), which prints it.
	Version string
	// Output receives usage and error text; nil means os.Stderr.
	Output io.Writer

	commands []*Command
}

// Register adds commands to the app; duplicate names are a programming
// error.
func (a *App) Register(cmds ...*Command) {
	for _, c := range cmds {
		for _, have := range a.commands {
			if have.Name == c.Name {
				panic(fmt.Sprintf("cli: duplicate command %q", c.Name))
			}
		}
		a.commands = append(a.commands, c)
	}
}

// Lookup finds a registered command by name.
func (a *App) Lookup(name string) (*Command, bool) {
	for _, c := range a.commands {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

func (a *App) output() io.Writer {
	if a.Output != nil {
		return a.Output
	}
	return os.Stderr
}

// Run dispatches argv (without the binary name) to its subcommand and
// returns the process exit code.
func (a *App) Run(argv []string) int {
	w := a.output()
	if len(argv) == 0 {
		a.usage(w)
		return 2
	}
	switch argv[0] {
	case "version", "-version", "--version":
		if a.Version != "" {
			if _, explicit := a.Lookup("version"); !explicit {
				// Version is the one output users pipe and compare, so it
				// goes to stdout unless the app redirected all output.
				out := io.Writer(os.Stdout)
				if a.Output != nil {
					out = a.Output
				}
				fmt.Fprintf(out, "%s version %s\n", a.Name, a.Version)
				return 0
			}
		}
	case "help", "-h", "-help", "--help":
		if len(argv) > 1 {
			if c, ok := a.Lookup(argv[1]); ok {
				a.commandUsage(w, c)
				return 0
			}
			fmt.Fprintf(w, "%s: unknown command %q\n", a.Name, argv[1])
			return 2
		}
		a.usage(w)
		return 0
	}
	c, ok := a.Lookup(argv[0])
	if !ok {
		fmt.Fprintf(w, "%s: unknown command %q (run %q for the list)\n", a.Name, argv[0], a.Name+" help")
		return 2
	}
	fs := flag.NewFlagSet(a.Name+" "+c.Name, flag.ContinueOnError)
	fs.SetOutput(w)
	fs.Usage = func() { a.commandUsage(w, c) }
	if c.SetFlags != nil {
		c.SetFlags(fs)
	}
	if err := a.applyEnv(fs); err != nil {
		fmt.Fprintf(w, "%s %s: %v\n", a.Name, c.Name, err)
		return 2
	}
	if err := fs.Parse(argv[1:]); err != nil {
		// flag prints its own message (and help for -h).
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if err := c.Run(fs); err != nil {
		fmt.Fprintf(w, "%s %s: %v\n", a.Name, c.Name, err)
		return 1
	}
	return 0
}

// EnvVar returns the environment variable that backs a flag name under
// the app's prefix ("workers" → "PCS_WORKERS").
func (a *App) EnvVar(flagName string) string {
	return a.EnvPrefix + "_" + strings.ToUpper(strings.ReplaceAll(flagName, "-", "_"))
}

// applyEnv installs environment values as flag defaults. It runs before
// Parse, so explicit command-line flags override the environment.
func (a *App) applyEnv(fs *flag.FlagSet) error {
	if a.EnvPrefix == "" {
		return nil
	}
	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil {
			return
		}
		v, ok := os.LookupEnv(a.EnvVar(f.Name))
		if !ok {
			return
		}
		if serr := fs.Set(f.Name, v); serr != nil {
			err = fmt.Errorf("%s=%q: %v", a.EnvVar(f.Name), v, serr)
		}
	})
	return err
}

// usage prints the top-level command list.
func (a *App) usage(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n\n", a.Name, a.Summary)
	fmt.Fprintf(w, "Usage:\n\n\t%s <command> [flags]\n\nCommands:\n\n", a.Name)
	names := make([]string, 0, len(a.commands))
	width := 0
	for _, c := range a.commands {
		names = append(names, c.Name)
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		c, _ := a.Lookup(name)
		fmt.Fprintf(w, "\t%-*s  %s\n", width, c.Name, c.Summary)
	}
	fmt.Fprintf(w, "\nRun \"%s help <command>\" for a command's flags.\n", a.Name)
	if a.Version != "" {
		fmt.Fprintf(w, "Run \"%s version\" to print the build version (%s).\n", a.Name, a.Version)
	}
	if a.EnvPrefix != "" {
		fmt.Fprintf(w, "Any flag can be defaulted from the environment as %s_<FLAG> (e.g. %s).\n",
			a.EnvPrefix, a.EnvVar("workers"))
	}
}

// commandUsage prints one command's synopsis and flags.
func (a *App) commandUsage(w io.Writer, c *Command) {
	fmt.Fprintf(w, "Usage: %s %s %s\n\n%s\n", a.Name, c.Name, c.Usage, c.Summary)
	fs := flag.NewFlagSet(c.Name, flag.ContinueOnError)
	fs.SetOutput(w)
	if c.SetFlags != nil {
		c.SetFlags(fs)
		fmt.Fprintf(w, "\nFlags:\n")
		fs.PrintDefaults()
	}
}
