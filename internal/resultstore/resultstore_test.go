package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCanonicalJSONEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{"key order", `{"a":1,"b":2}`, `{"b":2,"a":1}`},
		{"whitespace", `{ "a" : [1, 2,   3] }`, `{"a":[1,2,3]}`},
		{"nested order", `{"x":{"p":1,"q":2},"y":true}`, `{"y":true,"x":{"q":2,"p":1}}`},
	}
	for _, c := range cases {
		ca, err := CanonicalJSON([]byte(c.a))
		if err != nil {
			t.Fatalf("%s: canonicalize a: %v", c.name, err)
		}
		cb, err := CanonicalJSON([]byte(c.b))
		if err != nil {
			t.Fatalf("%s: canonicalize b: %v", c.name, err)
		}
		if string(ca) != string(cb) {
			t.Errorf("%s: canonical forms differ: %s vs %s", c.name, ca, cb)
		}
	}
}

func TestCanonicalJSONNumberLiterals(t *testing.T) {
	// 0.10 and 0.1 are numerically equal but must stay distinct: the
	// spec author wrote different literals and strict round-tripping is
	// cheaper to reason about than float equivalence.
	a, err := CanonicalJSON([]byte(`{"v":0.10}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON([]byte(`{"v":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Errorf("distinct number literals canonicalized identically: %s", a)
	}
	if string(a) != `{"v":0.10}` {
		t.Errorf("literal not preserved: got %s", a)
	}
	// A huge uint64 must not round-trip through float64.
	c, err := CanonicalJSON([]byte(`{"seed":18446744073709551615}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != `{"seed":18446744073709551615}` {
		t.Errorf("uint64 literal mangled: got %s", c)
	}
}

func TestCanonicalJSONErrors(t *testing.T) {
	if _, err := CanonicalJSON([]byte(`{"a":`)); err == nil {
		t.Error("truncated document: want error")
	}
	if _, err := CanonicalJSON([]byte(`{} {}`)); err == nil {
		t.Error("trailing data: want error")
	}
	got, err := CanonicalJSON(nil)
	if err != nil || string(got) != "null" {
		t.Errorf("empty input: got %q, %v; want null", got, err)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := func() (string, error) {
		return Key("cpusim", []byte(`{"workload":"mix","cycles":1000}`), 42, "v1.0.0")
	}
	k0, err := base()
	if err != nil {
		t.Fatal(err)
	}

	// Semantically identical params (reordered) hash identically.
	same, err := Key("cpusim", []byte(`{"cycles":1000,"workload":"mix"}`), 42, "v1.0.0")
	if err != nil {
		t.Fatal(err)
	}
	if same != k0 {
		t.Error("reordered params changed the key")
	}

	// Each key component must perturb the hash. A changed code version or
	// seed missing the cache is an acceptance criterion of the store.
	variants := map[string]func() (string, error){
		"kind": func() (string, error) {
			return Key("multicore", []byte(`{"workload":"mix","cycles":1000}`), 42, "v1.0.0")
		},
		"params":  func() (string, error) { return Key("cpusim", []byte(`{"workload":"mix","cycles":2000}`), 42, "v1.0.0") },
		"seed":    func() (string, error) { return Key("cpusim", []byte(`{"workload":"mix","cycles":1000}`), 43, "v1.0.0") },
		"version": func() (string, error) { return Key("cpusim", []byte(`{"workload":"mix","cycles":1000}`), 42, "v1.0.1") },
	}
	for name, fn := range variants {
		k, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k0 {
			t.Errorf("changed %s did not change the key", name)
		}
	}

	if len(k0) != 64 {
		t.Errorf("key is not hex SHA-256: %q", k0)
	}
}

func TestDirBackendRoundTrip(t *testing.T) {
	b, err := OpenDir(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := Key("cpusim", []byte(`{"a":1}`), 7, "test")
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := b.Get(key); err != nil || ok {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	want := []byte(`{"result":1}`)
	if err := b.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if string(got) != string(want) {
		t.Errorf("round trip: got %s want %s", got, want)
	}

	// Stored under the sharded path.
	if _, err := os.Stat(filepath.Join(b.Root(), key[:2], key+".json")); err != nil {
		t.Errorf("sharded file missing: %v", err)
	}

	// Overwrite is fine and idempotent.
	if err := b.Put(key, want); err != nil {
		t.Errorf("overwrite: %v", err)
	}

	if err := b.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Get(key); ok {
		t.Error("Get after Delete: still present")
	}
	if err := b.Delete(key); err != nil {
		t.Errorf("double Delete: %v", err)
	}

	// Malformed keys are rejected, not turned into path traversal.
	for _, bad := range []string{"", "ab", "../../etc/passwd", "a/b", "a.b.c"} {
		if err := b.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q): want error", bad)
		}
	}
}

func TestDirBackendConcurrentWriters(t *testing.T) {
	b, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := Key("k", []byte(`{"x":1}`), 1, "v")
	if err != nil {
		t.Fatal(err)
	}
	val := []byte(`{"deterministic":"payload"}`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := b.Put(key, val); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok, err := b.Get(key)
				if err != nil || !ok || string(got) != string(val) {
					t.Errorf("Get: ok=%v err=%v got=%q", ok, err, got)
					return
				}
			}
		}()
	}
	wg.Wait()

	// No stray temp files left behind.
	infos, err := b.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Errorf("entries: got %d want 1", len(infos))
	}
}

func TestStoreStatsAndCounters(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c"))
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := Key("a", []byte(`{"i":1}`), 1, "v")
	k2, _ := Key("a", []byte(`{"i":2}`), 2, "v")

	if _, ok, err := s.Get(k1); ok || err != nil {
		t.Fatalf("miss expected: ok=%v err=%v", ok, err)
	}
	if err := s.Put(k1, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, []byte("01234")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k1); !ok || err != nil {
		t.Fatalf("hit expected: ok=%v err=%v", ok, err)
	}

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Bytes != 15 {
		t.Errorf("stats: entries=%d bytes=%d, want 2/15", st.Entries, st.Bytes)
	}
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 2 {
		t.Errorf("counters: hits=%d misses=%d puts=%d, want 1/1/2", st.Hits, st.Misses, st.Puts)
	}
	if s.SizeBytes() != 15 {
		t.Errorf("SizeBytes: got %d want 15", s.SizeBytes())
	}

	// Re-opening primes accounting from disk.
	s2, err := Open(s.backend.(*DirBackend).Root())
	if err != nil {
		t.Fatal(err)
	}
	if s2.SizeBytes() != 15 {
		t.Errorf("reopened SizeBytes: got %d want 15", s2.SizeBytes())
	}
}

func TestStoreGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Three 10-byte entries with staggered mtimes, oldest first.
	now := time.Now()
	var keys []string
	for i := 0; i < 3; i++ {
		k, _ := Key("gc", []byte(fmt.Sprintf(`{"i":%d}`, i)), uint64(i), "v")
		keys = append(keys, k)
		if err := s.Put(k, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, k[:2], k+".json")
		mt := now.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Byte budget of 25 evicts the oldest entry only.
	res, err := s.GC(GCOptions{MaxBytes: 25, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 3 || res.Removed != 1 || res.RemovedBytes != 10 || res.RemainingBytes != 20 {
		t.Errorf("byte GC: %+v", res)
	}
	if _, ok, _ := s.Get(keys[0]); ok {
		t.Error("oldest entry survived byte GC")
	}
	if _, ok, _ := s.Get(keys[2]); !ok {
		t.Error("newest entry evicted by byte GC")
	}

	// Age bound of 90m evicts the remaining 2h-old entry.
	res, err = s.GC(GCOptions{MaxAge: 90 * time.Minute, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 1 || res.RemainingBytes != 10 {
		t.Errorf("age GC: %+v", res)
	}

	// No bounds: no-op.
	res, err = s.GC(GCOptions{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.Scanned != 1 {
		t.Errorf("unbounded GC: %+v", res)
	}
}

func TestScrapeSizeBytesRefresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	b, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(b)
	if err != nil {
		t.Fatal(err)
	}
	key1, _ := Key("cpusim", []byte(`{"a":1}`), 1, "test")
	if err := s.Put(key1, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if got := s.ScrapeSizeBytes(); got != 10 {
		t.Fatalf("after Put: ScrapeSizeBytes=%d want 10", got)
	}

	// A second process writes to the same directory: the plain gauge
	// value drifts, a TTL-expired scrape re-walks and catches up.
	key2, _ := Key("cpusim", []byte(`{"a":2}`), 2, "test")
	if err := b.Put(key2, []byte("01234")); err != nil {
		t.Fatal(err)
	}
	if got := s.SizeBytes(); got != 10 {
		t.Fatalf("SizeBytes should not see external writes: %d", got)
	}
	// Within the TTL the scrape serves the cached value.
	if got := s.ScrapeSizeBytes(); got != 10 {
		t.Fatalf("scrape within TTL: %d want 10", got)
	}
	s.scrapeTTL = 0 // expire immediately
	if got := s.ScrapeSizeBytes(); got != 15 {
		t.Fatalf("scrape after TTL: %d want 15", got)
	}
	if got := s.entries.Load(); got != 2 {
		t.Fatalf("entries after re-walk: %d want 2", got)
	}
}
