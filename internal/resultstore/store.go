package resultstore

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the accounting layer over a Backend: it tracks hit/miss/put
// counters and an approximate byte total for metrics, and implements
// the runner's ResultCache contract (Get/Put on string keys). All
// methods are safe for concurrent use.
type Store struct {
	backend Backend

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	putErrors atomic.Uint64
	getErrors atomic.Uint64
	// bytes/entries mirror the backend footprint; primed from Entries
	// at construction and maintained on Put/GC. Concurrent external
	// writers make these approximate, which is fine for a gauge.
	bytes   atomic.Int64
	entries atomic.Int64

	// Scrape refresh state: ScrapeSizeBytes re-walks the backend at most
	// once per scrapeTTL so the gauge converges on the true footprint
	// (picking up external writers and GC in other processes) without
	// paying a directory walk on every scrape.
	scrapeMu   sync.Mutex
	scrapeLast time.Time
	scrapeTTL  time.Duration
}

// defaultScrapeTTL bounds how often ScrapeSizeBytes re-walks the
// backend. Prometheus-style scrapers typically poll every 10-60 s, so a
// 10 s floor means at most one walk per scrape interval.
const defaultScrapeTTL = 10 * time.Second

// Open opens (creating if needed) a Store over a local directory
// backend — the `-cache DIR` form every pcs subcommand accepts.
func Open(dir string) (*Store, error) {
	b, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return NewStore(b)
}

// NewStore wraps an arbitrary backend, priming the size accounting
// from its current contents.
func NewStore(b Backend) (*Store, error) {
	s := &Store{backend: b, scrapeTTL: defaultScrapeTTL}
	infos, err := b.Entries()
	if err != nil {
		return nil, err
	}
	var bytes int64
	for _, e := range infos {
		bytes += e.Bytes
	}
	s.bytes.Store(bytes)
	s.entries.Store(int64(len(infos)))
	return s, nil
}

// Get looks a key up, counting the hit or miss. Backend errors count as
// misses (and are reported) so a flaky cache degrades to recomputation
// rather than failing campaigns.
func (s *Store) Get(key string) ([]byte, bool, error) {
	data, ok, err := s.backend.Get(key)
	if err != nil {
		s.getErrors.Add(1)
		s.misses.Add(1)
		return nil, false, err
	}
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return data, ok, nil
}

// Put stores a computed result. Errors are counted and returned; the
// runner treats them as best-effort (a failed Put never fails the job).
func (s *Store) Put(key string, data []byte) error {
	if err := s.backend.Put(key, data); err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	s.bytes.Add(int64(len(data)))
	s.entries.Add(1)
	return nil
}

// SizeBytes returns the approximate stored byte total; the server's
// resultstore_bytes gauge reads it at scrape time.
func (s *Store) SizeBytes() int64 { return s.bytes.Load() }

// ScrapeSizeBytes is SizeBytes with freshness: at most once per TTL it
// re-walks the backend and re-primes the byte/entry accounting, so a
// scraped gauge tracks external writers and cross-process GC instead of
// drifting for the life of the server. Walk errors fall back to the
// last known value — a metrics scrape must never fail a campaign.
func (s *Store) ScrapeSizeBytes() int64 {
	s.scrapeMu.Lock()
	stale := time.Since(s.scrapeLast) >= s.scrapeTTL
	if stale {
		s.scrapeLast = time.Now()
	}
	s.scrapeMu.Unlock()
	if stale {
		if infos, err := s.backend.Entries(); err == nil {
			var bytes int64
			for _, e := range infos {
				bytes += e.Bytes
			}
			s.bytes.Store(bytes)
			s.entries.Store(int64(len(infos)))
		}
	}
	return s.bytes.Load()
}

// Stats is a point-in-time snapshot of the store. Entries/Bytes come
// from an exact backend walk; the counters cover this process's
// lifetime.
type Stats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	GetErrors uint64 `json:"get_errors"`
}

// Stats walks the backend and returns exact entry/byte totals plus the
// session counters (also re-priming the gauge accounting).
func (s *Store) Stats() (Stats, error) {
	infos, err := s.backend.Entries()
	if err != nil {
		return Stats{}, err
	}
	var bytes int64
	for _, e := range infos {
		bytes += e.Bytes
	}
	s.bytes.Store(bytes)
	s.entries.Store(int64(len(infos)))
	return Stats{
		Entries:   len(infos),
		Bytes:     bytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		GetErrors: s.getErrors.Load(),
	}, nil
}

// GCOptions bound a collection pass. Zero values mean "no bound on this
// axis"; GC with both zero is a no-op.
type GCOptions struct {
	// MaxBytes evicts oldest entries until the store fits.
	MaxBytes int64
	// MaxAge evicts entries older than this.
	MaxAge time.Duration
	// Now anchors MaxAge; zero means time.Now().
	Now time.Time
}

// GCResult summarises one collection pass.
type GCResult struct {
	Scanned        int   `json:"scanned"`
	Removed        int   `json:"removed"`
	RemovedBytes   int64 `json:"removed_bytes"`
	RemainingBytes int64 `json:"remaining_bytes"`
}

// GC evicts entries oldest-first until the store satisfies opts.
// Deleting a key another process already removed is not an error, so
// concurrent GC passes are safe (if wasteful).
func (s *Store) GC(opts GCOptions) (GCResult, error) {
	infos, err := s.backend.Entries()
	if err != nil {
		return GCResult{}, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ModTime.Before(infos[j].ModTime) })
	var total int64
	for _, e := range infos {
		total += e.Bytes
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	res := GCResult{Scanned: len(infos), RemainingBytes: total}
	for _, e := range infos {
		tooOld := opts.MaxAge > 0 && now.Sub(e.ModTime) > opts.MaxAge
		tooBig := opts.MaxBytes > 0 && res.RemainingBytes > opts.MaxBytes
		if !tooOld && !tooBig {
			if opts.MaxAge <= 0 {
				// Entries are age-sorted: once under the byte budget with
				// no age bound, nothing further can be evictable.
				break
			}
			continue
		}
		if err := s.backend.Delete(e.Key); err != nil {
			return res, err
		}
		res.Removed++
		res.RemovedBytes += e.Bytes
		res.RemainingBytes -= e.Bytes
	}
	s.bytes.Store(res.RemainingBytes)
	s.entries.Store(int64(res.Scanned - res.Removed))
	return res, nil
}
