package resultstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// DefaultDirName is the conventional local cache directory (relative to
// the working directory) that `pcs cache` administers when no explicit
// -cache is given. It is listed in .gitignore: memoized results are
// derived data and never belong in commits.
const DefaultDirName = ".pcs-cache"

// Backend is the storage layer under a Store: opaque keys (hex SHA-256
// strings from Key) to opaque value bytes. Implementations must be safe
// for concurrent use, and Put must be atomic — a reader never observes
// a torn value. DirBackend is the local implementation; an
// S3-compatible backend satisfies the same four methods.
type Backend interface {
	// Get returns the stored value, reporting whether the key exists.
	Get(key string) ([]byte, bool, error)
	// Put stores the value under key, overwriting any previous value.
	Put(key string, data []byte) error
	// Entries lists everything in the store, for Stats and GC.
	Entries() ([]EntryInfo, error)
	// Delete removes a key; deleting a missing key is not an error.
	Delete(key string) error
}

// EntryInfo describes one stored entry.
type EntryInfo struct {
	Key   string
	Bytes int64
	// ModTime is when the entry was last written; GC evicts oldest
	// first.
	ModTime time.Time
}

// DirBackend stores entries as files under a local directory, sharded
// by the first two hex digits of the key (root/ab/abcdef....json) so no
// single directory grows unboundedly on large campaigns.
//
// Writes are write-to-temp-then-rename in the shard directory, so
// concurrent writers — multiple campaign workers, or several pcs
// processes sharing one cache — never expose partial values: rename is
// atomic on POSIX filesystems, and both writers of one key write the
// same deterministic bytes anyway.
type DirBackend struct {
	root string
}

// OpenDir creates (if needed) and opens a directory backend at root.
func OpenDir(root string) (*DirBackend, error) {
	if root == "" {
		return nil, fmt.Errorf("resultstore: empty cache directory")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: create cache dir: %w", err)
	}
	return &DirBackend{root: root}, nil
}

// Root returns the backend's directory.
func (b *DirBackend) Root() string { return b.root }

// path maps a key to its sharded file path.
func (b *DirBackend) path(key string) (string, error) {
	if len(key) < 3 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("resultstore: malformed key %q", key)
	}
	return filepath.Join(b.root, key[:2], key+".json"), nil
}

// Get reads one entry.
func (b *DirBackend) Get(key string) ([]byte, bool, error) {
	p, err := b.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultstore: read %s: %w", key, err)
	}
	return data, true, nil
}

// Put writes one entry atomically: temp file in the shard directory,
// then rename over the final name.
func (b *DirBackend) Put(key string, data []byte) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	shard := filepath.Dir(p)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("resultstore: create shard: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		return fmt.Errorf("resultstore: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", key, err)
	}
	return nil
}

// Entries walks the shard directories.
func (b *DirBackend) Entries() ([]EntryInfo, error) {
	var out []EntryInfo
	err := filepath.WalkDir(b.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A shard vanishing mid-walk (concurrent GC) is not an error.
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		name := d.Name()
		if d.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		out = append(out, EntryInfo{
			Key:     strings.TrimSuffix(name, ".json"),
			Bytes:   info.Size(),
			ModTime: info.ModTime(),
		})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("resultstore: walk cache: %w", err)
	}
	return out, nil
}

// Delete removes one entry (and opportunistically its shard directory
// once empty; failure to remove the now-empty shard is ignored).
func (b *DirBackend) Delete(key string) error {
	p, err := b.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("resultstore: delete %s: %w", key, err)
	}
	os.Remove(filepath.Dir(p))
	return nil
}
