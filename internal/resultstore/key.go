// Package resultstore is the content-addressed cell-result cache:
// campaign cells are pure functions of (canonical spec JSON, effective
// seed, code version), so their outputs can be memoized under the
// SHA-256 of exactly those inputs and reused by any later campaign that
// expands the same cell — repeated or overlapping campaigns become
// incremental, and a shared pcs serve instance deduplicates work across
// users.
//
// The store is a thin accounting layer (hit/miss/put counters, byte
// totals) over a pluggable Backend. The only backend today is a local
// sharded directory (see DirBackend); the interface is deliberately
// small — Get/Put/Entries/Delete over opaque keys and byte slices — so
// an S3-compatible object-store backend can drop in later without
// touching the runner integration.
//
// Keys must be stable across processes, architectures and JSON field
// order, which is why hashing goes through CanonicalJSON rather than
// the raw parameter bytes: two spec documents that decode to the same
// cell hash identically even if their files differ in key order or
// whitespace.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalJSON re-encodes a JSON document in canonical form: object
// keys sorted, insignificant whitespace removed, number literals
// preserved exactly as written (via json.Number, so 0.10 and 0.1 stay
// distinct but field order never matters). Two semantically identical
// parameter documents canonicalize to the same bytes.
func CanonicalJSON(data []byte) ([]byte, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return []byte("null"), nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("resultstore: canonicalize: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("resultstore: canonicalize: trailing data after document")
	}
	// json.Marshal writes maps with sorted keys and json.Number values
	// as their original literals, which is exactly the canonical form.
	out, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("resultstore: canonicalize: %v", err)
	}
	return out, nil
}

// Key computes the content address of one campaign cell:
//
//	SHA-256(kind ‖ 0x00 ‖ canonical-params-JSON ‖ 0x00 ‖ seed ‖ 0x00 ‖ codeVersion)
//
// hex-encoded. The seed is the cell's effective seed (the derived
// per-job seed, or the pinned params seed — the caller resolves which);
// codeVersion is the build identity (internal/version), so a rebuild
// with different code never serves stale results. Job names are
// deliberately excluded: they are labels, and relabelling a cell must
// not change its address.
func Key(kind string, params []byte, seed uint64, codeVersion string) (string, error) {
	canon, err := CanonicalJSON(params)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	var sep = [1]byte{0}
	var seedBuf [8]byte
	binary.BigEndian.PutUint64(seedBuf[:], seed)
	h.Write([]byte(kind))
	h.Write(sep[:])
	h.Write(canon)
	h.Write(sep[:])
	h.Write(seedBuf[:])
	h.Write(sep[:])
	h.Write([]byte(codeVersion))
	return hex.EncodeToString(h.Sum(nil)), nil
}
