package resultstore

import "testing"

// TestKeyGoldenFixtures pins the content-addressed key derivation to
// known hex values. The key function is the store's wire format: a
// change here silently orphans every cached cell on disk, so any
// intentional change to the derivation must update these fixtures in
// the same commit and state that the cache is being invalidated.
func TestKeyGoldenFixtures(t *testing.T) {
	cases := []struct {
		name   string
		kind   string
		params string
		seed   uint64
		ver    string
		want   string
	}{
		{
			name:   "mechminvdd proposed v1",
			kind:   "mechminvdd",
			params: `{"org":"l1a","mechanism":"proposed","mech_version":"1","n_low_vdds":2,"yield":0.99,"v_min":0.3,"v_max":1}`,
			seed:   1,
			ver:    "v0",
			want:   "ae9b8f3d4f7dd8773571d6470e4f776d533a64543bea48d9b3991a2d964af63d",
		},
		{
			name:   "minvdd geometry cell",
			kind:   "minvdd",
			params: `{"size_bytes":32768,"ways":4,"block_bytes":64}`,
			seed:   1,
			ver:    "v0",
			want:   "063fe2619376800b12959a8c8c6b5d566b09bd6c363a168b94df77ed75e7d5e6",
		},
		{
			name:   "empty params",
			kind:   "cpusim",
			params: `{}`,
			seed:   7,
			ver:    "dev",
			want:   "678b548782786f0d2c77d4866937930ebb91c410e3ece764f30756da18edf40c",
		},
	}
	for _, c := range cases {
		got, err := Key(c.kind, []byte(c.params), c.seed, c.ver)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: key = %s, want %s (key derivation changed — this orphans every stored result)",
				c.name, got, c.want)
		}
	}
}

// TestKeyMechVersionBump checks the mechanism-version pin does its job
// at the store layer: a mechminvdd params document differing only in
// mech_version must miss the cache (different key), while a
// field-reordered but semantically identical document must hit.
func TestKeyMechVersionBump(t *testing.T) {
	v1 := `{"org":"l1a","mechanism":"proposed","mech_version":"1","n_low_vdds":2,"yield":0.99,"v_min":0.3,"v_max":1}`
	v1reordered := `{"mech_version":"1","mechanism":"proposed","n_low_vdds":2,"org":"l1a","v_max":1,"v_min":0.3,"yield":0.99}`
	v2 := `{"org":"l1a","mechanism":"proposed","mech_version":"2","n_low_vdds":2,"yield":0.99,"v_min":0.3,"v_max":1}`

	k1, err := Key("mechminvdd", []byte(v1), 1, "v0")
	if err != nil {
		t.Fatal(err)
	}
	kr, err := Key("mechminvdd", []byte(v1reordered), 1, "v0")
	if err != nil {
		t.Fatal(err)
	}
	if kr != k1 {
		t.Error("field order changed the key: canonicalisation is broken")
	}
	k2, err := Key("mechminvdd", []byte(v2), 1, "v0")
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k1 {
		t.Error("mech_version bump did not miss the cache: stale mechanism results would be served")
	}
	if k2 != "e5f7fc89acfc492b60157f8190be8008cdc046a7109195576479cca8474156af" {
		t.Errorf("bumped-version key = %s drifted from its fixture", k2)
	}
}
