package ecc

import (
	"fmt"

	"repro/internal/stats"
)

// ProtectedBlock stores a cache block's data as SECDED codewords over
// 2-byte subblocks — the functional realisation of the paper's remark
// that its mechanism "could be supplemented with related ECC methods for
// soft/transient fault tolerance": power/capacity scaling disables the
// hard voltage-induced faults, leaving the full SECDED budget for soft
// errors, whereas ECC-as-voltage-tolerance (Fig. 3d's SECDED/DECTED
// rows) spends that budget on hard faults.
type ProtectedBlock struct {
	words []Codeword
}

// NewProtectedBlock encodes a data block (length must be a multiple of
// 2 bytes) into SECDED codewords.
func NewProtectedBlock(data []byte) (*ProtectedBlock, error) {
	if len(data) == 0 || len(data)%2 != 0 {
		return nil, fmt.Errorf("ecc: block length %d not a positive multiple of 2", len(data))
	}
	b := &ProtectedBlock{words: make([]Codeword, len(data)/2)}
	for i := range b.words {
		w := uint16(data[2*i]) | uint16(data[2*i+1])<<8
		b.words[i] = Encode(w)
	}
	return b, nil
}

// Subblocks returns the number of protected subblocks.
func (b *ProtectedBlock) Subblocks() int { return len(b.words) }

// InjectSoftErrors flips n random codeword bits (with replacement across
// the block) using the given RNG, modelling transient particle strikes.
func (b *ProtectedBlock) InjectSoftErrors(rng *stats.RNG, n int) {
	for i := 0; i < n; i++ {
		w := rng.Intn(len(b.words))
		bit := rng.Intn(CodeBits)
		b.words[w] = b.words[w].FlipBit(bit)
	}
}

// ReadResult summarises a protected read.
type ReadResult struct {
	// Data is the recovered block contents (valid unless Uncorrectable).
	Data []byte
	// Corrected counts subblocks that needed single-bit correction.
	Corrected int
	// Uncorrectable counts subblocks with detected-but-uncorrectable
	// errors; their bytes in Data are unreliable.
	Uncorrectable int
}

// Read decodes the whole block, scrubbing single-bit errors in place
// (as a cache controller's read-scrub would).
func (b *ProtectedBlock) Read() ReadResult {
	res := ReadResult{Data: make([]byte, 2*len(b.words))}
	for i, cw := range b.words {
		data, status, _ := Decode(cw)
		switch status {
		case Corrected:
			res.Corrected++
			b.words[i] = Encode(data) // scrub
		case DetectedDouble:
			res.Uncorrectable++
		}
		res.Data[2*i] = byte(data)
		res.Data[2*i+1] = byte(data >> 8)
	}
	return res
}
