package ecc

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeCleanRoundTrip(t *testing.T) {
	if err := quick.Check(func(data uint16) bool {
		got, status, _ := Decode(Encode(data))
		return got == data && status == OK
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectsEverySingleBitError(t *testing.T) {
	// Exhaustive over all 22 positions for a spread of data values.
	for _, data := range []uint16{0x0000, 0xFFFF, 0xA5A5, 0x1234, 0x8001, 0x7FFE} {
		cw := Encode(data)
		for pos := 0; pos < CodeBits; pos++ {
			got, status, fixed := Decode(cw.FlipBit(pos))
			if status != Corrected {
				t.Fatalf("data %#x flip %d: status %v", data, pos, status)
			}
			if got != data {
				t.Fatalf("data %#x flip %d: decoded %#x", data, pos, got)
			}
			if fixed != pos {
				t.Fatalf("data %#x flip %d: reported fix at %d", data, pos, fixed)
			}
		}
	}
}

func TestCorrectsSingleBitErrorProperty(t *testing.T) {
	if err := quick.Check(func(data uint16, posRaw uint8) bool {
		pos := int(posRaw) % CodeBits
		got, status, _ := Decode(Encode(data).FlipBit(pos))
		return got == data && status == Corrected
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsEveryDoubleBitError(t *testing.T) {
	for _, data := range []uint16{0x0000, 0xFFFF, 0xC3C3, 0x0F0F} {
		cw := Encode(data)
		for a := 0; a < CodeBits; a++ {
			for b := a + 1; b < CodeBits; b++ {
				_, status, _ := Decode(cw.FlipBit(a).FlipBit(b))
				if status != DetectedDouble {
					t.Fatalf("data %#x flips (%d,%d): status %v, want double-error",
						data, a, b, status)
				}
			}
		}
	}
}

func TestCodewordWidth(t *testing.T) {
	if err := quick.Check(func(data uint16) bool {
		return uint32(Encode(data))>>CodeBits == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodewordsHaveEvenOverallParity(t *testing.T) {
	if err := quick.Check(func(data uint16) bool {
		return bits.OnesCount32(uint32(Encode(data)))%2 == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumDistanceAtLeastFour(t *testing.T) {
	// SECDED requires Hamming distance >= 4; sample pairs of codewords.
	datas := []uint16{0, 1, 2, 3, 0xFFFF, 0xAAAA, 0x5555, 0x00FF, 0xFF00, 0x1248}
	for i, a := range datas {
		for _, b := range datas[i+1:] {
			d := bits.OnesCount32(uint32(Encode(a)) ^ uint32(Encode(b)))
			if d < 4 {
				t.Fatalf("distance(%#x,%#x) = %d < 4", a, b, d)
			}
		}
	}
}

func TestFlipBitPanics(t *testing.T) {
	cw := Encode(0)
	for _, pos := range []int{-1, CodeBits} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FlipBit(%d) did not panic", pos)
				}
			}()
			cw.FlipBit(pos)
		}()
	}
}

func TestDecodeStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		DetectedDouble.String() != "double-error" {
		t.Error("status strings wrong")
	}
	if DecodeStatus(42).String() == "" {
		t.Error("unknown status String empty")
	}
}
