package ecc_test

import (
	"fmt"

	"repro/internal/ecc"
)

// Example demonstrates the SECDED codec correcting a single-bit upset in
// a 2-byte cache subblock.
func Example() {
	cw := ecc.Encode(0xBEEF)
	corrupted := cw.FlipBit(7)
	data, status, pos := ecc.Decode(corrupted)
	fmt.Printf("recovered %#x (%v, bit %d repaired)\n", data, status, pos)
	// Output: recovered 0xbeef (corrected, bit 7 repaired)
}
