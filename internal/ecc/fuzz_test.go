package ecc

import "testing"

// FuzzDecode ensures Decode never panics and that re-encoding a
// successfully decoded (OK or Corrected) word reproduces a valid
// codeword that decodes to the same data.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(Encode(0xBEEF)))
	f.Fuzz(func(t *testing.T, raw uint32) {
		cw := Codeword(raw & ((1 << CodeBits) - 1))
		data, status, _ := Decode(cw)
		if status == DetectedDouble {
			return
		}
		again, status2, _ := Decode(Encode(data))
		if status2 != OK || again != data {
			t.Fatalf("re-encode of %#x unstable: %#x status %v", data, again, status2)
		}
	})
}
