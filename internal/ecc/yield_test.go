package ecc

import (
	"math"
	"testing"

	"repro/internal/faultmodel"
	"repro/internal/sram"
)

func testGeom() faultmodel.Geometry {
	return faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
}

func models(t *testing.T) (conv, sec, dec YieldModel) {
	t.Helper()
	ber := sram.NewWangCalhounBER()
	g := testGeom()
	return NewConventional(ber, g), NewSECDED(ber, g), NewDECTED(ber, g)
}

func TestYieldOrdering(t *testing.T) {
	// At every voltage: conventional <= SECDED <= DECTED, the Fig. 3d
	// stacking.
	conv, sec, dec := models(t)
	for _, v := range faultmodel.Grid(0.30, 1.00) {
		yc, ys, yd := conv.Yield(v), sec.Yield(v), dec.Yield(v)
		if yc > ys+1e-12 || ys > yd+1e-12 {
			t.Fatalf("yield ordering violated at %v V: conv=%v sec=%v dec=%v", v, yc, ys, yd)
		}
	}
}

func TestYieldMonotoneInVoltage(t *testing.T) {
	_, sec, _ := models(t)
	prev := 0.0
	for _, v := range faultmodel.Grid(0.30, 1.00) {
		y := sec.Yield(v)
		if y < prev-1e-12 {
			t.Fatalf("SECDED yield decreased with voltage at %v", v)
		}
		prev = y
	}
}

func TestYieldBounds(t *testing.T) {
	conv, sec, dec := models(t)
	for _, m := range []YieldModel{conv, sec, dec} {
		for _, v := range []float64{0.3, 0.5, 0.7, 1.0} {
			if y := m.Yield(v); y < 0 || y > 1 {
				t.Fatalf("yield %v out of range at %v V", y, v)
			}
		}
	}
}

func TestMinVDDOrderingMatchesFig3d(t *testing.T) {
	// Fig. 3d: conventional needs the highest voltage; SECDED improves on
	// it; DECTED improves further.
	conv, sec, dec := models(t)
	vc, ok1 := conv.MinVDD(0.99, 0.30, 1.00)
	vs, ok2 := sec.MinVDD(0.99, 0.30, 1.00)
	vd, ok3 := dec.MinVDD(0.99, 0.30, 1.00)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("min VDD not found")
	}
	if !(vd <= vs && vs <= vc) {
		t.Fatalf("min VDD ordering: conv=%v sec=%v dec=%v", vc, vs, vd)
	}
	if vc-vs < 0.05 {
		t.Errorf("SECDED gains only %v V over conventional", vc-vs)
	}
}

func TestProposedBeatsSECDED(t *testing.T) {
	// The paper: "it did better than SECDED in all cache configurations";
	// DECTED can be slightly better at low associativity.
	ber := sram.NewWangCalhounBER()
	for _, g := range []faultmodel.Geometry{
		{Sets: 256, Ways: 4, BlockBits: 512},
		{Sets: 4096, Ways: 8, BlockBits: 512},
		{Sets: 512, Ways: 8, BlockBits: 512},
		{Sets: 8192, Ways: 16, BlockBits: 512},
	} {
		fm, err := faultmodel.New(g, ber)
		if err != nil {
			t.Fatal(err)
		}
		vProp, ok1 := fm.MinVDDForYield(0.99, 0.30, 1.00)
		vSec, ok2 := NewSECDED(ber, g).MinVDD(0.99, 0.30, 1.00)
		if !ok1 || !ok2 {
			t.Fatal("min VDD not found")
		}
		if vProp > vSec {
			t.Errorf("geometry %+v: proposed min VDD %v above SECDED %v", g, vProp, vSec)
		}
	}
}

func TestDECTEDBeatsProposedAtLowAssociativity(t *testing.T) {
	// Fig. 3d note: "DECTED achieved slightly better min-VDD than the
	// proposed mechanism due to low associativity".
	ber := sram.NewWangCalhounBER()
	g := faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
	fm, _ := faultmodel.New(g, ber)
	vProp, _ := fm.MinVDDForYield(0.99, 0.30, 1.00)
	vDec, _ := NewDECTED(ber, g).MinVDD(0.99, 0.30, 1.00)
	if vDec > vProp {
		t.Errorf("DECTED %v not better than proposed %v at 4-way", vDec, vProp)
	}
}

func TestPSubblockOK(t *testing.T) {
	_, sec, _ := models(t)
	// At very high voltage essentially every subblock is fine.
	if p := sec.PSubblockOK(1.0); p < 0.999999 {
		t.Errorf("nominal subblock OK prob %v", p)
	}
	// Probability decreases with voltage.
	if sec.PSubblockOK(0.4) >= sec.PSubblockOK(0.7) {
		t.Error("subblock OK prob not decreasing")
	}
}

func TestSubblocksPerBlock(t *testing.T) {
	_, sec, _ := models(t)
	if got := sec.SubblocksPerBlock(); got != 32 {
		t.Errorf("subblocks per 64B block = %d, want 32", got)
	}
}

func TestStorageOverhead(t *testing.T) {
	conv, sec, dec := models(t)
	if got := conv.StorageOverhead(); got != 0 {
		t.Errorf("conventional overhead %v", got)
	}
	if got := sec.StorageOverhead(); math.Abs(got-6.0/16) > 1e-12 {
		t.Errorf("SECDED overhead %v, want 0.375", got)
	}
	if got := dec.StorageOverhead(); math.Abs(got-11.0/16) > 1e-12 {
		t.Errorf("DECTED overhead %v", got)
	}
}

func TestPAtMostKEdges(t *testing.T) {
	if got := pAtMostK(0, 22, 1); got != 1 {
		t.Errorf("zero BER: %v", got)
	}
	if got := pAtMostK(1, 22, 1); got != 0 {
		t.Errorf("certain faults, k<n: %v", got)
	}
	if got := pAtMostK(1, 22, 22); got != 1 {
		t.Errorf("certain faults, k=n: %v", got)
	}
	// Against a direct binomial sum for moderate parameters.
	ber := 0.01
	direct := 0.0
	for k := 0; k <= 1; k++ {
		c := 1.0
		if k == 1 {
			c = 22
		}
		direct += c * math.Pow(ber, float64(k)) * math.Pow(1-ber, float64(22-k))
	}
	if got := pAtMostK(ber, 22, 1); math.Abs(got-direct) > 1e-12 {
		t.Errorf("pAtMostK = %v, want %v", got, direct)
	}
}
