package ecc

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

func blockData() []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = byte(i*37 + 5)
	}
	return d
}

func TestProtectedRoundTrip(t *testing.T) {
	b, err := NewProtectedBlock(blockData())
	if err != nil {
		t.Fatal(err)
	}
	if b.Subblocks() != 32 {
		t.Fatalf("%d subblocks", b.Subblocks())
	}
	res := b.Read()
	if res.Corrected != 0 || res.Uncorrectable != 0 {
		t.Fatalf("clean block reported errors: %+v", res)
	}
	if !bytes.Equal(res.Data, blockData()) {
		t.Fatal("data mismatch")
	}
}

func TestProtectedRejectsOddLength(t *testing.T) {
	if _, err := NewProtectedBlock(make([]byte, 63)); err == nil {
		t.Error("odd length accepted")
	}
	if _, err := NewProtectedBlock(nil); err == nil {
		t.Error("empty block accepted")
	}
}

func TestSingleSoftErrorsCorrected(t *testing.T) {
	b, _ := NewProtectedBlock(blockData())
	// One error in each of a few distinct subblocks: all correctable.
	b.words[0] = b.words[0].FlipBit(3)
	b.words[7] = b.words[7].FlipBit(21)
	b.words[31] = b.words[31].FlipBit(0)
	res := b.Read()
	if res.Corrected != 3 || res.Uncorrectable != 0 {
		t.Fatalf("corrections: %+v", res)
	}
	if !bytes.Equal(res.Data, blockData()) {
		t.Fatal("data not recovered")
	}
	// Scrubbing: a second read is clean.
	res2 := b.Read()
	if res2.Corrected != 0 {
		t.Fatalf("scrub failed: %+v", res2)
	}
}

func TestDoubleSoftErrorDetected(t *testing.T) {
	b, _ := NewProtectedBlock(blockData())
	b.words[4] = b.words[4].FlipBit(1).FlipBit(9)
	res := b.Read()
	if res.Uncorrectable != 1 {
		t.Fatalf("double error missed: %+v", res)
	}
	// All other subblocks still decode correctly.
	want := blockData()
	for i := 0; i < 64; i++ {
		if i/2 == 4 {
			continue
		}
		if res.Data[i] != want[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestInjectSoftErrorsStatistics(t *testing.T) {
	rng := stats.NewRNG(3)
	corrected, uncorrectable := 0, 0
	const trials = 500
	for i := 0; i < trials; i++ {
		b, _ := NewProtectedBlock(blockData())
		b.InjectSoftErrors(rng, 2)
		res := b.Read()
		corrected += res.Corrected
		uncorrectable += res.Uncorrectable
	}
	// Two random flips across 32 subblocks land in the same subblock
	// ~3% of the time; correction dominates.
	if corrected == 0 {
		t.Fatal("no corrections")
	}
	if uncorrectable > trials/5 {
		t.Fatalf("too many uncorrectable: %d/%d", uncorrectable, trials)
	}
	if uncorrectable == 0 {
		t.Log("no double hits in sample (possible but unlikely)")
	}
}
