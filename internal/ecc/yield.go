package ecc

import (
	"math"

	"repro/internal/faultmodel"
	"repro/internal/sram"
)

// Yield models for ECC-protected caches, used in the Fig. 3d comparison.
// A cache "yields" at a voltage if every subblock of every block remains
// correctable: <= 1 faulty cell per codeword for SECDED, <= 2 for DECTED.
// Check bits are stored in the same voltage-scaled array as the data, so
// they participate in the fault process (codeword width, not data width,
// enters the binomial).

// DECTED code geometry for 16 data bits: a shortened BCH(31,16) with
// t = 2 plus an extra detection parity — 10 check bits + 1, 27 total.
const (
	// DECTEDCodeBits is the DECTED codeword width for a 16-bit subblock.
	DECTEDCodeBits = 27
)

// pAtMostK returns P(X <= k) for X ~ Binomial(n, ber), computed directly
// (k is tiny here).
func pAtMostK(ber float64, n, k int) float64 {
	if ber <= 0 {
		return 1
	}
	if ber >= 1 {
		if k >= n {
			return 1
		}
		return 0
	}
	sum := 0.0
	logB := math.Log(ber)
	log1B := math.Log1p(-ber)
	for i := 0; i <= k; i++ {
		logC := lnChoose(n, i)
		sum += math.Exp(logC + float64(i)*logB + float64(n-i)*log1B)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// lnChoose returns ln(n choose k).
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// YieldModel computes cache yield at a voltage for an ECC scheme applied
// at subblock granularity.
type YieldModel struct {
	// BER is the per-bit fault model.
	BER sram.BERModel
	// Geom is the cache geometry (data bits per block, sets, ways).
	Geom faultmodel.Geometry
	// SubblockDataBits is the protected payload width (16 in the paper).
	SubblockDataBits int
	// CodewordBits is the stored codeword width including check bits.
	CodewordBits int
	// CorrectableBits is how many faulty cells per codeword the scheme
	// tolerates (0 = no protection, 1 = SECDED, 2 = DECTED).
	CorrectableBits int
}

// NewConventional returns the yield model of a cache with no fault
// tolerance: any faulty cell anywhere kills the cache at that voltage.
func NewConventional(ber sram.BERModel, geom faultmodel.Geometry) YieldModel {
	return YieldModel{BER: ber, Geom: geom,
		SubblockDataBits: DataBits, CodewordBits: DataBits, CorrectableBits: 0}
}

// NewSECDED returns the yield model of a SECDED-per-subblock cache.
func NewSECDED(ber sram.BERModel, geom faultmodel.Geometry) YieldModel {
	return YieldModel{BER: ber, Geom: geom,
		SubblockDataBits: DataBits, CodewordBits: CodeBits, CorrectableBits: 1}
}

// NewDECTED returns the yield model of a DECTED-per-subblock cache.
func NewDECTED(ber sram.BERModel, geom faultmodel.Geometry) YieldModel {
	return YieldModel{BER: ber, Geom: geom,
		SubblockDataBits: DataBits, CodewordBits: DECTEDCodeBits, CorrectableBits: 2}
}

// SubblocksPerBlock returns the number of protected subblocks per block.
func (y YieldModel) SubblocksPerBlock() int {
	return y.Geom.BlockBits / y.SubblockDataBits
}

// PSubblockOK returns the probability that one codeword stays
// correctable at the given voltage.
func (y YieldModel) PSubblockOK(vdd float64) float64 {
	ber := y.BER.BER(vdd)
	return pAtMostK(ber, y.CodewordBits, y.CorrectableBits)
}

// Yield returns the probability that every subblock of every block in
// the cache remains correctable at the given voltage.
func (y YieldModel) Yield(vdd float64) float64 {
	pOK := y.PSubblockOK(vdd)
	if pOK <= 0 {
		return 0
	}
	n := float64(y.Geom.Blocks() * y.SubblocksPerBlock())
	return math.Exp(n * math.Log(pOK))
}

// MinVDD returns the lowest grid voltage in [lo, hi] with yield at least
// the target, or ok=false if none qualifies.
func (y YieldModel) MinVDD(target, lo, hi float64) (vdd float64, ok bool) {
	for _, v := range faultmodel.Grid(lo, hi) {
		if y.Yield(v) >= target {
			return v, true
		}
	}
	return 0, false
}

// StorageOverhead returns the fraction of extra bits the scheme stores
// relative to unprotected data (e.g. 6/16 for SECDED over 2-byte
// subblocks).
func (y YieldModel) StorageOverhead() float64 {
	return float64(y.CodewordBits-y.SubblockDataBits) / float64(y.SubblockDataBits)
}
