// Package ecc provides error-correcting-code machinery for the Fig. 3d
// yield comparison: a real extended-Hamming SECDED codec over the paper's
// 2-byte (16-bit) subblocks, and analytical yield models for caches
// protected by SECDED and DECTED at subblock granularity. The paper uses
// these as fault-tolerance baselines: SECDED tolerates one faulty cell
// per subblock, DECTED two, and both spend their correction capability on
// hard voltage-induced faults, losing soft-error protection — one of the
// paper's arguments for keeping ECC orthogonal to power/capacity scaling.
package ecc

import (
	"fmt"
	"math/bits"
)

// SECDED parameters for 16 data bits: an extended Hamming (22,16) code.
// Positions 1..21 form a Hamming(21,16) code with parity bits at the
// power-of-two positions {1,2,4,8,16}; bit 0 of the codeword is the
// overall parity covering all 21 Hamming positions, upgrading single
// error correction with double error detection.
const (
	// DataBits is the subblock payload width (2 bytes, per Table 1).
	DataBits = 16
	// HammingBits is the number of Hamming parity bits.
	HammingBits = 5
	// CodeBits is the total codeword width including overall parity.
	CodeBits = 1 + DataBits + HammingBits // 22
)

// dataPositions lists the Hamming positions (1..21) that carry data bits,
// in order: all positions that are not powers of two.
var dataPositions = func() [DataBits]int {
	var ps [DataBits]int
	i := 0
	for pos := 1; pos <= DataBits+HammingBits; pos++ {
		if pos&(pos-1) != 0 { // not a power of two
			ps[i] = pos
			i++
		}
	}
	return ps
}()

// Codeword is a 22-bit SECDED codeword stored in the low bits of a
// uint32. Bit 0 is the overall parity; bits 1..21 are Hamming positions.
type Codeword uint32

// Encode produces the SECDED codeword for 16 data bits.
func Encode(data uint16) Codeword {
	var cw uint32
	// Place data bits at non-power-of-two Hamming positions.
	for i, pos := range dataPositions {
		if data>>(uint(i))&1 == 1 {
			cw |= 1 << uint(pos)
		}
	}
	// Compute Hamming parity bits: parity bit at position p = 2^k covers
	// every position whose binary representation has bit k set.
	for k := 0; k < HammingBits; k++ {
		p := 1 << uint(k)
		parity := uint32(0)
		for pos := 1; pos <= DataBits+HammingBits; pos++ {
			if pos&p != 0 && pos != p {
				parity ^= cw >> uint(pos) & 1
			}
		}
		if parity == 1 {
			cw |= 1 << uint(p)
		}
	}
	// Overall parity over positions 1..21 at bit 0 (even parity).
	if bits.OnesCount32(cw>>1)&1 == 1 {
		cw |= 1
	}
	return Codeword(cw)
}

// DecodeStatus classifies the outcome of a decode.
type DecodeStatus int

const (
	// OK means the codeword was error-free.
	OK DecodeStatus = iota
	// Corrected means a single-bit error was corrected.
	Corrected
	// DetectedDouble means a double-bit error was detected but cannot be
	// corrected; the returned data is unreliable.
	DetectedDouble
)

// String implements fmt.Stringer.
func (s DecodeStatus) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DetectedDouble:
		return "double-error"
	default:
		return fmt.Sprintf("DecodeStatus(%d)", int(s))
	}
}

// Decode checks and (if possible) corrects a received codeword, returning
// the recovered data, the decode status, and for Corrected results the
// codeword bit position (0..21) that was repaired.
func Decode(received Codeword) (data uint16, status DecodeStatus, fixedPos int) {
	cw := uint32(received)
	// Syndrome: recompute each Hamming parity including the stored bit.
	syndrome := 0
	for k := 0; k < HammingBits; k++ {
		p := 1 << uint(k)
		parity := uint32(0)
		for pos := 1; pos <= DataBits+HammingBits; pos++ {
			if pos&p != 0 {
				parity ^= cw >> uint(pos) & 1
			}
		}
		if parity == 1 {
			syndrome |= p
		}
	}
	overallOK := bits.OnesCount32(cw)&1 == 0
	fixedPos = -1
	switch {
	case syndrome == 0 && overallOK:
		status = OK
	case syndrome == 0 && !overallOK:
		// The overall parity bit itself flipped.
		cw ^= 1
		status, fixedPos = Corrected, 0
	case syndrome != 0 && !overallOK:
		// Single error at the syndrome position.
		if syndrome > DataBits+HammingBits {
			// Syndrome points outside the codeword: multi-bit error.
			status = DetectedDouble
			break
		}
		cw ^= 1 << uint(syndrome)
		status, fixedPos = Corrected, syndrome
	default: // syndrome != 0 && overallOK
		status = DetectedDouble
	}
	for i, pos := range dataPositions {
		if cw>>uint(pos)&1 == 1 {
			data |= 1 << uint(i)
		}
	}
	return data, status, fixedPos
}

// FlipBit returns the codeword with the given bit position (0..21)
// inverted, for fault-injection tests.
func (c Codeword) FlipBit(pos int) Codeword {
	if pos < 0 || pos >= CodeBits {
		panic(fmt.Sprintf("ecc: bit position %d out of 0..%d", pos, CodeBits-1))
	}
	return c ^ Codeword(1<<uint(pos))
}
