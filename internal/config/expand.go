package config

import (
	"fmt"

	"repro/internal/expers"
	"repro/internal/runner"
	"repro/internal/trace"
)

// ExpandCampaign lowers a validated document to the flat campaign the
// runner executes: every grid section becomes wire-format jobs against
// the registered experiment kinds, in the same deterministic order the
// historical binaries ran them. Grid jobs pin the document seed so all
// cells share fault maps; campaign-section jobs keep their own seeding
// (0 = runner-derived per-job seed).
func (d *Document) ExpandCampaign() (runner.Campaign, error) {
	camp := runner.Campaign{Name: d.Name, Seed: d.Seed}
	var (
		jobs []runner.Spec
		err  error
	)
	switch {
	case d.Sim != nil:
		jobs, err = d.Sim.expand(d.Seed)
	case d.Sweep != nil:
		jobs, err = d.Sweep.expand(d.Seed)
	case d.Multicore != nil:
		jobs, err = d.Multicore.expand(d.Seed)
	case d.Campaign != nil:
		jobs, err = d.Campaign.expand()
	default:
		err = fmt.Errorf("config: document has no experiment section")
	}
	if err != nil {
		return runner.Campaign{}, err
	}
	camp.Jobs = jobs
	return camp, nil
}

// expand lowers the Fig. 4 grid: config × benchmark × mode, every cell
// pinned to the master seed (the cells of one grid must share fault
// maps to be comparable, exactly as pcs-sim ran them).
func (s *SimSpec) expand(seed uint64) ([]runner.Spec, error) {
	configs, err := systemConfigs(s.Config)
	if err != nil {
		return nil, err
	}
	benches := trace.Names()
	if s.Bench != "" {
		benches = []string{s.Bench}
	}
	var jobs []runner.Spec
	for _, cfg := range configs {
		for _, bench := range benches {
			for _, mode := range []string{"baseline", "SPCS", "DPCS"} {
				p := expers.CPUSimParams{
					Config: cfg, Mode: mode, Bench: bench,
					WarmupInstr: s.WarmupInstr, SimInstr: s.SimInstr, Seed: seed,
				}
				raw, err := marshalJSON(&p)
				if err != nil {
					return nil, err
				}
				jobs = append(jobs, runner.Spec{
					Kind:   "cpusim",
					Name:   fmt.Sprintf("%s/%s/%s", cfg, bench, mode),
					Params: raw,
				})
			}
		}
	}
	return jobs, nil
}

// StudyList builds the document's study list in order; the CLI runs
// each as its own campaign and renders its table. seed pins the
// simulation-backed studies' runs (the goldens use seed 1).
func (s *SweepSpec) StudyList(seed uint64) ([]expers.Study, error) {
	studies := make([]expers.Study, 0, len(s.Studies))
	for _, name := range s.Studies {
		var (
			st  expers.Study
			err error
		)
		if name == "mechs" && len(s.Mechanisms) > 0 {
			// The mechs study is the only mechanism-parameterized one;
			// the spec's selection narrows its comparison set.
			st, err = expers.MechStudy(s.Mechanisms)
		} else {
			st, err = expers.StudyByName(name, s.Bench, s.SimInstr, seed)
		}
		if err != nil {
			return nil, err
		}
		studies = append(studies, st)
	}
	return studies, nil
}

// expand concatenates the selected studies' job lists into one flat
// campaign, prefixing each job name with its study ("dpcs/baseline") so
// remote results stay attributable.
func (s *SweepSpec) expand(seed uint64) ([]runner.Spec, error) {
	studies, err := s.StudyList(seed)
	if err != nil {
		return nil, err
	}
	var jobs []runner.Spec
	for _, st := range studies {
		for _, j := range st.Jobs {
			j.Name = st.Name + "/" + j.Name
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}

// expand lowers the multi-core grid: core count × mode, every cell
// pinned to the master seed, in pcs-multicore's row order.
func (s *MulticoreSpec) expand(seed uint64) ([]runner.Spec, error) {
	var jobs []runner.Spec
	for _, n := range s.Cores {
		for _, mode := range []string{"baseline", "SPCS", "DPCS"} {
			p := expers.MulticoreParams{
				Config:                 s.Config,
				Mode:                   mode,
				Cores:                  n,
				Bench:                  s.Bench,
				WarmupInstr:            s.WarmupInstr,
				InstrPerCore:           s.InstrPerCore,
				SharedBytes:            s.SharedBytes,
				SharedFrac:             s.SharedFrac,
				CoherencePenaltyCycles: s.CoherencePenaltyCycles,
				Seed:                   seed,
			}
			raw, err := marshalJSON(&p)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, runner.Spec{
				Kind:   "multicore",
				Name:   fmt.Sprintf("%dcore/%s", n, mode),
				Params: raw,
			})
		}
	}
	return jobs, nil
}

// expand normalizes the explicit job list: every job strict-decoded
// against its kind's parameter type with defaults applied.
func (s *CampaignSpec) expand() ([]runner.Spec, error) {
	jobs := make([]runner.Spec, 0, len(s.Jobs))
	for i, j := range s.Jobs {
		spec, err := NormalizeJob(j)
		if err != nil {
			return nil, fmt.Errorf("config: job %d: %w", i, err)
		}
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("%s-%d", spec.Kind, i)
		}
		jobs = append(jobs, spec)
	}
	return jobs, nil
}
