package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/expers"
	"repro/internal/mechanism"
)

// TestRoundTripStability checks encode → decode → encode is a fixed
// point for every section shape: the canonical JSON form is stable.
func TestRoundTripStability(t *testing.T) {
	docs := []string{
		`{"version":1,"sim":{}}`,
		`{"version":1,"name":"fig4-a","seed":7,"workers":4,"sim":{"config":"A","bench":"mcf.s","warmup_instr":1000,"sim_instr":5000}}`,
		`{"version":1,"sweep":{}}`,
		`{"version":1,"sweep":{"studies":["assoc","dpcs"],"bench":"mcf.s","sim_instr":100000}}`,
		`{"version":1,"multicore":{}}`,
		`{"version":1,"multicore":{"cores":[2,8],"shared_frac":0.25}}`,
		`{"version":1,"campaign":{"jobs":[{"kind":"minvdd","name":"m","params":{"size_bytes":32768,"ways":4,"block_bytes":64}}]}}`,
	}
	for _, src := range docs {
		d1, err := Decode([]byte(src), JSON)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		enc1, err := d1.Encode()
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		d2, err := Decode(enc1, JSON)
		if err != nil {
			t.Fatalf("decode(encode(%s)): %v\nencoded:\n%s", src, err, enc1)
		}
		enc2, err := d2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Errorf("%s: encoding not stable:\n--- first ---\n%s--- second ---\n%s", src, enc1, enc2)
		}
	}
}

// TestUnknownFieldRejection checks strict decoding at every nesting
// depth, in both formats.
func TestUnknownFieldRejection(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fmt  Format
	}{
		{"top-level json", `{"version":1,"sim":{},"typo":1}`, JSON},
		{"section json", `{"version":1,"sim":{"sim_inst":5000}}`, JSON},
		{"sweep json", `{"version":1,"sweep":{"benchmark":"mcf.s"}}`, JSON},
		{"multicore json", `{"version":1,"multicore":{"coars":[1]}}`, JSON},
		{"job params json", `{"version":1,"campaign":{"jobs":[{"kind":"minvdd","params":{"size_bytes":1024,"ways":2,"block_bytes":64,"yeild":0.9}}]}}`, JSON},
		{"trailing json", `{"version":1,"sim":{}} {"version":1}`, JSON},
		{"top-level toml", "version = 1\ntypo = 1\n[sim]\n", TOML},
		{"section toml", "version = 1\n[sim]\nsim_inst = 5000\n", TOML},
		{"job params toml", "version = 1\n[[campaign.jobs]]\nkind = \"minvdd\"\n[campaign.jobs.params]\nsize_bytes = 1024\nways = 2\nblock_bytes = 64\nyeild = 0.9\n", TOML},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.src), c.fmt); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.src)
		}
	}
}

// TestDocumentValidation rejects malformed documents with clear errors.
func TestDocumentValidation(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`{"sim":{}}`, "version"},
		{`{"version":2,"sim":{}}`, "version"},
		{`{"version":1}`, "exactly one"},
		{`{"version":1,"sim":{},"sweep":{}}`, "exactly one"},
		{`{"version":1,"sim":{"config":"Z"}}`, "config"},
		{`{"version":1,"sim":{"bench":"nope.s"}}`, "benchmark"},
		{`{"version":1,"sweep":{"studies":["warp"]}}`, "study"},
		{`{"version":1,"sweep":{"studies":["assoc","assoc"]}}`, "twice"},
		{`{"version":1,"multicore":{"cores":[0]}}`, "core count"},
		{`{"version":1,"multicore":{"shared_frac":1.5}}`, "shared_frac"},
		{`{"version":1,"campaign":{}}`, "no jobs"},
		{`{"version":1,"campaign":{"jobs":[{"kind":"warp"}]}}`, "unknown kind"},
		{`{"version":1,"campaign":{"jobs":[{"kind":"cpusim","params":{"bench":"bzip2.s"}}]}}`, ""},
	}
	for _, c := range cases {
		_, err := Decode([]byte(c.src), JSON)
		if err == nil {
			t.Errorf("%s: accepted", c.src)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.src, err, c.want)
		}
	}
}

// TestSectionDefaults checks every omitted knob fills with its
// documented default.
func TestSectionDefaults(t *testing.T) {
	d, err := Decode([]byte(`{"version":1,"sim":{}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "sim" || d.Seed != 1 || d.Workers != 0 {
		t.Errorf("document defaults: %+v", d)
	}
	if got, want := *d.Sim, (SimSpec{Config: "both", WarmupInstr: 2_000_000, SimInstr: 24_000_000}); got != want {
		t.Errorf("sim defaults: %+v, want %+v", got, want)
	}

	d, err = Decode([]byte(`{"version":1,"sweep":{}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "sweep" || d.Sweep.Bench != "bzip2.s" || d.Sweep.SimInstr != 4_000_000 {
		t.Errorf("sweep defaults: %+v", d.Sweep)
	}
	if !reflect.DeepEqual(d.Sweep.Studies, expers.StudyNames()) {
		t.Errorf("sweep studies default: %v, want %v", d.Sweep.Studies, expers.StudyNames())
	}

	d, err = Decode([]byte(`{"version":1,"multicore":{}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	want := MulticoreSpec{
		Config: "A", Bench: "gobmk.s", Cores: []int{1, 2, 4},
		WarmupInstr: 400_000, InstrPerCore: 2_000_000,
		SharedBytes: 1 << 20, SharedFrac: 0.10, CoherencePenaltyCycles: 20,
	}
	if !reflect.DeepEqual(*d.Multicore, want) {
		t.Errorf("multicore defaults: %+v, want %+v", *d.Multicore, want)
	}
}

// TestJobParamDefaults checks default-filling through NormalizeJob for
// every registered campaign kind: the normalized params re-decode into
// the kind's parameter type with the documented defaults present.
func TestJobParamDefaults(t *testing.T) {
	norm := func(t *testing.T, kind, params string) json.RawMessage {
		t.Helper()
		spec, err := NormalizeJob(Job{Kind: kind, Name: "j", Params: json.RawMessage(params)})
		if err != nil {
			t.Fatalf("%s %s: %v", kind, params, err)
		}
		return spec.Params
	}

	t.Run("cpusim", func(t *testing.T) {
		var p expers.CPUSimParams
		if err := json.Unmarshal(norm(t, "cpusim", `{"bench":"bzip2.s","sim_instr":1000}`), &p); err != nil {
			t.Fatal(err)
		}
		if p.Config != "A" || p.Mode != "baseline" {
			t.Errorf("cpusim defaults: %+v", p)
		}
	})
	t.Run("multicore", func(t *testing.T) {
		var p expers.MulticoreParams
		if err := json.Unmarshal(norm(t, "multicore", `{"bench":"gobmk.s","cores":2,"instr_per_core":1000}`), &p); err != nil {
			t.Fatal(err)
		}
		if p.Config != "A" || p.Mode != "baseline" || p.CoherencePenaltyCycles != 20 {
			t.Errorf("multicore defaults: %+v", p)
		}
	})
	t.Run("minvdd", func(t *testing.T) {
		var p expers.MinVDDParams
		if err := json.Unmarshal(norm(t, "minvdd", `{"size_bytes":1024,"ways":2,"block_bytes":64}`), &p); err != nil {
			t.Fatal(err)
		}
		if p.Yield != 0.99 || p.VMin != 0.30 || p.VMax != 1.00 {
			t.Errorf("minvdd defaults: %+v", p)
		}
	})
	t.Run("vddlevels", func(t *testing.T) {
		norm(t, "vddlevels", `{"levels":3}`)
	})
	t.Run("cells", func(t *testing.T) {
		norm(t, "cells", `{}`)
	})
	t.Run("leakage", func(t *testing.T) {
		var p expers.LeakageParams
		if err := json.Unmarshal(norm(t, "leakage", `{}`), &p); err != nil {
			t.Fatal(err)
		}
		if p.SimInstr != 4_000_000 {
			t.Errorf("leakage defaults: %+v", p)
		}
	})
	t.Run("ablation", func(t *testing.T) {
		var p expers.AblationParams
		if err := json.Unmarshal(norm(t, "ablation", `{"sim_instr":8000}`), &p); err != nil {
			t.Fatal(err)
		}
		if len(p.Benches) == 0 || p.WarmupInstr != 2000 {
			t.Errorf("ablation defaults: %+v", p)
		}
	})
}

// TestKnownKindsMatchRegistry pins the spec layer's kind list to the
// campaign registry's: a kind added to one without the other fails.
func TestKnownKindsMatchRegistry(t *testing.T) {
	got := KnownKinds()
	want := expers.NewCampaignRegistry().Kinds()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("config kinds %v != registry kinds %v", got, want)
	}
}

// TestSimExpansion checks the Fig. 4 grid lowers to the historical
// config × bench × mode job order with the master seed pinned.
func TestSimExpansion(t *testing.T) {
	d, err := Decode([]byte(`{"version":1,"seed":9,"sim":{"bench":"mcf.s","sim_instr":1000,"warmup_instr":100}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if camp.Name != "sim" || camp.Seed != 9 {
		t.Fatalf("campaign %+v", camp)
	}
	wantNames := []string{
		"A/mcf.s/baseline", "A/mcf.s/SPCS", "A/mcf.s/DPCS",
		"B/mcf.s/baseline", "B/mcf.s/SPCS", "B/mcf.s/DPCS",
	}
	if len(camp.Jobs) != len(wantNames) {
		t.Fatalf("jobs = %d, want %d", len(camp.Jobs), len(wantNames))
	}
	for i, j := range camp.Jobs {
		if j.Name != wantNames[i] || j.Kind != "cpusim" {
			t.Errorf("job %d = %s/%s, want cpusim/%s", i, j.Kind, j.Name, wantNames[i])
		}
		var p expers.CPUSimParams
		if err := json.Unmarshal(j.Params, &p); err != nil {
			t.Fatal(err)
		}
		if p.Seed != 9 || p.SimInstr != 1000 || p.WarmupInstr != 100 {
			t.Errorf("job %d params %+v", i, p)
		}
	}
}

// TestSweepExpansion checks study jobs concatenate with study-prefixed
// names, matching the studies' own job lists.
func TestSweepExpansion(t *testing.T) {
	d, err := Decode([]byte(`{"version":1,"sweep":{"studies":["levels","dpcs"],"sim_instr":5000}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(expers.LevelsStudy().Jobs) + len(expers.DPCSStudy("bzip2.s", 5000, 1).Jobs)
	if len(camp.Jobs) != wantLen {
		t.Fatalf("jobs = %d, want %d", len(camp.Jobs), wantLen)
	}
	if camp.Jobs[0].Name != "levels/levels=1" {
		t.Errorf("first job %q", camp.Jobs[0].Name)
	}
	if got := camp.Jobs[len(expers.LevelsStudy().Jobs)].Name; got != "dpcs/baseline" {
		t.Errorf("first dpcs job %q", got)
	}
}

// TestMulticoreExpansion checks the cores × mode grid order and pinned
// seed.
func TestMulticoreExpansion(t *testing.T) {
	d, err := Decode([]byte(`{"version":1,"multicore":{"cores":[2,4]}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, j := range camp.Jobs {
		names = append(names, j.Name)
	}
	want := []string{"2core/baseline", "2core/SPCS", "2core/DPCS", "4core/baseline", "4core/SPCS", "4core/DPCS"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("job names %v, want %v", names, want)
	}
	var p expers.MulticoreParams
	if err := json.Unmarshal(camp.Jobs[0].Params, &p); err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 || p.Cores != 2 || p.Bench != "gobmk.s" {
		t.Errorf("params %+v", p)
	}
}

// TestCampaignExpansionSeedConvention checks the campaign section keeps
// per-job seeding: params without a seed stay seedless (runner derives),
// pinned seeds survive.
func TestCampaignExpansionSeedConvention(t *testing.T) {
	src := `{"version":1,"seed":5,"campaign":{"jobs":[
		{"kind":"cpusim","params":{"bench":"bzip2.s","sim_instr":100}},
		{"kind":"cpusim","params":{"bench":"bzip2.s","sim_instr":100,"seed":3}}
	]}}`
	d, err := Decode([]byte(src), JSON)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if camp.Seed != 5 {
		t.Fatalf("campaign seed %d", camp.Seed)
	}
	var p0, p1 expers.CPUSimParams
	if err := json.Unmarshal(camp.Jobs[0].Params, &p0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(camp.Jobs[1].Params, &p1); err != nil {
		t.Fatal(err)
	}
	if p0.Seed != 0 {
		t.Errorf("unseeded job gained seed %d", p0.Seed)
	}
	if p1.Seed != 3 {
		t.Errorf("pinned seed lost: %d", p1.Seed)
	}
	if camp.Jobs[0].Name != "cpusim-0" {
		t.Errorf("default job name %q", camp.Jobs[0].Name)
	}
}

// TestExpandBytesSniffsFormat checks the server hook accepts both
// encodings of the same document and produces the same campaign.
func TestExpandBytesSniffsFormat(t *testing.T) {
	jsonSrc := `{"version":1,"workers":3,"multicore":{"cores":[2]}}`
	tomlSrc := "version = 1\nworkers = 3\n\n[multicore]\ncores = [2]\n"
	cj, wj, err := ExpandBytes([]byte(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	ct, wt, err := ExpandBytes([]byte(tomlSrc))
	if err != nil {
		t.Fatal(err)
	}
	if wj != 3 || wt != 3 {
		t.Fatalf("workers %d, %d", wj, wt)
	}
	bj, _ := json.Marshal(cj)
	bt, _ := json.Marshal(ct)
	if string(bj) != string(bt) {
		t.Fatalf("campaigns differ:\njson: %s\ntoml: %s", bj, bt)
	}
}

// TestLoadDispatchesOnExtension writes both encodings to disk and loads
// them back.
func TestLoadDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"spec.json": `{"version":1,"sim":{"sim_instr":1000}}`,
		"spec.toml": "version = 1\n[sim]\nsim_instr = 1_000\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if d.Sim == nil || d.Sim.SimInstr != 1000 {
			t.Errorf("%s: %+v", name, d.Sim)
		}
	}
	if _, err := Load(filepath.Join(dir, "spec.yaml")); err == nil {
		t.Error("accepted .yaml")
	}
}

// TestDigestCanonical checks the spec digest ignores formatting and
// source-format differences but tracks semantic ones.
func TestDigestCanonical(t *testing.T) {
	a, err := Decode([]byte(`{"version":1,"seed":7,"sim":{"config":"A","bench":"mcf.s","sim_instr":5000}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(`{"sim":{"sim_instr":5000,"bench":"mcf.s","config":"A"},"seed":7,"version":1}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Errorf("reordered spec digests differ: %s vs %s", da, db)
	}
	c := *a
	c.Seed = 8
	dc, err := c.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if dc == da {
		t.Error("seed change did not change digest")
	}
}

// TestSweepMechanismValidation checks the sweep section's mechanism
// selection: unknown and duplicate names must fail Decode with a clear
// error, and a valid selection parameterises the "mechs" study.
func TestSweepMechanismValidation(t *testing.T) {
	if _, err := Decode([]byte(
		`{"version":1,"sweep":{"studies":["mechs"],"mechanisms":["nosuch"]}}`), JSON); err == nil ||
		!strings.Contains(err.Error(), "unknown mechanism") {
		t.Errorf("unknown mechanism error = %v", err)
	}
	if _, err := Decode([]byte(
		`{"version":1,"sweep":{"studies":["mechs"],"mechanisms":["proposed","proposed"]}}`), JSON); err == nil ||
		!strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate mechanism error = %v", err)
	}
	d, err := Decode([]byte(
		`{"version":1,"sweep":{"studies":["mechs"],"mechanisms":["tscache","l2c2","proposed"]}}`), JSON)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (the selected mechanisms)", len(camp.Jobs))
	}
	// Registry rank order, not request order.
	for i, want := range []string{"mechs/tscache", "mechs/l2c2", "mechs/proposed"} {
		if camp.Jobs[i].Name != want {
			t.Errorf("job %d = %q, want %q", i, camp.Jobs[i].Name, want)
		}
	}
}

// TestMechMinVDDJobNormalization checks the mechminvdd campaign kind:
// NormalizeJob pins the registered mechanism version into the canonical
// params (so the content-addressed cache key moves when a model is
// revised), and rejects a stale pin.
func TestMechMinVDDJobNormalization(t *testing.T) {
	spec, err := NormalizeJob(Job{Kind: "mechminvdd", Name: "ts",
		Params: json.RawMessage(`{"mechanism":"tscache"}`)})
	if err != nil {
		t.Fatal(err)
	}
	var p expers.MechMinVDDParams
	if err := json.Unmarshal(spec.Params, &p); err != nil {
		t.Fatal(err)
	}
	d, ok := mechanism.ByName("tscache")
	if !ok {
		t.Fatal("tscache not registered")
	}
	if p.MechVersion != d.Version {
		t.Errorf("normalized mech_version = %q, want registered %q", p.MechVersion, d.Version)
	}
	if p.Org != "l1a" || p.NLowVDDs != 2 || p.Yield != 0.99 {
		t.Errorf("defaults not applied: %+v", p)
	}
	if _, err := NormalizeJob(Job{Kind: "mechminvdd",
		Params: json.RawMessage(`{"mechanism":"tscache","mech_version":"0-stale"}`)}); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("stale version pin error = %v", err)
	}
	if _, err := NormalizeJob(Job{Kind: "mechminvdd",
		Params: json.RawMessage(`{"mechanism":"nosuch"}`)}); err == nil ||
		!strings.Contains(err.Error(), "unknown mechanism") {
		t.Errorf("unknown mechanism error = %v", err)
	}
}
