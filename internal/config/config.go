// Package config defines the declarative experiment-spec layer: a
// versioned, validated document (JSON or TOML) that describes a
// complete experiment — the Fig. 4 simulation grid, a design-space
// sweep, a multi-core study, or a raw campaign job list — independently
// of how it is executed. The pcs CLI loads a spec with -spec and runs it
// locally; POST /campaigns on a pcs-server accepts the same document and
// runs it through the same registry, so local and remote runs are
// byte-identical from one artifact.
//
// # Document shape
//
// Every document carries a schema version (currently 1), an optional
// name, a master seed (default 1) and a worker count (default
// GOMAXPROCS at run time), plus exactly one experiment section:
//
//	{"version": 1, "sim": {...}}            the Fig. 4 grid
//	{"version": 1, "sweep": {...}}          design-space studies
//	{"version": 1, "multicore": {...}}      the multi-core extension
//	{"version": 1, "campaign": {...}}       explicit job list
//
// Decoding is strict: unknown fields anywhere in the document —
// including inside per-job parameter payloads — are rejected, so a
// typoed knob fails loudly instead of silently running the default
// experiment.
//
// # Seed derivation
//
// The document seed is the campaign master seed. Grid sections (sim,
// sweep, multicore) pin that seed into every job's parameters, so all
// cells of one grid share fault maps and workloads and are directly
// comparable — exactly how the historical binaries seeded their runs. A
// campaign-section job whose params omit "seed" (or set it to 0) gets
// the runner's derived per-job seed, stats.Derive(master, index), which
// is what Monte-Carlo campaigns want.
package config

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/expers"
	"repro/internal/mechanism"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Version is the current spec schema version.
const Version = 1

// Document is one experiment spec. Exactly one of the experiment
// sections (Sim, Sweep, Multicore, Campaign) must be present.
type Document struct {
	// Version is the spec schema version; must be 1.
	Version int `json:"version"`
	// Name labels the campaign and its runs/<name>/ artifacts. Defaults
	// to the experiment section's name.
	Name string `json:"name,omitempty"`
	// Seed is the master seed; defaults to 1 (the golden-output seed).
	Seed uint64 `json:"seed,omitempty"`
	// Workers sizes the worker pool; 0 means GOMAXPROCS at run time.
	Workers int `json:"workers,omitempty"`

	Sim       *SimSpec       `json:"sim,omitempty"`
	Sweep     *SweepSpec     `json:"sweep,omitempty"`
	Multicore *MulticoreSpec `json:"multicore,omitempty"`
	Campaign  *CampaignSpec  `json:"campaign,omitempty"`
}

// SimSpec describes the Fig. 4 architectural simulation: the 16-workload
// suite (or one named benchmark) under baseline, SPCS and DPCS.
type SimSpec struct {
	// Config selects the system configuration: "A", "B" or "both"
	// (default "both").
	Config string `json:"config,omitempty"`
	// Bench restricts the run to one named benchmark; empty means the
	// full suite.
	Bench string `json:"bench,omitempty"`
	// WarmupInstr is the fast-forward window (default 2,000,000).
	WarmupInstr uint64 `json:"warmup_instr,omitempty"`
	// SimInstr is the measured window (default 24,000,000 — the
	// fig4_output.txt scale).
	SimInstr uint64 `json:"sim_instr,omitempty"`
}

// SweepSpec describes the design-space studies around the mechanism.
type SweepSpec struct {
	// Studies lists the studies to run, in order. Empty means all of
	// them in the canonical order: assoc, levels, cells, leakage, dpcs,
	// ablate, mechs.
	Studies []string `json:"studies,omitempty"`
	// Mechanisms selects the fault-tolerance mechanisms the "mechs"
	// study compares, by registry name (internal/mechanism). Empty
	// means every registered mechanism.
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Bench is the workload for the dpcs study (default "bzip2.s").
	Bench string `json:"bench,omitempty"`
	// SimInstr is the measured window for the simulation-backed studies
	// (dpcs, leakage, ablate; default 4,000,000).
	SimInstr uint64 `json:"sim_instr,omitempty"`
}

// MulticoreSpec describes the multi-core extension study: a core-count ×
// policy grid over one shared PCS-managed L2.
type MulticoreSpec struct {
	// Config selects the system configuration: "A" (default) or "B".
	Config string `json:"config,omitempty"`
	// Bench is the workload run on every core (default "gobmk.s").
	Bench string `json:"bench,omitempty"`
	// Cores lists the core counts to sweep (default [1, 2, 4]).
	Cores []int `json:"cores,omitempty"`
	// WarmupInstr is the per-core fast-forward window (default 400,000).
	WarmupInstr uint64 `json:"warmup_instr,omitempty"`
	// InstrPerCore is the measured window per core (default 2,000,000).
	InstrPerCore uint64 `json:"instr_per_core,omitempty"`
	// SharedBytes is the shared-region size (default 1 MiB).
	SharedBytes uint64 `json:"shared_bytes,omitempty"`
	// SharedFrac is the fraction of data accesses hitting the shared
	// region (default 0.10).
	SharedFrac float64 `json:"shared_frac,omitempty"`
	// CoherencePenaltyCycles is the invalidation penalty (default 20).
	CoherencePenaltyCycles uint64 `json:"coherence_penalty_cycles,omitempty"`
}

// CampaignSpec is an explicit job list — the escape hatch for campaigns
// the grid sections do not express (Monte-Carlo sweeps, mixed kinds).
type CampaignSpec struct {
	Jobs []Job `json:"jobs"`
}

// Job is one campaign job: a registered experiment kind plus its
// parameter document.
type Job struct {
	Kind   string          `json:"kind"`
	Name   string          `json:"name,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
}

// ApplyDefaults fills every omitted field with its documented default,
// recursively into the experiment section. It does not validate; call
// Validate after.
func (d *Document) ApplyDefaults() {
	if d.Seed == 0 {
		d.Seed = 1
	}
	switch {
	case d.Sim != nil:
		if d.Name == "" {
			d.Name = "sim"
		}
		d.Sim.applyDefaults()
	case d.Sweep != nil:
		if d.Name == "" {
			d.Name = "sweep"
		}
		d.Sweep.applyDefaults()
	case d.Multicore != nil:
		if d.Name == "" {
			d.Name = "multicore"
		}
		d.Multicore.applyDefaults()
	case d.Campaign != nil:
		if d.Name == "" {
			d.Name = "campaign"
		}
	}
}

func (s *SimSpec) applyDefaults() {
	if s.Config == "" {
		s.Config = "both"
	}
	if s.WarmupInstr == 0 {
		s.WarmupInstr = 2_000_000
	}
	if s.SimInstr == 0 {
		s.SimInstr = 24_000_000
	}
}

func (s *SweepSpec) applyDefaults() {
	if len(s.Studies) == 0 {
		s.Studies = expers.StudyNames()
	}
	if s.Bench == "" {
		s.Bench = "bzip2.s"
	}
	if s.SimInstr == 0 {
		s.SimInstr = 4_000_000
	}
}

func (s *MulticoreSpec) applyDefaults() {
	if s.Config == "" {
		s.Config = "A"
	}
	if s.Bench == "" {
		s.Bench = "gobmk.s"
	}
	if len(s.Cores) == 0 {
		s.Cores = []int{1, 2, 4}
	}
	if s.WarmupInstr == 0 {
		s.WarmupInstr = 400_000
	}
	if s.InstrPerCore == 0 {
		s.InstrPerCore = 2_000_000
	}
	if s.SharedBytes == 0 {
		s.SharedBytes = 1 << 20
	}
	if s.SharedFrac == 0 {
		s.SharedFrac = 0.10
	}
	if s.CoherencePenaltyCycles == 0 {
		s.CoherencePenaltyCycles = 20
	}
}

// Validate checks the document after ApplyDefaults: schema version,
// exactly one experiment section, known benchmarks and studies, and —
// for the campaign section — known kinds with well-formed parameter
// documents.
func (d *Document) Validate() error {
	if d.Version != Version {
		return fmt.Errorf("config: unsupported spec version %d (this build speaks version %d)", d.Version, Version)
	}
	n := 0
	for _, set := range []bool{d.Sim != nil, d.Sweep != nil, d.Multicore != nil, d.Campaign != nil} {
		if set {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("config: want exactly one experiment section (sim, sweep, multicore or campaign), got %d", n)
	}
	switch {
	case d.Sim != nil:
		return d.Sim.validate()
	case d.Sweep != nil:
		return d.Sweep.validate()
	case d.Multicore != nil:
		return d.Multicore.validate()
	default:
		return d.Campaign.validate()
	}
}

// systemConfigs resolves a sim config selector to the configs to run.
func systemConfigs(sel string) ([]string, error) {
	switch strings.ToUpper(strings.TrimSpace(sel)) {
	case "A":
		return []string{"A"}, nil
	case "B":
		return []string{"B"}, nil
	case "BOTH":
		return []string{"A", "B"}, nil
	default:
		return nil, fmt.Errorf("config: unknown system config %q (want A, B or both)", sel)
	}
}

func validBench(name string) error {
	if _, ok := trace.ByName(name); !ok {
		return fmt.Errorf("config: unknown benchmark %q (known: %v)", name, trace.Names())
	}
	return nil
}

func (s *SimSpec) validate() error {
	if _, err := systemConfigs(s.Config); err != nil {
		return err
	}
	if s.Bench != "" {
		if err := validBench(s.Bench); err != nil {
			return err
		}
	}
	if s.SimInstr == 0 {
		return fmt.Errorf("config: sim needs sim_instr > 0")
	}
	return nil
}

func (s *SweepSpec) validate() error {
	known := expers.StudyNames()
	seen := make(map[string]bool, len(s.Studies))
	for _, st := range s.Studies {
		ok := false
		for _, k := range known {
			if st == k {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("config: unknown study %q (known: %v)", st, known)
		}
		if seen[st] {
			return fmt.Errorf("config: study %q listed twice", st)
		}
		seen[st] = true
	}
	seenMech := make(map[string]bool, len(s.Mechanisms))
	for _, m := range s.Mechanisms {
		if _, ok := mechanism.ByName(m); !ok {
			return fmt.Errorf("config: unknown mechanism %q (known: %v)", m, mechanism.Names())
		}
		if seenMech[m] {
			return fmt.Errorf("config: mechanism %q listed twice", m)
		}
		seenMech[m] = true
	}
	if err := validBench(s.Bench); err != nil {
		return err
	}
	if s.SimInstr == 0 {
		return fmt.Errorf("config: sweep needs sim_instr > 0")
	}
	return nil
}

func (s *MulticoreSpec) validate() error {
	switch strings.ToUpper(strings.TrimSpace(s.Config)) {
	case "A", "B":
	default:
		return fmt.Errorf("config: unknown system config %q (want A or B)", s.Config)
	}
	if err := validBench(s.Bench); err != nil {
		return err
	}
	for _, c := range s.Cores {
		if c < 1 {
			return fmt.Errorf("config: bad core count %d", c)
		}
	}
	if s.InstrPerCore == 0 {
		return fmt.Errorf("config: multicore needs instr_per_core > 0")
	}
	if s.SharedFrac < 0 || s.SharedFrac > 1 {
		return fmt.Errorf("config: shared_frac %v outside [0, 1]", s.SharedFrac)
	}
	return nil
}

func (s *CampaignSpec) validate() error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("config: campaign has no jobs")
	}
	for i, j := range s.Jobs {
		if _, err := NormalizeJob(j); err != nil {
			return fmt.Errorf("config: job %d: %w", i, err)
		}
	}
	return nil
}

// defaulter is the shape every campaign kind's parameter type shares:
// fill documented defaults, then check the document is runnable.
type defaulter interface {
	ApplyDefaults()
	Validate() error
}

// kindParams maps every registered campaign kind to a fresh parameter
// prototype; NormalizeJob strict-decodes against it.
var kindParams = map[string]func() defaulter{
	"cpusim":     func() defaulter { return new(expers.CPUSimParams) },
	"multicore":  func() defaulter { return new(expers.MulticoreParams) },
	"minvdd":     func() defaulter { return new(expers.MinVDDParams) },
	"mechminvdd": func() defaulter { return new(expers.MechMinVDDParams) },
	"vddlevels":  func() defaulter { return new(expers.VDDLevelsParams) },
	"cells":      func() defaulter { return new(expers.CellsParams) },
	"leakage":    func() defaulter { return new(expers.LeakageParams) },
	"ablation":   func() defaulter { return new(expers.AblationParams) },
	"fig4-cell":  func() defaulter { return new(expers.Fig4CellParams) },
}

// KnownKinds returns the campaign kinds the spec layer validates
// against, sorted.
func KnownKinds() []string {
	out := make([]string, 0, len(kindParams))
	for k := range kindParams {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NormalizeJob validates one campaign-section job — known kind, strict
// parameter decode — and returns it with defaults applied and the
// parameter document re-marshalled canonically.
func NormalizeJob(j Job) (runner.Spec, error) {
	proto, ok := kindParams[j.Kind]
	if !ok {
		return runner.Spec{}, fmt.Errorf("unknown kind %q (known: %v)", j.Kind, KnownKinds())
	}
	p := proto()
	if len(j.Params) > 0 {
		if err := strictDecodeJSON([]byte(j.Params), p); err != nil {
			return runner.Spec{}, fmt.Errorf("kind %q params: %w", j.Kind, err)
		}
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return runner.Spec{}, fmt.Errorf("kind %q params: %w", j.Kind, err)
	}
	raw, err := marshalJSON(p)
	if err != nil {
		return runner.Spec{}, err
	}
	return runner.Spec{Kind: j.Kind, Name: j.Name, Params: raw}, nil
}
