package config

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file implements the TOML subset the spec layer accepts, parsed
// into the same map shape JSON decodes to so one strict decoder serves
// both formats. The subset covers what experiment specs need:
//
//   - comments (#), blank lines
//   - [table] and [[array-of-tables]] headers with dotted keys
//   - bare, "basic" and 'literal' keys, dotted key paths
//   - values: basic/literal strings, integers (with _ separators),
//     floats, booleans, single- and multi-line arrays
//
// Out of scope (rejected with a clear error): dates, multi-line
// strings, inline tables, and exotic escapes. The repo has no external
// dependencies, so this stays deliberately small rather than general.

// parseTOML parses a spec document in the TOML subset into the
// map/slice/scalar shape encoding/json produces.
func parseTOML(data []byte) (map[string]any, error) {
	p := &tomlParser{root: map[string]any{}}
	p.current = p.root
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(stripComment(lines[i]))
		if line == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "[["):
			err = p.openArrayTable(line)
		case strings.HasPrefix(line, "["):
			err = p.openTable(line)
		default:
			// A multi-line array continues until brackets balance.
			for !balancedBrackets(line) && i+1 < len(lines) {
				i++
				line += " " + strings.TrimSpace(stripComment(lines[i]))
			}
			err = p.setKeyValue(line)
		}
		if err != nil {
			return nil, fmt.Errorf("toml line %d: %w", i+1, err)
		}
	}
	return p.root, nil
}

type tomlParser struct {
	root    map[string]any
	current map[string]any
}

// stripComment removes a # comment, respecting quoted strings.
func stripComment(line string) string {
	inBasic, inLiteral := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inLiteral && (i == 0 || line[i-1] != '\\') {
				inBasic = !inBasic
			}
		case '\'':
			if !inBasic {
				inLiteral = !inLiteral
			}
		case '#':
			if !inBasic && !inLiteral {
				return line[:i]
			}
		}
	}
	return line
}

// balancedBrackets reports whether every array bracket opened on the
// line is closed on it (quoted brackets ignored).
func balancedBrackets(line string) bool {
	depth := 0
	inBasic, inLiteral := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inLiteral && (i == 0 || line[i-1] != '\\') {
				inBasic = !inBasic
			}
		case '\'':
			if !inBasic {
				inLiteral = !inLiteral
			}
		case '[':
			if !inBasic && !inLiteral {
				depth++
			}
		case ']':
			if !inBasic && !inLiteral {
				depth--
			}
		}
	}
	return depth <= 0
}

// openTable handles a [a.b.c] header: later key = value lines land in
// that table, created on demand.
func (p *tomlParser) openTable(line string) error {
	if !strings.HasSuffix(line, "]") {
		return fmt.Errorf("unterminated table header %q", line)
	}
	path, err := parseKeyPath(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"))
	if err != nil {
		return err
	}
	t, err := p.descend(path, false)
	if err != nil {
		return err
	}
	p.current = t
	return nil
}

// openArrayTable handles a [[a.b]] header: appends a fresh table to the
// array at that path and makes it current.
func (p *tomlParser) openArrayTable(line string) error {
	if !strings.HasSuffix(line, "]]") {
		return fmt.Errorf("unterminated array-table header %q", line)
	}
	path, err := parseKeyPath(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"))
	if err != nil {
		return err
	}
	t, err := p.descend(path, true)
	if err != nil {
		return err
	}
	p.current = t
	return nil
}

// descend walks a dotted path from the root, creating tables as needed.
// Path elements that hold an array of tables resolve to the array's
// last element; with appendLast, the final element appends a new table
// to (possibly creating) an array at that key.
func (p *tomlParser) descend(path []string, appendLast bool) (map[string]any, error) {
	cur := p.root
	for i, key := range path {
		last := i == len(path)-1
		if last && appendLast {
			arr, _ := cur[key].([]any)
			if cur[key] != nil && arr == nil {
				return nil, fmt.Errorf("key %q is not an array of tables", key)
			}
			t := map[string]any{}
			cur[key] = append(arr, any(t))
			return t, nil
		}
		switch v := cur[key].(type) {
		case nil:
			t := map[string]any{}
			cur[key] = t
			cur = t
		case map[string]any:
			cur = v
		case []any:
			if len(v) == 0 {
				return nil, fmt.Errorf("key %q is an empty array", key)
			}
			t, ok := v[len(v)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("key %q is not an array of tables", key)
			}
			cur = t
		default:
			return nil, fmt.Errorf("key %q already holds a value", key)
		}
	}
	return cur, nil
}

// setKeyValue handles one key = value line relative to the current
// table.
func (p *tomlParser) setKeyValue(line string) error {
	eq := findUnquoted(line, '=')
	if eq < 0 {
		return fmt.Errorf("expected key = value, got %q", line)
	}
	path, err := parseKeyPath(line[:eq])
	if err != nil {
		return err
	}
	val, err := parseValue(strings.TrimSpace(line[eq+1:]))
	if err != nil {
		return err
	}
	t := p.current
	if len(path) > 1 {
		if t, err = p.descendFrom(p.current, path[:len(path)-1]); err != nil {
			return err
		}
	}
	key := path[len(path)-1]
	if _, dup := t[key]; dup {
		return fmt.Errorf("duplicate key %q", key)
	}
	t[key] = val
	return nil
}

// descendFrom walks a dotted key's intermediate tables below cur.
func (p *tomlParser) descendFrom(cur map[string]any, path []string) (map[string]any, error) {
	for _, key := range path {
		switch v := cur[key].(type) {
		case nil:
			t := map[string]any{}
			cur[key] = t
			cur = t
		case map[string]any:
			cur = v
		default:
			return nil, fmt.Errorf("key %q already holds a value", key)
		}
	}
	return cur, nil
}

// findUnquoted returns the index of the first ch outside quotes, or -1.
func findUnquoted(s string, ch byte) int {
	inBasic, inLiteral := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inLiteral && (i == 0 || s[i-1] != '\\') {
				inBasic = !inBasic
			}
		case '\'':
			if !inBasic {
				inLiteral = !inLiteral
			}
		case ch:
			if !inBasic && !inLiteral {
				return i
			}
		}
	}
	return -1
}

// parseKeyPath splits a dotted key ("campaign.jobs", 'a."b.c"') into
// its elements.
func parseKeyPath(s string) ([]string, error) {
	var path []string
	rest := strings.TrimSpace(s)
	for {
		if rest == "" {
			return nil, fmt.Errorf("empty key in %q", s)
		}
		var key string
		switch rest[0] {
		case '"', '\'':
			q := rest[0]
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == q && (q == '\'' || rest[i-1] != '\\') {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quoted key in %q", s)
			}
			var err error
			if key, err = unquote(rest[:end+1]); err != nil {
				return nil, err
			}
			rest = strings.TrimSpace(rest[end+1:])
		default:
			end := strings.IndexByte(rest, '.')
			if end < 0 {
				end = len(rest)
			}
			key = strings.TrimSpace(rest[:end])
			for _, r := range key {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
					return nil, fmt.Errorf("bad bare key %q", key)
				}
			}
			if key == "" {
				return nil, fmt.Errorf("empty key in %q", s)
			}
			rest = strings.TrimSpace(rest[end:])
		}
		path = append(path, key)
		if rest == "" {
			return path, nil
		}
		if rest[0] != '.' {
			return nil, fmt.Errorf("expected '.' in key %q", s)
		}
		rest = strings.TrimSpace(rest[1:])
	}
}

// parseValue parses one TOML value from its full text.
func parseValue(s string) (any, error) {
	if s == "" {
		return nil, fmt.Errorf("missing value")
	}
	switch {
	case s[0] == '"' || s[0] == '\'':
		return unquote(s)
	case s[0] == '[':
		return parseArray(s)
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	// Numbers; TOML permits _ separators between digits.
	num := strings.ReplaceAll(s, "_", "")
	if i, err := strconv.ParseInt(num, 0, 64); err == nil {
		return i, nil
	}
	if u, err := strconv.ParseUint(num, 0, 64); err == nil {
		return u, nil
	}
	if f, err := strconv.ParseFloat(num, 64); err == nil {
		return f, nil
	}
	return nil, fmt.Errorf("unsupported value %q (the spec subset takes strings, numbers, booleans and arrays)", s)
}

// parseArray parses a (possibly nested) array value like [1, 2, 3].
func parseArray(s string) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("unterminated array %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{} // JSON-encodes as [], matching an empty TOML array
	if inner == "" {
		return out, nil
	}
	for _, part := range splitTopLevel(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue // tolerate a trailing comma
		}
		v, err := parseValue(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitTopLevel splits on commas outside quotes and nested brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth := 0
	inBasic, inLiteral := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inLiteral && (i == 0 || s[i-1] != '\\') {
				inBasic = !inBasic
			}
		case '\'':
			if !inBasic {
				inLiteral = !inLiteral
			}
		case '[':
			if !inBasic && !inLiteral {
				depth++
			}
		case ']':
			if !inBasic && !inLiteral {
				depth--
			}
		case ',':
			if !inBasic && !inLiteral && depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// unquote decodes a basic ("...") or literal ('...') TOML string.
func unquote(s string) (string, error) {
	if len(s) < 2 {
		return "", fmt.Errorf("bad string %q", s)
	}
	q, body := s[0], s[1:len(s)-1]
	if s[len(s)-1] != q {
		return "", fmt.Errorf("unterminated string %q", s)
	}
	if q == '\'' {
		return body, nil
	}
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			return "", fmt.Errorf("unsupported escape \\%c in %q", body[i], s)
		}
	}
	return b.String(), nil
}
