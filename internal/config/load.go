package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/runner"
)

// Format names a spec encoding.
type Format string

const (
	// JSON is the wire format: what POST /campaigns accepts and what
	// Encode emits.
	JSON Format = "json"
	// TOML is the comment-friendly on-disk format; it converts to the
	// same document model.
	TOML Format = "toml"
)

// strictDecodeJSON decodes data into v rejecting unknown fields and
// trailing garbage, so a typoed knob fails loudly.
func strictDecodeJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second value (or any non-space trailing bytes) is malformed.
	if dec.More() {
		return fmt.Errorf("trailing data after document")
	}
	return nil
}

// marshalJSON marshals a parameter struct; the types are all
// marshal-safe, so failure is a programming error surfaced as such.
func marshalJSON(v any) (json.RawMessage, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("config: marshal %T: %v", v, err)
	}
	return raw, nil
}

// Decode parses a spec document in the given format, fills defaults and
// validates it. The returned document is ready to expand.
func Decode(data []byte, format Format) (*Document, error) {
	jsonData := data
	if format == TOML {
		v, err := parseTOML(data)
		if err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		jsonData, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("config: %v", err)
		}
	} else if format != JSON {
		return nil, fmt.Errorf("config: unknown spec format %q", format)
	}
	var d Document
	if err := strictDecodeJSON(jsonData, &d); err != nil {
		return nil, fmt.Errorf("config: bad spec: %w", err)
	}
	d.ApplyDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode renders the document as indented canonical JSON. A document
// round-trips: Decode(Encode(d), JSON) yields an equal document.
func (d *Document) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return append(out, '\n'), nil
}

// Load reads a spec file, dispatching on extension: .json or .toml.
func Load(path string) (*Document, error) {
	var format Format
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		format = JSON
	case ".toml":
		format = TOML
	default:
		return nil, fmt.Errorf("config: %s: unknown spec extension %q (want .json or .toml)", path, ext)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := Decode(data, format)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// ExpandBytes decodes a raw spec document (format sniffed: JSON starts
// with '{') and expands it to a runnable campaign. It is the hook
// `pcs serve` installs as its SpecExpander, so POST /campaigns accepts
// exactly the documents the CLI consumes; the returned worker count is
// the document's requested pool size (0 = server default).
func ExpandBytes(raw []byte) (runner.Campaign, int, error) {
	format := TOML
	if trimmed := bytes.TrimLeft(raw, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		format = JSON
	}
	d, err := Decode(raw, format)
	if err != nil {
		return runner.Campaign{}, 0, err
	}
	camp, err := d.ExpandCampaign()
	if err != nil {
		return runner.Campaign{}, 0, err
	}
	return camp, d.Workers, nil
}
