package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/resultstore"
)

// CanonicalJSON renders the document in the result store's canonical
// form — sorted keys, compact, number literals preserved — so two
// specs that differ only in formatting, key order, or source format
// (JSON vs TOML) serialize identically.
func (d *Document) CanonicalJSON() ([]byte, error) {
	raw, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return resultstore.CanonicalJSON(raw)
}

// Digest is the hex SHA-256 of CanonicalJSON: the spec identity a run
// ledger records and `pcs verify` recomputes.
func (d *Document) Digest() (string, error) {
	c, err := d.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}
