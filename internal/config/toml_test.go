package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestParseTOMLShapes covers the accepted subset: scalars, arrays,
// tables, array-of-tables, dotted keys, comments and multi-line arrays.
func TestParseTOMLShapes(t *testing.T) {
	src := `
# experiment spec
version = 1
name = "fig4"          # inline comment
seed = 1_000
ratio = 0.5
quick = false

[sim]
config = 'both'
benches = ["mcf.s", "bzip2.s"]
grid = [
  1, 2,   # first row
  3,
]

[meta.author]
handle = "a#b"

[[campaign.jobs]]
kind = "minvdd"
[campaign.jobs.params]
ways = 4

[[campaign.jobs]]
kind = "cells"
`
	got, err := parseTOML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"version": int64(1),
		"name":    "fig4",
		"seed":    int64(1000),
		"ratio":   0.5,
		"quick":   false,
		"sim": map[string]any{
			"config":  "both",
			"benches": []any{"mcf.s", "bzip2.s"},
			"grid":    []any{int64(1), int64(2), int64(3)},
		},
		"meta": map[string]any{
			"author": map[string]any{"handle": "a#b"},
		},
		"campaign": map[string]any{
			"jobs": []any{
				map[string]any{
					"kind":   "minvdd",
					"params": map[string]any{"ways": int64(4)},
				},
				map[string]any{"kind": "cells"},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.MarshalIndent(got, "", "  ")
		wj, _ := json.MarshalIndent(want, "", "  ")
		t.Fatalf("parse mismatch:\n--- got ---\n%s\n--- want ---\n%s", gj, wj)
	}
}

// TestParseTOMLErrors checks malformed input fails with a line number.
func TestParseTOMLErrors(t *testing.T) {
	cases := []string{
		"key",                      // no =
		"key = ",                   // missing value
		"key = 2026-08-05",         // dates are out of subset
		"key = {a = 1}",            // inline tables are out of subset
		"key = \"unterminated",     // bad string
		"[table",                   // unterminated header
		"key = 1\nkey = 2",         // duplicate key
		"[t]\nx = 1\n[[t]]",        // table redefined as array
		"key.\"bad = 1",            // unterminated quoted key
		"key = \"\\q\"",            // unsupported escape
		"k!ey = 1",                 // bad bare key
		"[a]\nx = 1\n[a.x]\ny = 2", // value redefined as table
	}
	for _, src := range cases {
		if v, err := parseTOML([]byte(src)); err == nil {
			t.Errorf("accepted %q -> %v", src, v)
		}
	}
}

// TestTOMLDecodesSpec checks a realistic spec in TOML decodes to the
// exact document its JSON twin does.
func TestTOMLDecodesSpec(t *testing.T) {
	tomlSrc := `
version = 1
name = "nightly"
seed = 7

[sweep]
studies = ["assoc", "levels"]
bench = "mcf.s"
sim_instr = 2_000_000
`
	jsonSrc := `{"version":1,"name":"nightly","seed":7,
		"sweep":{"studies":["assoc","levels"],"bench":"mcf.s","sim_instr":2000000}}`
	dt, err := Decode([]byte(tomlSrc), TOML)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := Decode([]byte(jsonSrc), JSON)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dt, dj) {
		t.Fatalf("toml %+v != json %+v", dt, dj)
	}
}
