package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/stats"
)

// referenceTransition is the paper's Listing 2 as a literal full set×way
// metadata sweep — the pre-delta-list implementation, retained so the
// differential test below can prove the Controller's fault-map delta
// walk is observationally identical on arbitrary transition sequences.
func referenceTransition(c *cache.Cache, m *faultmap.Map, next int, sink func(addr uint64)) TransitionResult {
	res := TransitionResult{ToLevel: next}
	for s := 0; s < c.Sets(); s++ {
		for w := 0; w < c.Ways(); w++ {
			b := c.BlockIndex(s, w)
			meta := c.Meta(s, w)
			if m.FaultyAt(b, next) {
				if meta.Valid {
					if need, addr := c.InvalidateFrame(s, w); need {
						res.Writebacks++
						if sink != nil {
							sink(addr)
						}
					}
					res.Invalidations++
				}
				if !meta.Faulty {
					res.NewFaulty++
				}
				c.SetFaulty(s, w, true)
			} else {
				if meta.Faulty {
					res.Recovered++
				}
				c.SetFaulty(s, w, false)
			}
		}
	}
	return res
}

// TestTransitionDeltaMatchesFullWalk drives a Controller (delta walk)
// and a second identical cache under the reference full sweep through
// the same random interleaving of demand accesses and voltage
// transitions, asserting identical transition counts, writeback address
// sequences (order included — writeback order feeds the next level's
// LRU), per-frame metadata and cache statistics.
func TestTransitionDeltaMatchesFullWalk(t *testing.T) {
	levels := faultmap.MustLevels(0.50, 0.60, 0.75, 1.00)
	geom := cache.Config{SizeBytes: 32 << 10, Assoc: 8, BlockBytes: 64}

	mkMap := func(c *cache.Cache) *faultmap.Map {
		m := faultmap.NewMap(levels, c.NumBlocks())
		rng := stats.NewRNG(99)
		for b := 0; b < c.NumBlocks(); b++ {
			if rng.Bool(0.3) {
				m.SetFM(b, 1+rng.Intn(levels.N()))
			}
		}
		return m
	}
	geom.Name = "delta"
	cDelta := cache.MustNew(geom)
	geom.Name = "full"
	cFull := cache.MustNew(geom)
	mDelta, mFull := mkMap(cDelta), mkMap(cFull)

	org := cacti.Org{Name: "delta", SizeBytes: geom.SizeBytes, Assoc: geom.Assoc, BlockBytes: geom.BlockBytes, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(SPCS, cDelta, mDelta, levels, cm.WithPCS(levels.FMBits()), 2e9, 20)
	if err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRNG(7)
	now := uint64(0)
	for round := 0; round < 60; round++ {
		for j := 0; j < 1500; j++ {
			addr := uint64(rng.Intn(1 << 17))
			write := rng.Bool(0.4)
			ra, rb := cDelta.Access(addr, write), cFull.Access(addr, write)
			if ra != rb {
				t.Fatalf("round %d: Access(%#x,%v) = %+v, reference %+v", round, addr, write, ra, rb)
			}
		}
		next := 1 + rng.Intn(levels.N())
		var wbDelta, wbFull []uint64
		now += 10_000
		resDelta := ctrl.Transition(next, now, func(a uint64) { wbDelta = append(wbDelta, a) })
		resFull := referenceTransition(cFull, mFull, next, func(a uint64) { wbFull = append(wbFull, a) })

		if resDelta.Writebacks != resFull.Writebacks ||
			resDelta.Invalidations != resFull.Invalidations ||
			resDelta.NewFaulty != resFull.NewFaulty ||
			resDelta.Recovered != resFull.Recovered {
			t.Fatalf("round %d: transition to %d: delta %+v, reference %+v", round, next, resDelta, resFull)
		}
		if len(wbDelta) != len(wbFull) {
			t.Fatalf("round %d: %d writebacks, reference %d", round, len(wbDelta), len(wbFull))
		}
		for i := range wbDelta {
			if wbDelta[i] != wbFull[i] {
				t.Fatalf("round %d: writeback %d is %#x, reference %#x (order matters: it feeds the next level's LRU)",
					round, i, wbDelta[i], wbFull[i])
			}
		}
		if cDelta.FaultyCount() != cFull.FaultyCount() {
			t.Fatalf("round %d: faulty count %d, reference %d", round, cDelta.FaultyCount(), cFull.FaultyCount())
		}
		for s := 0; s < cDelta.Sets(); s++ {
			for w := 0; w < cDelta.Ways(); w++ {
				if gm, wm := cDelta.Meta(s, w), cFull.Meta(s, w); gm != wm {
					t.Fatalf("round %d: meta (%d,%d): delta %+v, reference %+v", round, s, w, gm, wm)
				}
			}
		}
	}
	if gs, ws := cDelta.Stats(), cFull.Stats(); gs != ws {
		t.Fatalf("final stats diverge:\ndelta     %+v\nreference %+v", gs, ws)
	}
}

// TestPolicyTickZeroAllocs pins the DPCS steady-state hot path: one
// sampling interval of accesses plus the policy tick allocates nothing
// once the policy has settled (no voltage transition in the window).
func TestPolicyTickZeroAllocs(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(0)
	settleAtFloor(t, r)
	avg := testing.AllocsPerRun(200, func() {
		for j := 0; j < int(r.cfg.Interval); j++ {
			r.cache.Access(0x40, false)
			r.now += 2
		}
		r.pol.Tick(r.now, nil)
	})
	if avg != 0 {
		t.Fatalf("steady-state interval allocates %v allocs/op, want 0", avg)
	}
}
