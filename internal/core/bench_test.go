package core

import (
	"testing"

	"repro/internal/obs"
)

// benchInterval drives one steady-state policy interval: the hot path a
// simulation pays per sampling window.
func benchInterval(b *testing.B, sink obs.PolicySink) {
	r := newPolicyRig(b)
	r.pol.Start(nil)
	r.pol.Arm(0)
	r.ctrl.SetSink(sink)
	r.pol.SetSink(sink)
	settleAtFloor(b, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < int(r.cfg.Interval); j++ {
			r.cache.Access(0x40, false)
			r.now += 2
		}
		r.pol.Tick(r.now, nil)
	}
}

func BenchmarkPolicyIntervalNoSink(b *testing.B)  { benchInterval(b, nil) }
func BenchmarkPolicyIntervalNopSink(b *testing.B) { benchInterval(b, obs.NopSink{}) }

func BenchmarkPolicyIntervalCollector(b *testing.B) {
	benchInterval(b, &obs.Collector{})
}
