package core

import (
	"fmt"

	"repro/internal/faultmap"
	"repro/internal/faultmodel"
	"repro/internal/stats"
)

// LevelPlan is the design-time voltage plan for one cache: the allowed
// VDD levels and which of them the SPCS policy uses.
type LevelPlan struct {
	// Levels holds {VDD1, VDD2, VDD3} lowest-first.
	Levels faultmap.Levels
	// SPCSLevel is the 1-based index of the SPCS voltage (VDD2).
	SPCSLevel int
	// Model is the fault model the plan was derived from.
	Model *faultmodel.Model
}

// SelectLevels derives the paper's three-voltage plan for a cache from
// its fault model: VDD3 = nominal, VDD2 = lowest voltage with ≥99 %
// expected block survival (SPCS), VDD1 = lowest voltage with ≥99 %
// cache yield and expected capacity at least capFloor (the DPCS floor;
// see faultmodel.VDD1CapacityFloorL1/LLC). Voltages land on the shared
// 10 mV grid.
func SelectLevels(m *faultmodel.Model, nominal, lo, capFloor float64) (LevelPlan, error) {
	vdd1, vdd2, vdd3, err := m.VDDLevels(nominal, lo, capFloor)
	if err != nil {
		return LevelPlan{}, err
	}
	var volts []float64
	// Degenerate overlaps (tiny caches can have VDD1 == VDD2) collapse
	// into fewer distinct levels.
	volts = append(volts, vdd1)
	if vdd2 > vdd1 {
		volts = append(volts, vdd2)
	}
	if vdd3 > volts[len(volts)-1] {
		volts = append(volts, vdd3)
	}
	levels, err := faultmap.NewLevels(volts...)
	if err != nil {
		return LevelPlan{}, err
	}
	spcs := levels.LevelOf(vdd2)
	if spcs == 0 {
		return LevelPlan{}, fmt.Errorf("core: SPCS voltage %v not among levels", vdd2)
	}
	return LevelPlan{Levels: levels, SPCSLevel: spcs, Model: m}, nil
}

// PopulateMapMonteCarlo fills a fault map by sampling each block's fault
// quantile once and comparing it against the per-level block failure
// probabilities. Drawing a single uniform per block and thresholding it
// at every level is exactly equivalent to sampling the block's minimum
// reliable voltage, so the fault inclusion property holds per block by
// construction — the same property the BIST path observes physically.
func PopulateMapMonteCarlo(rng *stats.RNG, plan LevelPlan, nblocks int) *faultmap.Map {
	m := faultmap.NewMap(plan.Levels, nblocks)
	populateMap(rng, plan, m)
	return m
}

// PopulateMapMonteCarloInto is PopulateMapMonteCarlo writing into a
// reusable map (arena path): m is Reset to plan.Levels/nblocks and then
// filled with exactly the same RNG draw sequence, so a warm buffer and a
// cold NewMap produce byte-identical maps for the same rng state.
func PopulateMapMonteCarloInto(rng *stats.RNG, plan LevelPlan, nblocks int, m *faultmap.Map) {
	m.Reset(plan.Levels, nblocks)
	populateMap(rng, plan, m)
}

func populateMap(rng *stats.RNG, plan LevelPlan, m *faultmap.Map) {
	n := plan.Levels.N()
	// pFail[k-1] = block failure probability at level k. Probabilities
	// are non-increasing in voltage, hence non-increasing in k. The
	// paper's plans have at most three levels, so the stack array covers
	// every realistic grid without allocating.
	var pFailArr [8]float64
	var pFail []float64
	if n <= len(pFailArr) {
		pFail = pFailArr[:n]
	} else {
		pFail = make([]float64, n)
	}
	for k := 1; k <= n; k++ {
		pFail[k-1] = plan.Model.PBlockFail(plan.Levels.Volts(k))
	}
	for b := 0; b < m.NumBlocks(); b++ {
		u := rng.Float64()
		fm := 0
		for k := n; k >= 1; k-- {
			if u < pFail[k-1] {
				fm = k
				break
			}
		}
		m.SetFM(b, fm)
	}
}

// EnsureSetsUsable verifies the mechanism's structural constraint on a
// populated map: at the given level, every set must keep at least one
// non-faulty block. It returns the indices of violating sets (empty when
// the constraint holds). Design-time yield targets make violations rare;
// manufacturing flows would discard or downbin such dies.
func EnsureSetsUsable(m *faultmap.Map, sets, ways, level int) []int {
	var bad []int
	for s := 0; s < sets; s++ {
		ok := false
		for w := 0; w < ways; w++ {
			if !m.FaultyAt(s*ways+w, level) {
				ok = true
				break
			}
		}
		if !ok {
			bad = append(bad, s)
		}
	}
	return bad
}

// RepairSets force-clears the FM value of one block in each listed set
// so the set keeps a usable block at every level. This models the
// manufacturing test discarding the rare die that violates the set
// constraint and replacing it with a yielding one; simulations use it so
// a single unlucky Monte-Carlo draw cannot wedge a run.
func RepairSets(m *faultmap.Map, ways int, badSets []int) {
	for _, s := range badSets {
		m.SetFM(s*ways, 0)
	}
}
