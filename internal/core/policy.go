package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/obs"
)

// ApplySPCS moves a controller to its SPCS operating point (the given
// 1-based level, normally the VDD2 computed by SelectLevels) at time
// zero. SPCS performs exactly one transition for the whole runtime.
func ApplySPCS(ct *Controller, spcsLevel int, sink func(addr uint64)) TransitionResult {
	return ct.Transition(spcsLevel, 0, sink)
}

// DPCSConfig holds the dynamic policy's tuning knobs (Table 2).
type DPCSConfig struct {
	// Interval is the sampling window in cache accesses.
	Interval uint64
	// SuperInterval is the number of intervals between NAAT recalibrations
	// at the SPCS voltage.
	SuperInterval int
	// LowThreshold is the descent hysteresis fraction: the voltage steps
	// down only when CAAT < (1+Low)*(NAAT+TP'), where TP' is the
	// transition penalty amortised over the interval.
	//
	// HighThreshold is the escape budget: the maximum fraction of
	// execution time the policy tolerates losing to the reduced voltage
	// before stepping up. It is evaluated against the *measured*
	// slowdown (CAAT-NAAT)*Interval/windowCycles rather than the raw
	// CAAT/NAAT ratio: low-miss-rate caches make the ratio hypersensitive
	// (NAAT ~ hit time) while high-traffic caches can hide large global
	// slowdowns inside a small ratio. Both counters (cycles, accesses)
	// already exist in cache controllers, as the paper notes.
	LowThreshold, HighThreshold float64
	// HitCycles is the cache's hit latency, used to estimate average
	// access time from the sampled miss rate.
	HitCycles float64
	// MissPenaltyCycles is the controller's estimate of the cost of one
	// miss (next-level latency), used in the same estimate.
	MissPenaltyCycles float64
	// SPCSLevel is the 1-based level DPCS treats as its ceiling and its
	// NAAT calibration point ("DPCS never used a higher voltage than
	// SPCS, as it would not yield any improvement").
	SPCSLevel int

	// Ablation switches: disable individual damping refinements to
	// measure their contribution (see DESIGN.md §6). All false in
	// normal operation.
	Ablate AblationFlags
}

// AblationFlags turn off the policy's damping refinements one by one.
type AblationFlags struct {
	// NoHoldLatch allows descents immediately after a performance
	// escape, re-creating ascend/descend thrash.
	NoHoldLatch bool
	// NoBadLevelMemory forgets which level hurt, so every recalibration
	// re-explores it.
	NoBadLevelMemory bool
	// NoRefillClassification counts post-descent refill misses as
	// damage, triggering spurious escapes on big caches.
	NoRefillClassification bool
	// NoSkipReset forces the Listing-1 recalibration round trip every
	// super-interval even when nothing degraded.
	NoSkipReset bool
}

// Validate checks the configuration.
func (c DPCSConfig) Validate() error {
	if c.Interval == 0 {
		return fmt.Errorf("core: DPCS interval must be positive")
	}
	if c.SuperInterval < 3 {
		return fmt.Errorf("core: DPCS super-interval %d must be at least 3", c.SuperInterval)
	}
	if c.LowThreshold < 0 || c.HighThreshold <= c.LowThreshold {
		return fmt.Errorf("core: DPCS thresholds must satisfy 0 <= low < high, got %v/%v",
			c.LowThreshold, c.HighThreshold)
	}
	if c.HitCycles <= 0 || c.MissPenaltyCycles <= 0 {
		return fmt.Errorf("core: DPCS latencies must be positive")
	}
	if c.SPCSLevel < 1 {
		return fmt.Errorf("core: DPCS SPCS level %d must be >= 1", c.SPCSLevel)
	}
	return nil
}

// DPCSPolicy is the dynamic policy state machine of Listing 1. It samples the
// cache's miss rate every Interval accesses, converts it to an estimated
// current average access time (CAAT), and compares it against the
// nominal average access time (NAAT) measured at the SPCS voltage at the
// start of every SuperInterval, with high/low thresholding deciding
// whether to raise or lower the voltage.
type DPCSPolicy struct {
	cfg  DPCSConfig
	ctrl *Controller

	intervalCount int
	naat          float64
	// naatMr is the miss rate observed when naat was last refreshed,
	// used as a stationarity check before trusting naat enough to skip
	// a recalibration.
	naatMr       float64
	statsAtMark  cache.Stats
	nextSampleAt uint64 // access count at which the next decision fires
	// holdUntilReset latches after a performance-triggered up-transition:
	// descending again before the next NAAT recalibration would thrash
	// (each descent invalidates the newly-faulty blocks, and refetching
	// them re-creates the very slowdown that forced the ascent). The
	// paper describes its policy as "only one of many possibilities";
	// this latch is part of the damping needed to reproduce its bounded
	// worst-case overheads on capacity-cliff workloads.
	holdUntilReset bool
	// badLevel remembers a level that triggered a performance escape:
	// descents stop above it while the verdict is in force. Re-exploring
	// a bad level is expensive (the down-transition invalidates the
	// newly-faulty blocks, and hot ones must be refetched), so the
	// verdict persists until the workload's observed behaviour changes —
	// badMissRate records the miss rate at verdict time, and a
	// significant shift (a phase change) clears it.
	badLevel    int
	badActive   bool
	badMissRate float64
	// graceLeft suppresses the escape check for this many intervals
	// after a descent: the first post-descent window is dominated by the
	// one-time refill of invalidated blocks, and punishing that
	// transient would latch every level as bad.
	graceLeft int
	// armed gates the decision machinery; see Arm.
	armed bool
	// lastTickCycle is the cycle count at the previous interval
	// boundary, used to measure each window's wall-clock span.
	lastTickCycle uint64
	// lastRefillMisses is the controller's refill-miss count at the
	// previous boundary; the delta identifies how much of a window's
	// miss traffic was one-time refill rather than damage.
	lastRefillMisses uint64
	// maxSlowdown tracks the largest measured slowdown since the last
	// recalibration; a clean super-interval (max well under the escape
	// budget) lets the policy skip the periodic return to the SPCS
	// voltage, avoiding the invalidate-refill churn that a pointless
	// ascent/descent cycle would cause.
	maxSlowdown float64

	// Decision counters for reports.
	Ups, Downs, Resets int

	// sink, when non-nil, receives one typed obs.PolicyEvent per interval
	// decision; see SetSink.
	sink obs.PolicySink
}

// phaseChangeRelDiff is the relative miss-rate change that counts as a
// phase change and re-enables exploration of a bad level. It must be
// below 1.0 so that a drop to a near-zero miss rate (diff == badMissRate)
// still qualifies.
const phaseChangeRelDiff = 0.6

// phaseChangeAbsDiff is the absolute miss-rate change floor for the same
// detector, so near-zero miss rates do not trigger on noise.
const phaseChangeAbsDiff = 0.02

// NewDPCS attaches the dynamic policy to a controller. The controller
// must be in DPCS mode.
func NewDPCS(cfg DPCSConfig, ctrl *Controller) (*DPCSPolicy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctrl.Mode != DPCS {
		return nil, fmt.Errorf("core: controller mode %v, want DPCS", ctrl.Mode)
	}
	if cfg.SPCSLevel > ctrl.Levels.N() {
		return nil, fmt.Errorf("core: SPCS level %d exceeds %d levels", cfg.SPCSLevel, ctrl.Levels.N())
	}
	return &DPCSPolicy{
		cfg:          cfg,
		ctrl:         ctrl,
		statsAtMark:  ctrl.Cache.Stats(),
		nextSampleAt: ctrl.Cache.Stats().Accesses + cfg.Interval,
	}, nil
}

// Start performs DPCS's initial transition to the SPCS voltage (the
// policy begins at its ceiling and works downward as Listing 1 allows).
// The decision machinery stays dormant until Arm is called.
func (d *DPCSPolicy) Start(sink func(addr uint64)) TransitionResult {
	return d.ctrl.Transition(d.cfg.SPCSLevel, 0, sink)
}

// SetSink attaches a telemetry sink receiving one typed event per
// interval decision (the structured successor of the old printf trace
// hook). With a nil sink — or obs.NopSink — the policy's per-tick path
// performs zero heap allocations. Attach the same sink to the
// controller (Controller.SetSink) to also capture the raw Listing-2
// transition events.
func (d *DPCSPolicy) SetSink(s obs.PolicySink) { d.sink = s }

// emit forwards one decision event, filling in the cache identity.
func (d *DPCSPolicy) emit(ev obs.PolicyEvent) {
	if d.sink == nil {
		return
	}
	ev.CacheName = d.ctrl.Cache.Name()
	d.sink.Record(ev)
}

// Arm activates the decision machinery, marking the current statistics
// as the first interval's start. Simulators call it after cache warm-up
// (mirroring the paper's gem5 fast-forward before detailed simulation)
// so the first NAAT sample reflects warm caches rather than cold-start
// compulsory misses.
func (d *DPCSPolicy) Arm(now uint64) {
	d.armed = true
	d.statsAtMark = d.ctrl.Cache.Stats()
	d.nextSampleAt = d.statsAtMark.Accesses + d.cfg.Interval
	d.intervalCount = 0
	d.lastTickCycle = now
}

// aat estimates the average access time from an interval's stats.
func (d *DPCSPolicy) aat(s cache.Stats) float64 {
	if s.Accesses == 0 {
		return d.cfg.HitCycles
	}
	miss := float64(s.Misses) / float64(s.Accesses)
	return d.cfg.HitCycles + miss*d.cfg.MissPenaltyCycles
}

// amortisedPenalty is the transition penalty spread over one interval of
// accesses, in cycles per access, making it comparable with CAAT/NAAT.
func (d *DPCSPolicy) amortisedPenalty() float64 {
	tp := 2*uint64(d.ctrl.Cache.Sets()) + d.ctrl.VoltagePenaltyCycles
	return float64(tp) / float64(d.cfg.Interval)
}

// Due reports whether the next access-count interval boundary has been
// reached — the only condition under which Tick can act. Between
// boundaries the policy is provably quiescent: it holds no per-access
// state (energy and time-at-level integrate lazily in the controller's
// AdvanceTo), so simulators fast-forward by gating Tick behind Due and
// skipping the call entirely on the (vastly more common) negative. The
// check reads one counter and must stay inlinable.
func (d *DPCSPolicy) Due() bool {
	return d.armed && d.ctrl.Cache.Accesses() >= d.nextSampleAt
}

// Tick runs the policy after a cache access. now is the current cycle.
// If the access count has crossed an interval boundary the policy makes
// its Listing-1 decision; any resulting transition's stall cycles are
// returned for the caller to add to execution time (zero otherwise).
// Tick re-checks Due's condition itself, so calling it without the Due
// gate is merely slower, never different.
func (d *DPCSPolicy) Tick(now uint64, sink func(addr uint64)) (stall uint64) {
	if !d.armed {
		return 0
	}
	cur := d.ctrl.Cache.Stats()
	if cur.Accesses < d.nextSampleAt {
		return 0
	}
	window := cur.Sub(d.statsAtMark)
	d.statsAtMark = cur
	d.nextSampleAt = cur.Accesses + d.cfg.Interval
	windowCycles := now - d.lastTickCycle
	d.lastTickCycle = now
	refills := d.ctrl.RefillMisses() - d.lastRefillMisses
	d.lastRefillMisses = d.ctrl.RefillMisses()
	if d.cfg.Ablate.NoRefillClassification {
		refills = 0
	}
	// Damage-only view of the window: misses minus one-time refills.
	damage := window
	if damage.Misses >= refills {
		damage.Misses -= refills
	} else {
		damage.Misses = 0
	}

	switch {
	case d.intervalCount == 0:
		// First interval of a super-interval: sample NAAT, but only when
		// actually at the SPCS voltage (a skipped recalibration keeps
		// the previous estimate).
		if d.ctrl.Level() == d.cfg.SPCSLevel {
			d.naat = d.aat(window)
			d.naatMr = float64(window.Misses) / float64(maxU64(window.Accesses, 1))
			d.emit(obs.PolicyEvent{Cycle: now, Decision: obs.DecisionCalibrate,
				MissRate: d.naatMr, NAAT: d.naat})
		} else {
			d.emit(obs.PolicyEvent{Cycle: now, Decision: obs.DecisionNone,
				NAAT: d.naat})
		}
		d.intervalCount++
	case d.intervalCount == d.cfg.SuperInterval-1:
		// Recalibration: return to the SPCS voltage — unless the whole
		// super-interval ran without meaningful degradation AND the
		// workload is stationary (current miss rate close to the one
		// NAAT was calibrated against), in which case the round trip
		// would only churn the cache contents.
		mrNow := float64(window.Misses) / float64(maxU64(window.Accesses, 1))
		mrDiff := mrNow - d.naatMr
		if mrDiff < 0 {
			mrDiff = -mrDiff
		}
		// Stationary unless the miss rate moved by both an absolute and
		// a relative margin (same scale as the phase-change detector).
		stationary := !(mrDiff > phaseChangeAbsDiff && mrDiff > 0.5*d.naatMr)
		dec := obs.DecisionNone
		if d.ctrl.Level() != d.cfg.SPCSLevel {
			if d.maxSlowdown >= d.cfg.HighThreshold/2 || !stationary || d.cfg.Ablate.NoSkipReset {
				res := d.ctrl.Transition(d.cfg.SPCSLevel, now, sink)
				stall = res.PenaltyCycles
				d.Resets++
				dec = obs.DecisionReset
			} else {
				dec = obs.DecisionSkipReset
			}
		}
		d.emit(obs.PolicyEvent{Cycle: now, Decision: dec,
			Interval: uint64(d.intervalCount), MissRate: mrNow, NAAT: d.naat})
		d.maxSlowdown = 0
		d.intervalCount = 0
		d.holdUntilReset = false
	default:
		caat := d.aat(damage)
		caatRaw := d.aat(window)
		// Refresh the NAAT estimate whenever the whole interval ran at
		// the SPCS voltage (an exponentially weighted moving average),
		// so a cold or perturbed first sample cannot go stale for a
		// whole super-interval.
		mr := float64(window.Misses) / float64(maxU64(window.Accesses, 1))
		if d.ctrl.Level() == d.cfg.SPCSLevel {
			d.naat = 0.5*d.naat + 0.5*caat
			d.naatMr = 0.5*d.naatMr + 0.5*mr
		}
		// Phase-change detector: a large (2x) shift in the observed miss
		// rate invalidates the remembered bad-level verdict.
		if d.badActive {
			diff := mr - d.badMissRate
			if diff < 0 {
				diff = -diff
			}
			if diff > phaseChangeAbsDiff && diff > phaseChangeRelDiff*d.badMissRate {
				d.badActive = false
			}
		}
		// Measured global slowdown attributable to this cache over the
		// window: extra access cycles relative to the window's span.
		slowdown := 0.0
		if windowCycles > 0 && caat > d.naat {
			slowdown = (caat - d.naat) * float64(window.Accesses) / float64(windowCycles)
		}
		if d.ctrl.Level() != d.cfg.SPCSLevel && slowdown > d.maxSlowdown && d.graceLeft == 0 {
			d.maxSlowdown = slowdown
		}
		// Going down pays the transition penalty (amortised over the
		// interval) before any savings accrue, so the down decision
		// includes it.
		downRef := (1 + d.cfg.LowThreshold) * (d.naat + d.amortisedPenalty())
		floor := 1
		if d.badActive && d.badLevel >= floor && !d.cfg.Ablate.NoBadLevelMemory {
			floor = d.badLevel + 1
		}
		hold := d.holdUntilReset && !d.cfg.Ablate.NoHoldLatch
		dec := obs.DecisionNone
		switch {
		case d.graceLeft > 0:
			d.graceLeft--
			dec = obs.DecisionHold
		case slowdown > d.cfg.HighThreshold && d.ctrl.Level() < d.cfg.SPCSLevel:
			d.badLevel = d.ctrl.Level()
			d.badActive = true
			d.badMissRate = mr
			res := d.ctrl.Transition(d.ctrl.Level()+1, now, sink)
			stall = res.PenaltyCycles
			d.Ups++
			d.holdUntilReset = true
			dec = obs.DecisionUp
		case caatRaw < downRef && d.ctrl.Level() > floor && !hold:
			res := d.ctrl.Transition(d.ctrl.Level()-1, now, sink)
			stall = res.PenaltyCycles
			d.Downs++
			// The descent invalidated blocks; their demand refills smear
			// over the following windows and must not be mistaken for
			// steady-state degradation, so the grace period scales with
			// the invalidation count.
			d.graceLeft = 1
			dec = obs.DecisionDown
		case caatRaw < downRef && d.ctrl.Level() > floor && hold:
			// The descent condition held but the post-escape latch
			// suppressed it.
			dec = obs.DecisionHold
		}
		d.emit(obs.PolicyEvent{Cycle: now, Decision: dec,
			Interval: uint64(d.intervalCount), MissRate: mr, CAAT: caat, NAAT: d.naat})
		d.intervalCount++
	}
	return stall
}

// NAAT returns the most recent nominal average access time estimate.
func (d *DPCSPolicy) NAAT() float64 { return d.naat }

// maxU64 returns the larger of a and b.
func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
