// Package core implements the paper's contribution: the power/capacity
// scaling (PCS) cache architecture. It glues the mechanism together —
// the compressed multi-VDD fault map (internal/faultmap), per-block
// power gating of faulty blocks, and global data-array voltage scaling
// over a functional cache (internal/cache) with energy accounting from
// the analytical power model (internal/cacti) — and provides the two
// policies:
//
//   - SPCS: statically run at the lowest voltage keeping ≥99 % of blocks
//     non-faulty (and every set usable), set once for the whole runtime.
//   - DPCS: dynamically step the voltage between the yield-constrained
//     floor (VDD1) and the SPCS voltage (VDD2) based on sampled average
//     access time (Listing 1), with the paper's transition procedure
//     (Listing 2) handling writebacks, invalidations and Faulty-bit
//     updates at every voltage change.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/faultmap"
	"repro/internal/obs"
)

// Mode selects the cache management policy.
type Mode int

const (
	// Baseline is a conventional cache fixed at nominal VDD with no
	// fault tolerance (and no PCS overheads).
	Baseline Mode = iota
	// SPCS is the static power/capacity scaling policy.
	SPCS
	// DPCS is the dynamic power/capacity scaling policy.
	DPCS
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case SPCS:
		return "SPCS"
	case DPCS:
		return "DPCS"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TransitionResult reports what one voltage transition did.
type TransitionResult struct {
	// FromLevel and ToLevel are 1-based VDD levels.
	FromLevel, ToLevel int
	// Writebacks counts dirty valid blocks written back because they
	// become faulty at the new voltage.
	Writebacks int
	// Invalidations counts valid blocks invalidated.
	Invalidations int
	// NewFaulty and Recovered count Faulty bits set and cleared.
	NewFaulty, Recovered int
	// PenaltyCycles is the total stall the transition costs: two cycles
	// per set (read, process and rewrite metadata through the tag array)
	// plus the voltage-settling penalty.
	PenaltyCycles uint64
}

// Controller manages one PCS-enabled cache instance: its fault map, its
// current voltage level, and its energy accounting. A Controller with
// Mode Baseline has no fault map and stays at the top level.
type Controller struct {
	Mode   Mode
	Cache  *cache.Cache
	Map    *faultmap.Map // nil in Baseline mode
	Levels faultmap.Levels
	Power  *cacti.Model
	// VoltagePenaltyCycles is the data-array supply settling time added
	// to every transition (Table 2's "+20" / "+40").
	VoltagePenaltyCycles uint64
	// ClockHz converts cycles to seconds for static-energy integration.
	ClockHz float64

	level     int // current 1-based VDD level
	lastCycle uint64

	// Per-access dynamic energies at the current level, cached so the
	// access hot path avoids recomputing cacti's power-law model (a
	// math.Pow per access); refreshed by refreshAccessEnergy whenever
	// the level changes. The cached values are the exact floats
	// Power.AccessEnergy would return, so accounting is bit-identical.
	readAccessJ  float64
	writeAccessJ float64

	// Fault-map level deltas: the blocks with FM > 0, in ascending
	// block-index order, paired with their FM values. By the fault
	// inclusion property a transition from level f to level n only
	// changes the Faulty bits of blocks whose FM lies in [n, f-1]
	// (descent) or [f, n-1] (ascent), so Transition scans this short
	// list instead of every set×way. Built once in NewController — the
	// fault map must not be mutated afterwards (all SetFM/SetFromVmin
	// calls happen at construction time in this codebase).
	deltaIdx []int32
	deltaFM  []uint8
	// faultSynced is false until the first Transition: the cache starts
	// with every Faulty bit clear regardless of level, so the first
	// call syncs from an effective level N+1 (marking every block with
	// FM ≥ next), exactly as the full Listing 2 walk would.
	faultSynced bool

	// Energy accounting (joules).
	staticJ     float64
	dynamicJ    float64
	transitionJ float64

	// Transition bookkeeping.
	transitions       int
	transitionCycles  uint64
	transitionWBs     uint64
	timeAtLevelCycles []uint64 // indexed by level-1

	// obsSink, when non-nil, receives one DecisionTransition event per
	// Transition call; see SetSink.
	obsSink obs.PolicySink

	// pendingRefill records the block addresses a transition invalidated
	// whose next miss is a one-time refill rather than steady-state
	// damage; refillMisses counts how many such misses have occurred.
	// The policy uses the distinction to avoid mistaking the refill
	// burst after a descent for the lower voltage hurting. (Hardware
	// would approximate this with a small Bloom filter or region
	// counters; the simulator tracks it exactly.)
	pendingRefill map[uint64]struct{}
	refillMisses  uint64
}

// NewController wires a cache, fault map and power model together.
// For Baseline mode pass a nil map; the controller pins the top level.
func NewController(mode Mode, c *cache.Cache, m *faultmap.Map, levels faultmap.Levels, power *cacti.Model, clockHz float64, voltagePenalty uint64) (*Controller, error) {
	if c == nil || power == nil {
		return nil, fmt.Errorf("core: nil cache or power model")
	}
	if levels.N() == 0 {
		return nil, fmt.Errorf("core: empty voltage levels")
	}
	if mode != Baseline {
		if m == nil {
			return nil, fmt.Errorf("core: %v mode requires a fault map", mode)
		}
		if m.NumBlocks() != c.NumBlocks() {
			return nil, fmt.Errorf("core: fault map has %d blocks, cache has %d",
				m.NumBlocks(), c.NumBlocks())
		}
		if m.Levels().N() != levels.N() {
			return nil, fmt.Errorf("core: fault map encodes %d levels, controller given %d",
				m.Levels().N(), levels.N())
		}
	}
	if clockHz <= 0 {
		return nil, fmt.Errorf("core: non-positive clock %v", clockHz)
	}
	ct := &Controller{
		Mode:                 mode,
		Cache:                c,
		Map:                  m,
		Levels:               levels,
		Power:                power,
		VoltagePenaltyCycles: voltagePenalty,
		ClockHz:              clockHz,
		level:                levels.N(),
		timeAtLevelCycles:    make([]uint64, levels.N()),
	}
	if mode != Baseline {
		for b, n := 0, m.NumBlocks(); b < n; b++ {
			if fm := m.FM(b); fm > 0 {
				ct.deltaIdx = append(ct.deltaIdx, int32(b))
				ct.deltaFM = append(ct.deltaFM, uint8(fm))
			}
		}
	}
	ct.refreshAccessEnergy()
	return ct, nil
}

// refreshAccessEnergy recomputes the cached per-access dynamic energies
// for the current level.
func (ct *Controller) refreshAccessEnergy() {
	ct.readAccessJ = ct.Power.AccessEnergy(ct.VDD(), false).TotalPJ * 1e-12
	ct.writeAccessJ = ct.Power.AccessEnergy(ct.VDD(), true).TotalPJ * 1e-12
}

// SetSink attaches a telemetry sink. Every subsequent Transition call
// emits exactly one DecisionTransition event, so counting those events
// reconciles with Transitions() and summing their Writebacks fields with
// TransitionWritebacks(). A nil sink disables emission.
func (ct *Controller) SetSink(s obs.PolicySink) { ct.obsSink = s }

// Level returns the current 1-based VDD level.
func (ct *Controller) Level() int { return ct.level }

// VDD returns the current data-array supply voltage.
func (ct *Controller) VDD() float64 { return ct.Levels.Volts(ct.level) }

// ActiveFraction returns the fraction of blocks not power-gated at the
// current level.
func (ct *Controller) ActiveFraction() float64 {
	return 1 - float64(ct.Cache.FaultyCount())/float64(ct.Cache.NumBlocks())
}

// AdvanceTo integrates static power up to the given cycle. Callers must
// invoke it with non-decreasing cycle counts; transitions and final
// accounting call it implicitly.
func (ct *Controller) AdvanceTo(cycle uint64) {
	if cycle < ct.lastCycle {
		panic(fmt.Sprintf("core: time went backwards: %d -> %d", ct.lastCycle, cycle))
	}
	dc := cycle - ct.lastCycle
	if dc == 0 {
		return
	}
	dt := float64(dc) / ct.ClockHz
	p := ct.Power.StaticPower(ct.VDD(), ct.ActiveFraction())
	ct.staticJ += p.TotalW * dt
	ct.timeAtLevelCycles[ct.level-1] += dc
	ct.lastCycle = cycle
}

// OnAccess charges the dynamic energy of one access at the current VDD.
func (ct *Controller) OnAccess(write bool) {
	if write {
		ct.dynamicJ += ct.writeAccessJ
	} else {
		ct.dynamicJ += ct.readAccessJ
	}
}

// OnFill charges the dynamic energy of a block fill (a write of the
// whole block into the data array).
func (ct *Controller) OnFill() {
	ct.dynamicJ += ct.writeAccessJ
}

// Transition implements the paper's Listing 2: move the cache to the
// 1-based level next, writing back dirty valid blocks that become
// faulty (via sink), invalidating them, and updating every Faulty bit by
// comparing the intended VDD code against each block's FM bits. The
// static energy up to `now` is integrated first; the transition's own
// stall is PenaltyCycles, which the caller adds to execution time (and
// subsequent AdvanceTo calls then charge its static energy).
func (ct *Controller) Transition(next int, now uint64, sink func(addr uint64)) TransitionResult {
	if ct.Mode == Baseline {
		panic("core: Transition on a baseline controller")
	}
	if next < 1 || next > ct.Levels.N() {
		panic(fmt.Sprintf("core: transition to level %d out of 1..%d", next, ct.Levels.N()))
	}
	ct.AdvanceTo(now)
	res := TransitionResult{FromLevel: ct.level, ToLevel: next}

	// Delta walk, observationally equivalent to Listing 2's full
	// set×way metadata sweep (see DESIGN.md): by the fault inclusion
	// property a descent f→n only creates faults among blocks with
	// FM ∈ [n, f-1], and an ascent only recovers blocks with
	// FM ∈ [f, n-1]; every other Faulty bit is already correct. The
	// delta list is in ascending block-index order, so writebacks reach
	// the next level in exactly the order the full sweep emitted them.
	// The simulated hardware still sweeps every set, which is what
	// PenaltyCycles and the transition energy below charge for.
	from := ct.level
	if !ct.faultSynced {
		// First transition: every Faulty bit is still clear, so sync as
		// if descending from a level above the top (marking all blocks
		// with FM ≥ next), exactly as the full sweep would.
		from = ct.Levels.N() + 1
		ct.faultSynced = true
	}
	sets, ways := ct.Cache.Sets(), ct.Cache.Ways()
	if next < from {
		lo, hi := uint8(next), uint8(from-1)
		for i, b := range ct.deltaIdx {
			if fm := ct.deltaFM[i]; fm < lo || fm > hi {
				continue
			}
			s, w := int(b)/ways, int(b)%ways
			meta := ct.Cache.Meta(s, w)
			if meta.Valid {
				if need, addr := ct.Cache.InvalidateFrame(s, w); need {
					res.Writebacks++
					if sink != nil {
						sink(addr)
					}
				}
				res.Invalidations++
				if ct.pendingRefill == nil {
					ct.pendingRefill = make(map[uint64]struct{})
				}
				ct.pendingRefill[meta.Addr] = struct{}{}
			}
			if !meta.Faulty {
				res.NewFaulty++
			}
			ct.Cache.SetFaulty(s, w, true)
		}
	} else if next > from {
		lo, hi := uint8(from), uint8(next-1)
		for i, b := range ct.deltaIdx {
			if fm := ct.deltaFM[i]; fm < lo || fm > hi {
				continue
			}
			s, w := int(b)/ways, int(b)%ways
			if ct.Cache.Meta(s, w).Faulty {
				res.Recovered++
			}
			ct.Cache.SetFaulty(s, w, false)
		}
	}
	res.PenaltyCycles = 2*uint64(sets) + ct.VoltagePenaltyCycles

	// Transition dynamic energy: one tag-array read + one write per set
	// (metadata processing); modelled as the fixed per-access energy.
	eFixed := ct.Power.AccessEnergy(ct.Levels.Volts(next), false).FixedPJ
	ct.transitionJ += 2 * float64(sets) * eFixed * 1e-12

	ct.level = next
	ct.refreshAccessEnergy()
	ct.transitions++
	ct.transitionCycles += res.PenaltyCycles
	ct.transitionWBs += uint64(res.Writebacks)
	if ct.obsSink != nil {
		ct.obsSink.Record(obs.PolicyEvent{
			Cycle:         now,
			CacheName:     ct.Cache.Name(),
			Decision:      obs.DecisionTransition,
			FromLevel:     res.FromLevel,
			ToLevel:       res.ToLevel,
			FromVDD:       ct.Levels.Volts(res.FromLevel),
			ToVDD:         ct.Levels.Volts(res.ToLevel),
			Writebacks:    res.Writebacks,
			Invalidations: res.Invalidations,
			PenaltyCycles: res.PenaltyCycles,
		})
	}
	return res
}

// EnergyReport summarises the controller's accumulated energy.
type EnergyReport struct {
	StaticJ     float64
	DynamicJ    float64
	TransitionJ float64
	TotalJ      float64
}

// Energy finalises static integration at cycle `now` and returns the
// accumulated energy.
func (ct *Controller) Energy(now uint64) EnergyReport {
	ct.AdvanceTo(now)
	return EnergyReport{
		StaticJ:     ct.staticJ,
		DynamicJ:    ct.dynamicJ,
		TransitionJ: ct.transitionJ,
		TotalJ:      ct.staticJ + ct.dynamicJ + ct.transitionJ,
	}
}

// NoteMiss classifies a demand miss: if the missed block was invalidated
// by an earlier voltage transition, the miss is counted as a one-time
// refill. Simulators call it for every miss at this cache.
func (ct *Controller) NoteMiss(blockAddr uint64) {
	if ct.pendingRefill == nil {
		return
	}
	if _, ok := ct.pendingRefill[blockAddr]; ok {
		delete(ct.pendingRefill, blockAddr)
		ct.refillMisses++
	}
}

// RefillMisses returns the cumulative count of misses classified as
// transition-induced refills.
func (ct *Controller) RefillMisses() uint64 { return ct.refillMisses }

// Transitions returns how many voltage transitions have occurred.
func (ct *Controller) Transitions() int { return ct.transitions }

// TransitionCycles returns the total stall cycles spent in transitions.
func (ct *Controller) TransitionCycles() uint64 { return ct.transitionCycles }

// TransitionWritebacks returns dirty blocks written back by transitions.
func (ct *Controller) TransitionWritebacks() uint64 { return ct.transitionWBs }

// TimeAtLevelCycles returns the cycles spent at each level (index 0 =
// level 1), as integrated so far.
func (ct *Controller) TimeAtLevelCycles() []uint64 {
	out := make([]uint64, len(ct.timeAtLevelCycles))
	copy(out, ct.timeAtLevelCycles)
	return out
}
