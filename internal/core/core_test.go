package core

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/faultmodel"
	"repro/internal/sram"
	"repro/internal/stats"
)

// testRig bundles a small PCS cache for controller tests.
type testRig struct {
	cache  *cache.Cache
	fmap   *faultmap.Map
	levels faultmap.Levels
	ctrl   *Controller
}

func newRig(t *testing.T, mode Mode) *testRig {
	t.Helper()
	c := cache.MustNew(cache.Config{Name: "t", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64})
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	var m *faultmap.Map
	if mode != Baseline {
		m = faultmap.NewMap(levels, c.NumBlocks())
		// Deterministic fault pattern: every 8th block faulty at level 1,
		// every 32nd also at level 2.
		for b := 0; b < c.NumBlocks(); b++ {
			switch {
			case b%32 == 0:
				m.SetFM(b, 2)
			case b%8 == 0:
				m.SetFM(b, 1)
			}
		}
	}
	org := cacti.Org{Name: "t", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if mode != Baseline {
		cm = cm.WithPCS(levels.FMBits())
	}
	ctrl, err := NewController(mode, c, m, levels, cm, 2e9, 20)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{cache: c, fmap: m, levels: levels, ctrl: ctrl}
}

func TestControllerStartsAtTopLevel(t *testing.T) {
	r := newRig(t, SPCS)
	if r.ctrl.Level() != 3 || r.ctrl.VDD() != 1.00 {
		t.Fatalf("initial level %d VDD %v", r.ctrl.Level(), r.ctrl.VDD())
	}
	if r.ctrl.ActiveFraction() != 1 {
		t.Errorf("initial active fraction %v", r.ctrl.ActiveFraction())
	}
}

func TestTransitionSetsFaultyBits(t *testing.T) {
	r := newRig(t, SPCS)
	res := r.ctrl.Transition(2, 0, nil)
	if res.FromLevel != 3 || res.ToLevel != 2 {
		t.Fatalf("levels: %+v", res)
	}
	// FM=2 blocks (every 32nd of 256) are faulty at level 2: 8 blocks.
	if res.NewFaulty != 8 {
		t.Fatalf("new faulty %d, want 8", res.NewFaulty)
	}
	if got := r.cache.FaultyCount(); got != 8 {
		t.Fatalf("cache faulty count %d", got)
	}
	// Penalty: 2 cycles per set (64 sets) + 20 = 148.
	if res.PenaltyCycles != 148 {
		t.Fatalf("penalty %d, want 148", res.PenaltyCycles)
	}
	// Down to level 1: every 8th block (32) faulty in total.
	res = r.ctrl.Transition(1, 100, nil)
	if r.cache.FaultyCount() != 32 {
		t.Fatalf("faulty at level 1: %d, want 32", r.cache.FaultyCount())
	}
	if res.NewFaulty != 24 {
		t.Fatalf("newly faulty going 2->1: %d, want 24", res.NewFaulty)
	}
	// Back up: everything recovers.
	res = r.ctrl.Transition(3, 200, nil)
	if res.Recovered != 32 || r.cache.FaultyCount() != 0 {
		t.Fatalf("recovery: %+v, faulty %d", res, r.cache.FaultyCount())
	}
}

func TestTransitionWritesBackDirtyVictims(t *testing.T) {
	r := newRig(t, SPCS)
	// Dirty-fill block index 0's address (set 0): block 0 has FM=2.
	// Address mapping: set = blockNum % sets; make an address in set 0.
	r.cache.Access(0, true) // dirty block in set 0
	var wbs []uint64
	res := r.ctrl.Transition(2, 0, func(a uint64) { wbs = append(wbs, a) })
	// The dirty block was in set 0; whether it sat in the faulty way
	// depends on fill order (way 0 first), and block index 0 (set 0, way
	// 0) is faulty at level 2 -> it must have been written back.
	if res.Writebacks != 1 || len(wbs) != 1 || wbs[0] != 0 {
		t.Fatalf("writebacks: %+v addrs %v", res, wbs)
	}
	// Clean valid blocks that become faulty are invalidated silently.
	if res.Invalidations != 1 {
		t.Fatalf("invalidations %d", res.Invalidations)
	}
}

func TestTransitionPreservesHealthyBlocks(t *testing.T) {
	r := newRig(t, SPCS)
	// Fill several blocks in sets without level-2 faults.
	addrs := []uint64{64 * 1, 64 * 2, 64 * 3, 64 * 5}
	for _, a := range addrs {
		r.cache.Access(a, false)
	}
	r.ctrl.Transition(2, 0, nil)
	for _, a := range addrs {
		if !r.cache.Probe(a) {
			t.Errorf("healthy block %#x lost in transition", a)
		}
	}
	if err := r.cache.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyIntegration(t *testing.T) {
	r := newRig(t, SPCS)
	const cycles = 2e6 // 1 ms at 2 GHz
	e := r.ctrl.Energy(uint64(cycles))
	p := r.ctrl.Power.StaticPower(1.0, 1).TotalW
	want := p * (cycles / 2e9)
	if math.Abs(e.StaticJ-want)/want > 1e-9 {
		t.Fatalf("static energy %v, want %v", e.StaticJ, want)
	}
	if e.DynamicJ != 0 || e.TransitionJ != 0 {
		t.Errorf("unexpected dynamic/transition energy: %+v", e)
	}
}

func TestEnergyLowerAtReducedVDD(t *testing.T) {
	a := newRig(t, SPCS)
	b := newRig(t, SPCS)
	b.ctrl.Transition(2, 0, nil) // b runs at 0.70 V from cycle 0
	ea := a.ctrl.Energy(1e6)
	eb := b.ctrl.Energy(1e6)
	if eb.StaticJ >= ea.StaticJ {
		t.Fatalf("reduced-VDD static energy %v not below nominal %v", eb.StaticJ, ea.StaticJ)
	}
}

func TestOnAccessAccumulatesDynamicEnergy(t *testing.T) {
	r := newRig(t, SPCS)
	r.ctrl.OnAccess(false)
	r.ctrl.OnAccess(true)
	r.ctrl.OnFill()
	e := r.ctrl.Energy(0)
	if e.DynamicJ <= 0 {
		t.Fatal("no dynamic energy accumulated")
	}
}

func TestTimeAtLevelAccounting(t *testing.T) {
	r := newRig(t, SPCS)
	r.ctrl.Transition(2, 1000, nil) // 1000 cycles at level 3
	r.ctrl.Energy(4000)             // 3000 cycles at level 2
	tl := r.ctrl.TimeAtLevelCycles()
	if tl[2] != 1000 || tl[1] != 3000 || tl[0] != 0 {
		t.Fatalf("time at levels: %v", tl)
	}
}

func TestAdvanceToPanicsOnTimeTravel(t *testing.T) {
	r := newRig(t, SPCS)
	r.ctrl.AdvanceTo(100)
	defer func() {
		if recover() == nil {
			t.Error("backwards time accepted")
		}
	}()
	r.ctrl.AdvanceTo(50)
}

func TestBaselineControllerRejectsTransition(t *testing.T) {
	c := cache.MustNew(cache.Config{Name: "b", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64})
	org := cacti.Org{Name: "b", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, _ := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	ctrl, err := NewController(Baseline, c, nil, faultmap.MustLevels(1.0), cm, 2e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("baseline transition accepted")
		}
	}()
	ctrl.Transition(1, 0, nil)
}

func TestNewControllerValidation(t *testing.T) {
	r := newRig(t, SPCS)
	levels := r.levels
	org := cacti.Org{Name: "t", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, _ := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if _, err := NewController(SPCS, r.cache, nil, levels, cm, 2e9, 0); err == nil {
		t.Error("nil map accepted for SPCS")
	}
	wrongMap := faultmap.NewMap(levels, 8)
	if _, err := NewController(SPCS, r.cache, wrongMap, levels, cm, 2e9, 0); err == nil {
		t.Error("mismatched map size accepted")
	}
	if _, err := NewController(SPCS, r.cache, r.fmap, levels, cm, 0, 0); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := NewController(SPCS, nil, r.fmap, levels, cm, 2e9, 0); err == nil {
		t.Error("nil cache accepted")
	}
}

func TestRefillMissClassification(t *testing.T) {
	r := newRig(t, SPCS)
	// Fill a block that becomes faulty at level 2: block index 0 = set 0
	// way 0 (FM=2). Address 0 maps to set 0 and fills way 0 first.
	r.cache.Access(0, false)
	r.ctrl.Transition(2, 0, nil) // invalidates it
	r.ctrl.NoteMiss(0)
	if got := r.ctrl.RefillMisses(); got != 1 {
		t.Fatalf("refill misses %d, want 1", got)
	}
	// A second miss on the same block is damage, not refill.
	r.ctrl.NoteMiss(0)
	if got := r.ctrl.RefillMisses(); got != 1 {
		t.Fatalf("refill counted twice: %d", got)
	}
	// Unrelated misses are not refills.
	r.ctrl.NoteMiss(0x4000)
	if got := r.ctrl.RefillMisses(); got != 1 {
		t.Fatalf("unrelated miss classified as refill")
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "baseline" || SPCS.String() != "SPCS" || DPCS.String() != "DPCS" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

// --- level selection and map population ---

func TestSelectLevels(t *testing.T) {
	geom := faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
	fm, err := faultmodel.New(geom, sram.NewWangCalhounBER())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SelectLevels(fm, 1.0, 0.30, faultmodel.VDD1CapacityFloor(4))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Levels.N() != 3 {
		t.Fatalf("levels N = %d", plan.Levels.N())
	}
	if plan.SPCSLevel != 2 {
		t.Fatalf("SPCS level %d", plan.SPCSLevel)
	}
	if plan.Levels.Volts(3) != 1.0 {
		t.Error("top level not nominal")
	}
	if fm.ExpectedCapacity(plan.Levels.Volts(plan.SPCSLevel)) < 0.99 {
		t.Error("SPCS voltage violates 99% capacity")
	}
}

func TestPopulateMapMonteCarloStatistics(t *testing.T) {
	geom := faultmodel.Geometry{Sets: 4096, Ways: 8, BlockBits: 512}
	fm, _ := faultmodel.New(geom, sram.NewWangCalhounBER())
	plan, err := SelectLevels(fm, 1.0, 0.30, faultmodel.VDD1CapacityFloor(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	m := PopulateMapMonteCarlo(rng, plan, geom.Blocks())
	// Observed faulty fraction at each level must match the analytical
	// block-failure probability.
	for k := 1; k <= plan.Levels.N(); k++ {
		want := fm.PBlockFail(plan.Levels.Volts(k))
		got := float64(m.FaultyCount(k)) / float64(geom.Blocks())
		tol := 4 * math.Sqrt(want*(1-want)/float64(geom.Blocks())) // ~4 sigma
		if math.Abs(got-want) > tol+1e-6 {
			t.Errorf("level %d faulty fraction %v, want %v +- %v", k, got, want, tol)
		}
	}
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestPopulateMapDeterministic(t *testing.T) {
	geom := faultmodel.Geometry{Sets: 64, Ways: 4, BlockBits: 512}
	fm, _ := faultmodel.New(geom, sram.NewWangCalhounBER())
	plan, _ := SelectLevels(fm, 1.0, 0.30, faultmodel.VDD1CapacityFloor(4))
	a := PopulateMapMonteCarlo(stats.NewRNG(9), plan, geom.Blocks())
	b := PopulateMapMonteCarlo(stats.NewRNG(9), plan, geom.Blocks())
	for i := 0; i < geom.Blocks(); i++ {
		if a.FM(i) != b.FM(i) {
			t.Fatalf("same-seed maps differ at block %d", i)
		}
	}
}

func TestEnsureAndRepairSets(t *testing.T) {
	levels := faultmap.MustLevels(0.5, 1.0)
	m := faultmap.NewMap(levels, 16) // 4 sets x 4 ways
	// Kill set 2 completely at level 1.
	for w := 0; w < 4; w++ {
		m.SetFM(2*4+w, 1)
	}
	bad := EnsureSetsUsable(m, 4, 4, 1)
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("bad sets: %v", bad)
	}
	RepairSets(m, 4, bad)
	if bad := EnsureSetsUsable(m, 4, 4, 1); len(bad) != 0 {
		t.Fatalf("repair failed: %v", bad)
	}
}

func TestTransitionBookkeepingAccessors(t *testing.T) {
	r := newRig(t, SPCS)
	r.cache.Access(0, true) // dirty block in a level-2-faulty frame
	res := ApplySPCS(r.ctrl, 2, nil)
	if res.ToLevel != 2 {
		t.Fatal("ApplySPCS level")
	}
	if r.ctrl.Transitions() != 1 {
		t.Errorf("transitions %d", r.ctrl.Transitions())
	}
	if r.ctrl.TransitionCycles() != res.PenaltyCycles {
		t.Errorf("transition cycles %d != %d", r.ctrl.TransitionCycles(), res.PenaltyCycles)
	}
	if r.ctrl.TransitionWritebacks() != uint64(res.Writebacks) {
		t.Errorf("transition writebacks %d != %d",
			r.ctrl.TransitionWritebacks(), res.Writebacks)
	}
}
