package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bist"
	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/sram"
	"repro/internal/stats"
)

// TestBISTDrivenController runs the full silicon flow: Monte-Carlo SRAM
// array -> March SS at every level -> fault map -> controller, then
// checks that the controller's gating at each voltage exactly matches
// what the BIST observed on the "silicon".
func TestBISTDrivenController(t *testing.T) {
	const (
		blocks     = 128
		blockBits  = 512
		sizeBytes  = 128 * 64
		assoc      = 4
		blockBytes = 64
	)
	levels := faultmap.MustLevels(0.50, 0.60, 1.00)
	arr := sram.NewArray(stats.NewRNG(99), sram.NewWangCalhounBER(),
		blocks, blockBits, 0.30, 1.00)
	m, results, violations := bist.PopulateFaultMap(bist.MarchSS(), arr, levels)
	if len(violations) != 0 {
		t.Fatalf("inclusion violations: %v", violations)
	}

	c := cache.MustNew(cache.Config{Name: "bist", SizeBytes: sizeBytes,
		Assoc: assoc, BlockBytes: blockBytes})
	org := cacti.Org{Name: "bist", SizeBytes: sizeBytes, Assoc: assoc,
		BlockBytes: blockBytes, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(DPCS, c, m, levels, cm.WithPCS(levels.FMBits()), 1e9, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Walk down the ladder; at each level the gated count must equal the
	// number of rows March SS flagged at that voltage (cumulative via
	// inclusion).
	now := uint64(0)
	for k := levels.N(); k >= 1; k-- {
		now += 1000
		ctrl.Transition(k, now, nil)
		wantFaulty := 0
		for _, r := range results {
			if r.VDD == levels.Volts(k) {
				wantFaulty = len(r.FaultyRows)
			}
		}
		if got := c.FaultyCount(); got != wantFaulty {
			t.Errorf("level %d: controller gates %d blocks, BIST saw %d faulty rows",
				k, got, wantFaulty)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTransitionSequencesPreserveInvariants drives random level
// sequences over random fault maps and checks the structural invariants
// after every transition.
func TestTransitionSequencesPreserveInvariants(t *testing.T) {
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	org := cacti.Org{Name: "q", SizeBytes: 8 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint32, seq []uint8) bool {
		rng := stats.NewRNG(uint64(seed))
		c := cache.MustNew(cache.Config{Name: "q", SizeBytes: 8 << 10, Assoc: 4, BlockBytes: 64})
		m := faultmap.NewMap(levels, c.NumBlocks())
		for b := 0; b < c.NumBlocks(); b++ {
			m.SetFM(b, rng.Intn(3)) // 0..2 so the top level always works
		}
		ctrl, err := NewController(DPCS, c, m, levels, cm.WithPCS(2), 1e9, 5)
		if err != nil {
			return false
		}
		now := uint64(0)
		sink := func(addr uint64) {}
		// Interleave accesses and transitions.
		for _, step := range seq {
			now += 100
			if step%4 == 0 {
				ctrl.Transition(int(step%3)+1, now, sink)
			} else {
				c.Access(uint64(step)*64*13, step%5 == 0)
			}
			// Invariants: faulty count matches the map at the current
			// level; no valid faulty frames.
			if c.FaultyCount() != m.FaultyCount(ctrl.Level()) {
				return false
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTransitionWritebacksMatchDirtyFaulty verifies the Listing-2
// accounting: writebacks equal exactly the dirty valid blocks that
// become faulty.
func TestTransitionWritebacksMatchDirtyFaulty(t *testing.T) {
	r := newRig(t, SPCS)
	// Dirty every block in the cache.
	for s := 0; s < r.cache.Sets(); s++ {
		for w := 0; w < r.cache.Ways(); w++ {
			addr := uint64(s*64) + uint64(w)*uint64(r.cache.Sets()*64)
			r.cache.Access(addr, true)
		}
	}
	if r.cache.ValidCount() != r.cache.NumBlocks() {
		t.Fatalf("cache not full: %d", r.cache.ValidCount())
	}
	// Count blocks faulty at level 1 from the map.
	want := r.fmap.FaultyCount(1)
	var got int
	res := r.ctrl.Transition(1, 0, func(addr uint64) { got++ })
	if got != want || res.Writebacks != want {
		t.Fatalf("writebacks %d/%d, want %d", got, res.Writebacks, want)
	}
	if res.Invalidations != want {
		t.Fatalf("invalidations %d, want %d", res.Invalidations, want)
	}
}
