package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmap"
)

// policyRig builds a DPCS-mode controller plus policy with direct access
// to the underlying cache for synthetic access injection.
type policyRig struct {
	cache *cache.Cache
	ctrl  *Controller
	pol   *DPCSPolicy
	cfg   DPCSConfig
	now   uint64
}

func newPolicyRig(t testing.TB) *policyRig {
	t.Helper()
	c := cache.MustNew(cache.Config{Name: "p", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64})
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	m := faultmap.NewMap(levels, c.NumBlocks())
	for b := 0; b < c.NumBlocks(); b += 16 {
		m.SetFM(b, 1) // ~6% of blocks faulty at level 1 only
	}
	org := cacti.Org{Name: "p", SizeBytes: 16 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
	cm, err := cacti.New(org, device.Tech45SOI(), cacti.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(DPCS, c, m, levels, cm.WithPCS(2), 2e9, 20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DPCSConfig{
		Interval:          100,
		SuperInterval:     10,
		LowThreshold:      0.02,
		HighThreshold:     0.05,
		HitCycles:         2,
		MissPenaltyCycles: 100,
		SPCSLevel:         2,
	}
	pol, err := NewDPCS(cfg, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return &policyRig{cache: c, ctrl: ctrl, pol: pol, cfg: cfg}
}

// runInterval injects one interval's worth of accesses with roughly the
// given miss rate (by alternating between a resident block and fresh
// addresses) and then ticks the policy, advancing a synthetic clock with
// cycles proportional to the observed cost.
func (r *policyRig) runInterval(t testing.TB, missFrac float64) uint64 {
	t.Helper()
	n := int(r.cfg.Interval)
	misses := int(missFrac * float64(n))
	// Resident block for hits.
	r.cache.Access(0x40, false)
	fresh := uint64(0x100000) * (uint64(r.now) + 1)
	for i := 0; i < n; i++ {
		if i < misses {
			addr := fresh + uint64(i)*64*256 // distinct sets, always miss
			res := r.cache.Access(addr, false)
			if res.Hit {
				t.Fatal("expected miss")
			}
			r.ctrl.NoteMiss(addr &^ 63)
			r.now += 100
		} else {
			r.cache.Access(0x40, false)
			r.now += 2
		}
	}
	return r.pol.Tick(r.now, nil)
}

func TestDPCSConfigValidation(t *testing.T) {
	good := DPCSConfig{Interval: 10, SuperInterval: 5, LowThreshold: 0.01,
		HighThreshold: 0.05, HitCycles: 2, MissPenaltyCycles: 100, SPCSLevel: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mod := func(f func(*DPCSConfig)) DPCSConfig { c := good; f(&c); return c }
	bads := []DPCSConfig{
		mod(func(c *DPCSConfig) { c.Interval = 0 }),
		mod(func(c *DPCSConfig) { c.SuperInterval = 2 }),
		mod(func(c *DPCSConfig) { c.LowThreshold = -0.1 }),
		mod(func(c *DPCSConfig) { c.HighThreshold = 0.005 }),
		mod(func(c *DPCSConfig) { c.HitCycles = 0 }),
		mod(func(c *DPCSConfig) { c.MissPenaltyCycles = 0 }),
		mod(func(c *DPCSConfig) { c.SPCSLevel = 0 }),
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewDPCSRequiresDPCSMode(t *testing.T) {
	r := newRig(t, SPCS)
	_, err := NewDPCS(DPCSConfig{Interval: 10, SuperInterval: 5, LowThreshold: 0.01,
		HighThreshold: 0.05, HitCycles: 2, MissPenaltyCycles: 10, SPCSLevel: 2}, r.ctrl)
	if err == nil {
		t.Error("SPCS-mode controller accepted")
	}
}

func TestStartMovesToSPCSLevel(t *testing.T) {
	r := newPolicyRig(t)
	res := r.pol.Start(nil)
	if res.ToLevel != 2 || r.ctrl.Level() != 2 {
		t.Fatalf("start level %d", r.ctrl.Level())
	}
}

func TestPolicyDormantUntilArmed(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	for i := 0; i < 5; i++ {
		r.runInterval(t, 0.0)
	}
	if r.ctrl.Level() != 2 || r.pol.Downs != 0 {
		t.Fatalf("unarmed policy acted: level %d downs %d", r.ctrl.Level(), r.pol.Downs)
	}
}

func TestDescendsWhenHarmless(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	// Interval 0 samples NAAT; interval 1 may descend.
	for i := 0; i < 4 && r.ctrl.Level() != 1; i++ {
		r.runInterval(t, 0.0)
	}
	if r.ctrl.Level() != 1 {
		t.Fatalf("policy did not descend on harmless workload: level %d", r.ctrl.Level())
	}
	if r.pol.Downs == 0 {
		t.Error("downs counter zero")
	}
}

func TestEscapesOnSustainedDegradation(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	// Establish NAAT at low miss rate, descend.
	r.runInterval(t, 0.0)
	for i := 0; i < 3 && r.ctrl.Level() != 1; i++ {
		r.runInterval(t, 0.0)
	}
	if r.ctrl.Level() != 1 {
		t.Fatal("did not descend")
	}
	// Now sustained misses (damage, since addresses are fresh — not the
	// invalidated refill set): CAAT and slowdown blow past the budget.
	for i := 0; i < 4 && r.ctrl.Level() == 1; i++ {
		r.runInterval(t, 0.5)
	}
	if r.ctrl.Level() != 2 {
		t.Fatalf("policy did not escape: level %d (ups=%d)", r.ctrl.Level(), r.pol.Ups)
	}
	if r.pol.Ups == 0 {
		t.Error("ups counter zero")
	}
}

func TestHoldLatchBlocksImmediateRedescent(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	r.runInterval(t, 0.0) // NAAT
	for i := 0; i < 3 && r.ctrl.Level() != 1; i++ {
		r.runInterval(t, 0.0)
	}
	for i := 0; i < 4 && r.ctrl.Level() == 1; i++ {
		r.runInterval(t, 0.5) // force escape
	}
	if r.ctrl.Level() != 2 {
		t.Fatal("precondition: escape did not happen")
	}
	// Harmless again, but still within the same super-interval and the
	// same miss-rate regime: the latch plus the bad-level memory must
	// prevent immediate redescent.
	downsBefore := r.pol.Downs
	r.runInterval(t, 0.5)
	if r.ctrl.Level() != 2 || r.pol.Downs != downsBefore {
		t.Fatalf("redescended immediately after escape: level %d", r.ctrl.Level())
	}
}

func TestBadVerdictClearsOnPhaseChange(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	r.runInterval(t, 0.4) // NAAT in a high-miss regime
	for i := 0; i < 3 && r.ctrl.Level() != 1; i++ {
		r.runInterval(t, 0.4)
	}
	for i := 0; i < 6 && r.ctrl.Level() == 1; i++ {
		r.runInterval(t, 0.9) // escape under heavy degradation
	}
	if r.ctrl.Level() != 2 {
		t.Skip("escape did not trigger in this configuration")
	}
	// Dramatic phase change to an always-hit regime: after the next
	// recalibration the policy may explore downward again.
	descended := false
	for i := 0; i < 3*r.cfg.SuperInterval && !descended; i++ {
		r.runInterval(t, 0.0)
		descended = r.ctrl.Level() == 1
	}
	if !descended {
		t.Error("policy never re-explored after a clear phase change")
	}
}

func TestNAATTracksWorkload(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	r.runInterval(t, 0.0)
	low := r.pol.NAAT()
	if low < 2 || low > 3 {
		t.Fatalf("NAAT %v for hit-only interval", low)
	}
}

func TestTransitionStallReturned(t *testing.T) {
	r := newPolicyRig(t)
	r.pol.Start(nil)
	r.pol.Arm(r.now)
	r.runInterval(t, 0.0) // NAAT sample, no transition
	var stall uint64
	for i := 0; i < 4 && stall == 0; i++ {
		stall = r.runInterval(t, 0.0)
	}
	// 2 cycles x 64 sets + 20 voltage settle = 148.
	if stall != 148 {
		t.Fatalf("descent stall %d, want 148", stall)
	}
}
