package core

import (
	"testing"

	"repro/internal/obs"
)

// settleAtFloor drives the rig until the policy has descended to the
// bottom level and reached steady state, so subsequent hit-only
// intervals make no transitions (descents are blocked by the floor,
// escapes by the zero miss rate, recalibrations by the skip-reset path).
func settleAtFloor(t testing.TB, r *policyRig) {
	t.Helper()
	for i := 0; i < 3*r.cfg.SuperInterval; i++ {
		r.runInterval(t, 0)
	}
	if r.ctrl.Level() != 1 {
		t.Fatalf("rig did not settle at the floor: level %d", r.ctrl.Level())
	}
}

// TestTickZeroAllocsWhenTracingOff asserts the telemetry refactor's
// performance contract: with no sink — or the no-op sink — attached, the
// per-interval policy path performs zero heap allocations.
func TestTickZeroAllocsWhenTracingOff(t *testing.T) {
	sinks := []struct {
		name string
		sink obs.PolicySink
	}{
		{"nil", nil},
		{"nop", obs.NopSink{}},
	}
	for _, tc := range sinks {
		t.Run(tc.name, func(t *testing.T) {
			r := newPolicyRig(t)
			r.pol.Start(nil)
			r.pol.Arm(0)
			r.ctrl.SetSink(tc.sink)
			r.pol.SetSink(tc.sink)
			settleAtFloor(t, r)
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < int(r.cfg.Interval); i++ {
					r.cache.Access(0x40, false)
					r.now += 2
				}
				r.pol.Tick(r.now, nil)
			})
			if avg != 0 {
				t.Errorf("policy interval allocated %.1f times per run, want 0", avg)
			}
		})
	}
}

// TestPolicyEmitsTypedDecisions checks the event stream carries the
// Listing-1 state machine: a calibration at the super-interval start, a
// descent with CAAT/NAAT context, and one transition event per
// controller transition.
func TestPolicyEmitsTypedDecisions(t *testing.T) {
	r := newPolicyRig(t)
	col := &obs.Collector{}
	r.ctrl.SetSink(col)
	r.pol.SetSink(col)
	r.pol.Start(nil)
	r.pol.Arm(0)
	for i := 0; i < 2*r.cfg.SuperInterval; i++ {
		r.runInterval(t, 0)
	}

	counts := map[obs.Decision]int{}
	transitionWBs := 0
	for _, ev := range col.Events {
		counts[ev.Decision]++
		if ev.CacheName != "p" {
			t.Fatalf("event cache %q, want %q", ev.CacheName, "p")
		}
		if ev.Decision == obs.DecisionTransition {
			transitionWBs += ev.Writebacks
		}
	}
	if counts[obs.DecisionCalibrate] == 0 {
		t.Error("no calibrate event")
	}
	if counts[obs.DecisionDown] != r.pol.Downs {
		t.Errorf("down events %d, policy counter %d", counts[obs.DecisionDown], r.pol.Downs)
	}
	if counts[obs.DecisionTransition] != r.ctrl.Transitions() {
		t.Errorf("transition events %d, controller counter %d",
			counts[obs.DecisionTransition], r.ctrl.Transitions())
	}
	if uint64(transitionWBs) != r.ctrl.TransitionWritebacks() {
		t.Errorf("event writebacks %d, controller counter %d",
			transitionWBs, r.ctrl.TransitionWritebacks())
	}
}
