// Package faultmap implements the paper's lightweight multi-VDD fault
// map. For N allowed data-array VDD levels, each block carries
// ceil(log2(N+1)) "FM" bits encoding the lowest VDD level at which the
// block is non-faulty, plus one "Faulty" bit reflecting whether the block
// is faulty at the *current* voltage. The FM encoding is only possible
// because of the fault inclusion property (a block faulty at some voltage
// is faulty at all lower voltages), which compresses what would otherwise
// be N separate fault maps into a single log-sized field — the key
// overhead advantage over schemes like FFT-Cache that need one full map
// per additional voltage.
//
// FM value semantics (matching Fig. 1a's comparison rule): FM = k means
// the block is faulty at VDD levels <= k and non-faulty at levels > k.
// FM = 0 means never faulty at any allowed level; FM = N means faulty
// even at the highest level (a manufacturing defect).
package faultmap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
)

// Levels is an ordered set of allowed data-array supply voltages, from
// lowest (level 1) to highest (level N). Level indices are 1-based to
// match the paper's "VDD1 / VDD2 / VDD3" naming; level 0 is reserved to
// mean "below every allowed level" in FM comparisons.
type Levels struct {
	volts []float64
}

// NewLevels builds a Levels from the given voltages, which must be
// strictly increasing and positive.
func NewLevels(volts ...float64) (Levels, error) {
	if len(volts) == 0 {
		return Levels{}, errors.New("faultmap: at least one voltage level required")
	}
	for i, v := range volts {
		if v <= 0 {
			return Levels{}, fmt.Errorf("faultmap: voltage %v must be positive", v)
		}
		if i > 0 && volts[i] <= volts[i-1] {
			return Levels{}, fmt.Errorf("faultmap: voltages must be strictly increasing (%v after %v)",
				volts[i], volts[i-1])
		}
	}
	cp := append([]float64(nil), volts...)
	return Levels{volts: cp}, nil
}

// MustLevels is NewLevels that panics on error, for tests and literals.
func MustLevels(volts ...float64) Levels {
	l, err := NewLevels(volts...)
	if err != nil {
		panic(err)
	}
	return l
}

// N returns the number of allowed levels.
func (l Levels) N() int { return len(l.volts) }

// Volts returns the voltage of the 1-based level k.
func (l Levels) Volts(k int) float64 {
	if k < 1 || k > len(l.volts) {
		panic(fmt.Sprintf("faultmap: level %d out of 1..%d", k, len(l.volts)))
	}
	return l.volts[k-1]
}

// All returns a copy of all voltages, lowest first.
func (l Levels) All() []float64 { return append([]float64(nil), l.volts...) }

// LevelOf returns the 1-based level whose voltage equals v (within 1e-9),
// or 0 if v is not an allowed level.
func (l Levels) LevelOf(v float64) int {
	for i, lv := range l.volts {
		if math.Abs(lv-v) < 1e-9 {
			return i + 1
		}
	}
	return 0
}

// HighestLevelAtOrBelow returns the highest 1-based level whose voltage is
// <= v, or 0 if every level is above v.
func (l Levels) HighestLevelAtOrBelow(v float64) int {
	i := sort.SearchFloat64s(l.volts, v+1e-12)
	return i
}

// FMBits returns the number of fault-map bits per block needed to encode
// the N+1 possible FM values: ceil(log2(N+1)).
func (l Levels) FMBits() int {
	return bits.Len(uint(len(l.volts)))
}

// Map is the fault map for a cache data array: one FM entry per block.
// The Faulty bits live with the cache metadata (package cache), not here;
// Map holds only the static per-block minimum-level information that a
// BIST pass populates.
type Map struct {
	levels Levels
	// fm[b] = lowest level at which block b is *faulty*; the block is
	// non-faulty at all levels strictly above fm[b]. 0 = never faulty.
	fm []uint8
}

// NewMap creates an all-zero (fault-free) map for nblocks blocks.
func NewMap(levels Levels, nblocks int) *Map {
	if nblocks <= 0 {
		panic(fmt.Sprintf("faultmap: invalid block count %d", nblocks))
	}
	if levels.N() == 0 {
		panic("faultmap: empty levels")
	}
	if levels.N() > 254 {
		panic("faultmap: more than 254 levels not supported by uint8 FM storage")
	}
	return &Map{levels: levels, fm: make([]uint8, nblocks)}
}

// Reset reinitialises m to the state NewMap(levels, nblocks) would
// construct, reusing the FM storage when its capacity suffices. It is
// the arena-reuse counterpart of NewMap: a per-worker buffer can absorb
// one fresh fault map per campaign cell without reallocating. The same
// validation as NewMap applies.
func (m *Map) Reset(levels Levels, nblocks int) {
	if nblocks <= 0 {
		panic(fmt.Sprintf("faultmap: invalid block count %d", nblocks))
	}
	if levels.N() == 0 {
		panic("faultmap: empty levels")
	}
	if levels.N() > 254 {
		panic("faultmap: more than 254 levels not supported by uint8 FM storage")
	}
	m.levels = levels
	if cap(m.fm) >= nblocks {
		m.fm = m.fm[:nblocks]
		clear(m.fm)
	} else {
		m.fm = make([]uint8, nblocks)
	}
}

// SnapshotFM copies the map's FM values into dst (reusing its capacity)
// and returns the snapshot. Together with RestoreFM it lets an arena
// keep a pristine copy of an expensive Monte-Carlo population and
// replay it with a memcpy instead of redrawing.
func (m *Map) SnapshotFM(dst []uint8) []uint8 {
	return append(dst[:0], m.fm...)
}

// RestoreFM overwrites the map's FM values from a snapshot taken by
// SnapshotFM on an identically-sized map. It panics on a size mismatch:
// a snapshot only makes sense for the exact population it captured.
func (m *Map) RestoreFM(snap []uint8) {
	if len(snap) != len(m.fm) {
		panic(fmt.Sprintf("faultmap: snapshot of %d blocks restored into map of %d", len(snap), len(m.fm)))
	}
	copy(m.fm, snap)
}

// Levels returns the voltage levels the map encodes against.
func (m *Map) Levels() Levels { return m.levels }

// NumBlocks returns the number of blocks tracked.
func (m *Map) NumBlocks() int { return len(m.fm) }

// FM returns block b's FM value: the highest level at which it is faulty
// (0 if never faulty at any allowed level).
func (m *Map) FM(b int) int { return int(m.fm[b]) }

// SetFM records block b's FM value. It panics if v exceeds N (N means
// faulty even at the highest allowed level).
func (m *Map) SetFM(b, v int) {
	if v < 0 || v > m.levels.N() {
		panic(fmt.Sprintf("faultmap: FM value %d out of 0..%d", v, m.levels.N()))
	}
	m.fm[b] = uint8(v)
}

// SetFromVmin records block b's FM value from the block's physical
// minimum reliable voltage: the FM value is the highest allowed level
// whose voltage is below vmin (at such levels the block is faulty).
func (m *Map) SetFromVmin(b int, vmin float64) {
	fm := 0
	for k := 1; k <= m.levels.N(); k++ {
		if m.levels.Volts(k) < vmin {
			fm = k
		}
	}
	m.fm[b] = uint8(fm)
}

// FaultyAt reports whether block b is faulty when operating at the
// 1-based voltage level. This is the hardware comparison from the paper:
// "if the VDD code is less than or equal to the block's FM value, then
// the Faulty bit needs to be set".
func (m *Map) FaultyAt(b, level int) bool {
	if level < 1 || level > m.levels.N() {
		panic(fmt.Sprintf("faultmap: level %d out of 1..%d", level, m.levels.N()))
	}
	return level <= int(m.fm[b])
}

// FaultyCount returns the number of blocks faulty at the given level.
func (m *Map) FaultyCount(level int) int {
	n := 0
	for b := range m.fm {
		if m.FaultyAt(b, level) {
			n++
		}
	}
	return n
}

// EffectiveCapacity returns the proportion of non-faulty blocks at the
// given level.
func (m *Map) EffectiveCapacity(level int) float64 {
	return 1 - float64(m.FaultyCount(level))/float64(len(m.fm))
}

// MinUsableLevel returns the lowest 1-based level at which block b is
// usable, or N+1 if the block is faulty even at the highest level.
func (m *Map) MinUsableLevel(b int) int { return int(m.fm[b]) + 1 }

// CheckInclusion verifies the fault inclusion property as encoded:
// for every block, the set of faulty levels must be a downward-closed
// prefix {1..FM}. This holds by construction of the FM encoding; the
// check exists to validate maps populated from external BIST results.
// A BIST result that violates inclusion (observed faulty at level k but
// not at k-1) cannot be represented and is reported by the BIST layer.
func (m *Map) CheckInclusion() error {
	for b, v := range m.fm {
		if int(v) > m.levels.N() {
			return fmt.Errorf("faultmap: block %d FM %d exceeds level count %d", b, v, m.levels.N())
		}
	}
	return nil
}

// StorageBitsPerBlock returns the number of metadata bits the mechanism
// adds per block: the FM bits plus the single Faulty bit.
func (m *Map) StorageBitsPerBlock() int { return m.levels.FMBits() + 1 }

const mapMagic = 0x50435346 // "PCSF"

// WriteTo serialises the map in a compact binary format.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(mapMagic)); err != nil {
		return n, err
	}
	if err := write(uint32(m.levels.N())); err != nil {
		return n, err
	}
	if err := write(m.levels.volts); err != nil {
		return n, err
	}
	if err := write(uint32(len(m.fm))); err != nil {
		return n, err
	}
	if err := write(m.fm); err != nil {
		return n, err
	}
	return n, nil
}

// ReadMap deserialises a map written by WriteTo.
func ReadMap(r io.Reader) (*Map, error) {
	var magic, nlevels uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("faultmap: reading magic: %w", err)
	}
	if magic != mapMagic {
		return nil, fmt.Errorf("faultmap: bad magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &nlevels); err != nil {
		return nil, fmt.Errorf("faultmap: reading level count: %w", err)
	}
	if nlevels == 0 || nlevels > 254 {
		return nil, fmt.Errorf("faultmap: implausible level count %d", nlevels)
	}
	volts := make([]float64, nlevels)
	if err := binary.Read(r, binary.LittleEndian, &volts); err != nil {
		return nil, fmt.Errorf("faultmap: reading voltages: %w", err)
	}
	levels, err := NewLevels(volts...)
	if err != nil {
		return nil, err
	}
	var nblocks uint32
	if err := binary.Read(r, binary.LittleEndian, &nblocks); err != nil {
		return nil, fmt.Errorf("faultmap: reading block count: %w", err)
	}
	if nblocks == 0 || nblocks > 1<<28 {
		return nil, fmt.Errorf("faultmap: implausible block count %d", nblocks)
	}
	m := NewMap(levels, int(nblocks))
	if err := binary.Read(r, binary.LittleEndian, &m.fm); err != nil {
		return nil, fmt.Errorf("faultmap: reading FM values: %w", err)
	}
	for b, v := range m.fm {
		if int(v) > levels.N() {
			return nil, fmt.Errorf("faultmap: block %d FM %d exceeds level count", b, v)
		}
	}
	return m, nil
}
