package faultmap

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func threeLevels(t *testing.T) Levels {
	t.Helper()
	l, err := NewLevels(0.54, 0.70, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLevelsValidation(t *testing.T) {
	if _, err := NewLevels(); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewLevels(0.7, 0.5); err == nil {
		t.Error("decreasing levels accepted")
	}
	if _, err := NewLevels(0.5, 0.5); err == nil {
		t.Error("duplicate levels accepted")
	}
	if _, err := NewLevels(-0.1, 0.5); err == nil {
		t.Error("negative level accepted")
	}
}

func TestLevelsAccessors(t *testing.T) {
	l := threeLevels(t)
	if l.N() != 3 {
		t.Fatalf("N = %d", l.N())
	}
	if l.Volts(1) != 0.54 || l.Volts(3) != 1.00 {
		t.Error("Volts mismatch")
	}
	all := l.All()
	if len(all) != 3 || all[0] != 0.54 {
		t.Error("All mismatch")
	}
	all[0] = 99 // must not alias internal state
	if l.Volts(1) != 0.54 {
		t.Error("All leaked internal slice")
	}
}

func TestLevelOf(t *testing.T) {
	l := threeLevels(t)
	if l.LevelOf(0.70) != 2 {
		t.Errorf("LevelOf(0.70) = %d", l.LevelOf(0.70))
	}
	if l.LevelOf(0.65) != 0 {
		t.Errorf("LevelOf(0.65) = %d", l.LevelOf(0.65))
	}
}

func TestHighestLevelAtOrBelow(t *testing.T) {
	l := threeLevels(t)
	cases := []struct {
		v    float64
		want int
	}{
		{0.50, 0}, {0.54, 1}, {0.60, 1}, {0.70, 2}, {0.99, 2}, {1.00, 3}, {1.20, 3},
	}
	for _, c := range cases {
		if got := l.HighestLevelAtOrBelow(c.v); got != c.want {
			t.Errorf("HighestLevelAtOrBelow(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFMBits(t *testing.T) {
	// log2(N+1) rounded up: N=3 -> 2 bits, N=1 -> 1 bit, N=7 -> 3 bits.
	cases := []struct {
		volts []float64
		want  int
	}{
		{[]float64{1.0}, 1},
		{[]float64{0.5, 1.0}, 2},
		{[]float64{0.5, 0.7, 1.0}, 2},
		{[]float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, 3},
	}
	for _, c := range cases {
		l := MustLevels(c.volts...)
		if got := l.FMBits(); got != c.want {
			t.Errorf("FMBits(N=%d) = %d, want %d", len(c.volts), got, c.want)
		}
	}
}

func TestMapFaultyAtSemantics(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 4)
	m.SetFM(0, 0) // never faulty
	m.SetFM(1, 1) // faulty only at level 1
	m.SetFM(2, 2) // faulty at levels 1 and 2
	m.SetFM(3, 3) // faulty everywhere
	type want struct{ l1, l2, l3 bool }
	wants := []want{
		{false, false, false},
		{true, false, false},
		{true, true, false},
		{true, true, true},
	}
	for b, w := range wants {
		if m.FaultyAt(b, 1) != w.l1 || m.FaultyAt(b, 2) != w.l2 || m.FaultyAt(b, 3) != w.l3 {
			t.Errorf("block %d FM=%d: got (%v,%v,%v), want %+v",
				b, m.FM(b), m.FaultyAt(b, 1), m.FaultyAt(b, 2), m.FaultyAt(b, 3), w)
		}
	}
}

func TestFaultInclusionEncoded(t *testing.T) {
	// By construction of the FM encoding, faulty at level k implies
	// faulty at all levels below k — the compressed-map property.
	l := threeLevels(t)
	m := NewMap(l, 64)
	if err := quick.Check(func(b, fm uint8) bool {
		blk := int(b) % 64
		m.SetFM(blk, int(fm)%4)
		for k := 2; k <= 3; k++ {
			if m.FaultyAt(blk, k) && !m.FaultyAt(blk, k-1) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetFromVmin(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 5)
	cases := []struct {
		vmin float64
		want int
	}{
		{0.30, 0},        // reliable at every level
		{0.54, 0},        // exactly at level 1: not faulty there
		{0.60, 1},        // faulty at 0.54, fine at 0.70
		{0.80, 2},        // faulty at 0.54 and 0.70
		{math.Inf(1), 3}, // faulty everywhere
	}
	for i, c := range cases {
		m.SetFromVmin(i, c.vmin)
		if got := m.FM(i); got != c.want {
			t.Errorf("vmin %v -> FM %d, want %d", c.vmin, got, c.want)
		}
	}
}

func TestFaultyCountAndCapacity(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 10)
	m.SetFM(0, 1)
	m.SetFM(1, 2)
	m.SetFM(2, 3)
	if got := m.FaultyCount(1); got != 3 {
		t.Errorf("count@1 = %d", got)
	}
	if got := m.FaultyCount(2); got != 2 {
		t.Errorf("count@2 = %d", got)
	}
	if got := m.FaultyCount(3); got != 1 {
		t.Errorf("count@3 = %d", got)
	}
	if got := m.EffectiveCapacity(1); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("capacity@1 = %v", got)
	}
}

func TestMinUsableLevel(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 2)
	m.SetFM(0, 0)
	m.SetFM(1, 2)
	if m.MinUsableLevel(0) != 1 {
		t.Errorf("block 0 min level %d", m.MinUsableLevel(0))
	}
	if m.MinUsableLevel(1) != 3 {
		t.Errorf("block 1 min level %d", m.MinUsableLevel(1))
	}
}

func TestStorageBitsPerBlock(t *testing.T) {
	m := NewMap(threeLevels(t), 4)
	// 2 FM bits + 1 Faulty bit for N=3 — the paper's "3, 3" in Table 2.
	if got := m.StorageBitsPerBlock(); got != 3 {
		t.Errorf("storage bits %d, want 3", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 100)
	for b := 0; b < 100; b++ {
		m.SetFM(b, b%4)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != 100 || got.Levels().N() != 3 {
		t.Fatalf("shape mismatch: %d blocks, %d levels", got.NumBlocks(), got.Levels().N())
	}
	for b := 0; b < 100; b++ {
		if got.FM(b) != m.FM(b) {
			t.Fatalf("block %d FM %d != %d", b, got.FM(b), m.FM(b))
		}
	}
	for k := 1; k <= 3; k++ {
		if got.Levels().Volts(k) != l.Volts(k) {
			t.Fatalf("level %d voltage mismatch", k)
		}
	}
}

func TestReadMapRejectsGarbage(t *testing.T) {
	if _, err := ReadMap(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short input accepted")
	}
	if _, err := ReadMap(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadMapRejectsTruncated(t *testing.T) {
	m := NewMap(threeLevels(t), 8)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 7 {
		if _, err := ReadMap(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated map at %d bytes accepted", cut)
		}
	}
}

func TestMapPanics(t *testing.T) {
	l := threeLevels(t)
	m := NewMap(l, 4)
	for _, f := range []func(){
		func() { m.SetFM(0, 4) },
		func() { m.SetFM(0, -1) },
		func() { m.FaultyAt(0, 0) },
		func() { m.FaultyAt(0, 4) },
		func() { NewMap(l, 0) },
		func() { l.Volts(0) },
		func() { l.Volts(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCheckInclusion(t *testing.T) {
	m := NewMap(threeLevels(t), 4)
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}
