package faultmap

import (
	"bytes"
	"testing"
)

// FuzzReadMap feeds arbitrary bytes to the fault-map deserialiser: it
// must never panic or allocate absurdly.
func FuzzReadMap(f *testing.F) {
	m := NewMap(MustLevels(0.5, 0.7, 1.0), 16)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x46, 0x53, 0x43, 0x50, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadMap(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed map must be internally consistent.
		if err := got.CheckInclusion(); err != nil {
			t.Fatalf("parsed map inconsistent: %v", err)
		}
	})
}
