package faultmap_test

import (
	"fmt"

	"repro/internal/faultmap"
)

// Example shows the compressed FM encoding: one small field answers
// "is this block faulty?" for every allowed voltage level.
func Example() {
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	m := faultmap.NewMap(levels, 4)
	m.SetFromVmin(2, 0.65) // block 2 is reliable only at >= 0.65 V
	for k := 1; k <= levels.N(); k++ {
		fmt.Printf("block 2 at %.2f V: faulty=%v\n", levels.Volts(k), m.FaultyAt(2, k))
	}
	fmt.Printf("storage: %d bits per block\n", m.StorageBitsPerBlock())
	// Output:
	// block 2 at 0.54 V: faulty=true
	// block 2 at 0.70 V: faulty=false
	// block 2 at 1.00 V: faulty=false
	// storage: 3 bits per block
}
