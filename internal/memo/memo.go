// Package memo provides a lock-free-on-read memo table for immutable
// derived data, shared across the campaign runner's workers.
//
// The intended use (DESIGN.md §13) is caching deterministic model
// derivations that every campaign cell would otherwise recompute from
// scratch: CACTI model stacks, fault-model instances, voltage-level
// plans, whole analytical figure tables. Keys must completely determine
// the computed value, and values must never be mutated after Get
// returns them — they are shared by reference across goroutines with no
// further synchronisation.
//
// # Concurrency contract
//
// A Table is safe for concurrent use. The first Get for a key runs the
// compute function exactly once (concurrent callers for the same key
// block until it finishes, via a per-entry sync.Once); every later Get
// is a single sync.Map load with no locking. A compute function that
// returns an error is also memoized: the key stays failed. Compute
// functions must not call Get on the same table with the same key
// (self-deadlock), and should not depend on any mutable state.
package memo

import "sync"

// Table memoizes (key → value) computations. The zero value is not
// usable; call NewTable.
type Table struct {
	entries sync.Map // comparable key → *entry
}

// entry is one memoized slot: once guards the single computation, after
// which val/err are immutable.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// NewTable returns an empty memo table.
func NewTable() *Table {
	return &Table{}
}

// Get returns the memoized value for key, computing it with compute on
// first use. The key must be comparable and must fully determine the
// computed value. The returned value is shared: callers must treat it
// (and everything reachable from it) as immutable.
func Get[V any](t *Table, key any, compute func() (V, error)) (V, error) {
	e := t.entry(key)
	e.once.Do(func() {
		v, err := compute()
		e.val, e.err = v, err
	})
	if e.err != nil {
		var zero V
		return zero, e.err
	}
	return e.val.(V), nil
}

// entry returns the slot for key, creating it on first use. The
// fast path is a single lock-free Load.
func (t *Table) entry(key any) *entry {
	if v, ok := t.entries.Load(key); ok {
		return v.(*entry)
	}
	v, _ := t.entries.LoadOrStore(key, &entry{})
	return v.(*entry)
}

// Len returns the number of memoized keys (including failed ones);
// for tests and introspection.
func (t *Table) Len() int {
	n := 0
	t.entries.Range(func(any, any) bool { n++; return true })
	return n
}
