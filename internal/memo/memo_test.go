package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetComputesOnce(t *testing.T) {
	tbl := NewTable()
	var calls int32
	for i := 0; i < 5; i++ {
		v, err := Get(tbl, "k", func() (int, error) {
			atomic.AddInt32(&calls, 1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Get = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestGetMemoizesErrors(t *testing.T) {
	tbl := NewTable()
	boom := errors.New("boom")
	var calls int32
	for i := 0; i < 3; i++ {
		_, err := Get(tbl, 7, func() (string, error) {
			atomic.AddInt32(&calls, 1)
			return "", boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestDistinctKeysDistinctValues(t *testing.T) {
	type key struct{ a, b int }
	tbl := NewTable()
	for i := 0; i < 4; i++ {
		v, err := Get(tbl, key{a: i, b: i * 2}, func() (int, error) { return i * 10, nil })
		if err != nil || v != i*10 {
			t.Fatalf("key %d: Get = %v, %v", i, v, err)
		}
	}
	if tbl.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tbl.Len())
	}
}

// TestTableConcurrentReads drives many goroutines through a mix of
// first-compute and steady-state reads of one shared table; run under
// -race (scripts/check.sh does) it proves the lock-free read path is
// sound, which is what lets campaign workers share one memo table.
func TestTableConcurrentReads(t *testing.T) {
	tbl := NewTable()
	const goroutines = 16
	const keys = 8
	var computes int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				k := (g + iter) % keys
				v, err := Get(tbl, k, func() ([]int, error) {
					atomic.AddInt32(&computes, 1)
					return []int{k, k * k}, nil
				})
				if err != nil {
					t.Errorf("Get(%d): %v", k, err)
					return
				}
				if v[0] != k || v[1] != k*k {
					t.Errorf("Get(%d) = %v, want [%d %d]", k, v, k, k*k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if computes != keys {
		t.Fatalf("computed %d entries, want exactly %d (one per key)", computes, keys)
	}
}

func TestGetTypeSafety(t *testing.T) {
	tbl := NewTable()
	v, err := Get(tbl, "s", func() (fmt.Stringer, error) { return dummy{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "dummy" {
		t.Fatalf("String = %q", v.String())
	}
}

type dummy struct{}

func (dummy) String() string { return "dummy" }
