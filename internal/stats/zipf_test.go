package stats

import (
	"math"
	"testing"
)

// drawRef is the pre-index reference: a plain lower-bound binary search
// over the full CDF. Draw must return exactly this index for the same u.
func drawRef(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TestZipfIndexedDrawMatchesReference runs two identically seeded
// samplers in lock-step: the indexed Draw and the reference full-range
// search over the same CDF and RNG stream must agree draw for draw.
func TestZipfIndexedDrawMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 100, 4096, 5000, 65536} {
		for _, s := range []float64{0, 0.5, 0.99, 1.5} {
			z := NewZipf(NewRNG(uint64(n)*31+uint64(s*100)), n, s)
			ref := NewRNG(uint64(n)*31 + uint64(s*100))
			draws := 5000
			if n < 10 {
				draws = 500
			}
			for i := 0; i < draws; i++ {
				u := ref.Float64()
				want := drawRef(z.cdf, u)
				got := z.Draw()
				if got != want {
					t.Fatalf("n=%d s=%v draw %d (u=%v): indexed %d != reference %d",
						n, s, i, u, got, want)
				}
			}
		}
	}
}

// TestZipfDrawEdgeUniforms drives Draw with adversarial uniforms sitting
// exactly on CDF values and bucket boundaries, where float rounding
// could misplace the radix bucket.
func TestZipfDrawEdgeUniforms(t *testing.T) {
	for _, n := range []int{3, 1000, 4099} {
		z := NewZipf(NewRNG(1), n, 1.0)
		var us []float64
		for _, k := range []int{0, 1, n / 2, n - 2, n - 1} {
			if k < 0 || k >= n {
				continue
			}
			c := z.cdf[k]
			us = append(us, c, math.Nextafter(c, 0), math.Nextafter(c, 2))
		}
		nb := len(z.idx) - 1
		for b := 0; b <= nb; b++ {
			e := float64(b) / float64(nb)
			us = append(us, e, math.Nextafter(e, 0), math.Nextafter(e, 2))
		}
		for _, u := range us {
			if u < 0 || u >= 1 {
				continue
			}
			want := drawRef(z.cdf, u)
			got := z.drawAt(u)
			if got != want {
				t.Fatalf("n=%d u=%v: indexed %d != reference %d", n, u, got, want)
			}
		}
	}
}
