package stats

import (
	"math"
	"sync"
)

// Zipf samples from a Zipf(s) distribution over {0, 1, ..., n-1}:
// P(k) proportional to 1/(k+1)^s. It precomputes the CDF and samples by
// binary search, so construction is O(n) and each draw is O(log n). A
// radix index over the CDF narrows each search to a handful of entries,
// which both shortens the search and keeps its probes cache-local; the
// drawn indices are identical to a plain full-range lower-bound search
// (the differential test in zipf_test.go pins this).
//
// Zipf-distributed block popularity is the standard model for cache
// reference streams with temporal locality; the synthetic SPEC-like
// workload generators use it to shape their working-set reuse.
type Zipf struct {
	cdf []float64
	rng *RNG
	// idx is the radix index: bucket b of nb covers u in
	// [b/nb, (b+1)/nb), and idx[b] is the smallest k with
	// cdf[k] >= b/nb, so the lower-bound search for a u landing in
	// bucket b is confined to [idx[b], idx[b+1]]. Draw re-validates the
	// bracket against u before searching, so float rounding at bucket
	// edges can never change the result, only widen one search.
	idx []int32
	nbf float64
}

// zipfMaxBuckets caps the radix index size; supports smaller than the
// cap get one bucket per element (search range width <= 1).
const zipfMaxBuckets = 4096

// zipfTables memoizes the immutable CDF/radix tables by (n, s): the
// tables are pure math.Pow derivations, every workload generator built
// for the same phase parameters recomputes identical ones, and Draw
// only ever reads them — so samplers across goroutines share one copy.
// The set of (n, s) pairs is the fixed workload catalogue, so the map
// never grows beyond a handful of entries in practice.
var zipfTables sync.Map // zipfKey -> *zipfTable

type zipfKey struct {
	n int
	s float64
}

type zipfTable struct {
	cdf []float64
	idx []int32
	nbf float64
}

// ResetZipfTables drops the memoized Zipf tables, so the next NewZipf
// of each (n, s) recomputes from scratch. Benchmarks use it to measure
// the cold construction path; samplers already built keep their tables.
func ResetZipfTables() {
	zipfTables.Range(func(k, _ any) bool {
		zipfTables.Delete(k)
		return true
	})
}

// NewZipf creates a Zipf sampler over n elements with exponent s >= 0.
// s == 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("stats: NewZipf called with s < 0")
	}
	key := zipfKey{n: n, s: s}
	if t, ok := zipfTables.Load(key); ok {
		tab := t.(*zipfTable)
		return &Zipf{cdf: tab.cdf, rng: rng, idx: tab.idx, nbf: tab.nbf}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	nb := n
	if nb > zipfMaxBuckets {
		nb = zipfMaxBuckets
	}
	idx := make([]int32, nb+1)
	nbf := float64(nb)
	k := 0
	for b := 1; b <= nb; b++ {
		thr := float64(b) / nbf
		for k < n-1 && cdf[k] < thr {
			k++
		}
		idx[b] = int32(k)
	}
	zipfTables.Store(key, &zipfTable{cdf: cdf, idx: idx, nbf: nbf})
	return &Zipf{cdf: cdf, rng: rng, idx: idx, nbf: nbf}
}

// N returns the number of elements in the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next Zipf-distributed index in [0, n): the smallest k
// with cdf[k] >= u for a uniform u — exactly what the pre-index
// full-range binary search returned.
func (z *Zipf) Draw() int {
	return z.drawAt(z.rng.Float64())
}

// drawAt maps a uniform u in [0, 1) to its Zipf index. Factored out of
// Draw so tests can probe adversarial uniforms directly.
func (z *Zipf) drawAt(u float64) int {
	b := int(u * z.nbf)
	if b > len(z.idx)-2 { // u*nbf can round up to nbf when u -> 1
		b = len(z.idx) - 2
	}
	lo, hi := int(z.idx[b]), int(z.idx[b+1])
	// Re-establish the lower-bound bracketing invariants — cdf[hi] >= u
	// and (lo == 0 or cdf[lo-1] < u) — in case u rounded into a
	// neighbouring bucket.
	if z.cdf[hi] < u {
		hi = len(z.cdf) - 1
	}
	if lo > 0 && z.cdf[lo-1] >= u {
		hi = lo - 1
		lo = 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
