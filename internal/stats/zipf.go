package stats

import "math"

// Zipf samples from a Zipf(s) distribution over {0, 1, ..., n-1}:
// P(k) proportional to 1/(k+1)^s. It precomputes the CDF and samples by
// binary search, so construction is O(n) and each draw is O(log n).
//
// Zipf-distributed block popularity is the standard model for cache
// reference streams with temporal locality; the synthetic SPEC-like
// workload generators use it to shape their working-set reuse.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf creates a Zipf sampler over n elements with exponent s >= 0.
// s == 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("stats: NewZipf called with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of elements in the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next Zipf-distributed index in [0, n).
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
