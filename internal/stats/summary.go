package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All elements must be > 0;
// it returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs,
// or 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile requires 0 <= p <= 100")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int // samples below Lo
	Over    int // samples at or above Hi
}

// NewHistogram creates a histogram with n buckets covering [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i == len(h.Buckets) { // rounding guard
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
