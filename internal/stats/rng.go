// Package stats provides deterministic pseudo-random number generation,
// sampling from common distributions, and summary statistics.
//
// Every stochastic component of the simulator (SRAM cell Vmin draws,
// synthetic workload generators, fault placement) draws from an explicitly
// seeded RNG from this package so that experiments are reproducible
// bit-for-bit across runs and platforms.
//
// # Concurrency contract
//
// An RNG carries mutable stream state and is NOT safe for concurrent
// use. The package holds no global RNG and no other shared mutable
// state, so the rule is purely per-instance: construct one RNG per
// goroutine (or per job), either with NewRNG and a distinct seed, with
// Split on a goroutine-local parent, or with Derive to map a campaign
// seed plus a job index onto an independent child seed. Two goroutines
// must never share an *RNG without external locking.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded via SplitMix64. It is not safe for concurrent use;
// give each goroutine its own RNG (see Split).
//
// The four state words are scalar fields rather than an array so that
// Uint64 fits the compiler's inlining budget: the simulator's trace
// generators draw from it a few times per simulated instruction, and the
// call overhead is measurable on the block-simulation hot path.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached spare normal deviate for Box-Muller
	haveSpare bool
	spare     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given 64-bit seed.
// Two RNGs constructed with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets r in place to the state NewRNG(seed) would construct,
// clearing any cached Box-Muller deviate. Arena-style reuse calls it so
// a long-lived RNG value reproduces a freshly constructed generator
// draw for draw without allocating: after r.Reseed(s), r's stream is
// identical to NewRNG(s)'s, and r.Reseed(parent.Uint64()) reproduces
// parent.Split() exactly.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
	r.spare = 0
}

// Uint64 returns the next 64 uniformly distributed bits. It is written
// to stay within the inlining budget (see the RNG type comment).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Split derives a new, statistically independent RNG from r.
// The parent stream advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Derive maps a (seed, stream) pair onto a child seed, so that a fixed
// campaign seed plus a job index yields the same per-job RNG regardless
// of the order or parallelism in which jobs execute. Unlike Split it
// consumes no parent stream state: it is a pure function, safe to call
// concurrently, and any two distinct stream indices give statistically
// independent children.
func Derive(seed, stream uint64) uint64 {
	sm := seed ^ (stream+1)*0x9e3779b97f4a7c15
	splitMix64(&sm)
	return splitMix64(&sm)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's method
// with rejection to remove modulo bias. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top range to remove bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Bool returns true with probability p. The draw-free fast paths for
// p <= 0 and p >= 1 consume no stream state; the single-expression body
// keeps Bool (with Float64 and Uint64 folded in) fully inlinable on the
// trace-generation hot path.
func (r *RNG) Bool(p float64) bool {
	return p > 0 && (p >= 1 || r.Float64() < p)
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, using the Box-Muller transform (polar form).
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.haveSpare {
		r.haveSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.haveSpare = true
	return mean + stddev*u*m
}

// Exponential returns a draw from the exponential distribution with the
// given rate parameter lambda (> 0).
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exponential called with lambda <= 0")
	}
	// 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-r.Float64()) / lambda
}

// Geometric returns a draw from the geometric distribution: the number of
// Bernoulli(p) failures before the first success. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := 1 - r.Float64() // (0,1]
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Binomial returns a draw from Binomial(n, p). For small n it uses direct
// Bernoulli summation; for large n with small p it uses geometric skipping.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("stats: Binomial called with n < 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Geometric skipping: expected work O(n*p).
	count := 0
	i := -1
	for {
		skip := r.Geometric(p)
		i += skip + 1
		if i >= n {
			break
		}
		count++
	}
	return count
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
