package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{3, 3, 3}); !almostEq(got, 3, 1e-12) {
		t.Errorf("GeoMean(3,3,3) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality as a property test.
	r := NewRNG(1)
	if err := quick.Check(func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		_ = r
		n := rr.Intn(20) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64() + 0.01
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2.13808993, 1e-6) {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Errorf("StdDev of one value = %v", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("Summarize(nil) should be zero")
	}
	if s.String() == "" {
		t.Error("Summary.String empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(100)
	for i, b := range h.Buckets {
		if b != 1 {
			t.Errorf("bucket %d = %d, want 1", i, b)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 13 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0) // lowest edge goes in bucket 0
	if h.Buckets[0] != 1 {
		t.Errorf("lower edge not in bucket 0: %+v", h)
	}
	h.Add(0.999999999)
	if h.Buckets[3] != 1 {
		t.Errorf("near-top value not in last bucket: %+v", h)
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(1, 0, 4) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram did not panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfDistribution(t *testing.T) {
	r := NewRNG(20)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must be the most popular; ratio to rank 9 approx 10:1 at s=1.
	if counts[0] <= counts[9] {
		t.Fatalf("zipf head not dominant: c0=%d c9=%d", counts[0], counts[9])
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("zipf c0/c9 ratio %v, want ~10", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(21)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-draws/10) > 0.1*draws/10 {
			t.Errorf("s=0 bucket %d has %d draws", i, c)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	r := NewRNG(22)
	z := NewZipf(r, 7, 1.2)
	if z.N() != 7 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		if v := z.Draw(); v < 0 || v >= 7 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(23)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Zipf did not panic")
				}
			}()
			f()
		}()
	}
}
