package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	c := a.Split()
	// The child stream must not equal the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matches parent %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(6)
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(8)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for k, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Errorf("bucket %d has %d draws, want ~%d", k, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(9)
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) frequency %v", p, got)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		mean += x
		m2 += x * x
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("normal mean %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11)
	const lambda = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(lambda)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("exponential mean %v, want ~%v", mean, 1/lambda)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(12)
	const p = 0.2
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric draw %d", g)
		}
		sum += float64(g)
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(14)
	const n = 100
	const p = 0.3
	const draws = 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		b := r.Binomial(n, p)
		if b < 0 || b > n {
			t.Fatalf("binomial draw %d out of [0,%d]", b, n)
		}
		sum += float64(b)
	}
	mean := sum / draws
	if math.Abs(mean-n*p) > 0.3 {
		t.Errorf("binomial mean %v, want ~%v", mean, n*p)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := NewRNG(15)
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d", got)
	}
}

func TestBinomialHighP(t *testing.T) {
	r := NewRNG(16)
	const draws = 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Binomial(50, 0.9))
	}
	mean := sum / draws
	if math.Abs(mean-45) > 0.2 {
		t.Errorf("Binomial(50,0.9) mean %v, want ~45", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	r := NewRNG(18)
	identity := 0
	for i := 0; i < 100; i++ {
		p := r.Perm(20)
		same := true
		for j, v := range p {
			if v != j {
				same = false
				break
			}
		}
		if same {
			identity++
		}
	}
	if identity > 1 {
		t.Errorf("identity permutation appeared %d/100 times", identity)
	}
}
