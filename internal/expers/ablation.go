package expers

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/report"
	"repro/internal/trace"
)

// AblationRow records one policy variant's outcome on one workload.
type AblationRow struct {
	Variant   string
	Workload  string
	SavingPct float64
	OverhdPct float64
	L2Trans   int
}

// AblationVariants enumerates the DPCS damping refinements of DESIGN.md
// §6 with exactly one disabled at a time, plus the full policy and the
// bare Listing-1 policy with everything off.
func AblationVariants() []struct {
	Name  string
	Flags core.AblationFlags
} {
	return []struct {
		Name  string
		Flags core.AblationFlags
	}{
		{"full policy", core.AblationFlags{}},
		{"-hold latch", core.AblationFlags{NoHoldLatch: true}},
		{"-bad-level memory", core.AblationFlags{NoBadLevelMemory: true}},
		{"-refill classification", core.AblationFlags{NoRefillClassification: true}},
		{"-skip reset", core.AblationFlags{NoSkipReset: true}},
		{"bare Listing 1", core.AblationFlags{
			NoHoldLatch: true, NoBadLevelMemory: true,
			NoRefillClassification: true, NoSkipReset: true,
		}},
	}
}

// Ablation runs each policy variant on the given workloads under Config
// A, reporting the energy saving and execution overhead — the ablation
// study for the design choices DESIGN.md §6 documents.
func Ablation(workloads []string, opts cpusim.RunOptions) ([]AblationRow, *report.Table, error) {
	var rows []AblationRow
	for _, name := range workloads {
		w, ok := trace.ByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("expers: unknown workload %q", name)
		}
		base, err := cpusim.Run(cpusim.ConfigA(), core.Baseline, w, opts)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range AblationVariants() {
			cfg := cpusim.ConfigA()
			cfg.Ablate = v.Flags
			r, err := cpusim.Run(cfg, core.DPCS, w, opts)
			if err != nil {
				return nil, nil, err
			}
			row := AblationRow{
				Variant:   v.Name,
				Workload:  name,
				SavingPct: (1 - r.TotalCacheEnergyJ/base.TotalCacheEnergyJ) * 100,
				OverhdPct: (float64(r.Cycles)/float64(base.Cycles) - 1) * 100,
				L2Trans:   r.L2.Transitions,
			}
			rows = append(rows, row)
		}
	}
	return rows, AblationTable(rows), nil
}

// AblationTable renders the ablation study from its rows.
func AblationTable(rows []AblationRow) *report.Table {
	t := report.NewTable("DPCS policy ablation (Config A)",
		"Variant", "Workload", "Energy saving %", "Exec overhead %", "L2 transitions")
	for _, row := range rows {
		t.AddRow(row.Variant, row.Workload,
			fmt.Sprintf("%.1f", row.SavingPct),
			fmt.Sprintf("%.2f", row.OverhdPct),
			row.L2Trans)
	}
	return t
}
