package expers

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/faultmodel"
	"repro/internal/mechanism"
	"repro/internal/multicore"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
)

// This file defines the standard experiment kinds for the campaign
// runner (internal/runner): each kind wraps one of the repository's
// simulation or analytical entry points behind a JSON parameter
// document, so sweeps and Monte-Carlo campaigns can be expressed as
// data — locally by the cmd harnesses or remotely via pcs-server.
//
// Seeding convention: a params document with Seed == 0 uses the
// runner-derived per-job seed (campaign seed + job index), which is what
// Monte-Carlo campaigns want. A non-zero Seed pins the run — grid sweeps
// pin it so that e.g. baseline/SPCS/DPCS cells of the same grid point
// share fault maps and are directly comparable.

// RegisterCampaignKinds installs the standard kinds on reg:
//
//	cpusim     one single-core simulation (CPUSimParams → CPUSimOutput)
//	multicore  one multi-core simulation (MulticoreParams → MulticoreOutput)
//	minvdd     analytical min-VDD for a cache geometry (MinVDDParams → MinVDDOutput)
//	mechminvdd analytical summary of one registered fault-tolerance
//	           mechanism: min-VDD at a yield target plus the capacity,
//	           static power and area cost there (MechMinVDDParams →
//	           MechMinVDDOutput)
//	vddlevels  fault-map cost and SPCS power vs level count (VDDLevelsParams → VDDLevelsOutput)
//	cells      bit-cell design comparison (CellsParams → []CellRow)
//	leakage    leakage-technique comparison (LeakageParams → []LeakageRow)
//	ablation   DPCS policy ablation study (AblationParams → []AblationRow)
//	fig4-cell  one workload×mode cell of the Fig. 4 grid with its full
//	           SystemConfig embedded (Fig4CellParams → cpusim.Result)
//
// Every kind carries cache metadata (runner.KindInfo): the decoder
// reconstructs the kind's concrete output type from a stored result
// document, so content-addressed cache hits are indistinguishable from
// computed results to downstream type assertions; Seeded marks the
// kinds whose output actually depends on the seed, so the analytical
// kinds share cache entries across campaigns with different master
// seeds.
func RegisterCampaignKinds(reg *runner.Registry) {
	reg.MustRegisterKind("cpusim", runCPUSimJob, kindInfo[CPUSimOutput](true))
	// multicore keeps the L2 host and every core's system live at
	// once, which the arena's build-invalidates-previous contract
	// forbids; it runs arena-less and still gets the memoized statics
	// (see internal/multicore's concurrency contract).
	mcInfo := kindInfo[MulticoreOutput](true)
	mcInfo.NewWorkerState = nil
	reg.MustRegisterKind("multicore", runMulticoreJob, mcInfo)
	reg.MustRegisterKind("minvdd", runMinVDDJob, kindInfo[MinVDDOutput](false))
	reg.MustRegisterKind("mechminvdd", runMechMinVDDJob, kindInfo[MechMinVDDOutput](false))
	reg.MustRegisterKind("vddlevels", runVDDLevelsJob, kindInfo[VDDLevelsOutput](false))
	reg.MustRegisterKind("cells", runCellsJob, kindInfo[[]CellRow](false))
	reg.MustRegisterKind("leakage", runLeakageJob, kindInfo[[]LeakageRow](true))
	reg.MustRegisterKind("ablation", runAblationJob, kindInfo[[]AblationRow](true))
	reg.MustRegisterKind("fig4-cell", runFig4CellJob, kindInfo[cpusim.Result](true))
}

// kindInfo builds the cache metadata for a kind returning T. Every
// kind gets a CellArena worker-state factory; the analytical kinds
// simply never read theirs (their reuse comes from the memo layer).
func kindInfo[T any](seeded bool) runner.KindInfo {
	return runner.KindInfo{
		Seeded:         seeded,
		NewWorkerState: func() any { return NewCellArena() },
		DecodeOutput: func(data []byte) (any, error) {
			var out T
			if err := json.Unmarshal(data, &out); err != nil {
				return nil, fmt.Errorf("expers: decode cached output: %w", err)
			}
			return out, nil
		},
	}
}

// NewCampaignRegistry returns a registry preloaded with the standard
// kinds; pcs-server and the cmd harnesses start from this.
func NewCampaignRegistry() *runner.Registry {
	reg := runner.NewRegistry()
	RegisterCampaignKinds(reg)
	return reg
}

// systemConfigByName resolves "A"/"B" (case-insensitive).
func systemConfigByName(name string) (cpusim.SystemConfig, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "A":
		return cpusim.ConfigA(), nil
	case "B":
		return cpusim.ConfigB(), nil
	default:
		return cpusim.SystemConfig{}, fmt.Errorf("expers: unknown system config %q (want A or B)", name)
	}
}

// modeByName resolves a policy mode name (case-insensitive) through
// the mechanism package's policy registry, keeping mechanism and policy
// selection on one plugin surface.
func modeByName(name string) (core.Mode, error) {
	lookup := name
	if strings.TrimSpace(lookup) == "" {
		lookup = "baseline"
	}
	p, ok := mechanism.PolicyByName(lookup)
	if !ok {
		return 0, fmt.Errorf("expers: unknown mode %q (want baseline, SPCS or DPCS)", name)
	}
	return p.Mode(), nil
}

// CPUSimParams parameterise one "cpusim" job.
type CPUSimParams struct {
	Config      string `json:"config"` // "A" (default) or "B"
	Mode        string `json:"mode"`   // "baseline" (default), "SPCS" or "DPCS"
	Bench       string `json:"bench"`
	WarmupInstr uint64 `json:"warmup_instr"`
	SimInstr    uint64 `json:"sim_instr"`
	// Seed pins the run when non-zero; zero uses the derived job seed.
	Seed uint64 `json:"seed,omitempty"`
	// Optional DPCS policy overrides (zero = keep the config default).
	L2Interval    uint64  `json:"l2_interval,omitempty"`
	HighThreshold float64 `json:"high_threshold,omitempty"`
	LowThreshold  float64 `json:"low_threshold,omitempty"`
}

// ApplyDefaults fills the documented defaults: Config A, baseline mode.
func (p *CPUSimParams) ApplyDefaults() {
	if p.Config == "" {
		p.Config = "A"
	}
	if p.Mode == "" {
		p.Mode = "baseline"
	}
}

// Validate checks the params are runnable (after ApplyDefaults): known
// config, mode and benchmark, and a non-empty measured window.
func (p *CPUSimParams) Validate() error {
	if _, err := systemConfigByName(p.Config); err != nil {
		return err
	}
	if _, err := modeByName(p.Mode); err != nil {
		return err
	}
	if _, ok := trace.ByName(p.Bench); !ok {
		return fmt.Errorf("expers: unknown benchmark %q (known: %v)", p.Bench, trace.Names())
	}
	if p.SimInstr == 0 {
		return fmt.Errorf("expers: cpusim job needs sim_instr > 0")
	}
	return nil
}

// CPUSimOutput is the deterministic record of one "cpusim" job.
type CPUSimOutput struct {
	Workload          string  `json:"workload"`
	Config            string  `json:"config"`
	Mode              string  `json:"mode"`
	Instructions      uint64  `json:"instructions"`
	Cycles            uint64  `json:"cycles"`
	IPC               float64 `json:"ipc"`
	L1IEnergyJ        float64 `json:"l1i_energy_j"`
	L1DEnergyJ        float64 `json:"l1d_energy_j"`
	L2EnergyJ         float64 `json:"l2_energy_j"`
	TotalCacheEnergyJ float64 `json:"total_cache_energy_j"`
	L2Transitions     int     `json:"l2_transitions"`
}

// ResourceCounts implements obs.ResourceCounter. The output document
// records L2 transitions only (its schema predates attribution), so
// writebacks report zero; fig4-cell jobs return cpusim.Result, which
// carries the full counts.
func (o CPUSimOutput) ResourceCounts() (transitions int, writebacks uint64) {
	return o.L2Transitions, 0
}

func runCPUSimJob(ctx context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p CPUSimParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg, _ := systemConfigByName(p.Config)
	mode, _ := modeByName(p.Mode)
	w, _ := trace.ByName(p.Bench)
	if p.L2Interval > 0 {
		cfg.L2.Interval = p.L2Interval
	}
	if p.HighThreshold > 0 {
		cfg.HighThreshold = p.HighThreshold
	}
	if p.LowThreshold > 0 {
		cfg.LowThreshold = p.LowThreshold
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	opts := cpusim.RunOptions{
		WarmupInstr: p.WarmupInstr,
		SimInstr:    p.SimInstr,
		Seed:        seed,
		// Per-job telemetry: the runner (pcs-sweep -timeline) attaches a
		// sink to the job context rather than to the parameter document,
		// which must stay deterministic.
		Sink: obs.PolicySinkFromContext(ctx),
		// Warm path: reuse this worker's simulation arena (nil when cold).
		Arena: arenaFromContext(ctx).simArena(),
	}
	r, err := cpusim.RunContext(ctx, cfg, mode, w, opts)
	if err != nil {
		return nil, err
	}
	return CPUSimOutput{
		Workload:          r.Workload,
		Config:            r.Config,
		Mode:              r.Mode.String(),
		Instructions:      r.Instructions,
		Cycles:            r.Cycles,
		IPC:               r.IPC,
		L1IEnergyJ:        r.L1I.Energy.TotalJ,
		L1DEnergyJ:        r.L1D.Energy.TotalJ,
		L2EnergyJ:         r.L2.Energy.TotalJ,
		TotalCacheEnergyJ: r.TotalCacheEnergyJ,
		L2Transitions:     r.L2.Transitions,
	}, nil
}

// MulticoreParams parameterise one "multicore" job.
type MulticoreParams struct {
	Config       string  `json:"config"`
	Mode         string  `json:"mode"`
	Cores        int     `json:"cores"`
	Bench        string  `json:"bench"`
	WarmupInstr  uint64  `json:"warmup_instr"`
	InstrPerCore uint64  `json:"instr_per_core"`
	SharedBytes  uint64  `json:"shared_bytes"`
	SharedFrac   float64 `json:"shared_frac"`
	// CoherencePenaltyCycles defaults to 20 when zero.
	CoherencePenaltyCycles uint64 `json:"coherence_penalty_cycles,omitempty"`
	// Seed pins the run when non-zero; zero uses the derived job seed.
	Seed uint64 `json:"seed,omitempty"`
}

// ApplyDefaults fills the documented defaults: Config A, baseline mode,
// a 20-cycle coherence penalty. Cores is required, not defaulted.
func (p *MulticoreParams) ApplyDefaults() {
	if p.Config == "" {
		p.Config = "A"
	}
	if p.Mode == "" {
		p.Mode = "baseline"
	}
	if p.CoherencePenaltyCycles == 0 {
		p.CoherencePenaltyCycles = 20
	}
}

// Validate checks the params are runnable (after ApplyDefaults).
func (p *MulticoreParams) Validate() error {
	if _, err := systemConfigByName(p.Config); err != nil {
		return err
	}
	if _, err := modeByName(p.Mode); err != nil {
		return err
	}
	if _, ok := trace.ByName(p.Bench); !ok {
		return fmt.Errorf("expers: unknown benchmark %q (known: %v)", p.Bench, trace.Names())
	}
	if p.Cores < 1 {
		return fmt.Errorf("expers: multicore job needs cores >= 1")
	}
	if p.InstrPerCore == 0 {
		return fmt.Errorf("expers: multicore job needs instr_per_core > 0")
	}
	if p.SharedFrac < 0 || p.SharedFrac > 1 {
		return fmt.Errorf("expers: shared_frac %v outside [0, 1]", p.SharedFrac)
	}
	return nil
}

// MulticoreOutput is the deterministic record of one "multicore" job.
type MulticoreOutput struct {
	Config                 string  `json:"config"`
	Mode                   string  `json:"mode"`
	Cores                  int     `json:"cores"`
	GlobalCycles           uint64  `json:"global_cycles"`
	L2Accesses             uint64  `json:"l2_accesses"`
	L2Misses               uint64  `json:"l2_misses"`
	CoherenceInvalidations uint64  `json:"coherence_invalidations"`
	L2Transitions          int     `json:"l2_transitions"`
	L2EnergyJ              float64 `json:"l2_energy_j"`
	TotalCacheEnergyJ      float64 `json:"total_cache_energy_j"`
}

// ResourceCounts implements obs.ResourceCounter (writebacks are not in
// this output schema; see CPUSimOutput.ResourceCounts).
func (o MulticoreOutput) ResourceCounts() (transitions int, writebacks uint64) {
	return o.L2Transitions, 0
}

func runMulticoreJob(ctx context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p MulticoreParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sysCfg, _ := systemConfigByName(p.Config)
	mode, _ := modeByName(p.Mode)
	w, _ := trace.ByName(p.Bench)
	cfg := multicore.Config{
		System:                 sysCfg,
		Cores:                  p.Cores,
		SharedBytes:            p.SharedBytes,
		SharedFrac:             p.SharedFrac,
		CoherencePenaltyCycles: p.CoherencePenaltyCycles,
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	r, err := multicore.RunContext(ctx, cfg, mode, w, p.WarmupInstr, p.InstrPerCore, seed)
	if err != nil {
		return nil, err
	}
	return MulticoreOutput{
		Config:                 sysCfg.Name,
		Mode:                   r.Mode.String(),
		Cores:                  p.Cores,
		GlobalCycles:           r.GlobalCycles,
		L2Accesses:             r.L2.Accesses,
		L2Misses:               r.L2.Misses,
		CoherenceInvalidations: r.CoherenceInvalidations,
		L2Transitions:          r.L2Transitions,
		L2EnergyJ:              r.L2EnergyJ,
		TotalCacheEnergyJ:      r.TotalCacheEnergyJ,
	}, nil
}

// MinVDDParams parameterise one "minvdd" job: the analytical minimum
// operating voltage of a cache geometry at a yield target.
type MinVDDParams struct {
	SizeBytes  int     `json:"size_bytes"`
	Ways       int     `json:"ways"`
	BlockBytes int     `json:"block_bytes"`
	Yield      float64 `json:"yield"` // default 0.99
	VMin       float64 `json:"v_min"` // default 0.30
	VMax       float64 `json:"v_max"` // default 1.00
}

// ApplyDefaults fills the documented defaults: 99% yield over the
// [0.30 V, 1.00 V] search window.
func (p *MinVDDParams) ApplyDefaults() {
	if p.Yield == 0 {
		p.Yield = 0.99
	}
	if p.VMin == 0 {
		p.VMin = 0.30
	}
	if p.VMax == 0 {
		p.VMax = 1.00
	}
}

// Validate checks the geometry is well-formed (after ApplyDefaults).
func (p *MinVDDParams) Validate() error {
	if p.Ways <= 0 || p.BlockBytes <= 0 || p.SizeBytes <= 0 {
		return fmt.Errorf("expers: minvdd job needs positive size_bytes, ways, block_bytes")
	}
	if sets := p.SizeBytes / (p.BlockBytes * p.Ways); sets <= 0 {
		return fmt.Errorf("expers: minvdd geometry %d B / (%d B × %d ways) has no sets", p.SizeBytes, p.BlockBytes, p.Ways)
	}
	return nil
}

// MinVDDOutput is the deterministic record of one "minvdd" job.
type MinVDDOutput struct {
	SizeBytes  int     `json:"size_bytes"`
	Ways       int     `json:"ways"`
	BlockBytes int     `json:"block_bytes"`
	Yield      float64 `json:"yield"`
	// OK is false when no voltage in [v_min, v_max] meets the yield.
	OK     bool    `json:"ok"`
	MinVDD float64 `json:"min_vdd,omitempty"`
}

func runMinVDDJob(ctx context.Context, _ uint64, params json.RawMessage) (any, error) {
	var p MinVDDParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := faultModelFor(faultmodel.Geometry{
		Sets: p.SizeBytes / (p.BlockBytes * p.Ways), Ways: p.Ways, BlockBits: p.BlockBytes * 8,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := MinVDDOutput{
		SizeBytes: p.SizeBytes, Ways: p.Ways, BlockBytes: p.BlockBytes, Yield: p.Yield,
	}
	out.MinVDD, out.OK = m.MinVDDForYield(p.Yield, p.VMin, p.VMax)
	if !out.OK {
		out.MinVDD = 0
	}
	return out, nil
}

// MechMinVDDParams parameterise one "mechminvdd" job: the analytical
// summary of one registered fault-tolerance mechanism on a Table-2
// cache organisation.
type MechMinVDDParams struct {
	// Org selects the cache organisation: "l1a" (default), "l2a",
	// "l1b" or "l2b".
	Org string `json:"org,omitempty"`
	// Mechanism names a registry entry (internal/mechanism).
	Mechanism string `json:"mechanism"`
	// MechVersion pins the mechanism model version the result was
	// computed under. It is filled from the registry by ApplyDefaults
	// and participates in the content-addressed cache key, so bumping a
	// registered Version invalidates every stored cell of that
	// mechanism instead of silently serving stale numbers.
	MechVersion string `json:"mech_version,omitempty"`
	// NLowVDDs is the number of low-voltage levels fault-map-carrying
	// mechanisms pay for (default 2: the paper's three-level ladder).
	NLowVDDs int     `json:"n_low_vdds,omitempty"`
	Yield    float64 `json:"yield,omitempty"` // default 0.99
	VMin     float64 `json:"v_min,omitempty"` // default 0.30
	VMax     float64 `json:"v_max,omitempty"` // default 1.00
}

// ApplyDefaults fills the documented defaults and pins MechVersion to
// the registered version when the spec left it open.
func (p *MechMinVDDParams) ApplyDefaults() {
	if p.Org == "" {
		p.Org = "l1a"
	}
	if p.Mechanism == "" {
		p.Mechanism = "proposed"
	}
	if p.NLowVDDs == 0 {
		p.NLowVDDs = 2
	}
	if p.Yield == 0 {
		p.Yield = 0.99
	}
	if p.VMin == 0 {
		p.VMin = VLo
	}
	if p.VMax == 0 {
		p.VMax = VHi
	}
	if p.MechVersion == "" {
		if d, ok := mechanism.ByName(p.Mechanism); ok {
			p.MechVersion = d.Version
		}
	}
}

// Validate checks the params name a known organisation and mechanism
// and pin the mechanism version currently registered (after
// ApplyDefaults).
func (p *MechMinVDDParams) Validate() error {
	if _, err := OrgByName(p.Org); err != nil {
		return err
	}
	d, ok := mechanism.ByName(p.Mechanism)
	if !ok {
		return fmt.Errorf("expers: unknown mechanism %q (known: %v)", p.Mechanism, mechanism.Names())
	}
	if p.MechVersion != d.Version {
		return fmt.Errorf("expers: mechanism %q is version %s, params pin %s", p.Mechanism, d.Version, p.MechVersion)
	}
	if p.NLowVDDs < 1 {
		return fmt.Errorf("expers: mechminvdd job needs n_low_vdds >= 1")
	}
	if p.Yield <= 0 || p.Yield > 1 {
		return fmt.Errorf("expers: mechminvdd yield %v outside (0, 1]", p.Yield)
	}
	return nil
}

// MechMinVDDOutput is the deterministic record of one "mechminvdd" job.
type MechMinVDDOutput struct {
	Mechanism   string  `json:"mechanism"`
	Label       string  `json:"label"`
	MechVersion string  `json:"mech_version"`
	Org         string  `json:"org"`
	Yield       float64 `json:"yield"`
	// OK is false when no voltage in [v_min, v_max] meets the yield.
	OK     bool    `json:"ok"`
	MinVDD float64 `json:"min_vdd,omitempty"`
	// CapacityAtMin / StaticPowerAtMinW describe the operating point at
	// MinVDD (static power on the org's shared baseline model).
	CapacityAtMin     float64 `json:"capacity_at_min,omitempty"`
	StaticPowerAtMinW float64 `json:"static_power_at_min_w,omitempty"`
	AreaOverheadFrac  float64 `json:"area_overhead_frac"`
}

func runMechMinVDDJob(ctx context.Context, _ uint64, params json.RawMessage) (any, error) {
	var p MechMinVDDParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	org, _ := OrgByName(p.Org)
	d, _ := mechanism.ByName(p.Mechanism)
	cs, err := NewCacheSetup(org, p.NLowVDDs+1)
	if err != nil {
		return nil, err
	}
	m, err := mechanismFor(org, p.NLowVDDs, d)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := MechMinVDDOutput{
		Mechanism: d.Name, Label: d.Label, MechVersion: d.Version,
		Org: org.Name, Yield: p.Yield,
		AreaOverheadFrac: m.AreaOverhead().Fraction,
	}
	out.MinVDD, out.OK = m.MinVDDForYield(p.Yield, p.VMin, p.VMax)
	if out.OK {
		out.CapacityAtMin = m.EffectiveCapacity(out.MinVDD)
		out.StaticPowerAtMinW = m.StaticPower(cs.CM, out.MinVDD)
	} else {
		out.MinVDD = 0
	}
	return out, nil
}

// VDDLevelsParams parameterise one "vddlevels" job: fault-map cost and
// SPCS-point static power for an N-level voltage ladder on the Config A
// L1 organisation.
type VDDLevelsParams struct {
	Levels int `json:"levels"`
}

// VDDLevelsOutput is the deterministic record of one "vddlevels" job.
type VDDLevelsOutput struct {
	Levels         int     `json:"levels"`
	FMBitsPerBlock int     `json:"fm_bits_per_block"`
	StaticPowerW   float64 `json:"static_power_w"`
}

func runVDDLevelsJob(ctx context.Context, _ uint64, params json.RawMessage) (any, error) {
	var p VDDLevelsParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cs, err := NewCacheSetup(L1ConfigA(), p.Levels)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v2, ok := cs.FM.MinVDDForCapacity(0.99, 0.99, 0.30, 1.00)
	if !ok {
		return nil, fmt.Errorf("expers: no SPCS point for %d levels", p.Levels)
	}
	pw := cs.CMPCS.StaticPower(v2, cs.FM.ExpectedCapacity(v2))
	return VDDLevelsOutput{
		Levels:         p.Levels,
		FMBitsPerBlock: cs.CMPCS.FMBitsPerBlock,
		StaticPowerW:   pw.TotalW,
	}, nil
}

// VDDLevelsParams has no optional fields; ApplyDefaults exists so every
// campaign kind's parameter type satisfies the same defaulting shape.
func (p *VDDLevelsParams) ApplyDefaults() {}

// Validate checks the level count is usable.
func (p *VDDLevelsParams) Validate() error {
	if p.Levels < 1 {
		return fmt.Errorf("expers: vddlevels job needs levels >= 1")
	}
	return nil
}

// CellsParams parameterise one "cells" job: the bit-cell design
// comparison (Sec. 2). The study is fully determined by the analytical
// models, so there are no knobs yet; the empty document is valid.
type CellsParams struct{}

// ApplyDefaults fills the documented defaults (none yet).
func (p *CellsParams) ApplyDefaults() {}

// Validate accepts the (knobless) document.
func (p *CellsParams) Validate() error { return nil }

func runCellsJob(ctx context.Context, _ uint64, params json.RawMessage) (any, error) {
	var p CellsParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, _, err := CellComparison()
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// LeakageParams parameterise one "leakage" job: the drowsy/decay/SPCS
// leakage-technique comparison on a short simulation window.
type LeakageParams struct {
	// SimInstr defaults to 4,000,000 (the historic pcs-sweep default).
	SimInstr uint64 `json:"sim_instr,omitempty"`
	// Seed pins the run when non-zero; zero uses the derived job seed.
	Seed uint64 `json:"seed,omitempty"`
}

// ApplyDefaults fills the documented defaults.
func (p *LeakageParams) ApplyDefaults() {
	if p.SimInstr == 0 {
		p.SimInstr = 4_000_000
	}
}

// Validate checks the window is non-empty (after ApplyDefaults).
func (p *LeakageParams) Validate() error {
	if p.SimInstr == 0 {
		return fmt.Errorf("expers: leakage job needs sim_instr > 0")
	}
	return nil
}

func runLeakageJob(ctx context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p LeakageParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, _, err := leakageComparison(arenaFromContext(ctx), p.SimInstr, seed)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationParams parameterise one "ablation" job: the DPCS damping
// refinements disabled one at a time (DESIGN.md §6).
type AblationParams struct {
	// Benches defaults to the cache-friendly/capacity-cliff pair the
	// paper-style study uses.
	Benches []string `json:"benches,omitempty"`
	// WarmupInstr defaults to SimInstr/4.
	WarmupInstr uint64 `json:"warmup_instr,omitempty"`
	// SimInstr defaults to 4,000,000.
	SimInstr uint64 `json:"sim_instr,omitempty"`
	// Seed pins the run when non-zero; zero uses the derived job seed.
	Seed uint64 `json:"seed,omitempty"`
}

// ApplyDefaults fills the documented defaults.
func (p *AblationParams) ApplyDefaults() {
	if len(p.Benches) == 0 {
		p.Benches = []string{"hmmer.s", "sjeng.s"}
	}
	if p.SimInstr == 0 {
		p.SimInstr = 4_000_000
	}
	if p.WarmupInstr == 0 {
		p.WarmupInstr = p.SimInstr / 4
	}
}

// Validate checks every benchmark is known and the window non-empty
// (after ApplyDefaults).
func (p *AblationParams) Validate() error {
	for _, b := range p.Benches {
		if _, ok := trace.ByName(b); !ok {
			return fmt.Errorf("expers: unknown benchmark %q (known: %v)", b, trace.Names())
		}
	}
	if p.SimInstr == 0 {
		return fmt.Errorf("expers: ablation job needs sim_instr > 0")
	}
	return nil
}

func runAblationJob(ctx context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p AblationParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts := cpusim.RunOptions{
		WarmupInstr: p.WarmupInstr,
		SimInstr:    p.SimInstr,
		Seed:        seed,
		// The ablation variants run strictly one at a time, so one
		// worker arena serves the whole study.
		Arena: arenaFromContext(ctx).simArena(),
	}
	rows, _, err := Ablation(p.Benches, opts)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// decodeParams strictly decodes a kind's parameter document, rejecting
// unknown fields so spec typos fail instead of silently running the
// default experiment.
func decodeParams(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("expers: bad params: %w", err)
	}
	return nil
}
