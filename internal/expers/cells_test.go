package expers

import (
	"testing"

	"repro/internal/sram"
)

func TestCellComparison(t *testing.T) {
	rows, tbl, err := CellComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || tbl == nil {
		t.Fatalf("%d rows", len(rows))
	}
	byCell := map[sram.CellType]CellRow{}
	for _, r := range rows {
		byCell[r.Cell] = r
	}
	r6, r8, r10 := byCell[sram.Cell6T], byCell[sram.Cell8T], byCell[sram.Cell10T]

	// Hardened cells reach lower voltages without fault tolerance.
	if !(r10.MinVDDNoFT <= r8.MinVDDNoFT && r8.MinVDDNoFT <= r6.MinVDDNoFT) {
		t.Errorf("no-FT min VDD ordering: %v %v %v",
			r6.MinVDDNoFT, r8.MinVDDNoFT, r10.MinVDDNoFT)
	}
	// The PCS mechanism helps every cell type.
	for _, r := range rows {
		if r.MinVDDWithPCS >= r.MinVDDNoFT {
			t.Errorf("%s: PCS min VDD %v not below no-FT %v",
				r.Cell, r.MinVDDWithPCS, r.MinVDDNoFT)
		}
	}
	// The paper's Sec. 2 argument: 6T + PCS reaches a voltage comparable
	// to (within ~100 mV of) a hardened cell without FT, at a fraction of
	// the area.
	if r6.MinVDDWithPCS > r10.MinVDDNoFT+0.12 {
		t.Errorf("6T+PCS %v far above bare 10T %v", r6.MinVDDWithPCS, r10.MinVDDNoFT)
	}
	if r6.AreaFactor >= r10.AreaFactor {
		t.Error("6T not cheaper than 10T")
	}
	// Leakage at the SPCS point: the 10T cell's extra transistors cost it.
	if r10.StaticPowerAtSPCS <= r6.StaticPowerAtSPCS*0.8 {
		// 10T reaches a lower SPCS voltage but pays 1.6x leakage; it
		// should not dramatically beat 6T.
		t.Logf("10T SPCS leak %v vs 6T %v (informational)",
			r10.StaticPowerAtSPCS, r6.StaticPowerAtSPCS)
	}
}
