package expers

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultmodel"
	"repro/internal/runner"
	"repro/internal/sram"
)

func TestCampaignRegistryKinds(t *testing.T) {
	reg := NewCampaignRegistry()
	want := []string{"ablation", "cells", "cpusim", "fig4-cell", "leakage", "mechminvdd", "minvdd", "multicore", "vddlevels"}
	got := reg.Kinds()
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func mustSpec(t *testing.T, kind, name string, params any) runner.Spec {
	t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	return runner.Spec{Kind: kind, Name: name, Params: raw}
}

// TestMinVDDKindMatchesDirect checks the campaign kind agrees with a
// direct analytical evaluation.
func TestMinVDDKindMatchesDirect(t *testing.T) {
	reg := NewCampaignRegistry()
	fn, _ := reg.Lookup("minvdd")
	raw, _ := json.Marshal(MinVDDParams{SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64})
	out, err := fn(context.Background(), 1, raw)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(MinVDDOutput)

	m, err := faultmodel.New(faultmodel.Geometry{
		Sets: (64 << 10) / (64 * 4), Ways: 4, BlockBits: 64 * 8,
	}, sram.NewWangCalhounBER())
	if err != nil {
		t.Fatal(err)
	}
	want, ok := m.MinVDDForYield(0.99, 0.30, 1.00)
	if !ok || !got.OK {
		t.Fatalf("ok: kind=%v direct=%v", got.OK, ok)
	}
	if got.MinVDD != want {
		t.Fatalf("kind min-VDD %v != direct %v", got.MinVDD, want)
	}
}

// TestParamValidation checks unknown fields and missing requirements are
// rejected rather than silently defaulted.
func TestParamValidation(t *testing.T) {
	reg := NewCampaignRegistry()
	cases := []struct {
		kind   string
		params string
	}{
		{"cpusim", `{"bench":"bzip2.s","sim_instr":1000,"typo_field":1}`},
		{"cpusim", `{"bench":"no-such-bench","sim_instr":1000}`},
		{"cpusim", `{"bench":"bzip2.s"}`}, // sim_instr missing
		{"cpusim", `{"bench":"bzip2.s","sim_instr":1,"config":"Z"}`},
		{"cpusim", `{"bench":"bzip2.s","sim_instr":1,"mode":"turbo"}`},
		{"multicore", `{"bench":"gobmk.s","cores":0,"instr_per_core":100}`},
		{"minvdd", `{"size_bytes":0,"ways":4,"block_bytes":64}`},
		{"vddlevels", `{"levels":0}`},
	}
	for _, c := range cases {
		fn, ok := reg.Lookup(c.kind)
		if !ok {
			t.Fatalf("kind %q missing", c.kind)
		}
		if _, err := fn(context.Background(), 1, json.RawMessage(c.params)); err == nil {
			t.Errorf("%s params %s: no error", c.kind, c.params)
		}
	}
}

// smallSimParams is a fast cpusim job for pool tests.
func smallSimParams(mode string, seed uint64) CPUSimParams {
	return CPUSimParams{
		Config: "A", Mode: mode, Bench: "bzip2.s",
		WarmupInstr: 10_000, SimInstr: 30_000, Seed: seed,
	}
}

// TestSimCampaignParallelMatchesSerial runs a real simulation sweep
// through the pool at 1 and 8 workers and requires byte-identical
// artifact records — the subsystem's core determinism guarantee on the
// actual simulator, not a toy kind.
func TestSimCampaignParallelMatchesSerial(t *testing.T) {
	reg := NewCampaignRegistry()
	camp := runner.Campaign{Name: "sim-det", Seed: 99}
	for i, mode := range []string{"baseline", "SPCS", "DPCS"} {
		// Seed 0: each job uses its runner-derived seed.
		p := smallSimParams(mode, 0)
		camp.Jobs = append(camp.Jobs, mustSpec(t, "cpusim", fmt.Sprintf("j%d", i), p))
	}
	for _, w := range []int{1, 2, 4, 8} {
		camp.Jobs = append(camp.Jobs, mustSpec(t, "minvdd", fmt.Sprintf("w%d", w), MinVDDParams{
			SizeBytes: 32 << 10, Ways: w, BlockBytes: 64,
		}))
	}
	run := func(workers int) []byte {
		dir := filepath.Join(t.TempDir(), "run")
		res, err := runner.Run(context.Background(), reg, camp, runner.Options{
			Workers: workers, ArtifactDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed > 0 {
			t.Fatalf("workers=%d: %d jobs failed: %+v", workers, res.Failed, res.Results)
		}
		b, err := os.ReadFile(filepath.Join(dir, "results.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if string(serial) != string(parallel) {
		t.Fatalf("parallel simulation records differ from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// TestSimCampaignUnderRace is the short-mode campaign that puts the
// worker pool plus real simulator construction under the race detector
// in tier-1 (go test -race ./...).
func TestSimCampaignUnderRace(t *testing.T) {
	reg := NewCampaignRegistry()
	camp := runner.Campaign{Name: "race", Seed: 5}
	for i := 0; i < 6; i++ {
		mode := []string{"baseline", "SPCS", "DPCS"}[i%3]
		camp.Jobs = append(camp.Jobs, mustSpec(t, "cpusim", fmt.Sprintf("r%d", i), smallSimParams(mode, 0)))
	}
	res, err := runner.Run(context.Background(), reg, camp, runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 6 {
		t.Fatalf("done=%d failed=%d cancelled=%d", res.Done, res.Failed, res.Cancelled)
	}
	for _, r := range res.Results {
		out := r.Output.(CPUSimOutput)
		if out.Cycles == 0 || out.TotalCacheEnergyJ <= 0 {
			t.Fatalf("job %d implausible output %+v", r.Index, out)
		}
	}
}

// TestMulticoreKind runs one small multicore job through its kind.
func TestMulticoreKind(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore kind is covered by tier-1 full mode")
	}
	reg := NewCampaignRegistry()
	fn, _ := reg.Lookup("multicore")
	raw, _ := json.Marshal(MulticoreParams{
		Config: "A", Mode: "SPCS", Cores: 2, Bench: "gobmk.s",
		WarmupInstr: 5_000, InstrPerCore: 20_000,
		SharedBytes: 1 << 20, SharedFrac: 0.1,
	})
	out, err := fn(context.Background(), 3, raw)
	if err != nil {
		t.Fatal(err)
	}
	mo := out.(MulticoreOutput)
	if mo.Cores != 2 || mo.GlobalCycles == 0 || mo.TotalCacheEnergyJ <= 0 {
		t.Fatalf("output %+v", mo)
	}
}
