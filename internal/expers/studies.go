package expers

import (
	"encoding/json"
	"fmt"

	"repro/internal/mechanism"
	"repro/internal/report"
	"repro/internal/runner"
)

// This file defines the design-space studies around the paper's
// mechanism (Sec. 3.1 and Sec. 5 future work) as reusable Study values:
// a campaign job list plus a renderer from the job results back to the
// study's table. The pcs CLI runs them locally through internal/runner;
// internal/config expands the same job lists for remote submission, so a
// sweep spec runs identically on a pcs-server.
//
// The grids, job names and table formats are stable: sweep_output.txt is
// the committed golden rendering (fixed seeds, fixed grids).

// Study is one named design-space study: the jobs that compute it and
// the table that presents it.
type Study struct {
	// Name labels the study's campaign (and its runs/<name>/ artifacts).
	Name string
	// Jobs is the campaign job list, in grid order.
	Jobs []runner.Spec
	// Table renders the study from its per-job results, which must be in
	// job order with every job done.
	Table func(results []runner.JobResult) (*report.Table, error)
}

// newSpec builds a runner.Spec, marshalling the kind's parameter
// struct. Marshalling a parameter struct cannot fail.
func newSpec(kind, name string, params any) runner.Spec {
	raw, err := json.Marshal(params)
	if err != nil {
		panic(fmt.Sprintf("expers: marshal %s params: %v", kind, err))
	}
	return runner.Spec{Kind: kind, Name: name, Params: raw}
}

// jobOutput asserts job i of results completed and returns its output.
func jobOutput[T any](results []runner.JobResult, i int) (T, error) {
	var zero T
	if i >= len(results) {
		return zero, fmt.Errorf("expers: study needs %d results, got %d", i+1, len(results))
	}
	r := results[i]
	if r.Status != runner.StatusDone {
		return zero, fmt.Errorf("expers: job %d (%s) %s: %s", r.Index, r.Name, r.Status, r.Error)
	}
	out, ok := r.Output.(T)
	if !ok {
		return zero, fmt.Errorf("expers: job %d (%s) output is %T, want %T", r.Index, r.Name, r.Output, zero)
	}
	return out, nil
}

// AssocStudy reproduces the Sec. 3.1 claim: "Higher associativity and/or
// smaller block sizes naturally result in lower min-VDD". The 20-point
// geometry grid runs as one campaign of analytical "minvdd" jobs.
func AssocStudy() Study {
	blocks := []int{16, 32, 64, 128}
	ways := []int{1, 2, 4, 8, 16}
	var jobs []runner.Spec
	for _, blockB := range blocks {
		for _, w := range ways {
			jobs = append(jobs, newSpec("minvdd", fmt.Sprintf("%dB/%dway", blockB, w), MinVDDParams{
				SizeBytes: 64 << 10, Ways: w, BlockBytes: blockB,
				Yield: 0.99, VMin: 0.30, VMax: 1.00,
			}))
		}
	}
	return Study{
		Name: "assoc",
		Jobs: jobs,
		Table: func(results []runner.JobResult) (*report.Table, error) {
			t := report.NewTable("Min-VDD (99% yield) vs associativity and block size, 64 KB cache",
				"Block (B)", "1-way", "2-way", "4-way", "8-way", "16-way")
			i := 0
			for _, blockB := range blocks {
				row := []any{blockB}
				for range ways {
					out, err := jobOutput[MinVDDOutput](results, i)
					if err != nil {
						return nil, err
					}
					i++
					if !out.OK {
						row = append(row, "n/a")
						continue
					}
					row = append(row, fmt.Sprintf("%.2f", out.MinVDD))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// LevelsStudy shows the fault-map cost and SPCS-point power as the
// number of allowed VDD levels grows ("our fault map approach should
// scale well for more voltage levels"), one "vddlevels" job per count.
func LevelsStudy() Study {
	counts := []int{1, 2, 3, 7, 15}
	var jobs []runner.Spec
	for _, n := range counts {
		jobs = append(jobs, newSpec("vddlevels", fmt.Sprintf("levels=%d", n), VDDLevelsParams{Levels: n}))
	}
	return Study{
		Name: "levels",
		Jobs: jobs,
		Table: func(results []runner.JobResult) (*report.Table, error) {
			t := report.NewTable("VDD level count vs fault-map size and SPCS static power (L1-A)",
				"Levels N", "FM bits/block", "Static power @ SPCS point (mW)")
			for i := range counts {
				out, err := jobOutput[VDDLevelsOutput](results, i)
				if err != nil {
					return nil, err
				}
				t.AddRow(out.Levels, out.FMBitsPerBlock, fmt.Sprintf("%.3f", out.StaticPowerW*1e3))
			}
			return t, nil
		},
	}
}

// CellsStudy compares bit-cell designs (paper Sec. 2: hardened 8T/10T
// cells vs 6T + the proposed mechanism) as one "cells" job.
func CellsStudy() Study {
	return Study{
		Name: "cells",
		Jobs: []runner.Spec{newSpec("cells", "cells", CellsParams{})},
		Table: func(results []runner.JobResult) (*report.Table, error) {
			rows, err := jobOutput[[]CellRow](results, 0)
			if err != nil {
				return nil, err
			}
			return CellTable(rows), nil
		},
	}
}

// LeakageStudy compares the Sec.-2 leakage-reduction baselines with SPCS
// as one "leakage" job pinned to the given seed.
func LeakageStudy(instr, seed uint64) Study {
	return Study{
		Name: "leakage",
		Jobs: []runner.Spec{newSpec("leakage", "leakage", LeakageParams{SimInstr: instr, Seed: seed})},
		Table: func(results []runner.JobResult) (*report.Table, error) {
			rows, err := jobOutput[[]LeakageRow](results, 0)
			if err != nil {
				return nil, err
			}
			return LeakageTable(rows), nil
		},
	}
}

// AblationStudy disables the DPCS damping refinements one at a time
// (DESIGN.md §6) on a cache-friendly and a capacity-cliff workload, as
// one "ablation" job pinned to the given seed.
func AblationStudy(instr, seed uint64) Study {
	benches := []string{"hmmer.s", "sjeng.s"}
	return Study{
		Name: "ablate",
		Jobs: []runner.Spec{newSpec("ablation", "ablation", AblationParams{
			Benches: benches, WarmupInstr: instr / 4, SimInstr: instr, Seed: seed,
		})},
		Table: func(results []runner.JobResult) (*report.Table, error) {
			rows, err := jobOutput[[]AblationRow](results, 0)
			if err != nil {
				return nil, err
			}
			return AblationTable(rows), nil
		},
	}
}

// DPCSStudy measures policy sensitivity: energy saving and overhead as
// the sampling interval and escape budget vary. The baseline run and the
// 9-cell parameter grid form one campaign; every cell pins seed so all
// runs share fault maps and stay directly comparable.
func DPCSStudy(bench string, instr uint64, seed uint64) Study {
	intervals := []uint64{2_000, 10_000, 50_000}
	threshes := []float64{0.01, 0.03, 0.10}
	base := CPUSimParams{
		Config: "A", Mode: "baseline", Bench: bench,
		WarmupInstr: instr / 4, SimInstr: instr, Seed: seed,
	}
	jobs := []runner.Spec{newSpec("cpusim", "baseline", base)}
	for _, interval := range intervals {
		for _, ht := range threshes {
			p := base
			p.Mode = "DPCS"
			p.L2Interval = interval
			p.HighThreshold = ht
			p.LowThreshold = ht / 2
			jobs = append(jobs, newSpec("cpusim", fmt.Sprintf("int=%d ht=%.2f", interval, ht), p))
		}
	}
	return Study{
		Name: "dpcs",
		Jobs: jobs,
		Table: func(results []runner.JobResult) (*report.Table, error) {
			baseOut, err := jobOutput[CPUSimOutput](results, 0)
			if err != nil {
				return nil, err
			}
			t := report.NewTable(
				fmt.Sprintf("DPCS parameter sensitivity on %s (Config A, %d instr)", bench, instr),
				"L2 interval", "High thresh", "Energy saving %", "Exec overhead %", "L2 transitions")
			i := 1
			for _, interval := range intervals {
				for _, ht := range threshes {
					out, err := jobOutput[CPUSimOutput](results, i)
					if err != nil {
						return nil, err
					}
					i++
					t.AddRow(interval, ht,
						fmt.Sprintf("%.1f", (1-out.TotalCacheEnergyJ/baseOut.TotalCacheEnergyJ)*100),
						fmt.Sprintf("%.2f", (float64(out.Cycles)/float64(baseOut.Cycles)-1)*100),
						out.L2Transitions)
				}
			}
			return t, nil
		},
	}
}

// MechStudy compares registered fault-tolerance mechanisms on the
// Config-A L1 cache: one "mechminvdd" job per mechanism, in registry
// rank order. names selects mechanisms as in `pcs analytical
// -mechanisms`; nil compares every registered mechanism (not just the
// paper's default set — the study is the registry's summary view).
func MechStudy(names []string) (Study, error) {
	sel := names
	if len(sel) == 0 {
		sel = mechanism.Names()
	}
	ds, err := mechanism.Resolve(sel)
	if err != nil {
		return Study{}, err
	}
	var jobs []runner.Spec
	for _, d := range ds {
		jobs = append(jobs, newSpec("mechminvdd", d.Name, MechMinVDDParams{
			Org: "l1a", Mechanism: d.Name, MechVersion: d.Version,
			NLowVDDs: 2, Yield: 0.99, VMin: VLo, VMax: VHi,
		}))
	}
	return Study{
		Name: "mechs",
		Jobs: jobs,
		Table: func(results []runner.JobResult) (*report.Table, error) {
			t := report.NewTable("Fault-tolerance mechanisms at 99% yield (L1-A)",
				"Mechanism", "Version", "Min VDD (V)", "Capacity", "Static mW", "Area +%")
			for i := range ds {
				out, err := jobOutput[MechMinVDDOutput](results, i)
				if err != nil {
					return nil, err
				}
				minV, capacity, power := "n/a", "n/a", "n/a"
				if out.OK {
					minV = fmt.Sprintf("%.2f", out.MinVDD)
					capacity = fmt.Sprintf("%.4f", out.CapacityAtMin)
					power = fmt.Sprintf("%.3f", out.StaticPowerAtMinW*1e3)
				}
				t.AddRow(out.Label, out.MechVersion, minV, capacity, power,
					fmt.Sprintf("%.2f", out.AreaOverheadFrac*100))
			}
			return t, nil
		},
	}, nil
}

// StudyNames is the canonical study order of a full sweep — the order
// the historical pcs-sweep binary ran them in, plus the mechanism
// registry summary.
func StudyNames() []string {
	return []string{"assoc", "levels", "cells", "leakage", "dpcs", "ablate", "mechs"}
}

// StudyByName builds the named study with the given workload and window
// parameters (used by the dpcs/leakage/ablate studies; ignored by the
// analytical ones).
func StudyByName(name, bench string, instr, seed uint64) (Study, error) {
	switch name {
	case "assoc":
		return AssocStudy(), nil
	case "levels":
		return LevelsStudy(), nil
	case "cells":
		return CellsStudy(), nil
	case "leakage":
		return LeakageStudy(instr, seed), nil
	case "dpcs":
		return DPCSStudy(bench, instr, seed), nil
	case "ablate":
		return AblationStudy(instr, seed), nil
	case "mechs":
		return MechStudy(nil)
	default:
		return Study{}, fmt.Errorf("expers: unknown study %q (known: %v)", name, StudyNames())
	}
}
