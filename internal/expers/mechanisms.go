package expers

import (
	"fmt"
	"strings"

	"repro/internal/cacti"
	"repro/internal/faultmodel"
	"repro/internal/mechanism"
	"repro/internal/memo"
	"repro/internal/report"
)

// This file is the registry-driven side of the Fig. 3 comparisons:
// every mechanism registered in internal/mechanism gets per-voltage
// curves, dynamic table columns, a min-VDD row and an area-overhead row
// — for any selection of mechanisms. The legacy fixed-shape functions
// (Fig3a/Fig3b/Fig3d/MinVDDs in analytical.go) are views over the
// default selection, so the golden tables stay byte-identical while
// `-mechanisms tscache,l2c2,proposed` renders the same table shapes for
// any competitor set.

// MechanismSetup bridges a memoized CacheSetup to the mechanism
// package's value-form Setup with nLowVDDs low-voltage levels.
func (cs *CacheSetup) MechanismSetup(nLowVDDs int) mechanism.Setup {
	return mechanism.Setup{
		Org: cs.Org, Tech: cs.Tech,
		CM: cs.CM, CMPCS: cs.CMPCS,
		BER: cs.BER, FM: cs.FM,
		NLowVDDs: nLowVDDs,
	}
}

// ResolveMechanisms maps a -mechanisms selection to registry entries in
// rank order; nil/empty means the paper's default comparison set.
func ResolveMechanisms(names []string) ([]mechanism.Descriptor, error) {
	return mechanism.Resolve(names)
}

// selDigest is the canonical memo identity of a resolved selection.
func selDigest(ds []mechanism.Descriptor) string {
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name + "@" + d.Version
	}
	return strings.Join(names, ",")
}

// Memo keys for the registry-driven layer. Selections are keyed by
// their canonical name@version digest, mechanism instances and curves
// by (org, level count, name, version) — all value identities, never
// pointers, so equivalent but distinctly-constructed inputs hit.
type (
	mechInstKey struct {
		org      cacti.Org
		nLowVDDs int
		name     string
		version  string
	}
	mechCurveKey  mechInstKey
	fig3aMechsKey struct {
		org      cacti.Org
		nLowVDDs int
		sel      string
	}
	fig3bMechsKey struct {
		org cacti.Org
		sel string
	}
	fig3dMechsKey  fig3bMechsKey
	minVDDMechsKey fig3bMechsKey
	mechAreasKey   fig3bMechsKey
	mechTablesKey  fig3bMechsKey
)

// mechanismFor builds (or serves the memoized) mechanism instance on
// the organisation's shared model stack.
func mechanismFor(org cacti.Org, nLowVDDs int, d mechanism.Descriptor) (mechanism.Mechanism, error) {
	key := mechInstKey{org: org, nLowVDDs: nLowVDDs, name: d.Name, version: d.Version}
	return memo.Get(memos.Load(), key, func() (mechanism.Mechanism, error) {
		cs, err := NewCacheSetup(org, nLowVDDs+1)
		if err != nil {
			return nil, err
		}
		return d.New(cs.MechanismSetup(nLowVDDs))
	})
}

// MechCurve samples one mechanism's analytical model over the shared
// voltage grid [VLo, VHi].
type MechCurve struct {
	Name, Label, ShortLabel string
	VDDs                    []float64
	Capacity                []float64
	PowerW                  []float64
	Yield                   []float64
}

// Points converts the curve to Fig. 3a (capacity, power) samples.
func (c *MechCurve) Points() []Fig3aPoint {
	if c == nil {
		return nil
	}
	pts := make([]Fig3aPoint, len(c.VDDs))
	for i := range c.VDDs {
		pts[i] = Fig3aPoint{VDD: c.VDDs[i], Capacity: c.Capacity[i], PowerW: c.PowerW[i]}
	}
	return pts
}

// mechCurveFor memoizes one mechanism's full per-voltage curve.
func mechCurveFor(org cacti.Org, nLowVDDs int, d mechanism.Descriptor) (*MechCurve, error) {
	key := mechCurveKey{org: org, nLowVDDs: nLowVDDs, name: d.Name, version: d.Version}
	return memo.Get(memos.Load(), key, func() (*MechCurve, error) {
		cs, err := NewCacheSetup(org, nLowVDDs+1)
		if err != nil {
			return nil, err
		}
		m, err := mechanismFor(org, nLowVDDs, d)
		if err != nil {
			return nil, err
		}
		c := &MechCurve{Name: d.Name, Label: d.Label, ShortLabel: d.ShortLabel}
		for _, v := range faultmodel.Grid(VLo, VHi) {
			c.VDDs = append(c.VDDs, v)
			c.Capacity = append(c.Capacity, m.EffectiveCapacity(v))
			c.PowerW = append(c.PowerW, m.StaticPower(cs.CM, v))
			c.Yield = append(c.Yield, m.Yield(v))
		}
		return c, nil
	})
}

// scalersOf returns the selection's voltage-scaling mechanisms in
// rank-descending order (strongest first — the paper's column order).
func scalersOf(ds []mechanism.Descriptor) []mechanism.Descriptor {
	var out []mechanism.Descriptor
	for i := len(ds) - 1; i >= 0; i-- {
		if ds[i].Scales {
			out = append(out, ds[i])
		}
	}
	return out
}

// steppersOf returns the selection's discrete-step mechanisms,
// rank-descending.
func steppersOf(ds []mechanism.Descriptor) []mechanism.Descriptor {
	var out []mechanism.Descriptor
	for i := len(ds) - 1; i >= 0; i-- {
		if ds[i].Steps {
			out = append(out, ds[i])
		}
	}
	return out
}

// yieldersOf returns the selection's yield-curve mechanisms in rank
// order (weakest first — the paper's row order).
func yieldersOf(ds []mechanism.Descriptor) []mechanism.Descriptor {
	var out []mechanism.Descriptor
	for _, d := range ds {
		if d.Yields {
			out = append(out, d)
		}
	}
	return out
}

// MechStepCurve is a discrete (capacity, power) trade-off at nominal
// voltage (way gating's line in Fig. 3a).
type MechStepCurve struct {
	Name, Label string
	Caps, Watts []float64
}

// Fig3aSelData holds the per-mechanism curves of one Fig. 3a rendering.
type Fig3aSelData struct {
	Org    string
	Curves []*MechCurve
	Steps  []MechStepCurve
}

// Curve returns the named mechanism's curve, or nil.
func (d Fig3aSelData) Curve(name string) *MechCurve {
	return curveByName(d.Curves, name)
}

// curveByName finds a mechanism's curve in a slice, or nil.
func curveByName(cs []*MechCurve, name string) *MechCurve {
	for _, c := range cs {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Fig3aMechs renders Fig. 3a — static power vs effective capacity —
// for any mechanism selection (nil = the paper's default set).
// nLowVDDs configures how many low-voltage levels map-carrying schemes
// pay for (2 reproduces the paper's three-level comparison).
func Fig3aMechs(org cacti.Org, nLowVDDs int, names []string) (Fig3aSelData, *report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return Fig3aSelData{}, nil, err
	}
	key := fig3aMechsKey{org: org, nLowVDDs: nLowVDDs, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() (rowsAndTable[Fig3aSelData], error) {
		data := Fig3aSelData{Org: org.Name}
		for _, d := range scalersOf(ds) {
			c, err := mechCurveFor(org, nLowVDDs, d)
			if err != nil {
				return rowsAndTable[Fig3aSelData]{}, err
			}
			data.Curves = append(data.Curves, c)
		}
		for _, d := range steppersOf(ds) {
			m, err := mechanismFor(org, nLowVDDs, d)
			if err != nil {
				return rowsAndTable[Fig3aSelData]{}, err
			}
			sc, ok := m.(mechanism.StepCurver)
			if !ok {
				return rowsAndTable[Fig3aSelData]{}, fmt.Errorf("expers: mechanism %q registered Steps but implements no PowerCapacityCurve", d.Name)
			}
			caps, watts := sc.PowerCapacityCurve()
			data.Steps = append(data.Steps, MechStepCurve{Name: d.Name, Label: d.Label, Caps: caps, Watts: watts})
		}
		headers := []string{"VDD (V)"}
		for _, c := range data.Curves {
			headers = append(headers, c.ShortLabel+" cap", c.ShortLabel+" mW")
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 3a — static power vs effective capacity (%s)", org.Name),
			headers...)
		for i, v := range faultmodel.Grid(VLo, VHi) {
			row := []any{fmt.Sprintf("%.2f", v)}
			for _, c := range data.Curves {
				row = append(row, fmt.Sprintf("%.4f", c.Capacity[i]), fmt.Sprintf("%.3f", c.PowerW[i]*1e3))
			}
			t.AddRow(row...)
		}
		return rowsAndTable[Fig3aSelData]{rows: data, t: t}, nil
	})
	return v.rows, v.t, err
}

// Fig3bMechs renders Fig. 3b — proportion of usable blocks vs VDD —
// for any mechanism selection (nil = default set).
func Fig3bMechs(org cacti.Org, names []string) ([]*MechCurve, *report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return nil, nil, err
	}
	key := fig3bMechsKey{org: org, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() (rowsAndTable[[]*MechCurve], error) {
		var curves []*MechCurve
		for _, d := range scalersOf(ds) {
			c, err := mechCurveFor(org, 2, d)
			if err != nil {
				return rowsAndTable[[]*MechCurve]{}, err
			}
			curves = append(curves, c)
		}
		headers := []string{"VDD (V)"}
		for _, c := range curves {
			headers = append(headers, c.Label)
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 3b — proportion of usable blocks vs VDD (%s)", org.Name),
			headers...)
		for i, v := range faultmodel.Grid(VLo, VHi) {
			row := []any{fmt.Sprintf("%.2f", v)}
			for _, c := range curves {
				row = append(row, fmt.Sprintf("%.4f", c.Capacity[i]))
			}
			t.AddRow(row...)
		}
		return rowsAndTable[[]*MechCurve]{rows: curves, t: t}, nil
	})
	return v.rows, v.t, err
}

// Fig3dMechs renders Fig. 3d — yield vs VDD — for any mechanism
// selection (nil = default set), weakest scheme first.
func Fig3dMechs(org cacti.Org, names []string) ([]*MechCurve, *report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return nil, nil, err
	}
	key := fig3dMechsKey{org: org, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() (rowsAndTable[[]*MechCurve], error) {
		var curves []*MechCurve
		for _, d := range yieldersOf(ds) {
			c, err := mechCurveFor(org, 2, d)
			if err != nil {
				return rowsAndTable[[]*MechCurve]{}, err
			}
			curves = append(curves, c)
		}
		headers := []string{"VDD (V)"}
		for _, c := range curves {
			headers = append(headers, c.Label)
		}
		t := report.NewTable(
			fmt.Sprintf("Fig. 3d — yield vs VDD (%s)", org.Name),
			headers...)
		for i, v := range faultmodel.Grid(VLo, VHi) {
			row := []any{fmt.Sprintf("%.2f", v)}
			for _, c := range curves {
				row = append(row, fmt.Sprintf("%.4f", c.Yield[i]))
			}
			t.AddRow(row...)
		}
		return rowsAndTable[[]*MechCurve]{rows: curves, t: t}, nil
	})
	return v.rows, v.t, err
}

// MinVDDMechs computes each selected mechanism's minimum voltage at
// 99 % yield (nil = default set), weakest scheme first.
func MinVDDMechs(org cacti.Org, names []string) ([]MinVDDRow, *report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return nil, nil, err
	}
	key := minVDDMechsKey{org: org, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() (rowsAndTable[[]MinVDDRow], error) {
		rows := []MinVDDRow{}
		for _, d := range yieldersOf(ds) {
			m, err := mechanismFor(org, 2, d)
			if err != nil {
				return rowsAndTable[[]MinVDDRow]{}, err
			}
			v, ok := m.MinVDDForYield(0.99, VLo, VHi)
			rows = append(rows, MinVDDRow{Scheme: d.Label, MinVDD: v, OK: ok})
		}
		t := report.NewTable(fmt.Sprintf("Min-VDD at 99%% yield (%s)", org.Name), "Scheme", "Min VDD (V)")
		for _, r := range rows {
			cell := "n/a"
			if r.OK {
				cell = fmt.Sprintf("%.2f", r.MinVDD)
			}
			t.AddRow(r.Scheme, cell)
		}
		return rowsAndTable[[]MinVDDRow]{rows: rows, t: t}, nil
	})
	return v.rows, v.t, err
}

// MechAreaRow is one mechanism's area-overhead summary.
type MechAreaRow struct {
	Name, Label string
	Fraction    float64
	Detail      string
}

// MechanismAreas reports each selected mechanism's area overhead on the
// organisation (nil = default set), in rank order.
func MechanismAreas(org cacti.Org, names []string) ([]MechAreaRow, *report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return nil, nil, err
	}
	key := mechAreasKey{org: org, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() (rowsAndTable[[]MechAreaRow], error) {
		var rows []MechAreaRow
		t := report.NewTable(fmt.Sprintf("Mechanism area overheads (%s)", org.Name),
			"Mechanism", "Overhead %", "Adds")
		for _, d := range ds {
			m, err := mechanismFor(org, 2, d)
			if err != nil {
				return rowsAndTable[[]MechAreaRow]{}, err
			}
			ao := m.AreaOverhead()
			rows = append(rows, MechAreaRow{Name: d.Name, Label: d.Label, Fraction: ao.Fraction, Detail: ao.Detail})
			t.AddRow(d.Label, fmt.Sprintf("%.2f", ao.Fraction*100), ao.Detail)
		}
		return rowsAndTable[[]MechAreaRow]{rows: rows, t: t}, nil
	})
	return v.rows, v.t, err
}

// MechanismTables collects the scheme-specific extra tables (TS-Cache
// replay penalties, L2C2 salvage probabilities, ...) of a selection, in
// rank order. Mechanisms without extra tables contribute nothing — the
// default set contributes none, keeping the golden output untouched.
func MechanismTables(org cacti.Org, names []string) ([]*report.Table, error) {
	ds, err := ResolveMechanisms(names)
	if err != nil {
		return nil, err
	}
	key := mechTablesKey{org: org, sel: selDigest(ds)}
	v, err := memo.Get(memos.Load(), key, func() ([]*report.Table, error) {
		var tables []*report.Table
		for _, d := range ds {
			m, err := mechanismFor(org, 2, d)
			if err != nil {
				return nil, err
			}
			if tb, ok := m.(mechanism.Tabler); ok {
				tables = append(tables, tb.Tables(VLo, VHi)...)
			}
		}
		return tables, nil
	})
	return v, err
}

// MechanismList renders the registry for `pcs analytical
// -list-mechanisms`: every entry with its identity, comparison roles
// and one-line summary.
func MechanismList() *report.Table {
	t := report.NewTable("Registered mechanisms (selection order = rank)",
		"Name", "Label", "Version", "Default", "Roles", "Summary")
	for _, d := range mechanism.All() {
		var roles []string
		if d.Scales {
			roles = append(roles, "scales")
		}
		if d.Yields {
			roles = append(roles, "yields")
		}
		if d.Steps {
			roles = append(roles, "steps")
		}
		def := ""
		if d.Default {
			def = "yes"
		}
		t.AddRow(d.Name, d.Label, d.Version, def, strings.Join(roles, "+"), d.Summary)
	}
	return t
}

// OrgByName resolves a cache-organisation selector ("l1a", "l2a",
// "l1b", "l2b", case-insensitive) to its Table-2 organisation.
func OrgByName(name string) (cacti.Org, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "l1a":
		return L1ConfigA(), nil
	case "l2a":
		return L2ConfigA(), nil
	case "l1b":
		return L1ConfigB(), nil
	case "l2b":
		return L2ConfigB(), nil
	default:
		return cacti.Org{}, fmt.Errorf("expers: unknown org %q (want l1a, l2a, l1b or l2b)", name)
	}
}
