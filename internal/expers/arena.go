package expers

import (
	"context"

	"repro/internal/cache"
	"repro/internal/cpusim"
	"repro/internal/faultmap"
	"repro/internal/runner"
	"repro/internal/stats"
)

// CellArena is the per-worker reusable state for campaign cells
// (DESIGN.md §13): the runner builds one per (worker, kind) via
// runner.KindInfo.NewWorkerState, and the kind functions thread it
// into their simulation substrate, so consecutive cells on a worker
// recycle their caches, fault maps, trace blocks and RNGs instead of
// reallocating. A CellArena is confined to one goroutine; everything a
// cell built on it is invalidated by the worker's next cell of the
// same kind. Cells must produce byte-identical output with a nil
// arena (the cold path) — the differential tests assert exactly that.
type CellArena struct {
	// Sim is the cpusim-level arena for the kinds that run whole
	// systems (cpusim, fig4-cell, ablation).
	Sim *cpusim.Arena
	// caches pools standalone caches for the leakage kind, which keeps
	// several same-config caches live at once — the slot disambiguates
	// them (slot 0 = baseline, 1 = drowsy, 2 = decay, 3 = SPCS).
	caches map[cacheSlot]*cache.Cache
	// fmap and rng serve the leakage kind's fault-map population.
	fmap *faultmap.Map
	rng  stats.RNG
}

// cacheSlot keys one pooled standalone cache: the config plus a slot
// index for cells that need several live instances of the same config.
type cacheSlot struct {
	cfg  cache.Config
	slot int
}

// NewCellArena returns an empty arena; the runner calls this lazily on
// each worker's first job of an arena-aware kind.
func NewCellArena() *CellArena {
	return &CellArena{
		Sim:    cpusim.NewArena(),
		caches: make(map[cacheSlot]*cache.Cache),
	}
}

// arenaFromContext returns the job's CellArena, or nil when the job
// runs cold (direct call, runner.Options.NoWorkerState, or a kind
// registered without a factory). All kind functions treat nil as
// "allocate fresh".
func arenaFromContext(ctx context.Context) *CellArena {
	a, _ := runner.WorkerStateFromContext(ctx).(*CellArena)
	return a
}

// cacheFor returns a freshly Reset cache for (cfg, slot), reusing the
// pooled instance when one exists.
func (a *CellArena) cacheFor(cfg cache.Config, slot int) *cache.Cache {
	key := cacheSlot{cfg: cfg, slot: slot}
	if c, ok := a.caches[key]; ok {
		c.Reset()
		return c
	}
	c := cache.MustNew(cfg)
	a.caches[key] = c
	return c
}

// simArena returns the cpusim arena of a possibly-nil CellArena, so
// kind functions can assign cpusim.RunOptions.Arena unconditionally.
func (a *CellArena) simArena() *cpusim.Arena {
	if a == nil {
		return nil
	}
	return a.Sim
}
