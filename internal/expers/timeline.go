package expers

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
)

// This file renders DPCS policy timelines (streams of obs.PolicyEvent,
// typically read back from a timeline.jsonl written by pcs-sim
// -timeline or a pcs-sweep per-job policy file) as VDD-vs-time views:
// the raw transition trajectory and the per-level residency summary.
// The residency replay is the same piecewise-constant reconstruction
// the cpusim reconciliation test performs against
// Controller.TimeAtLevelCycles.

// VDDResidency is the time one cache spent at one VDD level.
type VDDResidency struct {
	Cache  string  `json:"cache"`
	Level  int     `json:"level"`
	VDD    float64 `json:"vdd"`
	Cycles uint64  `json:"cycles"`
	// Frac is Cycles over the run length.
	Frac float64 `json:"frac"`
}

// VDDResidencies replays the DecisionTransition events of a policy
// timeline into per-cache, per-level cycle residencies over a run of
// endCycle cycles. A cache with no transition events has an unknown
// (constant) voltage and is omitted. Results are ordered by cache name,
// then by descending level.
func VDDResidencies(events []obs.PolicyEvent, endCycle uint64) []VDDResidency {
	type state struct {
		level    int
		vdd      float64
		sinceCyc uint64
		perLevel map[int]uint64
		levelVDD map[int]float64
	}
	caches := map[string]*state{}
	var order []string
	for _, ev := range events {
		if ev.Decision != obs.DecisionTransition {
			continue
		}
		st, ok := caches[ev.CacheName]
		if !ok {
			st = &state{
				level:    ev.FromLevel,
				vdd:      ev.FromVDD,
				perLevel: map[int]uint64{},
				levelVDD: map[int]float64{},
			}
			caches[ev.CacheName] = st
			order = append(order, ev.CacheName)
		}
		st.levelVDD[st.level] = st.vdd
		if ev.Cycle > st.sinceCyc {
			st.perLevel[st.level] += ev.Cycle - st.sinceCyc
		}
		st.level, st.vdd, st.sinceCyc = ev.ToLevel, ev.ToVDD, ev.Cycle
	}
	sort.Strings(order)
	var out []VDDResidency
	for _, name := range order {
		st := caches[name]
		st.levelVDD[st.level] = st.vdd
		if endCycle > st.sinceCyc {
			st.perLevel[st.level] += endCycle - st.sinceCyc
		}
		levels := make([]int, 0, len(st.perLevel))
		for l := range st.perLevel {
			levels = append(levels, l)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(levels)))
		for _, l := range levels {
			r := VDDResidency{Cache: name, Level: l, VDD: st.levelVDD[l], Cycles: st.perLevel[l]}
			if endCycle > 0 {
				r.Frac = float64(r.Cycles) / float64(endCycle)
			}
			out = append(out, r)
		}
	}
	return out
}

// VDDTrajectoryTable renders the transition events of a policy timeline
// as a VDD-vs-time table, one row per voltage transition. clockHz
// converts cycles to time; maxRows > 0 truncates long trajectories
// (with a trailing row noting how many transitions were elided).
func VDDTrajectoryTable(events []obs.PolicyEvent, clockHz float64, maxRows int) *report.Table {
	t := report.NewTable("DPCS VDD trajectory (voltage transitions vs time)",
		"Time (ms)", "Cycle", "Cache", "Level", "VDD (V)", "WB", "Inv", "Penalty (cyc)")
	shown, total := 0, 0
	for _, ev := range events {
		if ev.Decision != obs.DecisionTransition {
			continue
		}
		total++
		if maxRows > 0 && shown >= maxRows {
			continue
		}
		shown++
		ms := 0.0
		if clockHz > 0 {
			ms = float64(ev.Cycle) / clockHz * 1e3
		}
		t.AddRow(
			fmt.Sprintf("%.3f", ms),
			ev.Cycle,
			ev.CacheName,
			fmt.Sprintf("%d->%d", ev.FromLevel, ev.ToLevel),
			fmt.Sprintf("%.2f->%.2f", ev.FromVDD, ev.ToVDD),
			ev.Writebacks,
			ev.Invalidations,
			ev.PenaltyCycles,
		)
	}
	if total > shown {
		t.AddRow(fmt.Sprintf("... %d more transitions", total-shown), "", "", "", "", "", "", "")
	}
	return t
}

// VDDResidencyTable renders VDDResidencies as a table.
func VDDResidencyTable(events []obs.PolicyEvent, endCycle uint64) *report.Table {
	t := report.NewTable("DPCS VDD residency (fraction of run at each level)",
		"Cache", "Level", "VDD (V)", "Cycles", "Residency %")
	for _, r := range VDDResidencies(events, endCycle) {
		t.AddRow(r.Cache, r.Level, fmt.Sprintf("%.2f", r.VDD), r.Cycles,
			fmt.Sprintf("%.1f", r.Frac*100))
	}
	return t
}
