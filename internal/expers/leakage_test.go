package expers

import (
	"testing"
)

func TestLeakageComparison(t *testing.T) {
	rows, tbl, err := LeakageComparison(300_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]LeakageRow{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	base := rows[0]
	if base.LeakEnergyRel != 1 || base.ExtraCyclesPct != 0 {
		t.Fatalf("baseline row not normalised: %+v", base)
	}
	// Every technique saves leakage vs the conventional baseline.
	for _, r := range rows[1:] {
		if r.LeakEnergyRel >= 1 {
			t.Errorf("%s leakage %v not below baseline", r.Technique, r.LeakEnergyRel)
		}
	}
	// SPCS is the only fault-tolerant one and must not lose state.
	spcs := rows[3]
	if !spcs.ToleratesFault || spcs.LosesState {
		t.Errorf("SPCS row flags: %+v", spcs)
	}
	// Decay loses state; drowsy does not.
	if !rows[2].LosesState || rows[1].LosesState {
		t.Error("state-loss flags wrong")
	}
	// SPCS leakage should be competitive with drowsy (within 2x either
	// way) while adding fault tolerance.
	if spcs.LeakEnergyRel > 2*rows[1].LeakEnergyRel {
		t.Errorf("SPCS leakage %v far above drowsy %v",
			spcs.LeakEnergyRel, rows[1].LeakEnergyRel)
	}
	// Overheads stay small for all techniques on this friendly workload.
	for _, r := range rows {
		if r.ExtraCyclesPct > 10 {
			t.Errorf("%s overhead %v%%", r.Technique, r.ExtraCyclesPct)
		}
	}
}
