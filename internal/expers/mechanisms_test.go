package expers

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mechanism"
)

// TestRegistryCompleteness is the drift gate for the mechanism plugin
// layer: every registered mechanism must surface in the Fig. 3
// comparison surfaces its capability flags promise — a curve or step
// series in Fig. 3a, a yield curve in Fig. 3d, a min-VDD row, and an
// area-overhead row. A mechanism registered without showing up here is
// dead weight; one showing up without registration is impossible.
func TestRegistryCompleteness(t *testing.T) {
	org := L1ConfigA()
	all := mechanism.All()
	names := mechanism.Names()
	if len(all) != len(names) {
		t.Fatalf("All() has %d entries, Names() has %d", len(all), len(names))
	}

	sel, t3a, err := Fig3aMechs(org, 2, names)
	if err != nil {
		t.Fatalf("Fig3aMechs(all): %v", err)
	}
	curves3d, _, err := Fig3dMechs(org, names)
	if err != nil {
		t.Fatalf("Fig3dMechs(all): %v", err)
	}
	minRows, mt, err := MinVDDMechs(org, names)
	if err != nil {
		t.Fatalf("MinVDDMechs(all): %v", err)
	}
	areaRows, _, err := MechanismAreas(org, names)
	if err != nil {
		t.Fatalf("MechanismAreas(all): %v", err)
	}

	stepNames := make(map[string]bool, len(sel.Steps))
	for _, st := range sel.Steps {
		stepNames[st.Name] = true
	}
	yieldNames := make(map[string]bool, len(curves3d))
	for _, cv := range curves3d {
		yieldNames[cv.Name] = true
	}
	minLabels := make(map[string]bool, len(minRows))
	for _, r := range minRows {
		minLabels[r.Scheme] = true
	}
	areaNames := make(map[string]bool, len(areaRows))
	for _, r := range areaRows {
		areaNames[r.Name] = true
	}

	for _, d := range all {
		if d.Scales {
			if sel.Curve(d.Name) == nil {
				t.Errorf("%s: Scales but no Fig. 3a/3b curve", d.Name)
			}
			if !headerContains(t3a.Headers, d.ShortLabel+" cap") {
				t.Errorf("%s: no %q column in the Fig. 3a table", d.Name, d.ShortLabel+" cap")
			}
		}
		if d.Steps && !stepNames[d.Name] {
			t.Errorf("%s: Steps but no Fig. 3a step series", d.Name)
		}
		if d.Yields {
			if !yieldNames[d.Name] {
				t.Errorf("%s: Yields but no Fig. 3d curve", d.Name)
			}
			if !minLabels[d.Label] {
				t.Errorf("%s: Yields but no min-VDD row (labels: %v)", d.Name, mt.Rows)
			}
		}
		if !areaNames[d.Name] {
			t.Errorf("%s: no area-overhead row", d.Name)
		}
	}
}

func headerContains(headers []string, want string) bool {
	for _, h := range headers {
		if h == want {
			return true
		}
	}
	return false
}

// TestMechStudyCoversRegistry pins the sweep layer to the registry:
// "mechs" is a selectable study, and with no explicit selection it runs
// one min-VDD job per registered mechanism with the version pinned.
func TestMechStudyCoversRegistry(t *testing.T) {
	if !containsString(StudyNames(), "mechs") {
		t.Fatalf("StudyNames() = %v misses \"mechs\"", StudyNames())
	}
	st, err := MechStudy(nil)
	if err != nil {
		t.Fatalf("MechStudy(nil): %v", err)
	}
	names := mechanism.Names()
	if len(st.Jobs) != len(names) {
		t.Fatalf("MechStudy(nil) has %d jobs, want one per registered mechanism (%d)", len(st.Jobs), len(names))
	}
	for i, job := range st.Jobs {
		if job.Kind != "mechminvdd" {
			t.Fatalf("job %d kind = %q, want mechminvdd", i, job.Kind)
		}
		var p MechMinVDDParams
		if err := json.Unmarshal(job.Params, &p); err != nil {
			t.Fatalf("job %d params: %v", i, err)
		}
		if p.Mechanism != names[i] {
			t.Errorf("job %d runs %q, want %q (registry order)", i, p.Mechanism, names[i])
		}
		d, _ := mechanism.ByName(p.Mechanism)
		if p.MechVersion != d.Version {
			t.Errorf("job %d pins version %q, want %q", i, p.MechVersion, d.Version)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("job %d params invalid: %v", i, err)
		}
	}
	if _, err := MechStudy([]string{"nosuch"}); err == nil {
		t.Error("MechStudy(nosuch) did not fail")
	}
}

// TestDefaultSelectionMatchesLegacy pins the registry-driven tables for
// an explicit default-set selection to the legacy fixed-shape tables
// the golden analytical output is generated from.
func TestDefaultSelectionMatchesLegacy(t *testing.T) {
	org := L1ConfigA()
	defaults := mechanism.DefaultNames()

	_, legacy3a, err := Fig3a(org, 2)
	if err != nil {
		t.Fatalf("Fig3a: %v", err)
	}
	_, sel3a, err := Fig3aMechs(org, 2, defaults)
	if err != nil {
		t.Fatalf("Fig3aMechs(defaults): %v", err)
	}
	if !reflect.DeepEqual(legacy3a, sel3a) {
		t.Errorf("Fig. 3a tables differ:\nlegacy  %v\ndefault %v", legacy3a.Headers, sel3a.Headers)
	}

	_, legacy3d, err := Fig3d(org)
	if err != nil {
		t.Fatalf("Fig3d: %v", err)
	}
	_, sel3d, err := Fig3dMechs(org, defaults)
	if err != nil {
		t.Fatalf("Fig3dMechs(defaults): %v", err)
	}
	if !reflect.DeepEqual(legacy3d, sel3d) {
		t.Errorf("Fig. 3d tables differ:\nlegacy  %v\ndefault %v", legacy3d.Headers, sel3d.Headers)
	}

	_, legacyMin, err := MinVDDs(org)
	if err != nil {
		t.Fatalf("MinVDDs: %v", err)
	}
	_, selMin, err := MinVDDMechs(org, defaults)
	if err != nil {
		t.Fatalf("MinVDDMechs(defaults): %v", err)
	}
	if !reflect.DeepEqual(legacyMin, selMin) {
		t.Errorf("min-VDD tables differ:\nlegacy  %v\ndefault %v", legacyMin.Rows, selMin.Rows)
	}

	// The default set contributes no scheme-specific extra tables, so
	// the golden fig3d section cannot grow.
	extra, err := MechanismTables(org, defaults)
	if err != nil {
		t.Fatalf("MechanismTables(defaults): %v", err)
	}
	if len(extra) != 0 {
		t.Errorf("default set has %d extra tables, want 0 (golden output would change)", len(extra))
	}
}

// TestDigestKeyedMemos checks that the parameterised table builders
// memoize on the value digest, not the call site: two distinctly
// constructed but equal inputs must return the identical table.
func TestDigestKeyedMemos(t *testing.T) {
	g1 := CellGeometry()
	g2 := CellGeometry()
	_, t1, err := CellComparisonFor(g1)
	if err != nil {
		t.Fatalf("CellComparisonFor: %v", err)
	}
	_, t2, err := CellComparisonFor(g2)
	if err != nil {
		t.Fatalf("CellComparisonFor: %v", err)
	}
	if t1 != t2 {
		t.Error("CellComparisonFor returned distinct tables for equal geometries")
	}
	_, t3, err := CellComparison()
	if err != nil {
		t.Fatalf("CellComparison: %v", err)
	}
	if t1 != t3 {
		t.Error("CellComparison() misses the CellComparisonFor memo")
	}

	_, a1, err := AreaOverheadsFor(AllOrgs())
	if err != nil {
		t.Fatalf("AreaOverheadsFor: %v", err)
	}
	_, a2, err := AreaOverheads()
	if err != nil {
		t.Fatalf("AreaOverheads: %v", err)
	}
	if a1 != a2 {
		t.Error("AreaOverheads() misses the AreaOverheadsFor memo")
	}
	// A different org list is a different key, not a collision.
	_, a3, err := AreaOverheadsFor(AllOrgs()[:1])
	if err != nil {
		t.Fatalf("AreaOverheadsFor(l1a): %v", err)
	}
	if a3 == a1 {
		t.Error("AreaOverheadsFor collides across different org lists")
	}
}

// TestMechMinVDDParamsValidate pins the spec-validation errors for the
// mechminvdd campaign kind.
func TestMechMinVDDParamsValidate(t *testing.T) {
	good := MechMinVDDParams{}
	good.ApplyDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaulted params invalid: %v", err)
	}
	if good.Mechanism == "" || good.MechVersion == "" {
		t.Fatalf("ApplyDefaults left mechanism/version empty: %+v", good)
	}

	bad := good
	bad.Mechanism = "nosuch"
	bad.MechVersion = ""
	bad.ApplyDefaults()
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mechanism") {
		t.Errorf("unknown mechanism error = %v", err)
	}

	stale := good
	stale.MechVersion = "0-stale"
	if err := stale.Validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version-pin mismatch error = %v", err)
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
