package expers

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/trace"
)

// miniFig4 runs a reduced Fig. 4 (two benchmarks, short windows) to keep
// the unit-test suite fast; the full run lives in cmd/pcs-sim and the
// root benchmarks.
func miniFig4(t *testing.T) Fig4Data {
	t.Helper()
	cfg := cpusim.ConfigA()
	opts := cpusim.RunOptions{WarmupInstr: 100_000, SimInstr: 400_000, Seed: 1}
	data := Fig4Data{Config: cfg.Name}
	for _, name := range []string{"hmmer.s", "libquantum.s"} {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		row := Fig4Row{Workload: name}
		var err error
		if row.Baseline, err = cpusim.Run(cfg, core.Baseline, w, opts); err != nil {
			t.Fatal(err)
		}
		if row.SPCS, err = cpusim.Run(cfg, core.SPCS, w, opts); err != nil {
			t.Fatal(err)
		}
		if row.DPCS, err = cpusim.Run(cfg, core.DPCS, w, opts); err != nil {
			t.Fatal(err)
		}
		data.Rows = append(data.Rows, row)
	}
	return data
}

func TestFig4RowMetrics(t *testing.T) {
	d := miniFig4(t)
	for _, r := range d.Rows {
		sS := r.EnergySaving(core.SPCS)
		sD := r.EnergySaving(core.DPCS)
		if sS < 0.3 || sS > 0.8 {
			t.Errorf("%s SPCS saving %v implausible", r.Workload, sS)
		}
		if sD < sS-0.02 {
			t.Errorf("%s DPCS saving %v well below SPCS %v", r.Workload, sD, sS)
		}
		if ov := r.ExecOverhead(core.SPCS); ov < -0.01 || ov > 0.05 {
			t.Errorf("%s SPCS overhead %v", r.Workload, ov)
		}
		if ov := r.ExecOverhead(core.DPCS); ov < -0.01 || ov > 0.10 {
			t.Errorf("%s DPCS overhead %v", r.Workload, ov)
		}
		if r.EnergySaving(core.Baseline) != 0 || r.ExecOverhead(core.Baseline) != 0 {
			t.Error("baseline self-comparison nonzero")
		}
	}
}

func TestSummarise(t *testing.T) {
	d := miniFig4(t)
	s := Summarise(d)
	if s.Config != "A" {
		t.Error("config label")
	}
	if s.MeanSavingSPCS <= 0 || s.MeanSavingDPCS <= 0 {
		t.Error("zero savings")
	}
	if s.MaxOverheadDPCS < 0 {
		t.Error("negative max overhead")
	}
	if s.MeanSavingDPCS < s.MeanSavingSPCS-0.02 {
		t.Errorf("mean DPCS %v below SPCS %v", s.MeanSavingDPCS, s.MeanSavingSPCS)
	}
}

func TestFig4Tables(t *testing.T) {
	d := miniFig4(t)
	for _, tbl := range []interface {
		Render(w *strings.Builder) error
	}{} {
		_ = tbl
	}
	var b strings.Builder
	if err := Fig4PowerTable(d, "L1").Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := Fig4PowerTable(d, "L2").Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := Fig4OverheadTable(d).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := Fig4EnergyTable(d).Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := SummaryTable(Summarise(d)).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"hmmer.s", "libquantum.s", "SPCS", "DPCS", "Mean SPCS energy saving"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestFig4RunsWholeSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := cpusim.ConfigA()
	opts := cpusim.RunOptions{WarmupInstr: 20_000, SimInstr: 60_000, Seed: 1}
	d, err := Fig4(cfg, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 16 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	for _, r := range d.Rows {
		if r.Baseline.TotalCacheEnergyJ <= 0 {
			t.Errorf("%s zero baseline energy", r.Workload)
		}
	}
}

// TestFig4ParallelMatchesSerial asserts the worker-pool grid produces
// byte-identical Fig4Data to the serial loop: every cell pins the same
// RunOptions.Seed and owns its own System, so worker count and
// completion order cannot influence any simulated result.
func TestFig4ParallelMatchesSerial(t *testing.T) {
	cfg := cpusim.ConfigA()
	opts := cpusim.RunOptions{WarmupInstr: 20_000, SimInstr: 80_000, Seed: 7}
	var workloads []trace.Workload
	for _, name := range []string{"hmmer.s", "mcf.s", "libquantum.s"} {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		workloads = append(workloads, w)
	}
	serial := Fig4Data{Config: cfg.Name}
	for _, w := range workloads {
		row := Fig4Row{Workload: w.Name}
		var err error
		if row.Baseline, err = cpusim.Run(cfg, core.Baseline, w, opts); err != nil {
			t.Fatal(err)
		}
		if row.SPCS, err = cpusim.Run(cfg, core.SPCS, w, opts); err != nil {
			t.Fatal(err)
		}
		if row.DPCS, err = cpusim.Run(cfg, core.DPCS, w, opts); err != nil {
			t.Fatal(err)
		}
		serial.Rows = append(serial.Rows, row)
	}
	for _, workers := range []int{1, 4} {
		parallel, err := Fig4ParallelWorkloads(context.Background(), cfg, workloads, opts, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel Fig4Data diverges from serial:\nserial   %+v\nparallel %+v",
				workers, serial, parallel)
		}
	}
}
