package expers

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultmap"
	"repro/internal/leakage"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LeakageRow is one technique's outcome in the leakage comparison.
type LeakageRow struct {
	Technique      string
	LeakEnergyRel  float64 // data-array leakage energy vs baseline
	ExtraCyclesPct float64 // execution overhead vs baseline
	LosesState     bool
	ToleratesFault bool
}

// LeakageComparison runs the Sec.-2 related-work techniques and the
// proposed SPCS point on one L1 workload and reports data-array leakage
// energy and performance overhead, normalised to a conventional cache at
// nominal VDD. It quantifies the paper's positioning: drowsy saves
// leakage but retains data at a fault-prone voltage it cannot tolerate;
// decay saves leakage but destroys state and adds misses; SPCS gets
// comparable-or-better leakage with a fault story and bounded overhead.
func LeakageComparison(instructions uint64, seed uint64) ([]LeakageRow, *report.Table, error) {
	return leakageComparison(nil, instructions, seed)
}

// leakageComparison is LeakageComparison with an optional per-worker
// arena: the four standalone caches (baseline, drowsy, decay, SPCS are
// all live at once, hence the slots) and the fault map come from the
// arena's pools when one is supplied, and the output is byte-identical
// either way.
func leakageComparison(arena *CellArena, instructions uint64, seed uint64) ([]LeakageRow, *report.Table, error) {
	org := L1ConfigA()
	tech := device.Tech45SOI()
	// The scenario every leakage technique targets: an over-provisioned
	// cache (32 KB hot working set in the 64 KB L1).
	w := trace.Workload{
		Name: "leakcmp", CodeBytes: 16 << 10, JumpProb: 0.02, ZipfS: 1.2,
		Phases: []trace.Phase{{
			Instructions: 1 << 40, WorkingSetBytes: 32 << 10,
			Mix: trace.PatternMix{Zipf: 0.55, Seq: 0.2}, WriteFrac: 0.3, MemFrac: 0.5,
		}},
	}

	slot := 0
	newCache := func() *cache.Cache {
		ccfg := cache.Config{Name: "L1", SizeBytes: org.SizeBytes,
			Assoc: org.Assoc, BlockBytes: org.BlockBytes}
		if arena != nil {
			c := arena.cacheFor(ccfg, slot)
			slot++
			return c
		}
		return cache.MustNew(ccfg)
	}
	const missPenalty = 100

	// drive runs `instructions` data accesses through fn, which returns
	// (hit result, extra latency); it returns total cycles.
	type stepFn func(addr uint64, write bool, now uint64) (cache.AccessResult, uint64)
	drive := func(fn stepFn) uint64 {
		gen := trace.MustNew(w, seed)
		var ins trace.Instr
		now := uint64(0)
		for i := uint64(0); i < instructions; i++ {
			gen.Next(&ins)
			now++ // base CPI
			if !ins.HasMem {
				continue
			}
			res, extra := fn(ins.Addr, ins.Write, now)
			now += 2 + extra
			if !res.Hit {
				now += missPenalty
			}
		}
		return now
	}

	nblocks := float64(org.Blocks())

	// Baseline: every line leaks fully for the whole run.
	baseC := newCache()
	baseCycles := drive(func(a uint64, wr bool, now uint64) (cache.AccessResult, uint64) {
		return baseC.Access(a, wr), 0
	})
	baseLineCycles := float64(baseCycles) * nblocks

	var rows []LeakageRow
	add := func(name string, lineCycles, leakFactorAtV float64, cycles uint64, loses, tolerates bool) {
		rows = append(rows, LeakageRow{
			Technique:      name,
			LeakEnergyRel:  lineCycles * leakFactorAtV / baseLineCycles,
			ExtraCyclesPct: (float64(cycles)/float64(baseCycles) - 1) * 100,
			LosesState:     loses,
			ToleratesFault: tolerates,
		})
	}
	add("conventional @1.0V", baseLineCycles, 1, baseCycles, false, false)

	// Drowsy cache.
	dc := leakage.NewDrowsy(newCache(), leakage.DefaultDrowsyParams())
	drowsyCycles := drive(func(a uint64, wr bool, now uint64) (cache.AccessResult, uint64) {
		return dc.Access(a, wr, now)
	})
	add("drowsy [9]", dc.ActiveLineCycles(drowsyCycles), 1, drowsyCycles, false, false)

	// Cache decay / Gated-Vdd.
	gc := leakage.NewDecay(newCache(), leakage.DefaultDecayParams(), nil)
	decayCycles := drive(func(a uint64, wr bool, now uint64) (cache.AccessResult, uint64) {
		return gc.Access(a, wr, now), 0
	})
	add("gated-Vdd decay [18]", gc.ActiveLineCycles(decayCycles), 1, decayCycles, true, false)

	// SPCS: whole data array at VDD2, faulty blocks gated. The fault
	// model and voltage plan are pure derivations of the geometry, so
	// they come from the memo layer.
	plan, err := levelPlanFor(org)
	if err != nil {
		return nil, nil, err
	}
	v2 := plan.Levels.Volts(plan.SPCSLevel)
	var fmap *faultmap.Map
	if arena != nil {
		if arena.fmap == nil {
			arena.fmap = faultmap.NewMap(plan.Levels, org.Blocks())
		}
		arena.rng.Reseed(seed)
		core.PopulateMapMonteCarloInto(&arena.rng, plan, org.Blocks(), arena.fmap)
		fmap = arena.fmap
	} else {
		fmap = core.PopulateMapMonteCarlo(stats.NewRNG(seed), plan, org.Blocks())
	}
	spcsC := newCache()
	for s := 0; s < spcsC.Sets(); s++ {
		for w := 0; w < spcsC.Ways(); w++ {
			if fmap.FaultyAt(spcsC.BlockIndex(s, w), plan.SPCSLevel) {
				spcsC.SetFaulty(s, w, true)
			}
		}
	}
	spcsCycles := drive(func(a uint64, wr bool, now uint64) (cache.AccessResult, uint64) {
		return spcsC.Access(a, wr), 0
	})
	active := nblocks - float64(spcsC.FaultyCount())
	leakAtV2 := tech.LeakagePower(device.RVT, v2) / tech.LeakagePower(device.RVT, tech.VDDNom)
	add(fmt.Sprintf("SPCS @%.2fV (this paper)", v2),
		float64(spcsCycles)*active, leakAtV2, spcsCycles, false, true)

	return rows, LeakageTable(rows), nil
}

// LeakageTable renders the leakage-technique comparison from its rows.
func LeakageTable(rows []LeakageRow) *report.Table {
	t := report.NewTable("Leakage-reduction techniques on one L1 workload (data-array leakage, relative)",
		"Technique", "Leakage energy", "Exec overhead %", "Loses state?", "Fault-tolerant?")
	for _, r := range rows {
		t.AddRow(r.Technique,
			fmt.Sprintf("%.3f", r.LeakEnergyRel),
			fmt.Sprintf("%+.2f", r.ExtraCyclesPct),
			r.LosesState, r.ToleratesFault)
	}
	return t
}
