// Package expers implements one function per paper table/figure, shared
// by the cmd harnesses, the examples and the root benchmark suite. Each
// function returns structured data plus a ready-to-print report.Table so
// the same code regenerates the paper's rows/series everywhere.
package expers

import (
	"fmt"
	"math"

	"repro/internal/cacti"
	"repro/internal/device"
	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/sram"
)

// Analytical voltage sweep range (V): the studied window of the paper.
const (
	VLo = 0.30
	VHi = 1.00
)

// CacheSetup bundles the models for one cache organisation.
type CacheSetup struct {
	Org   cacti.Org
	Tech  device.Tech
	CM    *cacti.Model // baseline (no PCS overheads)
	CMPCS *cacti.Model // with fault map + power gates
	BER   sram.BERModel
	FM    *faultmodel.Model
}

// newCacheSetup builds the model stack for an organisation, using
// nLevels allowed VDD levels for fault-map sizing (3 in the paper).
// NewCacheSetup (memos.go) is the memoizing public entry point.
func newCacheSetup(org cacti.Org, nLevels int) (*CacheSetup, error) {
	tech := device.Tech45SOI()
	cm, err := cacti.New(org, tech, cacti.DefaultParams())
	if err != nil {
		return nil, err
	}
	ber := sram.NewWangCalhounBER()
	geom := faultmodel.Geometry{
		Sets:      org.Sets(),
		Ways:      org.Assoc,
		BlockBits: org.BlockBits(),
	}
	fm, err := faultmodel.New(geom, ber)
	if err != nil {
		return nil, err
	}
	fmBits := 0
	for 1<<fmBits < nLevels+1 {
		fmBits++
	}
	return &CacheSetup{
		Org:   org,
		Tech:  tech,
		CM:    cm,
		CMPCS: cm.WithPCS(fmBits),
		BER:   ber,
		FM:    fm,
	}, nil
}

// L1ConfigA returns the paper's Fig. 3 subject: the Config A L1 cache.
func L1ConfigA() cacti.Org {
	return cacti.Org{Name: "L1-A", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: 64, AddrBits: 40}
}

// L2ConfigA returns the Config A L2 organisation.
func L2ConfigA() cacti.Org {
	return cacti.Org{Name: "L2-A", SizeBytes: 2 << 20, Assoc: 8, BlockBytes: 64, AddrBits: 40, SerialTagData: true}
}

// L1ConfigB and L2ConfigB return the Config B organisations.
func L1ConfigB() cacti.Org {
	return cacti.Org{Name: "L1-B", SizeBytes: 256 << 10, Assoc: 8, BlockBytes: 64, AddrBits: 40}
}

// L2ConfigB returns the Config B L2 organisation.
func L2ConfigB() cacti.Org {
	return cacti.Org{Name: "L2-B", SizeBytes: 8 << 20, Assoc: 16, BlockBytes: 64, AddrBits: 40, SerialTagData: true}
}

// AllOrgs returns the four cache organisations of Table 2.
func AllOrgs() []cacti.Org {
	return []cacti.Org{L1ConfigA(), L2ConfigA(), L1ConfigB(), L2ConfigB()}
}

// --- FIG2: SRAM bit error rate vs VDD ---

// Fig2Point is one sample of the BER curve.
type Fig2Point struct {
	VDD float64
	BER float64
}

// fig2 computes Fig. 2 (see the memoizing Fig2 wrapper in memos.go).
func fig2() ([]Fig2Point, *report.Table) {
	ber := sram.NewWangCalhounBER()
	var pts []Fig2Point
	t := report.NewTable("Fig. 2 — SRAM bit error rate vs VDD (Wang–Calhoun-style model)",
		"VDD (V)", "BER")
	for _, v := range faultmodel.Grid(VLo, VHi) {
		p := Fig2Point{VDD: v, BER: ber.BER(v)}
		pts = append(pts, p)
		t.AddRow(fmt.Sprintf("%.2f", v), fmt.Sprintf("%.3e", p.BER))
	}
	return pts, t
}

// --- FIG3A: total static power vs effective capacity ---

// Fig3aPoint is one (capacity, power) sample of one scheme.
type Fig3aPoint struct {
	VDD      float64 // 0 for way gating (always nominal)
	Capacity float64
	PowerW   float64
}

// Fig3aData holds the three schemes' curves.
type Fig3aData struct {
	Proposed []Fig3aPoint
	FFTCache []Fig3aPoint
	WayGate  []Fig3aPoint
}

// fig3a computes Fig. 3a as a fixed-shape view over the registry-driven
// default selection (see Fig3aMechs in mechanisms.go; the memoizing
// Fig3a wrapper lives in memos.go).
func fig3a(org cacti.Org, nLowVDDs int) (Fig3aData, *report.Table, error) {
	sel, t, err := Fig3aMechs(org, nLowVDDs, nil)
	if err != nil {
		return Fig3aData{}, nil, err
	}
	d := Fig3aData{
		Proposed: sel.Curve("proposed").Points(),
		FFTCache: sel.Curve("fftcache").Points(),
	}
	for _, s := range sel.Steps {
		if s.Name != "waygate" {
			continue
		}
		for i := range s.Caps {
			d.WayGate = append(d.WayGate, Fig3aPoint{Capacity: s.Caps[i], PowerW: s.Watts[i]})
		}
	}
	return d, t, nil
}

// PowerAtCapacity interpolates a scheme's static power at a target
// effective capacity from its (capacity, power) curve. Curves are
// monotone in voltage; we scan for the bracketing pair.
func PowerAtCapacity(curve []Fig3aPoint, target float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	// Among all curve segments crossing the target capacity, take the
	// lowest interpolated power (schemes may hit a capacity at several
	// voltages; the operating point of interest is the cheapest).
	for i := 1; i < len(curve); i++ {
		a, b := curve[i-1], curve[i]
		lo, hi := a.Capacity, b.Capacity
		if (lo-target)*(hi-target) > 0 {
			continue
		}
		var p float64
		if hi == lo {
			p = math.Min(a.PowerW, b.PowerW)
		} else {
			f := (target - lo) / (hi - lo)
			p = a.PowerW + f*(b.PowerW-a.PowerW)
		}
		if p < best {
			best = p
			found = true
		}
	}
	return best, found
}

// Fig3aGapAt99 returns the proposed scheme's static-power advantage over
// FFT-Cache at the 99 % effective capacity point (the paper: 28.2 % with
// three VDD levels, 17.8 % with two).
func Fig3aGapAt99(org cacti.Org, nLowVDDs int) (gapFrac float64, err error) {
	d, _, err := Fig3a(org, nLowVDDs)
	if err != nil {
		return 0, err
	}
	pp, ok1 := PowerAtCapacity(d.Proposed, 0.99)
	pf, ok2 := PowerAtCapacity(d.FFTCache, 0.99)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("expers: 99%% capacity point not on curve")
	}
	return 1 - pp/pf, nil
}

// --- FIG3B: proportion of usable blocks vs VDD ---

// Fig3bRow is one voltage sample of the capacity comparison.
type Fig3bRow struct {
	VDD      float64
	Proposed float64
	FFTCache float64
}

// fig3b computes Fig. 3b as a fixed-shape view over the registry-driven
// default selection (see Fig3bMechs in mechanisms.go; the memoizing
// Fig3b wrapper lives in memos.go).
func fig3b(org cacti.Org) ([]Fig3bRow, *report.Table, error) {
	curves, t, err := Fig3bMechs(org, nil)
	if err != nil {
		return nil, nil, err
	}
	prop, fft := curveByName(curves, "proposed"), curveByName(curves, "fftcache")
	if prop == nil || fft == nil {
		return nil, nil, fmt.Errorf("expers: default mechanism set misses proposed/fftcache")
	}
	var rows []Fig3bRow
	for i, v := range prop.VDDs {
		rows = append(rows, Fig3bRow{VDD: v, Proposed: prop.Capacity[i], FFTCache: fft.Capacity[i]})
	}
	return rows, t, nil
}

// --- FIG3C: leakage breakdown vs VDD ---

// Fig3cRow is one voltage sample of the leakage decomposition.
type Fig3cRow struct {
	VDD             float64
	DataNoPeriphW   float64 // data array cells only
	DataWithPeriphW float64 // data cells + data periphery
	TagW            float64
	TotalW          float64
}

// fig3c computes Fig. 3c (see the memoizing Fig3c wrapper in memos.go).
func fig3c(org cacti.Org) ([]Fig3cRow, *report.Table, error) {
	cs, err := NewCacheSetup(org, 3)
	if err != nil {
		return nil, nil, err
	}
	var rows []Fig3cRow
	t := report.NewTable(
		fmt.Sprintf("Fig. 3c — leakage breakdown vs VDD (%s)", org.Name),
		"VDD (V)", "Data (no periph) mW", "Data mW", "Tag mW", "Total mW")
	for _, v := range faultmodel.Grid(VLo, VHi) {
		capP := cs.FM.ExpectedCapacity(v)
		p := cs.CMPCS.StaticPower(v, capP)
		r := Fig3cRow{
			VDD:             v,
			DataNoPeriphW:   p.DataCellsW,
			DataWithPeriphW: p.DataCellsW + p.DataPeripheryW,
			TagW:            p.TagW,
			TotalW:          p.TotalW,
		}
		rows = append(rows, r)
		t.AddRow(fmt.Sprintf("%.2f", v),
			fmt.Sprintf("%.3f", r.DataNoPeriphW*1e3),
			fmt.Sprintf("%.3f", r.DataWithPeriphW*1e3),
			fmt.Sprintf("%.3f", r.TagW*1e3),
			fmt.Sprintf("%.3f", r.TotalW*1e3))
	}
	return rows, t, nil
}

// --- FIG3D: yield vs VDD across schemes ---

// Fig3dRow is one voltage sample of the yield comparison.
type Fig3dRow struct {
	VDD          float64
	Conventional float64
	SECDED       float64
	DECTED       float64
	FFTCache     float64
	Proposed     float64
}

// fig3d computes Fig. 3d as a fixed-shape view over the registry-driven
// default selection (see Fig3dMechs in mechanisms.go; the memoizing
// Fig3d wrapper lives in memos.go).
func fig3d(org cacti.Org) ([]Fig3dRow, *report.Table, error) {
	curves, t, err := Fig3dMechs(org, nil)
	if err != nil {
		return nil, nil, err
	}
	byName := map[string]*MechCurve{}
	for _, c := range curves {
		byName[c.Name] = c
	}
	for _, want := range []string{"conventional", "secded", "dected", "fftcache", "proposed"} {
		if byName[want] == nil {
			return nil, nil, fmt.Errorf("expers: default mechanism set misses %q", want)
		}
	}
	var rows []Fig3dRow
	for i, v := range byName["proposed"].VDDs {
		rows = append(rows, Fig3dRow{
			VDD:          v,
			Conventional: byName["conventional"].Yield[i],
			SECDED:       byName["secded"].Yield[i],
			DECTED:       byName["dected"].Yield[i],
			FFTCache:     byName["fftcache"].Yield[i],
			Proposed:     byName["proposed"].Yield[i],
		})
	}
	return rows, t, nil
}

// MinVDDRow summarises each scheme's min-VDD at 99 % yield for one org.
type MinVDDRow struct {
	Scheme string
	MinVDD float64
	OK     bool
}

// minVDDs computes the min-VDD table for the registry's default
// selection (see MinVDDMechs in mechanisms.go; the memoizing MinVDDs
// wrapper lives in memos.go).
func minVDDs(org cacti.Org) ([]MinVDDRow, *report.Table, error) {
	return MinVDDMechs(org, nil)
}

// --- TAB-AREA: area overheads ---

// AreaRow reports one organisation's PCS area overhead.
type AreaRow struct {
	Org              string
	BaselineMM2      float64
	FaultMapMM2      float64
	PowerGateMM2     float64
	OverheadFraction float64
}

// areaOverheads computes the area-overhead table over a set of
// organisations (see the memoizing AreaOverheads/AreaOverheadsFor
// wrappers in memos.go).
func areaOverheads(orgs []cacti.Org) ([]AreaRow, *report.Table, error) {
	var rows []AreaRow
	t := report.NewTable("Area overheads of the PCS mechanism (Sec. 4.2)",
		"Cache", "Baseline mm²", "Fault map mm²", "Power gates mm²", "Overhead %")
	for _, org := range orgs {
		cs, err := NewCacheSetup(org, 3)
		if err != nil {
			return nil, nil, err
		}
		a := cs.CMPCS.Area()
		r := AreaRow{
			Org:              org.Name,
			BaselineMM2:      a.DataMM2 + a.TagMM2,
			FaultMapMM2:      a.FaultMapMM2,
			PowerGateMM2:     a.PowerGateMM2,
			OverheadFraction: a.OverheadFraction(),
		}
		rows = append(rows, r)
		t.AddRow(org.Name, fmt.Sprintf("%.3f", r.BaselineMM2),
			fmt.Sprintf("%.4f", r.FaultMapMM2), fmt.Sprintf("%.4f", r.PowerGateMM2),
			fmt.Sprintf("%.2f", r.OverheadFraction*100))
	}
	return rows, t, nil
}

// --- TAB-MINVDD: the design-time voltage plan ---

// VDDPlanRow is the computed voltage plan for one cache.
type VDDPlanRow struct {
	Org                  string
	VDD1, VDD2, VDD3     float64
	CapacityAtVDD1       float64
	DelayDegradationVDD1 float64
}

// vddPlans computes the voltage-plan table (see the memoizing VDDPlans
// wrapper in memos.go).
func vddPlans() ([]VDDPlanRow, *report.Table, error) {
	var rows []VDDPlanRow
	t := report.NewTable("Computed VDD levels (99% capacity VDD2, 99% yield VDD1)",
		"Cache", "VDD1 (V)", "VDD2 (V)", "VDD3 (V)", "Capacity@VDD1", "Delay@VDD1 (+%)")
	for _, org := range AllOrgs() {
		cs, err := NewCacheSetup(org, 3)
		if err != nil {
			return nil, nil, err
		}
		capFloor := faultmodel.VDD1CapacityFloor(org.Assoc)
		v1, v2, v3, err := cs.FM.VDDLevels(cs.Tech.VDDNom, cs.Tech.VDDMin, capFloor)
		if err != nil {
			return nil, nil, err
		}
		r := VDDPlanRow{
			Org: org.Name, VDD1: v1, VDD2: v2, VDD3: v3,
			CapacityAtVDD1:       cs.FM.ExpectedCapacity(v1),
			DelayDegradationVDD1: cs.CMPCS.DelayDegradation(v1),
		}
		rows = append(rows, r)
		t.AddRow(org.Name, fmt.Sprintf("%.2f", v1), fmt.Sprintf("%.2f", v2), fmt.Sprintf("%.2f", v3),
			fmt.Sprintf("%.4f", r.CapacityAtVDD1), fmt.Sprintf("%.1f", r.DelayDegradationVDD1*100))
	}
	return rows, t, nil
}
