package expers

import (
	"math"
	"strings"
	"testing"
)

func TestFig2Shape(t *testing.T) {
	pts, tbl := Fig2()
	if len(pts) != 71 {
		t.Fatalf("%d points", len(pts))
	}
	// Monotone non-increasing BER with voltage; paper magnitudes.
	for i := 1; i < len(pts); i++ {
		if pts[i].BER > pts[i-1].BER+1e-18 {
			t.Fatalf("BER rose with voltage at %v", pts[i].VDD)
		}
	}
	if pts[len(pts)-1].BER > 1e-8 {
		t.Errorf("BER at 1.0 V = %v", pts[len(pts)-1].BER)
	}
	if pts[0].BER < 1e-3 {
		t.Errorf("BER at 0.3 V = %v", pts[0].BER)
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFig3aProposedDominates(t *testing.T) {
	d, tbl, err := Fig3a(L1ConfigA(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(d.Proposed) != 71 || len(d.WayGate) != 5 {
		t.Fatal("curve shapes")
	}
	// At every achievable capacity >= 50%, proposed must beat both
	// baselines (the paper's headline Fig. 3a claim).
	for _, target := range []float64{0.5, 0.7, 0.9, 0.95, 0.99, 0.999} {
		pp, ok1 := PowerAtCapacity(d.Proposed, target)
		pf, ok2 := PowerAtCapacity(d.FFTCache, target)
		pw, ok3 := PowerAtCapacity(d.WayGate, target)
		if !ok1 {
			t.Fatalf("proposed curve misses capacity %v", target)
		}
		if ok2 && pp >= pf {
			t.Errorf("at %v capacity: proposed %v >= FFT %v", target, pp, pf)
		}
		if ok3 && pp >= pw {
			t.Errorf("at %v capacity: proposed %v >= way gating %v", target, pp, pw)
		}
	}
}

func TestFig3aGapMatchesPaper(t *testing.T) {
	// Paper: 28.2% lower static power than FFT-Cache at 99% capacity
	// with 3 VDD levels; 17.8% with 2 levels.
	gap3, err := Fig3aGapAt99(L1ConfigA(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if gap3 < 0.22 || gap3 > 0.34 {
		t.Errorf("3-level gap %.1f%%, paper reports 28.2%%", gap3*100)
	}
	gap2, err := Fig3aGapAt99(L1ConfigA(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if gap2 < 0.13 || gap2 > 0.23 {
		t.Errorf("2-level gap %.1f%%, paper reports 17.8%%", gap2*100)
	}
	if gap2 >= gap3 {
		t.Errorf("gap should grow with levels: %v vs %v", gap2, gap3)
	}
}

func TestFig3bFFTDominates(t *testing.T) {
	rows, _, err := Fig3b(L1ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.VDD < 0.42 {
			continue // below FFT's saturation cliff
		}
		if r.FFTCache < r.Proposed-1e-9 {
			t.Errorf("FFT capacity below proposed at %v V", r.VDD)
		}
	}
}

func TestFig3cDecomposition(t *testing.T) {
	rows, _, err := Fig3c(L1ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DataNoPeriphW > r.DataWithPeriphW || r.DataWithPeriphW > r.TotalW {
			t.Fatalf("nesting violated at %v V: %+v", r.VDD, r)
		}
		if r.TagW <= 0 || r.TotalW <= 0 {
			t.Fatalf("non-positive components at %v V", r.VDD)
		}
	}
	// Leakage falls as voltage falls (cells scale + more gating).
	if rows[0].TotalW >= rows[len(rows)-1].TotalW {
		t.Error("total leakage did not fall at low voltage")
	}
}

func TestFig3dOrdering(t *testing.T) {
	rows, _, err := Fig3d(L1ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Conventional is always the weakest; SECDED <= DECTED.
		if r.Conventional > r.SECDED+1e-9 || r.SECDED > r.DECTED+1e-9 {
			t.Fatalf("ECC ordering violated at %v V", r.VDD)
		}
		// Proposed beats SECDED throughout the operating region (the
		// min-VDD comparison lives in TestMinVDDsOrdering; far below
		// both schemes' min-VDD the yield curves may cross).
		if r.VDD >= 0.50 && r.Proposed < r.SECDED-1e-9 {
			t.Fatalf("proposed below SECDED at %v V", r.VDD)
		}
		for _, y := range []float64{r.Conventional, r.SECDED, r.DECTED, r.FFTCache, r.Proposed} {
			if y < 0 || y > 1 {
				t.Fatalf("yield out of range at %v V", r.VDD)
			}
		}
	}
}

func TestMinVDDsOrdering(t *testing.T) {
	rows, _, err := MinVDDs(L1ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if !r.OK {
			t.Fatalf("%s min VDD not found", r.Scheme)
		}
		byName[r.Scheme] = r.MinVDD
	}
	// Paper Fig. 3d: conventional worst; proposed better than SECDED;
	// DECTED slightly better than proposed at this low associativity;
	// FFT-Cache better than proposed.
	if !(byName["Proposed"] < byName["SECDED"] && byName["SECDED"] < byName["Conventional"]) {
		t.Errorf("ordering: %+v", byName)
	}
	if byName["DECTED"] > byName["Proposed"] {
		t.Errorf("DECTED %v above proposed %v", byName["DECTED"], byName["Proposed"])
	}
	if byName["FFT-Cache"] >= byName["Proposed"] {
		t.Errorf("FFT %v not below proposed %v", byName["FFT-Cache"], byName["Proposed"])
	}
}

func TestAreaOverheadsInPaperRange(t *testing.T) {
	rows, _, err := AreaOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Paper: total area overhead 2-5%.
		if r.OverheadFraction < 0.02 || r.OverheadFraction > 0.05 {
			t.Errorf("%s overhead %.1f%% outside 2-5%%", r.Org, r.OverheadFraction*100)
		}
		if r.PowerGateMM2 <= 0 || r.FaultMapMM2 <= 0 {
			t.Errorf("%s zero overhead component", r.Org)
		}
	}
}

func TestVDDPlans(t *testing.T) {
	rows, _, err := VDDPlans()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.VDD1 <= r.VDD2 && r.VDD2 < r.VDD3) {
			t.Errorf("%s levels unordered: %v %v %v", r.Org, r.VDD1, r.VDD2, r.VDD3)
		}
		// Paper: delay degradation ~15% worst case at min VDD.
		if r.DelayDegradationVDD1 > 0.20 {
			t.Errorf("%s delay degradation %v", r.Org, r.DelayDegradationVDD1)
		}
		if r.CapacityAtVDD1 < 0.89 {
			t.Errorf("%s capacity at VDD1 %v", r.Org, r.CapacityAtVDD1)
		}
	}
	// Config B (higher associativity) reaches VDD1 at or below Config A.
	if rows[3].VDD1 > rows[1].VDD1 { // L2-B vs L2-A
		t.Errorf("L2-B VDD1 %v above L2-A %v", rows[3].VDD1, rows[1].VDD1)
	}
}

func TestPowerAtCapacity(t *testing.T) {
	curve := []Fig3aPoint{
		{Capacity: 0.5, PowerW: 1},
		{Capacity: 0.9, PowerW: 2},
		{Capacity: 1.0, PowerW: 4},
	}
	p, ok := PowerAtCapacity(curve, 0.95)
	if !ok || math.Abs(p-3) > 1e-12 {
		t.Errorf("interpolated power %v ok=%v, want 3", p, ok)
	}
	if _, ok := PowerAtCapacity(curve, 0.2); ok {
		t.Error("off-curve capacity found")
	}
	// Exact hit on a vertex.
	p, ok = PowerAtCapacity(curve, 0.9)
	if !ok || p != 2 {
		t.Errorf("vertex power %v", p)
	}
}

func TestNewCacheSetupFMBits(t *testing.T) {
	cs, err := NewCacheSetup(L1ConfigA(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CMPCS.FMBitsPerBlock != 3 { // 2 FM bits + faulty bit
		t.Errorf("FM bits per block %d", cs.CMPCS.FMBitsPerBlock)
	}
	if cs.CM.PCS {
		t.Error("baseline model has PCS set")
	}
}
