package expers

import (
	"fmt"
	"math"

	"repro/internal/faultmodel"
	"repro/internal/report"
	"repro/internal/sram"
)

// CellRow compares one bit-cell design on the L1-A geometry: the min-VDD
// it reaches without any fault tolerance, with the PCS mechanism on top,
// and its area/leakage cost — quantifying the paper's Sec. 2 argument
// that 6T + PCS beats hardened cells on cost.
type CellRow struct {
	Cell              sram.CellType
	AreaFactor        float64
	LeakFactor        float64
	MinVDDNoFT        float64 // 99% yield with zero tolerated faults
	MinVDDWithPCS     float64 // 99% yield under the set constraint
	SPCSVoltage       float64 // the 99%-capacity point
	StaticPowerAtSPCS float64 // relative to 6T nominal (leakage factor applied)
}

// CellGeometry is the canonical bit-cell study geometry: the Config-A
// L1 cache (64 KB, 4-way, 64 B blocks).
func CellGeometry() faultmodel.Geometry {
	return faultmodel.Geometry{Sets: 256, Ways: 4, BlockBits: 512}
}

// cellComparison computes the bit-cell comparison on a geometry (see
// the memoizing CellComparison/CellComparisonFor wrappers in memos.go).
func cellComparison(geom faultmodel.Geometry) ([]CellRow, *report.Table, error) {
	base := sram.NewWangCalhounBER()
	var rows []CellRow
	for _, ct := range []sram.CellType{sram.Cell6T, sram.Cell8T, sram.Cell10T} {
		p := sram.Cells(ct)
		ber := sram.ForCell(base, ct)
		fm, err := faultmodel.New(geom, ber)
		if err != nil {
			return nil, nil, err
		}
		row := CellRow{Cell: ct, AreaFactor: p.AreaFactor, LeakFactor: p.LeakageFactor}
		// No fault tolerance: the whole array must be clean.
		nbits := geom.Blocks() * geom.BlockBits
		for _, v := range faultmodel.Grid(VLo, VHi) {
			if pf := faultmodel.PFailBits(ber.BER(v), nbits); 1-pf >= 0.99 {
				row.MinVDDNoFT = v
				break
			}
		}
		if v, ok := fm.MinVDDForYield(0.99, VLo, VHi); ok {
			row.MinVDDWithPCS = v
		}
		if v, ok := fm.MinVDDForCapacity(0.99, 0.99, VLo, VHi); ok {
			row.SPCSVoltage = v
		}
		// Relative static power at the SPCS point vs a 6T cell at 1.0 V:
		// leakage factor x exponential VDD dependence x V.
		if row.SPCSVoltage > 0 {
			v := row.SPCSVoltage
			row.StaticPowerAtSPCS = p.LeakageFactor * v * math.Pow(10, 1.5*(v-1.0))
		}
		rows = append(rows, row)
	}
	return rows, CellTable(rows), nil
}

// CellTable renders the bit-cell comparison from its rows.
func CellTable(rows []CellRow) *report.Table {
	t := report.NewTable("Bit-cell designs vs PCS (L1 Config A, 99% yield)",
		"Cell", "Area x", "Leak x", "MinVDD no-FT", "MinVDD +PCS", "SPCS VDD", "Rel. SPCS leak")
	for _, row := range rows {
		t.AddRow(row.Cell.String(),
			fmt.Sprintf("%.2f", row.AreaFactor),
			fmt.Sprintf("%.2f", row.LeakFactor),
			fmtV(row.MinVDDNoFT), fmtV(row.MinVDDWithPCS), fmtV(row.SPCSVoltage),
			fmt.Sprintf("%.3f", row.StaticPowerAtSPCS))
	}
	return t
}

func fmtV(v float64) string {
	if v == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}
