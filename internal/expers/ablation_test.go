package expers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpusim"
)

func TestAblationVariantsCoverEverything(t *testing.T) {
	vs := AblationVariants()
	if len(vs) != 6 {
		t.Fatalf("%d variants", len(vs))
	}
	if vs[0].Name != "full policy" || vs[0].Flags != (core.AblationFlags{}) {
		t.Error("first variant must be the undisabled policy")
	}
	last := vs[len(vs)-1].Flags
	if !(last.NoHoldLatch && last.NoBadLevelMemory &&
		last.NoRefillClassification && last.NoSkipReset) {
		t.Error("bare variant does not disable everything")
	}
}

func TestAblationRuns(t *testing.T) {
	opts := cpusim.RunOptions{WarmupInstr: 50_000, SimInstr: 200_000, Seed: 1}
	rows, tbl, err := Ablation([]string{"hmmer.s"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(rows) != len(AblationVariants()) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SavingPct < 20 || r.SavingPct > 80 {
			t.Errorf("%s saving %v implausible", r.Variant, r.SavingPct)
		}
	}
}

func TestAblationUnknownWorkload(t *testing.T) {
	if _, _, err := Ablation([]string{"nope"}, cpusim.DefaultRunOptions()); err == nil {
		t.Error("unknown workload accepted")
	}
}
