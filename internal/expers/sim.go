package expers

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig4Row holds one benchmark's results for all three modes under one
// system configuration — the raw material of Fig. 4's eight panels.
type Fig4Row struct {
	Workload string
	Baseline cpusim.Result
	SPCS     cpusim.Result
	DPCS     cpusim.Result
}

// ExecOverhead returns a mode's execution-time overhead vs baseline.
func (r Fig4Row) ExecOverhead(m core.Mode) float64 {
	base := float64(r.Baseline.Cycles)
	switch m {
	case core.SPCS:
		return float64(r.SPCS.Cycles)/base - 1
	case core.DPCS:
		return float64(r.DPCS.Cycles)/base - 1
	default:
		return 0
	}
}

// EnergySaving returns a mode's total-cache-energy saving vs baseline.
func (r Fig4Row) EnergySaving(m core.Mode) float64 {
	switch m {
	case core.SPCS:
		return 1 - r.SPCS.TotalCacheEnergyJ/r.Baseline.TotalCacheEnergyJ
	case core.DPCS:
		return 1 - r.DPCS.TotalCacheEnergyJ/r.Baseline.TotalCacheEnergyJ
	default:
		return 0
	}
}

// Fig4Data is the full simulation result set for one configuration.
type Fig4Data struct {
	Config string
	Rows   []Fig4Row
}

// Fig4 runs the 16-benchmark suite under baseline, SPCS and DPCS for the
// given configuration. Progress lines go to progress when non-nil.
func Fig4(cfg cpusim.SystemConfig, opts cpusim.RunOptions, progress io.Writer) (Fig4Data, error) {
	data := Fig4Data{Config: cfg.Name}
	for _, w := range trace.Suite() {
		row := Fig4Row{Workload: w.Name}
		for _, mode := range []core.Mode{core.Baseline, core.SPCS, core.DPCS} {
			res, err := cpusim.Run(cfg, mode, w, opts)
			if err != nil {
				return Fig4Data{}, fmt.Errorf("expers: %s/%s/%v: %w", cfg.Name, w.Name, mode, err)
			}
			switch mode {
			case core.Baseline:
				row.Baseline = res
			case core.SPCS:
				row.SPCS = res
			case core.DPCS:
				row.DPCS = res
			}
			if progress != nil {
				fmt.Fprintf(progress, "  %s\n", res)
			}
		}
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// Fig4CellParams parameterise one "fig4-cell" job: a single
// workload × mode cell of the Fig. 4 grid. Unlike CPUSimParams (which
// names a canned config), the cell embeds its full SystemConfig, so the
// parameter document completely determines the simulation — the
// property that makes cells content-addressable in the result store.
type Fig4CellParams struct {
	Config      cpusim.SystemConfig `json:"config"`
	Mode        string              `json:"mode"`
	Bench       string              `json:"bench"`
	WarmupInstr uint64              `json:"warmup_instr,omitempty"`
	SimInstr    uint64              `json:"sim_instr"`
	// Seed pins the run when non-zero; zero uses the derived job seed.
	Seed uint64 `json:"seed,omitempty"`
}

// ApplyDefaults is a no-op: fig4-cell documents are machine-written by
// Fig4Grid and fully explicit, including the embedded SystemConfig.
func (p *Fig4CellParams) ApplyDefaults() {}

// Validate checks the cell document is runnable.
func (p *Fig4CellParams) Validate() error {
	if _, err := modeByName(p.Mode); err != nil {
		return err
	}
	if _, ok := trace.ByName(p.Bench); !ok {
		return fmt.Errorf("expers: unknown benchmark %q (known: %v)", p.Bench, trace.Names())
	}
	if p.SimInstr == 0 {
		return fmt.Errorf("expers: fig4-cell job needs sim_instr > 0")
	}
	return nil
}

// runFig4CellJob executes one grid cell, returning the full
// cpusim.Result (the power tables need per-cache detail CPUSimOutput
// does not carry).
func runFig4CellJob(ctx context.Context, seed uint64, params json.RawMessage) (any, error) {
	var p Fig4CellParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	mode, err := modeByName(p.Mode)
	if err != nil {
		return nil, err
	}
	w, ok := trace.ByName(p.Bench)
	if !ok {
		return nil, fmt.Errorf("expers: unknown benchmark %q (known: %v)", p.Bench, trace.Names())
	}
	if p.SimInstr == 0 {
		return nil, fmt.Errorf("expers: fig4-cell job needs sim_instr > 0")
	}
	if p.Seed != 0 {
		seed = p.Seed
	}
	return cpusim.RunContext(ctx, p.Config, mode, w, cpusim.RunOptions{
		WarmupInstr: p.WarmupInstr,
		SimInstr:    p.SimInstr,
		Seed:        seed,
		// Warm path: reuse this worker's simulation arena (nil when cold).
		Arena: arenaFromContext(ctx).simArena(),
	})
}

// GridOptions configure one Fig4Grid execution.
type GridOptions struct {
	// Workers sizes the pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per finished cell in
	// completion order.
	Progress io.Writer
	// Cache, when non-nil, memoizes cells content-addressed by their
	// parameter document, seed and CodeVersion.
	Cache runner.ResultCache
	// CodeVersion is the build identity for cache keys (version.String).
	CodeVersion string
	// ArtifactDir, when non-empty, archives the campaign there
	// (manifest, timeline, results, ledger — see internal/runner).
	ArtifactDir string
	// TraceSpans records per-cell phase spans to <ArtifactDir>/spans.jsonl
	// for `pcs report -perfetto` and `pcs report -top`.
	TraceSpans bool
}

// GridStats is the cell accounting of one grid execution, for the
// CLI's end-of-run summary line.
type GridStats struct {
	Cells    int
	Cached   int
	Computed int
	Failed   int
}

// Fig4Grid runs the full-suite Fig. 4 grid through the campaign
// runner's registered "fig4-cell" kind, optionally memoized through a
// content-addressed result store: a repeated invocation with the same
// config, window and seed serves every cell from the cache and still
// assembles byte-identical Fig4Data.
func Fig4Grid(ctx context.Context, cfg cpusim.SystemConfig, opts cpusim.RunOptions, gopts GridOptions) (Fig4Data, GridStats, error) {
	return Fig4GridWorkloads(ctx, cfg, trace.Suite(), opts, gopts)
}

// Fig4GridWorkloads is Fig4Grid over an explicit workload list.
//
// Every cell is an independent simulation pinned to opts.Seed, exactly
// as Fig4's serial loop runs it — cpusim's concurrency contract permits
// one System per goroutine — so the assembled Fig4Data is
// byte-identical to Fig4's regardless of worker count, completion
// order, or cache hits; only wall-clock time changes.
func Fig4GridWorkloads(ctx context.Context, cfg cpusim.SystemConfig, workloads []trace.Workload, opts cpusim.RunOptions, gopts GridOptions) (Fig4Data, GridStats, error) {
	modes := []core.Mode{core.Baseline, core.SPCS, core.DPCS}
	jobs := make([]runner.Spec, 0, len(workloads)*len(modes))
	for _, w := range workloads {
		for _, m := range modes {
			params, err := json.Marshal(Fig4CellParams{
				Config:      cfg,
				Mode:        m.String(),
				Bench:       w.Name,
				WarmupInstr: opts.WarmupInstr,
				SimInstr:    opts.SimInstr,
				Seed:        opts.Seed,
			})
			if err != nil {
				return Fig4Data{}, GridStats{}, err
			}
			jobs = append(jobs, runner.Spec{
				Kind:   "fig4-cell",
				Name:   fmt.Sprintf("%s/%s/%v", cfg.Name, w.Name, m),
				Params: params,
			})
		}
	}
	ropts := runner.Options{
		Workers:     gopts.Workers,
		Cache:       gopts.Cache,
		CodeVersion: gopts.CodeVersion,
		ArtifactDir: gopts.ArtifactDir,
		TraceSpans:  gopts.TraceSpans,
	}
	if gopts.Progress != nil {
		ropts.OnResult = func(r runner.JobResult) {
			if r.Status == runner.StatusDone {
				fmt.Fprintf(gopts.Progress, "  %s\n", r.Output.(cpusim.Result))
			}
		}
	}
	cres, err := runner.Run(ctx, NewCampaignRegistry(),
		runner.Campaign{Name: "fig4-" + cfg.Name, Seed: opts.Seed, Jobs: jobs}, ropts)
	if err != nil {
		return Fig4Data{}, GridStats{}, err
	}
	stats := GridStats{
		Cells:    len(jobs),
		Cached:   cres.Cached,
		Computed: cres.Done - cres.Cached,
		Failed:   cres.Failed,
	}
	for _, r := range cres.Results {
		if r.Status != runner.StatusDone {
			return Fig4Data{}, stats, fmt.Errorf("expers: %s: %s", r.Name, r.Error)
		}
	}

	data := Fig4Data{Config: cfg.Name}
	for i, w := range workloads {
		data.Rows = append(data.Rows, Fig4Row{
			Workload: w.Name,
			Baseline: cres.Results[i*len(modes)+0].Output.(cpusim.Result),
			SPCS:     cres.Results[i*len(modes)+1].Output.(cpusim.Result),
			DPCS:     cres.Results[i*len(modes)+2].Output.(cpusim.Result),
		})
	}
	return data, stats, nil
}

// Fig4Parallel runs the same workload×mode grid as Fig4, fanned out
// over the worker pool without caching; see Fig4Grid for the memoized
// form.
func Fig4Parallel(ctx context.Context, cfg cpusim.SystemConfig, opts cpusim.RunOptions, workers int, progress io.Writer) (Fig4Data, error) {
	return Fig4ParallelWorkloads(ctx, cfg, trace.Suite(), opts, workers, progress)
}

// Fig4ParallelWorkloads is Fig4Parallel over an explicit workload list;
// benchmarks use it to run representative subsets of the suite.
func Fig4ParallelWorkloads(ctx context.Context, cfg cpusim.SystemConfig, workloads []trace.Workload, opts cpusim.RunOptions, workers int, progress io.Writer) (Fig4Data, error) {
	data, _, err := Fig4GridWorkloads(ctx, cfg, workloads, opts, GridOptions{Workers: workers, Progress: progress})
	return data, err
}

// Summary aggregates a configuration's Fig. 4 data into the paper's
// headline numbers.
type Summary struct {
	Config string
	// Mean total-cache-energy savings vs baseline.
	MeanSavingSPCS, MeanSavingDPCS float64
	// Worst-case (max) execution time overheads.
	MaxOverheadSPCS, MaxOverheadDPCS float64
	// Mean DPCS energy reduction relative to SPCS.
	MeanDPCSvsSPCS float64
}

// Summarise reduces Fig. 4 data to its headline numbers.
func Summarise(d Fig4Data) Summary {
	s := Summary{Config: d.Config}
	var savS, savD, relDS []float64
	for _, r := range d.Rows {
		savS = append(savS, r.EnergySaving(core.SPCS))
		savD = append(savD, r.EnergySaving(core.DPCS))
		relDS = append(relDS, 1-r.DPCS.TotalCacheEnergyJ/r.SPCS.TotalCacheEnergyJ)
		if ov := r.ExecOverhead(core.SPCS); ov > s.MaxOverheadSPCS {
			s.MaxOverheadSPCS = ov
		}
		if ov := r.ExecOverhead(core.DPCS); ov > s.MaxOverheadDPCS {
			s.MaxOverheadDPCS = ov
		}
	}
	s.MeanSavingSPCS = stats.Mean(savS)
	s.MeanSavingDPCS = stats.Mean(savD)
	s.MeanDPCSvsSPCS = stats.Mean(relDS)
	return s
}

// Fig4PowerTable renders the per-benchmark cache power panels (Fig. 4a–d)
// for the chosen cache level ("L1" merges L1I+L1D as the paper plots a
// single L1 bar; "L2" is the unified L2).
func Fig4PowerTable(d Fig4Data, level string) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. 4 — %s cache power (mW), Config %s", level, d.Config),
		"Benchmark", "Baseline", "SPCS", "DPCS", "SPCS sav%", "DPCS sav%")
	pick := func(r cpusim.Result) float64 {
		if level == "L2" {
			return r.L2.AvgPowerW
		}
		return r.L1I.AvgPowerW + r.L1D.AvgPowerW
	}
	for _, row := range d.Rows {
		b, sp, dp := pick(row.Baseline), pick(row.SPCS), pick(row.DPCS)
		t.AddRow(row.Workload,
			fmt.Sprintf("%.2f", b*1e3), fmt.Sprintf("%.2f", sp*1e3), fmt.Sprintf("%.2f", dp*1e3),
			fmt.Sprintf("%.1f", (1-sp/b)*100), fmt.Sprintf("%.1f", (1-dp/b)*100))
	}
	return t
}

// Fig4OverheadTable renders the execution-time overhead panels (4e–f).
func Fig4OverheadTable(d Fig4Data) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. 4 — execution time overhead (%%), Config %s", d.Config),
		"Benchmark", "SPCS %", "DPCS %")
	for _, row := range d.Rows {
		t.AddRow(row.Workload,
			fmt.Sprintf("%.2f", row.ExecOverhead(core.SPCS)*100),
			fmt.Sprintf("%.2f", row.ExecOverhead(core.DPCS)*100))
	}
	return t
}

// Fig4EnergyTable renders the normalised total cache energy panels
// (4g–h) plus per-benchmark savings.
func Fig4EnergyTable(d Fig4Data) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. 4 — total cache energy (normalised), Config %s", d.Config),
		"Benchmark", "Baseline", "SPCS", "DPCS", "SPCS sav%", "DPCS sav%")
	for _, row := range d.Rows {
		b := row.Baseline.TotalCacheEnergyJ
		t.AddRow(row.Workload, "1.000",
			fmt.Sprintf("%.3f", row.SPCS.TotalCacheEnergyJ/b),
			fmt.Sprintf("%.3f", row.DPCS.TotalCacheEnergyJ/b),
			fmt.Sprintf("%.1f", row.EnergySaving(core.SPCS)*100),
			fmt.Sprintf("%.1f", row.EnergySaving(core.DPCS)*100))
	}
	return t
}

// SummaryTable renders the headline numbers.
func SummaryTable(s Summary) *report.Table {
	t := report.NewTable(fmt.Sprintf("Headline summary, Config %s", s.Config), "Metric", "Value")
	t.AddRow("Mean SPCS energy saving", fmt.Sprintf("%.1f %%", s.MeanSavingSPCS*100))
	t.AddRow("Mean DPCS energy saving", fmt.Sprintf("%.1f %%", s.MeanSavingDPCS*100))
	t.AddRow("Mean DPCS saving vs SPCS", fmt.Sprintf("%.1f %%", s.MeanDPCSvsSPCS*100))
	t.AddRow("Max SPCS exec overhead", fmt.Sprintf("%.2f %%", s.MaxOverheadSPCS*100))
	t.AddRow("Max DPCS exec overhead", fmt.Sprintf("%.2f %%", s.MaxOverheadDPCS*100))
	return t
}
