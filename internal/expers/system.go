package expers

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/report"
)

// SystemModel extends cache-only accounting to system-wide energy — the
// paper's future-work item "an evaluation of system-wide power and
// energy impacts". The CPU core burns power for the whole runtime
// (so policy-induced slowdown costs core energy, partially offsetting
// cache savings) and every DRAM access costs fixed energy (so extra
// misses cost DRAM energy too).
type SystemModel struct {
	// CorePowerW is the CPU core's (non-cache) average power draw.
	CorePowerW float64
	// DRAMAccessNJ is the energy per DRAM access (activation + burst).
	DRAMAccessNJ float64
	// DRAMIdleW is the DRAM background power.
	DRAMIdleW float64
}

// DefaultSystemModel returns a 45 nm-era single-core budget: ~1 W core,
// ~20 nJ per DRAM access, ~150 mW DRAM background.
func DefaultSystemModel() SystemModel {
	return SystemModel{CorePowerW: 1.0, DRAMAccessNJ: 20, DRAMIdleW: 0.15}
}

// SystemEnergyJ computes the run's total system energy: caches + core +
// DRAM.
func (m SystemModel) SystemEnergyJ(r cpusim.Result) float64 {
	dramAccesses := float64(r.L2.Stats.Misses + r.L2.Stats.Writebacks)
	return r.TotalCacheEnergyJ +
		m.CorePowerW*r.Seconds +
		m.DRAMIdleW*r.Seconds +
		dramAccesses*m.DRAMAccessNJ*1e-9
}

// SystemRow is one benchmark's system-wide comparison.
type SystemRow struct {
	Workload            string
	CacheShareOfSystem  float64 // baseline caches / baseline system
	CacheSavingSPCSPct  float64
	SystemSavingSPCSPct float64
	CacheSavingDPCSPct  float64
	SystemSavingDPCSPct float64
}

// SystemWide converts Fig. 4 data into system-level savings under the
// given model. The expected shape: system-level savings are the cache
// savings scaled by the caches' share of system energy, minus the energy
// cost of any runtime increase — Amdahl's Law applied one level up,
// exactly the caveat the paper raises about over-celebrating min-VDD.
func SystemWide(d Fig4Data, m SystemModel) ([]SystemRow, *report.Table) {
	var rows []SystemRow
	t := report.NewTable(
		fmt.Sprintf("System-wide energy impact, Config %s (core %.1f W, DRAM %.0f nJ/access)",
			d.Config, m.CorePowerW, m.DRAMAccessNJ),
		"Benchmark", "Cache share %", "SPCS cache %", "SPCS system %", "DPCS cache %", "DPCS system %")
	for _, r := range d.Rows {
		baseSys := m.SystemEnergyJ(r.Baseline)
		row := SystemRow{
			Workload:            r.Workload,
			CacheShareOfSystem:  r.Baseline.TotalCacheEnergyJ / baseSys,
			CacheSavingSPCSPct:  r.EnergySaving(core.SPCS) * 100,
			SystemSavingSPCSPct: (1 - m.SystemEnergyJ(r.SPCS)/baseSys) * 100,
			CacheSavingDPCSPct:  r.EnergySaving(core.DPCS) * 100,
			SystemSavingDPCSPct: (1 - m.SystemEnergyJ(r.DPCS)/baseSys) * 100,
		}
		rows = append(rows, row)
		t.AddRow(r.Workload,
			fmt.Sprintf("%.1f", row.CacheShareOfSystem*100),
			fmt.Sprintf("%.1f", row.CacheSavingSPCSPct),
			fmt.Sprintf("%.1f", row.SystemSavingSPCSPct),
			fmt.Sprintf("%.1f", row.CacheSavingDPCSPct),
			fmt.Sprintf("%.1f", row.SystemSavingDPCSPct))
	}
	return rows, t
}
