package expers

import (
	"testing"

	"repro/internal/cpusim"
)

func TestSystemEnergyComponents(t *testing.T) {
	m := DefaultSystemModel()
	r := cpusim.Result{Seconds: 0.001, TotalCacheEnergyJ: 0.0005}
	r.L2.Stats.Misses = 1000
	r.L2.Stats.Writebacks = 500
	got := m.SystemEnergyJ(r)
	want := 0.0005 + 1.0*0.001 + 0.15*0.001 + 1500*20e-9
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("system energy %v, want %v", got, want)
	}
}

func TestSystemWideSavingsSmallerThanCacheSavings(t *testing.T) {
	d := miniFig4(t)
	rows, tbl := SystemWide(d, DefaultSystemModel())
	if tbl == nil || len(rows) != len(d.Rows) {
		t.Fatal("row count")
	}
	for _, r := range rows {
		// Amdahl: system saving can't exceed the cache share times the
		// cache saving (plus epsilon for DRAM second-order effects).
		bound := r.CacheShareOfSystem*r.CacheSavingSPCSPct + 2
		if r.SystemSavingSPCSPct > bound {
			t.Errorf("%s: system saving %v exceeds Amdahl bound %v",
				r.Workload, r.SystemSavingSPCSPct, bound)
		}
		if r.SystemSavingSPCSPct >= r.CacheSavingSPCSPct {
			t.Errorf("%s: system saving %v not below cache saving %v",
				r.Workload, r.SystemSavingSPCSPct, r.CacheSavingSPCSPct)
		}
		if r.CacheShareOfSystem <= 0 || r.CacheShareOfSystem >= 1 {
			t.Errorf("%s: cache share %v", r.Workload, r.CacheShareOfSystem)
		}
	}
}
