package expers

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func trans(cache string, cycle uint64, from, to int, fromV, toV float64) obs.PolicyEvent {
	return obs.PolicyEvent{
		Cycle: cycle, CacheName: cache, Decision: obs.DecisionTransition,
		FromLevel: from, ToLevel: to, FromVDD: fromV, ToVDD: toV,
	}
}

func TestVDDResidencies(t *testing.T) {
	// Cache "p": level 3 for [0,100), 2 for [100,400), 3 for [400,1000).
	events := []obs.PolicyEvent{
		{Cycle: 50, CacheName: "p", Decision: obs.DecisionNone}, // ignored
		trans("p", 100, 3, 2, 1.0, 0.7),
		trans("p", 400, 2, 3, 0.7, 1.0),
	}
	res := VDDResidencies(events, 1000)
	if len(res) != 2 {
		t.Fatalf("got %d residencies: %+v", len(res), res)
	}
	// Descending level order.
	if res[0].Level != 3 || res[0].Cycles != 100+600 || res[0].VDD != 1.0 {
		t.Fatalf("level-3 residency %+v", res[0])
	}
	if res[1].Level != 2 || res[1].Cycles != 300 || res[1].VDD != 0.7 {
		t.Fatalf("level-2 residency %+v", res[1])
	}
	if got := res[0].Frac + res[1].Frac; got < 0.999 || got > 1.001 {
		t.Fatalf("fractions sum to %g", got)
	}
}

func TestVDDResidenciesMultiCache(t *testing.T) {
	events := []obs.PolicyEvent{
		trans("l2", 500, 3, 2, 1.0, 0.8),
		trans("l1", 200, 3, 1, 1.0, 0.6),
	}
	res := VDDResidencies(events, 1000)
	if len(res) != 4 {
		t.Fatalf("got %d residencies: %+v", len(res), res)
	}
	if res[0].Cache != "l1" || res[2].Cache != "l2" {
		t.Fatalf("cache order wrong: %+v", res)
	}
	var sum uint64
	for _, r := range res[:2] {
		sum += r.Cycles
	}
	if sum != 1000 {
		t.Fatalf("l1 cycles sum %d, want 1000", sum)
	}
}

func TestVDDTrajectoryTableTruncates(t *testing.T) {
	var events []obs.PolicyEvent
	for i := uint64(1); i <= 10; i++ {
		events = append(events, trans("p", i*100, 3, 2, 1.0, 0.7))
	}
	tab := VDDTrajectoryTable(events, 1e9, 4)
	// 4 shown + 1 ellipsis row.
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[4][0], "6 more") {
		t.Fatalf("ellipsis row %v", tab.Rows[4])
	}
	// 100 cycles at 1 GHz = 1e-4 ms.
	if tab.Rows[0][0] != "0.000" {
		t.Fatalf("time cell %q", tab.Rows[0][0])
	}
	if tab.Rows[0][3] != "3->2" {
		t.Fatalf("level cell %q", tab.Rows[0][3])
	}
}

func TestVDDResidencyTable(t *testing.T) {
	events := []obs.PolicyEvent{trans("p", 100, 3, 2, 1.0, 0.7)}
	tab := VDDResidencyTable(events, 200)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if tab.Rows[0][4] != "50.0" || tab.Rows[1][4] != "50.0" {
		t.Fatalf("residency cells %v", tab.Rows)
	}
}
