package expers

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/cpusim"
	"repro/internal/runner"
)

// arenaDiffCampaign builds a campaign exercising every registered kind,
// with enough duplicate jobs per kind that a worker's second and third
// cell of each kind run against a warm arena. The fig4-cell block mixes
// pinned-seed duplicates (which hit the arena's pristine fault-map
// snapshot) with derived-seed cells (which force a repopulation).
func arenaDiffCampaign(t *testing.T, seed uint64) runner.Campaign {
	t.Helper()
	var jobs []runner.Spec
	add := func(kind string, params any) {
		raw, err := json.Marshal(params)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, runner.Spec{Kind: kind, Params: raw})
	}
	for i := 0; i < 3; i++ {
		add("cpusim", CPUSimParams{Bench: "hmmer.s", SimInstr: 20_000})
		add("minvdd", MinVDDParams{SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64})
		add("vddlevels", VDDLevelsParams{Levels: 3})
		add("cells", CellsParams{})
		add("leakage", LeakageParams{SimInstr: 50_000})
	}
	for i := 0; i < 2; i++ {
		add("multicore", MulticoreParams{Bench: "gobmk.s", Cores: 2, InstrPerCore: 10_000})
		add("ablation", AblationParams{Benches: []string{"hmmer.s"}, SimInstr: 30_000})
		// Pinned seed: consecutive cells redraw identical fault maps.
		add("fig4-cell", Fig4CellParams{
			Config: cpusim.ConfigA(), Mode: "DPCS", Bench: "hmmer.s",
			SimInstr: 20_000, Seed: seed | 1,
		})
		// Derived seed (Seed == 0): every cell repopulates its maps.
		add("fig4-cell", Fig4CellParams{
			Config: cpusim.ConfigA(), Mode: "SPCS", Bench: "hmmer.s",
			SimInstr: 20_000,
		})
	}
	return runner.Campaign{Name: "arena-diff", Seed: seed, Jobs: jobs}
}

// marshalResults reduces a campaign result to the deterministic JSON
// the artifact store would write, which is exactly the byte-identity
// surface the arena work must preserve.
func marshalResults(t *testing.T, res *runner.CampaignResult) []string {
	t.Helper()
	lines := make([]string, 0, len(res.Results))
	for _, r := range res.Results {
		if r.Status != runner.StatusDone {
			t.Fatalf("job %d (%s) not done: %s %s", r.Index, r.Kind, r.Status, r.Error)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	return lines
}

// TestArenaDifferential pins the tentpole invariant: for every
// registered kind, a warm run (per-worker arenas reused across cells)
// produces results byte-identical to a cold run (NoWorkerState, every
// cell allocating from scratch), at every worker count. The campaign
// seed is randomized so each CI run probes a different fault-map draw;
// the seed is logged for replay.
func TestArenaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration campaign diff is not short")
	}
	seed := rand.Uint64()
	t.Logf("campaign seed %#x", seed)
	reg := NewCampaignRegistry()
	c := arenaDiffCampaign(t, seed)

	ref, err := runner.Run(context.Background(), reg, c,
		runner.Options{Workers: 1, NoWorkerState: true})
	if err != nil {
		t.Fatal(err)
	}
	want := marshalResults(t, ref)

	for _, workers := range []int{1, 2, 8} {
		for _, cold := range []bool{false, true} {
			if workers == 1 && cold {
				continue // the reference itself
			}
			res, err := runner.Run(context.Background(), reg, c,
				runner.Options{Workers: workers, NoWorkerState: cold})
			if err != nil {
				t.Fatal(err)
			}
			got := marshalResults(t, res)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("workers=%d cold=%v: job %d diverged\n got: %s\nwant: %s",
						workers, cold, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAnalyticalSteadyStateAllocs pins the memo layer's steady state:
// once warm, every analytical figure entry point must cost at most 10
// allocations per call (the residue is interface boxing on the memo
// lookup). The pre-memo code cost 522-1441 allocs per call.
func TestAnalyticalSteadyStateAllocs(t *testing.T) {
	org := L1ConfigA()
	funcs := map[string]func() error{
		"Fig2":           func() error { _, _ = Fig2(); return nil },
		"Fig3aGapAt99":   func() error { _, err := Fig3aGapAt99(org, 2); return err },
		"Fig3b":          func() error { _, _, err := Fig3b(org); return err },
		"Fig3c":          func() error { _, _, err := Fig3c(org); return err },
		"Fig3d":          func() error { _, _, err := Fig3d(org); return err },
		"MinVDDs":        func() error { _, _, err := MinVDDs(org); return err },
		"AreaOverheads":  func() error { _, _, err := AreaOverheads(); return err },
		"VDDPlans":       func() error { _, _, err := VDDPlans(); return err },
		"CellComparison": func() error { _, _, err := CellComparison(); return err },
	}
	for name, fn := range funcs {
		if err := fn(); err != nil { // warm the memo entry
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := fn(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
		if allocs > 10 {
			t.Errorf("%s: %.0f allocs/op steady-state, want <= 10", name, allocs)
		}
	}
}
