package expers

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faultmodel"
	"repro/internal/memo"
	"repro/internal/report"
	"repro/internal/sram"
)

// This file is the analytical memo layer (DESIGN.md §13): every figure
// and table function below is a thin wrapper that computes its result
// once per process and serves the shared, immutable value on every
// later call. The compute bodies live next to their figure docs in
// analytical.go / cells.go. Keys are value structs fully determining
// the output (the BER model, technology and CACTI parameters are fixed
// package-wide), so a memoized result is byte-identical to a fresh
// computation; callers must treat returned slices, setups and tables
// as read-only, which every caller in this repository already does
// (they render, index or copy — never append or AddRow).

// memos is the swappable process-wide table. Cold-path benchmarks and
// differential tests call ResetMemos to measure/verify the first
// computation; everything else only ever reads.
var memos atomic.Pointer[memo.Table]

func init() { memos.Store(memo.NewTable()) }

// ResetMemos drops every memoized analytical result, so the next call
// of each function recomputes from scratch. In-flight readers keep the
// old table; concurrent use is safe.
func ResetMemos() { memos.Store(memo.NewTable()) }

type (
	setupKey struct {
		org     cacti.Org
		nLevels int
	}
	faultModelKey struct{ geom faultmodel.Geometry }
	levelPlanKey  struct{ org cacti.Org }
	fig2Key       struct{}
	fig3aKey      struct {
		org      cacti.Org
		nLowVDDs int
	}
	fig3bKey    struct{ org cacti.Org }
	fig3cKey    struct{ org cacti.Org }
	fig3dKey    struct{ org cacti.Org }
	minVDDsKey  struct{ org cacti.Org }
	areaKey     struct{ digest string }
	vddPlansKey struct{}
	cellsKey    struct{ digest string }
)

// orgsDigest canonically identifies a list of cache organisations, so
// memo entries hit on equal setups however the values were constructed
// (never on pointer or slice identity).
func orgsDigest(orgs []cacti.Org) string {
	s := ""
	for _, org := range orgs {
		s += fmt.Sprintf("%s/%dB/%dw/%dB/a%d/serial=%t;",
			org.Name, org.SizeBytes, org.Assoc, org.BlockBytes, org.AddrBits, org.SerialTagData)
	}
	return s
}

// geomDigest canonically identifies a fault-model geometry.
func geomDigest(g faultmodel.Geometry) string {
	return fmt.Sprintf("%ds/%dw/%db", g.Sets, g.Ways, g.BlockBits)
}

// rowsAndTable pairs a figure's data rows with its rendered table so
// one memo entry serves both return values.
type rowsAndTable[R any] struct {
	rows R
	t    *report.Table
}

// NewCacheSetup builds (or serves the memoized) model stack for an
// organisation, using nLevels allowed VDD levels for fault-map sizing
// (3 in the paper). The returned setup is shared: treat it and its
// models as immutable.
func NewCacheSetup(org cacti.Org, nLevels int) (*CacheSetup, error) {
	return memo.Get(memos.Load(), setupKey{org: org, nLevels: nLevels}, func() (*CacheSetup, error) {
		return newCacheSetup(org, nLevels)
	})
}

// faultModelFor memoizes the bare fault model for a geometry under the
// package-standard BER model (the minvdd kind's working set).
func faultModelFor(geom faultmodel.Geometry) (*faultmodel.Model, error) {
	return memo.Get(memos.Load(), faultModelKey{geom: geom}, func() (*faultmodel.Model, error) {
		return faultmodel.New(geom, sram.NewWangCalhounBER())
	})
}

// levelPlanFor memoizes the paper's three-voltage plan for an
// organisation (the leakage kind's design-time derivation).
func levelPlanFor(org cacti.Org) (core.LevelPlan, error) {
	return memo.Get(memos.Load(), levelPlanKey{org: org}, func() (core.LevelPlan, error) {
		fm, err := faultModelFor(faultmodel.Geometry{
			Sets: org.Sets(), Ways: org.Assoc, BlockBits: org.BlockBits()})
		if err != nil {
			return core.LevelPlan{}, err
		}
		tech := device.Tech45SOI()
		return core.SelectLevels(fm, tech.VDDNom, tech.VDDMin,
			faultmodel.VDD1CapacityFloor(org.Assoc))
	})
}

// Fig2 regenerates the paper's Fig. 2: BER versus VDD at 10 mV steps.
func Fig2() ([]Fig2Point, *report.Table) {
	v, _ := memo.Get(memos.Load(), fig2Key{}, func() (rowsAndTable[[]Fig2Point], error) {
		pts, t := fig2()
		return rowsAndTable[[]Fig2Point]{rows: pts, t: t}, nil
	})
	return v.rows, v.t
}

// Fig3a regenerates Fig. 3's power/effective-capacity comparison for the
// given organisation (the paper shows L1 Config A; others behave alike).
// nLowVDDs configures how many low-voltage levels FFT-Cache must carry
// fault maps for (2 reproduces the paper's 3-level comparison).
func Fig3a(org cacti.Org, nLowVDDs int) (Fig3aData, *report.Table, error) {
	v, err := memo.Get(memos.Load(), fig3aKey{org: org, nLowVDDs: nLowVDDs}, func() (rowsAndTable[Fig3aData], error) {
		d, t, err := fig3a(org, nLowVDDs)
		return rowsAndTable[Fig3aData]{rows: d, t: t}, err
	})
	return v.rows, v.t, err
}

// Fig3b regenerates the usable-blocks comparison of Fig. 3.
func Fig3b(org cacti.Org) ([]Fig3bRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), fig3bKey{org: org}, func() (rowsAndTable[[]Fig3bRow], error) {
		rows, t, err := fig3b(org)
		return rowsAndTable[[]Fig3bRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// Fig3c regenerates the leakage breakdown of Fig. 3 for the proposed
// mechanism (faulty blocks gated as capacity shrinks).
func Fig3c(org cacti.Org) ([]Fig3cRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), fig3cKey{org: org}, func() (rowsAndTable[[]Fig3cRow], error) {
		rows, t, err := fig3c(org)
		return rowsAndTable[[]Fig3cRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// Fig3d regenerates the yield-vs-VDD comparison of Fig. 3: a baseline
// with no fault tolerance, SECDED and DECTED at 2-byte subblocks,
// FFT-Cache, and the proposed mechanism.
func Fig3d(org cacti.Org) ([]Fig3dRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), fig3dKey{org: org}, func() (rowsAndTable[[]Fig3dRow], error) {
		rows, t, err := fig3d(org)
		return rowsAndTable[[]Fig3dRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// MinVDDs computes each scheme's minimum voltage at 99 % yield.
func MinVDDs(org cacti.Org) ([]MinVDDRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), minVDDsKey{org: org}, func() (rowsAndTable[[]MinVDDRow], error) {
		rows, t, err := minVDDs(org)
		return rowsAndTable[[]MinVDDRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// allOrgsDigest is precomputed so the hot AreaOverheads() wrapper skips
// re-digesting the fixed Table-2 organisation list on every call (the
// steady-state alloc budget is 10 per entry point).
var allOrgsDigest = orgsDigest(AllOrgs())

// AreaOverheads regenerates the Sec. 4.2 area-overhead estimates for all
// four cache organisations (paper: 2–5 % total, fault map ≤ 4 %,
// gates < 1 %).
func AreaOverheads() ([]AreaRow, *report.Table, error) {
	return areaOverheadsKeyed(allOrgsDigest, AllOrgs)
}

// AreaOverheadsFor computes the Sec. 4.2 area-overhead estimates for an
// arbitrary organisation list, memoized by the list's canonical digest:
// two distinctly-constructed but equal inputs share one entry.
func AreaOverheadsFor(orgs []cacti.Org) ([]AreaRow, *report.Table, error) {
	return areaOverheadsKeyed(orgsDigest(orgs), func() []cacti.Org { return orgs })
}

func areaOverheadsKeyed(digest string, orgs func() []cacti.Org) ([]AreaRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), areaKey{digest: digest}, func() (rowsAndTable[[]AreaRow], error) {
		rows, t, err := areaOverheads(orgs())
		return rowsAndTable[[]AreaRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// VDDPlans computes the three-level voltage plan for all organisations
// (the reproduction of Table 2's voltage rows via the paper's 99 % rule).
func VDDPlans() ([]VDDPlanRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), vddPlansKey{}, func() (rowsAndTable[[]VDDPlanRow], error) {
		rows, t, err := vddPlans()
		return rowsAndTable[[]VDDPlanRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}

// CellComparison evaluates 6T, 8T and 10T cells with and without the PCS
// mechanism on the Config-A L1 geometry.
func CellComparison() ([]CellRow, *report.Table, error) {
	return CellComparisonFor(CellGeometry())
}

// CellComparisonFor evaluates the bit-cell designs on an arbitrary
// geometry, memoized by the geometry's canonical digest.
func CellComparisonFor(geom faultmodel.Geometry) ([]CellRow, *report.Table, error) {
	v, err := memo.Get(memos.Load(), cellsKey{digest: geomDigest(geom)}, func() (rowsAndTable[[]CellRow], error) {
		rows, t, err := cellComparison(geom)
		return rowsAndTable[[]CellRow]{rows: rows, t: t}, err
	})
	return v.rows, v.t, err
}
