package bist

import (
	"strings"
	"testing"

	"repro/internal/faultmap"
	"repro/internal/sram"
	"repro/internal/stats"
)

func TestMarchSSLength(t *testing.T) {
	// March SS is a 22N test.
	if got := MarchSS().OpsPerCell(); got != 22 {
		t.Fatalf("March SS ops/cell = %d, want 22", got)
	}
}

func TestMarchCLength(t *testing.T) {
	// March C- is a 10N test.
	if got := MarchC().OpsPerCell(); got != 10 {
		t.Fatalf("March C- ops/cell = %d, want 10", got)
	}
}

func TestNotation(t *testing.T) {
	s := MarchSS().String()
	for _, want := range []string{"March SS", "⇑(r0,r0,w0,r0,w1)", "⇓(r1,r1,w1,r1,w0)", "⇕(w0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("notation %q missing %q", s, want)
		}
	}
}

func TestCleanArrayPasses(t *testing.T) {
	a := sram.PerfectArray(16, 32, 0.3)
	a.SetVDD(0.5)
	res := Run(MarchSS(), a)
	if len(res.FaultyCells) != 0 || len(res.FaultyRows) != 0 {
		t.Fatalf("clean array reported faults: %d cells", len(res.FaultyCells))
	}
	if res.Ops != 22*16*32 {
		t.Errorf("ops = %d", res.Ops)
	}
	if res.VDD != 0.5 {
		t.Errorf("recorded VDD %v", res.VDD)
	}
}

func TestDetectsEachFaultKind(t *testing.T) {
	kinds := []sram.FaultKind{sram.StuckAt0, sram.StuckAt1, sram.WriteFail, sram.ReadFlip}
	for _, test := range []Test{MarchSS(), MarchC()} {
		for _, k := range kinds {
			a := sram.PerfectArray(4, 8, 0.3)
			a.InjectFault(2, 3, 0.9, k)
			a.SetVDD(0.5) // below the cell's Vmin: fault active
			res := Run(test, a)
			if !res.FaultyCells[2*8+3] {
				t.Errorf("%s missed %v fault", test.Name, k)
			}
			if !res.FaultyRows[2] {
				t.Errorf("%s missed faulty row for %v", test.Name, k)
			}
			// No false positives elsewhere.
			if len(res.FaultyCells) != 1 {
				t.Errorf("%s flagged %d cells for one %v fault", test.Name, len(res.FaultyCells), k)
			}
		}
	}
}

func TestFaultInactiveAboveVmin(t *testing.T) {
	a := sram.PerfectArray(4, 8, 0.3)
	a.InjectFault(1, 1, 0.6, sram.StuckAt0)
	a.SetVDD(0.8) // above Vmin: healthy
	res := Run(MarchSS(), a)
	if len(res.FaultyCells) != 0 {
		t.Fatalf("fault detected above Vmin")
	}
}

func TestPopulateFaultMapLevels(t *testing.T) {
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	a := sram.PerfectArray(8, 16, 0.3)
	a.InjectFault(0, 0, 0.60, sram.StuckAt1)  // faulty at level 1 only
	a.InjectFault(3, 5, 0.80, sram.WriteFail) // faulty at levels 1,2
	a.InjectFault(6, 2, 1.50, sram.StuckAt0)  // faulty at all levels
	m, results, viol := PopulateFaultMap(MarchSS(), a, levels)
	if len(viol) != 0 {
		t.Fatalf("unexpected inclusion violations: %v", viol)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	wants := map[int]int{0: 1, 3: 2, 6: 3}
	for r := 0; r < 8; r++ {
		want := wants[r]
		if got := m.FM(r); got != want {
			t.Errorf("row %d FM = %d, want %d", r, got, want)
		}
	}
}

func TestPopulateFaultMapMatchesRowVmin(t *testing.T) {
	// Property: for a Monte-Carlo array, the BIST-derived FM value of
	// every row must equal the value derived from the row's true Vmin.
	levels := faultmap.MustLevels(0.54, 0.70, 1.00)
	rng := stats.NewRNG(33)
	a := sram.NewArray(rng, sram.NewWangCalhounBER(), 64, 64, 0.30, 1.00)
	m, _, viol := PopulateFaultMap(MarchSS(), a, levels)
	if len(viol) != 0 {
		t.Fatalf("inclusion violations on single-Vmin physics: %v", viol)
	}
	want := faultmap.NewMap(levels, 64)
	for r := 0; r < 64; r++ {
		want.SetFromVmin(r, a.RowVmin(r))
	}
	for r := 0; r < 64; r++ {
		if m.FM(r) != want.FM(r) {
			t.Errorf("row %d: BIST FM %d, Vmin-derived %d (row Vmin %v)",
				r, m.FM(r), want.FM(r), a.RowVmin(r))
		}
	}
}

func TestPopulateRunsHighestLevelFirst(t *testing.T) {
	levels := faultmap.MustLevels(0.5, 1.0)
	a := sram.PerfectArray(4, 4, 0.3)
	_, results, _ := PopulateFaultMap(MarchSS(), a, levels)
	if results[0].VDD != 1.0 || results[1].VDD != 0.5 {
		t.Fatalf("level order: %v then %v", results[0].VDD, results[1].VDD)
	}
}

func TestOpConstructors(t *testing.T) {
	if Read0().String() != "r0" || Read1().String() != "r1" ||
		Write0().String() != "w0" || Write1().String() != "w1" {
		t.Error("op notation wrong")
	}
	if Up.String() != "⇑" || Down.String() != "⇓" || Any.String() != "⇕" {
		t.Error("direction notation wrong")
	}
}

func TestInclusionViolationError(t *testing.T) {
	v := InclusionViolation{Row: 3, FaultyAtVDD: 0.7, HealthyAtVDD: 0.54}
	if !strings.Contains(v.Error(), "row 3") {
		t.Errorf("error text: %s", v.Error())
	}
}

func TestMarchDetectsDenseFaults(t *testing.T) {
	// At a very low voltage many cells are faulty; the test must flag a
	// fraction consistent with the array's own accounting.
	rng := stats.NewRNG(44)
	a := sram.NewArray(rng, sram.NewWangCalhounBER(), 32, 128, 0.30, 1.00)
	a.SetVDD(0.35)
	res := Run(MarchSS(), a)
	trueCount := a.FaultyCellCount(0.35)
	if len(res.FaultyCells) < trueCount*9/10 {
		t.Errorf("March SS found %d of %d faulty cells", len(res.FaultyCells), trueCount)
	}
}
