package bist_test

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/sram"
)

// Example runs March SS against a tiny SRAM array with one injected
// low-voltage fault.
func Example() {
	arr := sram.PerfectArray(4, 8, 0.3)
	arr.InjectFault(2, 5, 0.8, sram.StuckAt0) // fails below 0.8 V
	arr.SetVDD(0.6)
	res := bist.Run(bist.MarchSS(), arr)
	fmt.Printf("%s at %.1f V: %d faulty cell(s) in row(s) %v\n",
		res.Test, res.VDD, len(res.FaultyCells), res.FaultyRows)
	// Output: March SS at 0.6 V: 1 faulty cell(s) in row(s) map[2:true]
}
