// Package bist implements the built-in self-test flow that populates the
// power/capacity-scaling fault map. It provides a generic March-test
// engine and the March SS algorithm (Hamdioui et al., "March SS: A Test
// for All Static Simple RAM Faults"), which is what the paper ran on its
// 45 nm SOI Red Cooper test chips to characterise voltage-induced SRAM
// faults and to observe the fault inclusion property.
//
// The flow is: for each allowed VDD level, from highest to lowest, set
// the array supply, run March SS, and record which rows (cache blocks)
// contain faulty cells. The per-level results are folded into a
// faultmap.Map; any observed violation of fault inclusion (faulty at a
// higher voltage but healthy at a lower one) is reported, since the FM
// encoding cannot represent it.
package bist

import (
	"fmt"

	"repro/internal/faultmap"
	"repro/internal/sram"
)

// Op is a single March operation applied to every cell of an element.
type Op struct {
	// Write indicates a write operation; otherwise the op is a read.
	Write bool
	// Value is the bit written, or the bit a read expects.
	Value uint8
}

// Read0 reads a cell expecting 0.
func Read0() Op { return Op{Write: false, Value: 0} }

// Read1 reads a cell expecting 1.
func Read1() Op { return Op{Write: false, Value: 1} }

// Write0 writes 0 to a cell.
func Write0() Op { return Op{Write: true, Value: 0} }

// Write1 writes 1 to a cell.
func Write1() Op { return Op{Write: true, Value: 1} }

// String renders the op in March notation (r0, r1, w0, w1).
func (o Op) String() string {
	k := "r"
	if o.Write {
		k = "w"
	}
	return fmt.Sprintf("%s%d", k, o.Value)
}

// Direction is the address order of a March element.
type Direction int

const (
	// Up walks addresses in ascending order (⇑).
	Up Direction = iota
	// Down walks addresses in descending order (⇓).
	Down
	// Any may use either order (⇕); this engine uses ascending.
	Any
)

// String renders the direction as an arrow.
func (d Direction) String() string {
	switch d {
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return "⇕"
	}
}

// Element is one March element: a direction and a sequence of operations
// applied to each cell before moving to the next address.
type Element struct {
	Dir Direction
	Ops []Op
}

// String renders the element in March notation.
func (e Element) String() string {
	s := e.Dir.String() + "("
	for i, op := range e.Ops {
		if i > 0 {
			s += ","
		}
		s += op.String()
	}
	return s + ")"
}

// Test is a complete March test.
type Test struct {
	Name     string
	Elements []Element
}

// OpsPerCell returns the test length in operations per cell (the "22N" in
// "March SS is a 22N test" counts 22 operations per cell).
func (t Test) OpsPerCell() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

// String renders the whole test in March notation.
func (t Test) String() string {
	s := t.Name + ": {"
	for i, e := range t.Elements {
		if i > 0 {
			s += "; "
		}
		s += e.String()
	}
	return s + "}"
}

// MarchSS returns the March SS test:
//
//	{⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//	 ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}
//
// a 22N test detecting all static simple (single-cell and two-cell
// coupling) RAM faults.
func MarchSS() Test {
	return Test{
		Name: "March SS",
		Elements: []Element{
			{Any, []Op{Write0()}},
			{Up, []Op{Read0(), Read0(), Write0(), Read0(), Write1()}},
			{Up, []Op{Read1(), Read1(), Write1(), Read1(), Write0()}},
			{Down, []Op{Read0(), Read0(), Write0(), Read0(), Write1()}},
			{Down, []Op{Read1(), Read1(), Write1(), Read1(), Write0()}},
			{Any, []Op{Read0()}},
		},
	}
}

// MarchC returns the classic March C- test (10N), provided as a cheaper
// alternative for comparisons; it detects fewer static faults than
// March SS but all the voltage-induced single-cell modes modelled here.
func MarchC() Test {
	return Test{
		Name: "March C-",
		Elements: []Element{
			{Any, []Op{Write0()}},
			{Up, []Op{Read0(), Write1()}},
			{Up, []Op{Read1(), Write0()}},
			{Down, []Op{Read0(), Write1()}},
			{Down, []Op{Read1(), Write0()}},
			{Any, []Op{Read0()}},
		},
	}
}

// Result is the outcome of running a March test over an array at one
// supply voltage.
type Result struct {
	// Test names the algorithm that ran.
	Test string
	// VDD is the supply voltage the array operated at during the test.
	VDD float64
	// FaultyCells marks each cell (row-major index) that produced at
	// least one read mismatch.
	FaultyCells map[int]bool
	// FaultyRows marks each row with at least one faulty cell.
	FaultyRows map[int]bool
	// Ops counts the total operations performed.
	Ops int
}

// Run executes the March test against the array at its current VDD,
// comparing every read against its expected value. Mismatching cells are
// recorded. The array's contents are destroyed (as by any March test).
func Run(t Test, a *sram.Array) Result {
	res := Result{
		Test:        t.Name,
		VDD:         a.VDD(),
		FaultyCells: make(map[int]bool),
		FaultyRows:  make(map[int]bool),
	}
	rows, cols := a.Rows(), a.Cols()
	n := rows * cols
	forEach := func(dir Direction, f func(addr int)) {
		if dir == Down {
			for i := n - 1; i >= 0; i-- {
				f(i)
			}
			return
		}
		for i := 0; i < n; i++ {
			f(i)
		}
	}
	for _, e := range t.Elements {
		forEach(e.Dir, func(addr int) {
			r, c := addr/cols, addr%cols
			for _, op := range e.Ops {
				res.Ops++
				if op.Write {
					a.WriteBit(r, c, op.Value)
					continue
				}
				if got := a.ReadBit(r, c); got != op.Value {
					res.FaultyCells[addr] = true
					res.FaultyRows[r] = true
					// Restore the expected value so later ops in this
					// element observe the March-defined state; a real
					// BIST would simply log and continue, and faulty
					// cells stay faulty either way.
					a.WriteBit(r, c, op.Value)
				}
			}
		})
	}
	return res
}

// InclusionViolation describes a row that was observed faulty at a higher
// voltage but healthy at a lower one — behaviour the FM encoding cannot
// represent and which the paper's silicon measurements did not exhibit.
type InclusionViolation struct {
	Row          int
	FaultyAtVDD  float64
	HealthyAtVDD float64
}

// Error implements the error interface.
func (v InclusionViolation) Error() string {
	return fmt.Sprintf("bist: row %d faulty at %.2f V but healthy at %.2f V (fault inclusion violated)",
		v.Row, v.FaultyAtVDD, v.HealthyAtVDD)
}

// PopulateFaultMap runs the March test at every allowed voltage level,
// highest to lowest, and builds the per-row fault map. Each array row
// corresponds to one cache block, matching the paper's layout where each
// data subarray row holds (part of) a single block and is the power-gate
// granularity.
//
// The returned results are ordered highest level first. If fault
// inclusion is violated by the observations, the map conservatively
// treats the row as faulty at the lower level too, and all violations
// are returned.
func PopulateFaultMap(t Test, a *sram.Array, levels faultmap.Levels) (*faultmap.Map, []Result, []InclusionViolation) {
	m := faultmap.NewMap(levels, a.Rows())
	results := make([]Result, 0, levels.N())
	var violations []InclusionViolation

	// faultyAtLevel[row] = highest level at which the row tested faulty.
	faultyAt := make([]int, a.Rows())
	prevFaulty := make(map[int]bool)
	for k := levels.N(); k >= 1; k-- {
		a.SetVDD(levels.Volts(k))
		res := Run(t, a)
		results = append(results, res)
		for r := range prevFaulty {
			if !res.FaultyRows[r] {
				violations = append(violations, InclusionViolation{
					Row:          r,
					FaultyAtVDD:  levels.Volts(k + 1),
					HealthyAtVDD: levels.Volts(k),
				})
				// Conservative: keep treating the row as faulty here.
				res.FaultyRows[r] = true
			}
		}
		for r := range res.FaultyRows {
			if faultyAt[r] < k {
				faultyAt[r] = k
			}
			prevFaulty[r] = true
		}
	}
	for r, k := range faultyAt {
		m.SetFM(r, k)
	}
	return m, results, violations
}
