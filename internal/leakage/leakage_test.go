package leakage

import (
	"testing"

	"repro/internal/cache"
)

func newTestCache() *cache.Cache {
	return cache.MustNew(cache.Config{Name: "t", SizeBytes: 4096, Assoc: 4, BlockBytes: 64})
}

func TestDrowsyWakePenalty(t *testing.T) {
	d := NewDrowsy(newTestCache(), DrowsyParams{IntervalCycles: 100, WakeCycles: 1, DrowsyLeakFactor: 0.25})
	// Fill a line; it starts awake.
	if _, extra := d.Access(0x40, false, 0); extra != 0 {
		t.Fatalf("fresh fill paid a wake penalty")
	}
	if _, extra := d.Access(0x40, false, 10); extra != 0 {
		t.Fatalf("awake hit paid a wake penalty")
	}
	// Past the interval, the global doze triggers: the next hit wakes.
	if _, extra := d.Access(0x40, false, 150); extra != 1 {
		t.Fatalf("drowsy hit paid %d, want 1", extra)
	}
	if d.Wakes != 1 {
		t.Fatalf("wake count %d", d.Wakes)
	}
	// And it is awake again.
	if _, extra := d.Access(0x40, false, 160); extra != 0 {
		t.Fatalf("rewoken line paid a penalty")
	}
}

func TestDrowsyRetainsState(t *testing.T) {
	d := NewDrowsy(newTestCache(), DrowsyParams{IntervalCycles: 50, WakeCycles: 1, DrowsyLeakFactor: 0.25})
	d.Access(0x40, true, 0)
	res, _ := d.Access(0x40, false, 1000) // long after dozing
	if !res.Hit {
		t.Fatal("drowsy cache lost state")
	}
}

func TestDrowsyLeakageBetweenBaselineAndFloor(t *testing.T) {
	c := newTestCache()
	d := NewDrowsy(c, DrowsyParams{IntervalCycles: 100, WakeCycles: 1, DrowsyLeakFactor: 0.25})
	// One access, then idle for a long time: nearly everything drowsy.
	d.Access(0x40, false, 0)
	const end = 100_000
	got := d.ActiveLineCycles(end)
	full := float64(end) * float64(c.NumBlocks())
	floor := full * 0.25
	if got <= floor || got >= full {
		t.Fatalf("drowsy leakage %v outside (%v, %v)", got, floor, full)
	}
	// Mostly asleep: closer to the floor than to full leakage.
	if got > full*0.30 {
		t.Errorf("idle drowsy cache leaks %v of full %v", got, full)
	}
}

func TestDecayGatesIdleLines(t *testing.T) {
	var wbs []uint64
	g := NewDecay(newTestCache(), DecayParams{IntervalCycles: 100, SweepCycles: 50},
		func(a uint64) { wbs = append(wbs, a) })
	g.Access(0x40, true, 0) // dirty line
	// Idle long past the decay interval; a later unrelated access
	// triggers the sweep.
	g.Access(0x1040, false, 500)
	if g.DecayedLines == 0 {
		t.Fatal("idle line not decayed")
	}
	if g.DecayWritebacks != 1 || len(wbs) != 1 || wbs[0] != 0x40 {
		t.Fatalf("decay writebacks: %d %v", g.DecayWritebacks, wbs)
	}
	// The decayed line's state is gone: re-access misses.
	res := g.Access(0x40, false, 510)
	if res.Hit {
		t.Fatal("decayed line still hits")
	}
}

func TestDecayKeepsHotLines(t *testing.T) {
	g := NewDecay(newTestCache(), DecayParams{IntervalCycles: 100, SweepCycles: 50}, nil)
	for now := uint64(0); now < 1000; now += 20 {
		res := g.Access(0x40, false, now)
		if now > 0 && !res.Hit {
			t.Fatalf("hot line lost at cycle %d", now)
		}
	}
	// Idle (invalid) frames decay — that is Gated-Vdd working — but the
	// hot frame itself must stay powered.
	if set, way, ok := g.C.FindFrame(0x40); !ok {
		t.Fatal("hot frame missing")
	} else if g.C.Meta(set, way).Valid == false {
		t.Fatal("hot frame invalidated")
	}
}

func TestDecayLeakageDropsWhenIdle(t *testing.T) {
	c := newTestCache()
	g := NewDecay(c, DecayParams{IntervalCycles: 100, SweepCycles: 50}, nil)
	g.Access(0x40, false, 0)
	// Touch periodically so sweeps run while everything else is off.
	for now := uint64(100); now <= 10_000; now += 100 {
		g.Access(0x8000+now*64, false, now)
	}
	got := g.ActiveLineCycles(10_000)
	full := 10_000.0 * float64(c.NumBlocks())
	if got >= full {
		t.Fatalf("decay leakage %v not below full %v", got, full)
	}
}

func TestDefaultParams(t *testing.T) {
	if DefaultDrowsyParams().IntervalCycles != 4000 {
		t.Error("drowsy default interval")
	}
	if DefaultDecayParams().IntervalCycles == 0 {
		t.Error("decay default interval")
	}
	// Zero params fall back to defaults.
	d := NewDrowsy(newTestCache(), DrowsyParams{})
	if d.P.IntervalCycles == 0 {
		t.Error("drowsy zero params not defaulted")
	}
	g := NewDecay(newTestCache(), DecayParams{}, nil)
	if g.P.IntervalCycles == 0 {
		t.Error("decay zero params not defaulted")
	}
	if g.String() == "" {
		t.Error("decay String empty")
	}
}
